(* Compare two air-bench/1 JSON artifacts (as written by
   `bench/main.exe --json`) and flag regressions.

   Usage: diff.exe OLD.json NEW.json

   Every row present in both files is compared by its ns/run estimate;
   a row counts as a regression when it is slower than its group's
   threshold ratio AND slower by more than an absolute noise floor (very
   short rows jitter by whole nanoseconds between runs). Rows present in
   only one file — renamed, added or retired benchmarks — are reported
   but never fatal, and rows whose OLS estimate was null are skipped.

   Exit status: 0 when no row regresses, 1 on regression, 2 on usage or
   parse errors. *)

(* --- thresholds ---------------------------------------------------------- *)

(* Per-group regression ratios (new/old). The micro groups measure rows
   in the 1–100 ns range where allocator and cache placement move results
   by tens of percent between otherwise identical runs; the whole-horizon
   groups are longer and steadier, so they get a tighter bound. *)
let threshold_for name =
  let group =
    match String.index_opt name '/' with
    | Some i -> String.sub name 0 i
    | None -> name
  in
  match group with
  | "scheduler" | "deadline" | "pal" | "ipc" | "mmu" | "causal"
  | "contention" -> 2.0
  | "system" | "recorder" | "telemetry" -> 1.75
  | "exec" | "faults" | "analysis" | "extensions" | "profiler" -> 1.5
  (* Whole-horizon rows, but the domain rows contend for whatever cores
     the CI runner actually has, so they jitter more than exec/*. *)
  | "fleet" -> 2.0
  | _ -> 1.5

(* Absolute slack in ns/run below which a slowdown is indistinguishable
   from scheduling noise regardless of the ratio. *)
let noise_floor_ns = 10.0

(* --- air-bench/1 row extraction ------------------------------------------ *)

(* The artifact is produced by our own writer, one result object per
   line: [{"name": "...", "ns_per_run": 123.456},]. A full JSON parser
   buys nothing here; extract the two fields line by line and reject
   files that do not carry the air-bench/1 schema marker. *)

let extract_string line ~key =
  let marker = Printf.sprintf "\"%s\": \"" key in
  match
    let mlen = String.length marker in
    let rec find i =
      if i + mlen > String.length line then None
      else if String.sub line i mlen = marker then Some (i + mlen)
      else find (i + 1)
    in
    find 0
  with
  | None -> None
  | Some start ->
    (match String.index_from_opt line start '"' with
    | None -> None
    | Some stop -> Some (String.sub line start (stop - start)))

let extract_number line ~key =
  let marker = Printf.sprintf "\"%s\": " key in
  let mlen = String.length marker in
  let rec find i =
    if i + mlen > String.length line then None
    else if String.sub line i mlen = marker then Some (i + mlen)
    else find (i + 1)
  in
  match find 0 with
  | None -> None
  | Some start ->
    let stop = ref start in
    while
      !stop < String.length line
      &&
      match line.[!stop] with
      | '0' .. '9' | '.' | '-' | '+' | 'e' | 'E' -> true
      | _ -> false
    do
      incr stop
    done;
    if !stop = start then None
    else float_of_string_opt (String.sub line start (!stop - start))

let parse_rows path =
  let text = In_channel.with_open_text path In_channel.input_all in
  let is_bench_artifact = ref false in
  let rows = ref [] in
  List.iter
    (fun line ->
      (match extract_string line ~key:"schema" with
      | Some "air-bench/1" -> is_bench_artifact := true
      | Some _ | None -> ());
      match extract_string line ~key:"name" with
      | None -> ()
      | Some name ->
        (match extract_number line ~key:"ns_per_run" with
        | Some est -> rows := (name, est) :: !rows
        | None -> () (* null estimate: OLS failed, nothing to compare *)))
    (String.split_on_char '\n' text);
  if not !is_bench_artifact then
    failwith (path ^ ": not an air-bench/1 artifact");
  List.rev !rows

(* --- comparison ---------------------------------------------------------- *)

type verdict = { name : string; old_ns : float; new_ns : float; ratio : float }

let () =
  let old_path, new_path =
    match Sys.argv with
    | [| _; o; n |] -> (o, n)
    | _ ->
      prerr_endline "usage: diff.exe OLD.json NEW.json";
      exit 2
  in
  let old_rows, new_rows =
    try (parse_rows old_path, parse_rows new_path)
    with Sys_error msg | Failure msg ->
      prerr_endline msg;
      exit 2
  in
  let old_tbl = Hashtbl.create 64 in
  List.iter (fun (name, est) -> Hashtbl.replace old_tbl name est) old_rows;
  let regressions = ref [] in
  let improvements = ref 0 in
  let compared = ref 0 in
  let added = ref [] in
  List.iter
    (fun (name, new_ns) ->
      match Hashtbl.find_opt old_tbl name with
      | None -> added := name :: !added
      | Some old_ns ->
        Hashtbl.remove old_tbl name;
        incr compared;
        let ratio = if old_ns > 0.0 then new_ns /. old_ns else 1.0 in
        let threshold = threshold_for name in
        if ratio > threshold && new_ns -. old_ns > noise_floor_ns then
          regressions := { name; old_ns; new_ns; ratio } :: !regressions
        else if ratio < 1.0 /. threshold then incr improvements)
    new_rows;
  let removed = Hashtbl.fold (fun name _ acc -> name :: acc) old_tbl [] in
  List.iter
    (fun { name; old_ns; new_ns; ratio } ->
      Printf.printf "REGRESSION  %-52s %10.1f -> %10.1f ns/run (%.2fx > %.2fx)\n"
        name old_ns new_ns ratio (threshold_for name))
    (List.rev !regressions);
  List.iter (fun name -> Printf.printf "new row     %s\n" name)
    (List.rev !added);
  List.iter (fun name -> Printf.printf "retired row %s\n" name)
    (List.sort compare removed);
  Printf.printf
    "bench-diff: %d rows compared, %d regression(s), %d improvement(s), %d new, %d retired\n"
    !compared
    (List.length !regressions)
    !improvements (List.length !added) (List.length removed);
  if !regressions <> [] then exit 1
