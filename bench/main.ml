(* Bechamel micro-benchmarks — one group per experiment of DESIGN.md §3
   that makes a performance claim:

   - scheduler/* (E4): AIR Partition Scheduler + Dispatcher tick cost; the
     paper argues the best (and most frequent) case performs only two
     computations and that mode-based schedules only add MTF-boundary work.
   - deadline/*  (E5): the PAL deadline-store ablation — AIR's sorted
     linked list against an AVL tree and a pairing heap, on the ISR path
     (earliest retrieval) and the APEX path (registration).
   - pal/*       (E5): Algorithm 3 end to end (announce + verify).
   - ipc/*       (E9): sampling and queuing transfers through the router.
   - mmu/*       (E10): page-table walk vs TLB-served access checks.
   - system/*    : a full prototype tick (all layers compounded).
   - faults/*    : campaign-engine costs — rate-plan expansion, the spatial
     and communication injection hooks, and a whole one-MTF campaign
     (target + baseline + oracle bookkeeping).
   - exec/*      : the skip-ahead executive against per-tick execution over
     whole horizons — sparse vs dense workloads, single vs multicore.

   Run with: dune exec bench/main.exe *)

open Bechamel
open Toolkit

let satellite_schedules () =
  [ Air_workload.Satellite.schedule_1; Air_workload.Satellite.schedule_2 ]

(* --- scheduler (E4) ------------------------------------------------------ *)

let scheduler_tests =
  let tick_fresh () =
    let pmk = Air.Pmk.create ~partition_count:4 (satellite_schedules ()) in
    Staged.stage (fun () -> ignore (Air.Pmk.tick pmk))
  in
  let tick_with_pending_switch () =
    let pmk = Air.Pmk.create ~partition_count:4 (satellite_schedules ()) in
    let flip = ref false in
    Staged.stage (fun () ->
        ignore (Air.Pmk.tick pmk);
        if Air.Pmk.mtf_position pmk = 1299 then begin
          flip := not !flip;
          ignore
            (Air.Pmk.request_schedule_switch pmk
               (if !flip then Air_workload.Satellite.chi2
                else Air_workload.Satellite.chi1))
        end)
  in
  let tick_single_window () =
    (* Degenerate PST (one full-MTF window): every tick is the best case
       except one preemption point per MTF. *)
    let p0 = Air_model.Ident.Partition_id.make 0 in
    let s =
      Air_model.Schedule.make
        ~id:(Air_model.Ident.Schedule_id.make 0)
        ~name:"solo" ~mtf:1000
        ~requirements:
          [ { Air_model.Schedule.partition = p0; cycle = 1000; duration = 1000 } ]
        [ { Air_model.Schedule.partition = p0; offset = 0; duration = 1000 } ]
    in
    let pmk = Air.Pmk.create ~partition_count:1 [ s ] in
    Staged.stage (fun () -> ignore (Air.Pmk.tick pmk))
  in
  Test.make_grouped ~name:"scheduler"
    [ Test.make ~name:"tick(best case)" (tick_single_window ());
      Test.make ~name:"tick(fig8 tables)" (tick_fresh ());
      Test.make ~name:"tick(switch every MTF)" (tick_with_pending_switch ()) ]

(* --- deadline stores (E5) ------------------------------------------------ *)

let store_tests =
  let sizes = [ 8; 64; 256 ] in
  let with_store impl n f =
    let rng = Air_sim.Rng.create 42 in
    let store = Air.Deadline_store.create impl in
    for p = 0 to n - 1 do
      Air.Deadline_store.register store ~process:p
        (Air_sim.Rng.int rng 1_000_000)
    done;
    f store rng
  in
  (* Regression note: BENCH_5 showed `register(pairing-heap,n=8)` an order
     of magnitude slower than the other stores — this loop supersedes the
     same few processes over and over and never queries the minimum, so
     lazy deletion grew the heap without bound (hundreds of stale entries
     per live one at n=8). The store now compacts once garbage outnumbers
     live entries 2:1, which restores O(1) amortized registration; this
     row is the regression guard. *)
  let register impl n =
    with_store impl n (fun store rng ->
        let p = ref 0 in
        Staged.stage (fun () ->
            Air.Deadline_store.register store ~process:!p
              (Air_sim.Rng.int rng 1_000_000);
            p := (!p + 1) mod n))
  in
  let earliest impl n =
    with_store impl n (fun store _ ->
        Staged.stage (fun () -> ignore (Air.Deadline_store.earliest store)))
  in
  let churn impl n =
    with_store impl n (fun store _ ->
        Staged.stage (fun () ->
            match Air.Deadline_store.earliest store with
            | Some (proc, d) ->
              Air.Deadline_store.remove_earliest store;
              Air.Deadline_store.register store ~process:proc (d + 1009)
            | None -> ()))
  in
  let name op impl n =
    Format.asprintf "%s(%a,n=%d)" op Air.Deadline_store.pp_impl impl n
  in
  Test.make_grouped ~name:"deadline"
    (List.concat_map
       (fun impl ->
         List.concat_map
           (fun n ->
             [ Test.make ~name:(name "register" impl n) (register impl n);
               Test.make ~name:(name "earliest" impl n) (earliest impl n);
               Test.make ~name:(name "churn" impl n) (churn impl n) ])
           sizes)
       Air.Deadline_store.all_impls)

(* --- PAL (E5 / Algorithm 3) ---------------------------------------------- *)

let pal_tests =
  let announce_clean () =
    let pal =
      Air.Pal.create ~partition:(Air_model.Ident.Partition_id.make 0) ()
    in
    for p = 0 to 15 do
      Air.Pal.register_deadline pal ~process:p ((p * 1000) + 100_000_000)
    done;
    let now = ref 0 in
    Staged.stage (fun () ->
        incr now;
        ignore
          (Air.Pal.announce_ticks pal ~now:!now ~elapsed:1
             ~announce_to_pos:(fun ~now:_ ~elapsed:_ -> ())))
  in
  let announce_with_violation () =
    let pal =
      Air.Pal.create ~partition:(Air_model.Ident.Partition_id.make 0) ()
    in
    let now = ref 1_000 in
    Staged.stage (fun () ->
        incr now;
        (* One expired deadline per call: detect, remove, re-arm. *)
        Air.Pal.register_deadline pal ~process:0 (!now - 1);
        ignore
          (Air.Pal.announce_ticks pal ~now:!now ~elapsed:1
             ~announce_to_pos:(fun ~now:_ ~elapsed:_ -> ())))
  in
  Test.make_grouped ~name:"pal"
    [ Test.make ~name:"announce(no violation)" (announce_clean ());
      Test.make ~name:"announce(one violation)" (announce_with_violation ()) ]

(* --- IPC (E9) ------------------------------------------------------------- *)

let ipc_tests =
  let p0 = Air_model.Ident.Partition_id.make 0
  and p1 = Air_model.Ident.Partition_id.make 1 in
  let network =
    { Air_ipc.Port.ports =
        [ Air_ipc.Port.sampling_port ~name:"S_OUT" ~partition:p0
            ~direction:Air_ipc.Port.Source ~refresh:1000 ~max_message_size:64;
          Air_ipc.Port.sampling_port ~name:"S_IN" ~partition:p1
            ~direction:Air_ipc.Port.Destination ~refresh:1000
            ~max_message_size:64;
          Air_ipc.Port.queuing_port ~name:"Q_OUT" ~partition:p0
            ~direction:Air_ipc.Port.Source ~depth:64 ~max_message_size:64;
          Air_ipc.Port.queuing_port ~name:"Q_IN" ~partition:p1
            ~direction:Air_ipc.Port.Destination ~depth:64 ~max_message_size:64 ];
      channels =
        [ { Air_ipc.Port.source = "S_OUT"; destinations = [ "S_IN" ] };
          { Air_ipc.Port.source = "Q_OUT"; destinations = [ "Q_IN" ] } ] }
  in
  let sampling_roundtrip () =
    let r = Air_ipc.Router.create network in
    let msg = Bytes.make 32 'x' in
    Staged.stage (fun () ->
        ignore
          (Air_ipc.Router.write_sampling r ~caller:p0 ~port:"S_OUT" ~now:0 msg);
        ignore (Air_ipc.Router.read_sampling r ~caller:p1 ~port:"S_IN" ~now:1))
  in
  let queuing_roundtrip () =
    let r = Air_ipc.Router.create network in
    let msg = Bytes.make 32 'x' in
    Staged.stage (fun () ->
        ignore
          (Air_ipc.Router.send_queuing r ~caller:p0 ~port:"Q_OUT" ~now:0 msg);
        ignore (Air_ipc.Router.receive_queuing r ~caller:p1 ~port:"Q_IN"))
  in
  Test.make_grouped ~name:"ipc"
    [ Test.make ~name:"sampling write+read (32B)" (sampling_roundtrip ());
      Test.make ~name:"queuing send+receive (32B)" (queuing_roundtrip ()) ]

(* --- MMU / TLB (E10) ------------------------------------------------------ *)

let mmu_tests =
  let p0 = Air_model.Ident.Partition_id.make 0 in
  let maps =
    Air_spatial.Memory.allocate
      [ (p0,
         [ { Air_spatial.Memory.req_section = Air_spatial.Memory.Data;
             req_size = 256 * 1024 } ]) ]
  in
  let base =
    match maps with
    | [ { Air_spatial.Memory.regions = r :: _; _ } ] ->
      r.Air_spatial.Memory.base
    | _ -> assert false
  in
  let walk () =
    let prot = Air_spatial.Protection.create maps in
    let mmu = Air_spatial.Protection.mmu prot in
    Staged.stage (fun () ->
        ignore
          (Air_spatial.Mmu.translate mmu ~context:1
             ~level:Air_spatial.Memory.Application
             ~access:Air_spatial.Mmu.Read (base + 0x2000)))
  in
  let tlb_hit () =
    let prot = Air_spatial.Protection.create maps in
    ignore
      (Air_spatial.Protection.access prot ~partition:p0
         ~level:Air_spatial.Memory.Application ~access:Air_spatial.Mmu.Read
         (base + 0x2000));
    Staged.stage (fun () ->
        ignore
          (Air_spatial.Protection.access prot ~partition:p0
             ~level:Air_spatial.Memory.Application
             ~access:Air_spatial.Mmu.Read (base + 0x2000)))
  in
  let fault () =
    let prot = Air_spatial.Protection.create maps in
    Staged.stage (fun () ->
        ignore
          (Air_spatial.Protection.access prot ~partition:p0
             ~level:Air_spatial.Memory.Application
             ~access:Air_spatial.Mmu.Read 0x7f00_0000))
  in
  Test.make_grouped ~name:"mmu"
    [ Test.make ~name:"page-table walk" (walk ());
      Test.make ~name:"tlb-served access" (tlb_hit ());
      Test.make ~name:"fault (unmapped)" (fault ()) ]

(* --- contention (shared-resource interference) ------------------------------ *)

let contention_tests =
  let model ~budget () =
    Air_spatial.Contention.create ~partitions:4 ~lanes:2
      (Air_spatial.Contention.config ~default_budget:budget
         ~curve:[ (0, 1); (500, 2) ] ~compute_cost:1 ())
  in
  (* The per-access hot path with nothing armed: one bounds check and two
     integer adds. This is what every memory touch pays once a module
     carries a contention model. *)
  let charge_within () =
    let c = model ~budget:1_000_000_000 () in
    Staged.stage (fun () ->
        ignore (Air_spatial.Contention.charge c ~partition:1 ~cost:2))
  in
  (* The armed path: two busy lanes over the aggregate budget, so every
     charge walks the curve and queues stall debt which the executive
     then consumes. *)
  let charge_throttled () =
    let c = model ~budget:8 () in
    Air_spatial.Contention.set_lane c 0;
    ignore (Air_spatial.Contention.charge c ~partition:0 ~cost:64);
    Air_spatial.Contention.set_lane c 1;
    ignore (Air_spatial.Contention.charge c ~partition:1 ~cost:64);
    Staged.stage (fun () ->
        ignore (Air_spatial.Contention.charge c ~partition:1 ~cost:1);
        if Air_spatial.Contention.stall_pending c ~partition:1 then
          Air_spatial.Contention.consume_stall c ~partition:1)
  in
  (* MTF-boundary window reset: account zeroing plus pressure decay. *)
  let window_rollover () =
    let c = model ~budget:1_000 () in
    Staged.stage (fun () -> Air_spatial.Contention.rollover c ~now:0)
  in
  (* Instrumentation overhead in situ: the full prototype tick with a
     generous contention model attached (every compute tick charges, no
     stalls), to be read against system/"prototype tick". *)
  let prototype_tick_contended () =
    let cfg =
      { (Air_workload.Satellite.config ()) with
        Air.System.contention =
          Some
            (Air_spatial.Contention.config ~default_budget:1_000_000_000
               ~compute_cost:1 ()) }
    in
    let s = Air.System.create cfg in
    Staged.stage (fun () -> Air.System.step s)
  in
  Test.make_grouped ~name:"contention"
    [ Test.make ~name:"charge (within budget)" (charge_within ());
      Test.make ~name:"charge + stall (curve armed)" (charge_throttled ());
      Test.make ~name:"window rollover" (window_rollover ());
      Test.make ~name:"prototype tick (charged)" (prototype_tick_contended ()) ]

(* --- analysis (E1/E11 tooling) --------------------------------------------- *)

let analysis_tests =
  let validate_fig8 () =
    Staged.stage (fun () ->
        ignore (Air_model.Validate.validate Air_workload.Satellite.schedule_1))
  in
  let synthesize_paper () =
    let requirements =
      Air_workload.Satellite.schedule_1.Air_model.Schedule.requirements
    in
    Staged.stage (fun () ->
        ignore (Air_analysis.Synthesis.synthesize requirements))
  in
  let rta_partition () =
    let specs =
      [| Air_model.Process.spec
           ~periodicity:(Air_model.Process.Periodic 1300)
           ~time_capacity:1300 ~wcet:70 ~base_priority:5 "attitude";
         Air_model.Process.spec
           ~periodicity:(Air_model.Process.Periodic 650) ~time_capacity:650
           ~wcet:30 ~base_priority:9 "aux" |]
    in
    Staged.stage (fun () ->
        ignore
          (Air_analysis.Rta.analyze Air_workload.Satellite.schedule_1
             Air_workload.Satellite.p1 specs))
  in
  let sbf_sweep () =
    Staged.stage (fun () ->
        ignore
          (Air_analysis.Supply.sbf Air_workload.Satellite.schedule_1
             Air_workload.Satellite.p2 1300))
  in
  Test.make_grouped ~name:"analysis"
    [ Test.make ~name:"validate fig8 table" (validate_fig8 ());
      Test.make ~name:"synthesize paper requirements" (synthesize_paper ());
      Test.make ~name:"rta (2-process partition)" (rta_partition ());
      Test.make ~name:"sbf (delta = MTF)" (sbf_sweep ()) ]

(* --- full system ----------------------------------------------------------- *)

let system_tests =
  let prototype_tick () =
    let s = Air_workload.Satellite.make () in
    Staged.stage (fun () -> Air.System.step s)
  in
  let prototype_tick_faulty () =
    let s = Air_workload.Satellite.make () in
    Air.System.run s ~ticks:1;
    Air_workload.Satellite.inject_fault s;
    Staged.stage (fun () -> Air.System.step s)
  in
  Test.make_grouped ~name:"system"
    [ Test.make ~name:"prototype tick" (prototype_tick ());
      Test.make ~name:"prototype tick (fault active)" (prototype_tick_faulty ()) ]

(* --- flight recorder -------------------------------------------------------- *)

let recorder_tests =
  (* Raw recording cost: one begin/end pair and one instant, on a bounded
     recorder so the ring never grows. *)
  let span_pair () =
    let r = Air_obs.Span.create ~capacity:4096 () in
    let now = ref 0 in
    Staged.stage (fun () ->
        incr now;
        Air_obs.Span.begin_span r ~now:!now ~track:0 "w";
        Air_obs.Span.end_span r ~now:(!now + 1) ~track:0)
  in
  let span_instant () =
    let r = Air_obs.Span.create ~capacity:4096 () in
    let now = ref 0 in
    Staged.stage (fun () ->
        incr now;
        Air_obs.Span.instant r ~now:!now ~track:0 "i")
  in
  (* Instrumentation overhead in situ: the scheduler/dispatcher tick and
     the full prototype tick with a recorder attached, to be read against
     the scheduler/* and system/"prototype tick" baselines. *)
  let pmk_tick_recorded () =
    let pmk =
      Air.Pmk.create
        ~recorder:(Air_obs.Span.create ~capacity:4096 ())
        ~partition_count:4 (satellite_schedules ())
    in
    Staged.stage (fun () -> ignore (Air.Pmk.tick pmk))
  in
  let prototype_tick_recorded () =
    let cfg =
      { (Air_workload.Satellite.config ()) with
        Air.System.recorder = Some (Air_obs.Span.create ~capacity:4096 ()) }
    in
    let s = Air.System.create cfg in
    Staged.stage (fun () -> Air.System.step s)
  in
  Test.make_grouped ~name:"recorder"
    [ Test.make ~name:"span begin+end" (span_pair ());
      Test.make ~name:"span instant" (span_instant ());
      Test.make ~name:"pmk tick (recorded)" (pmk_tick_recorded ());
      Test.make ~name:"prototype tick (recorded)" (prototype_tick_recorded ()) ]

(* --- telemetry --------------------------------------------------------------- *)

let telemetry_tests =
  (* Raw hot-path hook costs: one histogram record, and one tick
     accounted into the frame accumulator. *)
  let quantile_record () =
    let h = Air_obs.Quantile.create () in
    let now = ref 0 in
    Staged.stage (fun () ->
        incr now;
        Air_obs.Quantile.record h (!now land 1023))
  in
  let accumulator_tick () =
    let t = Air_obs.Telemetry.create ~partition_count:4 () in
    Air_obs.Telemetry.prime t ~schedule:0 ~allotted:[| 650; 650; 650; 650 |];
    Staged.stage (fun () -> Air_obs.Telemetry.on_tick t ~active:(Some 1))
  in
  (* Frame-close cost (snapshot + ring push) on a bounded ring. *)
  let frame_close () =
    let t =
      Air_obs.Telemetry.create
        ~config:(Air_obs.Telemetry.config ~retention:64 ())
        ~partition_count:4 ()
    in
    Air_obs.Telemetry.prime t ~schedule:0 ~allotted:[| 650; 650; 650; 650 |];
    let now = ref 0 in
    Staged.stage (fun () ->
        incr now;
        Air_obs.Telemetry.on_tick t ~active:(Some 0);
        ignore
          (Air_obs.Telemetry.close_frame t ~now:!now ~next_schedule:0
             ~next_allotted:[| 650; 650; 650; 650 |]))
  in
  (* Instrumentation overhead in situ, to be read against the scheduler/*
     and system/"prototype tick" baselines (and the recorder/* rows from
     the flight-recorder PR). *)
  let pmk_tick_telemetry () =
    let tel = Air_obs.Telemetry.create ~partition_count:4 () in
    let pmk =
      Air.Pmk.create ~telemetry:tel ~partition_count:4
        (satellite_schedules ())
    in
    Staged.stage (fun () -> ignore (Air.Pmk.tick pmk))
  in
  let prototype_tick_telemetry () =
    let cfg =
      { (Air_workload.Satellite.config ()) with
        Air.System.telemetry =
          Some (Air_obs.Telemetry.config ~retention:64 ()) }
    in
    let s = Air.System.create cfg in
    Staged.stage (fun () -> Air.System.step s)
  in
  Test.make_grouped ~name:"telemetry"
    [ Test.make ~name:"quantile record" (quantile_record ());
      Test.make ~name:"accumulator tick" (accumulator_tick ());
      Test.make ~name:"frame close (4 partitions)" (frame_close ());
      Test.make ~name:"pmk tick (telemetry)" (pmk_tick_telemetry ());
      Test.make ~name:"prototype tick (telemetry)"
        (prototype_tick_telemetry ()) ]

(* --- fault-injection campaigns ----------------------------------------------- *)

let faults_tests =
  (* Plan expansion: two explicit injections plus two per-MTF rates over a
     15-MTF horizon — all the randomness a campaign ever spends. *)
  let plan_expansion () =
    let spec =
      Air_faults.Campaign.spec ~name:"bench" ~seed:7 ~horizon:20_000
        ~injections:
          [ { Air_faults.Campaign.at = 300;
              fault =
                Air_faults.Fault.Wild_access
                  { partition = 0; section = Air_spatial.Memory.Data;
                    offset = 64; write = true } };
            { Air_faults.Campaign.at = 2_500;
              fault =
                Air_faults.Fault.Clock_jitter { partition = 1; ticks = 40 } } ]
        ~rates:
          [ { Air_faults.Campaign.per_mtf_permille = 400;
              template =
                Air_faults.Fault.Port_fault
                  { port = "ATT_IN"; fault = Air_faults.Fault.Msg_loss } };
            { Air_faults.Campaign.per_mtf_permille = 250;
              template =
                Air_faults.Fault.Port_fault
                  { port = "TM_IN"; fault = Air_faults.Fault.Msg_duplicate } } ]
        ()
    in
    Staged.stage (fun () -> ignore (Air_faults.Campaign.plan spec ~mtf:1300))
  in
  (* The spatial hook end to end: a denied access pays the 3-level walk,
     the Memory_violation raise and the configured HM recovery action. *)
  let wild_access_hook () =
    let s = Air_workload.Satellite.make () in
    Air.System.run s ~ticks:1;
    Staged.stage (fun () ->
        ignore
          (Air.System.inject_memory_access s Air_workload.Satellite.p1
             ~access:Air_spatial.Mmu.Write ~address:0x7f00_0000))
  in
  (* The communication hook: refill a sampling channel and strike it. *)
  let port_perturb () =
    let p0 = Air_model.Ident.Partition_id.make 0
    and p1 = Air_model.Ident.Partition_id.make 1 in
    let network =
      { Air_ipc.Port.ports =
          [ Air_ipc.Port.sampling_port ~name:"S_OUT" ~partition:p0
              ~direction:Air_ipc.Port.Source ~refresh:1000
              ~max_message_size:64;
            Air_ipc.Port.sampling_port ~name:"S_IN" ~partition:p1
              ~direction:Air_ipc.Port.Destination ~refresh:1000
              ~max_message_size:64 ];
        channels =
          [ { Air_ipc.Port.source = "S_OUT"; destinations = [ "S_IN" ] } ] }
    in
    let r = Air_ipc.Router.create network in
    let msg = Bytes.make 32 'x' in
    Staged.stage (fun () ->
        ignore
          (Air_ipc.Router.write_sampling r ~caller:p0 ~port:"S_OUT" ~now:0 msg);
        ignore (Air_ipc.Router.drop_head r ~port:"S_IN"))
  in
  (* A whole seeded campaign over one MTF: fresh target + baseline, plan,
     tick-by-tick execution and outcome matching. *)
  let campaign_one_mtf () =
    let spec =
      Air_faults.Campaign.spec ~name:"bench-mtf" ~seed:3 ~horizon:1300
        ~injections:
          [ { Air_faults.Campaign.at = 100;
              fault =
                Air_faults.Fault.Runaway_start
                  { partition = 0;
                    process = Air_workload.Satellite.faulty_process_name } } ]
        ()
    in
    let make () = Air_faults.Engine.Module (Air_workload.Satellite.make ()) in
    Staged.stage (fun () -> ignore (Air_faults.Engine.execute ~make spec))
  in
  Test.make_grouped ~name:"faults"
    [ Test.make ~name:"plan (2 inj + 2 rates, 15 MTF)" (plan_expansion ());
      Test.make ~name:"wild access (inject+detect+recover)"
        (wild_access_hook ());
      Test.make ~name:"port perturb (write+drop)" (port_perturb ());
      Test.make ~name:"campaign execute (1 MTF)" (campaign_one_mtf ()) ]

(* --- multicore + cluster ----------------------------------------------------- *)

let extension_tests =
  let pmk_mc_tick () =
    let pid = Air_model.Ident.Partition_id.make in
    let sid = Air_model.Ident.Schedule_id.make in
    let w partition offset duration =
      { Air_model.Schedule.partition; offset; duration }
    in
    let q partition cycle duration =
      { Air_model.Schedule.partition; cycle; duration }
    in
    let table =
      Air_model.Multicore.make ~id:(sid 0) ~name:"dual" ~mtf:1000
        ~requirements:[ q (pid 0) 1000 1000; q (pid 1) 1000 1000 ]
        [ [ w (pid 0) 0 1000 ]; [ w (pid 1) 0 1000 ] ]
    in
    let pmk = Air.Pmk_mc.create ~partition_count:2 [ table ] in
    Staged.stage (fun () -> ignore (Air.Pmk_mc.tick pmk))
  in
  let cluster_tick () =
    (* Two single-partition modules exchanging one frame per 100 ticks. *)
    let pid = Air_model.Ident.Partition_id.make in
    let sid = Air_model.Ident.Schedule_id.make in
    let mk_module name ports channels scripts specs =
      let p = Air_model.Partition.make ~id:(pid 0) ~name specs in
      let schedule =
        Air_model.Schedule.make ~id:(sid 0) ~name:"solo" ~mtf:100
          ~requirements:
            [ { Air_model.Schedule.partition = pid 0; cycle = 100;
                duration = 100 } ]
          [ { Air_model.Schedule.partition = pid 0; offset = 0;
              duration = 100 } ]
      in
      Air.System.create
        (Air.System.config
           ~network:{ Air_ipc.Port.ports; channels }
           ~partitions:[ Air.System.partition_setup p scripts ]
           ~schedules:[ schedule ] ())
    in
    let sender =
      mk_module "TX"
        [ Air_ipc.Port.queuing_port ~name:"SRC" ~partition:(pid 0)
            ~direction:Air_ipc.Port.Source ~depth:8 ~max_message_size:32;
          Air_ipc.Port.queuing_port ~name:"GW" ~partition:(pid 0)
            ~direction:Air_ipc.Port.Destination ~depth:8 ~max_message_size:32 ]
        [ { Air_ipc.Port.source = "SRC"; destinations = [ "GW" ] } ]
        [ Air_pos.Script.periodic_body
            [ Air_pos.Script.Compute 2;
              Air_pos.Script.Send_queuing ("SRC", "x") ] ]
        [ Air_model.Process.spec
            ~periodicity:(Air_model.Process.Periodic 100) ~time_capacity:100
            ~wcet:2 ~base_priority:5 "tx" ]
    in
    let receiver =
      mk_module "RX"
        [ Air_ipc.Port.queuing_port ~name:"IN" ~partition:(pid 0)
            ~direction:Air_ipc.Port.Destination ~depth:8 ~max_message_size:32 ]
        []
        [ Air_pos.Script.make
            [ Air_pos.Script.Receive_queuing ("IN", Air_sim.Time.infinity) ] ]
        [ Air_model.Process.spec ~base_priority:5 "rx" ]
    in
    let cluster =
      Air.Cluster.create
        ~links:
          [ Air.Cluster.link ~from_module:0 ~from_port:"GW" ~to_module:1
              ~to_port:"IN" () ]
        [ sender; receiver ]
    in
    Staged.stage (fun () -> Air.Cluster.step cluster)
  in
  Test.make_grouped ~name:"extensions"
    [ Test.make ~name:"pmk_mc tick (2 cores)" (pmk_mc_tick ());
      Test.make ~name:"cluster tick (2 modules + bus)" (cluster_tick ()) ]

(* --- exec: per-tick vs skip-ahead ---------------------------------------- *)

(* Whole-horizon runs (creation + advance) under both executives. The
   beacon workload (one partition, full-MTF window, a 1%-duty periodic
   process — idle almost the whole horizon) is where skip-ahead collapses
   quiet spans and wins by the idle fraction; the Taskgen rows show the
   gain shrinking as window edges and utilization cut the spans short
   (10%: short windows bound every span; 90%: almost nothing to skip);
   the multicore rows compound the executive with two Pmk_mc lanes over
   the Fig. 8 tables. *)
let causal_tests =
  (* Raw correlation-id cost on a bounded tracker: one stamp, and a full
     send→forward→receive hop chain, the ring wrapping in place. *)
  let stamp () =
    let t = Air_obs.Causal.create ~capacity:4096 () in
    let now = ref 0 in
    Staged.stage (fun () ->
        incr now;
        ignore (Air_obs.Causal.stamp t ~now:!now ~partition:1 ~port:2))
  in
  let full_hop () =
    let t = Air_obs.Causal.create ~capacity:4096 () in
    let now = ref 0 in
    Staged.stage (fun () ->
        incr now;
        let id = Air_obs.Causal.stamp t ~now:!now ~partition:1 ~port:2 in
        Air_obs.Causal.forward t ~now:!now id;
        Air_obs.Causal.receive t ~now:!now ~track:1 id)
  in
  (* Stamping in situ: the full prototype tick with a flow tracker
     attached, to be read against system/"prototype tick". *)
  let prototype_tick_tracked () =
    let cfg =
      { (Air_workload.Satellite.config ()) with
        Air.System.causal = Some (Air_obs.Causal.create ~capacity:4096 ()) }
    in
    let s = Air.System.create cfg in
    Staged.stage (fun () -> Air.System.step s)
  in
  Test.make_grouped ~name:"causal"
    [ Test.make ~name:"stamp" (stamp ());
      Test.make ~name:"stamp+forward+receive" (full_hop ());
      Test.make ~name:"prototype tick (tracked)" (prototype_tick_tracked ()) ]

let profiler_tests =
  (* The profiler must be observational in cost too: the Fig. 8 prototype
     advanced 10 MTFs under the adaptive executive with and without one
     attached, plus the raw per-note cost. *)
  let advance ~profiled () =
    let config = Air_workload.Satellite.config () in
    Staged.stage (fun () ->
        let profiler =
          if profiled then Some (Air_exec.Profiler.create ()) else None
        in
        let engine =
          Air_exec.Engine.create ?profiler (Air.System.create config)
        in
        Air_exec.Engine.advance engine ~ticks:(10 * 1300))
  in
  let note () =
    let p = Air_exec.Profiler.create () in
    Staged.stage (fun () ->
        Air_exec.Profiler.note_batch p ~ticks:16 ~seconds:1e-6)
  in
  Test.make_grouped ~name:"profiler"
    [ Test.make ~name:"adaptive 10 MTFs (unprofiled)"
        (advance ~profiled:false ());
      Test.make ~name:"adaptive 10 MTFs (profiled)"
        (advance ~profiled:true ());
      Test.make ~name:"note_batch" (note ()) ]

let exec_tests =
  let beacon_config ~mtf ~work =
    let pid = Air_model.Ident.Partition_id.make 0 in
    let spec =
      Air_model.Process.spec ~periodicity:(Air_model.Process.Periodic mtf)
        ~time_capacity:mtf ~wcet:(work + 1) ~base_priority:5 "beacon"
    in
    let p = Air_model.Partition.make ~id:pid ~name:"BCN" [ spec ] in
    let schedule =
      Air_model.Schedule.make
        ~id:(Air_model.Ident.Schedule_id.make 0)
        ~name:"solo" ~mtf
        ~requirements:
          [ { Air_model.Schedule.partition = pid; cycle = mtf; duration = mtf } ]
        [ { Air_model.Schedule.partition = pid; offset = 0; duration = mtf } ]
    in
    Air.System.config
      ~partitions:
        [ Air.System.partition_setup p
            [ Air_pos.Script.periodic_body [ Air_pos.Script.Compute work ] ] ]
      ~schedules:[ schedule ] ()
  in
  let taskgen_config ~utilization seed =
    let rng = Air_sim.Rng.create seed in
    let gen =
      Air_workload.Taskgen.generate rng ~n_partitions:3 ~procs_per_partition:2
        ~utilization
    in
    let schedule =
      match
        Air_analysis.Synthesis.synthesize gen.Air_workload.Taskgen.requirements
      with
      | Ok s -> s
      | Error f ->
        Format.kasprintf failwith "synthesis: %a"
          Air_analysis.Synthesis.pp_failure f
    in
    ( Air.System.config
        ~partitions:
          (List.map
             (fun (p, scripts) -> Air.System.partition_setup p scripts)
             gen.Air_workload.Taskgen.partitions)
        ~schedules:[ schedule ] (),
      schedule.Air_model.Schedule.mtf )
  in
  let advance ~mode config ~ticks =
    Staged.stage (fun () ->
        let engine =
          Air_exec.Engine.create ~mode (Air.System.create config)
        in
        Air_exec.Engine.advance engine ~ticks)
  in
  (* Each workload is measured under all three strategies: the BENCH_5
     regression was always-skip paying the [Clock.next_interesting] probe
     per executed tick on dense workloads; the adaptive default must sit
     within noise of per-tick there while keeping always-skip's win on
     the sparse rows. *)
  let modes name config ticks =
    [ Test.make
        ~name:(Printf.sprintf "per-tick (%s)" name)
        (advance ~mode:Air_exec.Engine.Per_tick config ~ticks);
      Test.make
        ~name:(Printf.sprintf "always-skip (%s)" name)
        (advance ~mode:Air_exec.Engine.Skip config ~ticks);
      Test.make
        ~name:(Printf.sprintf "adaptive (%s)" name)
        (advance ~mode:Air_exec.Engine.Adaptive config ~ticks) ]
  in
  let beacon = beacon_config ~mtf:10_000 ~work:50 in
  (* Fully dense: the beacon computes on every tick of every frame, so no
     span is ever skippable and any skip-ahead overhead is pure loss. *)
  let dense_beacon = beacon_config ~mtf:10_000 ~work:9_999 in
  let sparse, sparse_mtf = taskgen_config ~utilization:0.1 7 in
  let dense, dense_mtf = taskgen_config ~utilization:0.9 7 in
  let leo =
    match Air_config.Loader.load_file "examples/configs/leo_satellite.air" with
    | Ok config -> config
    | Error _ ->
      (* Benchmarks may run from a different cwd; fall back to the
         equivalent built-in Fig. 8 workload. *)
      Air_workload.Satellite.config ()
  in
  let fig8 =
    { (Air_workload.Satellite.config ()) with Air.System.cores = Some 2 }
  in
  let beacon_ticks = 10 * 10_000
  and sparse_ticks = 10 * sparse_mtf
  and dense_ticks = 10 * dense_mtf
  and leo_ticks = 10 * 1300
  and fig8_ticks = 10 * 1300 in
  Test.make_grouped ~name:"exec"
    (modes "beacon 1% duty, 10 MTFs" beacon beacon_ticks
    @ modes "beacon 100% duty, 10 MTFs" dense_beacon beacon_ticks
    @ modes "taskgen 10%, 10 MTFs" sparse sparse_ticks
    @ modes "taskgen 90%, 10 MTFs" dense dense_ticks
    @ modes "leo_satellite, 10 MTFs" leo leo_ticks
    @ modes "fig8, 2 cores, 10 MTFs" fig8 fig8_ticks)

(* --- fleet/* : parallel constellation engine ------------------------------- *)

let fleet_tests =
  (* A 256-satellite LEO ring: every module is a 1%-duty beacon pushing
     one ISL frame per 100-tick MTF through its TX0 gateway into the next
     satellite's RX. The sequential row is [Cluster.run]; the fleet rows
     advance an equivalent constellation through the conservative
     windowed engine at increasing domain counts (bit-identical
     observables, see DESIGN.md §10). The fleets stay open across
     measured runs, so the rows price steady-state windows — lookahead
     segmentation, mailbox buffering, barrier merge — not domain
     spawning. On a single hardware core the domain rows can only show
     the protocol overhead; the speedup claim needs real parallelism. *)
  let satellites = 256 in
  let isl_latency = 8 in
  let satellite index =
    let sat = Air_model.Ident.Partition_id.make 0 in
    let network =
      { Air_ipc.Port.ports =
          [ Air_ipc.Port.queuing_port ~name:"ISL_SRC" ~partition:sat
              ~direction:Air_ipc.Port.Source ~depth:8 ~max_message_size:64;
            Air_ipc.Port.queuing_port ~name:"TX0" ~partition:sat
              ~direction:Air_ipc.Port.Destination ~depth:8
              ~max_message_size:64;
            Air_ipc.Port.queuing_port ~name:"RX" ~partition:sat
              ~direction:Air_ipc.Port.Destination ~depth:16
              ~max_message_size:64 ];
        channels =
          [ { Air_ipc.Port.source = "ISL_SRC"; destinations = [ "TX0" ] } ] }
    in
    let partition =
      Air_model.Partition.make ~id:sat ~name:"SAT"
        [ Air_model.Process.spec ~periodicity:(Air_model.Process.Periodic 100)
            ~time_capacity:100 ~wcet:2 ~base_priority:5 "beacon";
          Air_model.Process.spec ~base_priority:4 "uplink" ]
    in
    let schedule =
      Air_model.Schedule.make
        ~id:(Air_model.Ident.Schedule_id.make 0)
        ~name:"solo" ~mtf:100
        ~requirements:
          [ { Air_model.Schedule.partition = sat; cycle = 100; duration = 100 } ]
        [ { Air_model.Schedule.partition = sat; offset = 0; duration = 100 } ]
    in
    Air.System.create
      (Air.System.config ~network
         ~partitions:
           [ Air.System.partition_setup partition
               [ Air_pos.Script.periodic_body
                   [ Air_pos.Script.Compute 1;
                     Air_pos.Script.Send_queuing
                       ("ISL_SRC", Printf.sprintf "isl-frame-%d" index) ];
                 Air_pos.Script.make
                   [ Air_pos.Script.Receive_queuing ("RX", Air_sim.Time.infinity) ] ] ]
         ~schedules:[ schedule ] ())
  in
  let make_constellation () =
    Air.Cluster.create
      ~bus:{ Air.Cluster.latency = isl_latency; bytes_per_tick = 64 }
      ~links:
        (Air_fleet.Topology.links ~latency:isl_latency ~gateway:"TX"
           ~ingress:"RX" Air_fleet.Topology.Ring ~n:satellites)
      (List.init satellites satellite)
  in
  let ticks = 1_000 in
  (* Built lazily on the row's first measured run: staging-time
     construction would leave four 256-module constellations resident on
     the heap for the whole harness, inflating GC costs in every earlier
     group's nanosecond-scale rows. *)
  let sequential () =
    let cluster = lazy (make_constellation ()) in
    Staged.stage (fun () -> Air.Cluster.run (Lazy.force cluster) ~ticks)
  in
  let fleet domains () =
    let fleet =
      lazy (Air_fleet.Fleet.create ~domains (make_constellation ()))
    in
    Staged.stage (fun () -> Air_fleet.Fleet.run (Lazy.force fleet) ~ticks)
  in
  Test.make_grouped ~name:"fleet"
    [ Test.make ~name:"ring 256, sequential, 10 MTFs" (sequential ());
      Test.make ~name:"ring 256, 1 domain, 10 MTFs" (fleet 1 ());
      Test.make ~name:"ring 256, 2 domains, 10 MTFs" (fleet 2 ());
      Test.make ~name:"ring 256, 4 domains, 10 MTFs" (fleet 4 ()) ]

(* --- harness ---------------------------------------------------------------- *)

let benchmark ~quota ~dry_run tests =
  let ols =
    Analyze.ols ~bootstrap:0 ~r_square:true ~predictors:Measure.[| run |]
  in
  let instances = Instance.[ monotonic_clock ] in
  let cfg =
    if dry_run then
      (* Smoke mode for `make check`: a handful of runs per test, enough to
         prove every benchmark body executes and the export pipeline works;
         the estimates are not meaningful. *)
      Benchmark.cfg ~limit:50 ~quota:(Time.second 0.01) ~stabilize:false
        ~kde:None ()
    else
      Benchmark.cfg ~limit:2000 ~quota:(Time.second quota) ~stabilize:true
        ~kde:(Some 1000) ()
  in
  let raw = Benchmark.all cfg instances tests in
  let results =
    List.map (fun instance -> Analyze.all ols instance raw) instances
  in
  Analyze.merge ols instances results

(* (name, OLS ns-per-run estimate) rows of the monotonic-clock measure. *)
let collect_rows results =
  let rows = ref [] in
  Hashtbl.iter
    (fun measure per_test ->
      if String.equal measure (Measure.label Instance.monotonic_clock) then
        Hashtbl.iter
          (fun name ols ->
            let estimate =
              match Analyze.OLS.estimates ols with
              | Some (e :: _) -> e
              | Some [] | None -> nan
            in
            rows := (name, estimate) :: !rows)
          per_test)
    results;
  List.sort (fun (a, _) (b, _) -> String.compare a b) !rows

let print_rows rows =
  List.iter
    (fun (name, est) -> Format.printf "%-52s %12.1f ns/run@." name est)
    rows

let json_escape s =
  let b = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | '\t' -> Buffer.add_string b "\\t"
      | c when Char.code c < 0x20 ->
        Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char b c)
    s;
  Buffer.contents b

let export_json ~path ~quota ~dry_run rows =
  let b = Buffer.create 4096 in
  Buffer.add_string b "{\n  \"schema\": \"air-bench/1\",\n";
  Buffer.add_string b "  \"unit\": \"ns/run\",\n";
  Buffer.add_string b
    (Printf.sprintf "  \"quota_s\": %s,\n"
       (if dry_run then "0.01" else Printf.sprintf "%g" quota));
  Buffer.add_string b
    (Printf.sprintf "  \"dry_run\": %b,\n  \"results\": [\n" dry_run);
  List.iteri
    (fun i (name, est) ->
      Buffer.add_string b
        (Printf.sprintf "    {\"name\": \"%s\", \"ns_per_run\": %s}%s\n"
           (json_escape name)
           (* NaN is not valid JSON; an estimate the OLS could not produce
              exports as null. *)
           (if Float.is_nan est then "null" else Printf.sprintf "%.3f" est)
           (if i = List.length rows - 1 then "" else ",")))
    rows;
  Buffer.add_string b "  ]\n}\n";
  Out_channel.with_open_text path (fun oc ->
      Out_channel.output_string oc (Buffer.contents b))

let () =
  let json_path = ref None in
  let quota = ref 0.5 in
  let dry_run = ref false in
  Arg.parse
    [ ("--json", Arg.String (fun p -> json_path := Some p),
       "FILE  export results as JSON to FILE");
      ("--quota", Arg.Set_float quota,
       "SECONDS  sampling quota per test (default 0.5)");
      ("--dry-run", Arg.Set dry_run,
       "  smoke mode: a few runs per test, meaningless estimates") ]
    (fun a -> raise (Arg.Bad (Printf.sprintf "unexpected argument %S" a)))
    "main.exe [--json FILE] [--quota SECONDS] [--dry-run]";
  let groups =
    [ scheduler_tests; store_tests; pal_tests; ipc_tests; mmu_tests;
      contention_tests; analysis_tests; system_tests; recorder_tests;
      telemetry_tests; faults_tests; extension_tests; exec_tests;
      causal_tests; profiler_tests; fleet_tests ]
  in
  let all_rows =
    List.concat_map
      (fun tests ->
        Format.printf "@.-- %s --@." (Test.name tests);
        let rows =
          collect_rows (benchmark ~quota:!quota ~dry_run:!dry_run tests)
        in
        print_rows rows;
        rows)
      groups
  in
  match !json_path with
  | None -> ()
  | Some path ->
    export_json ~path ~quota:!quota ~dry_run:!dry_run all_rows;
    Format.printf "@.results exported to %s (%d benchmarks)@." path
      (List.length all_rows)
