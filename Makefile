.PHONY: all build test check bench bench-diff fmt exec-smoke trace-smoke \
  telemetry-smoke fault-smoke profile-smoke fleet-smoke \
  interference-smoke clean

all: build

build:
	dune build

test:
	dune runtest

# Tier-1 gate: full build, full test suite, and a smoke pass of the
# benchmark harness (a few runs per benchmark, JSON export exercised).
check:
	dune build
	dune runtest
	dune exec bench/main.exe -- --dry-run --json _build/bench_smoke.json

# Full benchmark run with committed JSON artifact.
bench:
	dune exec bench/main.exe -- --json BENCH_9.json

# Regression gate over the two most recent committed artifacts: every row
# present in both is compared against its group's threshold ratio
# (bench/diff.ml); nonzero exit on any regression beyond threshold.
bench-diff:
	dune exec bench/diff.exe -- BENCH_8.json BENCH_9.json

# Format gate: the build image carries no ocamlformat, so the gate enforces
# the cheap invariants every formatter run would — no tab characters and no
# trailing whitespace in OCaml sources or dune files.
fmt:
	@if grep -rnP '\t|[ \t]+$$' --include='*.ml' --include='*.mli' \
	  --include=dune lib bin test bench; then \
	  echo 'fmt: tabs or trailing whitespace (listed above)'; exit 1; \
	else echo 'fmt: clean'; fi

# End-to-end executive pass: the example module sharded over two cores,
# advanced once under the skip-ahead executive and once per-tick with the
# telemetry exports compared byte for byte; then the document's seeded
# fault campaigns through the multicore skip-ahead executive (containment
# and reproducibility enforced by the exit code).
exec-smoke:
	dune exec bin/air_run.exe -- examples/configs/leo_satellite.air \
	  --cores 2 -t 20000 --speed --telemetry-json /tmp/air_exec_skip.json
	dune exec bin/air_run.exe -- examples/configs/leo_satellite.air \
	  --cores 2 -t 20000 --no-skip --telemetry-json /tmp/air_exec_ref.json
	cmp /tmp/air_exec_skip.json /tmp/air_exec_ref.json
	dune exec bin/air_run.exe -- examples/configs/leo_satellite.air \
	  --faults --cores 2 --campaign-json /tmp/air_exec_campaign.json

# End-to-end flight-recorder pass: run an example configuration with the
# recorder attached, export the Chrome trace and replay-check the event
# trace against the configured schedules (nonzero exit on any violation).
trace-smoke:
	dune exec bin/air_run.exe -- examples/configs/leo_satellite.air \
	  -t 3000 --trace-json /tmp/air_trace.json --check-trace

# End-to-end telemetry pass: run an example configuration with the frame
# accumulator attached, export CSV + JSON, and validate both artifacts
# (JSON well-formedness, schema marker, CSV column discipline).
telemetry-smoke:
	dune build test/telemetry_smoke.exe
	dune exec bin/air_run.exe -- examples/configs/leo_satellite.air \
	  -t 8000 --telemetry-json /tmp/air_telemetry.json \
	  --telemetry-csv /tmp/air_telemetry.csv
	dune exec test/telemetry_smoke.exe -- \
	  /tmp/air_telemetry.json /tmp/air_telemetry.csv

# End-to-end fault-injection pass: run the example document's seeded
# campaigns twice through the engine + containment oracle, export both
# reports, and validate them (JSON well-formedness, schema marker, all
# campaigns contained and reproducible, byte-identical reruns).
fault-smoke:
	dune build test/fault_smoke.exe
	dune exec bin/air_run.exe -- examples/configs/leo_satellite.air \
	  --faults --campaign-json /tmp/air_campaign_a.json
	dune exec bin/air_run.exe -- examples/configs/leo_satellite.air \
	  --faults --campaign-json /tmp/air_campaign_b.json
	dune exec test/fault_smoke.exe -- \
	  /tmp/air_campaign_a.json /tmp/air_campaign_b.json

# End-to-end self-profiler pass: run the example module under the default
# adaptive executive with the profiler attached, export the air-profile/1
# JSON and validate it (well-formedness, schema marker, step/batch/skip
# bucket ticks partitioning the requested horizon exactly, consistent
# probe accounting).
profile-smoke:
	dune build test/profile_smoke.exe
	dune exec bin/air_run.exe -- examples/configs/leo_satellite.air \
	  -t 20000 --speed --profile-json /tmp/air_profile.json
	dune exec test/profile_smoke.exe -- /tmp/air_profile.json 20000

# End-to-end parallel-fleet pass: advance the shipped constellation
# document sequentially and across 2 and 4 OCaml domains, and require the
# three observable fingerprints (traces, counters, bus state) to be
# byte-identical — the conservative engine's bit-identity guarantee,
# enforced by the exit code. Also lints the fleet's stats JSON.
fleet-smoke:
	dune build test/fleet_smoke.exe
	dune exec test/fleet_smoke.exe -- examples/configs/constellation.air 5000

# End-to-end interference pass: replay the bus-hog scenario against the
# example satellite sharded over two lanes, and validate the interference
# telemetry (throttled ticks on a partition other than the hog, JSON
# well-formedness) and the health-monitor discipline (temporal
# degradation exactly once per offending frame).
interference-smoke:
	dune build test/interference_smoke.exe
	dune exec test/interference_smoke.exe -- \
	  examples/configs/leo_satellite.air CAMERA

clean:
	dune clean
