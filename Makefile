.PHONY: all build test check bench clean

all: build

build:
	dune build

test:
	dune runtest

# Tier-1 gate: full build, full test suite, and a smoke pass of the
# benchmark harness (a few runs per benchmark, JSON export exercised).
check:
	dune build
	dune runtest
	dune exec bench/main.exe -- --dry-run --json _build/bench_smoke.json

# Full benchmark run with committed JSON artifact.
bench:
	dune exec bench/main.exe -- --json BENCH_1.json

clean:
	dune clean
