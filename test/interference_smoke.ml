(* Standalone validator for the interference-smoke make target: load an
   (air-system ...) document carrying a (contention ...) model, shard it
   over two lanes, replay the shipped bus-hog scenario (two mid-MTF
   bandwidth bursts against the named partition), and check the
   interference story end to end:

   - the telemetry JSON export is well-formed, carries the schema marker
     and the interference columns, and every frame is interference-marked;
   - throttled ticks show up in the telemetry — and on a partition other
     than the hog (cross-lane slowdown, not self-inflicted);
   - the health monitor fires temporal degradation exactly once per
     offending frame (a frame where some partition's demand exceeds its
     budget), never more, never less.

   Exits nonzero on the first problem. *)

open Air_model

let fail fmt = Printf.ksprintf (fun m -> prerr_endline m; exit 1) fmt

(* The shipped bus-hog campaign: bursts worth 150% of the hog's per-window
   budget at ticks 1550 and 9550 of a 20000-tick horizon. One extra tick
   closes the final telemetry frame (boundary ticks close the previous
   frame at the start of the next step). *)
let horizon = 20_000
let bursts = [ 1_550; 9_550 ]
let permille = 1_500

let load path =
  match Air_config.Loader.load_file path with
  | Ok cfg -> cfg
  | Error m -> fail "%s: %s" path m

let hog_id cfg name =
  let rec find = function
    | [] -> fail "no partition named %s in the document" name
    | s :: rest ->
      if String.equal s.Air.System.partition.Partition.name name then
        s.Air.System.partition.Partition.id
      else find rest
  in
  find cfg.Air.System.partitions

let () =
  let path, hog_name =
    match Sys.argv with
    | [| _; path; hog |] -> (path, hog)
    | _ -> fail "usage: %s CONFIG.air HOG_PARTITION" Sys.argv.(0)
  in
  let cfg = load path in
  if cfg.Air.System.contention = None then
    fail "%s: no (contention ...) section; smoke proves nothing" path;
  let cfg =
    { cfg with
      Air.System.cores = Some 2;
      Air.System.telemetry =
        (match cfg.Air.System.telemetry with
        | Some t -> Some t
        | None -> Some Air_obs.Telemetry.default_config) }
  in
  let hog = hog_id cfg hog_name in
  let hog_index = Ident.Partition_id.index hog in
  let system = Air.System.create cfg in
  let cursor = ref 0 in
  let run_to t =
    Air.System.run system ~ticks:(t - !cursor);
    cursor := t
  in
  List.iter
    (fun at ->
      run_to at;
      match Air.System.inject_bandwidth_hog system hog ~permille with
      | Some cost when cost > 0 -> ()
      | Some _ | None -> fail "burst at %d charged nothing" at)
    bursts;
  run_to (horizon + 1);

  (* Telemetry artifact. *)
  let frames = Air.System.telemetry_frames system in
  if frames = [] then fail "no telemetry frames closed in %d ticks" horizon;
  let json = Air_obs.Telemetry.to_json frames in
  (match Json_lint.check json with
  | Ok () -> ()
  | Error e -> fail "telemetry export: invalid JSON: %s" e);
  if not (Astring_contains.contains json Air_obs.Telemetry.schema) then
    fail "telemetry export: missing schema marker %S"
      Air_obs.Telemetry.schema;
  if not (Astring_contains.contains json "\"throttled\":") then
    fail "telemetry export: interference columns absent";
  List.iter
    (fun f ->
      if not f.Air_obs.Telemetry.f_interference then
        fail "frame %d not interference-marked" f.Air_obs.Telemetry.f_index)
    frames;

  (* Cross-lane slowdown: some partition other than the hog throttled. *)
  let victim_throttled, offending, last_stop =
    List.fold_left
      (fun (thr, off, _) f ->
        let thr = ref thr and off = ref off in
        Array.iteri
          (fun i pf ->
            if i <> hog_index then
              thr := !thr + pf.Air_obs.Telemetry.pf_throttled;
            if
              pf.Air_obs.Telemetry.pf_mem_demand
              > pf.Air_obs.Telemetry.pf_mem_budget
            then incr off)
          f.Air_obs.Telemetry.f_partitions;
        (!thr, !off, f.Air_obs.Telemetry.f_stop))
      (0, 0, 0) frames
  in
  if victim_throttled = 0 then
    fail "no victim throttled: the slowdown curve never engaged";
  if offending = 0 then fail "no offending frame: the bursts never blew";

  (* Exactly one HM temporal-degradation per offending frame. Events in
     the still-open window past the last closed frame are excluded, same
     as the frames they would be counted against. *)
  let degradations =
    List.length
      (List.filter
         (fun (t, ev) ->
           t < last_stop
           &&
           match ev with
           | Event.Hm_error { code = Error.Temporal_degradation; _ } ->
             true
           | _ -> false)
         (Air_sim.Trace.to_list (Air.System.trace system)))
  in
  if degradations <> offending then
    fail "HM fired %d times for %d offending frames" degradations offending;
  Printf.printf
    "interference smoke OK: %d frames, %d offending, %d degradations, %d \
     victim throttled ticks\n"
    (List.length frames) offending degradations victim_throttled
