(* Shared-resource contention model (Air_spatial.Contention) and its
   wiring through the executive:

   - pure window accounting: budgets, the exactly-once blow signal, the
     slowdown curve's co-run gating, pressure decay, rollover reset;
   - MTF-boundary budget reset and schedule-switch hygiene — no demand or
     stall debt leaks across windows;
   - inert contention (huge budgets) is observationally invisible: traces,
     clock and metrics match a contention-free run across every engine
     mode and lane count (qcheck over seeded random modules);
   - active contention stays bit-identical across Per_tick / Skip /
     Adaptive (stall consumption is never skipped over);
   - multicore victims on other lanes throttle only within the modeled
     curve, and the budget blow escalates as temporal degradation exactly
     once per offending frame;
   - the (contention …) grammar round-trips through Encode, including the
     meaningful present-but-empty curve. *)

open Air_sim
open Air_model
open Air_pos
open Air
open Ident
module Contention = Air_spatial.Contention
module Engine = Air_exec.Engine

let check = Alcotest.check
let qcheck = QCheck_alcotest.to_alcotest
let pid = Partition_id.make
let sid = Schedule_id.make
let w partition offset duration = { Schedule.partition; offset; duration }
let q partition cycle duration = { Schedule.partition; cycle; duration }

let count_events p s = Trace.count p (System.trace s)

let degradations s =
  count_events
    (function
      | Event.Hm_error { code = Error.Temporal_degradation; _ } -> true
      | _ -> false)
    s

(* --- Pure window accounting --------------------------------------------- *)

let config_validation () =
  let invalid f = Alcotest.check_raises "rejected" (Invalid_argument "") f in
  let invalid f =
    ignore invalid;
    match f () with
    | exception Invalid_argument _ -> ()
    | _ -> Alcotest.fail "expected Invalid_argument"
  in
  invalid (fun () -> Contention.config ~default_budget:0 ());
  invalid (fun () ->
      Contention.config ~default_budget:10 ~budgets:[ (0, -1) ] ());
  invalid (fun () ->
      Contention.config ~default_budget:10 ~curve:[ (100, 1); (100, 2) ] ());
  invalid (fun () ->
      Contention.config ~default_budget:10 ~curve:[ (0, -1) ] ());
  invalid (fun () ->
      Contention.config ~default_budget:10 ~pressure_decay_permille:1001 ());
  (* Budget overrides must name existing partitions. *)
  invalid (fun () ->
      Contention.create ~partitions:2 ~lanes:1
        (Contention.config ~default_budget:10 ~budgets:[ (5, 3) ] ()))

let blow_exactly_once_per_window () =
  let c =
    Contention.create ~partitions:2 ~lanes:1
      (Contention.config ~default_budget:5 ())
  in
  check Alcotest.bool "under budget" false
    (Contention.charge c ~partition:0 ~cost:5);
  check Alcotest.bool "first over-budget charge reports" true
    (Contention.charge c ~partition:0 ~cost:1);
  check Alcotest.bool "second does not" false
    (Contention.charge c ~partition:0 ~cost:10);
  check Alcotest.bool "blown" true (Contention.blown c 0);
  check Alcotest.int "demand accumulated" 16 (Contention.demand c 0);
  Contention.rollover c ~now:100;
  check Alcotest.bool "reset" false (Contention.blown c 0);
  check Alcotest.int "demand reset" 0 (Contention.demand c 0);
  check Alcotest.bool "blows again next window" true
    (Contention.charge c ~partition:0 ~cost:6)

let curve_requires_two_busy_lanes () =
  let cfg = Contention.config ~default_budget:5 ~curve:[ (0, 1) ] () in
  (* Single lane: aggregate overrun alone never stalls anyone. *)
  let c = Contention.create ~partitions:2 ~lanes:2 cfg in
  ignore (Contention.charge c ~partition:0 ~cost:20);
  check Alcotest.int "one busy lane" 1 (Contention.busy_lanes c);
  check Alcotest.int "no stall" 0 (Contention.stall_debt c 0);
  (* A second lane with demand arms the curve for further charges. *)
  Contention.set_lane c 1;
  ignore (Contention.charge c ~partition:1 ~cost:1);
  check Alcotest.int "two busy lanes" 2 (Contention.busy_lanes c);
  check Alcotest.int "charging partition stalls" 1
    (Contention.stall_debt c 1);
  check Alcotest.bool "stall pending" true
    (Contention.stall_pending c ~partition:1);
  Contention.consume_stall c ~partition:1;
  check Alcotest.int "consumed counts as throttled" 1
    (Contention.throttled c 1);
  check Alcotest.bool "debt served" false
    (Contention.stall_pending c ~partition:1)

let curve_steps_with_overage () =
  let cfg =
    Contention.config ~default_budget:5 ~curve:[ (0, 1); (500, 3) ] ()
  in
  let c = Contention.create ~partitions:2 ~lanes:2 cfg in
  check Alcotest.int "largest step is the oracle bound" 3
    (Contention.max_stall_per_access c);
  ignore (Contention.charge c ~partition:0 ~cost:10);
  Contention.set_lane c 1;
  (* Aggregate budget 10; demand 11 → 100‰ over → step 1. *)
  ignore (Contention.charge c ~partition:1 ~cost:1);
  check Alcotest.int "low overage, small step" 1 (Contention.stall_debt c 1);
  (* Demand 16 → 600‰ over → step 3. *)
  ignore (Contention.charge c ~partition:1 ~cost:5);
  check Alcotest.int "high overage, big step" 4 (Contention.stall_debt c 1)

let pressure_decays_across_windows () =
  let cfg =
    Contention.config ~default_budget:100 ~pressure_decay_permille:500 ()
  in
  let c = Contention.create ~partitions:2 ~lanes:1 cfg in
  ignore (Contention.charge c ~partition:0 ~cost:40);
  Contention.rollover c ~now:100;
  check Alcotest.int "window demand folded in" 40 (Contention.pressure c 0);
  Contention.rollover c ~now:200;
  check Alcotest.int "halved by decay" 20 (Contention.pressure c 0);
  ignore (Contention.charge c ~partition:1 ~cost:8);
  Contention.rollover c ~now:300;
  check Alcotest.int "co-runner pressure sums the others" 8
    (Contention.co_runner_pressure c 0);
  check Alcotest.int "and vice versa" 10 (Contention.co_runner_pressure c 1)

(* --- Module construction helpers ----------------------------------------- *)

(* Two partitions, one process each, alternating 50-tick windows in a
   100-tick MTF. Each process touches memory [reads] times per activation
   (granted in-region reads: TLB hit = 1 unit each after the first walk).
   Memory accesses are zero-duration script actions, so each read is
   paired with a one-tick computation — the window's charges spread over
   [reads] consecutive ticks instead of landing in one. Building happens
   in two passes: a probe run resolves the deterministic region bases the
   scripts then read from. *)
let hammer_config ?cores ?contention ?telemetry ~reads () =
  let make_parts scripts =
    List.mapi
      (fun i (name, script) ->
        System.partition_setup
          (Partition.make ~id:(pid i) ~name
             [ Process.spec ~periodicity:(Process.Periodic 100)
                 ~time_capacity:Time.infinity ~wcet:50 ~base_priority:5
                 "worker" ])
          [ script ])
      scripts
  in
  let schedule =
    Schedule.make ~id:(sid 0) ~name:"alt" ~mtf:100
      ~requirements:[ q (pid 0) 100 50; q (pid 1) 100 50 ]
      [ w (pid 0) 0 50; w (pid 1) 50 50 ]
  in
  let probe =
    System.create
      (System.config
         ~partitions:
           (make_parts
              [ ("A", Script.periodic_body [ Script.Compute 1 ]);
                ("B", Script.periodic_body [ Script.Compute 1 ]) ])
         ~schedules:[ schedule ] ())
  in
  let base i =
    match System.region_of probe (pid i) Air_spatial.Memory.Data with
    | Some r -> r.Air_spatial.Memory.base
    | None -> Alcotest.fail "probe module has no data region"
  in
  let script i =
    Script.periodic_body
      (List.concat
         (List.init reads (fun _ ->
              [ Script.Read_memory (base i); Script.Compute 1 ])))
  in
  System.config
    ~partitions:(make_parts [ ("A", script 0); ("B", script 1) ])
    ~schedules:[ schedule ] ?cores ?contention ?telemetry ()

(* --- Window hygiene ------------------------------------------------------ *)

(* Per-window demand is [reads + 1] units (one TLB miss walk on the very
   first access of the run, hits after). A budget above one window's worth
   but below two would blow by the second MTF if anything leaked. *)
let no_leak_across_windows () =
  let contention = Contention.config ~default_budget:15 () in
  let s = System.create (hammer_config ~contention ~reads:10 ()) in
  System.run s ~ticks:1000;
  check Alcotest.int "no budget blow across 10 clean windows" 0
    (degradations s);
  (match System.contention s with
  | None -> Alcotest.fail "contention model expected"
  | Some c ->
    check Alcotest.bool "window account stays bounded" true
      (Contention.demand c 0 <= 15))

let blow_once_per_offending_frame () =
  let contention = Contention.config ~default_budget:4 () in
  let telemetry = Air_obs.Telemetry.default_config in
  let s =
    System.create (hammer_config ~contention ~telemetry ~reads:10 ())
  in
  (* Boundary ticks close the previous frame at the start of the next
     step: one tick past the last boundary closes all ten frames, and the
     freshly opened window has only one sub-budget read charged. *)
  System.run s ~ticks:1001;
  let frames = System.telemetry_frames s in
  let offending =
    List.fold_left
      (fun acc f ->
        Array.fold_left
          (fun acc pf ->
            if pf.Air_obs.Telemetry.pf_mem_demand
               > pf.Air_obs.Telemetry.pf_mem_budget
            then acc + 1
            else acc)
          acc f.Air_obs.Telemetry.f_partitions)
      0 frames
  in
  check Alcotest.bool "some frames offend" true (offending > 0);
  check Alcotest.int "exactly one degradation per offending frame"
    offending (degradations s);
  List.iter
    (fun f ->
      check Alcotest.bool "frames are marked" true
        f.Air_obs.Telemetry.f_interference)
    frames

(* The boundary tick's charges belong to the new window: run to exactly
   one tick past a boundary and the open window holds at most that one
   tick's worth of demand. *)
let boundary_charges_open_new_window () =
  let contention = Contention.config ~default_budget:1000 () in
  let s = System.create (hammer_config ~contention ~reads:10 ()) in
  System.run s ~ticks:301;
  match System.contention s with
  | None -> Alcotest.fail "contention model expected"
  | Some c ->
    check Alcotest.int "window reopened at the boundary" 300
      (Contention.window_start c);
    check Alcotest.bool "fresh window holds one tick's charges" true
      (Contention.demand c 0 + Contention.demand c 1 <= 5)

(* --- Observational invisibility (qcheck) --------------------------------- *)

let taskgen_config ?cores ?contention seed =
  let rng = Rng.create seed in
  let n_partitions = 2 + (seed mod 3) in
  let gen =
    Air_workload.Taskgen.generate rng ~n_partitions ~procs_per_partition:2
      ~utilization:0.4
  in
  match
    Air_analysis.Synthesis.synthesize gen.Air_workload.Taskgen.requirements
  with
  | Error _ -> None
  | Ok schedule ->
    Some
      ( System.config
          ~partitions:
            (List.map
               (fun (p, scripts) -> System.partition_setup p scripts)
               gen.Air_workload.Taskgen.partitions)
          ~schedules:[ schedule ] ?cores ?contention (),
        schedule.Schedule.mtf )

let rendered_trace system =
  List.map
    (fun (t, ev) -> Format.asprintf "[%d] %a" t Event.pp ev)
    (Trace.to_list (System.trace system))

let assert_same_observables ~what reference candidate =
  check Alcotest.int (what ^ ": clock") (System.now reference)
    (System.now candidate);
  check
    Alcotest.(list string)
    (what ^ ": event trace")
    (rendered_trace reference) (rendered_trace candidate);
  check Alcotest.string
    (what ^ ": metrics JSON")
    (System.metrics_json reference)
    (System.metrics_json candidate)

(* Charging without consequence (huge budgets, charged compute ticks, no
   curve) must be invisible: same traces, clock and metrics as a module
   with no contention at all, whatever the lane count and engine mode. *)
let inert_contention_is_invisible =
  QCheck.Test.make
    ~name:"inert contention is trace-invisible (all modes, 1-4 lanes)"
    ~count:15
    QCheck.(int_range 1 10_000)
    (fun seed ->
      let cores = 1 + (seed mod 4) in
      let inert =
        Contention.config ~default_budget:1_000_000_000 ~curve:[]
          ~compute_cost:1 ()
      in
      let modes = [ Engine.Per_tick; Engine.Skip; Engine.Adaptive ] in
      List.for_all
        (fun mode ->
          match
            (taskgen_config ~cores seed, taskgen_config ~cores ~contention:inert seed)
          with
          | None, _ | _, None -> QCheck.assume_fail ()
          | Some (plain, mtf), Some (contended, _) ->
            let ticks = (3 * mtf) + (seed mod 997) in
            let reference = System.create plain in
            Engine.advance (Engine.create ~mode reference) ~ticks;
            let candidate = System.create contended in
            Engine.advance (Engine.create ~mode candidate) ~ticks;
            assert_same_observables
              ~what:(Printf.sprintf "seed %d cores %d" seed cores)
              reference candidate;
            true)
        modes)

(* Active contention (tight budgets, stalls, HM escalations) is engine-mode
   independent: stall consumption must never be skipped over. *)
let active_contention_mode_independent =
  QCheck.Test.make
    ~name:"active contention is bit-identical across engine modes" ~count:15
    QCheck.(int_range 1 10_000)
    (fun seed ->
      let cores = 2 + (seed mod 3) in
      let tight =
        Contention.config ~default_budget:20 ~curve:[ (0, 1); (300, 2) ]
          ~compute_cost:1 ()
      in
      let build () =
        match taskgen_config ~cores ~contention:tight seed with
        | None -> None
        | Some (cfg, mtf) -> Some (System.create cfg, mtf)
      in
      match (build (), build (), build ()) with
      | None, _, _ | _, None, _ | _, _, None -> QCheck.assume_fail ()
      | Some (per_tick, mtf), Some (skip, _), Some (adaptive, _) ->
        let ticks = (3 * mtf) + (seed mod 997) in
        Engine.advance (Engine.create ~mode:Engine.Per_tick per_tick) ~ticks;
        Engine.advance (Engine.create ~mode:Engine.Skip skip) ~ticks;
        Engine.advance (Engine.create ~mode:Engine.Adaptive adaptive) ~ticks;
        assert_same_observables
          ~what:(Printf.sprintf "seed %d skip" seed)
          per_tick skip;
        assert_same_observables
          ~what:(Printf.sprintf "seed %d adaptive" seed)
          per_tick adaptive;
        true)

(* --- Multicore victims --------------------------------------------------- *)

(* Partition 1 (lane 1 under 2-core sharding) hogs the bus mid-window;
   partition 0's later window on lane 0 sees an armed curve and throttles
   — but only within the modeled bound. *)
let victim_throttles_within_curve () =
  let contention =
    Contention.config ~default_budget:8 ~curve:[ (0, 1) ] ()
  in
  let telemetry = Air_obs.Telemetry.default_config in
  (* Windows flipped: the hog's partition runs first. *)
  let cfg = hammer_config ~cores:2 ~contention ~telemetry ~reads:6 () in
  let schedule =
    Schedule.make ~id:(sid 0) ~name:"alt" ~mtf:100
      ~requirements:[ q (pid 0) 100 50; q (pid 1) 100 50 ]
      [ w (pid 1) 0 50; w (pid 0) 50 50 ]
  in
  let cfg = { cfg with System.schedules = [ schedule ] } in
  let s = System.create cfg in
  System.run s ~ticks:10;
  (match System.inject_bandwidth_hog s (pid 1) ~permille:3000 with
  | None -> Alcotest.fail "contention model expected"
  | Some cost -> check Alcotest.bool "burst charged" true (cost > 0));
  (* One tick past the MTF boundary so the frame for [0,100) closes. *)
  System.run s ~ticks:91;
  let frames = System.telemetry_frames s in
  check Alcotest.int "one frame closed" 1 (List.length frames);
  let f = List.hd frames in
  let victim = f.Air_obs.Telemetry.f_partitions.(0) in
  let hog = f.Air_obs.Telemetry.f_partitions.(1) in
  check Alcotest.bool "hog blew its budget" true
    (hog.Air_obs.Telemetry.pf_mem_demand
    > hog.Air_obs.Telemetry.pf_mem_budget);
  check Alcotest.bool "victim on the other lane throttled" true
    (victim.Air_obs.Telemetry.pf_throttled > 0);
  let bound =
    match System.contention s with
    | Some c ->
      Contention.max_stall_per_access c
      * victim.Air_obs.Telemetry.pf_mem_demand
    | None -> 0
  in
  check Alcotest.bool "within the curve bound" true
    (victim.Air_obs.Telemetry.pf_throttled <= bound);
  check Alcotest.bool "hog escalated" true (degradations s > 0);
  (* And the next window starts clean. *)
  System.run s ~ticks:1;
  match System.contention s with
  | Some c ->
    check Alcotest.int "no stall debt across the boundary" 0
      (Contention.stall_debt c 0 + Contention.stall_debt c 1)
  | None -> ()

(* --- Grammar round-trip -------------------------------------------------- *)

let doc curve =
  Printf.sprintf
    {|(air-system
  (partitions
    (partition (name A)
      (processes
        (process (name t) (period 100) (script (compute 10) (periodic-wait)))))
    (partition (name B)
      (processes
        (process (name u) (period 100) (script (compute 10) (periodic-wait))))))
  (schedules
    (schedule (name all) (mtf 100)
      (requirements (req (partition A) (cycle 100) (duration 50))
                    (req (partition B) (cycle 100) (duration 50)))
      (windows (window (partition A) (offset 0) (duration 50))
               (window (partition B) (offset 50) (duration 50)))))
  (contention
    (budget (default 40) (B 25))
    %s
    (compute-cost 2)
    (pressure-decay 750)))|}
    curve

let grammar_round_trip () =
  match Air_config.Loader.load (doc "(curve (0 1) (500 3))") with
  | Error e -> Alcotest.fail e
  | Ok cfg -> (
    let c = Option.get cfg.System.contention in
    check Alcotest.int "default budget" 40 c.Contention.default_budget;
    check
      Alcotest.(list (pair int int))
      "override" [ (1, 25) ] c.Contention.budgets;
    check
      Alcotest.(list (pair int int))
      "curve"
      [ (0, 1); (500, 3) ]
      c.Contention.curve;
    check Alcotest.int "compute cost" 2 c.Contention.compute_cost;
    check Alcotest.int "decay" 750 c.Contention.pressure_decay_permille;
    match Air_config.Loader.load (Air_config.Encode.to_string cfg) with
    | Error e -> Alcotest.fail ("re-load: " ^ e)
    | Ok cfg' ->
      check Alcotest.bool "contention round-trips" true
        (cfg'.System.contention = cfg.System.contention))

let grammar_empty_curve_and_errors () =
  (match Air_config.Loader.load (doc "(curve)") with
  | Error e -> Alcotest.fail e
  | Ok cfg -> (
    let c = Option.get cfg.System.contention in
    check Alcotest.(list (pair int int)) "empty curve kept" [] c.Contention.curve;
    match Air_config.Loader.load (Air_config.Encode.to_string cfg) with
    | Error e -> Alcotest.fail ("re-load: " ^ e)
    | Ok cfg' ->
      check Alcotest.bool "empty curve round-trips" true
        (cfg'.System.contention = cfg.System.contention)));
  (match Air_config.Loader.load (doc "") with
  | Error e -> Alcotest.fail e
  | Ok cfg ->
    let c = Option.get cfg.System.contention in
    check
      Alcotest.(list (pair int int))
      "absent curve defaults" [ (0, 1) ] c.Contention.curve);
  let bad =
    String.concat ""
      (String.split_on_char '4' (doc "(curve (0 1))") |> function
       | a :: rest -> a :: "0" :: rest
       | [] -> [])
  in
  match Air_config.Loader.load bad with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "zero default budget must be rejected"

let suite =
  [ Alcotest.test_case "config validation" `Quick config_validation;
    Alcotest.test_case "budget blow reported exactly once per window" `Quick
      blow_exactly_once_per_window;
    Alcotest.test_case "curve armed only by co-running lanes" `Quick
      curve_requires_two_busy_lanes;
    Alcotest.test_case "curve steps with overage" `Quick
      curve_steps_with_overage;
    Alcotest.test_case "pressure decays across windows" `Quick
      pressure_decays_across_windows;
    Alcotest.test_case "no leak across windows" `Quick no_leak_across_windows;
    Alcotest.test_case "one degradation per offending frame" `Quick
      blow_once_per_offending_frame;
    Alcotest.test_case "boundary charges open the new window" `Quick
      boundary_charges_open_new_window;
    qcheck inert_contention_is_invisible;
    qcheck active_contention_mode_independent;
    Alcotest.test_case "victim throttles within the curve" `Quick
      victim_throttles_within_curve;
    Alcotest.test_case "grammar round-trip" `Quick grammar_round_trip;
    Alcotest.test_case "grammar: empty curve and validation" `Quick
      grammar_empty_curve_and_errors ]
