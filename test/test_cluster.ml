(* Tests for the inter-module communication infrastructure: Router.inject,
   gateway drain, bus latency/bandwidth serialization, cross-module
   delivery and isolation. *)

open Air_sim
open Air_model
open Air_pos
open Air_ipc
open Air
open Ident

let check = Alcotest.check
let pid = Partition_id.make
let sid = Schedule_id.make
let w partition offset duration = { Schedule.partition; offset; duration }
let q partition cycle duration = { Schedule.partition; cycle; duration }

(* --- Router.inject -------------------------------------------------------- *)

let inject_net =
  { Port.ports =
      [ Port.queuing_port ~name:"QD" ~partition:(pid 0)
          ~direction:Port.Destination ~depth:2 ~max_message_size:16;
        Port.sampling_port ~name:"SD" ~partition:(pid 0)
          ~direction:Port.Destination ~refresh:100 ~max_message_size:16;
        Port.queuing_port ~name:"SRC" ~partition:(pid 0)
          ~direction:Port.Source ~depth:2 ~max_message_size:16 ];
    channels = [] }

let inject_semantics () =
  let r = Router.create inject_net in
  check Alcotest.bool "queuing inject" true
    (Router.inject r ~port:"QD" ~now:0 (Bytes.of_string "a") = Router.Injected);
  check Alcotest.int "pending" 1 (Router.pending r ~port:"QD");
  ignore (Router.inject r ~port:"QD" ~now:0 (Bytes.of_string "b"));
  check Alcotest.bool "overflow" true
    (Router.inject r ~port:"QD" ~now:0 (Bytes.of_string "c")
     = Router.Inject_overflow);
  check Alcotest.bool "sampling inject" true
    (Router.inject r ~port:"SD" ~now:5 (Bytes.of_string "x") = Router.Injected);
  (match Router.read_sampling r ~caller:(pid 0) ~port:"SD" ~now:6 with
  | Ok (m, Router.Valid) -> check Alcotest.string "read" "x" (Bytes.to_string m)
  | _ -> Alcotest.fail "sampling read after inject");
  check Alcotest.bool "source rejected" true
    (Router.inject r ~port:"SRC" ~now:0 (Bytes.of_string "x")
     = Router.Inject_bad_port);
  check Alcotest.bool "unknown rejected" true
    (Router.inject r ~port:"NOPE" ~now:0 (Bytes.of_string "x")
     = Router.Inject_bad_port);
  check Alcotest.bool "oversized rejected" true
    (Router.inject r ~port:"QD" ~now:0 (Bytes.make 99 'x')
     = Router.Inject_bad_port)

(* --- Two-module cluster ---------------------------------------------------- *)

(* Module 0: a sensor partition sends telemetry into its local gateway.
   Module 1: a ground-interface partition blocks on the remote port. *)
let sensor_module () =
  let sensor = pid 0 in
  let network =
    { Port.ports =
        [ Port.queuing_port ~name:"TM_SRC" ~partition:sensor
            ~direction:Port.Source ~depth:8 ~max_message_size:32;
          (* The outbound gateway: where the bus picks messages up. *)
          Port.queuing_port ~name:"TM_GW" ~partition:sensor
            ~direction:Port.Destination ~depth:8 ~max_message_size:32 ];
      channels = [ { Port.source = "TM_SRC"; destinations = [ "TM_GW" ] } ] }
  in
  let p =
    Partition.make ~id:sensor ~name:"SENSOR"
      [ Process.spec ~periodicity:(Process.Periodic 50) ~time_capacity:50
          ~wcet:5 ~base_priority:5 "sample" ]
  in
  let schedule =
    Schedule.make ~id:(sid 0) ~name:"solo" ~mtf:50
      ~requirements:[ q sensor 50 50 ]
      [ w sensor 0 50 ]
  in
  System.create
    (System.config ~network
       ~partitions:
         [ System.partition_setup p
             [ Script.periodic_body
                 [ Script.Compute 5;
                   Script.Send_queuing ("TM_SRC", "telemetry!") ] ] ]
       ~schedules:[ schedule ] ())

let ground_module () =
  let ground = pid 0 in
  let network =
    { Port.ports =
        [ Port.queuing_port ~name:"TM_IN" ~partition:ground
            ~direction:Port.Destination ~depth:8 ~max_message_size:32 ];
      channels = [] }
  in
  let p =
    Partition.make ~id:ground ~name:"GROUND"
      [ Process.spec ~base_priority:5 "downlink" ]
  in
  let schedule =
    Schedule.make ~id:(sid 0) ~name:"solo" ~mtf:50
      ~requirements:[ q ground 50 50 ]
      [ w ground 0 50 ]
  in
  System.create
    (System.config ~network
       ~partitions:
         [ System.partition_setup p
             [ Script.make
                 [ Script.Receive_queuing ("TM_IN", Time.infinity);
                   Script.Log "frame received" ] ] ]
       ~schedules:[ schedule ] ())

let make_cluster ?bus () =
  Cluster.create ?bus
    ~links:
      [ Cluster.link ~from_module:0 ~from_port:"TM_GW"
          ~to_module:1 ~to_port:"TM_IN" () ]
    [ sensor_module (); ground_module () ]

let cross_module_delivery () =
  let cluster = make_cluster () in
  Cluster.run cluster ~ticks:500;
  let stats = Cluster.stats cluster in
  check Alcotest.bool "messages crossed" true (stats.Cluster.transferred >= 8);
  check Alcotest.int "no drops" 0 stats.Cluster.dropped;
  let ground = (Cluster.systems cluster).(1) in
  let received =
    Air_sim.Trace.count
      (function
        | Event.Application_output { line = "frame received"; _ } -> true
        | _ -> false)
      (System.trace ground)
  in
  check Alcotest.bool "receiver woken each time" true (received >= 8);
  (* Gateway fully drained. *)
  let sensor = (Cluster.systems cluster).(0) in
  check Alcotest.int "gateway empty" 0
    (Router.pending (System.router sensor) ~port:"TM_GW")

let bus_latency_respected () =
  (* With a large latency, the first message (sent in tick ~5) cannot
     arrive before latency has elapsed. *)
  let cluster =
    make_cluster ~bus:{ Cluster.latency = 100; bytes_per_tick = 32 } ()
  in
  Cluster.run cluster ~ticks:90;
  let ground = (Cluster.systems cluster).(1) in
  check Alcotest.int "nothing before latency" 0
    (Air_sim.Trace.count
       (function
         | Event.Application_output { line = "frame received"; _ } -> true
         | _ -> false)
       (System.trace ground));
  Cluster.run cluster ~ticks:60;
  check Alcotest.bool "arrives after latency" true
    (Air_sim.Trace.count
       (function
         | Event.Application_output { line = "frame received"; _ } -> true
         | _ -> false)
       (System.trace ground)
    > 0)

let bus_bandwidth_serializes () =
  (* 10-byte messages at 1 byte/tick: each transfer occupies the bus for 10
     ticks; messages produced every 50 ticks never queue, but a burst
     serializes. *)
  let cluster =
    make_cluster ~bus:{ Cluster.latency = 0; bytes_per_tick = 1 } ()
  in
  Cluster.run cluster ~ticks:500;
  let stats = Cluster.stats cluster in
  check Alcotest.bool "still delivers" true (stats.Cluster.transferred >= 8);
  check Alcotest.int "no drops" 0 stats.Cluster.dropped

let remote_overflow_counts_as_drop () =
  (* Ground module with a tiny port and a receiver that never reads. *)
  let ground = pid 0 in
  let network =
    { Port.ports =
        [ Port.queuing_port ~name:"TM_IN" ~partition:ground
            ~direction:Port.Destination ~depth:1 ~max_message_size:32 ];
      channels = [] }
  in
  let p = Partition.make ~id:ground ~name:"DEAF" [ Process.spec "idle" ] in
  let schedule =
    Schedule.make ~id:(sid 0) ~name:"solo" ~mtf:50
      ~requirements:[ q ground 50 50 ]
      [ w ground 0 50 ]
  in
  let deaf =
    System.create
      (System.config ~network
         ~partitions:
           [ System.partition_setup p
               [ Script.make [ Script.Timed_wait 100000 ] ] ]
         ~schedules:[ schedule ] ())
  in
  let cluster =
    Cluster.create
      ~links:
        [ Cluster.link ~from_module:0 ~from_port:"TM_GW"
            ~to_module:1 ~to_port:"TM_IN" () ]
      [ sensor_module (); deaf ]
  in
  Cluster.run cluster ~ticks:500;
  let stats = Cluster.stats cluster in
  (* One message sits in the port; the rest overflow. Overflow is reported
     as delivered-with-overflow-event (Ok), not a drop. *)
  check Alcotest.int "no hard drops" 0 stats.Cluster.dropped;
  check Alcotest.bool "overflow events at target" true
    (Air_sim.Trace.count
       (function Event.Port_overflow _ -> true | _ -> false)
       (System.trace deaf)
    > 0)

let modules_remain_isolated () =
  (* Whatever the bus does, each module's partitions keep their timing. *)
  let cluster =
    make_cluster ~bus:{ Cluster.latency = 1; bytes_per_tick = 1 } ()
  in
  Cluster.run cluster ~ticks:1000;
  Array.iter
    (fun system ->
      check Alcotest.int "no violations" 0
        (List.length (System.violations system)))
    (Cluster.systems cluster)

let duplicate_gateway_rejected () =
  check Alcotest.bool "duplicate gateway" true
    (try
       ignore
         (Cluster.create
            ~links:
              [ Cluster.link ~from_module:0 ~from_port:"TM_GW"
                  ~to_module:1 ~to_port:"A" ();
                Cluster.link ~from_module:0 ~from_port:"TM_GW"
                  ~to_module:1 ~to_port:"B" () ]
            [ sensor_module (); ground_module () ]);
       false
     with Invalid_argument _ -> true)

let bad_link_rejected () =
  check Alcotest.bool "bad index" true
    (try
       ignore
         (Cluster.create
            ~links:
              [ Cluster.link ~from_module:0 ~from_port:"X"
                  ~to_module:7 ~to_port:"Y" () ]
            [ sensor_module () ]);
       false
     with Invalid_argument _ -> true)

(* Conservation: every message sent into the gateway is accounted for —
   delivered across, still in flight, still in the gateway, or recorded as
   target overflow. *)
let qcheck_conservation =
  QCheck.Test.make ~name:"cluster conserves messages" ~count:25
    QCheck.(pair (int_range 0 60) (int_range 1 32))
    (fun (latency, bytes_per_tick) ->
      let cluster =
        make_cluster ~bus:{ Cluster.latency; bytes_per_tick } ()
      in
      Cluster.run cluster ~ticks:700;
      let sensor = (Cluster.systems cluster).(0) in
      let ground = (Cluster.systems cluster).(1) in
      let sent =
        Air_sim.Trace.count
          (function
            | Event.Port_send { port = "TM_SRC"; _ } -> true
            | _ -> false)
          (System.trace sensor)
      in
      ignore ground;
      let stats = Cluster.stats cluster in
      let in_gateway = Router.pending (System.router sensor) ~port:"TM_GW" in
      (* Every message drained from the gateway ends up exactly one of:
         transferred (possibly overflowing at the target, which is still a
         bus-level delivery), dropped (bad target port), or in flight. *)
      sent
      = stats.Cluster.transferred + stats.Cluster.dropped
        + stats.Cluster.in_flight + in_gateway)

(* --- Bus fault injection --------------------------------------------------- *)

let bus_drop_accounted () =
  (* Nothing in flight yet: the injection reports so. *)
  let cluster =
    make_cluster ~bus:{ Cluster.latency = 100; bytes_per_tick = 32 } ()
  in
  check Alcotest.bool "empty bus absorbs" false
    (Cluster.inject_bus_fault cluster Cluster.Bus_drop);
  (* First message is sent around tick 6 and stays in flight for 100
     ticks; dropping it must show up in the drop counter and leave the
     conservation ledger balanced. *)
  Cluster.run cluster ~ticks:50;
  check Alcotest.bool "in-flight transfer dropped" true
    (Cluster.inject_bus_fault cluster Cluster.Bus_drop);
  Cluster.run cluster ~ticks:650;
  let stats = Cluster.stats cluster in
  check Alcotest.int "drop counted" 1 stats.Cluster.dropped;
  let sensor = (Cluster.systems cluster).(0) in
  let sent =
    Air_sim.Trace.count
      (function Event.Port_send { port = "TM_SRC"; _ } -> true | _ -> false)
      (System.trace sensor)
  in
  check Alcotest.int "conservation with drop" sent
    (stats.Cluster.transferred + stats.Cluster.dropped
    + stats.Cluster.in_flight
    + Router.pending (System.router sensor) ~port:"TM_GW")

let bus_duplicate_delivers_twice () =
  let cluster =
    make_cluster ~bus:{ Cluster.latency = 100; bytes_per_tick = 32 } ()
  in
  Cluster.run cluster ~ticks:50;
  check Alcotest.bool "in-flight transfer duplicated" true
    (Cluster.inject_bus_fault cluster Cluster.Bus_duplicate);
  Cluster.run cluster ~ticks:650;
  let stats = Cluster.stats cluster in
  let sensor = (Cluster.systems cluster).(0) in
  let sent =
    Air_sim.Trace.count
      (function Event.Port_send { port = "TM_SRC"; _ } -> true | _ -> false)
      (System.trace sensor)
  in
  (* One extra bus-level delivery beyond what the sensor ever sent. *)
  check Alcotest.int "one extra delivery" (sent + 1)
    (stats.Cluster.transferred + stats.Cluster.dropped
    + stats.Cluster.in_flight
    + Router.pending (System.router sensor) ~port:"TM_GW");
  let ground = (Cluster.systems cluster).(1) in
  let received =
    Air_sim.Trace.count
      (function
        | Event.Application_output { line = "frame received"; _ } -> true
        | _ -> false)
      (System.trace ground)
  in
  check Alcotest.bool "receiver drained the duplicate too" true
    (received >= stats.Cluster.transferred - stats.Cluster.dropped)

(* A sensor that sends exactly once — lets delay tests isolate one
   transfer. *)
let one_shot_sensor () =
  let sensor = pid 0 in
  let network =
    { Port.ports =
        [ Port.queuing_port ~name:"TM_SRC" ~partition:sensor
            ~direction:Port.Source ~depth:8 ~max_message_size:32;
          Port.queuing_port ~name:"TM_GW" ~partition:sensor
            ~direction:Port.Destination ~depth:8 ~max_message_size:32 ];
      channels = [ { Port.source = "TM_SRC"; destinations = [ "TM_GW" ] } ] }
  in
  let p =
    Partition.make ~id:sensor ~name:"SENSOR"
      [ Process.spec ~base_priority:5 "sample" ]
  in
  let schedule =
    Schedule.make ~id:(sid 0) ~name:"solo" ~mtf:50
      ~requirements:[ q sensor 50 50 ]
      [ w sensor 0 50 ]
  in
  System.create
    (System.config ~network
       ~partitions:
         [ System.partition_setup p
             [ Script.make
                 [ Script.Compute 5;
                   Script.Send_queuing ("TM_SRC", "m1");
                   Script.Send_queuing ("TM_SRC", "m2");
                   (* Script bodies loop: park the process so exactly two
                      messages ever reach the bus. *)
                   Script.Timed_wait 100_000 ] ] ]
       ~schedules:[ schedule ] ())

let bus_delay_wakes_blocked_receiver () =
  (* The ground process blocks forever on TM_IN; the only message on the
     bus is delayed by 300 ticks mid-flight. The receiver must sleep
     through the original arrival instant and still wake when the delayed
     delivery finally lands. *)
  let cluster =
    Cluster.create
      ~bus:{ Cluster.latency = 20; bytes_per_tick = 32 }
      ~links:
        [ Cluster.link ~from_module:0 ~from_port:"TM_GW"
            ~to_module:1 ~to_port:"TM_IN" () ]
      [ one_shot_sensor (); ground_module () ]
  in
  Cluster.run cluster ~ticks:10;
  (* Both of the sensor's messages are in flight; delay each by 300. *)
  check Alcotest.bool "first transfer delayed" true
    (Cluster.inject_bus_fault cluster (Cluster.Bus_delay 300));
  check Alcotest.bool "second transfer delayed" true
    (Cluster.inject_bus_fault cluster (Cluster.Bus_delay 300));
  let ground = (Cluster.systems cluster).(1) in
  let received () =
    Air_sim.Trace.count
      (function
        | Event.Application_output { line = "frame received"; _ } -> true
        | _ -> false)
      (System.trace ground)
  in
  Cluster.run cluster ~ticks:200;
  check Alcotest.int "still blocked at the original arrival" 0 (received ());
  Cluster.run cluster ~ticks:300;
  check Alcotest.bool "woken by the delayed delivery" true (received () >= 1);
  check Alcotest.int "nothing dropped" 0 (Cluster.stats cluster).Cluster.dropped

let bus_reorder_swaps_deliveries () =
  (* Two transfers in flight; a deaf receiver accumulates them, so the
     delivery order is observable in its destination queue. *)
  let ground = pid 0 in
  let network =
    { Port.ports =
        [ Port.queuing_port ~name:"TM_IN" ~partition:ground
            ~direction:Port.Destination ~depth:8 ~max_message_size:32 ];
      channels = [] }
  in
  let p = Partition.make ~id:ground ~name:"DEAF" [ Process.spec "idle" ] in
  let schedule =
    Schedule.make ~id:(sid 0) ~name:"solo" ~mtf:50
      ~requirements:[ q ground 50 50 ]
      [ w ground 0 50 ]
  in
  let deaf =
    System.create
      (System.config ~network
         ~partitions:
           [ System.partition_setup p
               [ Script.make [ Script.Timed_wait 100000 ] ] ]
         ~schedules:[ schedule ] ())
  in
  let cluster =
    Cluster.create
      ~bus:{ Cluster.latency = 300; bytes_per_tick = 64 }
      ~links:
        [ Cluster.link ~from_module:0 ~from_port:"TM_GW"
            ~to_module:1 ~to_port:"TM_IN" () ]
      [ one_shot_sensor (); deaf ]
  in
  Cluster.run cluster ~ticks:60;
  check Alcotest.bool "two transfers reordered" true
    (Cluster.inject_bus_fault cluster Cluster.Bus_reorder);
  Cluster.run cluster ~ticks:400;
  check Alcotest.int "both delivered" 2
    (Cluster.stats cluster).Cluster.transferred;
  let router = System.router deaf in
  let pop () =
    match Router.steal_head router ~port:"TM_IN" with
    | Some (b, _cid) -> Bytes.to_string b
    | None -> Alcotest.fail "destination queue shorter than expected"
  in
  check Alcotest.string "second message first" "m2" (pop ());
  check Alcotest.string "first message last" "m1" (pop ())

let bus_corrupt_flips_payload_byte () =
  let cluster =
    Cluster.create
      ~bus:{ Cluster.latency = 300; bytes_per_tick = 64 }
      ~links:
        [ Cluster.link ~from_module:0 ~from_port:"TM_GW"
            ~to_module:1 ~to_port:"TM_IN" () ]
      [ one_shot_sensor (); ground_module () ]
  in
  Cluster.run cluster ~ticks:60;
  check Alcotest.bool "in-flight payload corrupted" true
    (Cluster.inject_bus_fault cluster (Cluster.Bus_corrupt { byte = 0 }));
  Cluster.run cluster ~ticks:400;
  (* The corrupted copy arrived (no drop), but its first byte was
     inverted: the ground port saw some payload that is not "m1". *)
  check Alcotest.int "no drops" 0 (Cluster.stats cluster).Cluster.dropped;
  check Alcotest.int "both delivered" 2
    (Cluster.stats cluster).Cluster.transferred

let cluster_document_loads () =
  let candidates =
    [ "examples/configs/crosslink.air";
      "../examples/configs/crosslink.air";
      "../../examples/configs/crosslink.air";
      "../../../examples/configs/crosslink.air" ]
  in
  match List.find_opt Sys.file_exists candidates with
  | None -> () (* source tree not visible from the test sandbox *)
  | Some path -> (
    match Air_config.Loader.load_cluster_file path with
    | Error e -> Alcotest.fail e
    | Ok cluster ->
      Cluster.run cluster ~ticks:1500;
      let stats = Cluster.stats cluster in
      check Alcotest.bool "frames crossed" true (stats.Cluster.transferred >= 4);
      check Alcotest.int "no drops" 0 stats.Cluster.dropped)

let suite =
  [ Alcotest.test_case "router: inject semantics" `Quick inject_semantics;
    Alcotest.test_case "cluster: cross-module delivery" `Quick
      cross_module_delivery;
    Alcotest.test_case "cluster: bus latency respected" `Quick
      bus_latency_respected;
    Alcotest.test_case "cluster: bandwidth serializes" `Quick
      bus_bandwidth_serializes;
    Alcotest.test_case "cluster: remote overflow" `Quick
      remote_overflow_counts_as_drop;
    Alcotest.test_case "cluster: modules remain isolated" `Quick
      modules_remain_isolated;
    Alcotest.test_case "cluster: bad link rejected" `Quick bad_link_rejected;
    Alcotest.test_case "cluster: duplicate gateway rejected" `Quick
      duplicate_gateway_rejected;
    QCheck_alcotest.to_alcotest qcheck_conservation;
    Alcotest.test_case "cluster: bus drop accounted" `Quick bus_drop_accounted;
    Alcotest.test_case "cluster: bus duplicate delivers twice" `Quick
      bus_duplicate_delivers_twice;
    Alcotest.test_case "cluster: bus delay wakes blocked receiver" `Quick
      bus_delay_wakes_blocked_receiver;
    Alcotest.test_case "cluster: bus reorder swaps deliveries" `Quick
      bus_reorder_swaps_deliveries;
    Alcotest.test_case "cluster: bus corrupt flips payload byte" `Quick
      bus_corrupt_flips_payload_byte;
    Alcotest.test_case "cluster: document loads and runs" `Quick
      cluster_document_loads ]
