(* Fault-injection campaigns over the Sect. 6 prototype, driven through the
   lib/faults engine: the dependability claim, stress-tested. Random
   campaigns mix temporal faults (runaway starts/stops, restarts, schedule
   switch storms, clock jitter), spatial faults (wild accesses, bit flips)
   and communication faults (loss, duplication, corruption, delay, reorder
   on the interpartition channels); after every campaign the containment
   oracle must hold: disturbances only in the targeted partitions, every HM
   error answered by exactly the configured action, identical reports under
   the same seed. *)

open Air_sim
open Air_model
open Air
open Ident
module F = Air_faults.Fault
module C = Air_faults.Campaign
module E = Air_faults.Engine
module O = Air_faults.Oracle
module R = Air_faults.Report

let check = Alcotest.check
let qcheck = QCheck_alcotest.to_alcotest

let make () = E.Module (Air_workload.Satellite.make ())

let runaway =
  F.Runaway_start
    { partition = 0; process = Air_workload.Satellite.faulty_process_name }

let tm_loss = F.Port_fault { port = "TM_IN"; fault = F.Msg_loss }
let sci_dup = F.Port_fault { port = "SCI_IN"; fault = F.Msg_duplicate }

(* --- Random campaigns ---------------------------------------------------- *)

let fault_gen =
  QCheck.Gen.(
    frequency
      [ (4, return runaway);
        ( 2,
          return
            (F.Process_stop
               { partition = 0;
                 process = Air_workload.Satellite.faulty_process_name }) );
        ( 1,
          return
            (F.Partition_restart
               { partition = 0; mode = Partition.Warm_start }) );
        ( 1,
          return
            (F.Partition_restart
               { partition = 0; mode = Partition.Cold_start }) );
        (1, return (F.Partition_restart { partition = 3; mode = Partition.Idle }));
        ( 2,
          map
            (fun b -> F.Schedule_request { schedule = (if b then 1 else 0) })
            bool );
        ( 2,
          map
            (fun ticks -> F.Clock_jitter { partition = 0; ticks })
            (int_range 1 60) );
        ( 2,
          return
            (F.Wild_access
               { partition = 0;
                 section = Air_spatial.Memory.Data;
                 offset = 32;
                 write = true }) );
        ( 2,
          map
            (fun bit ->
              F.Bit_flip
                { partition = 0;
                  section = Air_spatial.Memory.Data;
                  bit;
                  write = false })
            (int_range 0 29) );
        ( 2,
          oneofl
            [ tm_loss;
              sci_dup;
              F.Port_fault { port = "TM_IN"; fault = F.Msg_corrupt { byte = 0 } };
              F.Port_fault { port = "SCI_IN"; fault = F.Msg_delay { ticks = 40 } };
              F.Port_fault { port = "TM_IN"; fault = F.Msg_reorder };
              F.Port_fault { port = "ATT_IN"; fault = F.Msg_loss } ] ) ])

let spec_gen =
  QCheck.Gen.(
    map2
      (fun seed faults ->
        C.spec ~seed ~horizon:6500
          ~injections:(List.map (fun (fault, at) -> { C.at; fault }) faults)
          ())
      (int_range 0 10_000)
      (list_size (int_range 1 8) (pair fault_gen (int_range 1 6400))))

let print_spec spec =
  Format.asprintf "seed=%d %a" spec.C.seed
    (Format.pp_print_list
       ~pp_sep:(fun ppf () -> Format.pp_print_string ppf "; ")
       (fun ppf (i : C.injection) ->
         Format.fprintf ppf "@%d %a" i.C.at F.pp i.C.fault))
    spec.C.injections

let containment_campaign =
  QCheck.Test.make ~name:"random campaigns never breach containment"
    ~count:25
    (QCheck.make ~print:print_spec spec_gen)
    (fun spec ->
      let verdict = O.check (E.execute ~make spec) in
      if not (O.passed verdict) then
        QCheck.Test.fail_reportf "findings:@ %a"
          (Format.pp_print_list O.pp_finding)
          verdict.O.findings
      else true)

let campaign_deterministic =
  QCheck.Test.make ~name:"campaigns are reproducible under their seed"
    ~count:5
    (QCheck.make ~print:print_spec spec_gen)
    (fun spec -> E.reproducible ~make spec)

(* --- Fixed scenarios ----------------------------------------------------- *)

let wild_access_detected () =
  (* Strict tables map memory violations to a partition warm restart; the
     wild access must be denied, detected the same instant, and answered by
     exactly that action. *)
  let make () =
    E.Module (Air_workload.Satellite.make ~hm_tables:Hm.strict_tables ())
  in
  let spec =
    C.spec ~name:"wild" ~seed:5 ~horizon:3000
      ~injections:
        [ { C.at = 500;
            fault =
              F.Wild_access
                { partition = 0;
                  section = Air_spatial.Memory.Data;
                  offset = 16;
                  write = true } } ]
      ()
  in
  let run = E.execute ~make spec in
  (match run.E.outcomes with
  | [ o ] ->
    check Alcotest.bool "applied" true (o.E.applied = E.Applied);
    check (Alcotest.option Alcotest.int) "zero latency" (Some 0) o.E.latency;
    check Alcotest.bool "warm restart answered" true
      (match o.E.action with
      | Some a -> Astring_contains.contains a "warm-restart"
      | None -> false)
  | outcomes ->
    Alcotest.failf "expected one outcome, got %d" (List.length outcomes));
  check Alcotest.bool "contained" true (O.passed (O.check run))

let clock_jitter_contained () =
  let spec =
    C.spec ~name:"jitter" ~seed:8 ~horizon:6500
      ~injections:
        [ { C.at = 700; fault = F.Clock_jitter { partition = 0; ticks = 50 } };
          { C.at = 2600; fault = F.Clock_jitter { partition = 0; ticks = 30 } } ]
      ()
  in
  let run = E.execute ~make spec in
  check Alcotest.bool "contained" true (O.passed (O.check run));
  (* Whatever the jitter does to P1, the other partitions' deadline record
     stays clean. *)
  List.iter
    (fun (_, proc, _) ->
      check Alcotest.bool "violations only on P1" true
        (Partition_id.equal (Process_id.partition proc)
           Air_workload.Satellite.p1))
    (System.violations (E.system run))

let comm_faults_contained () =
  (* Seeded per-MTF communication weather on every destination port. *)
  let spec =
    C.spec ~name:"comm" ~seed:17 ~horizon:13000
      ~rates:
        [ { C.per_mtf_permille = 600; template = tm_loss };
          { C.per_mtf_permille = 400; template = sci_dup };
          { C.per_mtf_permille = 300;
            template =
              F.Port_fault { port = "TM_IN"; fault = F.Msg_delay { ticks = 80 } }
          };
          { C.per_mtf_permille = 300;
            template = F.Port_fault { port = "ATT_IN"; fault = F.Msg_loss } } ]
      ()
  in
  let run = E.execute ~make spec in
  check Alcotest.bool "plan not empty" true (run.E.plan <> []);
  check Alcotest.bool "some fault found a message" true
    (List.exists (fun o -> o.E.applied = E.Applied) run.E.outcomes);
  check Alcotest.bool "contained" true (O.passed (O.check run))

let healthy_output_continues () =
  (* Even with the faulty process running the whole time, TTC keeps
     downlinking every MTF — the old ad-hoc assertion, now read off the
     campaign run. *)
  let spec =
    C.spec ~name:"runaway" ~seed:2 ~horizon:(8 * 1300)
      ~injections:[ { C.at = 100; fault = runaway } ]
      ()
  in
  let run = E.execute ~make spec in
  check Alcotest.bool "contained" true (O.passed (O.check run));
  let downlinks =
    Trace.count
      (function
        | Event.Application_output { line = "telemetry frame downlinked"; _ }
          ->
          true
        | _ -> false)
      (System.trace (E.system run))
  in
  check Alcotest.bool "TTC unaffected" true (downlinks >= 14)

(* --- Determinism and stream independence --------------------------------- *)

let report_byte_equal () =
  let spec =
    C.spec ~name:"repro" ~seed:23 ~horizon:6500
      ~injections:
        [ { C.at = 400;
            fault =
              F.Wild_access
                { partition = 0;
                  section = Air_spatial.Memory.Data;
                  offset = 8;
                  write = false } };
          { C.at = 900; fault = runaway } ]
      ~rates:[ { C.per_mtf_permille = 500; template = tm_loss } ]
      ()
  in
  let doc () =
    let run = E.execute ~make spec in
    R.document [ R.make ~reproducible:true run (O.check run) ]
  in
  let a = doc () and b = doc () in
  check Alcotest.string "byte-identical documents" a b;
  check Alcotest.bool "schema marker" true
    (Astring_contains.contains a "air-campaign/1")

let silent_stream_leaves_run_untouched () =
  (* Regression for Rng.split stream independence at the engine level: a
     fault stream that never fires must not perturb the baseline schedule
     trace in any observable way. *)
  let plain = C.spec ~name:"plain" ~seed:42 ~horizon:6500 () in
  let silenced =
    C.spec ~name:"silenced" ~seed:42 ~horizon:6500
      ~rates:[ { C.per_mtf_permille = 0; template = tm_loss } ]
      ()
  in
  let run_plain = E.execute ~make plain in
  let run_silenced = E.execute ~make silenced in
  check Alcotest.string "identical fingerprints" run_plain.E.fingerprint
    run_silenced.E.fingerprint;
  (* And the fault-free campaign is indistinguishable from a plain run of
     the module over the same horizon. *)
  let fresh = Air_workload.Satellite.make () in
  System.run fresh ~ticks:6500;
  check Alcotest.int "same trace volume"
    (Trace.total (System.trace fresh))
    (Trace.total (System.trace (E.system run_plain)));
  check Alcotest.int "same violations"
    (List.length (System.violations fresh))
    (List.length (System.violations (E.system run_plain)))

let rate_streams_independent () =
  (* A rate's draws are a pure function of (seed, rate position): appending
     another rate never changes the ticks of the ones before it. *)
  let r1 = { C.per_mtf_permille = 300; template = tm_loss } in
  let r2 = { C.per_mtf_permille = 700; template = sci_dup } in
  let ticks_of template plan =
    List.filter_map
      (fun (i : C.injection) ->
        if i.C.fault = template then Some i.C.at else None)
      plan
  in
  let alone = C.plan (C.spec ~seed:9 ~horizon:13000 ~rates:[ r1 ] ()) ~mtf:1300 in
  let joined =
    C.plan (C.spec ~seed:9 ~horizon:13000 ~rates:[ r1; r2 ] ()) ~mtf:1300
  in
  check
    (Alcotest.list Alcotest.int)
    "r1 unchanged by appending r2" (ticks_of r1.C.template alone)
    (ticks_of r1.C.template joined)

(* --- Negative: a misconfigured HM table is flagged ----------------------- *)

let misconfigured_hm_flagged () =
  (* Deliberate misconfiguration: both prototype schedules leave zero idle
     slack, yet a temporal-health watchdog demands one tick of slack per
     frame and escalates the (inevitable) Temporal_degradation to a module
     shutdown. A partition-scoped runaway cannot explain the module-level
     error or the halt — the oracle must refuse the verdict. *)
  let tables =
    { Hm.default_tables with
      Hm.module_actions = [ (Error.Temporal_degradation, Error.Module_shutdown) ]
    }
  in
  let make () =
    let cfg = Air_workload.Satellite.config ~hm_tables:tables () in
    let telemetry =
      Air_obs.Telemetry.config
        ~default_watchdog:(Air_obs.Telemetry.watchdog ~min_slack:1 ())
        ()
    in
    E.Module (System.create { cfg with System.telemetry = Some telemetry })
  in
  let spec =
    C.spec ~name:"negative" ~seed:3 ~horizon:6500
      ~injections:[ { C.at = 100; fault = runaway } ]
      ()
  in
  let verdict = O.check (E.execute ~make spec) in
  check Alcotest.bool "oracle refuses" false (O.passed verdict);
  check Alcotest.bool "hm-containment finding" true
    (List.exists (fun f -> f.O.check = "hm-containment") verdict.O.findings)

let suite =
  [ qcheck containment_campaign;
    qcheck campaign_deterministic;
    Alcotest.test_case "wild access detected with zero latency" `Quick
      wild_access_detected;
    Alcotest.test_case "clock jitter stays contained" `Quick
      clock_jitter_contained;
    Alcotest.test_case "communication faults stay contained" `Quick
      comm_faults_contained;
    Alcotest.test_case "healthy output continues under fault" `Quick
      healthy_output_continues;
    Alcotest.test_case "report JSON is byte-reproducible" `Quick
      report_byte_equal;
    Alcotest.test_case "silent fault stream leaves the run untouched" `Quick
      silent_stream_leaves_run_untouched;
    Alcotest.test_case "rate substreams are independent" `Quick
      rate_streams_independent;
    Alcotest.test_case "misconfigured HM table is flagged" `Quick
      misconfigured_hm_flagged ]
