(* Standalone validator for the telemetry-smoke make target: given the
   JSON and CSV artifacts `air_run --telemetry-json/--telemetry-csv`
   produced, check that the JSON is well-formed and carries the telemetry
   schema with at least one frame, and that every CSV row honours the
   header's column discipline. Exits nonzero on the first problem. *)

let fail fmt = Printf.ksprintf (fun m -> prerr_endline m; exit 1) fmt

let read_file path =
  try In_channel.with_open_text path In_channel.input_all
  with Sys_error m -> fail "%s" m

let count_occurrences needle hay =
  let n = String.length needle and h = String.length hay in
  let rec go i acc =
    if i + n > h then acc
    else if String.sub hay i n = needle then go (i + n) (acc + 1)
    else go (i + 1) acc
  in
  if n = 0 then 0 else go 0 0

let check_json path =
  let text = read_file path in
  (match Json_lint.check text with
  | Ok () -> ()
  | Error e -> fail "%s: invalid JSON: %s" path e);
  if not (Astring_contains.contains text Air_obs.Telemetry.schema) then
    fail "%s: missing schema marker %S" path Air_obs.Telemetry.schema;
  let frames = count_occurrences "\"frame\":" text in
  if frames = 0 then fail "%s: no frames exported" path;
  frames

let columns line =
  List.length (String.split_on_char ',' line)

let check_csv path =
  let lines =
    List.filter
      (fun l -> String.length l > 0)
      (String.split_on_char '\n' (read_file path))
  in
  match lines with
  | [] -> fail "%s: empty CSV" path
  | header :: rows ->
    (* Modules carrying a contention model append the interference
       columns; both shapes are valid. *)
    let interference_header =
      Air_obs.Telemetry.csv_header
      ^ Air_obs.Telemetry.csv_interference_columns
    in
    if
      (not (String.equal header Air_obs.Telemetry.csv_header))
      && not (String.equal header interference_header)
    then
      fail "%s: header mismatch:\n  got      %s\n  expected %s" path header
        interference_header;
    if rows = [] then fail "%s: no data rows" path;
    let width = columns header in
    List.iteri
      (fun i row ->
        if columns row <> width then
          fail "%s: row %d has %d columns, header has %d" path (i + 1)
            (columns row) width)
      rows;
    List.length rows

let () =
  match Sys.argv with
  | [| _; json; csv |] ->
    let frames = check_json json in
    let rows = check_csv csv in
    Printf.printf "telemetry smoke OK: %d frames (JSON), %d rows (CSV)\n"
      frames rows
  | _ ->
    fail "usage: %s TELEMETRY.json TELEMETRY.csv" Sys.argv.(0)
