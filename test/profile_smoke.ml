(* Standalone validator for the profile-smoke make target: given a
   profile JSON file `air_run --profile-json` produced, check that it is
   well-formed air-profile/1 JSON, that the step/batch/skip tick buckets
   partition the simulated horizon exactly, that the horizon matches the
   tick budget the smoke run requested, and that probe accounting is
   consistent (total = successful + wasted). Exits nonzero on the first
   problem. *)

let fail fmt = Printf.ksprintf (fun m -> prerr_endline m; exit 1) fmt

let read_file path =
  try In_channel.with_open_text path In_channel.input_all
  with Sys_error m -> fail "%s" m

(* Pull the integer following ["field":] — enough structure awareness for
   a document our own writer produced and Json_lint already vetted. *)
let int_field text path name =
  let needle = Printf.sprintf "\"%s\":" name in
  match Astring_contains.find text needle with
  | None -> fail "%s: missing field %s" path name
  | Some at ->
    let start = at + String.length needle in
    let stop = ref start in
    while
      !stop < String.length text
      && (match text.[!stop] with '0' .. '9' | '-' -> true | _ -> false)
    do
      incr stop
    done;
    if !stop = start then fail "%s: field %s is not an integer" path name;
    int_of_string (String.sub text start (!stop - start))

let () =
  let path, expected_ticks =
    match Sys.argv with
    | [| _; path |] -> (path, None)
    | [| _; path; ticks |] -> (path, Some (int_of_string ticks))
    | _ -> fail "usage: %s PROFILE.json [EXPECTED_TICKS]" Sys.argv.(0)
  in
  let text = read_file path in
  (match Json_lint.check text with
  | Ok () -> ()
  | Error e -> fail "%s: invalid JSON: %s" path e);
  if not (Astring_contains.contains text "\"schema\":\"air-profile/1\"")
  then fail "%s: missing air-profile/1 schema marker" path;
  let simulated = int_field text path "simulated" in
  (match expected_ticks with
  | Some t when t <> simulated ->
    fail "%s: simulated %d ticks, run requested %d" path simulated t
  | _ -> ());
  (* The buckets object leads with step/batch/skip in writer order, so
     the first "ticks" fields are theirs; "spans" only occurs in skip. *)
  let step = int_field text path "ticks" in
  let after_step =
    match Astring_contains.find text "\"batch\":" with
    | None -> fail "%s: missing batch bucket" path
    | Some at -> String.sub text at (String.length text - at)
  in
  let batch = int_field after_step path "ticks" in
  let after_batch =
    match Astring_contains.find text "\"skip\":" with
    | None -> fail "%s: missing skip bucket" path
    | Some at -> String.sub text at (String.length text - at)
  in
  let skip = int_field after_batch path "ticks" in
  if step + batch + skip <> simulated then
    fail "%s: buckets %d+%d+%d = %d do not partition simulated %d" path step
      batch skip (step + batch + skip) simulated;
  let total = int_field text path "total" in
  let successful = int_field text path "successful" in
  let wasted = int_field text path "wasted" in
  if successful + wasted <> total then
    fail "%s: probes %d+%d do not sum to total %d" path successful wasted
      total;
  if int_field text path "samples" < 0 then
    fail "%s: negative density sample count" path;
  Printf.printf
    "profile smoke OK: %d ticks = %d stepped + %d batched + %d skipped, \
     %d probes\n"
    simulated step batch skip total
