(* Standalone validator for the fault-smoke make target: given two
   campaign-report JSON files `air_run --campaign-json` produced from the
   SAME seeded document, check that each is well-formed air-campaign/1
   JSON whose campaigns were all reproducible and contained, and that the
   two exports are byte-identical — the seeded-reproducibility acceptance
   criterion, enforced outside the test harness. Exits nonzero on the
   first problem. *)

let fail fmt = Printf.ksprintf (fun m -> prerr_endline m; exit 1) fmt

let read_file path =
  try In_channel.with_open_text path In_channel.input_all
  with Sys_error m -> fail "%s" m

let count_occurrences needle hay =
  let n = String.length needle and h = String.length hay in
  let rec go i acc =
    if i + n > h then acc
    else if String.sub hay i n = needle then go (i + n) (acc + 1)
    else go (i + 1) acc
  in
  if n = 0 then 0 else go 0 0

let check_report path =
  let text = read_file path in
  (match Json_lint.check text with
  | Ok () -> ()
  | Error e -> fail "%s: invalid JSON: %s" path e);
  if not (Astring_contains.contains text "\"schema\":\"air-campaign/1\"")
  then fail "%s: missing air-campaign/1 schema marker" path;
  let campaigns = count_occurrences "\"seed\":" text in
  if campaigns = 0 then fail "%s: no campaigns in report" path;
  let deterministic = count_occurrences "\"deterministic\":true" text in
  if deterministic <> campaigns then
    fail "%s: %d of %d campaigns reproducible" path deterministic campaigns;
  let contained = count_occurrences "\"verdict\":\"contained\"" text in
  if contained <> campaigns then
    fail "%s: %d of %d campaigns contained" path contained campaigns;
  if count_occurrences "\"verdict\":\"breached\"" text <> 0 then
    fail "%s: report carries a breached verdict" path;
  (text, campaigns)

let () =
  match Sys.argv with
  | [| _; first; second |] ->
    let a, campaigns = check_report first in
    let b, _ = check_report second in
    if not (String.equal a b) then
      fail "%s and %s differ: same seed must give identical reports" first
        second;
    Printf.printf
      "fault smoke OK: %d campaigns contained, reruns byte-identical\n"
      campaigns
  | _ -> fail "usage: %s REPORT_A.json REPORT_B.json" Sys.argv.(0)
