(* Tests for the PAL surrogate clock-tick announcement (Algorithm 3) and
   the PMK Partition Scheduler / Dispatcher (Algorithms 1 and 2), including
   mode-based schedules. *)

open Air_model
open Air

let check = Alcotest.check
let pid = Ident.Partition_id.make
let sid = Ident.Schedule_id.make
let w partition offset duration = { Schedule.partition; offset; duration }
let q partition cycle duration = { Schedule.partition; cycle; duration }

(* --- PAL ----------------------------------------------------------------- *)

let pal_detects_strictly_past_deadlines () =
  let pal = Pal.create ~partition:(pid 0) () in
  Pal.register_deadline pal ~process:0 100;
  (* Algorithm 3, line 3: deadlineTime ≥ now ⇒ no violation. *)
  let v = Pal.announce_ticks pal ~now:100 ~elapsed:1 ~announce_to_pos:(fun ~now:_ ~elapsed:_ -> ()) in
  check Alcotest.int "not yet at t=100" 0 (List.length v);
  let v = Pal.announce_ticks pal ~now:101 ~elapsed:1 ~announce_to_pos:(fun ~now:_ ~elapsed:_ -> ()) in
  check Alcotest.int "violated at t=101" 1 (List.length v);
  (* Removed after reporting (line 7). *)
  check Alcotest.int "removed" 0 (Pal.deadline_count pal)

let pal_reports_in_ascending_order () =
  let pal = Pal.create ~partition:(pid 0) () in
  Pal.register_deadline pal ~process:0 50;
  Pal.register_deadline pal ~process:1 30;
  Pal.register_deadline pal ~process:2 400;
  let v =
    Pal.announce_ticks pal ~now:100 ~elapsed:100
      ~announce_to_pos:(fun ~now:_ ~elapsed:_ -> ())
  in
  check Alcotest.(list int) "both expired, earliest first" [ 1; 0 ]
    (List.map (fun { Pal.process; _ } -> process) v);
  (* The unexpired deadline survives. *)
  check Alcotest.int "survivor" 1 (Pal.deadline_count pal);
  check
    (Alcotest.option (Alcotest.pair Alcotest.int Alcotest.int))
    "survivor is process 2" (Some (2, 400)) (Pal.earliest_deadline pal)

let pal_announces_to_pos_first () =
  let pal = Pal.create ~partition:(pid 0) () in
  let announced = ref 0 in
  ignore
    (Pal.announce_ticks pal ~now:10 ~elapsed:7
       ~announce_to_pos:(fun ~now:_ ~elapsed -> announced := elapsed));
  check Alcotest.int "elapsed forwarded" 7 !announced

let pal_violations_now_is_pure () =
  let pal = Pal.create ~partition:(pid 0) () in
  Pal.register_deadline pal ~process:0 10;
  let v = Pal.violations_now pal ~now:100 in
  check Alcotest.int "reported" 1 (List.length v);
  check Alcotest.int "not removed" 1 (Pal.deadline_count pal)

(* --- PMK ----------------------------------------------------------------- *)

let two_partition_schedule =
  Schedule.make ~id:(sid 0) ~name:"A" ~mtf:100
    ~requirements:[ q (pid 0) 100 60; q (pid 1) 100 40 ]
    [ w (pid 0) 0 60; w (pid 1) 60 40 ]

let alternate_schedule =
  Schedule.make ~id:(sid 1) ~name:"B" ~mtf:100
    ~requirements:[ q (pid 0) 100 40; q (pid 1) 100 60 ]
    ~change_actions:[ (pid 1, Schedule.Warm_restart_partition) ]
    [ w (pid 1) 0 60; w (pid 0) 60 40 ]

let make_pmk () =
  Pmk.create ~partition_count:2 [ two_partition_schedule; alternate_schedule ]

let pmk_initial_dispatch () =
  let pmk = make_pmk () in
  let outcome = Pmk.tick pmk in
  check Alcotest.int "tick 0" 0 (Pmk.ticks pmk);
  (match outcome.Pmk.context_switch with
  | Some (None, Some p) -> check Alcotest.bool "P1 active" true (Ident.Partition_id.equal p (pid 0))
  | _ -> Alcotest.fail "expected initial dispatch");
  check Alcotest.int "elapsed 0 at start" 0 outcome.Pmk.elapsed

let pmk_preemption_points () =
  let pmk = make_pmk () in
  let switches = ref [] in
  for _ = 0 to 249 do
    let o = Pmk.tick pmk in
    match o.Pmk.context_switch with
    | Some (_, to_) -> switches := (Pmk.ticks pmk, to_) :: !switches
    | None -> ()
  done;
  check
    Alcotest.(list (pair int (option bool)))
    "switch instants"
    [ (0, Some true); (60, Some false); (100, Some true); (160, Some false);
      (200, Some true) ]
    (List.rev_map
       (fun (t, p) ->
         (t, Option.map (fun p -> Ident.Partition_id.equal p (pid 0)) p))
       !switches)

let pmk_elapsed_accounting () =
  let pmk = make_pmk () in
  (* P2's first dispatch at tick 60 must announce 60 elapsed ticks. *)
  let elapsed_at_60 = ref (-1) in
  for _ = 0 to 60 do
    let o = Pmk.tick pmk in
    if Pmk.ticks pmk = 60 then elapsed_at_60 := o.Pmk.elapsed
  done;
  check Alcotest.int "first P2 dispatch" 60 !elapsed_at_60;
  (* While P2 keeps running, elapsed is 1 per tick (Algorithm 2, line 2). *)
  let o = Pmk.tick pmk in
  check Alcotest.int "running elapsed" 1 o.Pmk.elapsed;
  (* At tick 100 P1 returns: its lastTick was set to 59 on switch-out
     (Algorithm 2, line 5: ticks − 1), so 100 − 59 = 41 ticks are
     announced — the interval (59, 100]. *)
  let elapsed_at_100 = ref (-1) in
  for _ = 62 to 100 do
    let o = Pmk.tick pmk in
    if Pmk.ticks pmk = 100 then elapsed_at_100 := o.Pmk.elapsed
  done;
  check Alcotest.int "P1 returns" 41 !elapsed_at_100

let pmk_idle_gaps () =
  let gap_schedule =
    Schedule.make ~id:(sid 0) ~name:"gaps" ~mtf:100
      ~requirements:[ q (pid 0) 100 20 ]
      [ w (pid 0) 10 20 ]
  in
  let pmk = Pmk.create ~partition_count:1 [ gap_schedule ] in
  let o0 = Pmk.tick pmk in
  (* Tick 0: idle — no active partition. *)
  check Alcotest.bool "starts idle" true (Pmk.active_partition pmk = None);
  check Alcotest.int "idle elapsed" 0 o0.Pmk.elapsed;
  for _ = 1 to 10 do
    ignore (Pmk.tick pmk)
  done;
  check Alcotest.bool "window" true (Pmk.active_partition pmk = Some (pid 0));
  for _ = 11 to 30 do
    ignore (Pmk.tick pmk)
  done;
  check Alcotest.bool "idle again" true (Pmk.active_partition pmk = None)

let pmk_switch_at_mtf_boundary_only () =
  let pmk = make_pmk () in
  for _ = 0 to 29 do
    ignore (Pmk.tick pmk)
  done;
  (* Request mid-frame: effective only at tick 100. *)
  Result.get_ok (Pmk.request_schedule_switch pmk (sid 1));
  check Alcotest.bool "still current" true
    (Ident.Schedule_id.equal (Pmk.current_schedule pmk) (sid 0));
  let switched_at = ref (-1) in
  for _ = 30 to 120 do
    let o = Pmk.tick pmk in
    match o.Pmk.schedule_switched with
    | Some (from, to_) ->
      switched_at := Pmk.ticks pmk;
      check Alcotest.bool "from A" true (Ident.Schedule_id.equal from (sid 0));
      check Alcotest.bool "to B" true (Ident.Schedule_id.equal to_ (sid 1))
    | None -> ()
  done;
  check Alcotest.int "switch at MTF boundary" 100 !switched_at;
  check Alcotest.int "lastScheduleSwitch" 100 (Pmk.last_schedule_switch pmk);
  (* Under schedule B, P2 owns [0,60): at tick 100 the heir is P2. *)
  check Alcotest.bool "new table in force" true
    (Pmk.active_partition pmk = Some (pid 1))

let pmk_change_action_on_first_dispatch () =
  let pmk = make_pmk () in
  ignore (Pmk.tick pmk);
  Result.get_ok (Pmk.request_schedule_switch pmk (sid 1));
  let actions = ref [] in
  for _ = 1 to 260 do
    let o = Pmk.tick pmk in
    match o.Pmk.change_action with
    | Some (p, a) -> actions := (Pmk.ticks pmk, p, a) :: !actions
    | None -> ()
  done;
  (* Only P2 has a change action in schedule B. P2 is already active when
     the switch happens at tick 100 (its old window ends exactly where its
     new one begins), and Algorithm 2 applies pending actions only when a
     partition is context-switched in — so the action fires at P2's next
     true dispatch, tick 200. *)
  match List.rev !actions with
  | [ (t, p, Schedule.Warm_restart_partition) ] ->
    check Alcotest.int "at first dispatch" 200 t;
    check Alcotest.bool "P2" true (Ident.Partition_id.equal p (pid 1))
  | _ -> Alcotest.fail "expected exactly one warm-restart change action"

let pmk_cancel_pending_switch () =
  let pmk = make_pmk () in
  ignore (Pmk.tick pmk);
  Result.get_ok (Pmk.request_schedule_switch pmk (sid 1));
  (* Re-requesting the current schedule cancels the pending switch
     (ARINC 653: the request is remembered; NO_ACTION semantics surface
     through Same_schedule only when nothing was pending). *)
  (match Pmk.request_schedule_switch pmk (sid 0) with
  | Ok () -> ()
  | Error _ -> Alcotest.fail "cancellation should be accepted");
  for _ = 1 to 150 do
    let o = Pmk.tick pmk in
    if o.Pmk.schedule_switched <> None then
      Alcotest.fail "switch should have been cancelled"
  done;
  (* Requesting the current schedule with nothing pending is NO_ACTION. *)
  match Pmk.request_schedule_switch pmk (sid 0) with
  | Error Pmk.Same_schedule -> ()
  | _ -> Alcotest.fail "expected Same_schedule"

let pmk_bad_requests () =
  let pmk = make_pmk () in
  (match Pmk.request_schedule_switch pmk (sid 7) with
  | Error (Pmk.No_such_schedule 7) -> ()
  | _ -> Alcotest.fail "expected No_such_schedule");
  Alcotest.check_raises "invalid set"
    (Invalid_argument "Pmk.create: schedule identifiers must be dense") (fun () ->
      ignore (Pmk.create ~partition_count:2 [ alternate_schedule ]))

let pmk_mtf_position () =
  let pmk = make_pmk () in
  for _ = 0 to 149 do
    ignore (Pmk.tick pmk)
  done;
  check Alcotest.int "position" 49 (Pmk.mtf_position pmk)

(* Regression for the clamp-precedence fix in [Pmk.mtf_position]:
   [max 0 t.ticks - t.last_schedule_switch] parsed as
   [(max 0 t.ticks) - t.last_schedule_switch] — only the clock was clamped,
   so the dividend (and the position) could go negative once a schedule
   switch stamped a nonzero [last_schedule_switch]. The position must stay
   within [0, MTF) at every observable state, including before the first
   tick and across arbitrary switch sequences. *)
let pmk_mtf_position_in_range () =
  let pmk = make_pmk () in
  let check_in_range () =
    let mtf =
      (Pmk.schedule pmk (Pmk.current_schedule pmk)).Schedule.mtf
    in
    let pos = Pmk.mtf_position pmk in
    if pos < 0 || pos >= mtf then
      Alcotest.failf "mtf_position %d outside [0, %d) at tick %d" pos mtf
        (Pmk.ticks pmk)
  in
  check_in_range ();
  let rng = Air_sim.Rng.create 0x5eed in
  for i = 1 to 1000 do
    if i mod 37 = 0 then
      ignore (Pmk.request_schedule_switch pmk (sid (Air_sim.Rng.int rng 2)));
    ignore (Pmk.tick pmk);
    check_in_range ()
  done

let suite =
  [ Alcotest.test_case "pal: strict deadline comparison" `Quick
      pal_detects_strictly_past_deadlines;
    Alcotest.test_case "pal: ascending violation reporting" `Quick
      pal_reports_in_ascending_order;
    Alcotest.test_case "pal: POS announced first" `Quick
      pal_announces_to_pos_first;
    Alcotest.test_case "pal: violations_now is pure" `Quick
      pal_violations_now_is_pure;
    Alcotest.test_case "pmk: initial dispatch" `Quick pmk_initial_dispatch;
    Alcotest.test_case "pmk: preemption points" `Quick pmk_preemption_points;
    Alcotest.test_case "pmk: elapsed accounting" `Quick pmk_elapsed_accounting;
    Alcotest.test_case "pmk: idle gaps" `Quick pmk_idle_gaps;
    Alcotest.test_case "pmk: switch at MTF boundary only" `Quick
      pmk_switch_at_mtf_boundary_only;
    Alcotest.test_case "pmk: change action at first dispatch" `Quick
      pmk_change_action_on_first_dispatch;
    Alcotest.test_case "pmk: cancel pending switch" `Quick
      pmk_cancel_pending_switch;
    Alcotest.test_case "pmk: bad requests" `Quick pmk_bad_requests;
    Alcotest.test_case "pmk: mtf position" `Quick pmk_mtf_position;
    Alcotest.test_case "pmk: mtf position stays in range" `Quick
      pmk_mtf_position_in_range ]
