(* Tests for the parallel fleet engine: conservative windowed execution of
   a constellation across domains must be bit-identical to the sequential
   Cluster.run — same fingerprints (clocks, bus, traces, telemetry, causal
   flows), same fault-campaign verdicts — for any domain count, any
   topology and any window chunking. Also the next_arrival regression: a
   message parked in a forwarding gateway must bound the next arrival even
   when the in-flight heap is empty. *)

open Air_sim
open Air_model
open Air_pos
open Air_ipc
open Air
open Ident
module Fleet = Air_fleet.Fleet
module Topology = Air_fleet.Topology
module Stats = Air_obs.Fleet_stats
module F = Air_faults.Fault
module C = Air_faults.Campaign
module E = Air_faults.Engine

let check = Alcotest.check
let pid = Partition_id.make
let sid = Schedule_id.make
let w partition offset duration = { Schedule.partition; offset; duration }
let q partition cycle duration = { Schedule.partition; cycle; duration }

(* --- Constellation builders ----------------------------------------------- *)

(* One satellite of the constellation: a periodic beacon process feeds the
   shape's gateway ports through a fan-out channel, an aperiodic uplink
   process drains the ingress port. The causal tracker is on so the
   fingerprint also covers cross-module flow records. *)
let node ~gateways ~period ~wcet ~payload () =
  let sat = pid 0 in
  let src g = "SRC_" ^ g in
  (* Queuing channels are strictly 1:1: one source port per gateway. *)
  let pair g =
    [ Port.queuing_port ~name:(src g) ~partition:sat ~direction:Port.Source
        ~depth:8 ~max_message_size:32;
      Port.queuing_port ~name:g ~partition:sat ~direction:Port.Destination
        ~depth:8 ~max_message_size:32 ]
  in
  let network =
    { Port.ports =
        Port.queuing_port ~name:"RX" ~partition:sat
          ~direction:Port.Destination ~depth:16 ~max_message_size:32
        :: List.concat_map pair gateways;
      channels =
        List.map (fun g -> { Port.source = src g; destinations = [ g ] })
          gateways }
  in
  let p =
    Partition.make ~id:sat ~name:"SAT"
      [ Process.spec ~periodicity:(Process.Periodic period)
          ~time_capacity:period ~wcet ~base_priority:5 "beacon";
        Process.spec ~base_priority:4 "uplink" ]
  in
  let schedule =
    Schedule.make ~id:(sid 0) ~name:"solo" ~mtf:50
      ~requirements:[ q sat 50 50 ]
      [ w sat 0 50 ]
  in
  System.create
    (System.config ~network
       ~causal:(Air_obs.Causal.create ())
       ~partitions:
         [ System.partition_setup p
             [ Script.periodic_body
                 (Script.Compute wcet
                 :: List.map
                      (fun g -> Script.Send_queuing (src g, payload))
                      gateways);
               Script.make
                 [ Script.Receive_queuing ("RX", Time.infinity);
                   Script.Log "isl frame" ] ] ]
       ~schedules:[ schedule ] ())

type scenario = {
  shape : Topology.shape;
  n : int;
  latency : Time.t;
  bytes_per_tick : int;
  periods : int array;  (** multiples of the 50-tick MTF, one per node *)
  wcets : int array;
  ticks : int;
  domains : int;
}

let make_constellation s =
  let gateways = Topology.gateway_ports s.shape ~gateway:"TX" in
  let modules =
    List.init s.n (fun i ->
        node ~gateways ~period:s.periods.(i) ~wcet:s.wcets.(i)
          ~payload:(Printf.sprintf "b%d" i) ())
  in
  Cluster.create
    ~bus:{ Cluster.latency = s.latency; bytes_per_tick = s.bytes_per_tick }
    ~links:
      (Topology.links ~latency:s.latency ~gateway:"TX" ~ingress:"RX" s.shape
         ~n:s.n)
    modules

let ring ?(latency = 3) ?(domains = 2) ?(ticks = 600) n =
  { shape = Topology.Ring;
    n;
    latency;
    bytes_per_tick = 16;
    periods = Array.init n (fun i -> 50 * (1 + (i mod 3)));
    wcets = Array.init n (fun i -> 2 + (i mod 5));
    ticks;
    domains }

(* Fingerprint of the sequential reference run of a scenario. *)
let sequential_fingerprint s =
  let cluster = make_constellation s in
  Cluster.run cluster ~ticks:s.ticks;
  Fleet.fingerprint cluster

(* Fingerprint of the fleet run at [domains], advancing in [chunks] if
   given (their sum must be [s.ticks]). *)
let fleet_fingerprint ?chunks s =
  let cluster = make_constellation s in
  let fleet = Fleet.create ~domains:s.domains cluster in
  (match chunks with
  | None -> Fleet.run fleet ~ticks:s.ticks
  | Some chunks -> List.iter (fun ticks -> Fleet.run fleet ~ticks) chunks);
  Fleet.close fleet;
  Fleet.fingerprint cluster

(* --- Bit-identity on fixed topologies -------------------------------------- *)

let ring_identity () =
  let s = ring 4 in
  let reference = sequential_fingerprint s in
  List.iter
    (fun domains ->
      check Alcotest.string
        (Printf.sprintf "%d-domain fleet == sequential" domains)
        reference
        (fleet_fingerprint { s with domains }))
    [ 1; 2; 4 ]

let grid_identity () =
  let s = { (ring 6) with shape = Topology.Grid { rows = 2; cols = 3 } } in
  let reference = sequential_fingerprint s in
  List.iter
    (fun domains ->
      check Alcotest.string
        (Printf.sprintf "%d-domain fleet == sequential" domains)
        reference
        (fleet_fingerprint { s with domains }))
    [ 2; 3 ]

let mesh_identity () =
  let s = { (ring 6) with shape = Topology.Mesh; latency = 2 } in
  let reference = sequential_fingerprint s in
  check Alcotest.string "4-domain mesh == sequential" reference
    (fleet_fingerprint { s with domains = 4 })

let chunked_runs_identity () =
  (* Barriers are resume points: odd-sized run chunks (including chunks
     far smaller and larger than the lookahead window) change nothing. *)
  let s = ring ~domains:3 ~ticks:500 5 in
  let reference = sequential_fingerprint s in
  check Alcotest.string "chunked fleet == sequential" reference
    (fleet_fingerprint ~chunks:[ 1; 2; 123; 210; 164 ] s)

let fleet_is_deterministic () =
  let s = ring ~domains:4 6 in
  check Alcotest.string "two fleet runs agree" (fleet_fingerprint s)
    (fleet_fingerprint s)

(* --- Randomized equivalence ------------------------------------------------ *)

let scenario_gen =
  QCheck.Gen.(
    let* shape, n =
      oneofl
        [ (Topology.Ring, 2); (Topology.Ring, 3); (Topology.Ring, 5);
          (Topology.Grid { rows = 2; cols = 2 }, 4);
          (Topology.Grid { rows = 2; cols = 3 }, 6);
          (Topology.Mesh, 4); (Topology.Mesh, 6) ]
    in
    let* latency = int_range 1 6 in
    let* bytes_per_tick = int_range 4 32 in
    let* periods = array_size (return n) (map (fun k -> 50 * k) (int_range 1 3)) in
    let* wcets = array_size (return n) (int_range 1 10) in
    let* ticks = int_range 150 450 in
    let* domains = int_range 2 4 in
    return { shape; n; latency; bytes_per_tick; periods; wcets; ticks; domains })

let print_scenario s =
  Format.asprintf "%a n=%d lat=%d bpt=%d ticks=%d domains=%d" Topology.pp_shape
    s.shape s.n s.latency s.bytes_per_tick s.ticks s.domains

let qcheck_equivalence =
  QCheck.Test.make ~name:"random constellations: fleet == sequential"
    ~count:12
    (QCheck.make ~print:print_scenario scenario_gen)
    (fun s -> String.equal (sequential_fingerprint s) (fleet_fingerprint s))

(* --- The forwarding relay (next_arrival regression + cross-window hop) ----- *)

(* A -> B -> C: A sends a single message; B's RELAY port is both the
   target of A's link and the gateway of B's own link to C — pure
   store-and-forward, no partition involvement. One message means the
   in-flight heap is empty while the relay holds it: exactly the state
   the old next_arrival misjudged. *)
let relay_sender () =
  let sat = pid 0 in
  let network =
    { Port.ports =
        [ Port.queuing_port ~name:"SRC" ~partition:sat ~direction:Port.Source
            ~depth:8 ~max_message_size:32;
          Port.queuing_port ~name:"TM_GW" ~partition:sat
            ~direction:Port.Destination ~depth:8 ~max_message_size:32 ];
      channels = [ { Port.source = "SRC"; destinations = [ "TM_GW" ] } ] }
  in
  let p =
    Partition.make ~id:sat ~name:"SENDER" [ Process.spec ~base_priority:5 "tx" ]
  in
  let schedule =
    Schedule.make ~id:(sid 0) ~name:"solo" ~mtf:50
      ~requirements:[ q sat 50 50 ]
      [ w sat 0 50 ]
  in
  System.create
    (System.config ~network
       ~partitions:
         [ System.partition_setup p
             [ Script.make
                 [ Script.Compute 2;
                   Script.Send_queuing ("SRC", "r1");
                   Script.Timed_wait 100_000 ] ] ]
       ~schedules:[ schedule ] ())

let relay_hop () =
  let sat = pid 0 in
  let network =
    { Port.ports =
        [ Port.queuing_port ~name:"RELAY" ~partition:sat
            ~direction:Port.Destination ~depth:8 ~max_message_size:32 ];
      channels = [] }
  in
  let p =
    Partition.make ~id:sat ~name:"RELAY" [ Process.spec "idle" ]
  in
  let schedule =
    Schedule.make ~id:(sid 0) ~name:"solo" ~mtf:50
      ~requirements:[ q sat 50 50 ]
      [ w sat 0 50 ]
  in
  System.create
    (System.config ~network
       ~partitions:
         [ System.partition_setup p [ Script.make [ Script.Timed_wait 100_000 ] ] ]
       ~schedules:[ schedule ] ())

let relay_ground () =
  let sat = pid 0 in
  let network =
    { Port.ports =
        [ Port.queuing_port ~name:"TM_IN" ~partition:sat
            ~direction:Port.Destination ~depth:8 ~max_message_size:32 ];
      channels = [] }
  in
  let p =
    Partition.make ~id:sat ~name:"GROUND" [ Process.spec ~base_priority:5 "rx" ]
  in
  let schedule =
    Schedule.make ~id:(sid 0) ~name:"solo" ~mtf:50
      ~requirements:[ q sat 50 50 ]
      [ w sat 0 50 ]
  in
  System.create
    (System.config ~network
       ~partitions:
         [ System.partition_setup p
             [ Script.make
                 [ Script.Receive_queuing ("TM_IN", Time.infinity);
                   Script.Log "relayed" ] ] ]
       ~schedules:[ schedule ] ())

let make_relay () =
  Cluster.create
    ~bus:{ Cluster.latency = 5; bytes_per_tick = 32 }
    ~links:
      [ Cluster.link ~from_module:0 ~from_port:"TM_GW" ~to_module:1
          ~to_port:"RELAY" ();
        Cluster.link ~from_module:1 ~from_port:"RELAY" ~to_module:2
          ~to_port:"TM_IN" () ]
    [ relay_sender (); relay_hop (); relay_ground () ]

let next_arrival_sees_pending_gateway () =
  let cluster = make_relay () in
  (* Step until the first hop has delivered into B's relay gateway and the
     heap is momentarily empty: the old next_arrival answered None here,
     silently hiding the second hop from any skip-ahead consumer. *)
  let relay = (Cluster.systems cluster).(1) in
  let parked () =
    Router.pending (System.router relay) ~port:"RELAY" > 0
    && (Cluster.stats cluster).Cluster.in_flight = 0
  in
  let guard = ref 0 in
  while (not (parked ())) && !guard < 200 do
    Cluster.step cluster;
    incr guard
  done;
  check Alcotest.bool "reached the parked state" true (parked ());
  let bound =
    match Cluster.next_arrival cluster with
    | None ->
      Alcotest.fail
        "next_arrival ignored the message parked in the forwarding gateway"
    | Some t -> t
  in
  check Alcotest.bool "bound lies in the future" true
    (bound > Cluster.now cluster);
  (* The bound discriminates by destination: the parked message heads to
     module 2, nothing heads to module 1. *)
  check Alcotest.bool "bound visible for dest 2" true
    (Cluster.next_arrival_for cluster ~dest:2 <> None);
  check Alcotest.bool "no bound for dest 1" true
    (Cluster.next_arrival_for cluster ~dest:1 = None);
  (* Conservative: the true second-hop arrival is never earlier. *)
  let transferred () = (Cluster.stats cluster).Cluster.transferred in
  let before = transferred () in
  let guard = ref 0 in
  while transferred () = before && !guard < 200 do
    Cluster.step cluster;
    incr guard
  done;
  check Alcotest.bool "second hop delivered" true (transferred () > before);
  check Alcotest.bool "bound was conservative" true
    (bound <= Cluster.now cluster)

let relay_fleet_identity () =
  (* The two-hop forward crosses shard and window boundaries; the fleet
     must re-drain the relay gateway at the right instants. *)
  let reference =
    let c = make_relay () in
    Cluster.run c ~ticks:400;
    Fleet.fingerprint c
  in
  List.iter
    (fun domains ->
      let c = make_relay () in
      let fleet = Fleet.create ~domains c in
      Fleet.run fleet ~ticks:400;
      Fleet.close fleet;
      check Alcotest.string
        (Printf.sprintf "%d-domain relay == sequential" domains)
        reference (Fleet.fingerprint c))
    [ 2; 3 ]

(* --- Fault campaigns over fleets ------------------------------------------- *)

let campaign_spec =
  C.spec ~seed:42 ~horizon:1200
    ~injections:
      [ { C.at = 120; fault = F.Link_fault { fault = F.Msg_delay { ticks = 90 } } };
        { C.at = 260; fault = F.Link_fault { fault = F.Msg_duplicate } };
        { C.at = 305; fault = F.Clock_jitter { partition = 0; ticks = 7 } };
        { C.at = 430; fault = F.Link_fault { fault = F.Msg_loss } };
        { C.at = 431; fault = F.Link_fault { fault = F.Msg_corrupt { byte = 0 } } };
        { C.at = 700; fault = F.Port_fault { port = "RX"; fault = F.Msg_loss } } ]
    ()

let campaign_scenario = ring ~latency:4 ~ticks:0 5

let campaign_matches_sequential () =
  let make () = make_constellation campaign_scenario in
  let sequential =
    E.execute ~make:(fun () -> E.Cluster (make (), 0)) campaign_spec
  in
  List.iter
    (fun domains ->
      let fleet = Fleet.execute_campaign ~domains ~make campaign_spec in
      check Alcotest.string
        (Printf.sprintf "%d-domain campaign fingerprint" domains)
        sequential.E.fingerprint fleet.E.fingerprint;
      check Alcotest.int "same number of outcomes"
        (List.length sequential.E.outcomes)
        (List.length fleet.E.outcomes))
    [ 1; 2; 3 ]

let campaign_reproducible () =
  let make () = make_constellation campaign_scenario in
  let one () = (Fleet.execute_campaign ~domains:3 ~make campaign_spec).E.fingerprint in
  check Alcotest.string "same seed, same fleet campaign" (one ()) (one ())

(* --- Construction and bookkeeping ------------------------------------------ *)

let zero_lookahead_rejected () =
  let s = ring 3 in
  let cluster =
    Cluster.create
      ~bus:{ Cluster.latency = 0; bytes_per_tick = 16 }
      ~links:(Topology.links ~latency:0 ~gateway:"TX" ~ingress:"RX" Topology.Ring ~n:3)
      (List.init 3 (fun i ->
           node ~gateways:[ "TX0" ] ~period:s.periods.(i) ~wcet:s.wcets.(i)
             ~payload:"z" ()))
  in
  check Alcotest.bool "zero-latency link rejected" true
    (try
       ignore (Fleet.create ~domains:2 cluster);
       false
     with Invalid_argument _ -> true)

let stats_account_progress () =
  let s = ring ~domains:2 ~ticks:600 4 in
  let cluster = make_constellation s in
  let fleet = Fleet.create ~domains:s.domains cluster in
  Fleet.run fleet ~ticks:s.ticks;
  let stats = Fleet.stats fleet in
  check Alcotest.int "two shards" 2 (Stats.domains stats);
  check Alcotest.bool "windows advanced" true (Stats.windows stats > 0);
  let stepped = ref 0 and skipped = ref 0 and delivered = ref 0 in
  for d = 0 to Stats.domains stats - 1 do
    let sh = Stats.shard stats d in
    check Alcotest.int "round-robin shard size" 2 sh.Stats.sh_modules;
    stepped := !stepped + sh.Stats.sh_stepped;
    skipped := !skipped + sh.Stats.sh_skipped;
    delivered := !delivered + sh.Stats.sh_delivered
  done;
  (* Every module accounts every tick, either executed or skipped. *)
  check Alcotest.int "ticks conserved" (s.n * s.ticks) (!stepped + !skipped);
  check Alcotest.int "deliveries match the bus ledger"
    (Cluster.stats cluster).Cluster.transferred !delivered;
  (match Json_lint.check (Stats.to_json stats) with
  | Ok () -> ()
  | Error e -> Alcotest.fail ("fleet stats JSON: " ^ e));
  Fleet.close fleet

let topology_shapes () =
  let count shape n =
    List.length (Topology.links ~gateway:"TX" ~ingress:"RX" shape ~n)
  in
  check Alcotest.int "ring links" 5 (count Topology.Ring 5);
  check Alcotest.int "grid links" 12 (count (Topology.Grid { rows = 2; cols = 3 }) 6);
  check Alcotest.int "row-vector grid drops the column direction" 4
    (count (Topology.Grid { rows = 1; cols = 4 }) 4);
  check Alcotest.int "mesh links" 12 (count Topology.Mesh 6);
  check
    Alcotest.(list string)
    "mesh gateways" [ "TX0"; "TX1" ]
    (Topology.gateway_ports Topology.Mesh ~gateway:"TX");
  check Alcotest.bool "grid size mismatch rejected" true
    (try
       ignore (count (Topology.Grid { rows = 2; cols = 2 }) 6);
       false
     with Invalid_argument _ -> true);
  check Alcotest.bool "tiny mesh rejected" true
    (try
       ignore (count Topology.Mesh 3);
       false
     with Invalid_argument _ -> true)

let suite =
  [ Alcotest.test_case "fleet: ring bit-identity (1/2/4 domains)" `Quick
      ring_identity;
    Alcotest.test_case "fleet: grid bit-identity" `Quick grid_identity;
    Alcotest.test_case "fleet: mesh bit-identity" `Quick mesh_identity;
    Alcotest.test_case "fleet: chunked runs hit the same barriers" `Quick
      chunked_runs_identity;
    Alcotest.test_case "fleet: deterministic across runs" `Quick
      fleet_is_deterministic;
    QCheck_alcotest.to_alcotest qcheck_equivalence;
    Alcotest.test_case "cluster: next_arrival sees pending gateways" `Quick
      next_arrival_sees_pending_gateway;
    Alcotest.test_case "fleet: relay forwards across windows" `Quick
      relay_fleet_identity;
    Alcotest.test_case "fleet: campaign matches sequential verdicts" `Quick
      campaign_matches_sequential;
    Alcotest.test_case "fleet: campaign reproducible" `Quick
      campaign_reproducible;
    Alcotest.test_case "fleet: zero lookahead rejected" `Quick
      zero_lookahead_rejected;
    Alcotest.test_case "fleet: stats account progress" `Quick
      stats_account_progress;
    Alcotest.test_case "topology: shapes and ports" `Quick topology_shapes ]
