(* Tests for the observability layer: metrics registry semantics, event
   sink, report rendering, and the end-to-end System integration. *)

open Air_model
open Air_pos
open Air_obs

let check = Alcotest.check

let contains ~needle hay =
  let nl = String.length needle and hl = String.length hay in
  let rec go i =
    i + nl <= hl && (String.equal (String.sub hay i nl) needle || go (i + 1))
  in
  go 0

(* --- Metrics registry ----------------------------------------------------- *)

let counter_basics () =
  let reg = Metrics.create () in
  let c = Metrics.counter reg "x.count" in
  check Alcotest.int "starts at zero" 0 (Metrics.value c);
  Metrics.incr c;
  Metrics.add c 4;
  check Alcotest.int "accumulates" 5 (Metrics.value c);
  Metrics.add c (-3);
  Metrics.add c 0;
  check Alcotest.int "monotonic: non-positive adds ignored" 5
    (Metrics.value c);
  (* Get-or-create: the same name yields the same instrument. *)
  let c' = Metrics.counter reg "x.count" in
  Metrics.incr c';
  check Alcotest.int "shared by name" 6 (Metrics.value c)

let gauge_basics () =
  let reg = Metrics.create () in
  let g = Metrics.gauge reg "x.level" in
  Metrics.set g 7;
  Metrics.gauge_incr g;
  Metrics.gauge_decr g;
  Metrics.gauge_decr g;
  check Alcotest.int "tracks level" 6 (Metrics.level g)

let histogram_basics () =
  let reg = Metrics.create () in
  let h = Metrics.histogram reg "x.lat" in
  List.iter (Metrics.observe h) [ 0; 1; 3; 100; 5000 ];
  match Metrics.find reg "x.lat" with
  | Some (Metrics.Histogram_value v) ->
    check Alcotest.int "n" 5 v.Metrics.view_observations;
    check Alcotest.int "total" 5104 v.Metrics.view_total;
    check Alcotest.int "peak" 5000 v.Metrics.view_peak;
    check Alcotest.int "bucket sum covers all observations" 5
      (Array.fold_left ( + ) 0 v.Metrics.view_buckets)
  | _ -> Alcotest.fail "expected histogram snapshot"

let histogram_view_quantiles () =
  let reg = Metrics.create () in
  let h = Metrics.histogram reg "x.lat" in
  List.iter (Metrics.observe h) [ 0; 1; 3; 100; 5000 ];
  match Metrics.find reg "x.lat" with
  | Some (Metrics.Histogram_value v) ->
    (* Rank 3 of 5 lands in the (2,4] bucket: the estimate is the bucket's
       inclusive upper bound. *)
    check Alcotest.int "p50" 4 (Metrics.view_quantile v ~num:1 ~den:2);
    (* Ranks in the +inf overflow bucket answer with the exact peak. *)
    check Alcotest.int "p99" 5000 (Metrics.view_quantile v ~num:99 ~den:100);
    check Alcotest.int "q1 is the peak" 5000
      (Metrics.view_quantile v ~num:1 ~den:1);
    Alcotest.check_raises "den = 0"
      (Invalid_argument "Metrics.view_quantile: need 0 <= num <= den, den > 0")
      (fun () -> ignore (Metrics.view_quantile v ~num:1 ~den:0))
  | _ -> Alcotest.fail "expected histogram snapshot"

let empty_view_quantile_is_zero () =
  let reg = Metrics.create () in
  ignore (Metrics.histogram reg "x.lat");
  match Metrics.find reg "x.lat" with
  | Some (Metrics.Histogram_value v) ->
    check Alcotest.int "empty" 0 (Metrics.view_quantile v ~num:1 ~den:2)
  | _ -> Alcotest.fail "expected histogram snapshot"

let kind_mismatch_rejected () =
  let reg = Metrics.create () in
  ignore (Metrics.counter reg "x");
  Alcotest.check_raises "gauge over counter"
    (Invalid_argument "Metrics.gauge: \"x\" already registered as another kind")
    (fun () -> ignore (Metrics.gauge reg "x"))

let snapshot_is_sorted () =
  let reg = Metrics.create () in
  ignore (Metrics.counter reg "b");
  ignore (Metrics.gauge reg "a");
  ignore (Metrics.counter reg "c");
  let names = List.map fst (Metrics.snapshot reg) in
  check Alcotest.(list string) "sorted by name" [ "a"; "b"; "c" ] names

(* --- Event sink ------------------------------------------------------------ *)

let event_sink_counts_and_ring () =
  let sink = Event.create ~capacity:4 () in
  for i = 1 to 6 do
    Event.record sink ~time:i ~kind:(if i mod 2 = 0 then "even" else "odd") i
  done;
  check Alcotest.int "total" 6 (Event.total sink);
  check Alcotest.int "evens" 3 (Event.count sink "even");
  check Alcotest.int "odds" 3 (Event.count sink "odd");
  check
    Alcotest.(list (pair string int))
    "per-kind counts sorted"
    [ ("even", 3); ("odd", 3) ]
    (Event.counts sink);
  (* The ring keeps only the last [capacity] entries, oldest first. *)
  check
    Alcotest.(list int)
    "ring holds the tail"
    [ 3; 4; 5; 6 ]
    (List.map (fun e -> e.Event.payload) (Event.recent sink))

(* --- Report rendering ------------------------------------------------------ *)

let report_renders_all_kinds () =
  let reg = Metrics.create () in
  Metrics.incr (Metrics.counter reg "c");
  Metrics.set (Metrics.gauge reg "g") 2;
  Metrics.observe (Metrics.histogram reg "h") 3;
  let snapshot = Metrics.snapshot reg in
  let events = [ ("tick", 4) ] in
  let text = Report.to_string ~events snapshot in
  List.iter
    (fun needle ->
      check Alcotest.bool (needle ^ " in text report") true
        (contains ~needle text))
    [ "c"; "g"; "h"; "tick"; "p50=3 p90=3 p99=3" ];
  let sexp = Report.to_sexp ~events snapshot in
  check Alcotest.bool "sexp shape" true (contains ~needle:"(metrics" sexp);
  check Alcotest.bool "sexp percentiles" true
    (contains ~needle:"(p50 3)" sexp);
  let json = Report.to_json ~events snapshot in
  List.iter
    (fun needle ->
      check Alcotest.bool (needle ^ " in json") true (contains ~needle json))
    [ "\"c\""; "\"counter\""; "\"gauge\""; "\"histogram\""; "\"tick\":4";
      "\"p50\":3"; "\"p99\":3" ]

(* Control characters in event labels and metric names must not corrupt
   the JSON report (regression: a raw newline in a label used to pass
   through json_escape unescaped). *)
let json_escapes_control_chars () =
  let reg = Metrics.create () in
  Metrics.incr (Metrics.counter reg "line\nbreak");
  let json =
    Report.to_json ~events:[ ("tab\there", 1) ] (Metrics.snapshot reg)
  in
  check Alcotest.bool "valid JSON" true (Json_lint.is_valid json);
  check Alcotest.bool "newline escaped" true (contains ~needle:"\\n" json);
  check Alcotest.bool "tab escaped" true (contains ~needle:"\\t" json);
  check Alcotest.bool "no raw newline" false (contains ~needle:"\n" json);
  check Alcotest.string "escape function itself" "a\\nb\\u0001c"
    (Report.json_escape "a\nb\x01c")

(* Metric names with spaces, quotes or parens must come out of the sexp
   report as quoted atoms the configuration parser reads back intact. *)
let sexp_escapes_awkward_names () =
  let reg = Metrics.create () in
  let awkward = "latency (p99) \"worst\" \\path" in
  Metrics.incr (Metrics.counter reg awkward);
  let sexp = Report.to_sexp (Metrics.snapshot reg) in
  match Air_config.Sexp.parse_one sexp with
  | Error e -> Alcotest.failf "report does not re-parse: %a"
                 Air_config.Sexp.pp_error e
  | Ok doc ->
    let rec atoms = function
      | Air_config.Sexp.Atom a -> [ a ]
      | Air_config.Sexp.List l -> List.concat_map atoms l
    in
    check Alcotest.bool "name round-trips" true
      (List.mem awkward (atoms doc))

(* --- System integration ----------------------------------------------------- *)

let pid = Ident.Partition_id.make
let sid = Ident.Schedule_id.make

let small_system () =
  let p name i =
    Partition.make ~id:(pid i) ~name
      [ Process.spec ~periodicity:(Process.Periodic 20) ~time_capacity:20
          ~wcet:4 ~base_priority:5 "work" ]
  in
  let schedule =
    Schedule.make ~id:(sid 0) ~name:"S" ~mtf:20
      ~requirements:
        [ { Schedule.partition = pid 0; cycle = 20; duration = 10 };
          { Schedule.partition = pid 1; cycle = 20; duration = 10 } ]
      [ { Schedule.partition = pid 0; offset = 0; duration = 10 };
        { Schedule.partition = pid 1; offset = 10; duration = 10 } ]
  in
  let script =
    { Script.body = [| Script.Compute 4; Script.Periodic_wait |];
      on_end = Script.Repeat }
  in
  Air.System.create
    (Air.System.config
       ~partitions:
         [ Air.System.partition_setup (p "P0" 0) [ script ];
           Air.System.partition_setup (p "P1" 1) [ script ] ]
       ~schedules:[ schedule ] ())

let system_shares_one_registry () =
  let sys = small_system () in
  Air.System.run sys ~ticks:100;
  let snapshot = Air.System.metrics_snapshot sys in
  let counter_of name =
    match List.assoc_opt name snapshot with
    | Some (Metrics.Counter_value n) -> n
    | _ -> Alcotest.failf "missing counter %s" name
  in
  check Alcotest.int "pmk.ticks counts every tick" 100
    (counter_of "pmk.ticks");
  check Alcotest.bool "context switches observed" true
    (counter_of "pmk.context_switches" > 0);
  (* The per-partition PAL gauges appear for both partitions. *)
  List.iter
    (fun name ->
      match List.assoc_opt name snapshot with
      | Some (Metrics.Gauge_value _) -> ()
      | _ -> Alcotest.failf "missing gauge %s" name)
    [ "pal.store_size.p0"; "pal.store_size.p1" ];
  (* TLB counters ride on the same registry. *)
  check Alcotest.bool "tlb present" true
    (List.mem_assoc "tlb.hits" snapshot);
  check Alcotest.bool "hm errors pre-registered" true
    (List.mem_assoc "hm.errors.process" snapshot)

let system_event_counts_mirror_trace () =
  let sys = small_system () in
  Air.System.run sys ~ticks:100;
  let counts = Air.System.event_counts sys in
  let count kind =
    Option.value ~default:0 (List.assoc_opt kind counts)
  in
  let trace_count p =
    List.length
      (List.filter (fun (_, ev) -> p ev) (Air_sim.Trace.to_list (Air.System.trace sys)))
  in
  check Alcotest.int "context-switch kind mirrors trace"
    (trace_count Air_model.Event.is_context_switch)
    (count "context-switch");
  check Alcotest.bool "report mentions scheduler metrics" true
    (contains ~needle:"pmk.ticks" (Air.System.metrics_report sys))

(* The exact artifact [air_run --metrics-json] writes: well-formed JSON
   carrying both the metric snapshot and the per-kind event counts. *)
let system_metrics_json_artifact () =
  let sys = small_system () in
  Air.System.run sys ~ticks:100;
  let json = Air.System.metrics_json sys in
  (match Json_lint.check json with
  | Ok () -> ()
  | Error e -> Alcotest.failf "invalid JSON: %s" e);
  List.iter
    (fun needle ->
      check Alcotest.bool (needle ^ " present") true (contains ~needle json))
    [ "\"pmk.ticks\""; "\"events\""; "\"context-switch\"" ]

let suite =
  [ Alcotest.test_case "metrics: counters" `Quick counter_basics;
    Alcotest.test_case "metrics: gauges" `Quick gauge_basics;
    Alcotest.test_case "metrics: histograms" `Quick histogram_basics;
    Alcotest.test_case "metrics: view quantiles" `Quick
      histogram_view_quantiles;
    Alcotest.test_case "metrics: empty view quantile" `Quick
      empty_view_quantile_is_zero;
    Alcotest.test_case "metrics: kind mismatch" `Quick kind_mismatch_rejected;
    Alcotest.test_case "metrics: snapshot order" `Quick snapshot_is_sorted;
    Alcotest.test_case "events: ring and counts" `Quick
      event_sink_counts_and_ring;
    Alcotest.test_case "report: text, sexp, json" `Quick
      report_renders_all_kinds;
    Alcotest.test_case "report: control chars escaped" `Quick
      json_escapes_control_chars;
    Alcotest.test_case "report: sexp atoms round-trip" `Quick
      sexp_escapes_awkward_names;
    Alcotest.test_case "system: one shared registry" `Quick
      system_shares_one_registry;
    Alcotest.test_case "system: event counts mirror trace" `Quick
      system_event_counts_mirror_trace;
    Alcotest.test_case "system: metrics-json artifact" `Quick
      system_metrics_json_artifact ]
