(* Flight-recorder tests: span recording semantics, Chrome trace-event
   export, the temporal-invariant replay checker, and the end-to-end
   System integration. *)

open Air_model
open Air_pos
open Air_obs

(* [open Air_obs] shadows the model's event type with the event sink. *)
module Event = Air_model.Event

let check = Alcotest.check
let contains hay needle = Astring_contains.contains hay needle
let pid = Ident.Partition_id.make
let sid = Ident.Schedule_id.make
let proc m q = Ident.Process_id.make (pid m) q

(* --- Span recorder --------------------------------------------------------- *)

let span_nesting () =
  let r = Span.create () in
  Span.begin_span r ~now:0 ~track:0 "outer";
  Span.begin_span r ~now:2 ~track:0 "inner";
  Span.end_span r ~now:5 ~track:0;
  Span.end_span r ~now:9 ~track:0;
  match Span.spans r with
  | [ inner; outer ] ->
    check Alcotest.string "innermost closes first" "inner" inner.Span.name;
    check Alcotest.int "inner start" 2 inner.Span.start;
    check Alcotest.int "inner stop" 5 inner.Span.stop;
    check Alcotest.string "outer closes last" "outer" outer.Span.name;
    check Alcotest.int "outer start" 0 outer.Span.start;
    check Alcotest.int "outer stop" 9 outer.Span.stop;
    check Alcotest.bool "both complete" true
      (inner.Span.phase = Span.Complete && outer.Span.phase = Span.Complete)
  | spans -> Alcotest.failf "expected 2 spans, got %d" (List.length spans)

let span_tracks_are_independent () =
  let r = Span.create () in
  Span.begin_span r ~now:0 ~track:0 "a";
  Span.begin_span r ~now:1 ~track:3 "b";
  Span.end_span r ~now:2 ~track:0;
  check Alcotest.int "track 3 still open" 1 (Span.depth r ~track:3);
  check Alcotest.int "track 0 closed" 0 (Span.depth r ~track:0);
  check Alcotest.int "one completed" 1 (Span.length r);
  check Alcotest.int "no mismatch" 0 (Span.mismatches r)

let span_mismatched_end () =
  let r = Span.create () in
  Span.end_span r ~now:4 ~track:1;
  check Alcotest.int "counted" 1 (Span.mismatches r);
  check Alcotest.int "nothing recorded" 0 (Span.length r)

let span_bounded_retention () =
  let r = Span.create ~capacity:3 () in
  for i = 0 to 9 do
    Span.instant r ~now:i ~track:0 "i"
  done;
  check Alcotest.int "retains capacity" 3 (Span.length r);
  check Alcotest.int "total keeps counting" 10 (Span.total r);
  check
    Alcotest.(list int)
    "keeps the most recent, oldest first" [ 7; 8; 9 ]
    (List.map (fun s -> s.Span.start) (Span.spans r))

let span_open_spans () =
  let r = Span.create () in
  Span.begin_span r ~now:0 ~track:0 "outer";
  Span.begin_span r ~now:3 ~track:0 "inner";
  (match Span.open_spans r ~now:7 with
  | [ outer; inner ] ->
    check Alcotest.string "outermost first" "outer" outer.Span.name;
    check Alcotest.int "horizon stop" 7 outer.Span.stop;
    check Alcotest.bool "marked open" true
      (outer.Span.phase = Span.Open && inner.Span.phase = Span.Open)
  | spans -> Alcotest.failf "expected 2 open, got %d" (List.length spans));
  (* Observation does not consume the stacks. *)
  check Alcotest.int "still open" 2 (Span.depth r ~track:0)

(* --- Chrome export --------------------------------------------------------- *)

let chrome_spans () =
  [ { Span.name = "partition-window"; track = 0; sub = 0; start = 0;
      stop = 10; detail = "S"; phase = Span.Complete };
    { Span.name = "mark"; track = -1; sub = 0; start = 4; stop = 4;
      detail = ""; phase = Span.Instant };
    { Span.name = "running"; track = 1; sub = 2; start = 6; stop = 9;
      detail = ""; phase = Span.Open } ]

let export_is_valid_json () =
  let json =
    Trace_export.to_chrome
      ~tracks:[ (-1, "AIR module"); (0, "P1") ]
      ~events:[ (3, "tick", "detail with \"quotes\"\nand newline") ]
      (chrome_spans ())
  in
  (match Json_lint.check json with
  | Ok () -> ()
  | Error e -> Alcotest.failf "invalid JSON: %s" e);
  (* The structural mapping: partition track 0 → pid 1, module → pid 0,
     sub 2 → tid 3, open span → lone B, instants/events → dur 0. *)
  List.iter
    (fun needle ->
      check Alcotest.bool (needle ^ " present") true (contains json needle))
    [ "\"ph\":\"X\"";
      "\"ph\":\"B\"";
      "\"ph\":\"M\"";
      "\"pid\":1,\"tid\":1";
      "\"pid\":2,\"tid\":3";
      "\"dur\":10";
      "\"name\":\"AIR module\"";
      "\\n" ];
  check Alcotest.bool "no raw newline inside strings" true
    (not (contains json "quotes\"\nand"))

let export_sorts_by_timestamp () =
  let json =
    Trace_export.to_chrome
      [ { Span.name = "late"; track = 0; sub = 0; start = 9; stop = 9;
          detail = ""; phase = Span.Instant };
        { Span.name = "early"; track = 0; sub = 0; start = 1; stop = 1;
          detail = ""; phase = Span.Instant } ]
  in
  let find needle =
    let n = String.length needle and l = String.length json in
    let rec go i = if i + n > l then -1
      else if String.sub json i n = needle then i else go (i + 1)
    in
    go 0
  in
  let i_early = find "\"early\"" and i_late = find "\"late\"" in
  check Alcotest.bool "both present" true (i_early >= 0 && i_late >= 0);
  check Alcotest.bool "early before late" true (i_early < i_late)

(* --- Replay checker -------------------------------------------------------- *)

(* Two-partition scheduling tables: S0 runs P0 then P1 over an MTF of 20;
   S1 swaps the order and warm-restarts P0 at its first dispatch. *)
let s0 =
  Schedule.make ~id:(sid 0) ~name:"S0" ~mtf:20
    ~requirements:
      [ { Schedule.partition = pid 0; cycle = 20; duration = 10 };
        { Schedule.partition = pid 1; cycle = 20; duration = 10 } ]
    [ { Schedule.partition = pid 0; offset = 0; duration = 10 };
      { Schedule.partition = pid 1; offset = 10; duration = 10 } ]

let s1 =
  Schedule.make ~id:(sid 1) ~name:"S1" ~mtf:20
    ~change_actions:[ (pid 0, Schedule.Warm_restart_partition) ]
    ~requirements:
      [ { Schedule.partition = pid 1; cycle = 20; duration = 10 };
        { Schedule.partition = pid 0; cycle = 20; duration = 10 } ]
    [ { Schedule.partition = pid 1; offset = 0; duration = 10 };
      { Schedule.partition = pid 0; offset = 10; duration = 10 } ]

let schedules = [ s0; s1 ]
let cs from to_ = Event.Context_switch { from; to_ }

let run_check ?network ?until trace =
  Air_analysis.Trace_check.check ?network ?until ~schedules trace

let checker_accepts_clean_trace () =
  let trace =
    [ (0, cs None (Some (pid 0)));
      (10, cs (Some (pid 0)) (Some (pid 1)));
      (20, cs (Some (pid 1)) (Some (pid 0)));
      (30, cs (Some (pid 0)) (Some (pid 1))) ]
  in
  check Alcotest.int "no violations" 0
    (List.length (run_check ~until:40 trace))

let checker_flags_out_of_window () =
  (* P1 grabs the processor at tick 5, in the middle of P0's window. *)
  let trace =
    [ (0, cs None (Some (pid 0))); (5, cs (Some (pid 0)) (Some (pid 1))) ]
  in
  match run_check ~until:10 trace with
  | [ Air_analysis.Trace_check.Outside_window { time; partition; expected } ]
    ->
    check Alcotest.int "at the excursion" 5 time;
    check Alcotest.bool "names the intruder" true
      (Ident.Partition_id.equal partition (pid 1));
    check Alcotest.bool "names the owner" true
      (expected = Some (pid 0))
  | vs ->
    Alcotest.failf "expected one Outside_window, got %d violation(s)"
      (List.length vs)

let checker_flags_mid_mtf_switch () =
  let trace =
    [ (0, cs None (Some (pid 0)));
      (10, cs (Some (pid 0)) (Some (pid 1)));
      (15, Event.Schedule_switch { from = sid 0; to_ = sid 1 });
      (15, cs (Some (pid 1)) (Some (pid 1))) ]
  in
  match run_check ~until:20 trace with
  | [ Air_analysis.Trace_check.Mid_mtf_switch { time; offset; _ } ] ->
    check Alcotest.int "at the switch" 15 time;
    check Alcotest.int "offset into the MTF" 15 offset
  | vs ->
    Alcotest.failf "expected one Mid_mtf_switch, got %d violation(s)"
      (List.length vs)

let change_action_trace ~with_action =
  [ (0, cs None (Some (pid 0)));
    (10, cs (Some (pid 0)) (Some (pid 1)));
    (20, Event.Schedule_switch { from = sid 0; to_ = sid 1 });
    (30, cs (Some (pid 1)) (Some (pid 0))) ]
  @ (if with_action then
       [ (30,
          Event.Change_action
            { partition = pid 0;
              action = Schedule.Warm_restart_partition }) ]
     else [])

let checker_flags_missing_change_action () =
  match run_check ~until:40 (change_action_trace ~with_action:false) with
  | [ Air_analysis.Trace_check.Change_action_missing { time; partition } ] ->
    check Alcotest.int "at the first dispatch" 30 time;
    check Alcotest.bool "names the partition" true
      (Ident.Partition_id.equal partition (pid 0))
  | vs ->
    Alcotest.failf "expected one Change_action_missing, got %d violation(s)"
      (List.length vs)

let checker_accepts_delivered_change_action () =
  check Alcotest.int "no violations" 0
    (List.length (run_check ~until:40 (change_action_trace ~with_action:true)))

let checker_flags_unexpected_change_action () =
  let trace =
    [ (0, cs None (Some (pid 0)));
      (5,
       Event.Change_action
         { partition = pid 0; action = Schedule.Warm_restart_partition }) ]
  in
  match run_check ~until:10 trace with
  | [ Air_analysis.Trace_check.Change_action_unexpected { time; _ } ] ->
    check Alcotest.int "at the stray action" 5 time
  | vs ->
    Alcotest.failf
      "expected one Change_action_unexpected, got %d violation(s)"
      (List.length vs)

let checker_matches_deadline_misses () =
  let violation =
    (3, Event.Deadline_violation { process = proc 0 0; deadline = 2 })
  in
  let hm =
    (3,
     Event.Hm_error
       { level = Error.Process_level;
         code = Error.Deadline_missed;
         partition = Some (pid 0);
         process = Some (proc 0 0);
         detail = "" })
  in
  let base = [ (0, cs None (Some (pid 0))) ] in
  (match run_check ~until:10 (base @ [ violation ]) with
  | [ Air_analysis.Trace_check.Unmatched_deadline_miss { time; process } ] ->
    check Alcotest.int "at the miss" 3 time;
    check Alcotest.bool "names the process" true
      (Ident.Process_id.equal process (proc 0 0))
  | vs ->
    Alcotest.failf
      "expected one Unmatched_deadline_miss, got %d violation(s)"
      (List.length vs));
  check Alcotest.int "HM event settles it" 0
    (List.length (run_check ~until:10 (base @ [ violation; hm ])))

(* A 1:1 queuing channel and a fan-out sampling channel for IPC checks. *)
let network =
  { Air_ipc.Port.ports =
      [ Air_ipc.Port.queuing_port ~name:"Q_SRC" ~partition:(pid 0)
          ~direction:Air_ipc.Port.Source ~depth:4 ~max_message_size:32;
        Air_ipc.Port.queuing_port ~name:"Q_DST" ~partition:(pid 1)
          ~direction:Air_ipc.Port.Destination ~depth:4 ~max_message_size:32;
        Air_ipc.Port.sampling_port ~name:"S_SRC" ~partition:(pid 0)
          ~direction:Air_ipc.Port.Source ~refresh:10 ~max_message_size:32;
        Air_ipc.Port.sampling_port ~name:"S_DST" ~partition:(pid 1)
          ~direction:Air_ipc.Port.Destination ~refresh:10 ~max_message_size:32
      ];
    channels =
      [ { Air_ipc.Port.source = "Q_SRC"; destinations = [ "Q_DST" ] };
        { Air_ipc.Port.source = "S_SRC"; destinations = [ "S_DST" ] } ]
  }

let checker_flags_receive_without_message () =
  let trace = [ (4, Event.Port_receive { port = "Q_DST"; bytes = 8 }) ] in
  (match run_check ~network ~until:10 trace with
  | [ Air_analysis.Trace_check.Receive_without_message { time; port } ] ->
    check Alcotest.int "at the receive" 4 time;
    check Alcotest.string "names the port" "Q_DST" port
  | vs ->
    Alcotest.failf
      "expected one Receive_without_message, got %d violation(s)"
      (List.length vs));
  (* A send through the channel's source balances the receive. *)
  let balanced =
    [ (2, Event.Port_send { port = "Q_SRC"; bytes = 8 });
      (4, Event.Port_receive { port = "Q_DST"; bytes = 8 }) ]
  in
  check Alcotest.int "send-then-receive is clean" 0
    (List.length (run_check ~network ~until:10 balanced));
  (* An overflow at the same tick voids the delivery. *)
  let overflowed =
    [ (2, Event.Port_send { port = "Q_SRC"; bytes = 8 });
      (2, Event.Port_overflow { port = "Q_DST" });
      (4, Event.Port_receive { port = "Q_DST"; bytes = 8 }) ]
  in
  check Alcotest.int "overflowed send does not count" 1
    (List.length (run_check ~network ~until:10 overflowed))

let checker_flags_sampling_read_before_write () =
  let trace = [ (3, Event.Port_receive { port = "S_DST"; bytes = 8 }) ] in
  (match run_check ~network ~until:10 trace with
  | [ Air_analysis.Trace_check.Sampling_read_before_write { port; _ } ] ->
    check Alcotest.string "names the port" "S_DST" port
  | vs ->
    Alcotest.failf
      "expected one Sampling_read_before_write, got %d violation(s)"
      (List.length vs));
  let written =
    [ (1, Event.Port_send { port = "S_SRC"; bytes = 8 });
      (3, Event.Port_receive { port = "S_DST"; bytes = 8 }) ]
  in
  check Alcotest.int "write-then-read is clean" 0
    (List.length (run_check ~network ~until:10 written))

(* --- System integration ----------------------------------------------------- *)

let recorded_system () =
  let p name i =
    Partition.make ~id:(pid i) ~name
      [ Process.spec ~periodicity:(Process.Periodic 20) ~time_capacity:20
          ~wcet:4 ~base_priority:5 "work" ]
  in
  let script =
    { Script.body = [| Script.Compute 4; Script.Periodic_wait |];
      on_end = Script.Repeat }
  in
  let recorder = Span.create () in
  let sys =
    Air.System.create
      (Air.System.config ~recorder
         ~partitions:
           [ Air.System.partition_setup (p "A" 0) [ script ];
             Air.System.partition_setup (p "B" 1) [ script ] ]
         ~schedules:[ s0 ] ())
  in
  (sys, recorder)

let system_records_partition_windows () =
  let sys, recorder = recorded_system () in
  Air.System.run sys ~ticks:100;
  let windows =
    List.filter
      (fun s -> String.equal s.Span.name "partition-window")
      (Air.System.spans sys)
  in
  (* 100 ticks of a 20-tick MTF with two 10-tick windows: the dispatcher
     closes a window at every context switch; the last one stays open. *)
  check Alcotest.bool "several windows recorded" true
    (List.length windows >= 8);
  List.iter
    (fun w ->
      check Alcotest.int "window spans are 10 ticks" 10
        (w.Span.stop - w.Span.start))
    windows;
  check Alcotest.int "one still open" 1
    (List.length (Span.open_spans recorder ~now:(Air.System.now sys)))

let system_chrome_trace_is_valid () =
  let sys, _ = recorded_system () in
  Air.System.run sys ~ticks:100;
  let json = Air.System.chrome_trace sys in
  (match Json_lint.check json with
  | Ok () -> ()
  | Error e -> Alcotest.failf "invalid JSON: %s" e);
  List.iter
    (fun needle ->
      check Alcotest.bool (needle ^ " present") true (contains json needle))
    [ "partition-window"; "context-switch"; "\"ph\":\"M\"" ]

let system_trace_passes_checker () =
  let sys, _ = recorded_system () in
  Air.System.run sys ~ticks:200;
  let violations =
    Air_analysis.Trace_check.check ~schedules:[ s0 ]
      ~until:(Air.System.now sys + 1)
      (Air_sim.Trace.to_list (Air.System.trace sys))
  in
  check Alcotest.int "a real run satisfies the invariants" 0
    (List.length violations)

let suite =
  [ Alcotest.test_case "span: nesting" `Quick span_nesting;
    Alcotest.test_case "span: independent tracks" `Quick
      span_tracks_are_independent;
    Alcotest.test_case "span: mismatched end" `Quick span_mismatched_end;
    Alcotest.test_case "span: bounded retention" `Quick
      span_bounded_retention;
    Alcotest.test_case "span: open spans" `Quick span_open_spans;
    Alcotest.test_case "export: valid chrome JSON" `Quick
      export_is_valid_json;
    Alcotest.test_case "export: timestamp order" `Quick
      export_sorts_by_timestamp;
    Alcotest.test_case "check: clean trace" `Quick
      checker_accepts_clean_trace;
    Alcotest.test_case "check: out-of-window" `Quick
      checker_flags_out_of_window;
    Alcotest.test_case "check: mid-MTF switch" `Quick
      checker_flags_mid_mtf_switch;
    Alcotest.test_case "check: missing change action" `Quick
      checker_flags_missing_change_action;
    Alcotest.test_case "check: delivered change action" `Quick
      checker_accepts_delivered_change_action;
    Alcotest.test_case "check: unexpected change action" `Quick
      checker_flags_unexpected_change_action;
    Alcotest.test_case "check: deadline-miss matching" `Quick
      checker_matches_deadline_misses;
    Alcotest.test_case "check: queuing conservation" `Quick
      checker_flags_receive_without_message;
    Alcotest.test_case "check: sampling before write" `Quick
      checker_flags_sampling_read_before_write;
    Alcotest.test_case "system: partition windows" `Quick
      system_records_partition_windows;
    Alcotest.test_case "system: chrome trace valid" `Quick
      system_chrome_trace_is_valid;
    Alcotest.test_case "system: real run passes checker" `Quick
      system_trace_passes_checker ]
