(* Standalone validator for the fleet-smoke make target: load an
   (air-fleet ...) document, advance one copy sequentially through
   [Air.Cluster.run] and two more through the parallel engine at
   different domain counts, and require all three observable
   fingerprints to be byte-identical — the bit-identity acceptance
   criterion, enforced outside the test harness on the shipped
   constellation document. Also lints the engine's stats JSON. Exits
   nonzero on the first problem. *)

module Fleet = Air_fleet.Fleet

let fail fmt = Printf.ksprintf (fun m -> prerr_endline m; exit 1) fmt

let load path =
  match Air_config.Loader.load_fleet_file path with
  | Ok fleet -> fleet.Air_config.Loader.fleet_cluster
  | Error m -> fail "%s: %s" path m

let parallel_fingerprint path ~domains ~ticks =
  let cluster = load path in
  let fleet = Fleet.create ~domains cluster in
  Fleet.run fleet ~ticks;
  Fleet.close fleet;
  let stats_json = Air_obs.Fleet_stats.to_json (Fleet.stats fleet) in
  (match Json_lint.check stats_json with
  | Ok () -> ()
  | Error e -> fail "fleet stats (%d domains): invalid JSON: %s" domains e);
  if not (Astring_contains.contains stats_json "\"air-fleet-stats/1\"") then
    fail "fleet stats (%d domains): missing air-fleet-stats/1 marker" domains;
  Fleet.fingerprint cluster

let () =
  let path, ticks =
    match Sys.argv with
    | [| _; path; ticks |] -> (
      match int_of_string_opt ticks with
      | Some t when t > 0 -> (path, t)
      | _ -> fail "TICKS must be a positive integer, got %S" ticks)
    | _ -> fail "usage: %s FLEET.air TICKS" Sys.argv.(0)
  in
  let reference = load path in
  Air.Cluster.run reference ~ticks;
  let stats = Air.Cluster.stats reference in
  if stats.Air.Cluster.transferred = 0 then
    fail "%s: no inter-module traffic in %d ticks; smoke proves nothing" path
      ticks;
  let sequential = Fleet.fingerprint reference in
  List.iter
    (fun domains ->
      let parallel = parallel_fingerprint path ~domains ~ticks in
      if not (String.equal sequential parallel) then
        fail "%d-domain fleet diverged from the sequential run:\n  %s\n  %s"
          domains sequential parallel)
    [ 2; 4 ];
  Printf.printf
    "fleet smoke OK: %d ticks, %d transfers, 2- and 4-domain runs \
     bit-identical to sequential (%s)\n"
    ticks stats.Air.Cluster.transferred sequential
