(* Minimal substring search shared by test modules (no external string
   library in the sealed environment). *)

let find haystack needle =
  let nh = String.length haystack and nn = String.length needle in
  if nn = 0 then Some 0
  else begin
    let rec go i =
      if i + nn > nh then None
      else if String.equal (String.sub haystack i nn) needle then Some i
      else go (i + 1)
    in
    go 0
  end

let contains haystack needle = Option.is_some (find haystack needle)
