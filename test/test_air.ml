let () =
  Alcotest.run "air"
    [ ("sim", Test_sim.suite);
      ("model", Test_model.suite);
      ("validate", Test_validate.suite);
      ("spatial", Test_spatial.suite);
      ("ipc", Test_ipc.suite);
      ("pos", Test_pos.suite);
      ("deadline-store", Test_deadline_store.suite);
      ("pal-pmk", Test_pal_pmk.suite);
      ("system", Test_system.suite);
      ("analysis", Test_analysis.suite);
      ("config", Test_config.suite);
      ("workload-vitral", Test_workload_vitral.suite);
      ("apex", Test_apex.suite);
      ("multicore", Test_multicore.suite);
      ("obs", Test_obs.suite);
      ("trace", Test_trace.suite);
      ("telemetry", Test_telemetry.suite);
      ("misc", Test_misc.suite);
      ("properties", Test_properties.suite);
      ("arinc", Test_arinc.suite);
      ("cluster", Test_cluster.suite);
      ("fleet", Test_fleet.suite);
      ("contention", Test_contention.suite);
      ("faults", Test_faults.suite);
      ("exec", Test_exec.suite);
      ("causal", Test_causal.suite) ]
