(* Observational equivalence of the skip-ahead executive (Air_exec.Engine):
   for any module the engine must be indistinguishable from per-tick
   execution — same event trace, same telemetry frames, same metrics JSON,
   same clock — whether the workload is hand-written (the Sect. 6
   prototype), randomly generated (Taskgen + synthesized PSTs), sharded
   over multiple cores, or driven through a fault-injection campaign
   (identical fingerprints and air-campaign/1 reports). *)

open Air_sim
open Air_model
open Air_pos
module System = Air.System
module Engine = Air_exec.Engine
module C = Air_faults.Campaign
module E = Air_faults.Engine
module O = Air_faults.Oracle
module R = Air_faults.Report

let check = Alcotest.check
let qcheck = QCheck_alcotest.to_alcotest
let pid = Ident.Partition_id.make
let sid = Ident.Schedule_id.make
let w partition offset duration = { Schedule.partition; offset; duration }
let q partition cycle duration = { Schedule.partition; cycle; duration }

(* --- Observable fingerprint --------------------------------------------- *)

let rendered_trace system =
  List.map
    (fun (t, ev) -> Format.asprintf "[%d] %a" t Event.pp ev)
    (Trace.to_list (System.trace system))

(* Everything an observer can compare across the two executives. Telemetry
   frames are immutable records of scalars and arrays, so structural
   equality is exact. *)
let assert_equivalent ~what reference candidate =
  check Alcotest.int
    (what ^ ": clock")
    (System.now reference) (System.now candidate);
  check Alcotest.(list string)
    (what ^ ": event trace")
    (rendered_trace reference) (rendered_trace candidate);
  check Alcotest.string
    (what ^ ": metrics JSON")
    (System.metrics_json reference)
    (System.metrics_json candidate);
  check Alcotest.bool
    (what ^ ": telemetry frames")
    true
    (System.telemetry_frames reference = System.telemetry_frames candidate)

(* --- Randomly generated modules ----------------------------------------- *)

(* A fresh module from a seeded Taskgen workload under a synthesized PST,
   with telemetry enabled so frame equality is exercised too. Returns
   [None] when synthesis fails for this seed (the property skips it). *)
let taskgen_system ?cores ?(utilization = 0.4) seed =
  let rng = Rng.create seed in
  let n_partitions = 2 + (seed mod 3) in
  let gen =
    Air_workload.Taskgen.generate rng ~n_partitions ~procs_per_partition:2
      ~utilization
  in
  match Air_analysis.Synthesis.synthesize gen.Air_workload.Taskgen.requirements with
  | Error _ -> None
  | Ok schedule ->
    let config =
      System.config
        ~partitions:
          (List.map
             (fun (p, scripts) -> System.partition_setup p scripts)
             gen.Air_workload.Taskgen.partitions)
        ~schedules:[ schedule ] ~telemetry:Air_obs.Telemetry.default_config
        ?cores ()
    in
    Some (System.create config, schedule.Schedule.mtf)

let skip_matches_per_tick_on_random_modules =
  QCheck.Test.make ~name:"skip-ahead is bit-identical on seeded random modules"
    ~count:40
    QCheck.(int_range 1 10_000)
    (fun seed ->
      match (taskgen_system seed, taskgen_system seed) with
      | None, _ | _, None -> QCheck.assume_fail ()
      | Some (reference, mtf), Some (candidate, _) ->
        (* A few MTFs plus a ragged tail so runs end mid-frame too. *)
        let ticks = (3 * mtf) + (seed mod 997) in
        System.run reference ~ticks;
        let engine = Engine.create ~skip_ahead:true candidate in
        Engine.advance engine ~ticks;
        assert_equivalent ~what:(Printf.sprintf "seed %d" seed) reference
          candidate;
        check Alcotest.int
          (Printf.sprintf "seed %d: simulated ticks" seed)
          ticks (Engine.simulated engine);
        true)

(* All three execution strategies — plain per-tick, always-skip and the
   default adaptive mode — must be pairwise bit-identical, both on sparse
   modules (where skipping dominates and the adaptive estimate stays low)
   and on dense ones (where adaptive runs blind per-tick batches). This is
   the tentpole invariant: mode only changes speed, never observables. *)
let modes_agree ~name ~utilization =
  QCheck.Test.make ~name ~count:20
    QCheck.(int_range 1 10_000)
    (fun seed ->
      match
        ( taskgen_system ~utilization seed,
          taskgen_system ~utilization seed,
          taskgen_system ~utilization seed )
      with
      | None, _, _ | _, None, _ | _, _, None -> QCheck.assume_fail ()
      | Some (reference, mtf), Some (skip_sys, _), Some (adaptive_sys, _) ->
        let ticks = (3 * mtf) + (seed mod 997) in
        let per_tick = Engine.create ~mode:Engine.Per_tick reference in
        Engine.advance per_tick ~ticks;
        let skip = Engine.create ~mode:Engine.Skip skip_sys in
        Engine.advance skip ~ticks;
        let adaptive = Engine.create ~mode:Engine.Adaptive adaptive_sys in
        Engine.advance adaptive ~ticks;
        assert_equivalent
          ~what:(Printf.sprintf "seed %d: always-skip vs per-tick" seed)
          reference skip_sys;
        assert_equivalent
          ~what:(Printf.sprintf "seed %d: adaptive vs per-tick" seed)
          reference adaptive_sys;
        check Alcotest.int
          (Printf.sprintf "seed %d: per-tick simulated" seed)
          ticks (Engine.simulated per_tick);
        check Alcotest.int
          (Printf.sprintf "seed %d: always-skip simulated" seed)
          ticks (Engine.simulated skip);
        check Alcotest.int
          (Printf.sprintf "seed %d: adaptive simulated" seed)
          ticks (Engine.simulated adaptive);
        true)

let modes_agree_sparse =
  modes_agree
    ~name:"per-tick = always-skip = adaptive on sparse random modules"
    ~utilization:0.4

let modes_agree_dense =
  modes_agree
    ~name:"per-tick = always-skip = adaptive on dense random modules"
    ~utilization:0.9

(* --- Dense workloads ----------------------------------------------------- *)

(* A fully dense module: one partition owns the whole 50-tick MTF and its
   single process computes on every tick, so no tick is ever quiescent and
   skip-ahead can never engage. *)
let dense_system ?causal () =
  let p =
    Partition.make ~id:(pid 0) ~name:"dense"
      [ Process.spec ~base_priority:1 "spin" ]
  in
  let script =
    { Script.body = [| Script.Compute 1_000_000_000 |];
      on_end = Script.Repeat }
  in
  let schedule =
    Schedule.make ~id:(sid 0) ~name:"S" ~mtf:50
      ~requirements:[ q (pid 0) 50 50 ]
      [ w (pid 0) 0 50 ]
  in
  System.create
    (System.config ?causal
       ~partitions:[ System.partition_setup p [ script ] ]
       ~schedules:[ schedule ] ())

(* The BENCH_5 regression this PR fixes: always-skip paid a
   [Clock.next_interesting] probe per executed tick on dense workloads.
   The adaptive default must pay none here — every tick is non-quiescent,
   so it runs blind batches and never consults the probe — while staying
   bit-identical to the per-tick reference. *)
let adaptive_never_probes_when_dense () =
  let reference = dense_system () in
  System.run reference ~ticks:10_000;
  let engine = Engine.create (dense_system ()) in
  check Alcotest.bool "create defaults to adaptive" true
    (Engine.mode engine = Engine.Adaptive);
  Engine.advance engine ~ticks:10_000;
  assert_equivalent ~what:"dense module" reference (Engine.system engine);
  let stats = Engine.stats engine in
  check Alcotest.int "nothing skipped" 0 stats.Engine.skipped;
  check Alcotest.int "no probes paid" 0 stats.Engine.probes;
  check Alcotest.int "all ticks stepped" 10_000 stats.Engine.stepped

(* Tentpole acceptance: the steady-state per-tick path allocates nothing.
   After the boot transient, [System.step] on the dense module must not
   touch the minor heap — scheduler, dispatcher, kernel announce, process
   schedule and interpreter all run on preallocated state. [Gc.minor_words]
   itself returns a boxed float, so the probe's own cost is calibrated
   first and the measured delta must equal it exactly. *)
let steady_state_tick_is_allocation_free () =
  (* The causal tracker rides along: its presence on the config must not
     put anything on the tick path (stamping itself is pinned
     allocation-free in [test_causal.ml]). *)
  let s = dense_system ~causal:(Air_obs.Causal.create ()) () in
  System.run s ~ticks:200;
  let calibration =
    let a = Gc.minor_words () in
    let b = Gc.minor_words () in
    b -. a
  in
  let before = Gc.minor_words () in
  System.run s ~ticks:5_000;
  let after = Gc.minor_words () in
  check (Alcotest.float 0.) "minor words across 5000 steady ticks"
    calibration (after -. before)

(* --- Self-profiler -------------------------------------------------------- *)

(* The profiler is observational: attaching one must not change a single
   bit of the observable run, and its step/batch/skip tick buckets must
   partition the simulated horizon exactly — in every mode. The satellite
   workload exercises all three buckets (sparse spans skip, dense phases
   batch, interesting ticks step). *)
let profile_ticks = 20_000

let profiler_buckets_partition_ticks () =
  let reference = Air_workload.Satellite.make () in
  System.run reference ~ticks:profile_ticks;
  List.iter
    (fun (label, mode) ->
      let profiler = Air_exec.Profiler.create () in
      let engine =
        Engine.create ~profiler ~mode (Air_workload.Satellite.make ())
      in
      Engine.advance engine ~ticks:profile_ticks;
      check Alcotest.bool
        (label ^ ": engine keeps the profiler")
        true
        (match Engine.profiler engine with
        | Some p -> p == profiler
        | None -> false);
      check Alcotest.int
        (label ^ ": buckets partition the horizon")
        profile_ticks
        (Air_exec.Profiler.simulated profiler);
      check Alcotest.int
        (label ^ ": probes attributed")
        (Engine.stats engine).Engine.probes
        (Air_exec.Profiler.probes profiler);
      assert_equivalent ~what:(label ^ ": profiled run") reference
        (Engine.system engine);
      let json = Air_exec.Profiler.to_json profiler in
      (match Json_lint.check json with
      | Ok () -> ()
      | Error e -> Alcotest.failf "%s: invalid profile JSON: %s" label e);
      check Alcotest.bool
        (label ^ ": profile schema")
        true
        (Astring_contains.contains json "\"schema\":\"air-profile/1\""))
    [ ("per-tick", Engine.Per_tick); ("skip", Engine.Skip);
      ("adaptive", Engine.Adaptive) ]

(* Mode-specific attribution: per-tick advances are blind batches (no
   probes, no skips); always-skip pays a probe per executed tick and
   never batches; the adaptive satellite run uses skips (sparse idle
   spans) and records a density trajectory. *)
let profiler_attributes_by_mode () =
  let run mode =
    let profiler = Air_exec.Profiler.create () in
    let engine =
      Engine.create ~profiler ~mode (Air_workload.Satellite.make ())
    in
    Engine.advance engine ~ticks:profile_ticks;
    (profiler, Engine.stats engine)
  in
  let p, _ = run Engine.Per_tick in
  check Alcotest.int "per-tick: no probes" 0 (Air_exec.Profiler.probes p);
  check Alcotest.(list int) "per-tick: no density samples" []
    (Air_exec.Profiler.density_trajectory p);
  let p, stats = run Engine.Skip in
  check Alcotest.bool "skip: probes paid" true (stats.Engine.probes > 0);
  check Alcotest.int "skip: every probe attributed" stats.Engine.probes
    (Air_exec.Profiler.probes p);
  let p, stats = run Engine.Adaptive in
  check Alcotest.bool "adaptive: skips engaged" true (stats.Engine.skipped > 0);
  check Alcotest.bool "adaptive: density sampled" true
    (Air_exec.Profiler.density_trajectory p <> [])

(* --- Horizon arithmetic -------------------------------------------------- *)

(* [Clock.horizon] must saturate at [Time.infinity] instead of wrapping
   when [now + remaining + 1] would exceed [max_int] — a watch running
   with an effectively unbounded budget near the end of the representable
   range would otherwise compute a negative bound and stall the skip. *)
let horizon_saturates_near_max_int () =
  check Alcotest.int "normal case is one past the budget" 11
    (Air_exec.Clock.horizon ~now:0 ~remaining:10);
  check Alcotest.int "overflowing sum saturates" Time.infinity
    (Air_exec.Clock.horizon ~now:(Time.infinity - 5) ~remaining:10);
  check Alcotest.int "exact boundary saturates" Time.infinity
    (Air_exec.Clock.horizon ~now:10 ~remaining:(Time.infinity - 10));
  check Alcotest.int "just below the boundary stays finite"
    (Time.infinity - 1)
    (Air_exec.Clock.horizon ~now:10 ~remaining:(Time.infinity - 12))

(* --- The Sect. 6 prototype ---------------------------------------------- *)

let satellite_ticks = 20_000

let satellite_skip_equivalence () =
  let reference = Air_workload.Satellite.make () in
  System.run reference ~ticks:satellite_ticks;
  let engine =
    Engine.create ~skip_ahead:true (Air_workload.Satellite.make ())
  in
  Engine.advance engine ~ticks:satellite_ticks;
  assert_equivalent ~what:"satellite" reference (Engine.system engine);
  (* The satellite workload has idle spans: skip-ahead must actually
     engage, otherwise the executive degenerated to per-tick. *)
  let stats = Engine.stats engine in
  check Alcotest.bool "some ticks skipped" true (stats.Engine.skipped > 0);
  check Alcotest.int "stepped + skipped" satellite_ticks
    (stats.Engine.stepped + stats.Engine.skipped)

let multicore_skip_equivalence () =
  let make () =
    let config = Air_workload.Satellite.config () in
    System.create { config with System.cores = Some 2 }
  in
  let reference = make () in
  System.run reference ~ticks:satellite_ticks;
  let engine = Engine.create ~skip_ahead:true (make ()) in
  Engine.advance engine ~ticks:satellite_ticks;
  check Alcotest.int "2 cores" 2 (System.cores (Engine.system engine));
  assert_equivalent ~what:"satellite --cores 2" reference
    (Engine.system engine)

let run_mtfs_equivalence () =
  let reference = Air_workload.Satellite.make () in
  System.run_mtfs reference 7;
  let engine =
    Engine.create ~skip_ahead:true (Air_workload.Satellite.make ())
  in
  Engine.run_mtfs engine 7;
  assert_equivalent ~what:"run_mtfs" reference (Engine.system engine)

(* Pin the schedule-switch boundary fix: when an iteration starts at an
   MTF boundary with a pending switch to a different-MTF schedule, the
   switch takes effect on the boundary tick and the iteration must finish
   the frame of the schedule *now running* — not advance the old MTF's
   worth of ticks into the new frame. *)
let s0_20 =
  Schedule.make ~id:(sid 0) ~name:"S0" ~mtf:20
    ~requirements:[ q (pid 0) 20 10; q (pid 1) 20 10 ]
    [ w (pid 0) 0 10; w (pid 1) 10 10 ]

let s1_40 =
  Schedule.make ~id:(sid 1) ~name:"S1" ~mtf:40
    ~requirements:[ q (pid 0) 40 10 ]
    [ w (pid 0) 0 10 ]

let switch_system () =
  let p name i =
    Partition.make ~id:(pid i) ~name
      [ Process.spec ~periodicity:(Process.Periodic 20) ~time_capacity:20
          ~wcet:4 ~base_priority:5 "work" ]
  in
  let script =
    { Script.body = [| Script.Compute 4; Script.Periodic_wait |];
      on_end = Script.Repeat }
  in
  System.create
    (System.config
       ~partitions:
         [ System.partition_setup (p "A" 0) [ script ];
           System.partition_setup (p "B" 1) [ script ] ]
       ~schedules:[ s0_20; s1_40 ] ())

let run_mtfs_whole_frames_across_switch () =
  let reference = switch_system () in
  (* [run_mtfs] leaves the clock one tick before the frame-close tick
     (the close happens on the next frame's offset-0 tick), so each
     iteration's net advance is exactly one MTF of the running schedule. *)
  System.run_mtfs reference 1;
  check Alcotest.int "one whole S0 frame" 19 (System.now reference);
  Result.get_ok (System.request_schedule reference (sid 1));
  System.run_mtfs reference 1;
  (* The boundary tick effects the 20 -> 40 switch; the iteration then
     finishes the 40-tick S1 frame: 19 + 40 = 59. The old code advanced
     only the stale 20-tick MTF, stopping half a frame in at 39. *)
  check Alcotest.int "switch iteration advances a whole S1 frame" 59
    (System.now reference);
  System.run_mtfs reference 2;
  check Alcotest.int "subsequent iterations are whole S1 frames" 139
    (System.now reference);
  (* The engine mirror takes the same path, bit-identically. *)
  let engine = Engine.create (switch_system ()) in
  Engine.run_mtfs engine 1;
  Result.get_ok (System.request_schedule (Engine.system engine) (sid 1));
  Engine.run_mtfs engine 3;
  assert_equivalent ~what:"run_mtfs across a 20 -> 40 switch" reference
    (Engine.system engine)

(* --- leo_satellite campaigns -------------------------------------------- *)

(* The example file ships two fault-injection campaigns; under --turbo the
   engine must reproduce the per-tick run bit for bit: same fingerprint,
   same oracle verdict, same air-campaign/1 JSON. The path is relative to
   the test's build directory (declared as a dune dep). *)
let leo_path = "../examples/configs/leo_satellite.air"

let leo_campaigns_turbo_identical () =
  let config =
    match Air_config.Loader.load_file leo_path with
    | Ok config -> config
    | Error msg -> Alcotest.failf "load %s: %s" leo_path msg
  in
  let specs =
    match Air_config.Loader.load_campaigns_file leo_path with
    | Ok specs -> specs
    | Error msg -> Alcotest.failf "campaigns %s: %s" leo_path msg
  in
  check Alcotest.bool "campaigns present" true (specs <> []);
  let make () = E.Module (System.create config) in
  List.iter
    (fun spec ->
      let per_tick = E.execute ~turbo:false ~make spec in
      let turbo = E.execute ~turbo:true ~make spec in
      check Alcotest.string
        (spec.C.name ^ ": fingerprint")
        per_tick.E.fingerprint turbo.E.fingerprint;
      assert_equivalent
        ~what:(spec.C.name ^ ": observed module")
        (E.observed per_tick.E.target)
        (E.observed turbo.E.target);
      let json run = R.to_json (R.make run (O.check run)) in
      check Alcotest.string
        (spec.C.name ^ ": air-campaign/1 JSON")
        (json per_tick) (json turbo))
    specs

let leo_turbo_reproducible () =
  let config =
    match Air_config.Loader.load_file leo_path with
    | Ok config -> config
    | Error msg -> Alcotest.failf "load %s: %s" leo_path msg
  in
  match Air_config.Loader.load_campaigns_file leo_path with
  | Error msg -> Alcotest.failf "campaigns %s: %s" leo_path msg
  | Ok specs ->
    let make () = E.Module (System.create config) in
    List.iter
      (fun spec ->
        check Alcotest.bool
          (spec.C.name ^ ": reproducible under turbo")
          true
          (E.reproducible ~turbo:true ~make spec))
      specs

let suite =
  [ qcheck skip_matches_per_tick_on_random_modules;
    qcheck modes_agree_sparse;
    qcheck modes_agree_dense;
    Alcotest.test_case "dense module: adaptive never probes" `Quick
      adaptive_never_probes_when_dense;
    Alcotest.test_case "dense module: steady tick is allocation-free" `Quick
      steady_state_tick_is_allocation_free;
    Alcotest.test_case "profiler: buckets partition the horizon" `Quick
      profiler_buckets_partition_ticks;
    Alcotest.test_case "profiler: attribution per mode" `Quick
      profiler_attributes_by_mode;
    Alcotest.test_case "horizon saturates near max_int" `Quick
      horizon_saturates_near_max_int;
    Alcotest.test_case "run_mtfs: whole frames across a schedule switch"
      `Quick run_mtfs_whole_frames_across_switch;
    Alcotest.test_case "satellite: skip-ahead bit-identical" `Quick
      satellite_skip_equivalence;
    Alcotest.test_case "satellite: multicore skip-ahead bit-identical" `Quick
      multicore_skip_equivalence;
    Alcotest.test_case "run_mtfs mirrors System.run_mtfs" `Quick
      run_mtfs_equivalence;
    Alcotest.test_case "leo_satellite: campaigns identical under turbo" `Slow
      leo_campaigns_turbo_identical;
    Alcotest.test_case "leo_satellite: turbo runs reproducible" `Slow
      leo_turbo_reproducible ]
