(* Observational equivalence of the skip-ahead executive (Air_exec.Engine):
   for any module the engine must be indistinguishable from per-tick
   execution — same event trace, same telemetry frames, same metrics JSON,
   same clock — whether the workload is hand-written (the Sect. 6
   prototype), randomly generated (Taskgen + synthesized PSTs), sharded
   over multiple cores, or driven through a fault-injection campaign
   (identical fingerprints and air-campaign/1 reports). *)

open Air_sim
open Air_model
module System = Air.System
module Engine = Air_exec.Engine
module C = Air_faults.Campaign
module E = Air_faults.Engine
module O = Air_faults.Oracle
module R = Air_faults.Report

let check = Alcotest.check
let qcheck = QCheck_alcotest.to_alcotest

(* --- Observable fingerprint --------------------------------------------- *)

let rendered_trace system =
  List.map
    (fun (t, ev) -> Format.asprintf "[%d] %a" t Event.pp ev)
    (Trace.to_list (System.trace system))

(* Everything an observer can compare across the two executives. Telemetry
   frames are immutable records of scalars and arrays, so structural
   equality is exact. *)
let assert_equivalent ~what reference candidate =
  check Alcotest.int
    (what ^ ": clock")
    (System.now reference) (System.now candidate);
  check Alcotest.(list string)
    (what ^ ": event trace")
    (rendered_trace reference) (rendered_trace candidate);
  check Alcotest.string
    (what ^ ": metrics JSON")
    (System.metrics_json reference)
    (System.metrics_json candidate);
  check Alcotest.bool
    (what ^ ": telemetry frames")
    true
    (System.telemetry_frames reference = System.telemetry_frames candidate)

(* --- Randomly generated modules ----------------------------------------- *)

(* A fresh module from a seeded Taskgen workload under a synthesized PST,
   with telemetry enabled so frame equality is exercised too. Returns
   [None] when synthesis fails for this seed (the property skips it). *)
let taskgen_system ?cores seed =
  let rng = Rng.create seed in
  let n_partitions = 2 + (seed mod 3) in
  let gen =
    Air_workload.Taskgen.generate rng ~n_partitions ~procs_per_partition:2
      ~utilization:0.4
  in
  match Air_analysis.Synthesis.synthesize gen.Air_workload.Taskgen.requirements with
  | Error _ -> None
  | Ok schedule ->
    let config =
      System.config
        ~partitions:
          (List.map
             (fun (p, scripts) -> System.partition_setup p scripts)
             gen.Air_workload.Taskgen.partitions)
        ~schedules:[ schedule ] ~telemetry:Air_obs.Telemetry.default_config
        ?cores ()
    in
    Some (System.create config, schedule.Schedule.mtf)

let skip_matches_per_tick_on_random_modules =
  QCheck.Test.make ~name:"skip-ahead is bit-identical on seeded random modules"
    ~count:40
    QCheck.(int_range 1 10_000)
    (fun seed ->
      match (taskgen_system seed, taskgen_system seed) with
      | None, _ | _, None -> QCheck.assume_fail ()
      | Some (reference, mtf), Some (candidate, _) ->
        (* A few MTFs plus a ragged tail so runs end mid-frame too. *)
        let ticks = (3 * mtf) + (seed mod 997) in
        System.run reference ~ticks;
        let engine = Engine.create ~skip_ahead:true candidate in
        Engine.advance engine ~ticks;
        assert_equivalent ~what:(Printf.sprintf "seed %d" seed) reference
          candidate;
        check Alcotest.int
          (Printf.sprintf "seed %d: simulated ticks" seed)
          ticks (Engine.simulated engine);
        true)

(* --- The Sect. 6 prototype ---------------------------------------------- *)

let satellite_ticks = 20_000

let satellite_skip_equivalence () =
  let reference = Air_workload.Satellite.make () in
  System.run reference ~ticks:satellite_ticks;
  let engine =
    Engine.create ~skip_ahead:true (Air_workload.Satellite.make ())
  in
  Engine.advance engine ~ticks:satellite_ticks;
  assert_equivalent ~what:"satellite" reference (Engine.system engine);
  (* The satellite workload has idle spans: skip-ahead must actually
     engage, otherwise the executive degenerated to per-tick. *)
  let stats = Engine.stats engine in
  check Alcotest.bool "some ticks skipped" true (stats.Engine.skipped > 0);
  check Alcotest.int "stepped + skipped" satellite_ticks
    (stats.Engine.stepped + stats.Engine.skipped)

let multicore_skip_equivalence () =
  let make () =
    let config = Air_workload.Satellite.config () in
    System.create { config with System.cores = Some 2 }
  in
  let reference = make () in
  System.run reference ~ticks:satellite_ticks;
  let engine = Engine.create ~skip_ahead:true (make ()) in
  Engine.advance engine ~ticks:satellite_ticks;
  check Alcotest.int "2 cores" 2 (System.cores (Engine.system engine));
  assert_equivalent ~what:"satellite --cores 2" reference
    (Engine.system engine)

let run_mtfs_equivalence () =
  let reference = Air_workload.Satellite.make () in
  System.run_mtfs reference 7;
  let engine =
    Engine.create ~skip_ahead:true (Air_workload.Satellite.make ())
  in
  Engine.run_mtfs engine 7;
  assert_equivalent ~what:"run_mtfs" reference (Engine.system engine)

(* --- leo_satellite campaigns -------------------------------------------- *)

(* The example file ships two fault-injection campaigns; under --turbo the
   engine must reproduce the per-tick run bit for bit: same fingerprint,
   same oracle verdict, same air-campaign/1 JSON. The path is relative to
   the test's build directory (declared as a dune dep). *)
let leo_path = "../examples/configs/leo_satellite.air"

let leo_campaigns_turbo_identical () =
  let config =
    match Air_config.Loader.load_file leo_path with
    | Ok config -> config
    | Error msg -> Alcotest.failf "load %s: %s" leo_path msg
  in
  let specs =
    match Air_config.Loader.load_campaigns_file leo_path with
    | Ok specs -> specs
    | Error msg -> Alcotest.failf "campaigns %s: %s" leo_path msg
  in
  check Alcotest.bool "campaigns present" true (specs <> []);
  let make () = E.Module (System.create config) in
  List.iter
    (fun spec ->
      let per_tick = E.execute ~turbo:false ~make spec in
      let turbo = E.execute ~turbo:true ~make spec in
      check Alcotest.string
        (spec.C.name ^ ": fingerprint")
        per_tick.E.fingerprint turbo.E.fingerprint;
      assert_equivalent
        ~what:(spec.C.name ^ ": observed module")
        (E.observed per_tick.E.target)
        (E.observed turbo.E.target);
      let json run = R.to_json (R.make run (O.check run)) in
      check Alcotest.string
        (spec.C.name ^ ": air-campaign/1 JSON")
        (json per_tick) (json turbo))
    specs

let leo_turbo_reproducible () =
  let config =
    match Air_config.Loader.load_file leo_path with
    | Ok config -> config
    | Error msg -> Alcotest.failf "load %s: %s" leo_path msg
  in
  match Air_config.Loader.load_campaigns_file leo_path with
  | Error msg -> Alcotest.failf "campaigns %s: %s" leo_path msg
  | Ok specs ->
    let make () = E.Module (System.create config) in
    List.iter
      (fun spec ->
        check Alcotest.bool
          (spec.C.name ^ ": reproducible under turbo")
          true
          (E.reproducible ~turbo:true ~make spec))
      specs

let suite =
  [ qcheck skip_matches_per_tick_on_random_modules;
    Alcotest.test_case "satellite: skip-ahead bit-identical" `Quick
      satellite_skip_equivalence;
    Alcotest.test_case "satellite: multicore skip-ahead bit-identical" `Quick
      multicore_skip_equivalence;
    Alcotest.test_case "run_mtfs mirrors System.run_mtfs" `Quick
      run_mtfs_equivalence;
    Alcotest.test_case "leo_satellite: campaigns identical under turbo" `Slow
      leo_campaigns_turbo_identical;
    Alcotest.test_case "leo_satellite: turbo runs reproducible" `Slow
      leo_turbo_reproducible ]
