(* Tests for interpartition communication: port network validation and the
   runtime router's sampling/queuing semantics. *)

open Air_model
open Air_ipc

let check = Alcotest.check
let pid = Ident.Partition_id.make

let sampling name partition direction =
  Port.sampling_port ~name ~partition ~direction ~refresh:100
    ~max_message_size:32

let queuing ?(depth = 2) name partition direction =
  Port.queuing_port ~name ~partition ~direction ~depth ~max_message_size:32

let net =
  { Port.ports =
      [ sampling "S_OUT" (pid 0) Port.Source;
        sampling "S_IN" (pid 1) Port.Destination;
        queuing "Q_OUT" (pid 0) Port.Source;
        queuing "Q_IN" (pid 1) Port.Destination ];
    channels =
      [ { Port.source = "S_OUT"; destinations = [ "S_IN" ] };
        { Port.source = "Q_OUT"; destinations = [ "Q_IN" ] } ] }

let validation_ok () =
  check Alcotest.(list string) "no diagnostics" [] (Port.validate net)

let validation_catches_errors () =
  let bad name mk = (name, mk) in
  let cases =
    [ bad "duplicate port"
        { net with
          Port.ports = sampling "S_OUT" (pid 2) Port.Source :: net.Port.ports };
      bad "unknown source"
        { net with
          Port.channels =
            { Port.source = "NOPE"; destinations = [ "S_IN" ] }
            :: net.Port.channels };
      bad "unknown destination"
        { net with
          Port.channels = [ { Port.source = "S_OUT"; destinations = [ "NOPE" ] } ] };
      bad "mode mismatch"
        { net with
          Port.channels = [ { Port.source = "S_OUT"; destinations = [ "Q_IN" ] } ] };
      bad "direction misuse"
        { net with
          Port.channels = [ { Port.source = "S_IN"; destinations = [ "S_OUT" ] } ] };
      bad "double channel from one source"
        { net with
          Port.channels =
            { Port.source = "S_OUT"; destinations = [ "S_IN" ] }
            :: net.Port.channels };
      (* Regression: ARINC 653 queuing channels are strictly 1:1; fan-out
         used to slip through validation. *)
      bad "queuing fan-out"
        { Port.ports = queuing "Q_IN2" (pid 2) Port.Destination :: net.Port.ports;
          channels =
            [ { Port.source = "S_OUT"; destinations = [ "S_IN" ] };
              { Port.source = "Q_OUT"; destinations = [ "Q_IN"; "Q_IN2" ] } ] } ]
  in
  List.iter
    (fun (name, bad_net) ->
      check Alcotest.bool name true (Port.validate bad_net <> []))
    cases

(* Sampling channels may still fan out to several destinations. *)
let sampling_fanout_still_valid () =
  let fanned =
    { Port.ports = sampling "S_IN2" (pid 2) Port.Destination :: net.Port.ports;
      channels =
        [ { Port.source = "S_OUT"; destinations = [ "S_IN"; "S_IN2" ] };
          { Port.source = "Q_OUT"; destinations = [ "Q_IN" ] } ] }
  in
  check Alcotest.(list string) "no diagnostics" [] (Port.validate fanned)

let size_mismatch_detected () =
  let small_dest =
    Port.sampling_port ~name:"S_IN" ~partition:(pid 1)
      ~direction:Port.Destination ~refresh:100 ~max_message_size:8
  in
  let bad =
    { Port.ports = [ sampling "S_OUT" (pid 0) Port.Source; small_dest ];
      channels = [ { Port.source = "S_OUT"; destinations = [ "S_IN" ] } ] }
  in
  check Alcotest.bool "size" true (Port.validate bad <> [])

let msg s = Bytes.of_string s

let sampling_semantics () =
  let r = Router.create net in
  (* Empty slot reads invalid with empty payload. *)
  (match Router.read_sampling r ~caller:(pid 1) ~port:"S_IN" ~now:0 with
  | Ok (m, Router.Invalid) -> check Alcotest.int "empty" 0 (Bytes.length m)
  | _ -> Alcotest.fail "expected empty invalid read");
  (match Router.write_sampling r ~caller:(pid 0) ~port:"S_OUT" ~now:10 (msg "alpha") with
  | Ok () -> ()
  | Error e -> Alcotest.failf "write: %a" Router.pp_error e);
  (match Router.read_sampling r ~caller:(pid 1) ~port:"S_IN" ~now:50 with
  | Ok (m, Router.Valid) -> check Alcotest.string "fresh" "alpha" (Bytes.to_string m)
  | _ -> Alcotest.fail "expected fresh read");
  (* Reads are non-destructive. *)
  (match Router.read_sampling r ~caller:(pid 1) ~port:"S_IN" ~now:60 with
  | Ok (m, Router.Valid) -> check Alcotest.string "again" "alpha" (Bytes.to_string m)
  | _ -> Alcotest.fail "expected second read");
  (* A later write overwrites. *)
  ignore (Router.write_sampling r ~caller:(pid 0) ~port:"S_OUT" ~now:70 (msg "beta"));
  (match Router.read_sampling r ~caller:(pid 1) ~port:"S_IN" ~now:80 with
  | Ok (m, Router.Valid) -> check Alcotest.string "overwritten" "beta" (Bytes.to_string m)
  | _ -> Alcotest.fail "expected overwrite");
  (* Staleness: refresh period is 100. *)
  (match Router.read_sampling r ~caller:(pid 1) ~port:"S_IN" ~now:250 with
  | Ok (_, Router.Invalid) -> ()
  | _ -> Alcotest.fail "expected stale read")

let sampling_copies_do_not_alias () =
  let r = Router.create net in
  let payload = msg "mutate-me" in
  ignore (Router.write_sampling r ~caller:(pid 0) ~port:"S_OUT" ~now:0 payload);
  Bytes.set payload 0 'X';
  (match Router.read_sampling r ~caller:(pid 1) ~port:"S_IN" ~now:1 with
  | Ok (m, _) ->
    check Alcotest.string "copied on write" "mutate-me" (Bytes.to_string m)
  | Error _ -> Alcotest.fail "read failed")

let queuing_fifo_and_overflow () =
  let r = Router.create net in
  let send s =
    match Router.send_queuing r ~caller:(pid 0) ~port:"Q_OUT" ~now:0 (msg s) with
    | Ok outcome -> outcome
    | Error e -> Alcotest.failf "send: %a" Router.pp_error e
  in
  let o1 = send "one" and o2 = send "two" in
  check Alcotest.(list string) "delivered" [ "Q_IN" ] o1.Router.delivered;
  check Alcotest.(list string) "delivered" [ "Q_IN" ] o2.Router.delivered;
  (* depth 2: the third message overflows. *)
  let o3 = send "three" in
  check Alcotest.(list string) "overflowed" [ "Q_IN" ] o3.Router.overflowed;
  check Alcotest.int "pending" 2 (Router.pending r ~port:"Q_IN");
  (match Router.receive_queuing r ~caller:(pid 1) ~port:"Q_IN" with
  | Ok (Some m) -> check Alcotest.string "fifo" "one" (Bytes.to_string m)
  | _ -> Alcotest.fail "expected message");
  (match Router.receive_queuing r ~caller:(pid 1) ~port:"Q_IN" with
  | Ok (Some m) -> check Alcotest.string "fifo" "two" (Bytes.to_string m)
  | _ -> Alcotest.fail "expected message");
  (match Router.receive_queuing r ~caller:(pid 1) ~port:"Q_IN" with
  | Ok None -> ()
  | _ -> Alcotest.fail "expected empty");
  let stats = Router.stats r in
  check Alcotest.int "overflow counted" 1 stats.Router.overflows

let ownership_and_direction_checks () =
  let r = Router.create net in
  (match Router.write_sampling r ~caller:(pid 1) ~port:"S_OUT" ~now:0 (msg "x") with
  | Error (Router.Not_owner _) -> ()
  | _ -> Alcotest.fail "expected Not_owner");
  (match Router.write_sampling r ~caller:(pid 1) ~port:"S_IN" ~now:0 (msg "x") with
  | Error (Router.Wrong_direction _) -> ()
  | _ -> Alcotest.fail "expected Wrong_direction");
  (match Router.write_sampling r ~caller:(pid 0) ~port:"Q_OUT" ~now:0 (msg "x") with
  | Error (Router.Wrong_mode _) -> ()
  | _ -> Alcotest.fail "expected Wrong_mode");
  (match Router.read_sampling r ~caller:(pid 1) ~port:"NOPE" ~now:0 with
  | Error (Router.Unknown_port _) -> ()
  | _ -> Alcotest.fail "expected Unknown_port");
  (match
     Router.write_sampling r ~caller:(pid 0) ~port:"S_OUT" ~now:0
       (Bytes.make 100 'x')
   with
  | Error (Router.Message_too_large _) -> ()
  | _ -> Alcotest.fail "expected Message_too_large");
  (match Router.write_sampling r ~caller:(pid 0) ~port:"S_OUT" ~now:0 (Bytes.create 0) with
  | Error Router.Empty_message -> ()
  | _ -> Alcotest.fail "expected Empty_message")

let multicast_fanout () =
  let fan =
    { Port.ports =
        [ sampling "SRC" (pid 0) Port.Source;
          sampling "D1" (pid 1) Port.Destination;
          sampling "D2" (pid 2) Port.Destination ];
      channels = [ { Port.source = "SRC"; destinations = [ "D1"; "D2" ] } ] }
  in
  let r = Router.create fan in
  ignore (Router.write_sampling r ~caller:(pid 0) ~port:"SRC" ~now:0 (msg "cast"));
  List.iter
    (fun (p, port) ->
      match Router.read_sampling r ~caller:p ~port ~now:1 with
      | Ok (m, Router.Valid) ->
        check Alcotest.string port "cast" (Bytes.to_string m)
      | _ -> Alcotest.failf "missing fanout at %s" port)
    [ (pid 1, "D1"); (pid 2, "D2") ]

let suite =
  [ Alcotest.test_case "network validation passes" `Quick validation_ok;
    Alcotest.test_case "network validation catches errors" `Quick
      validation_catches_errors;
    Alcotest.test_case "destination size must cover source" `Quick
      size_mismatch_detected;
    Alcotest.test_case "sampling fanout remains valid" `Quick
      sampling_fanout_still_valid;
    Alcotest.test_case "sampling semantics" `Quick sampling_semantics;
    Alcotest.test_case "sampling copies do not alias" `Quick
      sampling_copies_do_not_alias;
    Alcotest.test_case "queuing FIFO and overflow" `Quick
      queuing_fifo_and_overflow;
    Alcotest.test_case "ownership and direction checks" `Quick
      ownership_and_direction_checks;
    Alcotest.test_case "multicast fanout" `Quick multicast_fanout ]
