(* Tests for the three deadline-store implementations, including a
   model-based property: every implementation agrees with a naive sorted
   association list under random operation sequences. *)

open Air_sim
open Air

let check = Alcotest.check
let qcheck = QCheck_alcotest.to_alcotest

let entry = Alcotest.pair Alcotest.int Alcotest.int

let basic_behaviour impl () =
  let s = Deadline_store.create impl in
  check (Alcotest.option entry) "empty" None (Deadline_store.earliest s);
  Deadline_store.register s ~process:1 100;
  Deadline_store.register s ~process:2 50;
  Deadline_store.register s ~process:3 150;
  check Alcotest.int "size" 3 (Deadline_store.size s);
  check (Alcotest.option entry) "earliest" (Some (2, 50))
    (Deadline_store.earliest s);
  check Alcotest.(list entry) "sorted"
    [ (2, 50); (1, 100); (3, 150) ]
    (Deadline_store.to_sorted_list s);
  (* Update moves the entry (REPLENISH semantics, paper Fig. 6). *)
  Deadline_store.register s ~process:2 200;
  check (Alcotest.option entry) "after update" (Some (1, 100))
    (Deadline_store.earliest s);
  check Alcotest.int "size unchanged" 3 (Deadline_store.size s);
  check (Alcotest.option Alcotest.int) "find" (Some 200)
    (Deadline_store.find s ~process:2);
  (* Unregister. *)
  Deadline_store.unregister s ~process:1;
  check (Alcotest.option entry) "after unregister" (Some (3, 150))
    (Deadline_store.earliest s);
  Deadline_store.unregister s ~process:99 (* no-op *);
  check Alcotest.int "size" 2 (Deadline_store.size s);
  (* Remove earliest (Algorithm 3, line 7). *)
  Deadline_store.remove_earliest s;
  check (Alcotest.option entry) "last" (Some (2, 200))
    (Deadline_store.earliest s);
  Deadline_store.clear s;
  check Alcotest.int "cleared" 0 (Deadline_store.size s)

let tie_break impl () =
  let s = Deadline_store.create impl in
  Deadline_store.register s ~process:5 100;
  Deadline_store.register s ~process:2 100;
  (* Equal deadlines: ordered by process index. *)
  check (Alcotest.option entry) "tie" (Some (2, 100))
    (Deadline_store.earliest s)

(* Model-based testing: a sorted association list as reference. *)
type op = Register of int * int | Unregister of int | Remove_earliest

let op_gen =
  QCheck.Gen.(
    frequency
      [ (6, map2 (fun p d -> Register (p, d)) (int_range 0 9) (int_range 0 500));
        (2, map (fun p -> Unregister p) (int_range 0 9));
        (2, return Remove_earliest) ])

let model_apply model = function
  | Register (p, d) -> (p, d) :: List.remove_assoc p model
  | Unregister p -> List.remove_assoc p model
  | Remove_earliest -> (
    match
      List.sort
        (fun (p1, d1) (p2, d2) ->
          match Int.compare d1 d2 with 0 -> Int.compare p1 p2 | c -> c)
        model
    with
    | [] -> []
    | (p, _) :: _ -> List.remove_assoc p model)

let model_sorted model =
  List.sort
    (fun (p1, d1) (p2, d2) ->
      match Int.compare d1 d2 with 0 -> Int.compare p1 p2 | c -> c)
    model
  |> List.map (fun (p, d) -> (p, d))

let store_apply s = function
  | Register (p, d) -> Deadline_store.register s ~process:p d
  | Unregister p -> Deadline_store.unregister s ~process:p
  | Remove_earliest -> Deadline_store.remove_earliest s

let agrees_with_model impl =
  QCheck.Test.make
    ~name:
      (Format.asprintf "%a agrees with reference model" Deadline_store.pp_impl
         impl)
    ~count:300
    (QCheck.make QCheck.Gen.(list_size (int_range 0 60) op_gen))
    (fun ops ->
      let s = Deadline_store.create impl in
      let model = ref [] in
      List.for_all
        (fun op ->
          store_apply s op;
          model := model_apply !model op;
          let expected = model_sorted !model in
          Deadline_store.to_sorted_list s = expected
          && Deadline_store.size s = List.length expected
          && Deadline_store.earliest s
             = (match expected with [] -> None | (p, d) :: _ -> Some (p, d)))
        ops)

let all_impls_agree =
  QCheck.Test.make ~name:"all implementations agree pairwise" ~count:200
    (QCheck.make QCheck.Gen.(list_size (int_range 0 40) op_gen))
    (fun ops ->
      let stores = List.map Deadline_store.create Deadline_store.all_impls in
      List.iter (fun s -> List.iter (store_apply s) ops) stores;
      match List.map Deadline_store.to_sorted_list stores with
      | [] -> true
      | first :: rest -> List.for_all (( = ) first) rest)

(* Deterministic cross-implementation drive using the repository's own
   splitmix64 generator ({!Air_sim.Rng}): all three stores replay the same
   randomized register / re-register / unregister / remove-earliest
   sequence and must agree on [earliest] and [to_sorted_list] after every
   step. Unlike the QCheck properties above, this sequence is
   bit-reproducible across runs and machines. *)
let rng_cross_impl_drive () =
  let rng = Rng.create 0xa1b2c3 in
  let stores = List.map Deadline_store.create Deadline_store.all_impls in
  let reference = List.hd stores in
  for step = 1 to 2000 do
    let op =
      match Rng.int rng 10 with
      | 0 | 1 | 2 | 3 -> Register (Rng.int rng 16, Rng.int rng 1000)
      | 4 | 5 -> (
        (* Re-register: move an already-present process when there is one
           (REPLENISH semantics — the entry must relocate, not duplicate). *)
        match Deadline_store.earliest reference with
        | Some (p, _) -> Register (p, Rng.int rng 1000)
        | None -> Register (Rng.int rng 16, Rng.int rng 1000))
      | 6 | 7 -> Unregister (Rng.int rng 16)
      | _ -> Remove_earliest
    in
    List.iter (fun s -> store_apply s op) stores;
    List.iter
      (fun s ->
        if Deadline_store.earliest s <> Deadline_store.earliest reference
        then Alcotest.failf "earliest disagrees at step %d" step;
        if
          Deadline_store.to_sorted_list s
          <> Deadline_store.to_sorted_list reference
        then Alcotest.failf "sorted order disagrees at step %d" step)
      (List.tl stores)
  done;
  check Alcotest.bool "drive completed non-trivially" true
    (Deadline_store.size reference >= 0)

(* The BENCH_5 `deadline/register(pairing-heap, n=8)` anomaly: a
   register-heavy workload over a few processes with no intervening
   queries accrues lazily-deleted garbage that only [settle] would drain —
   hundreds of stale heap entries per live one. The fix compacts once
   garbage outnumbers live entries; this drive triggers thousands of
   compactions and the store must stay exactly equivalent to the
   reference implementation throughout (REPLENISH supersede, unregister,
   tie-break order included). *)
let supersede_churn impl () =
  let s = Deadline_store.create impl in
  let reference = Deadline_store.create Deadline_store.Linked_list_impl in
  let rng = Rng.create 0xC0FFEE in
  for round = 1 to 50_000 do
    let process = Rng.int rng 8 in
    let deadline = Rng.int rng 10_000 in
    if Rng.int rng 10 = 0 then begin
      Deadline_store.unregister s ~process;
      Deadline_store.unregister reference ~process
    end
    else begin
      Deadline_store.register s ~process deadline;
      Deadline_store.register reference ~process deadline
    end;
    (* Query only rarely, so garbage accrues between settles the way the
       benchmark's register loop accrues it. *)
    if round mod 5_000 = 0 then
      check (Alcotest.option entry)
        (Printf.sprintf "earliest agrees at round %d" round)
        (Deadline_store.earliest reference)
        (Deadline_store.earliest s)
  done;
  check Alcotest.(list entry) "sorted order agrees after churn"
    (Deadline_store.to_sorted_list reference)
    (Deadline_store.to_sorted_list s);
  check Alcotest.int "min deadline agrees after churn"
    (Deadline_store.min_deadline reference)
    (Deadline_store.min_deadline s)

let per_impl name impl =
  [ Alcotest.test_case (name ^ ": basics") `Quick (basic_behaviour impl);
    Alcotest.test_case (name ^ ": tie break") `Quick (tie_break impl);
    Alcotest.test_case (name ^ ": supersede churn stays exact") `Quick
      (supersede_churn impl) ]

let suite =
  per_impl "linked-list" Deadline_store.Linked_list_impl
  @ per_impl "avl" Deadline_store.Avl_impl
  @ per_impl "pairing" Deadline_store.Pairing_impl
  @ [ qcheck (agrees_with_model Deadline_store.Linked_list_impl);
      qcheck (agrees_with_model Deadline_store.Avl_impl);
      qcheck (agrees_with_model Deadline_store.Pairing_impl);
      qcheck all_impls_agree;
      Alcotest.test_case "rng-driven cross-impl agreement" `Quick
        rng_cross_impl_drive ]

(* Silence unused-module warnings for Time, which documents intent here. *)
let _ = Time.zero
