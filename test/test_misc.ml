(* Cross-cutting tests: pretty-printer coverage, HM table details,
   sporadic processes, bounded traces, and run_mtfs semantics. *)

open Air_sim
open Air_model
open Air_pos
open Air
open Ident

let check = Alcotest.check
let pid = Partition_id.make
let sid = Schedule_id.make

(* --- Printers: every constructor renders to non-empty text --------------- *)

let non_empty name render = check Alcotest.bool name true (String.length render > 0)

let render pp v = Format.asprintf "%a" pp v

let event_printers () =
  let process = Process_id.make (pid 0) 1 in
  let events =
    [ Event.Context_switch { from = None; to_ = Some (pid 0) };
      Event.Schedule_switch_request { by = Some (pid 1); target = sid 0 };
      Event.Schedule_switch { from = sid 0; to_ = sid 1 };
      Event.Change_action
        { partition = pid 0; action = Schedule.Warm_restart_partition };
      Event.Partition_mode_change { partition = pid 0; mode = Partition.Idle };
      Event.Process_state_change { process; state = Process.Waiting };
      Event.Process_dispatched { process };
      Event.Deadline_registered { process; deadline = 10 };
      Event.Deadline_unregistered { process };
      Event.Deadline_violation { process; deadline = 10 };
      Event.Hm_error
        { level = Error.Module_level; code = Error.Power_failure;
          partition = None; process = None; detail = "brownout" };
      Event.Hm_process_action { process; action = Error.Stop_process };
      Event.Hm_partition_action
        { partition = pid 0; action = Error.Partition_cold_restart };
      Event.Hm_module_action { action = Error.Module_reset };
      Event.Port_send { port = "P"; bytes = 3 };
      Event.Port_receive { port = "P"; bytes = 3 };
      Event.Port_overflow { port = "P" };
      Event.Memory_access { partition = pid 0; address = 0x42; granted = false };
      Event.Application_output { partition = pid 0; line = "hi" };
      Event.Module_halt { reason = "test" } ]
  in
  List.iter (fun ev -> non_empty "event" (render Event.pp ev)) events

let error_printers () =
  List.iter
    (fun code -> non_empty "code" (render Error.pp_code code))
    Error.all_codes;
  non_empty "nested process action"
    (render Error.pp_process_action
       (Error.Log_then (3, Error.Restart_partition_of_process Partition.Warm_start)));
  non_empty "partition action"
    (render Error.pp_partition_action Error.Partition_idle);
  non_empty "module action" (render Error.pp_module_action Error.Module_shutdown)

let script_printers () =
  let actions =
    [ Script.Compute 5; Script.Periodic_wait; Script.Timed_wait 3;
      Script.Replenish 9; Script.Write_sampling ("p", "m");
      Script.Read_sampling "p"; Script.Send_queuing ("p", "m");
      Script.Receive_queuing ("p", Time.infinity);
      Script.Wait_semaphore ("s", 0); Script.Signal_semaphore "s";
      Script.Wait_event ("e", 1); Script.Set_event "e"; Script.Reset_event "e";
      Script.Display_blackboard ("b", "m"); Script.Clear_blackboard "b";
      Script.Read_blackboard ("b", 1); Script.Send_buffer ("b", "m", 1);
      Script.Receive_buffer ("b", 1); Script.Read_memory 0x10;
      Script.Write_memory 0x10; Script.Log "x";
      Script.Raise_application_error "x"; Script.Request_schedule 1;
      Script.Log_schedule_status; Script.Suspend_self 5;
      Script.Resume_process "p"; Script.Start_other "p"; Script.Stop_other "p";
      Script.Stop_self; Script.Disable_interrupts ]
  in
  List.iter (fun a -> non_empty "action" (render Script.pp_action a)) actions;
  non_empty "script" (render Script.pp (Script.make actions))

let kernel_and_misc_printers () =
  let k =
    Kernel.create ~partition:(pid 0) ~policy:Kernel.Priority_preemptive
      ~hooks:Kernel.null_hooks
      [| Process.spec "a" |]
  in
  ignore (Kernel.start k ~now:0 0);
  non_empty "kernel" (render Kernel.pp k);
  non_empty "policy quantum"
    (render Kernel.pp_policy (Kernel.Round_robin { quantum = 4 }));
  non_empty "wait reason" (render Kernel.pp_wait_reason (Kernel.On_semaphore "s"));
  non_empty "op error" (render Kernel.pp_op_error Kernel.Not_periodic);
  non_empty "intra outcome" (render Air_pos.Intra.pp_outcome `Unavailable);
  non_empty "discipline" (render Air_pos.Intra.pp_discipline Air_pos.Intra.Priority);
  non_empty "schedule" (render Schedule.pp Air_workload.Satellite.schedule_1);
  non_empty "multicore diag"
    (render Multicore.pp_diagnostic
       (Multicore.Mtf_not_multiple_of_lcm { mtf = 7; lcm = 3 }));
  non_empty "router error"
    (render Air_ipc.Router.pp_error (Air_ipc.Router.Unknown_port "x"));
  non_empty "mmu fault"
    (render Air_spatial.Mmu.pp_fault
       { Air_spatial.Mmu.context = 1; address = 2;
         access = Air_spatial.Mmu.Write;
         level = Air_spatial.Memory.Pos;
         reason = Air_spatial.Mmu.Privilege });
  non_empty "apex outcome"
    (render Apex.pp_outcome (Apex.Msg (Bytes.of_string "x", Apex.No_error)));
  non_empty "synthesis failure"
    (render Air_analysis.Synthesis.pp_failure
       (Air_analysis.Synthesis.Overcommitted { utilization = 1.2 }));
  non_empty "rta verdict"
    (render Air_analysis.Rta.pp_verdict
       { Air_analysis.Rta.process = 0; response_time = None; deadline = 5;
         schedulable = false })

(* --- HM details ------------------------------------------------------------ *)

let hm_counting () =
  let hm = Hm.create () in
  ignore (Hm.resolve_process_error hm ~partition:(pid 0) ~process:0 ~code:Error.Deadline_missed);
  ignore (Hm.resolve_process_error hm ~partition:(pid 0) ~process:1 ~code:Error.Deadline_missed);
  ignore (Hm.resolve_partition_error hm ~partition:(pid 1) ~code:Error.Memory_violation);
  ignore (Hm.resolve_module_error hm ~code:Error.Power_failure);
  check Alcotest.int "total" 4 (Hm.error_count hm);
  check Alcotest.int "per partition+code" 2
    (Hm.count_for hm ~partition:(Some (pid 0)) ~code:Error.Deadline_missed);
  check Alcotest.int "any partition" 1
    (Hm.count_for hm ~partition:None ~code:Error.Memory_violation);
  Hm.reset_counts hm;
  check Alcotest.int "reset" 0 (Hm.error_count hm)

let hm_strict_tables () =
  let hm = Hm.create ~tables:Hm.strict_tables () in
  check Alcotest.bool "deadline → stop" true
    (Hm.resolve_process_error hm ~partition:(pid 2) ~process:0
       ~code:Error.Deadline_missed
     = Error.Stop_process);
  check Alcotest.bool "memory → warm restart" true
    (Hm.resolve_partition_error hm ~partition:(pid 2)
       ~code:Error.Memory_violation
     = Error.Partition_warm_restart);
  check Alcotest.bool "hardware → reset" true
    (Hm.resolve_module_error hm ~code:Error.Hardware_fault = Error.Module_reset);
  check Alcotest.bool "power → shutdown" true
    (Hm.resolve_module_error hm ~code:Error.Power_failure
     = Error.Module_shutdown)

(* Regression: [strict_tables] used to enumerate actions for the first 16
   partitions only, so a module with more partitions silently lost strict
   coverage from partition 16 onwards. The wildcard representation must
   cover any partition index. *)
let hm_strict_tables_beyond_16_partitions () =
  let hm = Hm.create ~tables:Hm.strict_tables () in
  List.iter
    (fun i ->
      check Alcotest.bool
        (Printf.sprintf "deadline → stop for partition %d" i)
        true
        (Hm.resolve_process_error hm ~partition:(pid i) ~process:0
           ~code:Error.Deadline_missed
        = Error.Stop_process);
      check Alcotest.bool
        (Printf.sprintf "memory → warm restart for partition %d" i)
        true
        (Hm.resolve_partition_error hm ~partition:(pid i)
           ~code:Error.Memory_violation
        = Error.Partition_warm_restart))
    [ 0; 15; 16; 19 ]

(* Specific entries take precedence over wildcard defaults. *)
let hm_specific_overrides_wildcard () =
  let tables =
    { Hm.strict_tables with
      Hm.process_actions =
        [ (pid 3, Error.Deadline_missed, Error.Restart_process) ];
      Hm.partition_actions =
        [ (pid 3, Error.Memory_violation, Error.Partition_cold_restart) ] }
  in
  let hm = Hm.create ~tables () in
  check Alcotest.bool "specific process action wins" true
    (Hm.resolve_process_error hm ~partition:(pid 3) ~process:0
       ~code:Error.Deadline_missed
    = Error.Restart_process);
  check Alcotest.bool "wildcard still covers the rest" true
    (Hm.resolve_process_error hm ~partition:(pid 4) ~process:0
       ~code:Error.Deadline_missed
    = Error.Stop_process);
  check Alcotest.bool "specific partition action wins" true
    (Hm.resolve_partition_error hm ~partition:(pid 3)
       ~code:Error.Memory_violation
    = Error.Partition_cold_restart)

let hm_log_then_threshold_boundaries () =
  let tables =
    { Hm.default_tables with
      Hm.process_actions =
        [ (pid 0, Error.Application_error, Error.Log_then (1, Error.Stop_process)) ] }
  in
  let hm = Hm.create ~tables () in
  let resolve () =
    Hm.resolve_process_error hm ~partition:(pid 0) ~process:0
      ~code:Error.Application_error
  in
  check Alcotest.bool "first: ignored" true (resolve () = Error.Ignore_error);
  check Alcotest.bool "second: acts" true (resolve () = Error.Stop_process);
  (* Counters are per (partition, process, code): another process starts
     fresh. *)
  check Alcotest.bool "other process ignored" true
    (Hm.resolve_process_error hm ~partition:(pid 0) ~process:1
       ~code:Error.Application_error
    = Error.Ignore_error)

(* --- Sporadic processes ----------------------------------------------------- *)

let sporadic_release_cadence () =
  let k =
    Kernel.create ~partition:(pid 0) ~policy:Kernel.Priority_preemptive
      ~hooks:Kernel.null_hooks
      [| Process.spec ~periodicity:(Process.Sporadic 50) ~time_capacity:40
           ~base_priority:5 "burst" |]
  in
  ignore (Kernel.start k ~now:0 0);
  check Alcotest.int "deadline armed" 40 (Kernel.deadline_time k 0);
  (* A sporadic process uses PERIODIC_WAIT with its minimum inter-arrival
     bound as the release separation. *)
  (match Kernel.periodic_wait k ~now:10 0 with
  | Ok () -> ()
  | Error _ -> Alcotest.fail "sporadic periodic_wait");
  Kernel.announce_ticks k ~now:49;
  check Alcotest.bool "not before the bound" true
    (Process.state_equal (Kernel.state k 0) Process.Waiting);
  Kernel.announce_ticks k ~now:50;
  check Alcotest.bool "released at the bound" true
    (Process.state_equal (Kernel.state k 0) Process.Ready)

(* --- System odds and ends ---------------------------------------------------- *)

let bounded_trace () =
  let p =
    Partition.make ~id:(pid 0) ~name:"CHATTY"
      [ Process.spec ~periodicity:(Process.Periodic 10) ~time_capacity:10
          ~wcet:2 ~base_priority:5 "talk" ]
  in
  let schedule =
    Schedule.make ~id:(sid 0) ~name:"all" ~mtf:10
      ~requirements:[ { Schedule.partition = pid 0; cycle = 10; duration = 10 } ]
      [ { Schedule.partition = pid 0; offset = 0; duration = 10 } ]
  in
  let s =
    System.create
      (System.config ~trace_capacity:50
         ~partitions:
           [ System.partition_setup p
               [ Script.periodic_body [ Script.Compute 2; Script.Log "x" ] ] ]
         ~schedules:[ schedule ] ())
  in
  System.run s ~ticks:2000;
  check Alcotest.bool "bounded" true (Trace.length (System.trace s) <= 50);
  check Alcotest.bool "counted everything" true
    (Trace.total (System.trace s) > 400)

let run_mtfs_lands_on_boundaries () =
  let s = Air_workload.Satellite.make () in
  System.run_mtfs s 1;
  check Alcotest.int "one MTF" 1299 (System.now s);
  System.run_mtfs s 2;
  check Alcotest.int "three MTFs" 3899 (System.now s);
  (* Mid-frame resumption completes the current MTF. *)
  System.run s ~ticks:100;
  System.run_mtfs s 1;
  check Alcotest.int "completed the frame" 5199 (System.now s)

let suite =
  [ Alcotest.test_case "printers: events" `Quick event_printers;
    Alcotest.test_case "printers: errors" `Quick error_printers;
    Alcotest.test_case "printers: scripts" `Quick script_printers;
    Alcotest.test_case "printers: kernel and misc" `Quick
      kernel_and_misc_printers;
    Alcotest.test_case "hm: occurrence counting" `Quick hm_counting;
    Alcotest.test_case "hm: strict tables" `Quick hm_strict_tables;
    Alcotest.test_case "hm: strict tables beyond 16 partitions" `Quick
      hm_strict_tables_beyond_16_partitions;
    Alcotest.test_case "hm: specific overrides wildcard" `Quick
      hm_specific_overrides_wildcard;
    Alcotest.test_case "hm: log-then thresholds" `Quick
      hm_log_then_threshold_boundaries;
    Alcotest.test_case "sporadic release cadence" `Quick
      sporadic_release_cadence;
    Alcotest.test_case "system: bounded trace" `Quick bounded_trace;
    Alcotest.test_case "system: run_mtfs boundaries" `Quick
      run_mtfs_lands_on_boundaries ]
