(* Direct tests of the APEX service layer: return codes, blocking
   semantics, schedule services, and the cross-partition queuing-port wake
   path — driven through a real System so the environment closures are the
   production ones. *)

open Air_sim
open Air_model
open Air_pos
open Air
open Ident

let check = Alcotest.check
let pid = Partition_id.make
let sid = Schedule_id.make
let w partition offset duration = { Schedule.partition; offset; duration }
let q partition cycle duration = { Schedule.partition; cycle; duration }

(* A two-partition system where processes communicate over a queuing
   channel; the receiver blocks with an infinite timeout, the sender sends
   once per period. *)
let queuing_system ~receiver_timeout () =
  let sender = pid 0 and receiver = pid 1 in
  let network =
    { Air_ipc.Port.ports =
        [ Air_ipc.Port.queuing_port ~name:"OUT" ~partition:sender
            ~direction:Air_ipc.Port.Source ~depth:4 ~max_message_size:32;
          Air_ipc.Port.queuing_port ~name:"IN" ~partition:receiver
            ~direction:Air_ipc.Port.Destination ~depth:4 ~max_message_size:32 ];
      channels = [ { Air_ipc.Port.source = "OUT"; destinations = [ "IN" ] } ] }
  in
  let p0 =
    Partition.make ~id:sender ~name:"SENDER"
      [ Process.spec ~periodicity:(Process.Periodic 100) ~time_capacity:100
          ~wcet:10 ~base_priority:5 "tx" ]
  in
  let p1 =
    Partition.make ~id:receiver ~name:"RECEIVER"
      [ Process.spec ~base_priority:5 "rx" ]
  in
  let schedule =
    Schedule.make ~id:(sid 0) ~name:"duo" ~mtf:100
      ~requirements:
        [ q sender 100 30; q receiver 100 30 ]
      [ w sender 0 30; w receiver 30 30 ]
  in
  System.create
    (System.config ~network
       ~partitions:
         [ System.partition_setup p0
             [ Script.periodic_body
                 [ Script.Compute 5; Script.Send_queuing ("OUT", "ping") ] ];
           System.partition_setup p1
             [ Script.make
                 [ Script.Receive_queuing ("IN", receiver_timeout);
                   Script.Log "got one" ] ] ]
       ~schedules:[ schedule ] ())

let blocked_receiver_woken_by_send () =
  let s = queuing_system ~receiver_timeout:Time.infinity () in
  System.run s ~ticks:500;
  (* The receiver loops: block on IN, get woken by the sender's message,
     log, block again — one log line per received message. *)
  let received =
    Trace.count
      (function
        | Event.Application_output { line = "got one"; _ } -> true
        | _ -> false)
      (System.trace s)
  in
  check Alcotest.bool "received several" true (received >= 3);
  (* Every send was consumed: nothing left pending. *)
  check Alcotest.int "drained" 0 (Air_ipc.Router.pending (System.router s) ~port:"IN")

let polling_receiver_sees_not_available () =
  let s = queuing_system ~receiver_timeout:Time.zero () in
  System.run s ~ticks:500;
  (* Polling never blocks: the rx process spins through its script. The
     messages still flow (receives happen when the queue is non-empty). *)
  check Alcotest.bool "still alive" true
    (match Kernel.state (System.kernel_of s (pid 1)) 0 with
    | Process.Dormant -> false
    | _ -> true)

let receive_timeout_expires () =
  (* No sender at all: the receiver times out. *)
  let receiver = pid 0 in
  let network =
    { Air_ipc.Port.ports =
        [ Air_ipc.Port.queuing_port ~name:"IN" ~partition:receiver
            ~direction:Air_ipc.Port.Destination ~depth:4 ~max_message_size:32 ];
      channels = [] }
  in
  let p =
    Partition.make ~id:receiver ~name:"LONELY"
      [ Process.spec ~base_priority:5 "rx" ]
  in
  let schedule =
    Schedule.make ~id:(sid 0) ~name:"solo" ~mtf:100
      ~requirements:[ q receiver 100 100 ]
      [ w receiver 0 100 ]
  in
  let s =
    System.create
      (System.config ~network
         ~partitions:
           [ System.partition_setup p
               [ Script.make
                   [ Script.Receive_queuing ("IN", 40);
                     Script.Log "woke"; Script.Timed_wait 1000 ] ] ]
         ~schedules:[ schedule ] ())
  in
  System.run s ~ticks:200;
  (* Woken by timeout at ~40, then parked. *)
  (match
     Trace.find_first
       (function
         | Event.Application_output { line = "woke"; _ } -> true
         | _ -> false)
       (System.trace s)
   with
  | Some (t, _) -> check Alcotest.bool "woke after timeout" true (t >= 40 && t < 60)
  | None -> Alcotest.fail "receiver never woke")

let remote_delivery_payload_reaches_mailbox () =
  (* Regression: the message that satisfies a blocked receiver must land in
     its mailbox, not be dropped after the pop from the router. *)
  let s = queuing_system ~receiver_timeout:Time.infinity () in
  (* Run until the receiver has blocked on IN (its window is [30,60)). *)
  System.run s ~ticks:35;
  check Alcotest.bool "receiver blocked" true
    (Process.state_equal (Kernel.state (System.kernel_of s (pid 1)) 0)
       Process.Waiting);
  (* Simulate the communication infrastructure delivering a frame. *)
  Result.get_ok (System.deliver_remote s ~port:"IN" (Bytes.of_string "pkt"));
  check Alcotest.bool "receiver woken" true
    (Process.state_equal (Kernel.state (System.kernel_of s (pid 1)) 0)
       Process.Ready);
  match Air_pos.Intra.take_delivery (System.intra_of s (pid 1)) ~process:0 with
  | Some m -> check Alcotest.string "payload" "pkt" (Bytes.to_string m)
  | None -> Alcotest.fail "payload was dropped"

(* --- Return codes through a hand-built env ------------------------------- *)

let simple_env () =
  let p = pid 0 in
  let partition =
    Partition.make ~id:p ~name:"ENV" ~kind:Partition.System
      [ Process.spec ~periodicity:(Process.Periodic 50) ~time_capacity:50
          ~wcet:5 ~base_priority:3 "a";
        Process.spec ~base_priority:7 "b" ]
  in
  let schedule =
    Schedule.make ~id:(sid 0) ~name:"one" ~mtf:100
      ~requirements:[ q p 100 100 ]
      [ w p 0 100 ]
  in
  let other =
    Schedule.make ~id:(sid 1) ~name:"two" ~mtf:100
      ~requirements:[ q p 100 100 ]
      [ w p 0 100 ]
  in
  let s =
    System.create
      (System.config
         ~partitions:
           [ System.partition_setup partition
               ~autostart:[ ("b", false) ]
               [ Script.periodic_body [ Script.Compute 5 ];
                 Script.make [ Script.Timed_wait 10000 ] ] ]
         ~schedules:[ schedule; other ] ())
  in
  System.run s ~ticks:5;
  s

(* Reconstruct an env equivalent to the production one for direct calls. *)
let env_of s =
  let p = pid 0 in
  { Apex.partition =
      Partition.make ~id:p ~name:"ENV" ~kind:Partition.System
        [ Process.spec ~periodicity:(Process.Periodic 50) ~time_capacity:50
            ~wcet:5 ~base_priority:3 "a";
          Process.spec ~base_priority:7 "b" ];
    kernel = System.kernel_of s p;
    intra = System.intra_of s p;
    router = System.router s;
    lane = System.lane s;
    now = (fun () -> System.now s);
    emit = (fun _ -> ());
    report_process_error = (fun ~process:_ _ ~detail:_ -> ());
    report_partition_error = (fun _ ~detail:_ -> ());
    notify_port_delivery = (fun _ -> ());
    mode = (fun () -> System.partition_mode s p);
    set_mode = (fun _ -> ()) }

let rc = Alcotest.testable Apex.pp_return_code Apex.return_code_equal

let process_management_return_codes () =
  let s = simple_env () in
  let env = env_of s in
  (* Process b was not autostarted: START works once, twice is NO_ACTION. *)
  (match Apex.start env ~process:1 with
  | Apex.Done c -> check rc "start" Apex.No_error c
  | _ -> Alcotest.fail "start should complete");
  (match Apex.start env ~process:1 with
  | Apex.Done c -> check rc "double start" Apex.No_action c
  | _ -> Alcotest.fail "double start should complete");
  (match Apex.stop env ~process:1 with
  | Apex.Done c -> check rc "stop" Apex.No_error c
  | _ -> Alcotest.fail "stop should complete");
  (match Apex.stop env ~process:1 with
  | Apex.Done c -> check rc "double stop" Apex.No_action c
  | _ -> Alcotest.fail "double stop should complete");
  (match Apex.set_priority env ~process:99 ~priority:1 with
  | Apex.Done c -> check rc "bad process" Apex.Invalid_param c
  | _ -> Alcotest.fail "set_priority should complete");
  (match Apex.get_process_status env ~process:0 with
  | Ok status ->
    check Alcotest.int "priority" 3 status.Process.current_priority
  | Error _ -> Alcotest.fail "status should be available");
  match Apex.get_process_status env ~process:99 with
  | Error c -> check rc "status bad index" Apex.Invalid_param c
  | Ok _ -> Alcotest.fail "expected error"

let schedule_services () =
  let s = simple_env () in
  let env = env_of s in
  let status = Apex.get_module_schedule_status env in
  check Alcotest.bool "current is 0" true
    (Schedule_id.equal status.Apex.current_schedule (sid 0));
  check Alcotest.bool "no switch yet" true
    (Time.equal status.Apex.time_of_last_schedule_switch Time.zero);
  (* System partition: allowed. *)
  (match Apex.set_module_schedule env ~process:0 (sid 1) with
  | Apex.Done c -> check rc "switch accepted" Apex.No_error c
  | _ -> Alcotest.fail "should complete");
  let status = Apex.get_module_schedule_status env in
  check Alcotest.bool "next is 1" true
    (Schedule_id.equal status.Apex.next_schedule (sid 1));
  (* Unknown schedule. *)
  (match Apex.set_module_schedule env ~process:0 (sid 9) with
  | Apex.Done c -> check rc "unknown schedule" Apex.Invalid_param c
  | _ -> Alcotest.fail "should complete")

let partition_status () =
  let s = simple_env () in
  let env = env_of s in
  let st = Apex.get_partition_status env in
  check Alcotest.bool "normal" true
    (Partition.mode_equal st.Apex.operating_mode Partition.Normal);
  check Alcotest.bool "system kind" true
    (Partition.kind_equal st.Apex.partition_kind Partition.System)

let replenish_registers () =
  let s = simple_env () in
  let env = env_of s in
  (match Apex.replenish env ~process:0 500 with
  | Apex.Done c -> check rc "replenish" Apex.No_error c
  | _ -> Alcotest.fail "should complete");
  let pal = System.pal_of s (pid 0) in
  match Pal.deadline_of pal ~process:0 with
  | Some d ->
    check Alcotest.int "deadline = now + budget" (System.now s + 500) d
  | None -> Alcotest.fail "deadline should be registered"

let port_errors_via_apex () =
  let s = queuing_system ~receiver_timeout:Time.zero () in
  System.run s ~ticks:5;
  (* Build an env for the SENDER partition and misuse its ports. *)
  let env =
    { Apex.partition =
        Partition.make ~id:(pid 0) ~name:"SENDER"
          [ Process.spec ~base_priority:5 "tx" ];
      kernel = System.kernel_of s (pid 0);
      intra = System.intra_of s (pid 0);
      router = System.router s;
      lane = System.lane s;
      now = (fun () -> System.now s);
      emit = (fun _ -> ());
      report_process_error = (fun ~process:_ _ ~detail:_ -> ());
      report_partition_error = (fun _ ~detail:_ -> ());
      notify_port_delivery = (fun _ -> ());
      mode = (fun () -> Partition.Normal);
      set_mode = (fun _ -> ()) }
  in
  (* Sampling operation on a queuing port. *)
  (match
     Apex.write_sampling_message env ~process:0 ~port:"OUT"
       (Bytes.of_string "x")
   with
  | Apex.Done c -> check rc "wrong mode" Apex.Invalid_mode c
  | _ -> Alcotest.fail "should complete");
  (* Unknown port. *)
  (match Apex.read_sampling_message env ~process:0 ~port:"NOPE" with
  | Apex.Done c -> check rc "unknown port" Apex.Invalid_config c
  | _ -> Alcotest.fail "should complete");
  (* Receiving on another partition's port. *)
  match Apex.receive_queuing_message env ~process:0 ~port:"IN" ~timeout:0 with
  | Apex.Done c -> check rc "not owner" Apex.Invalid_config c
  | _ -> Alcotest.fail "should complete"

let suite =
  [ Alcotest.test_case "blocked receiver woken by cross-partition send"
      `Quick blocked_receiver_woken_by_send;
    Alcotest.test_case "polling receiver never blocks" `Quick
      polling_receiver_sees_not_available;
    Alcotest.test_case "receive timeout expires" `Quick receive_timeout_expires;
    Alcotest.test_case "remote delivery payload reaches mailbox" `Quick
      remote_delivery_payload_reaches_mailbox;
    Alcotest.test_case "process management return codes" `Quick
      process_management_return_codes;
    Alcotest.test_case "schedule services" `Quick schedule_services;
    Alcotest.test_case "partition status" `Quick partition_status;
    Alcotest.test_case "replenish registers with the PAL" `Quick
      replenish_registers;
    Alcotest.test_case "port errors mapped to return codes" `Quick
      port_errors_via_apex ]
