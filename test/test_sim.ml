(* Tests for the simulation substrate: Time, Rng, Stats, Vec, Heap, Trace. *)

open Air_sim

let check = Alcotest.check
let qcheck = QCheck_alcotest.to_alcotest

(* --- Time --------------------------------------------------------------- *)

let time_basics () =
  check Alcotest.int "zero" 0 Time.zero;
  check Alcotest.bool "infinity is infinite" true (Time.is_infinite Time.infinity);
  check Alcotest.bool "finite is not infinite" false (Time.is_infinite 42);
  check Alcotest.int "add" 7 (Time.add 3 4);
  check Alcotest.bool "add saturates" true
    (Time.is_infinite (Time.add Time.infinity 5));
  check Alcotest.bool "add saturates (right)" true
    (Time.is_infinite (Time.add 5 Time.infinity));
  check Alcotest.int "sub clamps" 0 (Time.sub 3 10);
  check Alcotest.int "sub" 7 (Time.sub 10 3);
  check Alcotest.bool "sub keeps infinity" true
    (Time.is_infinite (Time.sub Time.infinity 10))

let time_of_int_rejects_negative () =
  Alcotest.check_raises "negative" (Invalid_argument "Time.of_int: negative tick count")
    (fun () -> ignore (Time.of_int (-1)))

let time_lcm () =
  check Alcotest.int "lcm 4 6" 12 (Time.lcm 4 6);
  check Alcotest.int "lcm 650 1300" 1300 (Time.lcm 650 1300);
  check Alcotest.int "lcm_list" 1300 (Time.lcm_list [ 1300; 650; 650; 1300 ]);
  Alcotest.check_raises "lcm zero"
    (Invalid_argument "Time.lcm: non-positive duration") (fun () ->
      ignore (Time.lcm 0 5))

let time_pp () =
  check Alcotest.string "finite" "42" (Time.to_string 42);
  check Alcotest.string "infinite" "∞" (Time.to_string Time.infinity)

let qcheck_lcm_divides =
  QCheck.Test.make ~name:"lcm is a common multiple"
    QCheck.(pair (int_range 1 500) (int_range 1 500))
    (fun (a, b) ->
      let l = Time.lcm a b in
      l mod a = 0 && l mod b = 0 && l <= a * b)

(* --- Rng ---------------------------------------------------------------- *)

let rng_deterministic () =
  let a = Rng.create 42 and b = Rng.create 42 in
  for _ = 1 to 100 do
    check Alcotest.int64 "same stream" (Rng.bits64 a) (Rng.bits64 b)
  done

let rng_seeds_differ () =
  let a = Rng.create 1 and b = Rng.create 2 in
  let same = ref 0 in
  for _ = 1 to 64 do
    if Int64.equal (Rng.bits64 a) (Rng.bits64 b) then incr same
  done;
  check Alcotest.bool "streams differ" true (!same < 4)

let rng_split_independent () =
  let parent = Rng.create 7 in
  let child = Rng.split parent in
  check Alcotest.bool "different next value" true
    (not (Int64.equal (Rng.bits64 parent) (Rng.bits64 child)))

let qcheck_int_in_range =
  QCheck.Test.make ~name:"Rng.int stays in range"
    QCheck.(pair int (int_range 1 1000))
    (fun (seed, n) ->
      let rng = Rng.create seed in
      let v = Rng.int rng n in
      v >= 0 && v < n)

let qcheck_uunifast =
  QCheck.Test.make ~name:"uunifast sums to target, all non-negative"
    QCheck.(triple int (int_range 1 16) (float_range 0.05 0.95))
    (fun (seed, n, u) ->
      let rng = Rng.create seed in
      let utils = Rng.uunifast rng n u in
      let sum = Array.fold_left ( +. ) 0.0 utils in
      Array.for_all (fun x -> x >= -.1e-9) utils
      && Float.abs (sum -. u) < 1e-6)

let rng_exponential_positive () =
  let rng = Rng.create 3 in
  for _ = 1 to 100 do
    check Alcotest.bool "positive" true (Rng.exponential rng 10.0 >= 0.0)
  done

let rng_shuffle_permutation () =
  let rng = Rng.create 9 in
  let a = Array.init 50 Fun.id in
  Rng.shuffle rng a;
  let sorted = Array.copy a in
  Array.sort compare sorted;
  check Alcotest.(array int) "same multiset" (Array.init 50 Fun.id) sorted

let rng_log_uniform_bounds () =
  let rng = Rng.create 11 in
  for _ = 1 to 200 do
    let v = Rng.log_uniform rng 10 1000 in
    check Alcotest.bool "in bounds" true (v >= 10 && v <= 1000)
  done

(* --- Stats -------------------------------------------------------------- *)

let stats_welford () =
  let s = Stats.create () in
  List.iter (Stats.add s) [ 2.0; 4.0; 4.0; 4.0; 5.0; 5.0; 7.0; 9.0 ];
  check (Alcotest.float 1e-9) "mean" 5.0 (Stats.mean s);
  check (Alcotest.float 1e-9) "variance" (32.0 /. 7.0) (Stats.variance s);
  check (Alcotest.float 1e-9) "min" 2.0 (Stats.min s);
  check (Alcotest.float 1e-9) "max" 9.0 (Stats.max s);
  check Alcotest.int "count" 8 (Stats.count s)

let stats_empty () =
  let s = Stats.create () in
  check Alcotest.bool "mean nan" true (Float.is_nan (Stats.mean s))

let stats_quantile () =
  let xs = [| 1.0; 2.0; 3.0; 4.0 |] in
  check (Alcotest.float 1e-9) "median" 2.5 (Stats.median xs);
  check (Alcotest.float 1e-9) "q0" 1.0 (Stats.quantile xs 0.0);
  check (Alcotest.float 1e-9) "q1" 4.0 (Stats.quantile xs 1.0);
  Alcotest.check_raises "empty" (Invalid_argument "Stats.quantile: empty sample")
    (fun () -> ignore (Stats.quantile [||] 0.5))

let stats_histogram () =
  let h = Stats.histogram ~bins:4 [| 0.0; 1.0; 2.0; 3.0; 4.0 |] in
  check Alcotest.int "bins" 4 (Array.length h.Stats.counts);
  check Alcotest.int "total count" 5
    (Array.fold_left ( + ) 0 h.Stats.counts)

let stats_reject_nan () =
  (* A NaN would silently poison the order statistics under polymorphic
     [compare] (regression: [quantile] used to sort with it); both
     whole-sample entry points refuse the sample instead. *)
  let poisoned = [| 3.0; nan; 1.0 |] in
  Alcotest.check_raises "quantile"
    (Invalid_argument "Stats.quantile: NaN in sample")
    (fun () -> ignore (Stats.quantile poisoned 0.5));
  Alcotest.check_raises "histogram"
    (Invalid_argument "Stats.histogram: NaN in sample")
    (fun () -> ignore (Stats.histogram ~bins:2 poisoned));
  (* Negative zero and infinities still sort totally. *)
  check (Alcotest.float 1e-9) "infinities fine" 1.0
    (Stats.quantile [| infinity; 1.0; neg_infinity |] 0.5);
  check (Alcotest.float 1e-9) "signed zero" 0.0
    (Stats.quantile [| 0.0; -0.0; 0.0 |] 0.5)

(* --- Vec ---------------------------------------------------------------- *)

let vec_push_get () =
  let v = Vec.create () in
  for i = 0 to 99 do
    Vec.push v i
  done;
  check Alcotest.int "length" 100 (Vec.length v);
  check Alcotest.int "get 0" 0 (Vec.get v 0);
  check Alcotest.int "get 99" 99 (Vec.get v 99);
  check (Alcotest.option Alcotest.int) "last" (Some 99) (Vec.last v);
  Alcotest.check_raises "oob" (Invalid_argument "Vec: index out of bounds")
    (fun () -> ignore (Vec.get v 100))

let vec_pop_last () =
  let v = Vec.of_list [ 1; 2; 3 ] in
  check (Alcotest.option Alcotest.int) "pop 3" (Some 3) (Vec.pop_last v);
  check (Alcotest.option Alcotest.int) "pop 2" (Some 2) (Vec.pop_last v);
  check Alcotest.int "length" 1 (Vec.length v);
  ignore (Vec.pop_last v);
  check (Alcotest.option Alcotest.int) "empty" None (Vec.pop_last v)

let vec_iter_fold () =
  let v = Vec.of_list [ 1; 2; 3; 4 ] in
  check Alcotest.int "fold sum" 10 (Vec.fold_left ( + ) 0 v);
  check Alcotest.(list int) "filter" [ 2; 4 ] (Vec.filter (fun x -> x mod 2 = 0) v);
  check Alcotest.bool "exists" true (Vec.exists (fun x -> x = 3) v);
  check Alcotest.(list int) "to_list" [ 1; 2; 3; 4 ] (Vec.to_list v)

(* --- Heap --------------------------------------------------------------- *)

let heap_ordering () =
  let h = Heap.of_list ~cmp:Int.compare [ 5; 3; 8; 1; 9; 2 ] in
  check (Alcotest.option Alcotest.int) "peek" (Some 1) (Heap.peek h);
  check Alcotest.(list int) "sorted" [ 1; 2; 3; 5; 8; 9 ] (Heap.to_sorted_list h);
  check Alcotest.int "length preserved" 6 (Heap.length h)

let heap_peek_key () =
  let h = Heap.create ~cmp:(fun (a, _) (b, _) -> Int.compare a b) in
  check
    (Alcotest.option Alcotest.int)
    "empty" None
    (Heap.peek_key h ~key:fst);
  Heap.push h (7, "slow");
  Heap.push h (3, "soon");
  Heap.push h (9, "late");
  check
    (Alcotest.option Alcotest.int)
    "minimum key" (Some 3)
    (Heap.peek_key h ~key:fst);
  check Alcotest.int "non-destructive" 3 (Heap.length h);
  ignore (Heap.pop h);
  check
    (Alcotest.option Alcotest.int)
    "next key" (Some 7)
    (Heap.peek_key h ~key:fst)

let qcheck_heap_sorts =
  QCheck.Test.make ~name:"heap drains in sorted order"
    QCheck.(list int)
    (fun xs ->
      let h = Heap.of_list ~cmp:Int.compare xs in
      let rec drain acc =
        match Heap.pop h with None -> List.rev acc | Some x -> drain (x :: acc)
      in
      drain [] = List.sort Int.compare xs)

(* --- Trace -------------------------------------------------------------- *)

let trace_basics () =
  let tr = Trace.create () in
  Trace.record tr 1 "a";
  Trace.record tr 5 "b";
  Trace.record tr 9 "c";
  check Alcotest.int "length" 3 (Trace.length tr);
  check Alcotest.(list (pair int string)) "between"
    [ (5, "b") ]
    (Trace.between tr 2 9);
  check Alcotest.int "count" 1 (Trace.count (String.equal "b") tr);
  check
    (Alcotest.option (Alcotest.pair Alcotest.int Alcotest.string))
    "find_first" (Some (1, "a"))
    (Trace.find_first (fun _ -> true) tr);
  check
    (Alcotest.option (Alcotest.pair Alcotest.int Alcotest.string))
    "find_last" (Some (9, "c"))
    (Trace.find_last (fun _ -> true) tr)

(* [between] is half-open [from, until): the boundary event at [until] is
   excluded, the one at [from] included, and adjacent intervals tile the
   trace without overlap. *)
let trace_between_half_open () =
  let tr = Trace.create () in
  List.iter (fun t -> Trace.record tr t (string_of_int t)) [ 0; 2; 5; 9 ];
  check Alcotest.(list (pair int string)) "event at until excluded"
    [ (2, "2"); (5, "5") ]
    (Trace.between tr 2 9);
  check Alcotest.(list (pair int string)) "event at from included"
    [ (9, "9") ]
    (Trace.between tr 9 10);
  check Alcotest.(list (pair int string)) "empty interval" []
    (Trace.between tr 5 5);
  let tiled = Trace.between tr 0 5 @ Trace.between tr 5 10 in
  check Alcotest.(list (pair int string)) "adjacent intervals tile"
    (Trace.to_list tr) tiled

let trace_capacity () =
  let tr = Trace.create ~capacity:2 () in
  Trace.record tr 1 "a";
  Trace.record tr 2 "b";
  Trace.record tr 3 "c";
  check Alcotest.int "bounded" 2 (Trace.length tr);
  check Alcotest.int "total" 3 (Trace.total tr);
  check Alcotest.(list string) "kept newest" [ "b"; "c" ] (Trace.events tr)

let suite =
  [ Alcotest.test_case "time: basics" `Quick time_basics;
    Alcotest.test_case "time: of_int rejects negative" `Quick
      time_of_int_rejects_negative;
    Alcotest.test_case "time: lcm" `Quick time_lcm;
    Alcotest.test_case "time: pretty printing" `Quick time_pp;
    qcheck qcheck_lcm_divides;
    Alcotest.test_case "rng: deterministic" `Quick rng_deterministic;
    Alcotest.test_case "rng: seeds differ" `Quick rng_seeds_differ;
    Alcotest.test_case "rng: split independent" `Quick rng_split_independent;
    qcheck qcheck_int_in_range;
    qcheck qcheck_uunifast;
    Alcotest.test_case "rng: exponential positive" `Quick
      rng_exponential_positive;
    Alcotest.test_case "rng: shuffle is a permutation" `Quick
      rng_shuffle_permutation;
    Alcotest.test_case "rng: log_uniform bounds" `Quick rng_log_uniform_bounds;
    Alcotest.test_case "stats: welford" `Quick stats_welford;
    Alcotest.test_case "stats: empty" `Quick stats_empty;
    Alcotest.test_case "stats: quantile" `Quick stats_quantile;
    Alcotest.test_case "stats: histogram" `Quick stats_histogram;
    Alcotest.test_case "stats: NaN rejected" `Quick stats_reject_nan;
    Alcotest.test_case "vec: push/get" `Quick vec_push_get;
    Alcotest.test_case "vec: pop_last" `Quick vec_pop_last;
    Alcotest.test_case "vec: iteration" `Quick vec_iter_fold;
    Alcotest.test_case "heap: ordering" `Quick heap_ordering;
    Alcotest.test_case "heap: peek_key" `Quick heap_peek_key;
    qcheck qcheck_heap_sorts;
    Alcotest.test_case "trace: basics" `Quick trace_basics;
    Alcotest.test_case "trace: between is half-open" `Quick
      trace_between_half_open;
    Alcotest.test_case "trace: capacity" `Quick trace_capacity ]
