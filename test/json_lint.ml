(* A minimal JSON syntax checker for validating the artifacts our
   hand-rolled writers produce (metrics snapshots, Chrome traces). It
   accepts exactly RFC 8259 grammar — no extensions, no trailing commas —
   and returns the parse position of the first error. Values are not
   materialized; we only care that the text is well-formed. *)

type state = { s : string; mutable i : int }

exception Bad of int * string

let error st msg = raise (Bad (st.i, msg))
let peek st = if st.i < String.length st.s then Some st.s.[st.i] else None

let skip_ws st =
  while
    st.i < String.length st.s
    && (match st.s.[st.i] with ' ' | '\t' | '\n' | '\r' -> true | _ -> false)
  do
    st.i <- st.i + 1
  done

let expect st c =
  match peek st with
  | Some d when d = c -> st.i <- st.i + 1
  | _ -> error st (Printf.sprintf "expected '%c'" c)

let literal st word =
  let n = String.length word in
  if st.i + n <= String.length st.s && String.sub st.s st.i n = word then
    st.i <- st.i + n
  else error st ("expected " ^ word)

let string_ st =
  expect st '"';
  let rec go () =
    match peek st with
    | None -> error st "unterminated string"
    | Some '"' -> st.i <- st.i + 1
    | Some '\\' -> (
      st.i <- st.i + 1;
      match peek st with
      | Some ('"' | '\\' | '/' | 'b' | 'f' | 'n' | 'r' | 't') ->
        st.i <- st.i + 1;
        go ()
      | Some 'u' ->
        st.i <- st.i + 1;
        for _ = 1 to 4 do
          match peek st with
          | Some ('0' .. '9' | 'a' .. 'f' | 'A' .. 'F') -> st.i <- st.i + 1
          | _ -> error st "bad \\u escape"
        done;
        go ()
      | _ -> error st "bad escape")
    | Some c when Char.code c < 0x20 -> error st "raw control character"
    | Some _ ->
      st.i <- st.i + 1;
      go ()
  in
  go ()

let number st =
  if peek st = Some '-' then st.i <- st.i + 1;
  let digits () =
    let start = st.i in
    while
      match peek st with Some '0' .. '9' -> true | _ -> false
    do
      st.i <- st.i + 1
    done;
    if st.i = start then error st "expected digit"
  in
  digits ();
  if peek st = Some '.' then begin
    st.i <- st.i + 1;
    digits ()
  end;
  (match peek st with
  | Some ('e' | 'E') ->
    st.i <- st.i + 1;
    (match peek st with
    | Some ('+' | '-') -> st.i <- st.i + 1
    | _ -> ());
    digits ()
  | _ -> ())

let rec value st =
  skip_ws st;
  match peek st with
  | Some '{' ->
    st.i <- st.i + 1;
    skip_ws st;
    if peek st = Some '}' then st.i <- st.i + 1
    else begin
      let rec members () =
        skip_ws st;
        string_ st;
        skip_ws st;
        expect st ':';
        value st;
        skip_ws st;
        match peek st with
        | Some ',' ->
          st.i <- st.i + 1;
          members ()
        | _ -> expect st '}'
      in
      members ()
    end
  | Some '[' ->
    st.i <- st.i + 1;
    skip_ws st;
    if peek st = Some ']' then st.i <- st.i + 1
    else begin
      let rec elements () =
        value st;
        skip_ws st;
        match peek st with
        | Some ',' ->
          st.i <- st.i + 1;
          elements ()
        | _ -> expect st ']'
      in
      elements ()
    end
  | Some '"' -> string_ st
  | Some 't' -> literal st "true"
  | Some 'f' -> literal st "false"
  | Some 'n' -> literal st "null"
  | Some ('-' | '0' .. '9') -> number st
  | _ -> error st "expected a JSON value"

let check text =
  let st = { s = text; i = 0 } in
  try
    value st;
    skip_ws st;
    if st.i <> String.length text then
      Error (Printf.sprintf "trailing garbage at offset %d" st.i)
    else Ok ()
  with Bad (i, msg) -> Error (Printf.sprintf "offset %d: %s" i msg)

let is_valid text = check text = Ok ()
