(* Tests for the configuration language: s-expression parsing/printing and
   the system loader. *)

open Air_config

let check = Alcotest.check
let qcheck = QCheck_alcotest.to_alcotest

(* --- Sexp ----------------------------------------------------------------- *)

let parse_basics () =
  (match Sexp.parse_one "(a b (c d) \"e f\")" with
  | Ok (Sexp.List [ Sexp.Atom "a"; Sexp.Atom "b"; Sexp.List [ Sexp.Atom "c"; Sexp.Atom "d" ]; Sexp.Atom "e f" ]) ->
    ()
  | Ok s -> Alcotest.failf "unexpected parse: %s" (Sexp.to_string s)
  | Error e -> Alcotest.failf "parse error: %a" Sexp.pp_error e);
  (match Sexp.parse "a (b) ; comment\n c" with
  | Ok [ Sexp.Atom "a"; Sexp.List [ Sexp.Atom "b" ]; Sexp.Atom "c" ] -> ()
  | _ -> Alcotest.fail "toplevel parse")

let parse_strings_and_escapes () =
  match Sexp.parse_one {|"line\nbreak \"quoted\" back\\slash"|} with
  | Ok (Sexp.Atom s) ->
    check Alcotest.string "unescaped" "line\nbreak \"quoted\" back\\slash" s
  | _ -> Alcotest.fail "string parse"

let parse_errors_have_positions () =
  (match Sexp.parse_one "(a (b)" with
  | Error e -> check Alcotest.bool "line 1" true (e.Sexp.position.Sexp.line = 1)
  | Ok _ -> Alcotest.fail "expected error");
  (match Sexp.parse_one "(a\n))" with
  | Error e -> check Alcotest.int "line 2" 2 e.Sexp.position.Sexp.line
  | Ok _ -> Alcotest.fail "expected error");
  match Sexp.parse_one "\"unterminated" with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "expected error"

let sexp_gen =
  let open QCheck.Gen in
  let atom_gen =
    oneof
      [ map (fun n -> Sexp.Atom (string_of_int n)) small_nat;
        oneofl
          [ Sexp.Atom "word"; Sexp.Atom "two words"; Sexp.Atom "with\"quote";
            Sexp.Atom ""; Sexp.Atom "tab\there" ] ]
  in
  sized
    (fix (fun self n ->
         if n <= 1 then atom_gen
         else
           frequency
             [ (2, atom_gen);
               (3, map (fun l -> Sexp.List l) (list_size (int_range 0 4) (self (n / 2)))) ]))

let qcheck_roundtrip =
  QCheck.Test.make ~name:"sexp print/parse roundtrip" ~count:300
    (QCheck.make sexp_gen) (fun s ->
      match Sexp.parse_one (Sexp.to_string s) with
      | Ok s' -> s = s'
      | Error _ -> false)

(* --- Decode ---------------------------------------------------------------- *)

let decode_fields () =
  let open Decode in
  let input =
    match Sexp.parse "(name X) (count 4)" with Ok l -> l | Error _ -> []
  in
  (match fields_of ~context:"t" input with
  | Ok f ->
    check Alcotest.bool "required" true (required f "name" (one atom) = Ok "X");
    check Alcotest.bool "int" true (required f "count" (one int) = Ok 4);
    check Alcotest.bool "missing" true (Result.is_error (required f "nope" (one atom)));
    check Alcotest.bool "optional missing" true
      (optional f "nope" (one atom) = Ok None);
    check Alcotest.bool "unknown rejected" true
      (Result.is_error (assert_no_extra f ~known:[ "name" ]))
  | Error e -> Alcotest.fail e);
  (* Duplicate fields rejected. *)
  match Sexp.parse "(a 1) (a 2)" with
  | Ok l -> check Alcotest.bool "dup" true (Result.is_error (fields_of ~context:"t" l))
  | Error _ -> Alcotest.fail "parse"

let decode_time_values () =
  let open Decode in
  check Alcotest.bool "ticks" true (time (Sexp.Atom "120") = Ok 120);
  check Alcotest.bool "infinite" true
    (time (Sexp.Atom "infinite") = Ok Air_sim.Time.infinity);
  check Alcotest.bool "poll" true (timeout (Sexp.Atom "poll") = Ok 0);
  check Alcotest.bool "negative rejected" true
    (Result.is_error (time (Sexp.Atom "-3")))

(* --- Loader ----------------------------------------------------------------- *)

let full_doc = {|
; A two-partition system exercising most of the grammar.
(air-system
  (partitions
    (partition (name CTRL) (kind system) (deadline-store avl-tree)
      (processes
        (process (name loop) (period 100) (capacity 100) (wcet 30) (priority 5)
          (script (compute 30) (log "tick") (periodic-wait)))
        (process (name fallback) (period (sporadic 500)) (autostart false))))
    (partition (name GUEST) (policy (round-robin 3))
      (processes
        (process (name busy) (script (compute 1000000)))
        (process (name chat)
          (script (send-queuing OUT "hello") (timed-wait 50))))))
  (schedules
    (schedule (name day) (mtf 200)
      (requirements (req (partition CTRL) (cycle 100) (duration 40))
                    (req (partition GUEST) (cycle 200) (duration 100)))
      (windows (window (partition CTRL) (offset 0) (duration 40))
               (window (partition GUEST) (offset 40) (duration 100))
               (window (partition CTRL) (offset 140) (duration 40))))
    (schedule (name night) (mtf 200)
      (requirements (req (partition CTRL) (cycle 100) (duration 40)))
      (change-actions (CTRL warm-restart))
      (windows (window (partition CTRL) (offset 0) (duration 40))
               (window (partition CTRL) (offset 100) (duration 40)))))
  (ports
    (queuing-port (name OUT) (partition GUEST) (direction source) (depth 4) (max-size 32))
    (queuing-port (name IN) (partition CTRL) (direction destination) (depth 4) (max-size 32)))
  (channels (channel (source OUT) (destinations IN)))
  (hm
    (process-errors (CTRL deadline-missed stop-process)
                    (GUEST application-error (log-then 3 restart-process)))
    (partition-errors (GUEST memory-violation cold-restart))
    (module-errors (power-failure shutdown))))
|}

let loader_full_document () =
  match Loader.load full_doc with
  | Error e -> Alcotest.fail e
  | Ok cfg ->
    let s = Air.System.create cfg in
    Air.System.run s ~ticks:600;
    check Alcotest.bool "runs" true (Air.System.halted s = None);
    check Alcotest.int "two partitions" 2 (Air.System.partition_count s);
    (* Traffic flowed through the declared channel. *)
    let stats = Air_ipc.Router.stats (Air.System.router s) in
    check Alcotest.bool "messages" true (stats.Air_ipc.Router.messages_sent > 0)

let loader_resolves_names () =
  match Loader.load full_doc with
  | Error e -> Alcotest.fail e
  | Ok cfg ->
    (match cfg.Air.System.schedules with
    | [ day; night ] ->
      check Alcotest.string "day" "day" day.Air_model.Schedule.name;
      check Alcotest.bool "night change action" true
        (Air_model.Schedule.change_action_for night
           (Air_model.Ident.Partition_id.make 0)
         = Air_model.Schedule.Warm_restart_partition)
    | _ -> Alcotest.fail "two schedules");
    check Alcotest.int "partitions" 2 (List.length cfg.Air.System.partitions)

let loader_rejects_bad_docs () =
  let cases =
    [ ("unknown partition in window",
       {|(air-system
          (partitions (partition (name A) (processes)))
          (schedules (schedule (name s) (mtf 10)
            (requirements (req (partition NOPE) (cycle 10) (duration 1)))
            (windows))))|});
      ("unknown action",
       {|(air-system
          (partitions (partition (name A)
            (processes (process (name p) (script (explode))))))
          (schedules (schedule (name s) (mtf 10)
            (requirements (req (partition A) (cycle 10) (duration 1)))
            (windows (window (partition A) (offset 0) (duration 1))))))|});
      ("unknown field",
       {|(air-system (warp-drive on)
          (partitions (partition (name A) (processes)))
          (schedules))|});
      ("unknown schedule in request",
       {|(air-system
          (partitions (partition (name A)
            (processes (process (name p) (script (request-schedule ghost))))))
          (schedules (schedule (name s) (mtf 10)
            (requirements (req (partition A) (cycle 10) (duration 1)))
            (windows (window (partition A) (offset 0) (duration 1))))))|}) ]
  in
  List.iter
    (fun (name, doc) ->
      check Alcotest.bool name true (Result.is_error (Loader.load doc)))
    cases

let roundtrip_fixpoint () =
  (* decode → encode → decode → encode must be a fixpoint. *)
  match Loader.load full_doc with
  | Error e -> Alcotest.fail e
  | Ok cfg ->
    let doc1 = Encode.to_string cfg in
    (match Loader.load doc1 with
    | Error e -> Alcotest.failf "re-load failed: %s" e
    | Ok cfg' ->
      let doc2 = Encode.to_string cfg' in
      check Alcotest.string "fixpoint" doc1 doc2)

let roundtrip_preserves_behaviour () =
  let run cfg =
    let s = Air.System.create cfg in
    Air.System.run s ~ticks:800;
    ( List.length (Air.System.violations s),
      Air_sim.Trace.count
        (fun ev ->
          match ev with
          | Air_model.Event.Application_output _ -> true
          | _ -> false)
        (Air.System.trace s) )
  in
  match Loader.load full_doc with
  | Error e -> Alcotest.fail e
  | Ok cfg -> (
    match Loader.load (Encode.to_string cfg) with
    | Error e -> Alcotest.failf "re-load failed: %s" e
    | Ok cfg' ->
      check
        (Alcotest.pair Alcotest.int Alcotest.int)
        "same observable behaviour" (run cfg) (run cfg'))

let satellite_config_roundtrips () =
  (* The programmatically built prototype survives encode → load. *)
  let cfg = Air_workload.Satellite.config () in
  let doc = Encode.to_string cfg in
  match Loader.load doc with
  | Error e -> Alcotest.failf "load of encoded satellite failed: %s" e
  | Ok cfg' ->
    check Alcotest.string "fixpoint" doc (Encode.to_string cfg');
    let s = Air.System.create cfg' in
    Air.System.run_mtfs s 2;
    check Alcotest.int "clean run" 0 (List.length (Air.System.violations s))

(* A "*" in the partition position of an hm entry decodes to a wildcard
   default, and the wildcard survives the encode → load round-trip. *)
let hm_wildcard_roundtrips () =
  let doc =
    {|(air-system
       (partitions (partition (name A)
         (processes (process (name p) (script (compute 5) (periodic-wait))
           (period 10) (capacity 10) (wcet 5) (priority 1)))))
       (schedules (schedule (name s) (mtf 10)
         (requirements (req (partition A) (cycle 10) (duration 10)))
         (windows (window (partition A) (offset 0) (duration 10)))))
       (hm
         (process-errors (* deadline-missed stop-process)
                         (A application-error restart-process))
         (partition-errors (* memory-violation warm-restart))))|}
  in
  match Loader.load doc with
  | Error e -> Alcotest.fail e
  | Ok cfg ->
    let tables = cfg.Air.System.hm_tables in
    check Alcotest.int "one wildcard process default" 1
      (List.length tables.Air.Hm.process_defaults);
    check Alcotest.int "one specific process entry" 1
      (List.length tables.Air.Hm.process_actions);
    check Alcotest.int "one wildcard partition default" 1
      (List.length tables.Air.Hm.partition_defaults);
    (match Loader.load (Encode.to_string cfg) with
    | Error e -> Alcotest.failf "re-load failed: %s" e
    | Ok cfg' ->
      check Alcotest.bool "wildcards survive round-trip" true
        (cfg'.Air.System.hm_tables = tables))

let loader_syntax_error_reported () =
  match Loader.load "(air-system (partitions" with
  | Error e -> check Alcotest.bool "mentions position" true
      (Astring_contains.contains e "line")
  | Ok _ -> Alcotest.fail "expected syntax error"

let suite =
  [ Alcotest.test_case "sexp: parse basics" `Quick parse_basics;
    Alcotest.test_case "sexp: strings and escapes" `Quick
      parse_strings_and_escapes;
    Alcotest.test_case "sexp: errors carry positions" `Quick
      parse_errors_have_positions;
    qcheck qcheck_roundtrip;
    Alcotest.test_case "decode: fields" `Quick decode_fields;
    Alcotest.test_case "decode: time values" `Quick decode_time_values;
    Alcotest.test_case "loader: full document" `Quick loader_full_document;
    Alcotest.test_case "loader: resolves names" `Quick loader_resolves_names;
    Alcotest.test_case "loader: rejects bad documents" `Quick
      loader_rejects_bad_docs;
    Alcotest.test_case "encode/load round-trip fixpoint" `Quick
      roundtrip_fixpoint;
    Alcotest.test_case "round-trip preserves behaviour" `Quick
      roundtrip_preserves_behaviour;
    Alcotest.test_case "satellite config round-trips" `Quick
      satellite_config_roundtrips;
    Alcotest.test_case "hm wildcard round-trips" `Quick
      hm_wildcard_roundtrips;
    Alcotest.test_case "loader: syntax errors reported" `Quick
      loader_syntax_error_reported ]
