(* Telemetry downlink tests: the log-bucketed quantile histogram, the
   per-MTF frame accumulator, temporal-health watchdogs (including the
   system-level mapping onto Health Monitor actions), the exports, and the
   configuration grammar. *)

open Air_model
open Air_pos
open Air_obs

let check = Alcotest.check
let pid = Ident.Partition_id.make
let sid = Ident.Schedule_id.make

(* --- Quantile histogram ---------------------------------------------------- *)

let quantile_exact_below_16 () =
  let h = Quantile.create () in
  for v = 0 to 15 do
    Quantile.record h v
  done;
  check Alcotest.int "count" 16 (Quantile.count h);
  check Alcotest.int "total" 120 (Quantile.total h);
  check Alcotest.int "min" 0 (Quantile.min_value h);
  check Alcotest.int "max" 15 (Quantile.max_value h);
  (* Below 16 every value has its own bucket, so quantiles are exact. *)
  check Alcotest.int "p50" 7 (Quantile.p50 h);
  check Alcotest.int "p99" 15 (Quantile.p99 h)

let quantile_relative_error_bounded () =
  let h = Quantile.create () in
  for v = 1 to 10_000 do
    Quantile.record h v
  done;
  let assert_close name expected actual =
    let err = abs (actual - expected) in
    if err * 100 > expected * 7 then
      Alcotest.failf "%s: %d not within 7%% of %d" name actual expected
  in
  assert_close "p50" 5_000 (Quantile.p50 h);
  assert_close "p90" 9_000 (Quantile.p90 h);
  assert_close "p99" 9_900 (Quantile.p99 h);
  (* The estimate never undershoots the true quantile: buckets report
     their inclusive upper bound. *)
  check Alcotest.bool "p50 >= true" true (Quantile.p50 h >= 5_000);
  check Alcotest.int "max exact" 10_000
    (Quantile.value_at h ~num:1 ~den:1)

let quantile_clamps () =
  let h = Quantile.create () in
  Quantile.record h (-7);
  check Alcotest.int "negative counts as 0" 0 (Quantile.min_value h);
  Quantile.record h max_int;
  check Alcotest.int "clamped to trackable range"
    ((1 lsl 30) - 1)
    (Quantile.max_value h);
  check Alcotest.int "p99 saturates" ((1 lsl 30) - 1) (Quantile.p99 h)

let quantile_merge () =
  let a = Quantile.create () and b = Quantile.create () in
  let union = Quantile.create () in
  for v = 1 to 500 do
    Quantile.record a v;
    Quantile.record union v
  done;
  for v = 501 to 1_000 do
    Quantile.record b v;
    Quantile.record union v
  done;
  Quantile.merge ~into:a b;
  check Alcotest.int "count adds" 1_000 (Quantile.count a);
  check Alcotest.int "total adds" (Quantile.total union) (Quantile.total a);
  check Alcotest.int "min of union" 1 (Quantile.min_value a);
  check Alcotest.int "max of union" 1_000 (Quantile.max_value a);
  (* Merging buckets is exactly the union of the recordings. *)
  List.iter
    (fun (num, den) ->
      check Alcotest.int
        (Printf.sprintf "q%d/%d equals union" num den)
        (Quantile.value_at union ~num ~den)
        (Quantile.value_at a ~num ~den))
    [ (1, 2); (9, 10); (99, 100); (1, 1) ];
  check Alcotest.int "b untouched" 500 (Quantile.count b)

let quantile_empty_and_clear () =
  let h = Quantile.create () in
  check Alcotest.int "empty p99" 0 (Quantile.p99 h);
  Quantile.record h 42;
  Quantile.clear h;
  check Alcotest.int "cleared count" 0 (Quantile.count h);
  check Alcotest.int "cleared p50" 0 (Quantile.p50 h);
  check Alcotest.int "cleared max" 0 (Quantile.max_value h)

let quantile_rejects_bad_rank () =
  let h = Quantile.create () in
  Quantile.record h 1;
  Alcotest.check_raises "den = 0"
    (Invalid_argument "Quantile.value_at: need 0 <= num <= den, den > 0")
    (fun () -> ignore (Quantile.value_at h ~num:1 ~den:0));
  Alcotest.check_raises "num > den"
    (Invalid_argument "Quantile.value_at: need 0 <= num <= den, den > 0")
    (fun () -> ignore (Quantile.value_at h ~num:3 ~den:2))

(* --- Frame accumulator ------------------------------------------------------ *)

let accumulate_one_frame () =
  let t = Telemetry.create ~partition_count:2 () in
  Telemetry.prime t ~schedule:0 ~allotted:[| 10; 8 |];
  for _ = 1 to 10 do
    Telemetry.on_tick t ~active:(Some 0)
  done;
  for _ = 1 to 6 do
    Telemetry.on_tick t ~active:(Some 1)
  done;
  for _ = 1 to 4 do
    Telemetry.on_tick t ~active:None
  done;
  Telemetry.on_dispatch t ~partition:0 ~jitter:0;
  Telemetry.on_dispatch t ~partition:1 ~jitter:3;
  Telemetry.on_catch_up t ~partition:1 ~depth:7;
  Telemetry.on_deadline_miss t ~partition:0;
  Telemetry.on_hm_error t ~partition:(Some 0);
  Telemetry.on_hm_error t ~partition:None;
  Telemetry.on_ipc_delivery t ~latency:12;
  check Alcotest.int "ticks accumulated" 20 (Telemetry.ticks_accumulated t);
  let f = Telemetry.close_frame t ~now:20 ~next_schedule:1
      ~next_allotted:[| 4; 4 |]
  in
  check Alcotest.int "start" 0 f.Telemetry.f_start;
  check Alcotest.int "stop" 20 f.Telemetry.f_stop;
  check Alcotest.int "schedule" 0 f.Telemetry.f_schedule;
  check Alcotest.int "busy" 16 f.Telemetry.f_busy;
  check Alcotest.int "slack" 4 f.Telemetry.f_slack;
  check Alcotest.int "catch-up max" 7 f.Telemetry.f_catch_up_max;
  check Alcotest.int "misses" 1 f.Telemetry.f_deadline_misses;
  check Alcotest.int "hm errors (incl. module level)" 2
    f.Telemetry.f_hm_errors;
  check Alcotest.int "jitter count" 2 f.Telemetry.f_jitter_count;
  check Alcotest.int "jitter max" 3 f.Telemetry.f_jitter_max;
  check Alcotest.int "ipc count" 1 f.Telemetry.f_ipc_count;
  check Alcotest.int "ipc p99" 12 f.Telemetry.f_ipc_p99;
  (match f.Telemetry.f_partitions with
  | [| p0; p1 |] ->
    check Alcotest.int "p0 window" 10 p0.Telemetry.pf_window_ticks;
    check Alcotest.int "p0 allotted" 10 p0.Telemetry.pf_allotted;
    check Alcotest.int "p0 utilization" 1000
      (Telemetry.frame_utilization_permille p0);
    check Alcotest.int "p1 window" 6 p1.Telemetry.pf_window_ticks;
    check Alcotest.int "p1 utilization" 750
      (Telemetry.frame_utilization_permille p1);
    check Alcotest.int "p1 catch-up" 7 p1.Telemetry.pf_catch_up_max;
    check Alcotest.int "p0 misses" 1 p0.Telemetry.pf_deadline_misses;
    check Alcotest.int "p0 hm" 1 p0.Telemetry.pf_hm_errors
  | ps -> Alcotest.failf "expected 2 partition frames, got %d"
            (Array.length ps));
  (* The accumulator restarts cleanly under the next schedule. *)
  check Alcotest.int "reset" 0 (Telemetry.ticks_accumulated t);
  check Alcotest.int "next schedule primed" 1
    (Telemetry.current_schedule t);
  Telemetry.on_tick t ~active:(Some 0);
  let g = Telemetry.close_frame t ~now:24 ~next_schedule:1
      ~next_allotted:[| 4; 4 |]
  in
  check Alcotest.int "second frame index" 1 g.Telemetry.f_index;
  check Alcotest.int "second frame starts at first stop" 20
    g.Telemetry.f_start;
  check Alcotest.int "second frame fresh misses" 0
    g.Telemetry.f_deadline_misses

let retention_ring () =
  let t =
    Telemetry.create
      ~config:(Telemetry.config ~retention:3 ())
      ~partition_count:1 ()
  in
  Telemetry.prime t ~schedule:0 ~allotted:[| 10 |];
  for k = 1 to 5 do
    Telemetry.on_tick t ~active:(Some 0);
    ignore
      (Telemetry.close_frame t ~now:(k * 10) ~next_schedule:0
         ~next_allotted:[| 10 |])
  done;
  check Alcotest.int "retained" 3 (Telemetry.retained t);
  check Alcotest.int "total" 5 (Telemetry.total_frames t);
  check
    Alcotest.(list int)
    "keeps the most recent, oldest first" [ 2; 3; 4 ]
    (List.map (fun f -> f.Telemetry.f_index) (Telemetry.frames t))

let flush_partial_frame () =
  let t = Telemetry.create ~partition_count:1 () in
  Telemetry.prime t ~schedule:0 ~allotted:[| 10 |];
  check Alcotest.bool "nothing to flush" true
    (Telemetry.flush t ~now:0 = None);
  Telemetry.on_tick t ~active:(Some 0);
  Telemetry.on_tick t ~active:None;
  (match Telemetry.flush t ~now:2 with
  | None -> Alcotest.fail "expected a partial frame"
  | Some f ->
    check Alcotest.int "partial stop" 2 f.Telemetry.f_stop;
    check Alcotest.int "partial busy" 1 f.Telemetry.f_busy);
  check Alcotest.bool "flush drains" true (Telemetry.flush t ~now:2 = None)

(* --- Watchdog evaluation ---------------------------------------------------- *)

let frame_with t ~ticks =
  Telemetry.prime t ~schedule:0 ~allotted:[| ticks |];
  for _ = 1 to ticks do
    Telemetry.on_tick t ~active:(Some 0)
  done

let watchdog_breaches () =
  let t = Telemetry.create ~partition_count:2 () in
  Telemetry.prime t ~schedule:0 ~allotted:[| 10; 10 |];
  for _ = 1 to 20 do
    Telemetry.on_tick t ~active:(Some 0)
  done;
  for _ = 1 to 100 do
    Telemetry.on_dispatch t ~partition:0 ~jitter:9
  done;
  Telemetry.on_catch_up t ~partition:1 ~depth:40;
  Telemetry.on_deadline_miss t ~partition:1;
  let f =
    Telemetry.close_frame t ~now:20 ~next_schedule:0
      ~next_allotted:[| 10; 10 |]
  in
  let w =
    Telemetry.watchdog ~min_slack:5 ~max_jitter_p99:4 ~max_catch_up:30
      ~max_deadline_misses:0 ()
  in
  (match Telemetry.breaches w f with
  | [ Telemetry.Jitter_p99_above { p99; max_jitter_p99 = 4 };
      Telemetry.Slack_below { slack = 0; min_slack = 5 };
      Telemetry.Deadline_misses_above
        { partition = 1; misses = 1; max_deadline_misses = 0 };
      Telemetry.Catch_up_above
        { partition = 1; depth = 40; max_catch_up = 30 } ] ->
    check Alcotest.bool "p99 above threshold" true (p99 > 4)
  | bs ->
    Alcotest.failf "unexpected breach set (%d): %a" (List.length bs)
      (Format.pp_print_list Telemetry.pp_breach)
      bs);
  (* Module-level breaches carry no partition; per-partition ones do. *)
  check
    Alcotest.(list (option int))
    "breach attribution"
    [ None; None; Some 1; Some 1 ]
    (List.map Telemetry.breach_partition (Telemetry.breaches w f));
  check Alcotest.int "trivial watchdog never breaches" 0
    (List.length (Telemetry.breaches Telemetry.no_watchdog f))

let watchdog_jitter_skipped_without_dispatches () =
  let t = Telemetry.create ~partition_count:1 () in
  frame_with t ~ticks:10;
  let f =
    Telemetry.close_frame t ~now:10 ~next_schedule:0 ~next_allotted:[| 10 |]
  in
  let w = Telemetry.watchdog ~max_jitter_p99:0 () in
  check Alcotest.int "no dispatches, no jitter breach" 0
    (List.length (Telemetry.breaches w f))

let watchdog_per_schedule_lookup () =
  let strict = Telemetry.watchdog ~min_slack:100 () in
  let t =
    Telemetry.create
      ~config:(Telemetry.config ~schedule_watchdogs:[ (1, strict) ] ())
      ~partition_count:1 ()
  in
  check Alcotest.bool "schedule 0 uses the default" true
    (Telemetry.watchdog_is_trivial (Telemetry.watchdog_for t ~schedule:0));
  check Alcotest.bool "schedule 1 overridden" true
    (Telemetry.watchdog_for t ~schedule:1 = strict)

(* --- System integration ----------------------------------------------------- *)

let w partition offset duration = { Schedule.partition; offset; duration }
let q partition cycle duration = { Schedule.partition; cycle; duration }

let s0 =
  Schedule.make ~id:(sid 0) ~name:"S0" ~mtf:20
    ~requirements:[ q (pid 0) 20 10; q (pid 1) 20 10 ]
    [ w (pid 0) 0 10; w (pid 1) 10 10 ]

(* A sparse alternative: one 10-tick window in a 40-tick MTF leaves 30
   ticks of slack every frame. *)
let s1 =
  Schedule.make ~id:(sid 1) ~name:"S1" ~mtf:40
    ~requirements:[ q (pid 0) 40 10 ]
    [ w (pid 0) 0 10 ]

let telemetry_system ?hm_tables ?telemetry () =
  let p name i =
    Partition.make ~id:(pid i) ~name
      [ Process.spec ~periodicity:(Process.Periodic 20) ~time_capacity:20
          ~wcet:4 ~base_priority:5 "work" ]
  in
  let script =
    { Script.body = [| Script.Compute 4; Script.Periodic_wait |];
      on_end = Script.Repeat }
  in
  let telemetry =
    match telemetry with
    | Some c -> c
    | None -> Telemetry.default_config
  in
  Air.System.create
    (Air.System.config ?hm_tables ~telemetry
       ~partitions:
         [ Air.System.partition_setup (p "A" 0) [ script ];
           Air.System.partition_setup (p "B" 1) [ script ] ]
       ~schedules:[ s0; s1 ] ())

let one_frame_per_mtf () =
  let s = telemetry_system () in
  Air.System.run_mtfs s 4;
  (* The boundary tick belongs to the next frame, so after exactly four
     MTFs three frames are closed and the fourth is still accumulating. *)
  let closed = Air.System.telemetry_frames s in
  check Alcotest.int "closed frames" 3 (List.length closed);
  List.iteri
    (fun k f ->
      check Alcotest.int "start" (k * 20) f.Telemetry.f_start;
      check Alcotest.int "stop" ((k + 1) * 20) f.Telemetry.f_stop;
      check Alcotest.int "schedule" 0 f.Telemetry.f_schedule;
      check Alcotest.int "full occupation" 20 f.Telemetry.f_busy;
      check Alcotest.int "no slack" 0 f.Telemetry.f_slack)
    closed;
  (match Air.System.telemetry_flush s with
  | None -> Alcotest.fail "expected a flushed tail frame"
  | Some f ->
    check Alcotest.int "tail start" 60 f.Telemetry.f_start;
    check Alcotest.int "tail stop" 80 f.Telemetry.f_stop);
  check Alcotest.int "one frame per elapsed MTF" 4
    (List.length (Air.System.telemetry_frames s));
  check Alcotest.bool "flush drains" true
    (Air.System.telemetry_flush s = None)

let schedule_switch_starts_fresh_frame () =
  let strict = Telemetry.watchdog ~min_slack:100 () in
  let s =
    telemetry_system
      ~telemetry:(Telemetry.config ~schedule_watchdogs:[ (1, strict) ] ())
      ()
  in
  Air.System.run_mtfs s 1;
  Result.get_ok (Air.System.request_schedule s (sid 1));
  Air.System.run_mtfs s 4;
  let frames = Air.System.telemetry_frames s in
  (* One MTF under S0, then the switch; each [run_mtfs] iteration advances
     exactly one whole frame of the schedule actually running (the switch
     changes the MTF at the boundary), and a frame closes only when its
     boundary tick executes — so three full S1 frames are closed here and
     a fourth is still accumulating. *)
  (match frames with
  | first :: rest ->
    check Alcotest.int "first frame under S0" 0 first.Telemetry.f_schedule;
    check Alcotest.int "S0 frame length" 20
      (first.Telemetry.f_stop - first.Telemetry.f_start);
    check Alcotest.int "frames after the switch" 3 (List.length rest);
    List.iter
      (fun f ->
        check Alcotest.int "runs under S1" 1 f.Telemetry.f_schedule;
        check Alcotest.int "S1 frame length" 40
          (f.Telemetry.f_stop - f.Telemetry.f_start);
        check Alcotest.int "S1 slack" 30 f.Telemetry.f_slack)
      rest
  | [] -> Alcotest.fail "expected frames");
  (* The watchdog is re-read per frame: S0's frame is judged by the
     (trivial) default, S1's frames by the strict override — three closed
     S1 frames, three module-level temporal-degradation errors. *)
  check Alcotest.int "breaches only under S1" 3
    (Air.Hm.count_for (Air.System.hm s) ~partition:None
       ~code:Error.Temporal_degradation)

let watchdog_raises_hm_once_per_frame () =
  (* Under S0 each partition is preempted for 10 ticks every MTF, so the
     PAL catch-up depth reaches 10 on every dispatch after the gap; slack
     is 0 on every frame. Both thresholds breach on every closed frame. *)
  let hm_tables =
    { Air.Hm.default_tables with
      Air.Hm.partition_actions =
        [ (pid 0, Error.Temporal_degradation, Error.Partition_warm_restart) ]
    }
  in
  let telemetry =
    Telemetry.config
      ~default_watchdog:
        (Telemetry.watchdog ~min_slack:1 ~max_catch_up:5 ())
      ()
  in
  let s = telemetry_system ~hm_tables ~telemetry () in
  Air.System.run_mtfs s 4;
  check Alcotest.int "three frames closed" 3
    (List.length (Air.System.telemetry_frames s));
  let count partition =
    Air.Hm.count_for (Air.System.hm s) ~partition
      ~code:Error.Temporal_degradation
  in
  let module_errors =
    Air_sim.Trace.count
      (fun ev ->
        match ev with
        | Air_model.Event.Hm_error
            { level = Error.Module_level;
              code = Error.Temporal_degradation; _ } ->
          true
        | _ -> false)
      (Air.System.trace s)
  in
  (* Exactly once per offending frame at each level: the slack breach is
     one module error per frame. A partition's catch-up announcement lands
     on the dispatch that ends the preemption gap — the boundary tick,
     which belongs to the next frame — so P0 (first window, no gap before
     its first dispatch) offends in the 2nd and 3rd closed frames only,
     while P1's initial 10-tick gap makes it offend in all three. *)
  check Alcotest.int "module level, once per frame" 3 module_errors;
  check Alcotest.int "partition 0, once per offending frame" 2
    (count (Some (pid 0)));
  check Alcotest.int "partition 1, once per offending frame" 3
    (count (Some (pid 1)));
  (* [count_for ~partition:None] sums every level's occurrences. *)
  check Alcotest.int "no spurious extra errors" 8 (count None);
  (* The configured recovery action actually ran, once per error. *)
  let restarts =
    Air_sim.Trace.count
      (fun ev ->
        match ev with
        | Air_model.Event.Hm_partition_action
            { partition; action = Error.Partition_warm_restart } ->
          Ident.Partition_id.equal partition (pid 0)
        | _ -> false)
      (Air.System.trace s)
  in
  check Alcotest.int "warm restart fired once per error" 2 restarts

let no_watchdog_no_hm_errors () =
  let s = telemetry_system () in
  Air.System.run_mtfs s 4;
  check Alcotest.int "trivial watchdogs stay silent" 0
    (Air.Hm.count_for (Air.System.hm s) ~partition:None
       ~code:Error.Temporal_degradation)

(* --- Exports ----------------------------------------------------------------- *)

let exported_frames () =
  let s = telemetry_system () in
  Air.System.run_mtfs s 4;
  ignore (Air.System.telemetry_flush s);
  Air.System.telemetry_frames s

let json_export_is_valid () =
  let frames = exported_frames () in
  let json = Telemetry.to_json frames in
  (match Json_lint.check json with
  | Ok () -> ()
  | Error e -> Alcotest.failf "invalid JSON: %s" e);
  List.iter
    (fun needle ->
      check Alcotest.bool (needle ^ " present") true
        (Astring_contains.contains json needle))
    [ Telemetry.schema; "\"frames\":"; "\"utilization_permille\"";
      "\"ipc\":" ];
  check Alcotest.bool "empty export still valid" true
    (Json_lint.is_valid (Telemetry.to_json []))

let csv_export_shape () =
  let frames = exported_frames () in
  let csv = Telemetry.to_csv frames in
  let lines =
    List.filter
      (fun l -> String.length l > 0)
      (String.split_on_char '\n' csv)
  in
  let columns line = List.length (String.split_on_char ',' line) in
  (match lines with
  | header :: rows ->
    check Alcotest.string "header" Telemetry.csv_header header;
    check Alcotest.int "one row per frame x partition"
      (List.length frames * 2)
      (List.length rows);
    List.iter
      (fun row ->
        check Alcotest.int "column count" (columns header) (columns row))
      rows
  | [] -> Alcotest.fail "empty CSV")

(* --- Configuration grammar ---------------------------------------------------- *)

let telemetry_doc =
  {|(air-system
  (partitions
    (partition (name CTRL)
      (processes (process (name loop) (script (compute 5) (periodic-wait))))))
  (schedules
    (schedule (name day) (mtf 20)
      (requirements (req (partition CTRL) (cycle 20) (duration 10)))
      (windows (window (partition CTRL) (offset 0) (duration 10))))
    (schedule (name night) (mtf 20)
      (requirements (req (partition CTRL) (cycle 20) (duration 5)))
      (windows (window (partition CTRL) (offset 0) (duration 5)))))
  (telemetry
    (retention 8)
    (watchdogs
      (watchdog (min-slack 2) (max-deadline-misses 0))
      (watchdog (schedule night) (max-catch-up 50)))))
|}

let config_decodes_telemetry () =
  match Air_config.Loader.load telemetry_doc with
  | Error e -> Alcotest.fail e
  | Ok cfg ->
    (match cfg.Air.System.telemetry with
    | None -> Alcotest.fail "telemetry section lost"
    | Some c ->
      check Alcotest.(option int) "retention" (Some 8)
        c.Telemetry.retention;
      check Alcotest.(option int) "default min-slack" (Some 2)
        c.Telemetry.default_watchdog.Telemetry.min_slack;
      check Alcotest.(option int) "default miss threshold" (Some 0)
        c.Telemetry.default_watchdog.Telemetry.max_deadline_misses;
      (match c.Telemetry.schedule_watchdogs with
      | [ (1, wd) ] ->
        check Alcotest.(option int) "night catch-up" (Some 50)
          wd.Telemetry.max_catch_up
      | l -> Alcotest.failf "expected one override, got %d" (List.length l)))

let config_round_trips_telemetry () =
  match Air_config.Loader.load telemetry_doc with
  | Error e -> Alcotest.fail e
  | Ok cfg -> (
    let doc = Air_config.Encode.to_string cfg in
    match Air_config.Loader.load doc with
    | Error e -> Alcotest.failf "re-load failed: %s\n%s" e doc
    | Ok cfg' ->
      check Alcotest.bool "telemetry config survives" true
        (cfg.Air.System.telemetry = cfg'.Air.System.telemetry))

let config_rejects_bad_telemetry () =
  (* The fixture's telemetry section is its last form; swap it out. *)
  let with_section section =
    let needle = "(telemetry" in
    let rec find i =
      if i + String.length needle > String.length telemetry_doc then
        Alcotest.fail "no telemetry section in fixture"
      else if String.sub telemetry_doc i (String.length needle) = needle
      then i
      else find (i + 1)
    in
    String.sub telemetry_doc 0 (find 0) ^ section ^ ")\n"
  in
  List.iter
    (fun (name, section) ->
      check Alcotest.bool name true
        (Result.is_error (Air_config.Loader.load (with_section section))))
    [ ("retention must be positive", "(telemetry (retention 0))");
      ( "unknown schedule rejected",
        "(telemetry (watchdogs (watchdog (schedule dusk) (min-slack 1))))"
      );
      ( "duplicate default rejected",
        "(telemetry (watchdogs (watchdog (min-slack 1)) (watchdog \
         (min-slack 2))))" );
      ( "duplicate schedule rejected",
        "(telemetry (watchdogs (watchdog (schedule day) (min-slack 1)) \
         (watchdog (schedule day) (min-slack 2))))" );
      ("unknown field rejected", "(telemetry (cadence 3))") ]

let suite =
  [ Alcotest.test_case "quantile: exact below 16" `Quick
      quantile_exact_below_16;
    Alcotest.test_case "quantile: bounded relative error" `Quick
      quantile_relative_error_bounded;
    Alcotest.test_case "quantile: clamping" `Quick quantile_clamps;
    Alcotest.test_case "quantile: merge" `Quick quantile_merge;
    Alcotest.test_case "quantile: empty and clear" `Quick
      quantile_empty_and_clear;
    Alcotest.test_case "quantile: bad rank rejected" `Quick
      quantile_rejects_bad_rank;
    Alcotest.test_case "frame: accumulate and close" `Quick
      accumulate_one_frame;
    Alcotest.test_case "frame: bounded retention" `Quick retention_ring;
    Alcotest.test_case "frame: flush partial" `Quick flush_partial_frame;
    Alcotest.test_case "watchdog: breach set" `Quick watchdog_breaches;
    Alcotest.test_case "watchdog: jitter needs dispatches" `Quick
      watchdog_jitter_skipped_without_dispatches;
    Alcotest.test_case "watchdog: per-schedule lookup" `Quick
      watchdog_per_schedule_lookup;
    Alcotest.test_case "system: one frame per MTF" `Quick one_frame_per_mtf;
    Alcotest.test_case "system: switch starts fresh frame" `Quick
      schedule_switch_starts_fresh_frame;
    Alcotest.test_case "system: HM raised once per frame" `Quick
      watchdog_raises_hm_once_per_frame;
    Alcotest.test_case "system: trivial watchdogs silent" `Quick
      no_watchdog_no_hm_errors;
    Alcotest.test_case "export: JSON is valid" `Quick json_export_is_valid;
    Alcotest.test_case "export: CSV shape" `Quick csv_export_shape;
    Alcotest.test_case "config: telemetry decodes" `Quick
      config_decodes_telemetry;
    Alcotest.test_case "config: telemetry round-trips" `Quick
      config_round_trips_telemetry;
    Alcotest.test_case "config: bad telemetry rejected" `Quick
      config_rejects_bad_telemetry ]
