(* Causal correlation-id tests: the packed-int field layout survives
   round-trips for arbitrary field values, the record ring keeps bounded
   retention, the stamping hot path never allocates, flow entries render
   into lint-clean Chrome flow events, and — the cross-module acceptance
   property — a two-module cluster trace carries send and receive flow
   events sharing one correlation id, identically in every engine mode. *)

open Air_sim
open Air_model
open Air_pos
open Air_ipc
open Air
open Ident
module Causal = Air_obs.Causal
module Trace_export = Air_obs.Trace_export
module Engine = Air_exec.Engine

let check = Alcotest.check
let qcheck = QCheck_alcotest.to_alcotest
let contains hay needle = Astring_contains.contains hay needle
let pid = Partition_id.make
let sid = Schedule_id.make
let w partition offset duration = { Schedule.partition; offset; duration }
let q partition cycle duration = { Schedule.partition; cycle; duration }

(* --- Packed-id field layout ------------------------------------------------ *)

(* The documented masks, hardcoded on purpose: the bit layout is a wire
   format (ids appear verbatim in exported traces), so a layout change
   must fail here even if pack/unpack stay mutually consistent. *)
let module_mask = 0xff
let partition_mask = 0xff
let port_mask = 0x3ff
let seq_mask = 0xffffffff

(* Field generators deliberately overflow every mask so truncation — not
   rejection — is pinned as the total-function contract. *)
let fields_gen =
  QCheck.Gen.(
    quad (int_bound 0xffff) (int_bound 0xffff) (int_bound 0xffff)
      (map2 (fun hi lo -> (hi lsl 16) lor lo) (int_bound 0x3ffff)
         (int_bound 0xffff)))

let pack_roundtrip =
  QCheck.Test.make ~name:"pack/unpack round-trips (fields masked)" ~count:500
    (QCheck.make fields_gen) (fun (m, p, q, s) ->
      let id = Causal.pack ~module_id:m ~partition:p ~port:q ~seq:s in
      Causal.is_some id
      && Causal.module_of id = m land module_mask
      && Causal.partition_of id = p land partition_mask
      && Causal.port_of id = q land port_mask
      && Causal.seq_of id = s land seq_mask
      && Causal.flow_of id = Causal.pack ~module_id:m ~partition:p ~port:q ~seq:0
      && Causal.seq_of (Causal.flow_of id) = 0
      && Causal.module_of (Causal.flow_of id) = Causal.module_of id)

let none_and_rendering () =
  check Alcotest.bool "none is absent" false (Causal.is_some Causal.none);
  check Alcotest.string "none renders as dash" "-"
    (Causal.to_string Causal.none);
  let id = Causal.pack ~module_id:1 ~partition:2 ~port:3 ~seq:42 in
  check Alcotest.string "id rendering" "m1.p2.q3#42" (Causal.to_string id);
  check Alcotest.string "flow rendering" "m1.p2.q3"
    (Causal.flow_to_string id);
  (* The all-zero origin must still be distinguishable from [none]. *)
  check Alcotest.bool "zero origin is some" true
    (Causal.is_some (Causal.pack ~module_id:0 ~partition:0 ~port:0 ~seq:0))

(* --- Tracker ring ---------------------------------------------------------- *)

let ring_retention_is_bounded () =
  let t = Causal.create ~capacity:4 ~module_id:3 () in
  check Alcotest.int "homed" 3 (Causal.module_id t);
  for i = 0 to 9 do
    ignore (Causal.stamp t ~now:i ~partition:1 ~port:2)
  done;
  check Alcotest.int "length capped" 4 (Causal.length t);
  check Alcotest.int "total keeps counting" 10 (Causal.total t);
  check Alcotest.int "dropped = total - length" 6 (Causal.dropped t);
  check Alcotest.int "capacity" 4 (Causal.capacity t);
  check
    Alcotest.(list int)
    "retained entries are the newest, oldest first" [ 6; 7; 8; 9 ]
    (List.map (fun e -> Causal.seq_of e.Causal.id) (Causal.entries t));
  List.iter
    (fun e ->
      check Alcotest.bool "send hop" true (e.Causal.kind = Causal.Send);
      check Alcotest.int "origin module" 3 (Causal.module_of e.Causal.id);
      check Alcotest.int "track is the partition" 1 e.Causal.track)
    (Causal.entries t)

let none_hops_are_ignored () =
  let t = Causal.create ~capacity:8 () in
  Causal.receive t ~now:1 ~track:0 Causal.none;
  Causal.forward t ~now:2 Causal.none;
  Causal.perturb t ~now:3 ~what:Causal.Drop Causal.none;
  check Alcotest.int "nothing recorded" 0 (Causal.total t);
  check Alcotest.bool "no perturbation retained" false
    (Causal.is_some (Causal.last_perturbed t));
  let id = Causal.stamp t ~now:4 ~partition:0 ~port:0 in
  Causal.perturb t ~now:5 ~what:Causal.Bus_corrupt id;
  check Alcotest.int "last perturbed id" id (Causal.last_perturbed t);
  Alcotest.check_raises "capacity must be positive"
    (Invalid_argument "Causal.create: capacity must be positive") (fun () ->
      ignore (Causal.create ~capacity:0 ()))

(* Tentpole guarantee: stamping and hop recording stay off the minor heap
   even while the ring wraps — same calibration idiom as the engine's
   steady-state test ([Gc.minor_words] itself boxes a float). *)
let stamping_is_allocation_free () =
  let t = Causal.create ~capacity:256 () in
  for i = 0 to 299 do
    ignore (Causal.stamp t ~now:i ~partition:1 ~port:2)
  done;
  let calibration =
    let a = Gc.minor_words () in
    let b = Gc.minor_words () in
    b -. a
  in
  let before = Gc.minor_words () in
  for i = 0 to 9_999 do
    let id = Causal.stamp t ~now:i ~partition:1 ~port:2 in
    Causal.forward t ~now:i id;
    Causal.perturb t ~now:i ~what:Causal.Bus_delay id;
    Causal.receive t ~now:i ~track:1 id
  done;
  let after = Gc.minor_words () in
  check (Alcotest.float 0.) "minor words across 10000 stamped hops"
    calibration (after -. before)

(* --- Chrome flow-event emission -------------------------------------------- *)

let kind_gen =
  QCheck.Gen.oneofl
    [ Causal.Send; Causal.Receive; Causal.Forward;
      Causal.Perturb Causal.Drop; Causal.Perturb Causal.Corrupt;
      Causal.Perturb Causal.Bus_reorder; Causal.Perturb Causal.Bus_delay ]

let entry_gen =
  QCheck.Gen.(
    map2
      (fun (m, p, q, s) (kind, time, track) ->
        { Causal.kind; id = Causal.pack ~module_id:m ~partition:p ~port:q ~seq:s;
          time; track })
      fields_gen
      (triple kind_gen (int_bound 1_000_000) (int_range (-1) 30)))

(* Satellite: arbitrary causal entries emit lint-clean Chrome JSON whose
   flow rows carry the packed id verbatim, with the right phase letter. *)
let flow_emission_is_valid_json =
  QCheck.Test.make ~name:"flow entries emit lint-clean Chrome rows"
    ~count:300 (QCheck.make entry_gen) (fun entry ->
      let json = Trace_export.to_chrome ~flows:[ entry ] [] in
      (match Json_lint.check json with
      | Ok () -> ()
      | Error e -> QCheck.Test.fail_reportf "invalid JSON: %s" e);
      let phase, correlation =
        match entry.Causal.kind with
        (* Send/forward/receive rows bind through the packed id field;
           perturbations are instants annotated with the flow label. *)
        | Causal.Send ->
          ("\"ph\":\"s\"", Printf.sprintf "\"id\":%d" entry.Causal.id)
        | Causal.Receive ->
          ( "\"ph\":\"f\",\"bp\":\"e\"",
            Printf.sprintf "\"id\":%d" entry.Causal.id )
        | Causal.Forward ->
          ("\"ph\":\"t\"", Printf.sprintf "\"id\":%d" entry.Causal.id)
        | Causal.Perturb what ->
          ( "\"name\":\"flow.perturb\"",
            Printf.sprintf "\"detail\":\"%s\""
              (Causal.perturbation_label what) )
      in
      contains json phase && contains json correlation
      && contains json
           (Printf.sprintf "\"flow\":\"%s\""
              (Causal.to_string entry.Causal.id))
      && contains json
           (Printf.sprintf "\"ts\":%d" entry.Causal.time))

(* --- A module whose flows stay local --------------------------------------- *)

(* Two partitions of one module joined by a queuing channel: OUT drains
   into IN, the receiver blocks on it. Every send and its matching
   receive land in the same tracker. *)
let flow_system () =
  let tx = pid 0 and rx = pid 1 in
  let network =
    { Port.ports =
        [ Port.queuing_port ~name:"OUT" ~partition:tx ~direction:Port.Source
            ~depth:8 ~max_message_size:32;
          Port.queuing_port ~name:"IN" ~partition:rx
            ~direction:Port.Destination ~depth:8 ~max_message_size:32 ];
      channels = [ { Port.source = "OUT"; destinations = [ "IN" ] } ] }
  in
  let tx_p =
    Partition.make ~id:tx ~name:"TX"
      [ Process.spec ~periodicity:(Process.Periodic 50) ~time_capacity:50
          ~wcet:5 ~base_priority:5 "tx" ]
  in
  let rx_p =
    Partition.make ~id:rx ~name:"RX" [ Process.spec ~base_priority:5 "rx" ]
  in
  let schedule =
    Schedule.make ~id:(sid 0) ~name:"S" ~mtf:50
      ~requirements:[ q tx 50 20; q rx 50 20 ]
      [ w tx 0 20; w rx 25 20 ]
  in
  System.create
    (System.config ~network ~causal:(Causal.create ())
       ~partitions:
         [ System.partition_setup tx_p
             [ Script.periodic_body
                 [ Script.Compute 5; Script.Send_queuing ("OUT", "ping") ] ];
           System.partition_setup rx_p
             [ Script.make
                 [ Script.Receive_queuing ("IN", Time.infinity);
                   Script.Log "got" ] ] ]
       ~schedules:[ schedule ] ())

let kind_label = function
  | Causal.Send -> "send"
  | Causal.Receive -> "receive"
  | Causal.Forward -> "forward"
  | Causal.Perturb p -> "perturb:" ^ Causal.perturbation_label p

let entry_line (e : Causal.entry) =
  Printf.sprintf "%s %s @%d track=%d" (kind_label e.Causal.kind)
    (Causal.to_string e.Causal.id)
    e.Causal.time e.Causal.track

let local_flow_pairs_sends_with_receives () =
  let s = flow_system () in
  System.run s ~ticks:1_000;
  let entries = System.flow_entries s in
  let sends =
    List.filter (fun e -> e.Causal.kind = Causal.Send) entries
  and receives =
    List.filter (fun e -> e.Causal.kind = Causal.Receive) entries
  in
  check Alcotest.bool "sends recorded" true (List.length sends >= 19);
  check Alcotest.int "every send consumed" (List.length sends)
    (List.length receives);
  List.iter
    (fun r ->
      match
        List.find_opt (fun snd -> snd.Causal.id = r.Causal.id) sends
      with
      | None ->
        Alcotest.failf "receive %s has no matching send"
          (Causal.to_string r.Causal.id)
      | Some snd ->
        (* A reader already blocked on the queue is handed the message on
           the send tick itself, so zero latency is legitimate. *)
        check Alcotest.bool
          (Causal.to_string r.Causal.id ^ ": causal order")
          true
          (r.Causal.time >= snd.Causal.time))
    receives;
  (* One flow: every id shares the (module, partition, port) origin. *)
  (match sends with
  | [] -> ()
  | first :: _ ->
    List.iter
      (fun e ->
        check Alcotest.int "single flow key"
          (Causal.flow_of first.Causal.id)
          (Causal.flow_of e.Causal.id))
      entries)

(* The engine contract extends to causal records: skip-ahead and adaptive
   execution must stamp and record hop-for-hop identically to per-tick. *)
let modes_record_identical_flows () =
  let reference = flow_system () in
  System.run reference ~ticks:2_000;
  let expected = List.map entry_line (System.flow_entries reference) in
  check Alcotest.bool "reference recorded flows" true (expected <> []);
  List.iter
    (fun (label, mode) ->
      let engine = Engine.create ~mode (flow_system ()) in
      Engine.advance engine ~ticks:2_000;
      check
        Alcotest.(list string)
        (label ^ " records identical flow entries") expected
        (List.map entry_line (System.flow_entries (Engine.system engine))))
    [ ("skip", Engine.Skip); ("adaptive", Engine.Adaptive) ]

(* Bounded-retention counters surface in exports (satellite): the span
   and flow drop counts ride along as metrics gauges and as the
   [air.meta] row of the Chrome trace. *)
let drop_counts_surface_in_exports () =
  let recorder = Air_obs.Span.create ~capacity:8 () in
  let tx = pid 0 in
  let network =
    { Port.ports =
        [ Port.queuing_port ~name:"OUT" ~partition:tx ~direction:Port.Source
            ~depth:1 ~max_message_size:8 ];
      channels = [] }
  in
  let p =
    Partition.make ~id:tx ~name:"TX"
      [ Process.spec ~periodicity:(Process.Periodic 50) ~time_capacity:50
          ~wcet:5 ~base_priority:5 "tx" ]
  in
  let schedule =
    Schedule.make ~id:(sid 0) ~name:"S" ~mtf:50
      ~requirements:[ q tx 50 20 ]
      [ w tx 0 20 ]
  in
  let s =
    System.create
      (System.config ~network ~recorder ~causal:(Causal.create ~capacity:4 ())
         ~partitions:
           [ System.partition_setup p
               [ Script.periodic_body
                   [ Script.Compute 5; Script.Send_queuing ("OUT", "x") ] ] ]
         ~schedules:[ schedule ] ())
  in
  System.run s ~ticks:2_000;
  let recorder = Option.get (System.recorder s) in
  check Alcotest.bool "recorder dropped spans" true
    (Air_obs.Span.dropped recorder > 0);
  let tracker = Option.get (System.causal s) in
  check Alcotest.bool "tracker dropped records" true
    (Causal.dropped tracker > 0);
  let meta = System.export_meta s in
  check Alcotest.int "meta dropped_spans"
    (Air_obs.Span.dropped recorder)
    (List.assoc "dropped_spans" meta);
  check Alcotest.int "meta dropped_flow_records" (Causal.dropped tracker)
    (List.assoc "dropped_flow_records" meta);
  let json = System.metrics_json s in
  check Alcotest.bool "dropped_spans gauge exported" true
    (contains json "recorder.dropped_spans");
  check Alcotest.bool "dropped_records gauge exported" true
    (contains json "causal.dropped_records");
  let trace = System.chrome_trace s in
  (match Json_lint.check trace with
  | Ok () -> ()
  | Error e -> Alcotest.failf "invalid chrome trace: %s" e);
  check Alcotest.bool "air.meta row present" true
    (contains trace "\"air.meta\"");
  check Alcotest.bool "meta carries the span drop count" true
    (contains trace
       (Printf.sprintf "\"dropped_spans\":%d"
          (Air_obs.Span.dropped recorder)))

(* --- Cross-module acceptance ----------------------------------------------- *)

(* The two-module fixture of [test_cluster.ml] with a tracker per module:
   SENSOR writes telemetry into its gateway, the bus carries it to
   GROUND, whose partition blocks on the remote port. *)
let sensor_module () =
  let sensor = pid 0 in
  let network =
    { Port.ports =
        [ Port.queuing_port ~name:"TM_SRC" ~partition:sensor
            ~direction:Port.Source ~depth:8 ~max_message_size:32;
          Port.queuing_port ~name:"TM_GW" ~partition:sensor
            ~direction:Port.Destination ~depth:8 ~max_message_size:32 ];
      channels = [ { Port.source = "TM_SRC"; destinations = [ "TM_GW" ] } ] }
  in
  let p =
    Partition.make ~id:sensor ~name:"SENSOR"
      [ Process.spec ~periodicity:(Process.Periodic 50) ~time_capacity:50
          ~wcet:5 ~base_priority:5 "sample" ]
  in
  let schedule =
    Schedule.make ~id:(sid 0) ~name:"solo" ~mtf:50
      ~requirements:[ q sensor 50 50 ]
      [ w sensor 0 50 ]
  in
  System.create
    (System.config ~network ~causal:(Causal.create ())
       ~partitions:
         [ System.partition_setup p
             [ Script.periodic_body
                 [ Script.Compute 5;
                   Script.Send_queuing ("TM_SRC", "telemetry!") ] ] ]
       ~schedules:[ schedule ] ())

let ground_module () =
  let ground = pid 0 in
  let network =
    { Port.ports =
        [ Port.queuing_port ~name:"TM_IN" ~partition:ground
            ~direction:Port.Destination ~depth:8 ~max_message_size:32 ];
      channels = [] }
  in
  let p =
    Partition.make ~id:ground ~name:"GROUND"
      [ Process.spec ~base_priority:5 "downlink" ]
  in
  let schedule =
    Schedule.make ~id:(sid 0) ~name:"solo" ~mtf:50
      ~requirements:[ q ground 50 50 ]
      [ w ground 0 50 ]
  in
  System.create
    (System.config ~network ~causal:(Causal.create ())
       ~partitions:
         [ System.partition_setup p
             [ Script.make
                 [ Script.Receive_queuing ("TM_IN", Time.infinity);
                   Script.Log "frame received" ] ] ]
       ~schedules:[ schedule ] ())

let make_cluster () =
  Cluster.create
    ~links:
      [ Cluster.link ~from_module:0 ~from_port:"TM_GW" ~to_module:1
          ~to_port:"TM_IN" () ]
    [ sensor_module (); ground_module () ]

(* Acceptance: the merged cluster trace shows the whole flow — a send in
   the sensor module, a forward at its gateway and a receive in the
   ground module, all carrying the same correlation id. *)
let cluster_flows_cross_modules () =
  let cluster = make_cluster () in
  Cluster.run cluster ~ticks:500;
  let systems = Cluster.systems cluster in
  check Alcotest.int "trackers homed to cluster indices" 1
    (Causal.module_id (Option.get (System.causal systems.(1))));
  let sends =
    List.filter
      (fun e -> e.Causal.kind = Causal.Send)
      (System.flow_entries systems.(0))
  and forwards =
    List.filter
      (fun e -> e.Causal.kind = Causal.Forward)
      (System.flow_entries systems.(0))
  and receives =
    List.filter
      (fun e -> e.Causal.kind = Causal.Receive)
      (System.flow_entries systems.(1))
  in
  check Alcotest.bool "messages crossed" true (List.length receives >= 8);
  List.iter
    (fun r ->
      check Alcotest.int "receive id originates in module 0" 0
        (Causal.module_of r.Causal.id);
      check Alcotest.bool
        (Causal.to_string r.Causal.id ^ ": sent by module 0")
        true
        (List.exists (fun snd -> snd.Causal.id = r.Causal.id) sends);
      check Alcotest.bool
        (Causal.to_string r.Causal.id ^ ": forwarded at the gateway")
        true
        (List.exists (fun f -> f.Causal.id = r.Causal.id) forwards))
    receives;
  let json = Cluster.chrome_trace cluster in
  (match Json_lint.check json with
  | Ok () -> ()
  | Error e -> Alcotest.failf "invalid cluster trace: %s" e);
  let first = (List.hd receives).Causal.id in
  let occurrences needle =
    let n = String.length needle and l = String.length json in
    let count = ref 0 in
    for i = 0 to l - n do
      if String.sub json i n = needle then incr count
    done;
    !count
  in
  check Alcotest.bool "send phase present" true (contains json "\"ph\":\"s\"");
  check Alcotest.bool "step phase present" true (contains json "\"ph\":\"t\"");
  check Alcotest.bool "finish phase binds to enclosing slice" true
    (contains json "\"ph\":\"f\",\"bp\":\"e\"");
  check Alcotest.bool "one id on send, forward and receive rows" true
    (occurrences (Printf.sprintf "\"id\":%d" first) >= 3)

let suite =
  [ Alcotest.test_case "none and rendering" `Quick none_and_rendering;
    Alcotest.test_case "ring retention is bounded" `Quick
      ring_retention_is_bounded;
    Alcotest.test_case "none hops are ignored" `Quick none_hops_are_ignored;
    Alcotest.test_case "stamping is allocation-free" `Quick
      stamping_is_allocation_free;
    Alcotest.test_case "local flow pairs sends with receives" `Quick
      local_flow_pairs_sends_with_receives;
    Alcotest.test_case "engine modes record identical flows" `Quick
      modes_record_identical_flows;
    Alcotest.test_case "drop counts surface in exports" `Quick
      drop_counts_surface_in_exports;
    Alcotest.test_case "cluster flows cross modules" `Quick
      cluster_flows_cross_modules;
    qcheck pack_roundtrip;
    qcheck flow_emission_is_valid_json ]
