(* A 12-satellite LEO constellation as one parallel discrete-event
   simulation (paper Sect. 2.1 scaled up: many physically separated AIR
   modules over inter-satellite links).

   Each satellite is the same module — a beacon partition pushing ISL
   frames through its TX0 gateway, an uplink process draining the RX
   ingress — and the ring wiring comes from the topology generator. The
   constellation is advanced two ways:

   - sequentially, module by module, through [Air.Cluster.run];
   - in parallel across OCaml domains through [Air_fleet.Fleet], whose
     conservative lookahead windows (bounded by the minimum ISL latency)
     and deterministic barrier merge make the parallel run bit-identical
     to the sequential one — same traces, counters and fingerprint.

   The same holds under fault injection: a seeded campaign striking the
   ISL bus reaches the same verdicts whatever the domain count.

   Run with: dune exec examples/constellation.exe *)

open Air_model
open Air_pos
open Air
open Ident
module Fleet = Air_fleet.Fleet
module Topology = Air_fleet.Topology

let pid = Partition_id.make
let sid = Schedule_id.make
let satellites = 12
let isl_latency = 8

(* One satellite: clone [index] of the template. *)
let satellite index =
  let sat = pid 0 in
  let network =
    { Air_ipc.Port.ports =
        [ Air_ipc.Port.queuing_port ~name:"ISL_SRC" ~partition:sat
            ~direction:Air_ipc.Port.Source ~depth:8 ~max_message_size:64;
          Air_ipc.Port.queuing_port ~name:"TX0" ~partition:sat
            ~direction:Air_ipc.Port.Destination ~depth:8 ~max_message_size:64;
          Air_ipc.Port.queuing_port ~name:"RX" ~partition:sat
            ~direction:Air_ipc.Port.Destination ~depth:16 ~max_message_size:64 ];
      channels =
        [ { Air_ipc.Port.source = "ISL_SRC"; destinations = [ "TX0" ] } ] }
  in
  let partition =
    Partition.make ~id:sat ~name:"SAT"
      [ Process.spec ~periodicity:(Process.Periodic 100) ~time_capacity:100
          ~wcet:6 ~base_priority:5 "beacon";
        Process.spec ~base_priority:4 "uplink" ]
  in
  let schedule =
    Schedule.make ~id:(sid 0) ~name:"solo" ~mtf:100
      ~requirements:[ { Schedule.partition = sat; cycle = 100; duration = 100 } ]
      [ { Schedule.partition = sat; offset = 0; duration = 100 } ]
  in
  System.create
    (System.config ~network
       ~partitions:
         [ System.partition_setup partition
             [ Script.periodic_body
                 [ Script.Compute 6;
                   Script.Send_queuing
                     ("ISL_SRC", Printf.sprintf "isl-frame-%d" index) ];
               Script.make
                 [ Script.Receive_queuing ("RX", Air_sim.Time.infinity);
                   Script.Log "isl frame received" ] ] ]
       ~schedules:[ schedule ] ())

let make_constellation () =
  Cluster.create
    ~bus:{ Cluster.latency = isl_latency; bytes_per_tick = 16 }
    ~links:
      (Topology.links ~latency:isl_latency ~gateway:"TX" ~ingress:"RX"
         Topology.Ring ~n:satellites)
    (List.init satellites satellite)

let ticks = 5_000

let () =
  (* Sequential reference run. *)
  let reference = make_constellation () in
  Cluster.run reference ~ticks;
  let ref_stats = Cluster.stats reference in
  Format.printf "sequential: %d ticks, %d ISL frames transferred, %d dropped@."
    ticks ref_stats.Cluster.transferred ref_stats.Cluster.dropped;
  let ref_fp = Fleet.fingerprint reference in
  (* The same constellation across 4 domains. *)
  let cluster = make_constellation () in
  let fleet = Fleet.create ~domains:4 cluster in
  Fleet.run fleet ~ticks;
  Fleet.close fleet;
  print_string (Air_obs.Fleet_stats.to_text (Fleet.stats fleet));
  let fleet_fp = Fleet.fingerprint cluster in
  Format.printf "fingerprints: sequential %s / fleet %s -> %s@." ref_fp
    fleet_fp
    (if String.equal ref_fp fleet_fp then "bit-identical"
     else "DIVERGED (bug!)");
  (* A seeded campaign striking the ISL bus: delay, loss, duplication.
     The verdict and engine fingerprint are domain-count independent. *)
  let spec =
    Air_faults.Campaign.spec ~seed:11 ~horizon:4_000
      ~injections:
        [ { Air_faults.Campaign.at = 610;
            fault =
              Air_faults.Fault.Link_fault
                { fault = Air_faults.Fault.Msg_delay { ticks = 120 } } };
          { at = 1_510;
            fault = Air_faults.Fault.Link_fault { fault = Air_faults.Fault.Msg_loss } };
          { at = 2_310;
            fault =
              Air_faults.Fault.Link_fault
                { fault = Air_faults.Fault.Msg_duplicate } } ]
      ()
  in
  let sequential_run =
    Air_faults.Engine.execute
      ~make:(fun () -> Air_faults.Engine.Cluster (make_constellation (), 0))
      spec
  in
  let fleet_run =
    Fleet.execute_campaign ~domains:3 ~make:make_constellation spec
  in
  Format.printf "campaign: %d injections, fleet fingerprint %s -> %s@."
    (List.length fleet_run.Air_faults.Engine.outcomes)
    fleet_run.Air_faults.Engine.fingerprint
    (if
       String.equal sequential_run.Air_faults.Engine.fingerprint
         fleet_run.Air_faults.Engine.fingerprint
     then "matches the sequential campaign"
     else "DIVERGED (bug!)");
  List.iter
    (fun (o : Air_faults.Engine.outcome) ->
      Format.printf "  [%d] %a: %a@." o.Air_faults.Engine.at
        Air_faults.Fault.pp o.Air_faults.Engine.fault
        Air_faults.Engine.pp_applied o.Air_faults.Engine.applied)
    fleet_run.Air_faults.Engine.outcomes