(* Two physically separated AIR modules — a platform computer and a payload
   computer — exchanging messages over a simulated onboard bus
   (paper Sect. 2.1: interpartition communication is agnostic of whether
   partitions are local or remote; remote partitions imply "data
   transmission through a communication infrastructure").

   The platform's AOCS partition broadcasts attitude data; the payload
   computer's instrument partition blocks on the remote port and stamps
   each frame. The application scripts are exactly what they would be for
   a local channel.

   Run with: dune exec examples/distributed_modules.exe *)

open Air_model
open Air_pos
open Air
open Ident

let pid = Partition_id.make
let sid = Schedule_id.make

let platform () =
  let aocs = pid 0 in
  let network =
    { Air_ipc.Port.ports =
        [ Air_ipc.Port.queuing_port ~name:"ATT_SRC" ~partition:aocs
            ~direction:Air_ipc.Port.Source ~depth:8 ~max_message_size:64;
          (* Gateway towards the bus: an ordinary local channel ends here;
             the communication infrastructure picks frames up. *)
          Air_ipc.Port.queuing_port ~name:"ATT_GW" ~partition:aocs
            ~direction:Air_ipc.Port.Destination ~depth:8 ~max_message_size:64 ];
      channels =
        [ { Air_ipc.Port.source = "ATT_SRC"; destinations = [ "ATT_GW" ] } ] }
  in
  let partition =
    Partition.make ~id:aocs ~name:"AOCS"
      [ Process.spec ~periodicity:(Process.Periodic 250) ~time_capacity:250
          ~wcet:40 ~base_priority:5 "attitude" ]
  in
  let schedule =
    Schedule.make ~id:(sid 0) ~name:"platform" ~mtf:250
      ~requirements:[ { Schedule.partition = aocs; cycle = 250; duration = 250 } ]
      [ { Schedule.partition = aocs; offset = 0; duration = 250 } ]
  in
  System.create
    (System.config ~network
       ~partitions:
         [ System.partition_setup partition
             [ Script.periodic_body
                 [ Script.Compute 40;
                   Script.Send_queuing ("ATT_SRC", "q=[0.1 0.2 0.3 0.9]");
                   Script.Log "attitude broadcast" ] ] ]
       ~schedules:[ schedule ] ())

let payload () =
  let instrument = pid 0 in
  let network =
    { Air_ipc.Port.ports =
        [ Air_ipc.Port.queuing_port ~name:"ATT_IN" ~partition:instrument
            ~direction:Air_ipc.Port.Destination ~depth:8 ~max_message_size:64 ];
      channels = [] }
  in
  let partition =
    Partition.make ~id:instrument ~name:"INSTR"
      [ Process.spec ~base_priority:5 "pointing" ]
  in
  let schedule =
    Schedule.make ~id:(sid 0) ~name:"payload" ~mtf:250
      ~requirements:
        [ { Schedule.partition = instrument; cycle = 250; duration = 250 } ]
      [ { Schedule.partition = instrument; offset = 0; duration = 250 } ]
  in
  System.create
    (System.config ~network
       ~partitions:
         [ System.partition_setup partition
             [ Script.make
                 [ Script.Receive_queuing ("ATT_IN", Air_sim.Time.infinity);
                   Script.Compute 10;
                   Script.Log "pointing updated from remote attitude" ] ] ]
       ~schedules:[ schedule ] ())

let () =
  let cluster =
    Cluster.create
      ~bus:{ Cluster.latency = 12; bytes_per_tick = 4 }
      ~links:
        [ Cluster.link ~from_module:0 ~from_port:"ATT_GW" ~to_module:1
            ~to_port:"ATT_IN" () ]
      [ platform (); payload () ]
  in
  Cluster.run cluster ~ticks:2000;
  let stats = Cluster.stats cluster in
  Format.printf "bus: %d frames transferred, %d dropped, %d in flight@."
    stats.Cluster.transferred stats.Cluster.dropped stats.Cluster.in_flight;
  let plat = (Cluster.systems cluster).(0)
  and pay = (Cluster.systems cluster).(1) in
  let sends =
    Air_sim.Trace.filter
      (fun _ -> function
        | Event.Port_send { port = "ATT_SRC"; _ } -> true
        | _ -> false)
      (System.trace plat)
  in
  let updates =
    Air_sim.Trace.filter
      (fun _ -> function
        | Event.Application_output
            { line = "pointing updated from remote attitude"; _ } ->
          true
        | _ -> false)
      (System.trace pay)
  in
  Format.printf "end-to-end (send at platform -> update at payload):@.";
  List.iteri
    (fun i ((ts, _), (tu, _)) ->
      if i < 5 then
        Format.printf "  frame %d: sent t=%d, applied t=%d (delay %d)@."
          (i + 1) ts tu (tu - ts))
    (List.combine
       (List.filteri (fun i _ -> i < List.length updates) sends)
       updates);
  Format.printf
    "@.the instrument script is identical to the local-channel case — \
     location transparency through the PMK (paper Sect. 2.1)@."
