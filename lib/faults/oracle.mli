(** Containment oracle: replay a campaign's trace against the AIR
    invariants.

    The oracle is a pure function of the completed {!Engine.run} (campaign
    trace + fault-free baseline of the same target). It blames every
    disturbance on the scopes of the injected faults ({!Fault.scope}) and
    reports a finding for anything the injected faults cannot explain:

    - {b deadline containment} — deadline misses only in partitions a
      fault targeted;
    - {b HM containment} — partition- and process-level HM errors only in
      targeted partitions; module-level HM errors only under module-scoped
      faults;
    - {b mode containment} — untargeted partitions end in the same mode as
      in the baseline, and the module only halts under a module-scoped
      fault;
    - {b output continuity} — untargeted partitions keep producing their
      application output (within a configurable tolerance of the baseline
      count);
    - {b action matching} — every HM error event in the trace is answered
      by exactly the action the configured HM tables resolve to, verified
      by replaying the table lookup (including stateful [Log_then]
      thresholds) over the trace;
    - {b interference-curve containment} — under a bandwidth-hog
      campaign, every partition's throttled ticks per telemetry frame
      stay within the modeled slowdown curve
      ([Contention.max_stall_per_access] times its own charged accesses),
      so victims on other lanes degrade only as the model allows;
    - {b guaranteed detection} — faults that must be caught (wild
      accesses, injected module errors, budget-blowing bandwidth hogs)
      were caught. *)

type options = {
  output_tolerance_permille : int;
      (** Minimum fraction (1/1000) of the baseline output count an
          untargeted partition must still produce. Default 900. *)
  output_slack : int;
      (** Absolute grace in output lines on top of the fraction, absorbing
          MTF-boundary truncation effects. Default 2. *)
}

val default_options : options

type finding = {
  check : string;  (** Stable kebab-case name of the violated invariant. *)
  detail : string;
}

type verdict = {
  findings : finding list;
  checks : int;  (** Individual assertions evaluated. *)
}

val passed : verdict -> bool

val check : ?options:options -> Engine.run -> verdict

val pp_finding : Format.formatter -> finding -> unit
