open Air_sim
open Air_model
open Air_model.Ident

type driver_ops = {
  d_system : Air.System.t;
  d_advance : int -> unit;
  d_link_fault : Air.Cluster.bus_fault -> Air_obs.Causal.id list option;
}

type target =
  | Module of Air.System.t
  | Cluster of Air.Cluster.t * int
  | Driver of driver_ops

type applied = Applied | Absorbed of string | Failed of string

type outcome = {
  fault : Fault.t;
  at : Time.t;
  applied : applied;
  detected_at : Time.t option;
  latency : int option;
  action : string option;
  flows : string list;
      (* Correlation ids of the stamped in-flight messages this fault
         touched (rendered with [Causal.to_string]); [] when the target has
         no flow tracker or the fault struck nothing stamped. *)
}

type run = {
  spec : Campaign.spec;
  mtf : int;
  plan : Campaign.injection list;
  target : target;
  baseline : target;
  outcomes : outcome list;
  fingerprint : string;
}

let observed = function
  | Module s -> s
  | Cluster (c, i) -> (Air.Cluster.systems c).(i)
  | Driver d -> d.d_system

let step_target = function
  | Module s -> Air.System.step s
  | Cluster (c, _) -> Air.Cluster.step c
  | Driver d -> d.d_advance 1

(* Turbo: module targets advance through the skip-ahead executive; the
   injection points bound every span, so a campaign's faults still land on
   exactly the planned ticks. Cluster targets keep the per-tick path (the
   bus and its gateways are pumped every tick). *)
type driver = Skip of Air_exec.Engine.t | Per_tick of target

let driver_of ~turbo target =
  match (turbo, target) with
  | true, Module s -> Skip (Air_exec.Engine.create s)
  | true, (Cluster _ | Driver _) | false, _ -> Per_tick target

let advance_driver d ~ticks =
  match d with
  | Skip e -> Air_exec.Engine.advance e ~ticks
  | Per_tick (Driver d) ->
    (* The driver is its own executive (e.g. the windowed fleet engine);
       hand it the whole span so it can barrier only where it must. *)
    d.d_advance ticks
  | Per_tick target ->
    for _ = 1 to ticks do
      step_target target
    done

let system run = observed run.target
let baseline_system run = observed run.baseline

let mtf_of sys =
  let pmk = Air.System.pmk sys in
  (Air.Pmk.schedule pmk (Air.Pmk.current_schedule pmk)).Schedule.mtf

(* --- Injection ---------------------------------------------------------- *)

(* Work queue: planned injections plus delayed-message redeliveries that
   materialize during the run, ordered by (tick, insertion sequence). *)
type act =
  | Inject of Fault.t
  | Redeliver of {
      port : string;
      payload : bytes;
      cid : Air_obs.Causal.id;
          (* The stolen message's correlation id, restored at re-injection
             so the eventual receive still closes the original flow. *)
    }
type pending = { p_at : int; p_seq : int; p_act : act }

let pending_cmp a b =
  match Stdlib.compare a.p_at b.p_at with
  | 0 -> Stdlib.compare a.p_seq b.p_seq
  | c -> c

let bus_fault_of_comm (cf : Fault.comm_fault) =
  match cf with
  | Fault.Msg_loss -> Air.Cluster.Bus_drop
  | Fault.Msg_duplicate -> Air.Cluster.Bus_duplicate
  | Fault.Msg_delay { ticks } -> Air.Cluster.Bus_delay (Stdlib.max 1 ticks)
  | Fault.Msg_corrupt { byte } -> Air.Cluster.Bus_corrupt { byte }
  | Fault.Msg_reorder -> Air.Cluster.Bus_reorder

let of_result = function Ok () -> Applied | Error e -> Failed e

let of_perturb = function
  | Air_ipc.Router.Perturbed -> Applied
  | Air_ipc.Router.No_message -> Absorbed "no message in transit"
  | Air_ipc.Router.Perturb_bad_port -> Failed "bad port for perturbation"

(* Apply one fault; returns the status plus the correlation ids of the
   stamped flows it touched. [schedule_redelivery] receives delayed
   payloads (with their ids, restored at re-injection). *)
let apply_fault target ~schedule_redelivery (fault : Fault.t) =
  let sys = observed target in
  Air.System.note_fault sys ~label:(Fault.label fault);
  let no_flow applied = (applied, []) in
  match fault with
  | Fault.Runaway_start { partition; process } ->
    no_flow
      (of_result
         (Air.System.start_process sys (Partition_id.make partition)
            ~name:process))
  | Fault.Process_stop { partition; process } ->
    no_flow
      (of_result
         (Air.System.stop_process sys (Partition_id.make partition)
            ~name:process))
  | Fault.Partition_restart { partition; mode } ->
    no_flow
      (of_result
         (Air.System.restart_partition sys (Partition_id.make partition) mode))
  | Fault.Schedule_request { schedule } ->
    no_flow
      (of_result (Air.System.request_schedule sys (Schedule_id.make schedule)))
  | Fault.Clock_jitter { partition; ticks } ->
    if ticks <= 0 then no_flow (Failed "clock jitter needs a positive tick count")
    else begin
      Air.System.inject_clock_jitter sys (Partition_id.make partition) ~ticks;
      no_flow Applied
    end
  | Fault.Wild_access { partition; section; offset; write } -> (
    let pid = Partition_id.make partition in
    match Air.System.region_of sys pid section with
    | None -> no_flow (Failed "partition has no region for that section")
    | Some r ->
      (* Past the end of the named region — and past the partition's whole
         footprint if another of its regions sits right behind it, so the
         access is genuinely out-of-partition. *)
      let floor =
        List.fold_left
          (fun m (r : Air_spatial.Memory.region) ->
            Stdlib.max m (Air_spatial.Memory.region_end r))
          (Air_spatial.Memory.region_end r)
          (Air.System.regions_of sys pid)
      in
      let address = floor + Stdlib.max 0 offset in
      let access = if write then Air_spatial.Mmu.Write else Air_spatial.Mmu.Read in
      if Air.System.inject_memory_access sys pid ~access ~address then
        no_flow (Absorbed "access unexpectedly granted")
      else no_flow Applied)
  | Fault.Bit_flip { partition; section; bit; write } -> (
    let pid = Partition_id.make partition in
    match Air.System.region_of sys pid section with
    | None -> no_flow (Failed "partition has no region for that section")
    | Some r ->
      (* Flip one address bit in a legitimate in-region address: low bits
         stay inside the region (contained by construction), high bits
         escape it and must be caught by the MMU walk. *)
      let address = r.Air_spatial.Memory.base lxor (1 lsl (((bit mod 30) + 30) mod 30)) in
      let access = if write then Air_spatial.Mmu.Write else Air_spatial.Mmu.Read in
      if Air.System.inject_memory_access sys pid ~access ~address then
        no_flow (Absorbed "flipped address stayed in-region")
      else no_flow Applied)
  | Fault.Bandwidth_hog { partition; permille } -> (
    let pid = Partition_id.make partition in
    match Air.System.inject_bandwidth_hog sys pid ~permille with
    | None -> no_flow (Failed "contention model not configured")
    | Some _ ->
      (* Applied iff the burst blew the hog's own window budget (the HM
         escalation the detection matcher then looks for); a sub-budget
         burst is absorbed by the contention accounts. *)
      let blown =
        match Air.System.contention sys with
        | Some c -> Air_spatial.Contention.blown c partition
        | None -> false
      in
      if blown then no_flow Applied
      else no_flow (Absorbed "demand within budget"))
  | Fault.Port_fault { port; fault = cf } -> (
    let router = Air.System.router sys in
    let now = Air.System.now sys in
    (* The router records a [Perturb] entry when the struck message is
       stamped; comparing the tracker's total across the call tells whether
       this fault touched a flow (and [last_perturbed] then names it). *)
    let tracker = Air.System.causal sys in
    let before =
      match tracker with None -> 0 | Some c -> Air_obs.Causal.total c
    in
    let flows_touched () =
      match tracker with
      | Some c when Air_obs.Causal.total c > before ->
        [ Air_obs.Causal.to_string (Air_obs.Causal.last_perturbed c) ]
      | Some _ | None -> []
    in
    let perturbed r = (of_perturb r, flows_touched ()) in
    match cf with
    | Fault.Msg_loss -> perturbed (Air_ipc.Router.drop_head ~now router ~port)
    | Fault.Msg_duplicate ->
      perturbed (Air_ipc.Router.duplicate_head ~now router ~port)
    | Fault.Msg_corrupt { byte } ->
      perturbed (Air_ipc.Router.corrupt_head ~now router ~port ~byte)
    | Fault.Msg_reorder ->
      perturbed (Air_ipc.Router.reorder_head ~now router ~port)
    | Fault.Msg_delay { ticks } -> (
      match Air_ipc.Router.steal_head ~now router ~port with
      | None -> no_flow (Absorbed "no message in transit")
      | Some (payload, cid) ->
        schedule_redelivery ~delay:(Stdlib.max 1 ticks) ~port ~cid payload;
        (Applied, flows_touched ())))
  | Fault.Link_fault { fault = cf } -> (
    match target with
    | Module _ -> no_flow (Failed "link fault requires a cluster target")
    | Cluster (c, _) ->
      if Air.Cluster.inject_bus_fault c (bus_fault_of_comm cf) then
        ( Applied,
          List.map Air_obs.Causal.to_string (Air.Cluster.last_perturbed c) )
      else no_flow (Absorbed "no transfer in flight")
    | Driver d -> (
      match d.d_link_fault (bus_fault_of_comm cf) with
      | Some flows -> (Applied, List.map Air_obs.Causal.to_string flows)
      | None -> no_flow (Absorbed "no transfer in flight")))
  | Fault.Module_error { code } ->
    Air.System.inject_module_error sys code
      ~detail:(Printf.sprintf "injected (%s)" (Fault.label fault));
    no_flow Applied

(* --- Detection matching ------------------------------------------------- *)

(* The HM error code an applied fault is expected to surface as, with the
   level at which to look for it. *)
let expected_detection (fault : Fault.t) =
  match fault with
  | Fault.Wild_access { partition; _ } | Fault.Bit_flip { partition; _ } ->
    Some (Error.Memory_violation, `Partition partition)
  | Fault.Runaway_start { partition; _ } ->
    Some (Error.Deadline_missed, `Partition partition)
  | Fault.Clock_jitter { partition; _ } ->
    Some (Error.Deadline_missed, `Partition partition)
  | Fault.Bandwidth_hog { partition; _ } ->
    Some (Error.Temporal_degradation, `Partition partition)
  | Fault.Module_error { code } -> Some (code, `Module)
  | Fault.Process_stop _ | Fault.Partition_restart _ | Fault.Schedule_request _
  | Fault.Port_fault _ | Fault.Link_fault _ ->
    None

(* Match each (applied) injection to the first not-yet-consumed HM error of
   the expected code in the right blame scope, at or after the injection
   instant; then render the action event that answered it. *)
let match_detections sys working =
  let events = Array.of_list (Trace.to_list (Air.System.trace sys)) in
  let consumed = Array.make (Array.length events) false in
  let find_action ~from ~level =
    let rec go i =
      if i >= Array.length events then None
      else begin
        let _, ev = events.(i) in
        match (level, ev) with
        | `Process, Event.Hm_process_action { action; _ } ->
          Some (Format.asprintf "%a" Error.pp_process_action action)
        | `Partition, Event.Hm_partition_action { action; _ } ->
          Some (Format.asprintf "%a" Error.pp_partition_action action)
        | `Module, Event.Hm_module_action { action } ->
          Some (Format.asprintf "%a" Error.pp_module_action action)
        | _, Event.Hm_error _ -> None (* next incident: stop looking *)
        | _ -> go (i + 1)
      end
    in
    go (from + 1)
  in
  List.map
    (fun (fault, at, applied, flows, match_from) ->
      let detected =
        match (applied, expected_detection fault) with
        | (Absorbed _ | Failed _), _ | _, None -> None
        | Applied, Some (code, where) ->
          let rec scan i =
            if i >= Array.length events then None
            else begin
              let time, ev = events.(i) in
              match ev with
              | Event.Hm_error { code = c; partition; level; _ }
                when (not consumed.(i))
                     && time >= match_from
                     && Error.code_equal c code -> (
                let matches =
                  match where with
                  | `Module ->
                    Error.level_equal level Error.Module_level
                    && partition = None
                  | `Partition p -> (
                    match partition with
                    | Some pid -> Partition_id.index pid = p
                    | None -> false)
                in
                if matches then begin
                  consumed.(i) <- true;
                  let level_key =
                    match level with
                    | Error.Process_level -> `Process
                    | Error.Partition_level -> `Partition
                    | Error.Module_level -> `Module
                  in
                  Some (time, find_action ~from:i ~level:level_key)
                end
                else scan (i + 1))
              | _ -> scan (i + 1)
            end
          in
          scan 0
      in
      match detected with
      | None ->
        { fault; at; applied; detected_at = None; latency = None;
          action = None; flows }
      | Some (time, action) ->
        { fault;
          at;
          applied;
          detected_at = Some time;
          latency = Some (Stdlib.max 0 (time - match_from));
          action;
          flows })
    working

(* --- Fingerprint -------------------------------------------------------- *)

let pp_applied ppf = function
  | Applied -> Format.pp_print_string ppf "applied"
  | Absorbed why -> Format.fprintf ppf "absorbed (%s)" why
  | Failed why -> Format.fprintf ppf "failed (%s)" why

let fingerprint_of sys outcomes =
  let buf = Buffer.create 1024 in
  let ppf = Format.formatter_of_buffer buf in
  Format.fprintf ppf "now=%d trace=%d/%d hm=%d violations=%d halt=%s@."
    (Air.System.now sys)
    (Trace.length (Air.System.trace sys))
    (Trace.total (Air.System.trace sys))
    (Air.Hm.error_count (Air.System.hm sys))
    (List.length (Air.System.violations sys))
    (match Air.System.halted sys with None -> "-" | Some r -> r);
  List.iter
    (fun pid ->
      Format.fprintf ppf "mode %a=%a@." Partition_id.pp pid Partition.pp_mode
        (Air.System.partition_mode sys pid))
    (Air.System.partition_ids sys);
  List.iter
    (fun (k, n) -> Format.fprintf ppf "event %s=%d@." k n)
    (Air.System.event_counts sys);
  List.iter
    (fun o ->
      Format.fprintf ppf "outcome %s at=%d %a det=%s act=%s flows=%s@."
        (Fault.label o.fault) o.at pp_applied o.applied
        (match o.detected_at with None -> "-" | Some t -> string_of_int t)
        (match o.action with None -> "-" | Some a -> a)
        (match o.flows with [] -> "-" | fs -> String.concat "," fs))
    outcomes;
  Format.pp_print_flush ppf ();
  Digest.to_hex (Digest.string (Buffer.contents buf))

(* --- Execution ---------------------------------------------------------- *)

let run_target ~turbo make spec =
  let target = make () in
  let driver = driver_of ~turbo target in
  let sys = observed target in
  let mtf = mtf_of sys in
  let plan = Campaign.plan spec ~mtf in
  let seq = ref 0 in
  let queue =
    ref
      (List.map
         (fun (i : Campaign.injection) ->
           incr seq;
           { p_at = i.at; p_seq = !seq; p_act = Inject i.fault })
         plan)
  in
  let cursor = ref 0 in
  let working = ref [] in
  let schedule_redelivery ~delay ~port ~cid payload =
    incr seq;
    let p =
      { p_at = !cursor + delay;
        p_seq = !seq;
        p_act = Redeliver { port; payload; cid } }
    in
    queue := List.merge pending_cmp !queue [ p ]
  in
  let apply p =
    match p.p_act with
    | Inject fault ->
      let applied, flows = apply_fault target ~schedule_redelivery fault in
      working := (fault, p.p_at, applied, flows, Air.System.now sys) :: !working
    | Redeliver { port; payload; cid } ->
      Air.System.note_fault sys
        ~label:(Printf.sprintf "redeliver %s" port);
      ignore (Air.System.deliver_remote ~cid sys ~port payload)
  in
  let continue = ref true in
  while !continue do
    match !queue with
    | p :: rest when p.p_at <= !cursor ->
      queue := rest;
      apply p
    | _ ->
      if !cursor >= spec.horizon then begin
        (* Redeliveries falling beyond the horizon are lost with it. *)
        queue := [];
        continue := false
      end
      else begin
        let next =
          match !queue with
          | [] -> spec.horizon
          | p :: _ -> Stdlib.min spec.horizon p.p_at
        in
        advance_driver driver ~ticks:(next - !cursor);
        cursor := next
      end
  done;
  (target, mtf, plan, List.rev !working)

let execute ?(turbo = false) ~make spec =
  let target, mtf, plan, working = run_target ~turbo make spec in
  let sys = observed target in
  let outcomes = match_detections sys working in
  let baseline = make () in
  advance_driver (driver_of ~turbo baseline) ~ticks:spec.horizon;
  { spec;
    mtf;
    plan;
    target;
    baseline;
    outcomes;
    fingerprint = fingerprint_of sys outcomes }

let detection_latencies run =
  let q = Air_obs.Quantile.create () in
  List.iter
    (fun o ->
      match o.latency with
      | Some l -> Air_obs.Quantile.record q l
      | None -> ())
    run.outcomes;
  q

let reproducible ?turbo ~make spec =
  let a = execute ?turbo ~make spec in
  let b = execute ?turbo ~make spec in
  String.equal a.fingerprint b.fingerprint
