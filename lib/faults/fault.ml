open Air_model

type comm_fault =
  | Msg_loss
  | Msg_duplicate
  | Msg_corrupt of { byte : int }
  | Msg_delay of { ticks : int }
  | Msg_reorder

type t =
  | Runaway_start of { partition : int; process : string }
  | Process_stop of { partition : int; process : string }
  | Partition_restart of { partition : int; mode : Partition.mode }
  | Schedule_request of { schedule : int }
  | Clock_jitter of { partition : int; ticks : int }
  | Wild_access of {
      partition : int;
      section : Air_spatial.Memory.section;
      offset : int;
      write : bool;
    }
  | Bit_flip of {
      partition : int;
      section : Air_spatial.Memory.section;
      bit : int;
      write : bool;
    }
  | Bandwidth_hog of { partition : int; permille : int }
  | Port_fault of { port : string; fault : comm_fault }
  | Link_fault of { fault : comm_fault }
  | Module_error of { code : Error.code }

type scope =
  | Scope_partition of int
  | Scope_port of string
  | Scope_module
  | Scope_benign

let scope = function
  | Runaway_start { partition; _ }
  | Process_stop { partition; _ }
  | Partition_restart { partition; _ }
  | Clock_jitter { partition; _ }
  | Wild_access { partition; _ }
  | Bit_flip { partition; _ }
  | Bandwidth_hog { partition; _ } ->
    Scope_partition partition
  | Port_fault { port; _ } -> Scope_port port
  | Schedule_request _ -> Scope_benign
  | Link_fault _ | Module_error _ -> Scope_module

let guaranteed_detection = function
  | Wild_access _ ->
    (* Out-of-region by construction: the MMU walk must deny it. *)
    Some Error.Memory_violation
  | Module_error { code } -> Some code
  | Bandwidth_hog _ ->
    (* Applied means the hog's own window demand blew its budget, which
       the executive must escalate as temporal degradation. *)
    Some Error.Temporal_degradation
  | Runaway_start _ | Process_stop _ | Partition_restart _
  | Schedule_request _ | Clock_jitter _ | Bit_flip _ | Port_fault _
  | Link_fault _ ->
    None

let comm_name = function
  | Msg_loss -> "loss"
  | Msg_duplicate -> "duplicate"
  | Msg_corrupt _ -> "corrupt"
  | Msg_delay _ -> "delay"
  | Msg_reorder -> "reorder"

let pp_comm ppf = function
  | Msg_loss -> Format.pp_print_string ppf "loss"
  | Msg_duplicate -> Format.pp_print_string ppf "duplicate"
  | Msg_corrupt { byte } -> Format.fprintf ppf "corrupt byte %d" byte
  | Msg_delay { ticks } -> Format.fprintf ppf "delay %d" ticks
  | Msg_reorder -> Format.pp_print_string ppf "reorder"

let section_name = function
  | Air_spatial.Memory.Code -> "code"
  | Air_spatial.Memory.Data -> "data"
  | Air_spatial.Memory.Stack -> "stack"
  | Air_spatial.Memory.Io -> "io"

let mode_name = function
  | Partition.Normal -> "normal"
  | Partition.Idle -> "idle"
  | Partition.Cold_start -> "cold"
  | Partition.Warm_start -> "warm"

let label = function
  | Runaway_start { partition; process } ->
    Printf.sprintf "runaway-start p%d %s" partition process
  | Process_stop { partition; process } ->
    Printf.sprintf "process-stop p%d %s" partition process
  | Partition_restart { partition; mode } ->
    Printf.sprintf "partition-restart p%d %s" partition (mode_name mode)
  | Schedule_request { schedule } ->
    Printf.sprintf "schedule-request s%d" schedule
  | Clock_jitter { partition; ticks } ->
    Printf.sprintf "clock-jitter p%d %d" partition ticks
  | Wild_access { partition; section; offset; write } ->
    Printf.sprintf "wild-access p%d %s+%d %s" partition (section_name section)
      offset
      (if write then "write" else "read")
  | Bit_flip { partition; section; bit; write } ->
    Printf.sprintf "bit-flip p%d %s bit%d %s" partition (section_name section)
      bit
      (if write then "write" else "read")
  | Bandwidth_hog { partition; permille } ->
    Printf.sprintf "bandwidth-hog p%d %d" partition permille
  | Port_fault { port; fault } ->
    Printf.sprintf "message-%s %s" (comm_name fault) port
  | Link_fault { fault } -> Printf.sprintf "link-%s" (comm_name fault)
  | Module_error { code } ->
    Format.asprintf "module-error %a" Error.pp_code code

let pp ppf t = Format.pp_print_string ppf (label t)
