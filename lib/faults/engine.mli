(** Deterministic campaign execution.

    The engine owns the whole lifecycle of one campaign: build the target
    from the caller's factory, expand the spec into a concrete plan
    ({!Campaign.plan} against the target's initial-schedule MTF), advance
    the target tick by tick applying due injections through the fault hooks
    of [Air.System] / [Ipc.Router] / [Air.Cluster], re-inject delayed
    messages when their delay expires, and finally match every injection
    against the Health Monitor record in the trace.

    A fault-free {e baseline} of the same target is run over the same
    horizon; the containment oracle uses it as the reference for mode and
    output-continuity checks. Nothing in the execution path draws
    randomness — all of it is spent in planning — so a spec and a factory
    determine the run bit for bit ({!fingerprint}, {!reproducible}). *)

open Air_sim

(** A custom execution driver: anything that can advance simulated time
    and absorb link faults — the hook through which the parallel fleet
    engine ([Air_fleet]) runs campaigns over whole constellations without
    this engine depending on it. Faults other than [Link_fault] apply to
    [d_system], the observed module, at instants the engine has already
    advanced to (every [d_advance] return is a synchronization point). *)
type driver_ops = {
  d_system : Air.System.t;  (** Observed module (verdicts, redeliveries). *)
  d_advance : int -> unit;  (** Advance the whole target by n ticks. *)
  d_link_fault : Air.Cluster.bus_fault -> Air_obs.Causal.id list option;
      (** Apply a bus fault; [None] when nothing was in flight
          (absorbed), [Some flows] the touched correlation ids. *)
}

(** What a campaign runs against: a single module, a cluster observed
    through one of its modules (faults other than [Link_fault] apply to the
    observed module), or a custom driver. *)
type target =
  | Module of Air.System.t
  | Cluster of Air.Cluster.t * int  (** Observed module index. *)
  | Driver of driver_ops

type applied =
  | Applied  (** The fault took effect. *)
  | Absorbed of string
      (** Applied but absorbed by construction — a bit flip landing inside
          the partition's own region, a message fault finding the channel
          empty. Nothing to detect. *)
  | Failed of string  (** The injection itself was rejected (bad name…). *)

val pp_applied : Format.formatter -> applied -> unit

type outcome = {
  fault : Fault.t;
  at : Time.t;  (** Planned injection tick. *)
  applied : applied;
  detected_at : Time.t option;
      (** Trace time of the first Health Monitor error matching this fault
          (same code, same blame scope), each HM record consumed at most
          once across the campaign. *)
  latency : int option;  (** [detected_at - injection instant]. *)
  action : string option;
      (** Rendered HM action event that answered the detection. *)
  flows : string list;
      (** Correlation ids ({!Air_obs.Causal.to_string}) of the stamped
          in-flight messages this fault touched — port faults name the
          perturbed message, link faults every transfer struck on the bus.
          [[]] when the target has no flow tracker, the fault type does not
          touch messages, or the struck message predated the tracker. *)
}

type run = {
  spec : Campaign.spec;
  mtf : int;
  plan : Campaign.injection list;
  target : target;
  baseline : target;
  outcomes : outcome list;
  fingerprint : string;
      (** Digest of the observed trace, HM counters, final modes and
          outcomes — equal fingerprints mean indistinguishable runs. *)
}

val execute : ?turbo:bool -> make:(unit -> target) -> Campaign.spec -> run
(** [make] must return a fresh, equivalent target on every call (it is
    called twice: campaign + baseline). [turbo] (default [false]) drives
    module targets through the skip-ahead executive
    ({!Air_exec.Engine}): every planned injection tick bounds a span, so
    the faults land on exactly the planned instants and the run —
    fingerprint included — is bit-identical to the per-tick one. Cluster
    targets always run per-tick; driver targets pace themselves. *)

val observed : target -> Air.System.t
(** The module whose trace the campaign is judged against. *)

val system : run -> Air.System.t
val baseline_system : run -> Air.System.t

val detection_latencies : run -> Air_obs.Quantile.t
(** All detection latencies of the run, as a quantile sketch. *)

val reproducible : ?turbo:bool -> make:(unit -> target) -> Campaign.spec -> bool
(** Execute the spec twice against fresh targets and compare fingerprints —
    the determinism clause of the AIR invariants. *)
