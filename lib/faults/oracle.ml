open Air_sim
open Air_model
open Air_model.Ident

type options = { output_tolerance_permille : int; output_slack : int }

let default_options = { output_tolerance_permille = 900; output_slack = 2 }

type finding = { check : string; detail : string }
type verdict = { findings : finding list; checks : int }

let passed v = v.findings = []

let pp_finding ppf f = Format.fprintf ppf "[%s] %s" f.check f.detail

(* Blame set of the campaign: which partitions a fault targeted, and
   whether any fault legitimizes module-wide effects. *)
let blame_of run =
  let sys = Engine.system run in
  let network = Air.System.network sys in
  let port_owner port =
    List.find_opt
      (fun (c : Air_ipc.Port.config) -> String.equal c.Air_ipc.Port.name port)
      network.Air_ipc.Port.ports
    |> Option.map (fun (c : Air_ipc.Port.config) ->
           Partition_id.index c.Air_ipc.Port.partition)
  in
  let scoped = Hashtbl.create 8 in
  let module_scope = ref false in
  List.iter
    (fun (inj : Campaign.injection) ->
      match Fault.scope inj.Campaign.fault with
      | Fault.Scope_partition p -> Hashtbl.replace scoped p ()
      | Fault.Scope_port port -> (
        match port_owner port with
        | Some p -> Hashtbl.replace scoped p ()
        | None -> ())
      | Fault.Scope_module -> module_scope := true
      | Fault.Scope_benign -> ())
    run.Engine.plan;
  (scoped, !module_scope)

let output_counts sys =
  let counts = Hashtbl.create 8 in
  Trace.iter
    (fun _ ev ->
      match ev with
      | Event.Application_output { partition; _ } ->
        let p = Partition_id.index partition in
        Hashtbl.replace counts p (1 + Option.value ~default:0 (Hashtbl.find_opt counts p))
      | _ -> ())
    (Air.System.trace sys);
  counts

(* Replay the configured HM tables over the trace: every HM error event
   must be answered by exactly the action a fresh table lookup resolves to
   — including the stateful [Log_then] thresholds, which the replayed
   [Hm.t] counts identically because it sees the same errors in the same
   order. An error with no same-instant action event before the next error
   is a log-only trap (no resolution happened), skipped on both sides. *)
let replay_actions ~fail ~count sys =
  let tables = Air.System.hm_tables sys in
  let hm = Air.Hm.create ~tables () in
  let events = Array.of_list (Trace.to_list (Air.System.trace sys)) in
  let n = Array.length events in
  Array.iteri
    (fun i (time, ev) ->
      match ev with
      | Event.Hm_error { level; code; partition; process; _ } ->
        (* The action events answering this error: same instant, before
           the next HM error (handling is synchronous). The first of the
           error's level is the resolved action; a [Log_then] unwrap may
           append further same-level events, all part of this incident. *)
        let first_action = ref None in
        let j = ref (i + 1) in
        let stop = ref false in
        while (not !stop) && !j < n do
          let tj, evj = events.(!j) in
          if tj <> time then stop := true
          else begin
            (match evj with
            | Event.Hm_error _ -> stop := true
            | Event.Hm_process_action { process = pr; action }
              when Error.level_equal level Error.Process_level ->
              if !first_action = None then
                first_action := Some (`Process (pr, action))
            | Event.Hm_partition_action { partition = pa; action }
              when Error.level_equal level Error.Partition_level ->
              if !first_action = None then
                first_action := Some (`Partition (pa, action))
            | Event.Hm_module_action { action }
              when Error.level_equal level Error.Module_level ->
              if !first_action = None then first_action := Some (`Module action)
            | _ -> ());
            if not !stop then incr j
          end
        done;
        (match !first_action with
        | None -> () (* log-only trap; nothing was resolved *)
        | Some got -> (
          count ();
          let mismatch expected_pp got_pp =
            fail "action-matching"
              (Format.asprintf
                 "at %a: %a error resolved to %s but the trace applied %s"
                 Time.pp time Error.pp_code code expected_pp got_pp)
          in
          match (got, partition, process) with
          | `Process (pr, action), Some pid, Some prid ->
            let resolved =
              Air.Hm.resolve_process_error hm ~partition:pid
                ~process:(Process_id.index prid) ~code
            in
            if not (Process_id.equal pr prid) then
              fail "action-matching"
                (Format.asprintf
                   "at %a: action applied to %a but the error blamed %a"
                   Time.pp time Process_id.pp pr Process_id.pp prid)
            else if resolved <> action then
              mismatch
                (Format.asprintf "%a" Error.pp_process_action resolved)
                (Format.asprintf "%a" Error.pp_process_action action)
          | `Partition (pa, action), Some pid, _ ->
            let resolved =
              Air.Hm.resolve_partition_error hm ~partition:pid ~code
            in
            if not (Partition_id.equal pa pid) then
              fail "action-matching"
                (Format.asprintf
                   "at %a: action applied to %a but the error blamed %a"
                   Time.pp time Partition_id.pp pa Partition_id.pp pid)
            else if resolved <> action then
              mismatch
                (Format.asprintf "%a" Error.pp_partition_action resolved)
                (Format.asprintf "%a" Error.pp_partition_action action)
          | `Module action, _, _ ->
            let resolved = Air.Hm.resolve_module_error hm ~code in
            if resolved <> action then
              mismatch
                (Format.asprintf "%a" Error.pp_module_action resolved)
                (Format.asprintf "%a" Error.pp_module_action action)
          | (`Process _ | `Partition _), _, _ ->
            fail "action-matching"
              (Format.asprintf
                 "at %a: %a error carries no blamed partition/process"
                 Time.pp time Error.pp_code code)))
      | _ -> ())
    events

let check ?(options = default_options) (run : Engine.run) =
  let sys = Engine.system run in
  let base = Engine.baseline_system run in
  let findings = ref [] in
  let checks = ref 0 in
  let fail check detail = findings := { check; detail } :: !findings in
  let count () = incr checks in
  let scoped, module_scope = blame_of run in
  let excused p = module_scope || Hashtbl.mem scoped p in
  (* Deadline and HM containment: walk the campaign trace. *)
  Trace.iter
    (fun time ev ->
      match ev with
      | Event.Deadline_violation { process; _ } ->
        count ();
        let p = Partition_id.index (Process_id.partition process) in
        if not (excused p) then
          fail "deadline-containment"
            (Format.asprintf
               "deadline miss in untargeted partition %d at %a" p Time.pp
               time)
      | Event.Hm_error { level; code; partition; _ } -> (
        count ();
        match level with
        | Error.Module_level ->
          if not module_scope then
            fail "hm-containment"
              (Format.asprintf
                 "module-level %a at %a without any module-scoped fault"
                 Error.pp_code code Time.pp time)
        | Error.Process_level | Error.Partition_level -> (
          match partition with
          | Some pid ->
            let p = Partition_id.index pid in
            if not (excused p) then
              fail "hm-containment"
                (Format.asprintf
                   "%a in untargeted partition %d at %a" Error.pp_code code p
                   Time.pp time)
          | None ->
            fail "hm-containment"
              (Format.asprintf
                 "%a error without a blamed partition at %a" Error.pp_code
                 code Time.pp time)))
      | _ -> ())
    (Air.System.trace sys);
  (* Mode containment against the baseline. *)
  if not module_scope then
    List.iter
      (fun pid ->
        let p = Partition_id.index pid in
        if not (Hashtbl.mem scoped p) then begin
          count ();
          let got = Air.System.partition_mode sys pid in
          let want = Air.System.partition_mode base pid in
          if not (Partition.mode_equal got want) then
            fail "mode-containment"
              (Format.asprintf
                 "untargeted partition %d ended %a (baseline %a)" p
                 Partition.pp_mode got Partition.pp_mode want)
        end)
      (Air.System.partition_ids sys);
  (* Module survival. *)
  count ();
  (match (Air.System.halted sys, Air.System.halted base) with
  | Some reason, None when not module_scope ->
    fail "halt-containment"
      (Printf.sprintf "module halted (%s) without a module-scoped fault"
         reason)
  | _ -> ());
  (* Output continuity for untargeted partitions. *)
  if not module_scope then begin
    let got = output_counts sys in
    let want = output_counts base in
    List.iter
      (fun pid ->
        let p = Partition_id.index pid in
        if not (Hashtbl.mem scoped p) then begin
          count ();
          let g = Option.value ~default:0 (Hashtbl.find_opt got p) in
          let w = Option.value ~default:0 (Hashtbl.find_opt want p) in
          let need =
            (w * options.output_tolerance_permille / 1000)
            - options.output_slack
          in
          if g < need then
            fail "output-continuity"
              (Printf.sprintf
                 "untargeted partition %d produced %d output lines \
                  (baseline %d, required >= %d)"
                 p g w need)
        end)
      (Air.System.partition_ids sys)
  end;
  (* Interference-curve containment: under a bandwidth-hog campaign,
     victims on other lanes may degrade only within the modeled slowdown
     curve — per telemetry frame, a partition's throttled ticks are
     bounded by [max_stall_per_access * its own charged accesses] (each
     charge accrues at most the curve's largest step). *)
  let hogged =
    List.exists
      (fun (inj : Campaign.injection) ->
        match inj.Campaign.fault with
        | Fault.Bandwidth_hog _ -> true
        | _ -> false)
      run.Engine.plan
  in
  (match (hogged, Air.System.contention sys) with
  | true, Some c ->
    let bound = Air_spatial.Contention.max_stall_per_access c in
    List.iter
      (fun (f : Air_obs.Telemetry.frame) ->
        Array.iter
          (fun (pf : Air_obs.Telemetry.partition_frame) ->
            count ();
            if pf.Air_obs.Telemetry.pf_throttled
               > bound * pf.Air_obs.Telemetry.pf_mem_demand
            then
              fail "interference-curve"
                (Printf.sprintf
                   "partition %d frame %d: %d throttled ticks exceed the \
                    curve bound %d (= %d per access x %d accesses)"
                   pf.Air_obs.Telemetry.pf_partition f.Air_obs.Telemetry.f_index
                   pf.Air_obs.Telemetry.pf_throttled
                   (bound * pf.Air_obs.Telemetry.pf_mem_demand)
                   bound pf.Air_obs.Telemetry.pf_mem_demand))
          f.Air_obs.Telemetry.f_partitions)
      (Air.System.telemetry_frames sys)
  | (true | false), _ -> ());
  (* HM action matching (stateful table replay). *)
  replay_actions ~fail ~count sys;
  (* Guaranteed detection. *)
  List.iter
    (fun (o : Engine.outcome) ->
      match (o.Engine.applied, Fault.guaranteed_detection o.Engine.fault) with
      | Engine.Applied, Some code ->
        count ();
        if o.Engine.detected_at = None then
          fail "detection"
            (Format.asprintf
               "%s (at %a) was applied but no %a reached the health monitor"
               (Fault.label o.Engine.fault)
               Time.pp o.Engine.at Error.pp_code code)
      | _ -> ())
    run.Engine.outcomes;
  { findings = List.rev !findings; checks = !checks }
