open Air_sim

type injection = { at : Time.t; fault : Fault.t }
type rate = { per_mtf_permille : int; template : Fault.t }

type spec = {
  name : string;
  seed : int;
  horizon : int;
  injections : injection list;
  rates : rate list;
}

let spec ?(name = "campaign") ?(injections = []) ?(rates = []) ~seed ~horizon
    () =
  if horizon <= 0 then invalid_arg "Campaign.spec: horizon must be positive";
  { name; seed; horizon; injections; rates }

let plan spec ~mtf =
  if mtf <= 0 then invalid_arg "Campaign.plan: mtf must be positive";
  let root = Rng.create spec.seed in
  let explicit =
    List.filter (fun i -> i.at >= 0 && i.at < spec.horizon) spec.injections
  in
  let rated =
    List.concat_map
      (fun r ->
        (* One substream per rate: the draws of one rate are a pure
           function of (seed, rate position), never of the other rates'
           consumption. *)
        let stream = Rng.split root in
        let permille = Stdlib.min 1000 (Stdlib.max 0 r.per_mtf_permille) in
        let out = ref [] in
        let start = ref 0 in
        while !start < spec.horizon do
          let window = Stdlib.min mtf (spec.horizon - !start) in
          (* Draw the offset unconditionally so the stream advances the
             same way whatever the permille threshold. *)
          let hit = Rng.int stream 1000 < permille in
          let off = Rng.int stream window in
          if hit then
            out := { at = !start + off; fault = r.template } :: !out;
          start := !start + mtf
        done;
        List.rev !out)
      spec.rates
  in
  List.stable_sort
    (fun a b -> Stdlib.compare a.at b.at)
    (explicit @ rated)
