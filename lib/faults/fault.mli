(** Fault taxonomy of the injection campaign engine.

    The paper's dependability claim is containment: TSP must confine
    temporal and spatial faults to the offending partition while the Health
    Monitor applies the configured recovery action (Sect. 2.4, 5). Each
    constructor below models one way a partition, the platform clock, the
    memory system or the communication infrastructure can misbehave; the
    campaign engine ([Engine]) knows how to drive each of them through the
    corresponding [Air.System] / [Ipc.Router] / [Air.Cluster] hook, and the
    containment oracle ([Oracle]) knows which parts of the module each is
    allowed to disturb ({!scope}). *)

open Air_model

(** Communication faults, applicable to an interpartition channel
    ({!Port_fault}) or an inter-module bus link ({!Link_fault}). *)
type comm_fault =
  | Msg_loss
  | Msg_duplicate
  | Msg_corrupt of { byte : int }
      (** All bits of payload byte [byte mod length] inverted. *)
  | Msg_delay of { ticks : int }
  | Msg_reorder

type t =
  (* Temporal faults *)
  | Runaway_start of { partition : int; process : string }
      (** Start a (typically non-autostarted, overrunning) process — the
          paper's prototype fault (Sect. 6). *)
  | Process_stop of { partition : int; process : string }
      (** Stop a process by name: a crashed or operator-killed task. *)
  | Partition_restart of { partition : int; mode : Partition.mode }
      (** Force [Cold_start] / [Warm_start] / [Idle] ([Normal] invalid). *)
  | Schedule_request of { schedule : int }
      (** A mode-based schedule switch request; campaigns model switch
          storms as many of these. *)
  | Clock_jitter of { partition : int; ticks : int }
      (** Lose [ticks] PAL clock-tick announcements for the partition, then
          deliver them as one catch-up burst
          ({!Air.System.inject_clock_jitter}). *)
  (* Spatial faults *)
  | Wild_access of {
      partition : int;
      section : Air_spatial.Memory.section;
      offset : int;  (** Bytes past the end of the section's region. *)
      write : bool;
    }
      (** Deliberate out-of-partition access: always denied by the MMU. *)
  | Bit_flip of {
      partition : int;
      section : Air_spatial.Memory.section;
      bit : int;  (** Address bit (mod 30) flipped in the region base. *)
      write : bool;
    }
      (** Single-event-upset model: an address bit flips. Low bits stay
          inside the partition's region (benign by spatial construction);
          high bits leave it and must be denied. *)
  | Bandwidth_hog of { partition : int; permille : int }
      (** Shared-resource interference: a one-shot burst of memory-bus
          demand charged to the partition's contention account, sized as
          [permille] of its per-window budget (so [1500] blows the budget
          outright). Requires a configured contention model; victims on
          other lanes may only degrade within the modeled slowdown curve
          (checked by the [Oracle]). *)
  (* Communication faults *)
  | Port_fault of { port : string; fault : comm_fault }
      (** Strike a channel of the module-local [Ipc.Router]. *)
  | Link_fault of { fault : comm_fault }
      (** Strike the earliest in-flight transfer of a [Air.Cluster] bus
          (requires a cluster target). *)
  (* Module faults *)
  | Module_error of { code : Error.code }
      (** Report a module-level error (simulated hardware fault, power
          failure, …) straight to the Health Monitor. *)

(** What a fault is allowed to disturb — the containment oracle's unit of
    blame. *)
type scope =
  | Scope_partition of int
      (** Effects must stay within this partition. *)
  | Scope_port of string
      (** Effects must stay within the partition owning the port (resolved
          against the module's port network). *)
  | Scope_module
      (** Module-wide effects are legitimate (configured module action). *)
  | Scope_benign
      (** Must not disturb anything: a legal service request (e.g. a
          schedule switch) that the module is required to absorb. *)

val scope : t -> scope

val guaranteed_detection : t -> Error.code option
(** The Health Monitor error code this fault {e must} raise when its
    application succeeds ([Engine.Applied]); [None] when detection depends
    on runtime circumstances (an overrun only misses a deadline if the
    slack runs out, a flipped address bit may stay in-region, a lost
    message is silent by nature). *)

val label : t -> string
(** Stable compact identifier used in trace markers, reports and JSON. *)

val pp : Format.formatter -> t -> unit
val pp_comm : Format.formatter -> comm_fault -> unit
