type t = {
  run : Engine.run;
  verdict : Oracle.verdict;
  reproducible : bool option;
}

let make ?reproducible run verdict = { run; verdict; reproducible }

let status_of (o : Engine.outcome) =
  Format.asprintf "%a" Engine.pp_applied o.Engine.applied

let rows t =
  List.map
    (fun (o : Engine.outcome) ->
      { Air_vitral.Campaign.at = o.Engine.at;
        label = Fault.label o.Engine.fault;
        status = status_of o;
        detected_at = o.Engine.detected_at;
        latency = o.Engine.latency;
        action = o.Engine.action;
        flows = o.Engine.flows })
    t.run.Engine.outcomes

let latency_summary t =
  let q = Engine.detection_latencies t.run in
  if Air_obs.Quantile.count q = 0 then None
  else
    Some
      { Air_vitral.Campaign.samples = Air_obs.Quantile.count q;
        p50 = Air_obs.Quantile.p50 q;
        p90 = Air_obs.Quantile.p90 q;
        p99 = Air_obs.Quantile.p99 q;
        max = Air_obs.Quantile.max_value q }

let to_text t =
  let spec = t.run.Engine.spec in
  Air_vitral.Campaign.render ~name:spec.Campaign.name ~seed:spec.Campaign.seed
    ~horizon:spec.Campaign.horizon ~mtf:t.run.Engine.mtf
    ~findings:
      (List.map
         (fun f -> Format.asprintf "%a" Oracle.pp_finding f)
         t.verdict.Oracle.findings)
    ?latency:(latency_summary t) ?reproducible:t.reproducible (rows t)

(* --- JSON ---------------------------------------------------------------- *)

let escape s =
  let buf = Buffer.create (String.length s + 2) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\t' -> Buffer.add_string buf "\\t"
      | c when Char.code c < 0x20 ->
        Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

let opt_int = function None -> "null" | Some v -> string_of_int v

let opt_str = function
  | None -> "null"
  | Some s -> Printf.sprintf "\"%s\"" (escape s)

let fault_json (o : Engine.outcome) =
  Printf.sprintf
    "{\"at\":%d,\"label\":\"%s\",\"status\":\"%s\",\"detected_at\":%s,\
     \"latency\":%s,\"action\":%s,\"flows\":[%s]}"
    o.Engine.at
    (escape (Fault.label o.Engine.fault))
    (escape (status_of o))
    (opt_int o.Engine.detected_at)
    (opt_int o.Engine.latency)
    (opt_str o.Engine.action)
    (String.concat ","
       (List.map
          (fun f -> Printf.sprintf "\"%s\"" (escape f))
          o.Engine.flows))

let to_json t =
  let spec = t.run.Engine.spec in
  let buf = Buffer.create 1024 in
  Buffer.add_string buf
    (Printf.sprintf "{\"name\":\"%s\",\"seed\":%d,\"horizon\":%d,\"mtf\":%d"
       (escape spec.Campaign.name)
       spec.Campaign.seed spec.Campaign.horizon t.run.Engine.mtf);
  (match t.reproducible with
  | None -> ()
  | Some b ->
    Buffer.add_string buf
      (Printf.sprintf ",\"deterministic\":%s" (if b then "true" else "false")));
  Buffer.add_string buf ",\"faults\":[";
  Buffer.add_string buf
    (String.concat "," (List.map fault_json t.run.Engine.outcomes));
  Buffer.add_string buf "]";
  (match latency_summary t with
  | None -> Buffer.add_string buf ",\"detection_latency\":null"
  | Some l ->
    Buffer.add_string buf
      (Printf.sprintf
         ",\"detection_latency\":{\"samples\":%d,\"p50\":%d,\"p90\":%d,\
          \"p99\":%d,\"max\":%d}"
         l.Air_vitral.Campaign.samples l.Air_vitral.Campaign.p50
         l.Air_vitral.Campaign.p90 l.Air_vitral.Campaign.p99
         l.Air_vitral.Campaign.max));
  Buffer.add_string buf
    (Printf.sprintf
       ",\"containment\":{\"verdict\":\"%s\",\"checks\":%d,\"findings\":[%s]}}"
       (if Oracle.passed t.verdict then "contained" else "breached")
       t.verdict.Oracle.checks
       (String.concat ","
          (List.map
             (fun f ->
               Printf.sprintf "\"%s\""
                 (escape (Format.asprintf "%a" Oracle.pp_finding f)))
             t.verdict.Oracle.findings)));
  Buffer.contents buf

let document ts =
  Printf.sprintf "{\"schema\":\"air-campaign/1\",\"campaigns\":[%s]}"
    (String.concat "," (List.map to_json ts))
