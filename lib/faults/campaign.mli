(** Deterministic fault-campaign specification and planning.

    A campaign is a named, seeded set of injections against one module (or
    cluster) over a bounded horizon. Injections are given either at
    absolute ticks or as per-MTF rates; {!plan} expands the rates into
    concrete ticks using independent [Sim.Rng] substreams derived from the
    campaign seed with [Rng.split], so:

    - the same seed always yields the same plan (bit-reproducible reports);
    - each rate consumes its own stream — adding or removing one rate never
      perturbs the draws of the others. *)

open Air_sim

type injection = { at : Time.t; fault : Fault.t }

type rate = {
  per_mtf_permille : int;
      (** Probability, in 1/1000, that one injection of [template] lands in
          any given major time frame (clamped to [0, 1000]). *)
  template : Fault.t;
}

type spec = {
  name : string;
  seed : int;
  horizon : int;  (** Ticks to run; injections beyond it are dropped. *)
  injections : injection list;
  rates : rate list;
}

val spec :
  ?name:string ->
  ?injections:injection list ->
  ?rates:rate list ->
  seed:int ->
  horizon:int ->
  unit ->
  spec
(** [name] defaults to ["campaign"]. Raises [Invalid_argument] on a
    non-positive horizon. *)

val plan : spec -> mtf:int -> injection list
(** Concrete injection schedule: explicit injections within the horizon
    plus one draw per rate per MTF window, sorted by tick (stable — equal
    ticks keep specification order, explicit injections first). Raises
    [Invalid_argument] on a non-positive [mtf]. *)
