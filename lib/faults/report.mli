(** Campaign reports: per-fault outcome, detection-latency percentiles and
    containment verdict, in text (via [Vitral.Campaign]) and JSON.

    JSON schema ["air-campaign/1"]:

    {v
    { "schema": "air-campaign/1",
      "campaigns": [
        { "name": "...", "seed": 7, "horizon": 20000, "mtf": 2000,
          "deterministic": true,
          "faults": [
            { "at": 1500, "label": "wild-access p1 data+64 write",
              "status": "applied", "detected_at": 1499,
              "latency": 0, "action": "partition warm restart" }, ... ],
          "detection_latency":
            { "samples": 3, "p50": 0, "p90": 4, "p99": 4, "max": 4 },
          "containment":
            { "verdict": "contained", "checks": 210, "findings": [] } },
        ... ] }
    v}

    [detected_at], [latency] and [action] are [null] for undetected faults;
    [deterministic] is omitted when reproducibility was not checked. The
    rendering is canonical — no whitespace variation, fields always in the
    order above — so byte-equality of two reports is exactly equality of
    their content (the acceptance criterion for seeded reproducibility). *)

type t = {
  run : Engine.run;
  verdict : Oracle.verdict;
  reproducible : bool option;
}

val make : ?reproducible:bool -> Engine.run -> Oracle.verdict -> t

val rows : t -> Air_vitral.Campaign.row list

val latency_summary : t -> Air_vitral.Campaign.latency_summary option
(** [None] when no fault was detected. *)

val to_text : t -> string

val to_json : t -> string
(** One campaign object (no schema wrapper). *)

val document : t list -> string
(** The full ["air-campaign/1"] document. *)
