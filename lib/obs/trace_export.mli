(** Chrome trace-event export of flight-recorder spans.

    Serializes {!Span.span}s (plus optional point events from an event
    sink or trace) to the Trace Event Format understood by
    [chrome://tracing] and Perfetto: a JSON array of events with [ph]
    (phase), [pid], [tid] and [ts] fields. Hand-rolled JSON — no external
    dependency.

    Mapping:
    - span [track] [-1] (module level) → [pid] 0; partition track [i] →
      [pid] [i + 1] (matching the paper's 1-based [P1..Pn] notation);
    - span [sub] [s] → [tid] [s + 1];
    - [Complete] spans → one ["X"] event with [dur = stop - start];
    - [Instant] spans → ["X"] with [dur = 0];
    - [Open] spans → a lone ["B"] event (rendered by Perfetto as a slice
      that did not finish);
    - point events from [~events] → ["X"] with [dur = 0] on [pid] 0,
      [tid] 2 (a dedicated "events" lane);
    - track names from [~tracks] → ["M"] [process_name] metadata.

    Integer clock ticks are exported one-to-one as microsecond timestamps
    ([ts]), the unit the viewers assume. *)

val to_chrome :
  ?tracks:(int * string) list ->
  ?events:(int * string * string) list ->
  Span.span list ->
  string
(** [to_chrome ~tracks ~events spans] renders the trace. [tracks] maps a
    span track index to a display name; [events] is a [(time, name,
    detail)] list of point events. Events are sorted by timestamp. *)
