(** Chrome trace-event export of flight-recorder spans.

    Serializes {!Span.span}s (plus optional point events from an event
    sink or trace) to the Trace Event Format understood by
    [chrome://tracing] and Perfetto: a JSON array of events with [ph]
    (phase), [pid], [tid] and [ts] fields. Hand-rolled JSON — no external
    dependency.

    Mapping:
    - span [track] [-1] (module level) → [pid] 0; partition track [i] →
      [pid] [i + 1] (matching the paper's 1-based [P1..Pn] notation);
    - span [sub] [s] → [tid] [s + 1];
    - [Complete] spans → one ["X"] event with [dur = stop - start];
    - [Instant] spans → ["X"] with [dur = 0];
    - [Open] spans → a lone ["B"] event (rendered by Perfetto as a slice
      that did not finish);
    - point events from [~events] → ["X"] with [dur = 0] on [pid] 0,
      [tid] 2 (a dedicated "events" lane);
    - track names from [~tracks] → ["M"] [process_name] metadata;
    - causal records from [~flows] → flow events: [Send] ["s"],
      [Forward] ["t"], [Receive] ["f"] (binding point ["e"]), all
      sharing [cat] ["ipc"] and the packed correlation id as the Chrome
      flow [id], so the viewer draws arrows from the originating send to
      the consuming receive — across processes, i.e. across modules;
      [Perturb] records → a ["flow.perturb"] instant;
    - [~meta] counters → one ["M"] ["air.meta"] metadata event (bounded
      retention drop counts, so a truncated export is recognizable).

    Integer clock ticks are exported one-to-one as microsecond timestamps
    ([ts]), the unit the viewers assume. *)

val to_chrome :
  ?tracks:(int * string) list ->
  ?events:(int * string * string) list ->
  ?flows:Causal.entry list ->
  ?meta:(string * int) list ->
  Span.span list ->
  string
(** [to_chrome ~tracks ~events ~flows ~meta spans] renders the trace.
    [tracks] maps a span track index to a display name; [events] is a
    [(time, name, detail)] list of point events; [flows] are causal hop
    records; [meta] is a list of named export counters. Events are
    sorted by timestamp. *)
