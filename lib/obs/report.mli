(** Rendering of metrics snapshots: a human-readable table for terminals,
    an s-expression for the config toolchain, and JSON for external
    dashboards.

    The optional [events] argument appends per-kind event totals (as
    produced by {!Event.counts}) to the report. *)

val pp :
  ?events:(string * int) list ->
  Format.formatter ->
  Metrics.snapshot ->
  unit

val to_string : ?events:(string * int) list -> Metrics.snapshot -> string

val to_sexp : ?events:(string * int) list -> Metrics.snapshot -> string
(** [(metrics (counter NAME N) (gauge NAME N)
    (histogram NAME (n N) (total N) (peak N)) (event KIND N) ...)] *)

val to_json : ?events:(string * int) list -> Metrics.snapshot -> string
(** A single JSON object: [{"metrics":{NAME:{"kind":...},...},
    "events":{KIND:N,...}}]. Hand-rolled — no JSON library dependency. *)

val json_escape : string -> string
(** JSON string-content escaping: quotes, backslashes and every control
    character below [0x20] (as [\uXXXX]); shared by every hand-rolled JSON
    writer in the repository. *)
