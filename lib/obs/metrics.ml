(* Metrics registry: monotonic counters, gauges and fixed-bucket
   histograms over integers.

   Design constraints (DESIGN.md §Observability):
   - recording is O(1) and float-free — the PMK clock-tick path records
     into these from inside the simulated ISR;
   - handles are obtained once, at component construction, so the hot
     path never touches the registry's hash table;
   - [counter]/[gauge]/[histogram] are get-or-create: asking for an
     already-registered name returns the existing instrument, letting
     several instances of a component (e.g. one PAL per partition)
     aggregate into shared series. *)

type counter = { mutable count : int }
type gauge = { mutable level : int }

type histogram = {
  bounds : int array;  (* inclusive upper bounds, strictly increasing *)
  buckets : int array; (* length bounds + 1; last bucket is +inf *)
  mutable observations : int;
  mutable total : int;
  mutable peak : int;
}

type instrument =
  | Counter of counter
  | Gauge of gauge
  | Histogram of histogram

type t = {
  instruments : (string, instrument) Hashtbl.t;
  mutable names : string list; (* registration order, newest first *)
}

let create () = { instruments = Hashtbl.create 64; names = [] }

let register t name instrument =
  match Hashtbl.find_opt t.instruments name with
  | Some existing -> existing
  | None ->
    Hashtbl.add t.instruments name instrument;
    t.names <- name :: t.names;
    instrument

let counter t name =
  match register t name (Counter { count = 0 }) with
  | Counter c -> c
  | Gauge _ | Histogram _ ->
    invalid_arg
      (Printf.sprintf "Metrics.counter: %S already registered as another kind"
         name)

let gauge t name =
  match register t name (Gauge { level = 0 }) with
  | Gauge g -> g
  | Counter _ | Histogram _ ->
    invalid_arg
      (Printf.sprintf "Metrics.gauge: %S already registered as another kind"
         name)

(* Powers-of-two buckets cover tick-latency measurements well: most
   observations land in the first few buckets and the tail stays visible. *)
let default_buckets = [| 0; 1; 2; 4; 8; 16; 32; 64; 128; 256; 512; 1024 |]

let histogram ?(buckets = default_buckets) t name =
  Array.iteri
    (fun i b ->
      if i > 0 && b <= buckets.(i - 1) then
        invalid_arg "Metrics.histogram: bucket bounds must strictly increase")
    buckets;
  if Array.length buckets = 0 then
    invalid_arg "Metrics.histogram: need at least one bucket bound";
  let fresh =
    Histogram
      { bounds = Array.copy buckets;
        buckets = Array.make (Array.length buckets + 1) 0;
        observations = 0;
        total = 0;
        peak = 0 }
  in
  match register t name fresh with
  | Histogram h -> h
  | Counter _ | Gauge _ ->
    invalid_arg
      (Printf.sprintf
         "Metrics.histogram: %S already registered as another kind" name)

(* --- Recording (hot path) ----------------------------------------------- *)

let incr c = c.count <- c.count + 1
let add c n = if n > 0 then c.count <- c.count + n
let value c = c.count

let set g v = g.level <- v
let gauge_incr g = g.level <- g.level + 1
let gauge_decr g = g.level <- g.level - 1
let level g = g.level

let observe h x =
  let n = Array.length h.bounds in
  let i = ref 0 in
  while !i < n && x > h.bounds.(!i) do Stdlib.incr i done;
  h.buckets.(!i) <- h.buckets.(!i) + 1;
  h.observations <- h.observations + 1;
  h.total <- h.total + x;
  if x > h.peak then h.peak <- x

(* Counters are monotonic from the observer's point of view; [reset_counter]
   exists solely so the legacy [reset_stats]-style shims keep working. *)
let reset_counter c = c.count <- 0

(* --- Snapshot (off the hot path) ---------------------------------------- *)

type histogram_view = {
  view_bounds : int array;
  view_buckets : int array;
  view_observations : int;
  view_total : int;
  view_peak : int;
}

type value =
  | Counter_value of int
  | Gauge_value of int
  | Histogram_value of histogram_view

type snapshot = (string * value) list

let snapshot t : snapshot =
  List.rev_map
    (fun name ->
      let v =
        match Hashtbl.find t.instruments name with
        | Counter c -> Counter_value c.count
        | Gauge g -> Gauge_value g.level
        | Histogram h ->
          Histogram_value
            { view_bounds = Array.copy h.bounds;
              view_buckets = Array.copy h.buckets;
              view_observations = h.observations;
              view_total = h.total;
              view_peak = h.peak }
      in
      (name, v))
    t.names
  |> List.sort (fun (a, _) (b, _) -> String.compare a b)

let find t name =
  match Hashtbl.find_opt t.instruments name with
  | None -> None
  | Some (Counter c) -> Some (Counter_value c.count)
  | Some (Gauge g) -> Some (Gauge_value g.level)
  | Some (Histogram h) ->
    Some
      (Histogram_value
         { view_bounds = Array.copy h.bounds;
           view_buckets = Array.copy h.buckets;
           view_observations = h.observations;
           view_total = h.total;
           view_peak = h.peak })

let cardinal t = Hashtbl.length t.instruments

(* Percentile estimate from the fixed buckets: the bucket holding the rank
   ceil(observations * num / den) answers with its inclusive upper bound;
   ranks landing in the +inf bucket answer with the exact peak. Integer
   arithmetic only, like everything else here. *)
let view_quantile (h : histogram_view) ~num ~den =
  if num < 0 || den <= 0 || num > den then
    invalid_arg "Metrics.view_quantile: need 0 <= num <= den, den > 0";
  if h.view_observations = 0 then 0
  else begin
    let rank = ((h.view_observations * num) + den - 1) / den in
    let rank = if rank < 1 then 1 else rank in
    let n = Array.length h.view_buckets in
    let rec walk i seen =
      if i >= n then h.view_peak
      else begin
        let seen = seen + h.view_buckets.(i) in
        if seen >= rank then
          if i < Array.length h.view_bounds then
            Stdlib.min h.view_bounds.(i) h.view_peak
          else h.view_peak
        else walk (i + 1) seen
      end
    in
    walk 0 0
  end

let pp_value ppf = function
  | Counter_value n -> Format.fprintf ppf "%d" n
  | Gauge_value n -> Format.fprintf ppf "%d (gauge)" n
  | Histogram_value h ->
    Format.fprintf ppf "n=%d total=%d peak=%d" h.view_observations
      h.view_total h.view_peak
