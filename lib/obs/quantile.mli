(** Mergeable log-bucketed (HDR-style) integer histogram.

    Built for hot-path latency tracking: {!record} is O(1) — a few shifts
    and one array increment, no allocation and no floating point — and
    percentiles are extracted on demand from the bucket counts. Buckets are
    exact below 16 and then log-linear (16 sub-buckets per power-of-two
    octave), bounding the relative error of a quantile estimate to ~6%;
    {!min_value} and {!max_value} are tracked exactly. Values are clamped
    to [\[0, 2{^30})]; negative inputs count as 0. *)

type t

val create : unit -> t

val record : t -> int -> unit
(** O(1); clamps to the trackable range. *)

val count : t -> int
(** Number of recorded values. *)

val total : t -> int
(** Sum of recorded (clamped) values. *)

val min_value : t -> int
(** Exact minimum recorded value; 0 when empty. *)

val max_value : t -> int
(** Exact maximum recorded value; 0 when empty. *)

val value_at : t -> num:int -> den:int -> int
(** Estimated value at quantile [num/den] (e.g. [~num:99 ~den:100] for
    p99): the inclusive upper bound of the bucket holding the rank
    [ceil(count * num / den)], clamped to the exact maximum. 0 when empty.
    Raises [Invalid_argument] unless [0 <= num <= den] and [den > 0]. *)

val p50 : t -> int
val p90 : t -> int
val p99 : t -> int

val merge : into:t -> t -> unit
(** Add [t]'s buckets, count, total and extrema into [into]; [t] itself is
    left unchanged. Merging then extracting equals extracting from the
    union of the recorded values (within bucket resolution). *)

val clear : t -> unit
(** Reset to the empty state, retaining the allocated bucket array. *)

val pp : Format.formatter -> t -> unit
(** ["n=… p50=… p90=… p99=… max=…"]. *)
