(** Progress counters for the parallel fleet engine ([Air_fleet]).

    One record per shard (group of modules advanced by one domain) plus a
    fleet-wide summary frame. The conservative windowed protocol has no
    explicit null messages — a window barrier {e is} the null message,
    granting every shard the same lookahead horizon — so the analogue
    counted here is the {e null window}: a window in which a shard
    executed no tick and moved no message, i.e. pure synchronization
    overhead. The counters are filled by the fleet engine; this module
    only holds and renders them (text summary and JSON,
    schema ["air-fleet-stats/1"]). *)

type shard = {
  sh_id : int;
  sh_modules : int;  (** Modules homed on this shard. *)
  mutable sh_windows : int;  (** Windows participated in. *)
  mutable sh_null_windows : int;
      (** Windows with zero executed ticks and no traffic — pure horizon
          grants (the null-message analogue of the CMB protocol). *)
  mutable sh_stepped : int;  (** Ticks executed through per-tick paths. *)
  mutable sh_skipped : int;  (** Ticks collapsed by skip-ahead. *)
  mutable sh_sent : int;  (** Gateway messages buffered for replay. *)
  mutable sh_delivered : int;  (** Transfers injected into target ports. *)
  mutable sh_dropped : int;  (** Transfers lost to overflow or bad port. *)
  mutable sh_forced : int;
      (** Forced per-tick drains (after a delivery into a forwarding
          gateway, or a pending gateway found at a barrier). *)
  mutable sh_blocked_s : float;  (** Wall-clock seconds at barriers. *)
}

type t

val create : domains:int -> lookahead:int -> modules_per_shard:int array -> t
val shard : t -> int -> shard
val domains : t -> int
val windows : t -> int
val note_window : t -> unit
val note_replayed : t -> int -> unit
(** Count sends replayed onto the bus at a barrier. *)

val to_text : t -> string
(** Multi-line summary frame: fleet totals then one line per shard. *)

val to_json : t -> string
(** Schema ["air-fleet-stats/1"]. *)
