(** Per-MTF telemetry frames with temporal-health watchdogs.

    An accumulator fed from the PMK clock tick (per-partition window
    occupancy, dispatch jitter), the PAL (catch-up depth, deadline misses),
    the Health Monitor (error invocations) and the IPC router (queuing
    delivery latency). The PMK closes a frame at each major-time-frame
    boundary; the closed frame snapshots per-partition utilization,
    idle slack, and p50/p90/p99/max percentiles extracted from {!Quantile}
    histograms, and is retained on a bounded ring (same discipline as
    [Sim.Trace] / {!Span}).

    Watchdogs express temporal-health thresholds evaluated against each
    closed frame; the system layer maps {!breaches} to Health Monitor
    errors so degradation trends are handled by the configured recovery
    actions before (or alongside) hard deadline misses. *)

(** {1 Configuration} *)

(** Thresholds evaluated at frame close; [None] disables a check. *)
type watchdog = {
  min_slack : int option;  (** Breach when frame idle ticks fall below. *)
  max_jitter_p99 : int option;
      (** Breach when the frame's dispatch-jitter p99 exceeds this. *)
  max_catch_up : int option;
      (** Per partition: breach when the deepest PAL catch-up (elapsed
          ticks announced in one go after a preemption gap) exceeds this. *)
  max_deadline_misses : int option;
      (** Per partition: breach when deadline misses in the frame exceed
          this ([Some 0] = any miss breaches). *)
}

val watchdog :
  ?min_slack:int ->
  ?max_jitter_p99:int ->
  ?max_catch_up:int ->
  ?max_deadline_misses:int ->
  unit ->
  watchdog

val no_watchdog : watchdog
(** All thresholds disabled. *)

val watchdog_is_trivial : watchdog -> bool

type config = {
  retention : int option;
      (** Closed frames kept on the ring; [None] retains everything. *)
  default_watchdog : watchdog;
  schedule_watchdogs : (int * watchdog) list;
      (** Per-schedule overrides (schedule index → watchdog); schedules
          without an entry use [default_watchdog]. *)
}

val config :
  ?retention:int ->
  ?default_watchdog:watchdog ->
  ?schedule_watchdogs:(int * watchdog) list ->
  unit ->
  config
(** Raises [Invalid_argument] if [retention <= 0]. *)

val default_config : config
(** Unbounded retention, no watchdogs. *)

(** {1 Frames} *)

type partition_frame = {
  pf_partition : int;
  pf_window_ticks : int;  (** Ticks this partition held the processor. *)
  pf_allotted : int;
      (** Ticks the scheduling table allots it per MTF (0 when absent from
          the frame's schedule). *)
  pf_dispatches : int;
  pf_jitter_max : int;
  pf_catch_up_max : int;
  pf_deadline_misses : int;
  pf_hm_errors : int;
  pf_mem_demand : int;
      (** Bandwidth units the partition charged this frame (contention
          model); 0 when no model is configured. *)
  pf_mem_budget : int;  (** Its per-window bandwidth budget; 0 when none. *)
  pf_throttled : int;
      (** Ticks consumed as interference stall instead of script work. *)
  pf_co_pressure : int;
      (** Sum of the co-running partitions' cache-pressure scores at the
          frame's window open. *)
}

type frame = {
  f_index : int;  (** Monotonic frame number since telemetry started. *)
  f_schedule : int;  (** Schedule index the frame ran under. *)
  f_start : int;  (** First tick of the frame (inclusive). *)
  f_stop : int;  (** End of the frame (exclusive). *)
  f_busy : int;  (** Ticks some partition held the processor. *)
  f_slack : int;  (** Idle ticks — the frame's remaining slack. *)
  f_catch_up_max : int;
  f_deadline_misses : int;
  f_hm_errors : int;
  f_jitter_count : int;
  f_jitter_p50 : int;
  f_jitter_p90 : int;
  f_jitter_p99 : int;
  f_jitter_max : int;
  f_ipc_count : int;
  f_ipc_p50 : int;
  f_ipc_p90 : int;
  f_ipc_p99 : int;
  f_ipc_max : int;
  f_interference : bool;
      (** Whether a contention model fed this frame — gates the
          interference fields in the JSON/CSV exports so contention-free
          exports stay byte-identical to the pre-contention schema. *)
  f_partitions : partition_frame array;
}

val frame_utilization_permille : partition_frame -> int
(** [window_ticks * 1000 / allotted]; 0 when nothing was allotted. *)

(** {1 Accumulator} *)

type t

val create : ?config:config -> partition_count:int -> unit -> t

val configuration : t -> config
val frame_start : t -> int
val current_schedule : t -> int

val prime : t -> schedule:int -> allotted:int array -> unit
(** Set the schedule index and per-partition allotted ticks for the frame
    being accumulated (called at creation and at each schedule switch). *)

(** {2 Hot-path hooks} — O(1), no allocation. *)

val on_tick : t -> active:int option -> unit
(** One system clock tick executed with [active] holding the processor. *)

val on_ticks : t -> active:int option -> count:int -> unit
(** Batch form of {!on_tick}: [count] consecutive ticks, all executed with
    the same [active] occupant. Used by the executive's skip-ahead path to
    replay a quiescent span into the frame accumulator in O(1); equivalent
    to calling {!on_tick} [count] times. No-op when [count <= 0]. *)

val on_tick_idx : t -> active:int -> unit
(** {!on_tick} with the occupant as a plain index, negative meaning idle —
    the per-tick executive uses this form to avoid boxing an option on the
    steady-state tick path. *)

val on_ticks_idx : t -> active:int -> count:int -> unit
(** Index form of {!on_ticks} (negative [active] = idle). *)

val on_dispatch : t -> partition:int -> jitter:int -> unit
(** A dispatch of [partition], [jitter] ticks after its scheduling-table
    window start. *)

val on_catch_up : t -> partition:int -> depth:int -> unit
(** The PAL announced [depth] elapsed ticks in one go (preemption gap). *)

val on_deadline_miss : t -> partition:int -> unit
val on_hm_error : t -> partition:int option -> unit
(** An HM error handler invocation ([None] = module level). *)

val on_ipc_delivery : t -> latency:int -> unit
(** A queuing message received [latency] ticks after it was enqueued. *)

(** {2 Interference hooks} — fed by the executive's contention model. *)

val interference_enabled : t -> bool

val enable_interference : t -> unit
(** Called once at boot when a contention model is attached; from then on
    every closed frame carries [f_interference = true] and the exports
    include the interference columns. *)

val on_mem_demand : t -> partition:int -> cost:int -> unit
(** [cost] bandwidth units charged by the partition. *)

val on_throttled : t -> partition:int -> unit
(** One tick consumed as interference stall instead of script work. *)

val set_interference_window : t -> partition:int -> budget:int -> co_pressure:int -> unit
(** Window-scoped facts for the frame being accumulated — the partition's
    bandwidth budget and the pressure its co-runners carried into the
    window; pushed at boot and at every window rollover (they persist
    across frame close, like the allotted ticks). *)

(** {2 Frame lifecycle} *)

val close_frame :
  t -> now:int -> next_schedule:int -> next_allotted:int array -> frame
(** Snapshot the accumulated frame ending (exclusively) at [now], push it
    onto the retention ring, and reset the accumulator for a frame running
    under [next_schedule]/[next_allotted]. *)

val flush : t -> now:int -> frame option
(** Close a final partial frame at the end of a run; [None] if no tick was
    accumulated since the last close. Watchdogs are not evaluated here —
    a partial frame's slack would trip [min_slack] spuriously. *)

val ticks_accumulated : t -> int
(** Ticks accumulated in the open frame so far. *)

val frames : t -> frame list
(** Retained closed frames, oldest first. *)

val last_frame : t -> frame option
val retained : t -> int
val total_frames : t -> int
(** Frames ever closed, including those evicted from the ring. *)

(** {1 Watchdog evaluation} *)

val watchdog_for : t -> schedule:int -> watchdog
(** The watchdog governing frames of [schedule] (per-schedule override or
    the default). *)

type breach =
  | Slack_below of { slack : int; min_slack : int }
  | Jitter_p99_above of { p99 : int; max_jitter_p99 : int }
  | Catch_up_above of { partition : int; depth : int; max_catch_up : int }
  | Deadline_misses_above of {
      partition : int;
      misses : int;
      max_deadline_misses : int;
    }

val breach_partition : breach -> int option
(** The partition a breach is attributed to; [None] for module-level
    breaches (slack, jitter). *)

val breaches : watchdog -> frame -> breach list
(** Threshold crossings of [frame] against [watchdog]; module-level
    breaches first, then per-partition ones in partition order. The jitter
    check is skipped on frames with no dispatches. *)

val pp_breach : Format.formatter -> breach -> unit

(** {1 Export} *)

val schema : string
(** ["air-telemetry/1"] — stamped into the JSON export. *)

val to_json : frame list -> string
(** One JSON object: [{"schema":…,"frames":[…]}], each frame carrying its
    per-partition array (with derived utilization permille). *)

val csv_header : string

val csv_interference_columns : string
(** Extra header columns appended when the exported frames carry
    interference data (see {!to_csv}). *)

val to_csv : frame list -> string
(** Header plus one row per (frame × partition); frame-level columns are
    repeated on each of the frame's partition rows. When any frame was
    accumulated with a contention model ([f_interference]), the
    interference columns are appended to the header and every row. *)
