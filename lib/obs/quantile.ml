(* Log-bucketed (HDR-style) integer histogram.

   Values are assigned to buckets of geometrically growing width: the first
   16 buckets are exact (values 0..15); afterwards each power-of-two octave
   [2^k, 2^(k+1)) is split into 16 linear sub-buckets, bounding the relative
   quantile-estimation error to 1/16 (~6%). Recording is a handful of shifts
   and one array increment — no allocation, no floating point. *)

(* 16 sub-buckets per octave: values below [2^sub_bits] index directly. *)
let sub_bits = 4
let sub_count = 1 lsl sub_bits (* 16 *)

(* Values are clamped to [0, limit]; ticks in any plausible run fit well
   below 2^30, and the clamp keeps the bucket array small and the index
   arithmetic safe on 32-bit [int] hosts too. *)
let limit = (1 lsl 30) - 1

(* Highest octave: msb of [limit] is bit 29 → octave index 29 - 3 = 26. *)
let bucket_count = ((29 - sub_bits + 2) * sub_count) (* 432 *)

type t = {
  counts : int array;
  mutable count : int; (* recorded values *)
  mutable total : int; (* sum of recorded (clamped) values *)
  mutable min_v : int; (* exact; meaningful when count > 0 *)
  mutable max_v : int;
}

let create () =
  { counts = Array.make bucket_count 0;
    count = 0;
    total = 0;
    min_v = 0;
    max_v = 0 }

(* Most-significant-bit index of [v] (v > 0), by binary search on shifts:
   constant time, no Sys.word_size dependence for our clamped range. *)
let msb v =
  let v = ref v and k = ref 0 in
  if !v lsr 16 > 0 then begin
    k := !k + 16;
    v := !v lsr 16
  end;
  if !v lsr 8 > 0 then begin
    k := !k + 8;
    v := !v lsr 8
  end;
  if !v lsr 4 > 0 then begin
    k := !k + 4;
    v := !v lsr 4
  end;
  if !v lsr 2 > 0 then begin
    k := !k + 2;
    v := !v lsr 2
  end;
  if !v lsr 1 > 0 then k := !k + 1;
  !k

let index_of v =
  if v < sub_count then v
  else begin
    let k = msb v in
    let octave = k - sub_bits + 1 in
    (octave * sub_count) + ((v lsr (k - sub_bits)) - sub_count)
  end

(* Inclusive upper bound of bucket [i] — the quantile estimate returned for
   ranks landing in the bucket (a conservative over-estimate within the
   bucket's ~6% width). *)
let bucket_high i =
  if i < sub_count then i
  else begin
    let octave = i / sub_count and sub = i mod sub_count in
    let k = octave + sub_bits - 1 in
    let width = 1 lsl (k - sub_bits) in
    (((sub_count + sub) * width) + width) - 1
  end

let record t v =
  let v = if v < 0 then 0 else if v > limit then limit else v in
  let i = index_of v in
  t.counts.(i) <- t.counts.(i) + 1;
  if t.count = 0 then begin
    t.min_v <- v;
    t.max_v <- v
  end
  else begin
    if v < t.min_v then t.min_v <- v;
    if v > t.max_v then t.max_v <- v
  end;
  t.count <- t.count + 1;
  t.total <- t.total + v

let count t = t.count
let total t = t.total
let min_value t = if t.count = 0 then 0 else t.min_v
let max_value t = if t.count = 0 then 0 else t.max_v

let value_at t ~num ~den =
  if num < 0 || den <= 0 || num > den then
    invalid_arg "Quantile.value_at: need 0 <= num <= den, den > 0";
  if t.count = 0 then 0
  else begin
    (* Rank of the requested quantile, 1-based: ceil(count * num / den),
       clamped to at least the first recorded value. *)
    let rank = ((t.count * num) + den - 1) / den in
    let rank = if rank < 1 then 1 else rank in
    let rec walk i seen =
      if i >= bucket_count then t.max_v
      else begin
        let seen = seen + t.counts.(i) in
        if seen >= rank then Stdlib.min (bucket_high i) t.max_v
        else walk (i + 1) seen
      end
    in
    walk 0 0
  end

let p50 t = value_at t ~num:1 ~den:2
let p90 t = value_at t ~num:9 ~den:10
let p99 t = value_at t ~num:99 ~den:100

let merge ~into t =
  if t.count > 0 then begin
    Array.iteri
      (fun i c -> if c > 0 then into.counts.(i) <- into.counts.(i) + c)
      t.counts;
    if into.count = 0 then begin
      into.min_v <- t.min_v;
      into.max_v <- t.max_v
    end
    else begin
      if t.min_v < into.min_v then into.min_v <- t.min_v;
      if t.max_v > into.max_v then into.max_v <- t.max_v
    end;
    into.count <- into.count + t.count;
    into.total <- into.total + t.total
  end

let clear t =
  Array.fill t.counts 0 bucket_count 0;
  t.count <- 0;
  t.total <- 0;
  t.min_v <- 0;
  t.max_v <- 0

let pp ppf t =
  Format.fprintf ppf "n=%d p50=%d p90=%d p99=%d max=%d" t.count (p50 t)
    (p90 t) (p99 t) (max_value t)
