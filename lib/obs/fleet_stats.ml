type shard = {
  sh_id : int;
  sh_modules : int;
  mutable sh_windows : int;
  mutable sh_null_windows : int;
  mutable sh_stepped : int;
  mutable sh_skipped : int;
  mutable sh_sent : int;
  mutable sh_delivered : int;
  mutable sh_dropped : int;
  mutable sh_forced : int;
  mutable sh_blocked_s : float;
}

type t = {
  domains : int;
  lookahead : int;
  shards : shard array;
  mutable windows : int;
  mutable replayed : int;
}

let create ~domains ~lookahead ~modules_per_shard =
  { domains;
    lookahead;
    shards =
      Array.mapi
        (fun i n ->
          { sh_id = i;
            sh_modules = n;
            sh_windows = 0;
            sh_null_windows = 0;
            sh_stepped = 0;
            sh_skipped = 0;
            sh_sent = 0;
            sh_delivered = 0;
            sh_dropped = 0;
            sh_forced = 0;
            sh_blocked_s = 0. })
        modules_per_shard;
    windows = 0;
    replayed = 0 }

let shard t i = t.shards.(i)
let domains t = t.domains
let windows t = t.windows
let note_window t = t.windows <- t.windows + 1
let note_replayed t n = t.replayed <- t.replayed + n

let sum f t = Array.fold_left (fun acc sh -> acc + f sh) 0 t.shards

let to_text t =
  let b = Buffer.create 512 in
  Buffer.add_string b
    (Printf.sprintf
       "fleet: %d domain%s, lookahead %d, %d window%s, %d send%s replayed\n"
       t.domains
       (if t.domains = 1 then "" else "s")
       t.lookahead t.windows
       (if t.windows = 1 then "" else "s")
       t.replayed
       (if t.replayed = 1 then "" else "s"));
  Buffer.add_string b
    (Printf.sprintf
       "  totals: stepped %d, skipped %d, delivered %d, dropped %d, forced \
        drains %d\n"
       (sum (fun s -> s.sh_stepped) t)
       (sum (fun s -> s.sh_skipped) t)
       (sum (fun s -> s.sh_delivered) t)
       (sum (fun s -> s.sh_dropped) t)
       (sum (fun s -> s.sh_forced) t));
  Array.iter
    (fun s ->
      Buffer.add_string b
        (Printf.sprintf
           "  shard %d: %d modules, %d/%d null windows, stepped %d, skipped \
            %d, sent %d, blocked %.3fs\n"
           s.sh_id s.sh_modules s.sh_null_windows s.sh_windows s.sh_stepped
           s.sh_skipped s.sh_sent s.sh_blocked_s))
    t.shards;
  Buffer.contents b

let schema = "air-fleet-stats/1"

let to_json t =
  let b = Buffer.create 1024 in
  Buffer.add_string b
    (Printf.sprintf
       "{\"schema\":%S,\"domains\":%d,\"lookahead\":%d,\"windows\":%d,\
        \"replayed\":%d,\"shards\":["
       schema t.domains t.lookahead t.windows t.replayed);
  Array.iteri
    (fun i s ->
      if i > 0 then Buffer.add_char b ',';
      Buffer.add_string b
        (Printf.sprintf
           "{\"id\":%d,\"modules\":%d,\"windows\":%d,\"null_windows\":%d,\
            \"stepped\":%d,\"skipped\":%d,\"sent\":%d,\"delivered\":%d,\
            \"dropped\":%d,\"forced\":%d,\"blocked_s\":%.6f}"
           s.sh_id s.sh_modules s.sh_windows s.sh_null_windows s.sh_stepped
           s.sh_skipped s.sh_sent s.sh_delivered s.sh_dropped s.sh_forced
           s.sh_blocked_s))
    t.shards;
  Buffer.add_string b "]}";
  Buffer.contents b
