(* Causal correlation ids: int-packed origin coordinates + sequence,
   recorded into a preallocated ring of mutable cells so stamping and
   hop recording never allocate. *)

type id = int

let none = 0

let seq_bits = 32
let port_bits = 10
let partition_bits = 8
let module_bits = 8

let seq_mask = (1 lsl seq_bits) - 1
let port_mask = (1 lsl port_bits) - 1
let partition_mask = (1 lsl partition_bits) - 1
let module_mask = (1 lsl module_bits) - 1

let port_shift = seq_bits
let partition_shift = port_shift + port_bits
let module_shift = partition_shift + partition_bits
let valid_bit = 1 lsl (module_shift + module_bits)

let pack ~module_id ~partition ~port ~seq =
  valid_bit
  lor ((module_id land module_mask) lsl module_shift)
  lor ((partition land partition_mask) lsl partition_shift)
  lor ((port land port_mask) lsl port_shift)
  lor (seq land seq_mask)

let is_some id = id <> none
let module_of id = (id lsr module_shift) land module_mask
let partition_of id = (id lsr partition_shift) land partition_mask
let port_of id = (id lsr port_shift) land port_mask
let seq_of id = id land seq_mask
let flow_of id = id land lnot seq_mask

let to_string id =
  if id = none then "-"
  else
    Printf.sprintf "m%d.p%d.q%d#%d" (module_of id) (partition_of id)
      (port_of id) (seq_of id)

let flow_to_string id =
  if id = none then "-"
  else Printf.sprintf "m%d.p%d.q%d" (module_of id) (partition_of id)
    (port_of id)

type perturbation =
  | Drop
  | Duplicate
  | Corrupt
  | Reorder
  | Delay
  | Bus_drop
  | Bus_duplicate
  | Bus_corrupt
  | Bus_reorder
  | Bus_delay

let perturbation_label = function
  | Drop -> "drop"
  | Duplicate -> "duplicate"
  | Corrupt -> "corrupt"
  | Reorder -> "reorder"
  | Delay -> "delay"
  | Bus_drop -> "bus-drop"
  | Bus_duplicate -> "bus-duplicate"
  | Bus_corrupt -> "bus-corrupt"
  | Bus_reorder -> "bus-reorder"
  | Bus_delay -> "bus-delay"

type kind = Send | Receive | Forward | Perturb of perturbation

type entry = { kind : kind; id : id; time : int; track : int }

(* Cell kind codes: 0 send, 1 receive, 2 forward, 3 + perturbation. *)
let code_send = 0
let code_receive = 1
let code_forward = 2
let code_perturb = 3

let perturbation_code = function
  | Drop -> 0
  | Duplicate -> 1
  | Corrupt -> 2
  | Reorder -> 3
  | Delay -> 4
  | Bus_drop -> 5
  | Bus_duplicate -> 6
  | Bus_corrupt -> 7
  | Bus_reorder -> 8
  | Bus_delay -> 9

let perturbation_of_code = function
  | 0 -> Drop
  | 1 -> Duplicate
  | 2 -> Corrupt
  | 3 -> Reorder
  | 4 -> Delay
  | 5 -> Bus_drop
  | 6 -> Bus_duplicate
  | 7 -> Bus_corrupt
  | 8 -> Bus_reorder
  | _ -> Bus_delay

type cell = {
  mutable c_kind : int;
  mutable c_note : int;
  mutable c_id : int;
  mutable c_time : int;
  mutable c_track : int;
}

type t = {
  ring_capacity : int;
  cells : cell array;
  mutable origin : int;
  mutable seq : int;
  mutable len : int;
  mutable head : int;  (* next write position *)
  mutable total_recorded : int;
}

let create ?(capacity = 16384) ?(module_id = 0) () =
  if capacity <= 0 then invalid_arg "Causal.create: capacity must be positive";
  { ring_capacity = capacity;
    cells =
      Array.init capacity (fun _ ->
          { c_kind = 0; c_note = 0; c_id = 0; c_time = 0; c_track = 0 });
    origin = module_id land module_mask;
    seq = 0;
    len = 0;
    head = 0;
    total_recorded = 0 }

let set_module_id t m = t.origin <- m land module_mask
let module_id t = t.origin

let record t ~kind ~note ~id ~time ~track =
  let c = t.cells.(t.head) in
  c.c_kind <- kind;
  c.c_note <- note;
  c.c_id <- id;
  c.c_time <- time;
  c.c_track <- track;
  t.head <- t.head + 1;
  if t.head = t.ring_capacity then t.head <- 0;
  if t.len < t.ring_capacity then t.len <- t.len + 1;
  t.total_recorded <- t.total_recorded + 1

let stamp t ~now ~partition ~port =
  let seq = t.seq land seq_mask in
  t.seq <- t.seq + 1;
  let id = pack ~module_id:t.origin ~partition ~port ~seq in
  record t ~kind:code_send ~note:0 ~id ~time:now ~track:partition;
  id

let receive t ~now ~track id =
  if id <> none then
    record t ~kind:code_receive ~note:0 ~id ~time:now ~track

let forward t ~now id =
  if id <> none then
    record t ~kind:code_forward ~note:0 ~id ~time:now ~track:(-1)

let perturb t ~now ~what id =
  if id <> none then
    record t ~kind:code_perturb ~note:(perturbation_code what) ~id ~time:now
      ~track:(-1)

let entry_of_cell c =
  let kind =
    if c.c_kind = code_send then Send
    else if c.c_kind = code_receive then Receive
    else if c.c_kind = code_forward then Forward
    else Perturb (perturbation_of_code c.c_note)
  in
  { kind; id = c.c_id; time = c.c_time; track = c.c_track }

(* Oldest retained cell sits at [head - len] (mod capacity). *)
let entries t =
  let start = (t.head - t.len + t.ring_capacity) mod t.ring_capacity in
  List.init t.len (fun i ->
      entry_of_cell t.cells.((start + i) mod t.ring_capacity))

let last_perturbed t =
  let rec scan i =
    if i >= t.len then none
    else
      let idx = (t.head - 1 - i + (2 * t.ring_capacity)) mod t.ring_capacity in
      let c = t.cells.(idx) in
      if c.c_kind = code_perturb then c.c_id else scan (i + 1)
  in
  scan 0

let length t = t.len
let total t = t.total_recorded
let dropped t = t.total_recorded - t.len
let capacity t = t.ring_capacity

let clear t =
  t.len <- 0;
  t.head <- 0;
  t.total_recorded <- 0
