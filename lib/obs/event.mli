(** Structured-event sink: a bounded ring of recent events plus per-kind
    occurrence counts.

    The sink is polymorphic in its payload so each layer can attach its own
    typed event (e.g. [Air_model.Event.t] at the system level) without the
    observability library depending on model types. Recording is O(1): one
    array store, one hash-table bump. Unlike a trace, the per-kind totals
    never decay — only the payload ring is bounded. *)

type 'a entry = { time : int; kind : string; payload : 'a }

type 'a t

val create : ?capacity:int -> unit -> 'a t
(** [capacity] bounds the retained payload ring (default 256); raises
    [Invalid_argument] when non-positive. *)

val record : 'a t -> time:int -> kind:string -> 'a -> unit

val total : 'a t -> int
(** Events recorded over the sink's lifetime, not just those retained. *)

val count : 'a t -> string -> int

val counts : 'a t -> (string * int) list
(** Per-kind totals, sorted by kind for stable reports. *)

val recent : 'a t -> 'a entry list
(** Oldest-first list of the retained tail of the event stream. *)

val clear : 'a t -> unit
val pp_counts : Format.formatter -> 'a t -> unit
