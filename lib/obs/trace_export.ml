(* Chrome trace-event export: spans and point events to the JSON array
   form of the Trace Event Format (chrome://tracing / Perfetto). *)

let esc = Report.json_escape

let pid_of_track track = track + 1
let tid_of_sub sub = sub + 1

(* The dedicated lane for point events taken from the system event trace
   (they carry no track attribution of their own). *)
let events_pid = 0
let events_tid = 2

type row = { ts : int; order : int; body : string }

let metadata_rows tracks =
  List.concat_map
    (fun (track, name) ->
      let pid = pid_of_track track in
      [ { ts = 0;
          order = -2;
          body =
            Printf.sprintf
              "{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":%d,\"tid\":0,\
               \"args\":{\"name\":\"%s\"}}"
              pid (esc name) } ])
    tracks

let args_field detail =
  if String.equal detail "" then ""
  else Printf.sprintf ",\"args\":{\"detail\":\"%s\"}" (esc detail)

let span_row (s : Span.span) =
  let pid = pid_of_track s.Span.track in
  let tid = tid_of_sub s.Span.sub in
  match s.Span.phase with
  | Span.Complete | Span.Instant ->
    { ts = s.Span.start;
      order = 0;
      body =
        Printf.sprintf
          "{\"name\":\"%s\",\"ph\":\"X\",\"ts\":%d,\"dur\":%d,\"pid\":%d,\
           \"tid\":%d%s}"
          (esc s.Span.name) s.Span.start
          (Stdlib.max 0 (s.Span.stop - s.Span.start))
          pid tid
          (args_field s.Span.detail) }
  | Span.Open ->
    { ts = s.Span.start;
      order = 1;
      body =
        Printf.sprintf
          "{\"name\":\"%s\",\"ph\":\"B\",\"ts\":%d,\"pid\":%d,\"tid\":%d%s}"
          (esc s.Span.name) s.Span.start pid tid
          (args_field s.Span.detail) }

let event_row (time, name, detail) =
  { ts = time;
    order = 0;
    body =
      Printf.sprintf
        "{\"name\":\"%s\",\"ph\":\"X\",\"ts\":%d,\"dur\":0,\"pid\":%d,\
         \"tid\":%d%s}"
        (esc name) time events_pid events_tid (args_field detail) }

(* Causal hops map onto Chrome flow events: the origin [Send] starts a
   flow ("s"), gateway [Forward]s are intermediate steps ("t"), the final
   [Receive] ends it ("f" with binding point "e" so the arrow lands on
   the enclosing slice). Matching relies on the shared [id] + [cat]
   fields, which is exactly what the packed correlation id provides.
   Perturbations render as zero-duration instants so a faulted flow is
   visibly annotated where the fault hit. *)
let flow_row (e : Causal.entry) =
  let pid = pid_of_track e.Causal.track in
  let label = Causal.to_string e.Causal.id in
  match e.Causal.kind with
  | Causal.Send ->
    Some
      { ts = e.Causal.time;
        order = 2;
        body =
          Printf.sprintf
            "{\"name\":\"flow\",\"cat\":\"ipc\",\"ph\":\"s\",\"ts\":%d,\
             \"pid\":%d,\"tid\":1,\"id\":%d,\"args\":{\"flow\":\"%s\"}}"
            e.Causal.time pid e.Causal.id (esc label) }
  | Causal.Forward ->
    Some
      { ts = e.Causal.time;
        order = 2;
        body =
          Printf.sprintf
            "{\"name\":\"flow\",\"cat\":\"ipc\",\"ph\":\"t\",\"ts\":%d,\
             \"pid\":%d,\"tid\":1,\"id\":%d,\"args\":{\"flow\":\"%s\"}}"
            e.Causal.time pid e.Causal.id (esc label) }
  | Causal.Receive ->
    Some
      { ts = e.Causal.time;
        order = 2;
        body =
          Printf.sprintf
            "{\"name\":\"flow\",\"cat\":\"ipc\",\"ph\":\"f\",\"bp\":\"e\",\
             \"ts\":%d,\"pid\":%d,\"tid\":1,\"id\":%d,\
             \"args\":{\"flow\":\"%s\"}}"
            e.Causal.time pid e.Causal.id (esc label) }
  | Causal.Perturb what ->
    Some
      { ts = e.Causal.time;
        order = 2;
        body =
          Printf.sprintf
            "{\"name\":\"flow.perturb\",\"ph\":\"X\",\"ts\":%d,\"dur\":0,\
             \"pid\":%d,\"tid\":1,\"args\":{\"detail\":\"%s\",\
             \"flow\":\"%s\"}}"
            e.Causal.time pid
            (esc (Causal.perturbation_label what))
            (esc label) }

(* Export-level counters (e.g. spans/records evicted by bounded
   retention) ride along as one metadata event so a truncated trace is
   distinguishable from a complete one. *)
let meta_row meta =
  let args =
    String.concat ","
      (List.map (fun (k, v) -> Printf.sprintf "\"%s\":%d" (esc k) v) meta)
  in
  { ts = 0;
    order = -1;
    body =
      Printf.sprintf
        "{\"name\":\"air.meta\",\"ph\":\"M\",\"pid\":0,\"tid\":0,\
         \"args\":{%s}}"
        args }

let to_chrome ?(tracks = []) ?(events = []) ?(flows = []) ?(meta = []) spans =
  let rows =
    metadata_rows tracks
    @ (if meta = [] then [] else [ meta_row meta ])
    @ List.map span_row spans
    @ List.map event_row events
    @ List.filter_map flow_row flows
  in
  let rows =
    List.stable_sort
      (fun a b ->
        match Stdlib.compare a.order b.order with
        | 0 -> Stdlib.compare a.ts b.ts
        | c -> c)
      rows
  in
  let buf = Buffer.create (4096 + (List.length rows * 96)) in
  Buffer.add_string buf "[";
  List.iteri
    (fun i row ->
      if i > 0 then Buffer.add_string buf ",";
      Buffer.add_string buf "\n";
      Buffer.add_string buf row.body)
    rows;
  Buffer.add_string buf "\n]\n";
  Buffer.contents buf
