(* Per-MTF telemetry frames.

   The accumulator is fed from the PMK clock tick (window occupancy,
   dispatch jitter), the PAL (catch-up depth, deadline misses), the Health
   Monitor (error invocations) and the IPC router (delivery latency). The
   PMK closes the frame at each MTF boundary; closing extracts percentiles
   from the live quantile histograms, snapshots the per-partition counters
   into an immutable [frame], pushes it onto a bounded ring (same retention
   discipline as [Sim.Trace] / [Obs.Span]) and resets the accumulator for
   the next frame. *)

(* --- Watchdog configuration -------------------------------------------- *)

type watchdog = {
  min_slack : int option;
  max_jitter_p99 : int option;
  max_catch_up : int option;
  max_deadline_misses : int option;
}

let watchdog ?min_slack ?max_jitter_p99 ?max_catch_up ?max_deadline_misses
    () =
  { min_slack; max_jitter_p99; max_catch_up; max_deadline_misses }

let no_watchdog = watchdog ()

let watchdog_is_trivial w =
  w.min_slack = None && w.max_jitter_p99 = None && w.max_catch_up = None
  && w.max_deadline_misses = None

type config = {
  retention : int option;
  default_watchdog : watchdog;
  schedule_watchdogs : (int * watchdog) list;
}

let config ?retention ?(default_watchdog = no_watchdog)
    ?(schedule_watchdogs = []) () =
  (match retention with
  | Some c when c <= 0 ->
    invalid_arg "Telemetry.config: retention must be positive"
  | Some _ | None -> ());
  { retention; default_watchdog; schedule_watchdogs }

let default_config = config ()

(* --- Frames ------------------------------------------------------------- *)

type partition_frame = {
  pf_partition : int;
  pf_window_ticks : int;
  pf_allotted : int;
  pf_dispatches : int;
  pf_jitter_max : int;
  pf_catch_up_max : int;
  pf_deadline_misses : int;
  pf_hm_errors : int;
  (* Interference fields, meaningful only when the frame's [f_interference]
     flag is set (a contention model was configured); all zero otherwise
     and omitted from the exports, keeping them byte-identical to the
     pre-contention schema. *)
  pf_mem_demand : int;
  pf_mem_budget : int;
  pf_throttled : int;
  pf_co_pressure : int;
}

type frame = {
  f_index : int;
  f_schedule : int;
  f_start : int;
  f_stop : int;
  f_busy : int;
  f_slack : int;
  f_catch_up_max : int;
  f_deadline_misses : int;
  f_hm_errors : int;
  f_jitter_count : int;
  f_jitter_p50 : int;
  f_jitter_p90 : int;
  f_jitter_p99 : int;
  f_jitter_max : int;
  f_ipc_count : int;
  f_ipc_p50 : int;
  f_ipc_p90 : int;
  f_ipc_p99 : int;
  f_ipc_max : int;
  f_interference : bool;
  f_partitions : partition_frame array;
}

let frame_utilization_permille pf =
  if pf.pf_allotted <= 0 then 0
  else (pf.pf_window_ticks * 1000) / pf.pf_allotted

(* --- Accumulator -------------------------------------------------------- *)

type t = {
  cfg : config;
  partition_count : int;
  closed : frame Queue.t;
  mutable total_frames : int;
  mutable cur_schedule : int;
  mutable cur_start : int;
  mutable cur_busy : int;
  mutable cur_idle : int;
  mutable cur_catch_up_max : int;
  mutable cur_deadline_misses : int;
  mutable cur_hm_errors : int;
  window_ticks : int array;
  allotted : int array;
  dispatches : int array;
  jitter_max : int array;
  catch_up_max : int array;
  deadline_misses : int array;
  hm_errors : int array;
  jitter : Quantile.t;
  ipc : Quantile.t;
  mutable interference : bool;
      (* Set once at boot when a contention model is attached; gates the
         interference fields in frames and exports. *)
  mem_demand : int array;
  mem_budget : int array;
  throttled : int array;
  co_pressure : int array;
}

let create ?(config = default_config) ~partition_count () =
  if partition_count < 0 then
    invalid_arg "Telemetry.create: negative partition count";
  let n = Stdlib.max 1 partition_count in
  { cfg = config;
    partition_count;
    closed = Queue.create ();
    total_frames = 0;
    cur_schedule = 0;
    cur_start = 0;
    cur_busy = 0;
    cur_idle = 0;
    cur_catch_up_max = 0;
    cur_deadline_misses = 0;
    cur_hm_errors = 0;
    window_ticks = Array.make n 0;
    allotted = Array.make n 0;
    dispatches = Array.make n 0;
    jitter_max = Array.make n 0;
    catch_up_max = Array.make n 0;
    deadline_misses = Array.make n 0;
    hm_errors = Array.make n 0;
    jitter = Quantile.create ();
    ipc = Quantile.create ();
    interference = false;
    mem_demand = Array.make n 0;
    mem_budget = Array.make n 0;
    throttled = Array.make n 0;
    co_pressure = Array.make n 0 }

let configuration t = t.cfg
let frame_start t = t.cur_start
let current_schedule t = t.cur_schedule
let total_frames t = t.total_frames
let ticks_accumulated t = t.cur_busy + t.cur_idle

let prime t ~schedule ~allotted =
  t.cur_schedule <- schedule;
  Array.iteri
    (fun i a -> if i < Array.length t.allotted then t.allotted.(i) <- a)
    allotted

(* --- Hot-path hooks ----------------------------------------------------- *)

(* The index variants take the active partition as a plain integer
   (negative = idle) so per-tick callers need not box an option. *)
let on_tick_idx t ~active =
  if active >= 0 then begin
    t.window_ticks.(active) <- t.window_ticks.(active) + 1;
    t.cur_busy <- t.cur_busy + 1
  end
  else t.cur_idle <- t.cur_idle + 1

let on_ticks_idx t ~active ~count =
  if count > 0 then
    if active >= 0 then begin
      t.window_ticks.(active) <- t.window_ticks.(active) + count;
      t.cur_busy <- t.cur_busy + count
    end
    else t.cur_idle <- t.cur_idle + count

let on_tick t ~active =
  on_tick_idx t ~active:(match active with Some i -> i | None -> -1)

let on_ticks t ~active ~count =
  on_ticks_idx t ~active:(match active with Some i -> i | None -> -1) ~count

let on_dispatch t ~partition ~jitter =
  t.dispatches.(partition) <- t.dispatches.(partition) + 1;
  Quantile.record t.jitter jitter;
  if jitter > t.jitter_max.(partition) then t.jitter_max.(partition) <- jitter

let on_catch_up t ~partition ~depth =
  if depth > t.catch_up_max.(partition) then
    t.catch_up_max.(partition) <- depth;
  if depth > t.cur_catch_up_max then t.cur_catch_up_max <- depth

let on_deadline_miss t ~partition =
  t.deadline_misses.(partition) <- t.deadline_misses.(partition) + 1;
  t.cur_deadline_misses <- t.cur_deadline_misses + 1

let on_hm_error t ~partition =
  t.cur_hm_errors <- t.cur_hm_errors + 1;
  match partition with
  | Some i -> t.hm_errors.(i) <- t.hm_errors.(i) + 1
  | None -> ()

let on_ipc_delivery t ~latency = Quantile.record t.ipc latency

(* Interference accounting, fed by the executive's contention model. *)

let interference_enabled t = t.interference
let enable_interference t = t.interference <- true

let on_mem_demand t ~partition ~cost =
  t.mem_demand.(partition) <- t.mem_demand.(partition) + cost

let on_throttled t ~partition =
  t.throttled.(partition) <- t.throttled.(partition) + 1

(* Budget and co-runner pressure are window-scoped facts, not counters:
   pushed at every window open (and at boot) and carried into the frame
   closing that window, like [allotted]. *)
let set_interference_window t ~partition ~budget ~co_pressure =
  t.mem_budget.(partition) <- budget;
  t.co_pressure.(partition) <- co_pressure

(* --- Frame close -------------------------------------------------------- *)

let push_frame t frame =
  Queue.push frame t.closed;
  (match t.cfg.retention with
  | Some cap ->
    while Queue.length t.closed > cap do
      ignore (Queue.pop t.closed)
    done
  | None -> ());
  t.total_frames <- t.total_frames + 1

let close_frame t ~now ~next_schedule ~next_allotted =
  let partitions =
    Array.init t.partition_count (fun i ->
        { pf_partition = i;
          pf_window_ticks = t.window_ticks.(i);
          pf_allotted = t.allotted.(i);
          pf_dispatches = t.dispatches.(i);
          pf_jitter_max = t.jitter_max.(i);
          pf_catch_up_max = t.catch_up_max.(i);
          pf_deadline_misses = t.deadline_misses.(i);
          pf_hm_errors = t.hm_errors.(i);
          pf_mem_demand = t.mem_demand.(i);
          pf_mem_budget = t.mem_budget.(i);
          pf_throttled = t.throttled.(i);
          pf_co_pressure = t.co_pressure.(i) })
  in
  let frame =
    { f_index = t.total_frames;
      f_schedule = t.cur_schedule;
      f_start = t.cur_start;
      f_stop = now;
      f_busy = t.cur_busy;
      f_slack = t.cur_idle;
      f_catch_up_max = t.cur_catch_up_max;
      f_deadline_misses = t.cur_deadline_misses;
      f_hm_errors = t.cur_hm_errors;
      f_jitter_count = Quantile.count t.jitter;
      f_jitter_p50 = Quantile.p50 t.jitter;
      f_jitter_p90 = Quantile.p90 t.jitter;
      f_jitter_p99 = Quantile.p99 t.jitter;
      f_jitter_max = Quantile.max_value t.jitter;
      f_ipc_count = Quantile.count t.ipc;
      f_ipc_p50 = Quantile.p50 t.ipc;
      f_ipc_p90 = Quantile.p90 t.ipc;
      f_ipc_p99 = Quantile.p99 t.ipc;
      f_ipc_max = Quantile.max_value t.ipc;
      f_interference = t.interference;
      f_partitions = partitions }
  in
  push_frame t frame;
  (* Reset the accumulator for the next frame. *)
  t.cur_schedule <- next_schedule;
  t.cur_start <- now;
  t.cur_busy <- 0;
  t.cur_idle <- 0;
  t.cur_catch_up_max <- 0;
  t.cur_deadline_misses <- 0;
  t.cur_hm_errors <- 0;
  Array.fill t.window_ticks 0 (Array.length t.window_ticks) 0;
  Array.fill t.dispatches 0 (Array.length t.dispatches) 0;
  Array.fill t.jitter_max 0 (Array.length t.jitter_max) 0;
  Array.fill t.catch_up_max 0 (Array.length t.catch_up_max) 0;
  Array.fill t.deadline_misses 0 (Array.length t.deadline_misses) 0;
  Array.fill t.hm_errors 0 (Array.length t.hm_errors) 0;
  Array.fill t.mem_demand 0 (Array.length t.mem_demand) 0;
  Array.fill t.throttled 0 (Array.length t.throttled) 0;
  Quantile.clear t.jitter;
  Quantile.clear t.ipc;
  Array.iteri
    (fun i a -> if i < Array.length t.allotted then t.allotted.(i) <- a)
    next_allotted;
  frame

let flush t ~now =
  if ticks_accumulated t = 0 then None
  else
    Some
      (close_frame t ~now ~next_schedule:t.cur_schedule
         ~next_allotted:(Array.copy t.allotted))

let frames t = List.of_seq (Queue.to_seq t.closed)
let retained t = Queue.length t.closed
let last_frame t = Queue.fold (fun _ f -> Some f) None t.closed

(* --- Watchdogs ---------------------------------------------------------- *)

let watchdog_for t ~schedule =
  match List.assoc_opt schedule t.cfg.schedule_watchdogs with
  | Some w -> w
  | None -> t.cfg.default_watchdog

type breach =
  | Slack_below of { slack : int; min_slack : int }
  | Jitter_p99_above of { p99 : int; max_jitter_p99 : int }
  | Catch_up_above of { partition : int; depth : int; max_catch_up : int }
  | Deadline_misses_above of {
      partition : int;
      misses : int;
      max_deadline_misses : int;
    }

let breach_partition = function
  | Slack_below _ | Jitter_p99_above _ -> None
  | Catch_up_above { partition; _ } | Deadline_misses_above { partition; _ }
    ->
    Some partition

let pp_breach ppf = function
  | Slack_below { slack; min_slack } ->
    Format.fprintf ppf "slack %d < min %d" slack min_slack
  | Jitter_p99_above { p99; max_jitter_p99 } ->
    Format.fprintf ppf "jitter p99 %d > max %d" p99 max_jitter_p99
  | Catch_up_above { partition; depth; max_catch_up } ->
    Format.fprintf ppf "p%d catch-up %d > max %d" partition depth
      max_catch_up
  | Deadline_misses_above { partition; misses; max_deadline_misses } ->
    Format.fprintf ppf "p%d deadline misses %d > max %d" partition misses
      max_deadline_misses

let breaches w frame =
  let acc = ref [] in
  (match w.max_jitter_p99 with
  | Some m when frame.f_jitter_count > 0 && frame.f_jitter_p99 > m ->
    acc := Jitter_p99_above { p99 = frame.f_jitter_p99; max_jitter_p99 = m }
           :: !acc
  | Some _ | None -> ());
  (match w.min_slack with
  | Some m when frame.f_slack < m ->
    acc := Slack_below { slack = frame.f_slack; min_slack = m } :: !acc
  | Some _ | None -> ());
  (* Per-partition thresholds, reported in partition order. *)
  Array.iter
    (fun pf ->
      (match w.max_deadline_misses with
      | Some m when pf.pf_deadline_misses > m ->
        acc :=
          Deadline_misses_above
            { partition = pf.pf_partition;
              misses = pf.pf_deadline_misses;
              max_deadline_misses = m }
          :: !acc
      | Some _ | None -> ());
      match w.max_catch_up with
      | Some m when pf.pf_catch_up_max > m ->
        acc :=
          Catch_up_above
            { partition = pf.pf_partition;
              depth = pf.pf_catch_up_max;
              max_catch_up = m }
          :: !acc
      | Some _ | None -> ())
    frame.f_partitions;
  List.rev !acc

(* --- Export ------------------------------------------------------------- *)

let schema = "air-telemetry/1"

(* The interference fields are appended only for frames accumulated with
   a contention model attached, so exports from a module without one stay
   byte-identical to the pre-contention schema. *)
let json_partition b ~interference pf =
  Buffer.add_string b
    (Printf.sprintf
       "{\"partition\":%d,\"window_ticks\":%d,\"allotted\":%d,\
        \"utilization_permille\":%d,\"dispatches\":%d,\"jitter_max\":%d,\
        \"catch_up_max\":%d,\"deadline_misses\":%d,\"hm_errors\":%d"
       pf.pf_partition pf.pf_window_ticks pf.pf_allotted
       (frame_utilization_permille pf)
       pf.pf_dispatches pf.pf_jitter_max pf.pf_catch_up_max
       pf.pf_deadline_misses pf.pf_hm_errors);
  if interference then
    Buffer.add_string b
      (Printf.sprintf
         ",\"mem_demand\":%d,\"mem_budget\":%d,\"throttled\":%d,\
          \"co_pressure\":%d"
         pf.pf_mem_demand pf.pf_mem_budget pf.pf_throttled pf.pf_co_pressure);
  Buffer.add_char b '}'

let json_frame b f =
  Buffer.add_string b
    (Printf.sprintf
       "{\"frame\":%d,\"schedule\":%d,\"start\":%d,\"stop\":%d,\"busy\":%d,\
        \"slack\":%d,\"catch_up_max\":%d,\"deadline_misses\":%d,\
        \"hm_errors\":%d,\"jitter\":{\"count\":%d,\"p50\":%d,\"p90\":%d,\
        \"p99\":%d,\"max\":%d},\"ipc\":{\"count\":%d,\"p50\":%d,\"p90\":%d,\
        \"p99\":%d,\"max\":%d},\"partitions\":["
       f.f_index f.f_schedule f.f_start f.f_stop f.f_busy f.f_slack
       f.f_catch_up_max f.f_deadline_misses f.f_hm_errors f.f_jitter_count
       f.f_jitter_p50 f.f_jitter_p90 f.f_jitter_p99 f.f_jitter_max
       f.f_ipc_count f.f_ipc_p50 f.f_ipc_p90 f.f_ipc_p99 f.f_ipc_max);
  Array.iteri
    (fun i pf ->
      if i > 0 then Buffer.add_char b ',';
      json_partition b ~interference:f.f_interference pf)
    f.f_partitions;
  Buffer.add_string b "]}"

let to_json frames =
  let b = Buffer.create 4096 in
  Buffer.add_string b (Printf.sprintf "{\"schema\":%S,\"frames\":[" schema);
  List.iteri
    (fun i f ->
      if i > 0 then Buffer.add_char b ',';
      json_frame b f)
    frames;
  Buffer.add_string b "]}";
  Buffer.contents b

let csv_header =
  "frame,schedule,start,stop,busy,slack,frame_catch_up_max,\
   frame_deadline_misses,frame_hm_errors,jitter_count,jitter_p50,\
   jitter_p90,jitter_p99,jitter_max,ipc_count,ipc_p50,ipc_p90,ipc_p99,\
   ipc_max,partition,window_ticks,allotted,utilization_permille,dispatches,\
   p_jitter_max,p_catch_up_max,p_deadline_misses,p_hm_errors"

let csv_interference_columns = ",mem_demand,mem_budget,throttled,co_pressure"

let to_csv frames =
  (* A module either has a contention model for its whole run or none:
     frames never mix, so the file-level header decision is sound (and
     keeps contention-free exports byte-identical). *)
  let interference =
    List.exists (fun f -> f.f_interference) frames
  in
  let b = Buffer.create 4096 in
  Buffer.add_string b csv_header;
  if interference then Buffer.add_string b csv_interference_columns;
  Buffer.add_char b '\n';
  List.iter
    (fun f ->
      Array.iter
        (fun pf ->
          Buffer.add_string b
            (Printf.sprintf
               "%d,%d,%d,%d,%d,%d,%d,%d,%d,%d,%d,%d,%d,%d,%d,%d,%d,%d,%d,\
                %d,%d,%d,%d,%d,%d,%d,%d,%d"
               f.f_index f.f_schedule f.f_start f.f_stop f.f_busy f.f_slack
               f.f_catch_up_max f.f_deadline_misses f.f_hm_errors
               f.f_jitter_count f.f_jitter_p50 f.f_jitter_p90 f.f_jitter_p99
               f.f_jitter_max f.f_ipc_count f.f_ipc_p50 f.f_ipc_p90
               f.f_ipc_p99 f.f_ipc_max pf.pf_partition pf.pf_window_ticks
               pf.pf_allotted
               (frame_utilization_permille pf)
               pf.pf_dispatches pf.pf_jitter_max pf.pf_catch_up_max
               pf.pf_deadline_misses pf.pf_hm_errors);
          if interference then
            Buffer.add_string b
              (Printf.sprintf ",%d,%d,%d,%d" pf.pf_mem_demand pf.pf_mem_budget
                 pf.pf_throttled pf.pf_co_pressure);
          Buffer.add_char b '\n')
        f.f_partitions)
    frames;
  Buffer.contents b
