(* Structured-event sink: a bounded ring of recent events plus per-kind
   occurrence counts.

   The sink is polymorphic in its payload so each layer can attach its own
   typed event (e.g. [Air_model.Event.t] at the system level) without the
   observability library depending on model types. Recording is O(1):
   one array store, one hash-table bump. *)

type 'a entry = { time : int; kind : string; payload : 'a }

type 'a t = {
  ring : 'a entry option array;
  mutable next : int;
  mutable total : int;
  counts : (string, int) Hashtbl.t;
  mutable kinds : string list; (* first-seen order, newest first *)
}

let default_capacity = 256

let create ?(capacity = default_capacity) () =
  if capacity <= 0 then invalid_arg "Event.create: capacity must be positive";
  { ring = Array.make capacity None;
    next = 0;
    total = 0;
    counts = Hashtbl.create 32;
    kinds = [] }

let record t ~time ~kind payload =
  t.ring.(t.next) <- Some { time; kind; payload };
  t.next <- (t.next + 1) mod Array.length t.ring;
  t.total <- t.total + 1;
  match Hashtbl.find_opt t.counts kind with
  | Some n -> Hashtbl.replace t.counts kind (n + 1)
  | None ->
    Hashtbl.add t.counts kind 1;
    t.kinds <- kind :: t.kinds

let total t = t.total

let count t kind = Option.value ~default:0 (Hashtbl.find_opt t.counts kind)

(* Per-kind totals, sorted by kind for stable reports. *)
let counts t =
  List.rev_map (fun kind -> (kind, Hashtbl.find t.counts kind)) t.kinds
  |> List.sort (fun (a, _) (b, _) -> String.compare a b)

(* Oldest-first list of the retained tail of the event stream. *)
let recent t =
  let n = Array.length t.ring in
  let out = ref [] in
  for i = 0 to n - 1 do
    match t.ring.((t.next + i) mod n) with
    | Some e -> out := e :: !out
    | None -> ()
  done;
  List.rev !out

let clear t =
  Array.fill t.ring 0 (Array.length t.ring) None;
  t.next <- 0;
  t.total <- 0;
  Hashtbl.reset t.counts;
  t.kinds <- []

let pp_counts ppf t =
  List.iter
    (fun (kind, n) -> Format.fprintf ppf "%-32s %8d@." kind n)
    (counts t)
