(* Flight-recorder spans: nested, integer-clock intervals with track
   attribution.

   Completed spans go into a queue with the same bounded-retention policy
   as [Sim.Trace]; open spans sit on one stack per track (a hash table of
   lists keyed by track index) so begin/end are O(1). *)

type phase = Complete | Instant | Open

type span = {
  name : string;
  track : int;
  sub : int;
  start : int;
  stop : int;
  detail : string;
  phase : phase;
}

(* An open frame remembers everything the closing edge doesn't know. *)
type frame = { f_name : string; f_sub : int; f_start : int; f_detail : string }

type t = {
  capacity : int option;
  done_ : span Queue.t;
  open_ : (int, frame list) Hashtbl.t;
  mutable total : int;
  mutable mismatches : int;
}

let create ?capacity () =
  (match capacity with
  | Some c when c <= 0 -> invalid_arg "Span.create: capacity must be positive"
  | _ -> ());
  { capacity;
    done_ = Queue.create ();
    open_ = Hashtbl.create 8;
    total = 0;
    mismatches = 0 }

let push_done t span =
  Queue.push span t.done_;
  t.total <- t.total + 1;
  match t.capacity with
  | Some c when Queue.length t.done_ > c -> ignore (Queue.pop t.done_)
  | _ -> ()

let begin_span t ~now ~track ?(sub = 0) ?(detail = "") name =
  let frame = { f_name = name; f_sub = sub; f_start = now; f_detail = detail } in
  let stack =
    match Hashtbl.find_opt t.open_ track with Some s -> s | None -> []
  in
  Hashtbl.replace t.open_ track (frame :: stack)

let end_span t ~now ~track =
  match Hashtbl.find_opt t.open_ track with
  | None | Some [] -> t.mismatches <- t.mismatches + 1
  | Some (frame :: rest) ->
    Hashtbl.replace t.open_ track rest;
    push_done t
      { name = frame.f_name;
        track;
        sub = frame.f_sub;
        start = frame.f_start;
        stop = now;
        detail = frame.f_detail;
        phase = Complete }

let instant t ~now ~track ?(sub = 0) ?(detail = "") name =
  push_done t
    { name; track; sub; start = now; stop = now; detail; phase = Instant }

let complete t ~start ~stop ~track ?(sub = 0) ?(detail = "") name =
  push_done t
    { name; track; sub; start; stop; detail; phase = Complete }

let spans t = List.of_seq (Queue.to_seq t.done_)

let open_spans t ~now =
  let tracks =
    Hashtbl.fold (fun track stack acc -> (track, stack) :: acc) t.open_ []
    |> List.sort (fun (a, _) (b, _) -> Stdlib.compare a b)
  in
  List.concat_map
    (fun (track, stack) ->
      (* Stacks are innermost-first; report outermost first. *)
      List.rev_map
        (fun frame ->
          { name = frame.f_name;
            track;
            sub = frame.f_sub;
            start = frame.f_start;
            stop = now;
            detail = frame.f_detail;
            phase = Open })
        stack)
    tracks

let depth t ~track =
  match Hashtbl.find_opt t.open_ track with
  | None -> 0
  | Some stack -> List.length stack

let length t = Queue.length t.done_
let total t = t.total
let dropped t = t.total - Queue.length t.done_
let mismatches t = t.mismatches

let clear t =
  Queue.clear t.done_;
  Hashtbl.reset t.open_;
  t.total <- 0;
  t.mismatches <- 0

let pp_span ppf s =
  Format.fprintf ppf "[%d,%d%s] %s@%d..%d%s" s.track s.sub
    (match s.phase with Complete -> "" | Instant -> " i" | Open -> " open")
    s.name s.start s.stop
    (if String.equal s.detail "" then "" else " (" ^ s.detail ^ ")")
