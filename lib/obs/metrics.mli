(** Metrics registry: monotonic counters, gauges and fixed-bucket
    histograms over integers.

    Recording is O(1) and float-free — the PMK clock-tick path records into
    these from inside the simulated ISR. Handles are obtained once, at
    component construction, so the hot path never touches the registry's
    hash table. The instrument constructors are get-or-create: asking for
    an already-registered name returns the existing instrument, letting
    several instances of a component (e.g. one PAL per partition) aggregate
    into shared series. *)

type counter
type gauge
type histogram

type t
(** A registry of named instruments. *)

val create : unit -> t

(** {1 Instruments (get-or-create)}

    Each raises [Invalid_argument] when the name is already registered as a
    different kind of instrument. *)

val counter : t -> string -> counter
val gauge : t -> string -> gauge

val default_buckets : int array
(** Powers of two up to 1024 — covers tick-latency measurements well. *)

val histogram : ?buckets:int array -> t -> string -> histogram
(** [buckets] are inclusive upper bounds, strictly increasing and
    non-empty (checked); observations above the last bound land in an
    implicit +inf bucket. Defaults to {!default_buckets}. *)

(** {1 Recording (hot path)} *)

val incr : counter -> unit
val add : counter -> int -> unit
(** Counters are monotonic: non-positive increments are ignored. *)

val value : counter -> int

val set : gauge -> int -> unit
val gauge_incr : gauge -> unit
val gauge_decr : gauge -> unit
val level : gauge -> int

val observe : histogram -> int -> unit

val reset_counter : counter -> unit
(** Exists solely so the legacy [reset_stats]-style shims keep working;
    new code should treat counters as monotonic. *)

(** {1 Snapshot (off the hot path)} *)

type histogram_view = {
  view_bounds : int array;
  view_buckets : int array;  (** length [bounds] + 1; last bucket is +inf *)
  view_observations : int;
  view_total : int;
  view_peak : int;
}

type value =
  | Counter_value of int
  | Gauge_value of int
  | Histogram_value of histogram_view

type snapshot = (string * value) list

val snapshot : t -> snapshot
(** Every instrument's current value, sorted by name. *)

val find : t -> string -> value option
val cardinal : t -> int

val view_quantile : histogram_view -> num:int -> den:int -> int
(** Estimated value at quantile [num/den], from the fixed buckets: the
    inclusive upper bound of the bucket holding rank
    [ceil(observations * num / den)], clamped to the exact peak (ranks in
    the +inf bucket answer with the peak). 0 when the view is empty. Raises
    [Invalid_argument] unless [0 <= num <= den] and [den > 0]. *)

val pp_value : Format.formatter -> value -> unit
