(* Rendering of metrics snapshots: a human-readable table for terminals,
   an s-expression for the config toolchain, and JSON for external
   dashboards / the bench trajectory. *)

let pp_histogram_line ppf (h : Metrics.histogram_view) =
  Format.fprintf ppf "n=%d total=%d peak=%d" h.view_observations h.view_total
    h.view_peak;
  if h.view_observations > 0 then
    Format.fprintf ppf " p50=%d p90=%d p99=%d"
      (Metrics.view_quantile h ~num:1 ~den:2)
      (Metrics.view_quantile h ~num:9 ~den:10)
      (Metrics.view_quantile h ~num:99 ~den:100);
  if h.view_observations > 0 then begin
    Format.fprintf ppf " buckets=[";
    Array.iteri
      (fun i c ->
        if c > 0 then begin
          let label =
            if i < Array.length h.view_bounds then
              Printf.sprintf "≤%d" h.view_bounds.(i)
            else "+inf"
          in
          Format.fprintf ppf " %s:%d" label c
        end)
      h.view_buckets;
    Format.fprintf ppf " ]"
  end

let pp ?(events = []) ppf (snapshot : Metrics.snapshot) =
  Format.fprintf ppf "metrics:@.";
  List.iter
    (fun (name, v) ->
      match v with
      | Metrics.Counter_value n -> Format.fprintf ppf "  %-36s %12d@." name n
      | Metrics.Gauge_value n ->
        Format.fprintf ppf "  %-36s %12d  (gauge)@." name n
      | Metrics.Histogram_value h ->
        Format.fprintf ppf "  %-36s %a@." name pp_histogram_line h)
    snapshot;
  if events <> [] then begin
    Format.fprintf ppf "events:@.";
    List.iter
      (fun (kind, n) -> Format.fprintf ppf "  %-36s %12d@." kind n)
      events
  end

let to_string ?events snapshot =
  Format.asprintf "%a" (fun ppf -> pp ?events ppf) snapshot

(* --- S-expression -------------------------------------------------------- *)

(* Quoted atoms escape the quote and backslash characters so that names
   containing them round-trip through the sexp reader. *)
let sexp_atom name =
  if
    String.equal name ""
    || String.exists
         (fun c -> c = ' ' || c = '(' || c = ')' || c = '"' || c = '\\')
         name
  then begin
    let buf = Buffer.create (String.length name + 2) in
    Buffer.add_char buf '"';
    String.iter
      (fun c ->
        match c with
        | '"' -> Buffer.add_string buf "\\\""
        | '\\' -> Buffer.add_string buf "\\\\"
        | c -> Buffer.add_char buf c)
      name;
    Buffer.add_char buf '"';
    Buffer.contents buf
  end
  else name

let to_sexp ?(events = []) (snapshot : Metrics.snapshot) =
  let buf = Buffer.create 1024 in
  Buffer.add_string buf "(metrics";
  List.iter
    (fun (name, v) ->
      match v with
      | Metrics.Counter_value n ->
        Buffer.add_string buf
          (Printf.sprintf "\n  (counter %s %d)" (sexp_atom name) n)
      | Metrics.Gauge_value n ->
        Buffer.add_string buf
          (Printf.sprintf "\n  (gauge %s %d)" (sexp_atom name) n)
      | Metrics.Histogram_value h ->
        Buffer.add_string buf
          (Printf.sprintf
             "\n  (histogram %s (n %d) (total %d) (peak %d) (p50 %d) \
              (p90 %d) (p99 %d))"
             (sexp_atom name) h.view_observations h.view_total h.view_peak
             (Metrics.view_quantile h ~num:1 ~den:2)
             (Metrics.view_quantile h ~num:9 ~den:10)
             (Metrics.view_quantile h ~num:99 ~den:100)))
    snapshot;
  List.iter
    (fun (kind, n) ->
      Buffer.add_string buf
        (Printf.sprintf "\n  (event %s %d)" (sexp_atom kind) n))
    events;
  Buffer.add_string buf ")";
  Buffer.contents buf

(* --- JSON ---------------------------------------------------------------- *)

let json_escape s =
  let buf = Buffer.create (String.length s + 2) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\t' -> Buffer.add_string buf "\\t"
      | c when Char.code c < 0x20 ->
        Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

let json_ints xs =
  "[" ^ String.concat "," (List.map string_of_int (Array.to_list xs)) ^ "]"

let to_json ?(events = []) (snapshot : Metrics.snapshot) =
  let buf = Buffer.create 2048 in
  let metric (name, v) =
    let body =
      match v with
      | Metrics.Counter_value n ->
        Printf.sprintf "{\"kind\":\"counter\",\"value\":%d}" n
      | Metrics.Gauge_value n ->
        Printf.sprintf "{\"kind\":\"gauge\",\"value\":%d}" n
      | Metrics.Histogram_value h ->
        Printf.sprintf
          "{\"kind\":\"histogram\",\"count\":%d,\"total\":%d,\"peak\":%d,\
           \"p50\":%d,\"p90\":%d,\"p99\":%d,\"bounds\":%s,\"buckets\":%s}"
          h.view_observations h.view_total h.view_peak
          (Metrics.view_quantile h ~num:1 ~den:2)
          (Metrics.view_quantile h ~num:9 ~den:10)
          (Metrics.view_quantile h ~num:99 ~den:100)
          (json_ints h.view_bounds) (json_ints h.view_buckets)
    in
    Printf.sprintf "\"%s\":%s" (json_escape name) body
  in
  Buffer.add_string buf "{\"metrics\":{";
  Buffer.add_string buf (String.concat "," (List.map metric snapshot));
  Buffer.add_string buf "}";
  if events <> [] then begin
    Buffer.add_string buf ",\"events\":{";
    Buffer.add_string buf
      (String.concat ","
         (List.map
            (fun (kind, n) ->
              Printf.sprintf "\"%s\":%d" (json_escape kind) n)
            events));
    Buffer.add_string buf "}"
  end;
  Buffer.add_string buf "}";
  Buffer.contents buf
