(** Flight-recorder spans: nested, integer-clock intervals with track
    attribution.

    A span names something that happened over an interval of the simulated
    clock — a partition holding the processor for its scheduling-table
    window, a Health Monitor handler running, a PAL supervision pass. Spans
    live on integer {e tracks} (the AIR convention: track [-1] is the
    module itself, track [i ≥ 0] is partition [i]) and carry an optional
    {e sub}-lane (a process index within the partition).

    Recording is O(1) and allocation-light: one stack push per
    [begin_span], one ring store per completed span. Like {!Sim.Trace},
    retention of completed spans can be bounded — the recorder then keeps
    the most recent [capacity] spans while [total] keeps counting. The
    per-track open-span stacks are never evicted: a span that is still
    running cannot fall out of the recorder. *)

(** How the interval ended (or didn't). *)
type phase =
  | Complete  (** Properly closed: [stop] is the closing tick. *)
  | Instant   (** A point event; [stop = start]. *)
  | Open      (** Still running at export time; [stop] is a horizon. *)

type span = {
  name : string;
  track : int;  (** [-1] = module level; [i ≥ 0] = partition index [i]. *)
  sub : int;    (** Lane within the track (e.g. process index); 0 default. *)
  start : int;
  stop : int;
  detail : string;
  phase : phase;
}

type t

val create : ?capacity:int -> unit -> t
(** Unbounded retention by default. [capacity], when given, bounds the
    completed-span ring and must be positive. *)

val begin_span :
  t -> now:int -> track:int -> ?sub:int -> ?detail:string -> string -> unit
(** Open a span named after the last argument. Spans on the same track
    nest: [end_span] closes the most recently opened one. *)

val end_span : t -> now:int -> track:int -> unit
(** Close the innermost open span of [track]. A close with no matching
    open is counted in {!mismatches} and otherwise ignored. *)

val instant :
  t -> now:int -> track:int -> ?sub:int -> ?detail:string -> string -> unit
(** Record a point event ([phase = Instant], [stop = start = now]). *)

val complete :
  t ->
  start:int ->
  stop:int ->
  track:int ->
  ?sub:int ->
  ?detail:string ->
  string ->
  unit
(** Record an already-closed interval in one call. *)

val spans : t -> span list
(** Retained completed and instant spans, in completion order (oldest
    first). *)

val open_spans : t -> now:int -> span list
(** Spans still open on any track, outermost first per track, with
    [stop = now] and [phase = Open]. The recorder is not modified. *)

val depth : t -> track:int -> int
(** Number of currently open spans on [track]. *)

val length : t -> int
(** Completed/instant spans currently retained. *)

val total : t -> int
(** Spans ever completed (≥ {!length} when bounded). *)

val dropped : t -> int
(** Completed spans evicted by bounded retention ([total - length]) — an
    exported trace with [dropped > 0] is a window, not the whole run. *)

val mismatches : t -> int
(** [end_span] calls that found no open span to close. *)

val clear : t -> unit
(** Drop retained and open spans; [total] and {!mismatches} reset too. *)

val pp_span : Format.formatter -> span -> unit
