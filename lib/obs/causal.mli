(** Causal correlation ids for cross-module message flows.

    Every IPC message (sampling write, queuing send) and cluster-link
    transfer is stamped at its origin with a compact correlation id packing
    the origin module, partition and port indices plus a monotone sequence
    number into one OCaml [int] — allocation-free on the hot path. The id
    travels with the message through router buffers, gateway drains and bus
    transfers, and every hop appends a fixed-size record to a preallocated
    ring, so a Chrome trace can draw flow arrows between the send and the
    final receive even when they happen in different modules, and
    {!Air_vitral.Flows} can report end-to-end latency per flow.

    Bit layout (63-bit OCaml int, low to high):
    - bits 0–31: sequence number (per-tracker monotone counter, wraps);
    - bits 32–41: origin port index (10 bits);
    - bits 42–49: origin partition index (8 bits);
    - bits 50–57: origin module index (8 bits);
    - bit 58: validity flag, so no packed id collides with {!none}.

    Recording is O(1), float-free and allocation-free: the ring holds
    mutable fixed-field cells written in place. Like {!Span}, retention is
    bounded — the tracker keeps the most recent [capacity] records while
    {!total} keeps counting, and {!dropped} exposes the evicted count. *)

type id = int
(** A packed correlation id, or {!none}. *)

val none : id
(** The absent id (0). Messages that predate the tracker carry it. *)

val pack : module_id:int -> partition:int -> port:int -> seq:int -> id
(** Pack the four fields (each masked to its bit width) into a valid id.
    Total function: out-of-range inputs are truncated, never rejected. *)

val is_some : id -> bool
val module_of : id -> int
val partition_of : id -> int
val port_of : id -> int
val seq_of : id -> int

val flow_of : id -> id
(** The flow key: the id with its sequence bits cleared — identifies the
    (module, partition, port) origin shared by every message of a flow. *)

val to_string : id -> string
(** ["m0.p1.q2#42"]; ["-"] for {!none}. *)

val flow_to_string : id -> string
(** The flow key rendered without the sequence (["m0.p1.q2"]). *)

(** What a fault did to a stamped message in flight. *)
type perturbation =
  | Drop
  | Duplicate
  | Corrupt
  | Reorder
  | Delay
  | Bus_drop
  | Bus_duplicate
  | Bus_corrupt
  | Bus_reorder
  | Bus_delay

val perturbation_label : perturbation -> string

(** One hop in a message's life. *)
type kind =
  | Send  (** Stamped at the origin port write. *)
  | Receive  (** Consumed by the destination partition. *)
  | Forward  (** Pulled off a gateway port towards a cluster link. *)
  | Perturb of perturbation  (** Touched by an injected fault. *)

type entry = {
  kind : kind;
  id : id;
  time : int;
  track : int;  (** Partition index; [-1] for module-level hops. *)
}

type t

val create : ?capacity:int -> ?module_id:int -> unit -> t
(** Preallocates the record ring ([capacity] defaults to 16384, must be
    positive). [module_id] (default 0) seeds the origin-module field of
    every id this tracker stamps. *)

val set_module_id : t -> int -> unit
(** Re-home the tracker (cluster construction assigns each module its
    index). Only affects ids stamped afterwards. *)

val module_id : t -> int

val stamp : t -> now:int -> partition:int -> port:int -> id
(** Mint the next id for a message originated by [partition] on [port],
    recording a [Send] entry. Allocation-free. *)

val receive : t -> now:int -> track:int -> id -> unit
(** Record the final consumption of a stamped message ([Receive]); no-op
    on {!none}. Allocation-free. *)

val forward : t -> now:int -> id -> unit
(** Record a gateway hop ([Forward], module track); no-op on {!none}. *)

val perturb : t -> now:int -> what:perturbation -> id -> unit
(** Record a fault touching a stamped in-flight message; no-op on
    {!none}. *)

val last_perturbed : t -> id
(** The id of the most recent [Perturb] entry still retained; {!none}
    when no perturbation was recorded. *)

val entries : t -> entry list
(** Retained records, oldest first (copied out; not the hot path). *)

val length : t -> int
val total : t -> int

val dropped : t -> int
(** Records evicted by bounded retention ([total - length]). *)

val capacity : t -> int
val clear : t -> unit
