open Air_sim
open Ident

type t =
  | Context_switch of {
      from : Partition_id.t option;
      to_ : Partition_id.t option;
    }
  | Schedule_switch_request of {
      by : Partition_id.t option;
      target : Schedule_id.t;
    }
  | Schedule_switch of { from : Schedule_id.t; to_ : Schedule_id.t }
  | Change_action of {
      partition : Partition_id.t;
      action : Schedule.change_action;
    }
  | Partition_mode_change of {
      partition : Partition_id.t;
      mode : Partition.mode;
    }
  | Process_state_change of { process : Process_id.t; state : Process.state }
  | Process_dispatched of { process : Process_id.t }
  | Deadline_registered of { process : Process_id.t; deadline : Time.t }
  | Deadline_unregistered of { process : Process_id.t }
  | Deadline_violation of { process : Process_id.t; deadline : Time.t }
  | Hm_error of {
      level : Error.level;
      code : Error.code;
      partition : Partition_id.t option;
      process : Process_id.t option;
      detail : string;
    }
  | Hm_process_action of {
      process : Process_id.t;
      action : Error.process_action;
    }
  | Hm_partition_action of {
      partition : Partition_id.t;
      action : Error.partition_action;
    }
  | Hm_module_action of { action : Error.module_action }
  | Port_send of { port : Port_name.t; bytes : int }
  | Port_receive of { port : Port_name.t; bytes : int }
  | Port_overflow of { port : Port_name.t }
  | Memory_access of {
      partition : Partition_id.t;
      address : int;
      granted : bool;
    }
  | Application_output of { partition : Partition_id.t; line : string }
  | Module_halt of { reason : string }
  | Fault_injected of { label : string }

let label = function
  | Context_switch _ -> "context-switch"
  | Schedule_switch_request _ -> "schedule-switch-request"
  | Schedule_switch _ -> "schedule-switch"
  | Change_action _ -> "change-action"
  | Partition_mode_change _ -> "partition-mode-change"
  | Process_state_change _ -> "process-state-change"
  | Process_dispatched _ -> "process-dispatched"
  | Deadline_registered _ -> "deadline-registered"
  | Deadline_unregistered _ -> "deadline-unregistered"
  | Deadline_violation _ -> "deadline-violation"
  | Hm_error _ -> "hm-error"
  | Hm_process_action _ -> "hm-process-action"
  | Hm_partition_action _ -> "hm-partition-action"
  | Hm_module_action _ -> "hm-module-action"
  | Port_send _ -> "port-send"
  | Port_receive _ -> "port-receive"
  | Port_overflow _ -> "port-overflow"
  | Memory_access _ -> "memory-access"
  | Application_output _ -> "application-output"
  | Module_halt _ -> "module-halt"
  | Fault_injected _ -> "fault-injected"

let pp_opt pp ppf = function
  | None -> Format.pp_print_string ppf "idle"
  | Some x -> pp ppf x

let pp ppf = function
  | Context_switch { from; to_ } ->
    Format.fprintf ppf "context-switch %a → %a"
      (pp_opt Partition_id.pp) from (pp_opt Partition_id.pp) to_
  | Schedule_switch_request { by; target } ->
    Format.fprintf ppf "schedule-switch-request by %a target %a"
      (pp_opt Partition_id.pp) by Schedule_id.pp target
  | Schedule_switch { from; to_ } ->
    Format.fprintf ppf "schedule-switch %a → %a" Schedule_id.pp from
      Schedule_id.pp to_
  | Change_action { partition; action } ->
    Format.fprintf ppf "change-action %a: %a" Partition_id.pp partition
      Schedule.pp_change_action action
  | Partition_mode_change { partition; mode } ->
    Format.fprintf ppf "mode %a := %a" Partition_id.pp partition
      Partition.pp_mode mode
  | Process_state_change { process; state } ->
    Format.fprintf ppf "process %a → %a" Process_id.pp process
      Process.pp_state state
  | Process_dispatched { process } ->
    Format.fprintf ppf "dispatched %a" Process_id.pp process
  | Deadline_registered { process; deadline } ->
    Format.fprintf ppf "deadline-registered %a at %a" Process_id.pp process
      Time.pp deadline
  | Deadline_unregistered { process } ->
    Format.fprintf ppf "deadline-unregistered %a" Process_id.pp process
  | Deadline_violation { process; deadline } ->
    Format.fprintf ppf "DEADLINE VIOLATION %a (deadline %a)" Process_id.pp
      process Time.pp deadline
  | Hm_error { level; code; partition; process; detail } ->
    Format.fprintf ppf "HM %a-level %a%a%a%s" Error.pp_level level
      Error.pp_code code
      (fun ppf -> function
        | None -> ()
        | Some p -> Format.fprintf ppf " partition %a" Partition_id.pp p)
      partition
      (fun ppf -> function
        | None -> ()
        | Some p -> Format.fprintf ppf " process %a" Process_id.pp p)
      process
      (if String.equal detail "" then "" else ": " ^ detail)
  | Hm_process_action { process; action } ->
    Format.fprintf ppf "HM action on %a: %a" Process_id.pp process
      Error.pp_process_action action
  | Hm_partition_action { partition; action } ->
    Format.fprintf ppf "HM action on %a: %a" Partition_id.pp partition
      Error.pp_partition_action action
  | Hm_module_action { action } ->
    Format.fprintf ppf "HM module action: %a" Error.pp_module_action action
  | Port_send { port; bytes } ->
    Format.fprintf ppf "port-send %s (%d bytes)" port bytes
  | Port_receive { port; bytes } ->
    Format.fprintf ppf "port-receive %s (%d bytes)" port bytes
  | Port_overflow { port } -> Format.fprintf ppf "port-overflow %s" port
  | Memory_access { partition; address; granted } ->
    Format.fprintf ppf "memory-access %a 0x%x %s" Partition_id.pp partition
      address
      (if granted then "granted" else "DENIED")
  | Application_output { partition; line } ->
    Format.fprintf ppf "out %a: %s" Partition_id.pp partition line
  | Module_halt { reason } -> Format.fprintf ppf "MODULE HALT: %s" reason
  | Fault_injected { label } -> Format.fprintf ppf "FAULT INJECTED: %s" label

let is_deadline_violation = function
  | Deadline_violation _ -> true
  | _ -> false

let is_context_switch = function Context_switch _ -> true | _ -> false
let is_schedule_switch = function Schedule_switch _ -> true | _ -> false
let is_hm_error = function Hm_error _ -> true | _ -> false

let violation_of = function
  | Deadline_violation { process; deadline } -> Some (process, deadline)
  | _ -> None
