(** Multicore partition schedules — the paper's future-work item (iv):
    "parallelism between partition time windows on a multicore platform".

    A multicore scheduling table assigns each core its own sequence of time
    windows over a common major time frame. Partitions remain logically
    single-threaded (an ARINC 653 partition has one process scheduler), so
    the new well-formedness condition beyond eqs. (21)–(23) is that the
    windows of one partition must never overlap in time {e across cores}.
    The per-cycle duration guarantee of eq. (23) generalizes with supply
    summed over all cores — sound precisely because of the no-self-overlap
    rule. *)

open Air_sim
open Ident

type t = {
  id : Schedule_id.t;
  name : string;
  mtf : Time.t;
  requirements : Schedule.requirement list;
      (** Per-partition ⟨η, d⟩, with d owed per cycle across all cores. *)
  cores : Schedule.window list array;
      (** One window list per core; each is kept sorted by offset. *)
  change_actions : (Partition_id.t * Schedule.change_action) list;
      (** Per-partition restart actions on a switch to this table;
          partitions absent from the list get [No_action]. *)
}

val make :
  ?change_actions:(Partition_id.t * Schedule.change_action) list ->
  id:Schedule_id.t ->
  name:string ->
  mtf:Time.t ->
  requirements:Schedule.requirement list ->
  Schedule.window list list ->
  t
(** One window list per core, in core order. Raises [Invalid_argument] on a
    non-positive MTF, empty core list, or non-positive window durations. *)

val core_count : t -> int

val core_view : t -> core:int -> Schedule.t
(** The single-core projection: this core's windows with the same id, name
    (suffixed [#core]) and MTF. Partition requirements are projected with
    zero duration — the real requirement is a whole-table property checked
    by {!validate}. The view drives one {!Air.Pmk}-style scheduler per
    core. *)

type diagnostic =
  | Core_diagnostic of { core : int; diagnostic : Validate.diagnostic }
      (** A single-core violation of eq. (20)/(21) on that core's lane. *)
  | Parallel_self_overlap of {
      partition : Partition_id.t;
      core_a : int;
      window_a : Schedule.window;
      core_b : int;
      window_b : Schedule.window;
    }
      (** The partition would hold two cores simultaneously. *)
  | Mtf_not_multiple_of_lcm of { mtf : Time.t; lcm : Time.t }
  | Insufficient_cycle_duration of {
      partition : Partition_id.t;
      cycle_index : int;
      provided : Time.t;  (** Summed over all cores. *)
      required : Time.t;
    }

val pp_diagnostic : Format.formatter -> diagnostic -> unit

val validate : t -> diagnostic list

val cycle_supply : t -> Partition_id.t -> k:int -> Time.t
(** Window time granted to the partition during cycle [k], summed over all
    cores (the multicore generalization of the eq. (23) left-hand side). *)

val utilization : t -> float
(** Busy fraction summed over cores, in [0, core count]. *)

val shard : cores:int -> Schedule.t -> t
(** Derive a multicore table from a single-core schedule by assigning
    partition [m] (in Q order) to core [m mod cores], keeping every window
    at its original offset. Because the source table has no overlapping
    windows, the result trivially satisfies the no-self-overlap rule and is
    time-faithful: each partition runs in exactly the instants the
    single-core table granted it, cores merely idle in the gaps. Change
    actions and requirements are inherited. Raises [Invalid_argument] on a
    non-positive core count. *)

val pp : Format.formatter -> t -> unit
