type code =
  | Deadline_missed
  | Application_error
  | Numeric_error
  | Illegal_request
  | Stack_overflow
  | Memory_violation
  | Hardware_fault
  | Power_failure
  | Configuration_error
  | Temporal_degradation

let all_codes =
  [ Deadline_missed; Application_error; Numeric_error; Illegal_request;
    Stack_overflow; Memory_violation; Hardware_fault; Power_failure;
    Configuration_error; Temporal_degradation ]

let code_equal a b =
  match (a, b) with
  | Deadline_missed, Deadline_missed
  | Application_error, Application_error
  | Numeric_error, Numeric_error
  | Illegal_request, Illegal_request
  | Stack_overflow, Stack_overflow
  | Memory_violation, Memory_violation
  | Hardware_fault, Hardware_fault
  | Power_failure, Power_failure
  | Configuration_error, Configuration_error
  | Temporal_degradation, Temporal_degradation ->
    true
  | ( ( Deadline_missed | Application_error | Numeric_error | Illegal_request
      | Stack_overflow | Memory_violation | Hardware_fault | Power_failure
      | Configuration_error | Temporal_degradation ),
      _ ) ->
    false

let pp_code ppf c =
  Format.pp_print_string ppf
    (match c with
    | Deadline_missed -> "deadline-missed"
    | Application_error -> "application-error"
    | Numeric_error -> "numeric-error"
    | Illegal_request -> "illegal-request"
    | Stack_overflow -> "stack-overflow"
    | Memory_violation -> "memory-violation"
    | Hardware_fault -> "hardware-fault"
    | Power_failure -> "power-failure"
    | Configuration_error -> "configuration-error"
    | Temporal_degradation -> "temporal-degradation")

type level = Process_level | Partition_level | Module_level

let level_equal a b =
  match (a, b) with
  | Process_level, Process_level
  | Partition_level, Partition_level
  | Module_level, Module_level ->
    true
  | (Process_level | Partition_level | Module_level), _ -> false

let pp_level ppf l =
  Format.pp_print_string ppf
    (match l with
    | Process_level -> "process"
    | Partition_level -> "partition"
    | Module_level -> "module")

type process_action =
  | Ignore_error
  | Log_then of int * process_action
  | Restart_process
  | Stop_process
  | Stop_partition_of_process
  | Restart_partition_of_process of Partition.mode

let rec pp_process_action ppf = function
  | Ignore_error -> Format.pp_print_string ppf "ignore"
  | Log_then (n, a) ->
    Format.fprintf ppf "log×%d-then-%a" n pp_process_action a
  | Restart_process -> Format.pp_print_string ppf "restart-process"
  | Stop_process -> Format.pp_print_string ppf "stop-process"
  | Stop_partition_of_process -> Format.pp_print_string ppf "stop-partition"
  | Restart_partition_of_process m ->
    Format.fprintf ppf "restart-partition(%a)" Partition.pp_mode m

type partition_action =
  | Partition_ignore
  | Partition_idle
  | Partition_warm_restart
  | Partition_cold_restart

let pp_partition_action ppf a =
  Format.pp_print_string ppf
    (match a with
    | Partition_ignore -> "ignore"
    | Partition_idle -> "idle"
    | Partition_warm_restart -> "warm-restart"
    | Partition_cold_restart -> "cold-restart")

type module_action = Module_ignore | Module_shutdown | Module_reset

let pp_module_action ppf a =
  Format.pp_print_string ppf
    (match a with
    | Module_ignore -> "ignore"
    | Module_shutdown -> "shutdown"
    | Module_reset -> "reset")
