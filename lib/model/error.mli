(** Health-monitoring error taxonomy (paper Sect. 2.4 and 5).

    ARINC 653 classifies each detected error by a code and a level; the level
    decides who handles it: process-level errors invoke an application error
    handler, partition-level errors trigger a response action defined at
    integration time, module-level errors may stop or reinitialize the whole
    system. *)

type code =
  | Deadline_missed        (** Process exceeded its deadline (paper Sect. 5). *)
  | Application_error      (** Raised explicitly by the application. *)
  | Numeric_error
  | Illegal_request        (** Invalid service request (e.g. unauthorized schedule switch). *)
  | Stack_overflow
  | Memory_violation       (** Spatial-partitioning breach caught by the MMU. *)
  | Hardware_fault
  | Power_failure
  | Configuration_error    (** Detected at initialization. *)
  | Temporal_degradation
      (** A telemetry watchdog threshold crossed at frame close (slack,
          jitter, catch-up depth or deadline-miss count) — degradation
          detected before or alongside a hard fault. *)

val code_equal : code -> code -> bool
val pp_code : Format.formatter -> code -> unit
val all_codes : code list

type level =
  | Process_level    (** Impacts one or more processes in the partition. *)
  | Partition_level  (** Impacts the entire partition. *)
  | Module_level     (** Impacts the entire system. *)

val level_equal : level -> level -> bool
val pp_level : Format.formatter -> level -> unit

(** Recovery actions available for process-level errors (paper Sect. 5). *)
type process_action =
  | Ignore_error
      (** Log the error, take no action. *)
  | Log_then of int * process_action
      (** Log the error the given number of times before acting on it. *)
  | Restart_process
      (** Stop the faulty process and reinitialize it from its entry point. *)
  | Stop_process
      (** Stop the faulty process, assuming the partition detects and
          recovers. *)
  | Stop_partition_of_process
  | Restart_partition_of_process of Partition.mode
      (** Restart the enclosing partition in [Warm_start] or [Cold_start]. *)

val pp_process_action : Format.formatter -> process_action -> unit

type partition_action =
  | Partition_ignore
  | Partition_idle        (** Shut the partition down. *)
  | Partition_warm_restart
  | Partition_cold_restart

val pp_partition_action : Format.formatter -> partition_action -> unit

type module_action =
  | Module_ignore
  | Module_shutdown  (** Stop the entire system. *)
  | Module_reset     (** Reinitialize the entire system. *)

val pp_module_action : Format.formatter -> module_action -> unit
