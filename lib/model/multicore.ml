open Air_sim
open Ident

type t = {
  id : Schedule_id.t;
  name : string;
  mtf : Time.t;
  requirements : Schedule.requirement list;
  cores : Schedule.window list array;
  change_actions : (Partition_id.t * Schedule.change_action) list;
}

let make ?(change_actions = []) ~id ~name ~mtf ~requirements cores =
  if mtf <= 0 then invalid_arg "Multicore.make: non-positive MTF";
  if cores = [] then invalid_arg "Multicore.make: at least one core";
  List.iter
    (List.iter (fun (w : Schedule.window) ->
         if w.duration <= 0 then
           invalid_arg "Multicore.make: non-positive window duration"))
    cores;
  let sort ws =
    List.stable_sort
      (fun (a : Schedule.window) (b : Schedule.window) ->
        Time.compare a.offset b.offset)
      ws
  in
  { id; name; mtf; requirements;
    cores = Array.of_list (List.map sort cores);
    change_actions }

let core_count t = Array.length t.cores

let core_view t ~core =
  if core < 0 || core >= core_count t then
    invalid_arg "Multicore.core_view: core out of range";
  let windows = t.cores.(core) in
  let present =
    match
      List.filter
        (fun (r : Schedule.requirement) ->
          List.exists
            (fun (w : Schedule.window) ->
              Partition_id.equal w.partition r.partition)
            windows)
        t.requirements
    with
    (* An all-idle lane (a sharding with more cores than partitions, or a
       schedule whose partition set does not reach this core) keeps the
       full requirement set so its projection still forms a valid
       single-core schedule. *)
    | [] -> t.requirements
    | present -> present
  in
  let actions =
    (* A change action belongs to the core that dispatches the partition:
       exactly one core per partition (no-self-overlap rule), so the action
       fires exactly once system-wide. *)
    List.filter
      (fun (pid, _) ->
        List.exists
          (fun (w : Schedule.window) -> Partition_id.equal w.partition pid)
          windows)
      t.change_actions
  in
  Schedule.make ~change_actions:actions ~id:t.id
    ~name:(Printf.sprintf "%s#%d" t.name core)
    ~mtf:t.mtf
    ~requirements:
      (List.map
         (fun (r : Schedule.requirement) -> { r with Schedule.duration = 0 })
         present)
    windows

type diagnostic =
  | Core_diagnostic of { core : int; diagnostic : Validate.diagnostic }
  | Parallel_self_overlap of {
      partition : Partition_id.t;
      core_a : int;
      window_a : Schedule.window;
      core_b : int;
      window_b : Schedule.window;
    }
  | Mtf_not_multiple_of_lcm of { mtf : Time.t; lcm : Time.t }
  | Insufficient_cycle_duration of {
      partition : Partition_id.t;
      cycle_index : int;
      provided : Time.t;
      required : Time.t;
    }

let pp_diagnostic ppf = function
  | Core_diagnostic { core; diagnostic } ->
    Format.fprintf ppf "core %d: %a" core Validate.pp_diagnostic diagnostic
  | Parallel_self_overlap { partition; core_a; window_a; core_b; window_b } ->
    Format.fprintf ppf
      "%a scheduled on core %d (%a) and core %d (%a) simultaneously"
      Partition_id.pp partition core_a Schedule.pp_window window_a core_b
      Schedule.pp_window window_b
  | Mtf_not_multiple_of_lcm { mtf; lcm } ->
    Format.fprintf ppf "eq.(22): MTF=%a is not a multiple of lcm(η)=%a"
      Time.pp mtf Time.pp lcm
  | Insufficient_cycle_duration { partition; cycle_index; provided; required }
    ->
    Format.fprintf ppf
      "eq.(23, multicore): %a gets %a < d=%a in cycle k=%d" Partition_id.pp
      partition Time.pp provided Time.pp required cycle_index

let windows_intersect (a : Schedule.window) (b : Schedule.window) =
  a.offset < Time.add b.offset b.duration
  && b.offset < Time.add a.offset a.duration

let cycle_supply t pid ~k =
  let r =
    match
      List.find_opt
        (fun (r : Schedule.requirement) -> Partition_id.equal r.partition pid)
        t.requirements
    with
    | Some r -> r
    | None -> invalid_arg "Multicore.cycle_supply: partition not in Q"
  in
  let lo = k * r.Schedule.cycle and hi = (k + 1) * r.Schedule.cycle in
  Array.fold_left
    (fun acc windows ->
      List.fold_left
        (fun acc (w : Schedule.window) ->
          if
            Partition_id.equal w.partition pid
            && Time.(lo <= w.offset)
            && Time.(w.offset < hi)
          then Time.add acc w.duration
          else acc)
        acc windows)
    Time.zero t.cores

let validate t =
  let diags = ref [] in
  let push d = diags := d :: !diags in
  (* Per-core structural checks through the single-core validator; the
     zero-duration projected requirements disable the per-core eq. (23). *)
  Array.iteri
    (fun core _ ->
      let view = core_view t ~core in
      List.iter
        (fun d -> push (Core_diagnostic { core; diagnostic = d }))
        (List.filter
           (function
             | Validate.Empty_requirements _ -> false
             | _ -> true)
           (Validate.validate view)))
    t.cores;
  (* No partition on two cores at once. *)
  let n = core_count t in
  for a = 0 to n - 1 do
    for b = a + 1 to n - 1 do
      List.iter
        (fun (wa : Schedule.window) ->
          List.iter
            (fun (wb : Schedule.window) ->
              if
                Partition_id.equal wa.partition wb.partition
                && windows_intersect wa wb
              then
                push
                  (Parallel_self_overlap
                     { partition = wa.partition;
                       core_a = a;
                       window_a = wa;
                       core_b = b;
                       window_b = wb }))
            t.cores.(b))
        t.cores.(a)
    done
  done;
  (* eq. (22) over the shared MTF. *)
  let cycles =
    List.filter_map
      (fun (r : Schedule.requirement) ->
        if r.cycle > 0 then Some r.cycle else None)
      t.requirements
  in
  (match cycles with
  | [] -> ()
  | _ ->
    let lcm = Time.lcm_list cycles in
    if t.mtf mod lcm <> 0 then
      push (Mtf_not_multiple_of_lcm { mtf = t.mtf; lcm }));
  (* eq. (23) with cross-core supply. *)
  List.iter
    (fun (r : Schedule.requirement) ->
      if r.cycle > 0 && r.duration > 0 && t.mtf mod r.cycle = 0 then
        for k = 0 to (t.mtf / r.cycle) - 1 do
          let provided = cycle_supply t r.partition ~k in
          if Time.(provided < r.duration) then
            push
              (Insufficient_cycle_duration
                 { partition = r.partition;
                   cycle_index = k;
                   provided;
                   required = r.duration })
        done)
    t.requirements;
  List.rev !diags

let utilization t =
  let busy =
    Array.fold_left
      (fun acc windows ->
        List.fold_left
          (fun acc (w : Schedule.window) -> acc + w.Schedule.duration)
          acc windows)
      0 t.cores
  in
  float_of_int busy /. float_of_int t.mtf

let shard ~cores (s : Schedule.t) =
  if cores <= 0 then invalid_arg "Multicore.shard: non-positive core count";
  (* Partition m (in order of first appearance in Q) lands on core
     m mod cores; every window keeps its original offset and duration, so
     the sharded table is time-faithful to the single-core schedule. The
     single-core table has no overlapping windows, hence no partition can
     hold two cores at once and no two windows collide on a core. *)
  let order = Schedule.partitions s in
  let core_of pid =
    let rec index i = function
      | [] -> 0
      | p :: rest -> if Partition_id.equal p pid then i else index (i + 1) rest
    in
    index 0 order mod cores
  in
  let lanes = Array.make cores [] in
  List.iter
    (fun (w : Schedule.window) ->
      let c = core_of w.partition in
      lanes.(c) <- w :: lanes.(c))
    s.Schedule.windows;
  make ~change_actions:s.Schedule.change_actions ~id:s.Schedule.id
    ~name:s.Schedule.name ~mtf:s.Schedule.mtf
    ~requirements:s.Schedule.requirements
    (Array.to_list (Array.map List.rev lanes))

let pp ppf t =
  Format.fprintf ppf "@[<v2>%a %s (multicore ×%d): MTF=%a@,Q = {%a}"
    Schedule_id.pp t.id t.name (core_count t) Time.pp t.mtf
    (Format.pp_print_list
       ~pp_sep:(fun ppf () -> Format.pp_print_string ppf ", ")
       Schedule.pp_requirement)
    t.requirements;
  Array.iteri
    (fun core windows ->
      Format.fprintf ppf "@,core %d: {%a}" core
        (Format.pp_print_list
           ~pp_sep:(fun ppf () -> Format.pp_print_string ppf ", ")
           Schedule.pp_window)
        windows)
    t.cores;
  Format.fprintf ppf "@]"
