(** System-wide trace events.

    Every observable action of the simulated AIR module is recorded as one
    of these events in an [Air_sim.Trace.t]; experiments and the VITRAL-style
    renderer are pure functions of the trace. *)

open Air_sim
open Ident

type t =
  | Context_switch of {
      from : Partition_id.t option;
      to_ : Partition_id.t option;  (** [None] is the idle gap. *)
    }
      (** Partition Dispatcher switched the processing resources
          (Algorithm 2). *)
  | Schedule_switch_request of {
      by : Partition_id.t option;  (** [None]: operator/test harness. *)
      target : Schedule_id.t;
    }
      (** SET_MODULE_SCHEDULE accepted; effective at the end of the MTF. *)
  | Schedule_switch of { from : Schedule_id.t; to_ : Schedule_id.t }
      (** Partition Scheduler made the pending switch effective at an MTF
          boundary (Algorithm 1, lines 4–6). *)
  | Change_action of {
      partition : Partition_id.t;
      action : Schedule.change_action;
    }
      (** Pending ScheduleChangeAction applied at first dispatch after a
          switch (Algorithm 2, line 9). *)
  | Partition_mode_change of {
      partition : Partition_id.t;
      mode : Partition.mode;
    }
  | Process_state_change of {
      process : Process_id.t;
      state : Process.state;
    }
  | Process_dispatched of { process : Process_id.t }
      (** Became the running process of its partition (eq. (14)). *)
  | Deadline_registered of { process : Process_id.t; deadline : Time.t }
      (** PAL deadline store updated by an APEX primitive (Sect. 5.2). *)
  | Deadline_unregistered of { process : Process_id.t }
  | Deadline_violation of { process : Process_id.t; deadline : Time.t }
      (** Detected by the PAL surrogate clock-tick routine (Algorithm 3);
          the trace timestamp is the detection instant, [deadline] the
          violated deadline time. *)
  | Hm_error of {
      level : Error.level;
      code : Error.code;
      partition : Partition_id.t option;
      process : Process_id.t option;
      detail : string;
    }
  | Hm_process_action of {
      process : Process_id.t;
      action : Error.process_action;
    }
  | Hm_partition_action of {
      partition : Partition_id.t;
      action : Error.partition_action;
    }
  | Hm_module_action of { action : Error.module_action }
  | Port_send of { port : Port_name.t; bytes : int }
  | Port_receive of { port : Port_name.t; bytes : int }
  | Port_overflow of { port : Port_name.t }
      (** Queuing-port destination queue full; message discarded. *)
  | Memory_access of {
      partition : Partition_id.t;
      address : int;
      granted : bool;
    }
  | Application_output of { partition : Partition_id.t; line : string }
      (** A line printed by a partition application — what the prototype's
          per-partition VITRAL windows display. *)
  | Module_halt of { reason : string }
  | Fault_injected of { label : string }
      (** An externally injected fault (fault-injection campaign engine);
          [label] identifies the fault in campaign reports. *)

val pp : Format.formatter -> t -> unit

val label : t -> string
(** Stable kebab-case kind name of the constructor (e.g. "context-switch"),
    used as the event-kind key in observability reports. *)

(** {1 Trace queries used by experiments} *)

val is_deadline_violation : t -> bool
val is_context_switch : t -> bool
val is_schedule_switch : t -> bool
val is_hm_error : t -> bool

val violation_of : t -> (Process_id.t * Time.t) option
