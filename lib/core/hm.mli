(** AIR Health Monitor (paper Sect. 2.4, 5).

    Handles hardware and software errors with the aim of isolating each
    error within its domain of occurrence: process-level errors invoke the
    recovery action the application programmer configured; partition-level
    errors trigger a response action defined at system integration time;
    module-level errors may stop or reinitialize the entire system.

    The monitor resolves an error to the configured action — including the
    paper's "log the error a certain number of times before acting upon it"
    policy ({!Air_model.Error.Log_then}) — and counts occurrences; the
    system layer executes the resolved action. *)

open Air_model
open Ident

type tables = {
  process_actions :
    (Partition_id.t * Error.code * Error.process_action) list;
      (** Per-partition process-level recovery actions; missing entries
          default to [Ignore_error] (log only). *)
  partition_actions :
    (Partition_id.t * Error.code * Error.partition_action) list;
      (** Missing entries default to [Partition_ignore]. *)
  module_actions : (Error.code * Error.module_action) list;
      (** Missing entries default to [Module_ignore]. *)
  process_defaults : (Error.code * Error.process_action) list;
      (** Wildcard process-level actions, applying to any partition without
          a specific [process_actions] entry for the code. *)
  partition_defaults : (Error.code * Error.partition_action) list;
      (** Wildcard partition-level actions, consulted after
          [partition_actions]. *)
}

val default_tables : tables
(** Everything ignored (logged only) — the permissive integration baseline.
    Deadline misses at process level, memory violations at partition level
    and configuration errors at module level are still logged. *)

val strict_tables : tables
(** A representative strict integration, expressed as wildcard entries so it
    covers every partition of any module: deadline miss → stop faulty
    process; memory violation → partition warm restart; hardware fault →
    module reset; power failure → module shutdown. *)

type t

val create : ?metrics:Air_obs.Metrics.t -> ?tables:tables -> unit -> t
(** [tables] defaults to {!default_tables}. [metrics] receives the [hm.*]
    counter series — errors by level and by code (pre-registered for every
    {!Air_model.Error.code}), plus resolutions that escalated past the
    ignore/log-only baseline; a private registry is used when omitted. *)

val resolve_process_error :
  t ->
  partition:Partition_id.t ->
  process:int ->
  code:Error.code ->
  Error.process_action
(** Resolves the configured action; [Log_then (n, a)] yields [Ignore_error]
    for the first [n] occurrences of this (partition, process, code) triple
    and [a] afterwards. *)

val resolve_partition_error :
  t -> partition:Partition_id.t -> code:Error.code -> Error.partition_action

val resolve_module_error : t -> code:Error.code -> Error.module_action

val error_count : t -> int
(** Total errors resolved so far. *)

val count_for :
  t -> partition:Partition_id.t option -> code:Error.code -> int

val reset_counts : t -> unit
