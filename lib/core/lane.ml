type t = Single of Pmk.t | Multi of Pmk_mc.t

let core_count = function
  | Single _ -> 1
  | Multi mc -> Pmk_mc.core_count mc

let primary = function
  | Single pmk -> pmk
  | Multi mc -> Pmk_mc.core mc 0

let core t i =
  match t with
  | Single pmk ->
    if i <> 0 then invalid_arg "Lane.core: out of range";
    pmk
  | Multi mc -> Pmk_mc.core mc i

let ticks = function
  | Single pmk -> Pmk.ticks pmk
  | Multi mc -> Pmk_mc.ticks mc

let current_schedule = function
  | Single pmk -> Pmk.current_schedule pmk
  | Multi mc -> Pmk_mc.current_schedule mc

let next_schedule = function
  | Single pmk -> Pmk.next_schedule pmk
  | Multi mc -> Pmk_mc.next_schedule mc

let last_schedule_switch = function
  | Single pmk -> Pmk.last_schedule_switch pmk
  | Multi mc -> Pmk.last_schedule_switch (Pmk_mc.core mc 0)

let request_schedule_switch t id =
  match t with
  | Single pmk -> Pmk.request_schedule_switch pmk id
  | Multi mc -> Pmk_mc.request_schedule_switch mc id

let active_partitions = function
  | Single pmk -> [| Pmk.active_partition pmk |]
  | Multi mc -> Pmk_mc.active_partitions mc

(* The single occupant of the module's processing resources this tick.
   Sharded multicore tables keep partitions mutually exclusive in time
   (validated no-self-overlap plus non-overlapping source windows), so at
   most one lane is busy; should several be, lane order breaks the tie.
   The scan is a top-level loop (not a local closure) so the multicore
   per-tick occupancy sample stays allocation-free. *)
let rec first_active actives n i =
  if i >= n then None
  else
    match actives.(i) with Some _ as p -> p | None -> first_active actives n (i + 1)

let combined_active t =
  match t with
  | Single pmk -> Pmk.active_partition pmk
  | Multi mc ->
    let actives = Pmk_mc.active_partitions mc in
    first_active actives (Array.length actives) 0

(* The lane on which [pid] currently holds a core, if any — used to
   attribute injected bandwidth demand to the offender's own lane-local
   account. *)
let rec find_lane actives pid n i =
  if i >= n then None
  else
    match actives.(i) with
    | Some p when Air_model.Ident.Partition_id.equal p pid -> Some i
    | Some _ | None -> find_lane actives pid n (i + 1)

let active_lane_of t pid =
  match t with
  | Single pmk -> (
    match Pmk.active_partition pmk with
    | Some p when Air_model.Ident.Partition_id.equal p pid -> Some 0
    | Some _ | None -> None)
  | Multi mc ->
    let actives = Pmk_mc.active_partitions mc in
    find_lane actives pid (Array.length actives) 0

let next_preemption_tick = function
  | Single pmk -> Pmk.next_preemption_tick pmk
  | Multi mc -> Pmk_mc.next_preemption_tick mc

let skip t ~ticks =
  match t with
  | Single pmk -> Pmk.skip pmk ~ticks
  | Multi mc -> Pmk_mc.skip mc ~ticks

let pp ppf = function
  | Single pmk -> Pmk.pp ppf pmk
  | Multi mc ->
    Format.fprintf ppf "@[<v>";
    for i = 0 to Pmk_mc.core_count mc - 1 do
      if i > 0 then Format.fprintf ppf "@,";
      Format.fprintf ppf "lane %d: %a" i Pmk.pp (Pmk_mc.core mc i)
    done;
    Format.fprintf ppf "@]"
