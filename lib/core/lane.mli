(** PMK lane driving — one interface over the single-core scheduler
    ({!Pmk}) and the multicore scheduler ({!Pmk_mc}).

    The executive drives N lanes off one global clock: each lane runs
    Algorithms 1 and 2 for its core, mode-based schedule switches are
    broadcast so every lane switches at the same MTF boundary, and
    observation (metrics, recorder, module-level schedule state) follows
    the primary lane (lane 0). The system layer matches on the
    constructors for its per-tick hot path; everything else goes through
    the functions below. *)

open Air_sim
open Air_model
open Ident

type t = Single of Pmk.t | Multi of Pmk_mc.t

val core_count : t -> int

val primary : t -> Pmk.t
(** Lane 0 — the scheduler that owns module-level observation (metrics,
    recorder, telemetry frames, schedule state). For [Single] this is the
    scheduler itself. *)

val core : t -> int -> Pmk.t
(** The [i]th lane's scheduler (observation only). Raises
    [Invalid_argument] out of range. *)

val ticks : t -> Time.t
(** The global clock (all lanes advance in lockstep). *)

val current_schedule : t -> Schedule_id.t
val next_schedule : t -> Schedule_id.t
val last_schedule_switch : t -> Time.t

val request_schedule_switch :
  t -> Schedule_id.t -> (unit, Pmk.switch_error) result
(** Broadcast to every lane; all lanes share the schedule set and MTF, so
    the switch becomes effective on every core at the same boundary. *)

val active_partitions : t -> Partition_id.t option array
(** Who holds each core right now, in core order. *)

val combined_active : t -> Partition_id.t option
(** The single occupant of the module's processing resources this tick —
    for [Multi], the first busy lane (validated tables keep partitions
    mutually exclusive in time, so at most one lane is busy under sharded
    schedules). Feeds the combined telemetry occupancy sample. *)

val active_lane_of : t -> Partition_id.t -> int option
(** The lane on which the partition currently holds a core, if any — the
    contention model attributes injected bandwidth demand to it. *)

val next_preemption_tick : t -> Time.t
(** The next instant at which any lane's heir can change (minimum over
    lanes of {!Pmk.next_preemption_tick}). *)

val skip : t -> ticks:Time.t -> unit
(** Batch-advance every lane's clock by [ticks] (see {!Pmk.skip}). *)

val pp : Format.formatter -> t -> unit
