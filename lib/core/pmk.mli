(** AIR Partition Management Kernel (paper Sect. 2.1, 4).

    First level of the two-level hierarchical scheduling scheme: the
    Partition Scheduler (Algorithm 1) runs at every system clock tick,
    consults the current partition scheduling table's preemption points and
    selects the heir partition; the Partition Dispatcher (Algorithm 2)
    performs the context switch, accounts the ticks elapsed since the heir
    last ran, and applies any pending schedule-change action.

    Mode-based schedules: multiple PSTs are installed at integration time;
    {!request_schedule_switch} (APEX SET_MODULE_SCHEDULE) stores the
    identifier of the next schedule, and the switch becomes effective at the
    start of the next major time frame (Algorithm 1, lines 3–7). *)

open Air_sim
open Air_model
open Ident

type t

val create :
  ?metrics:Air_obs.Metrics.t ->
  ?recorder:Air_obs.Span.t ->
  ?telemetry:Air_obs.Telemetry.t ->
  ?frame_owner:bool ->
  ?occupancy:bool ->
  ?lane:int ->
  ?window_allotment:int array array ->
  ?initial_schedule:Schedule_id.t ->
  partition_count:int ->
  Schedule.t list ->
  t
(** Schedules are indexed by their {!Schedule_id}; ids must be dense
    ([0 .. n-1]) and tables valid per {!Validate.validate_set} — raises
    [Invalid_argument] otherwise. [initial_schedule] defaults to id 0.
    [metrics] receives the [pmk.*] series (ticks, schedule/context
    switches, dispatcher elapsed histogram); a private registry is used
    when omitted. [recorder], when given, receives flight-recorder spans:
    a [partition-window] span per dispatch interval (on the partition's
    track), a [schedule-switch] instant on the module track at every
    effective mode switch, and a [schedule-change-action] instant when a
    pending action is delivered at first dispatch. [telemetry], when
    given, is primed with the initial schedule's per-partition window
    allotments and then fed one occupancy sample per {!tick} plus a
    dispatch-jitter sample per context switch; its frame is closed at
    every MTF boundary (see {!tick_outcome.frame_closed}).

    [frame_owner] (default [true]) controls whether this scheduler closes
    telemetry frames at MTF boundaries; [occupancy] (default [true])
    whether it feeds the per-tick busy/idle sample. A multicore executive
    shares one accumulator between its lanes: lane 0 owns the frame, all
    lanes disable per-lane occupancy and the executive records one
    combined sample per global tick instead. [lane] (default 0) is this
    scheduler's core index within a multicore executive: every
    [partition-window] span it records carries the lane as its sub-lane,
    so the timeline can attribute windows to cores; module-track
    [schedule-switch] instants are only recorded by the frame owner, one
    per effective switch cluster-wide. [window_allotment] overrides
    the per-schedule per-partition allotted window time used to prime
    telemetry frames (indexed by schedule id, then partition) — a
    multicore frame owner passes the cross-core totals, since its own
    lane's windows only cover part of each partition's grant. *)

val schedule_count : t -> int
val schedules : t -> Schedule.t array
val schedule : t -> Schedule_id.t -> Schedule.t
val current_schedule : t -> Schedule_id.t
val next_schedule : t -> Schedule_id.t
val last_schedule_switch : t -> Time.t
(** Time of the last schedule switch; 0 if none ever occurred. *)

val ticks : t -> Time.t
(** The global system clock tick counter. *)

val active_partition : t -> Partition_id.t option
val heir_partition : t -> Partition_id.t option

type switch_error =
  | No_such_schedule of int
  | Same_schedule  (** Requested schedule is already current and no switch is pending — ARINC 653 still accepts this (NO_ACTION). *)

val request_schedule_switch :
  t -> Schedule_id.t -> (unit, switch_error) result
(** Stores the identifier; the switch happens at the top of the next MTF.
    [Error Same_schedule] is informational — the request is remembered
    (it cancels a pending switch back to the current schedule). *)

(** Outcome of one clock tick, for the system layer to act upon.

    The fields are mutable because {!tick} reuses one outcome record per
    scheduler, overwriting it in place so the steady-state tick allocates
    nothing: the returned record is only valid until the next {!tick} on
    the same scheduler — copy out what must survive. *)
type tick_outcome = {
  mutable schedule_switched : (Schedule_id.t * Schedule_id.t) option;
      (** (from, to) when this tick's MTF boundary made a pending switch
          effective. *)
  mutable context_switch :
    (Partition_id.t option * Partition_id.t option) option;
      (** (previous active, new active) when the dispatcher switched. *)
  mutable elapsed : Time.t;
      (** Ticks elapsed since the (new) active partition last held the
          processing resources — what the PAL announces to the POS. Zero
          when the tick left the processor idle. *)
  mutable change_action : (Partition_id.t * Schedule.change_action) option;
      (** Pending ScheduleChangeAction to apply to the dispatched partition
          (first dispatch after a switch; [No_action] entries are not
          reported). *)
  mutable frame_closed : Air_obs.Telemetry.frame option;
      (** The telemetry frame closed by this tick's MTF boundary, when a
          telemetry accumulator is attached. The boundary tick itself is
          accumulated into the {e new} frame; after a mode-based schedule
          switch the closed frame still carries the {e old} schedule's
          index, so watchdogs judge each frame against the schedule it ran
          under. *)
}

val tick : t -> tick_outcome
(** Advance the clock one tick and run Scheduler + Dispatcher. Returns the
    scheduler's reused outcome record (see {!tick_outcome}). *)

val next_preemption_tick : t -> Time.t
(** The absolute tick at which the preemption table next fires — the next
    window boundary, idle-gap start, MTF boundary (frame close) or
    effective schedule switch, whichever comes first. Strictly greater
    than {!ticks}. Between {!ticks} and this instant the heir partition
    cannot change, so a quiescent span may be batch-advanced with
    {!skip}. *)

val skip : t -> ticks:Time.t -> unit
(** [skip t ~ticks:n] batch-advances the clock by [n] ticks in O(1),
    equivalent to [n] calls of {!tick} across a span the caller has proven
    quiescent: [ticks t + n < next_preemption_tick t] and no
    partition-level work pending. Updates the tick counter and metrics,
    the active partition's lastTick bookkeeping, and replays the span into
    the telemetry occupancy accumulator. No-op for [n <= 0]. *)

val mtf_position : t -> Time.t
(** Offset of the current tick within the running MTF:
    [max 0 (ticks - last_schedule_switch) mod MTF] — always within
    [\[0, MTF)], including before the first tick. *)

val pp : Format.formatter -> t -> unit
