open Air_sim
open Air_model
open Air_pos
open Air_ipc
open Air_spatial
open Ident

type intra_object =
  | Semaphore_object of {
      name : string;
      initial : int;
      maximum : int;
      discipline : Intra.discipline;
    }
  | Event_object of { name : string }
  | Blackboard_object of { name : string; max_message_size : int }
  | Buffer_object of {
      name : string;
      depth : int;
      max_message_size : int;
      discipline : Intra.discipline;
    }

type partition_setup = {
  partition : Partition.t;
  scripts : Script.t array;
  policy : Kernel.policy;
  store : Deadline_store.impl;
  autostart : bool array;
  memory_requests : Memory.request list;
  intra_objects : intra_object list;
  error_handler : string option;
}

let default_memory_requests =
  [ { Memory.req_section = Memory.Code; req_size = 16384 };
    { Memory.req_section = Memory.Data; req_size = 16384 };
    { Memory.req_section = Memory.Stack; req_size = 16384 } ]

let partition_setup ?(policy = Kernel.Priority_preemptive)
    ?(store = Deadline_store.Linked_list_impl) ?(autostart = [])
    ?(memory_requests = default_memory_requests) ?(intra_objects = [])
    ?error_handler partition scripts =
  let n = Partition.process_count partition in
  if List.length scripts <> n then
    invalid_arg
      "System.partition_setup: one script per process is required";
  let autostart_flags =
    Array.init n (fun q ->
        let name = partition.Partition.processes.(q).Process.name in
        match List.assoc_opt name autostart with
        | Some flag -> flag
        | None -> true)
  in
  List.iter
    (fun (name, _) ->
      if Option.is_none (Partition.find_process partition name) then
        invalid_arg
          (Printf.sprintf
             "System.partition_setup: autostart names unknown process %S"
             name))
    autostart;
  (match error_handler with
  | Some name when Option.is_none (Partition.find_process partition name) ->
    invalid_arg
      (Printf.sprintf
         "System.partition_setup: error handler names unknown process %S"
         name)
  | Some _ | None -> ());
  { partition;
    scripts = Array.of_list scripts;
    policy;
    store;
    autostart = autostart_flags;
    memory_requests;
    intra_objects;
    error_handler }

type config = {
  partitions : partition_setup list;
  schedules : Schedule.t list;
  initial_schedule : Schedule_id.t option;
  network : Port.network;
  hm_tables : Hm.tables;
  trace_capacity : int option;
  recorder : Air_obs.Span.t option;
  telemetry : Air_obs.Telemetry.config option;
}

let config ?initial_schedule ?(network = { Port.ports = []; channels = [] })
    ?(hm_tables = Hm.default_tables) ?trace_capacity ?recorder ?telemetry
    ~partitions ~schedules () =
  { partitions; schedules; initial_schedule; network; hm_tables;
    trace_capacity; recorder; telemetry }

type task = {
  mutable pc : int;
  mutable compute_left : int;
}

type prt = {
  setup : partition_setup;
  kernel : Kernel.t;
  intra : Intra.t;
  pal : Pal.t;
  env : Apex.env;
  tasks : task array;
  mutable mode : Partition.mode;
  mutable jitter_left : int;
      (** Active ticks whose PAL clock-tick announcement is still being
          suppressed by an injected clock-jitter fault. *)
  mutable jitter_deferred : int;
      (** Elapsed ticks accumulated while suppressed; announced as one
          catch-up burst when the jitter window ends. *)
}

type t = {
  cfg : config;
  pmk : Pmk.t;
  hm : Hm.t;
  router : Router.t;
  protection : Protection.t;
  trace : Event.t Trace.t;
  metrics : Air_obs.Metrics.t;
  events : Event.t Air_obs.Event.t;
  telemetry : Air_obs.Telemetry.t option;
  partitions : prt array;
  mutable halt_reason : string option;
}

let now t = Stdlib.max 0 (Pmk.ticks t.pmk)

let emit t ev =
  Trace.record t.trace (now t) ev;
  Air_obs.Event.record t.events ~time:(now t) ~kind:(Event.label ev) ev

(* Flight recorder: a Health Monitor handler invocation becomes a span on
   the affected track (simulated time does not advance during handling, so
   the span is zero-width — it still shows nesting and ordering). *)
let with_hm_span t ~track ~code name f =
  match t.cfg.recorder with
  | None -> f ()
  | Some r ->
    Air_obs.Span.begin_span r ~now:(now t) ~track
      ~detail:(Format.asprintf "%a" Error.pp_code code)
      name;
    let result = f () in
    Air_obs.Span.end_span r ~now:(now t) ~track;
    result

let prt_of t pid = t.partitions.(Partition_id.index pid)

(* Telemetry: count every Health Monitor invocation against the frame
   being accumulated (module-level errors carry no partition). *)
let note_hm_invocation t ~partition =
  match t.telemetry with
  | None -> ()
  | Some tel -> Air_obs.Telemetry.on_hm_error tel ~partition

(* --- Partition lifecycle ----------------------------------------------- *)

let reset_task task =
  task.pc <- 0;
  task.compute_left <- 0

let set_mode t prt mode =
  if not (Partition.mode_equal prt.mode mode) then begin
    prt.mode <- mode;
    emit t
      (Event.Partition_mode_change
         { partition = prt.setup.partition.Partition.id; mode })
  end

(* START wrapper: the task's program counter must restart from the entry
   point whenever the process (re)starts. *)
let start_process_internal t prt q ~delay =
  reset_task prt.tasks.(q);
  ignore t;
  Kernel.start prt.kernel ~now:(Stdlib.max 0 (Pmk.ticks t.pmk)) ~delay q

let shutdown_partition t prt =
  Kernel.stop_all prt.kernel;
  Intra.reset prt.intra;
  Pal.clear_deadlines prt.pal;
  Array.iter reset_task prt.tasks;
  prt.jitter_left <- 0;
  prt.jitter_deferred <- 0;
  set_mode t prt Partition.Idle

let begin_restart t prt mode =
  Kernel.stop_all prt.kernel;
  (* Cold start wipes the partition's context — including intrapartition
     objects — while a warm start preserves it (ARINC 653: the two modes
     differ in the initial context, paper Sect. 3.1). *)
  (match mode with
  | Partition.Cold_start -> Intra.reset prt.intra
  | Partition.Warm_start | Partition.Normal | Partition.Idle ->
    Intra.clear_mailboxes prt.intra);
  Pal.clear_deadlines prt.pal;
  Array.iter reset_task prt.tasks;
  prt.jitter_left <- 0;
  prt.jitter_deferred <- 0;
  set_mode t prt mode

(* Partition initialization: performed the first time the partition is
   dispatched while in a starting mode — start the autostart processes and
   enter normal mode. *)
let create_intra_objects prt =
  (* Idempotent: after a warm restart the objects already exist and the
     Already_exists outcome is expected. *)
  List.iter
    (fun obj ->
      ignore
        (match obj with
        | Semaphore_object { name; initial; maximum; discipline } ->
          Intra.create_semaphore prt.intra ~name ~initial ~maximum discipline
        | Event_object { name } -> Intra.create_event prt.intra ~name
        | Blackboard_object { name; max_message_size } ->
          Intra.create_blackboard prt.intra ~name ~max_message_size
        | Buffer_object { name; depth; max_message_size; discipline } ->
          Intra.create_buffer prt.intra ~name ~depth ~max_message_size
            discipline))
    prt.setup.intra_objects

let initialize_partition t prt =
  create_intra_objects prt;
  Array.iteri
    (fun q auto ->
      if auto then ignore (start_process_internal t prt q ~delay:Time.zero))
    prt.setup.autostart;
  set_mode t prt Partition.Normal

let apply_partition_action t prt (action : Error.partition_action) =
  emit t
    (Event.Hm_partition_action
       { partition = prt.setup.partition.Partition.id; action });
  match action with
  | Error.Partition_ignore -> ()
  | Error.Partition_idle -> shutdown_partition t prt
  | Error.Partition_warm_restart -> begin_restart t prt Partition.Warm_start
  | Error.Partition_cold_restart -> begin_restart t prt Partition.Cold_start

let apply_module_action t (action : Error.module_action) =
  emit t (Event.Hm_module_action { action });
  match action with
  | Error.Module_ignore -> ()
  | Error.Module_shutdown ->
    t.halt_reason <- Some "health monitor: module shutdown";
    emit t (Event.Module_halt { reason = "health monitor: module shutdown" })
  | Error.Module_reset ->
    Array.iter (fun prt -> begin_restart t prt Partition.Cold_start)
      t.partitions

let rec apply_process_action t prt q (action : Error.process_action) =
  emit t
    (Event.Hm_process_action
       { process = Partition.process_id prt.setup.partition q; action });
  match action with
  | Error.Ignore_error -> ()
  | Error.Log_then (_, _) ->
    (* The HM resolves thresholds before returning an action; a Log_then
       reaching this point behaves as its ultimate action. *)
    (match action with
    | Error.Log_then (_, inner) -> apply_process_action t prt q inner
    | _ -> ())
  | Error.Restart_process ->
    ignore (Kernel.stop prt.kernel q);
    ignore (start_process_internal t prt q ~delay:Time.zero)
  | Error.Stop_process -> ignore (Kernel.stop prt.kernel q)
  | Error.Stop_partition_of_process -> shutdown_partition t prt
  | Error.Restart_partition_of_process mode -> begin_restart t prt mode

let report_process_error t prt ~process code ~detail =
  let partition = prt.setup.partition.Partition.id in
  emit t
    (Event.Hm_error
       { level = Error.Process_level;
         code;
         partition = Some partition;
         process = Some (Partition.process_id prt.setup.partition process);
         detail });
  note_hm_invocation t ~partition:(Some (Partition_id.index partition));
  with_hm_span t ~track:(Partition_id.index partition) ~code
    "hm.process-error" (fun () ->
      let action = Hm.resolve_process_error t.hm ~partition ~process ~code in
      apply_process_action t prt process action;
      (* Invoke the partition's application error handler, if configured and
         not already active (and unless the error came from the handler
         itself). *)
      match prt.setup.error_handler with
      | Some name -> (
        match Kernel.find_by_name prt.kernel name with
        | Some handler
          when handler <> process
               && Process.state_equal (Kernel.state prt.kernel handler)
                    Process.Dormant ->
          ignore (start_process_internal t prt handler ~delay:Time.zero)
        | Some _ | None -> ())
      | None -> ())

let report_partition_error t prt code ~detail =
  let partition = prt.setup.partition.Partition.id in
  emit t
    (Event.Hm_error
       { level = Error.Partition_level;
         code;
         partition = Some partition;
         process = None;
         detail });
  note_hm_invocation t ~partition:(Some (Partition_id.index partition));
  with_hm_span t ~track:(Partition_id.index partition) ~code
    "hm.partition-error" (fun () ->
      let action = Hm.resolve_partition_error t.hm ~partition ~code in
      apply_partition_action t prt action)

let report_module_error t code ~detail =
  emit t
    (Event.Hm_error
       { level = Error.Module_level;
         code;
         partition = None;
         process = None;
         detail });
  note_hm_invocation t ~partition:None;
  with_hm_span t ~track:(-1) ~code "hm.module-error" (fun () ->
      apply_module_action t (Hm.resolve_module_error t.hm ~code))

(* --- Queuing-port delivery notification -------------------------------- *)

(* A queuing message arrived at [ports]; wake the longest-blocked receiver
   of each and hand it the message through its partition's mailbox. *)
let notify_port_delivery t ports =
  List.iter
    (fun port ->
      match Router.port_config t.router port with
      | None -> ()
      | Some cfg ->
        let owner = prt_of t cfg.Port.partition in
        let waiting = function
          | Kernel.On_queuing_port p -> String.equal p port
          | _ -> false
        in
        (match Kernel.waiters_fifo owner.kernel waiting with
        | [] -> ()
        | q :: _ -> (
          match
            Router.receive_queuing ~now:(now t) t.router
              ~caller:cfg.Port.partition ~port
          with
          | Ok (Some msg) ->
            emit t (Event.Port_receive { port; bytes = Bytes.length msg });
            (match t.cfg.recorder with
            | None -> ()
            | Some r ->
              Air_obs.Span.instant r ~now:(now t)
                ~track:(Partition_id.index cfg.Port.partition) ~sub:q
                ~detail:port "ipc.deliver");
            (* Deliver through the partition mailbox, as for buffers. *)
            Intra.deliver owner.intra ~process:q msg;
            Kernel.wake owner.kernel ~now:(now t) q ~timed_out:false
          | Ok None | Error _ -> ())))
    ports

(* --- Construction ------------------------------------------------------ *)

let create (cfg : config) =
  if cfg.partitions = [] then
    invalid_arg "System.create: at least one partition is required";
  let partition_count = List.length cfg.partitions in
  List.iteri
    (fun i setup ->
      if Partition_id.index setup.partition.Partition.id <> i then
        invalid_arg
          "System.create: partition identifiers must be dense and in order")
    cfg.partitions;
  (* One registry shared by every component, so the end-of-run snapshot
     covers the whole module in a single pass. *)
  let metrics = Air_obs.Metrics.create () in
  let telemetry =
    Option.map
      (fun c -> Air_obs.Telemetry.create ~config:c ~partition_count ())
      cfg.telemetry
  in
  let pmk =
    Pmk.create ~metrics ?recorder:cfg.recorder ?telemetry
      ?initial_schedule:cfg.initial_schedule ~partition_count cfg.schedules
  in
  let hm = Hm.create ~metrics ~tables:cfg.hm_tables () in
  let router = Router.create ~metrics ?recorder:cfg.recorder cfg.network in
  (match telemetry with
  | None -> ()
  | Some tel ->
    Router.set_delivery_observer router (fun ~latency ->
        Air_obs.Telemetry.on_ipc_delivery tel ~latency));
  let maps =
    Memory.allocate
      (List.map
         (fun setup ->
           (setup.partition.Partition.id, setup.memory_requests))
         cfg.partitions)
  in
  let protection =
    Protection.create ~metrics ~contexts:(partition_count + 1) maps
  in
  let trace = Trace.create ?capacity:cfg.trace_capacity () in
  let events = Air_obs.Event.create () in
  (* The system record is knotted with the per-partition closures through
     this forward reference. *)
  let system_ref = ref None in
  let the_system () =
    match !system_ref with
    | Some s -> s
    | None -> failwith "System: used before initialization completed"
  in
  let make_prt setup =
    let pid = setup.partition.Partition.id in
    let pal =
      Pal.create ~metrics ?recorder:cfg.recorder ?telemetry
        ~store:setup.store ~partition:pid ()
    in
    let emit_ev ev =
      let t = the_system () in
      emit t ev
    in
    let hooks =
      { Kernel.register_deadline =
          (fun ~process deadline ->
            Pal.register_deadline pal ~process deadline;
            emit_ev
              (Event.Deadline_registered
                 { process = Partition.process_id setup.partition process;
                   deadline }));
        unregister_deadline =
          (fun ~process ->
            Pal.unregister_deadline pal ~process;
            emit_ev
              (Event.Deadline_unregistered
                 { process = Partition.process_id setup.partition process }));
        on_state_change =
          (fun ~process state ->
            emit_ev
              (Event.Process_state_change
                 { process = Partition.process_id setup.partition process;
                   state })) }
    in
    let kernel =
      Kernel.create ~partition:pid ~policy:setup.policy ~hooks
        setup.partition.Partition.processes
    in
    let intra = Intra.create kernel in
    let n = Partition.process_count setup.partition in
    let tasks = Array.init n (fun _ -> { pc = 0; compute_left = 0 }) in
    let rec prt =
      { setup;
        kernel;
        intra;
        pal;
        env =
          { Apex.partition = setup.partition;
            kernel;
            intra;
            router;
            pmk;
            now = (fun () -> now (the_system ()));
            emit = emit_ev;
            report_process_error =
              (fun ~process code ~detail ->
                report_process_error (the_system ()) prt ~process code
                  ~detail);
            report_partition_error =
              (fun code ~detail ->
                report_partition_error (the_system ()) prt code ~detail);
            notify_port_delivery =
              (fun ports -> notify_port_delivery (the_system ()) ports);
            mode = (fun () -> prt.mode);
            set_mode =
              (fun mode ->
                let t = the_system () in
                match mode with
                | Partition.Normal -> set_mode t prt Partition.Normal
                | Partition.Idle -> shutdown_partition t prt
                | Partition.Cold_start | Partition.Warm_start ->
                  begin_restart t prt mode) };
        tasks;
        mode = setup.partition.Partition.initial_mode;
        jitter_left = 0;
        jitter_deferred = 0 }
    in
    prt
  in
  let partitions =
    Array.of_list (List.map make_prt cfg.partitions)
  in
  let t =
    { cfg; pmk; hm; router; protection; trace; metrics; events; telemetry;
      partitions; halt_reason = None }
  in
  system_ref := Some t;
  t

(* --- Script interpretation --------------------------------------------- *)

(* Zero-duration actions executed within a single tick are capped; a script
   made only of such actions still consumes CPU time. *)
let max_actions_per_tick = 32

let exec_action t prt q (action : Script.action) : Apex.outcome =
  let env = prt.env in
  let b = Bytes.of_string in
  match action with
  | Script.Compute _ -> Apex.Done Apex.No_error (* handled by the caller *)
  | Script.Periodic_wait -> Apex.periodic_wait env ~process:q
  | Script.Timed_wait d -> Apex.timed_wait env ~process:q d
  | Script.Replenish budget -> Apex.replenish env ~process:q budget
  | Script.Write_sampling (port, payload) ->
    Apex.write_sampling_message env ~process:q ~port (b payload)
  | Script.Read_sampling port ->
    Apex.read_sampling_message env ~process:q ~port
  | Script.Send_queuing (port, payload) ->
    Apex.send_queuing_message env ~process:q ~port (b payload)
  | Script.Receive_queuing (port, timeout) ->
    Apex.receive_queuing_message env ~process:q ~port ~timeout
  | Script.Wait_semaphore (name, timeout) ->
    Apex.wait_semaphore env ~process:q ~name ~timeout
  | Script.Signal_semaphore name -> Apex.signal_semaphore env ~process:q ~name
  | Script.Wait_event (name, timeout) ->
    Apex.wait_event env ~process:q ~name ~timeout
  | Script.Set_event name -> Apex.set_event env ~process:q ~name
  | Script.Reset_event name -> Apex.reset_event env ~process:q ~name
  | Script.Display_blackboard (name, payload) ->
    Apex.display_blackboard env ~process:q ~name (b payload)
  | Script.Clear_blackboard name -> Apex.clear_blackboard env ~process:q ~name
  | Script.Read_blackboard (name, timeout) ->
    Apex.read_blackboard env ~process:q ~name ~timeout
  | Script.Send_buffer (name, payload, timeout) ->
    Apex.send_buffer env ~process:q ~name (b payload) ~timeout
  | Script.Receive_buffer (name, timeout) ->
    Apex.receive_buffer env ~process:q ~name ~timeout
  | Script.Read_memory addr | Script.Write_memory addr ->
    let access =
      match action with
      | Script.Write_memory _ -> Mmu.Write
      | _ -> Mmu.Read
    in
    let pid = prt.setup.partition.Partition.id in
    let granted =
      match
        Protection.access t.protection ~partition:pid
          ~level:Memory.Application ~access addr
      with
      | Ok () -> true
      | Error _ -> false
    in
    emit t (Event.Memory_access { partition = pid; address = addr; granted });
    if granted then Apex.Done Apex.No_error
    else begin
      report_partition_error t prt Error.Memory_violation
        ~detail:(Printf.sprintf "address 0x%x" addr);
      Apex.Done Apex.Invalid_config
    end
  | Script.Log line -> Apex.report_application_message env ~process:q line
  | Script.Raise_application_error detail ->
    Apex.raise_application_error env ~process:q detail
  | Script.Request_schedule i ->
    Apex.set_module_schedule env ~process:q (Schedule_id.make i)
  | Script.Log_schedule_status ->
    let status = Apex.get_module_schedule_status env in
    Apex.report_application_message env ~process:q
      (Format.asprintf "schedule status: %a" Apex.pp_schedule_status status)
  | Script.Suspend_self timeout -> Apex.suspend_self env ~process:q ~timeout
  | Script.Resume_process name -> (
    match Kernel.find_by_name prt.kernel name with
    | Some target -> Apex.resume env ~process:target
    | None -> Apex.Done Apex.Invalid_param)
  | Script.Start_other name -> (
    match Kernel.find_by_name prt.kernel name with
    | Some target -> (
      match start_process_internal t prt target ~delay:Time.zero with
      | Ok () -> Apex.Done Apex.No_error
      | Error _ -> Apex.Done Apex.No_action)
    | None -> Apex.Done Apex.Invalid_param)
  | Script.Stop_other name -> (
    match Kernel.find_by_name prt.kernel name with
    | Some target -> Apex.stop prt.env ~process:target
    | None -> Apex.Done Apex.Invalid_param)
  | Script.Stop_self -> Apex.stop_self env ~process:q
  | Script.Lock_preemption -> (
    match Kernel.lock_preemption prt.kernel ~process:q with
    | Ok _ -> Apex.Done Apex.No_error
    | Error _ -> Apex.Done Apex.Invalid_mode)
  | Script.Unlock_preemption -> (
    match Kernel.unlock_preemption prt.kernel ~process:q with
    | Ok _ -> Apex.Done Apex.No_error
    | Error _ -> Apex.Done Apex.No_action)
  | Script.Disable_interrupts ->
    (* Paravirtualization (paper Sect. 2.5): the PMK traps attempts to
       disable or divert system clock interrupts; the guest continues. *)
    emit t
      (Event.Hm_error
         { level = Error.Process_level;
           code = Error.Illegal_request;
           partition = Some prt.setup.partition.Partition.id;
           process = Some (Partition.process_id prt.setup.partition q);
           detail = "clock interrupt disable attempt trapped (paravirtualized)" });
    Apex.Done Apex.Invalid_mode

let run_task_tick t prt q =
  (* A message delivered while the process was blocked is consumed here. *)
  ignore (Intra.take_delivery prt.intra ~process:q);
  ignore (Kernel.take_timed_out prt.kernel q);
  let task = prt.tasks.(q) in
  let script = prt.setup.scripts.(q) in
  let body = script.Script.body in
  (* One call = one tick of CPU. A Compute action consumes the tick;
     zero-duration actions (service calls, logs) execute for free, before
     or after the computation — so a body like [Compute 60; Log; Periodic_wait]
     costs exactly 60 ticks per activation, with the APEX calls happening
     within the final tick. *)
  let consumed = ref false in
  let stop = ref false in
  let actions = ref 0 in
  while (not !stop) && !actions < max_actions_per_tick do
    incr actions;
    if task.pc >= Array.length body then begin
      match script.Script.on_end with
      | Script.Repeat ->
        task.pc <- 0;
        if Array.length body = 0 then begin
          ignore (Kernel.stop prt.kernel q);
          stop := true
        end
      | Script.Stop ->
        ignore (Apex.stop_self prt.env ~process:q);
        stop := true
    end
    else begin
      match body.(task.pc) with
      | Script.Compute n ->
        if n <= 0 then task.pc <- task.pc + 1
        else if !consumed then
          (* A second computation cannot start within the same tick. *)
          stop := true
        else begin
          if task.compute_left = 0 then task.compute_left <- n;
          task.compute_left <- task.compute_left - 1;
          consumed := true;
          if task.compute_left = 0 then task.pc <- task.pc + 1
          else stop := true
        end
      | action ->
        let outcome = exec_action t prt q action in
        task.pc <- task.pc + 1;
        (match outcome with
        | Apex.Blocked -> stop := true
        | Apex.Done _ | Apex.Msg _ ->
          (* The process may have stopped itself, been restarted by a
             recovery action, or shut its partition down. *)
          (match Kernel.state prt.kernel q with
          | Process.Running -> ()
          | Process.Dormant | Process.Ready | Process.Waiting ->
            stop := true);
          if not (Partition.mode_equal prt.mode Partition.Normal) then
            stop := true)
    end
  done

(* --- The system clock tick --------------------------------------------- *)

(* Temporal-health watchdogs: a frame just closed at the MTF boundary;
   judge it against the watchdog of the schedule it ran under (after a
   mode-based switch the new frame is judged by the new schedule's
   watchdog) and raise one Temporal_degradation error per offending scope —
   at most one module-level error and one per breaching partition per
   frame, so a configured HM action fires exactly once per offending
   frame. *)
let handle_closed_frame t (frame : Air_obs.Telemetry.frame) =
  match t.telemetry with
  | None -> ()
  | Some tel ->
    let wd = Air_obs.Telemetry.watchdog_for tel ~schedule:frame.f_schedule in
    (match Air_obs.Telemetry.breaches wd frame with
    | [] -> ()
    | breaches ->
      let detail scope_breaches =
        Format.asprintf "frame %d: %a" frame.f_index
          (Format.pp_print_list
             ~pp_sep:(fun ppf () -> Format.pp_print_string ppf "; ")
             Air_obs.Telemetry.pp_breach)
          scope_breaches
      in
      let module_breaches, partition_breaches =
        List.partition
          (fun b -> Air_obs.Telemetry.breach_partition b = None)
          breaches
      in
      if module_breaches <> [] then
        report_module_error t Error.Temporal_degradation
          ~detail:(detail module_breaches);
      Array.iteri
        (fun i prt ->
          match
            List.filter
              (fun b -> Air_obs.Telemetry.breach_partition b = Some i)
              partition_breaches
          with
          | [] -> ()
          | mine ->
            report_partition_error t prt Error.Temporal_degradation
              ~detail:(detail mine))
        t.partitions)

let step t =
  match t.halt_reason with
  | Some _ -> ()
  | None ->
    let outcome = Pmk.tick t.pmk in
    (match outcome.Pmk.schedule_switched with
    | Some (from, to_) -> emit t (Event.Schedule_switch { from; to_ })
    | None -> ());
    (match outcome.Pmk.context_switch with
    | Some (from, to_) -> emit t (Event.Context_switch { from; to_ })
    | None -> ());
    (match outcome.Pmk.change_action with
    | Some (pid, action) ->
      let prt = prt_of t pid in
      emit t (Event.Change_action { partition = pid; action });
      (* Restart actions apply to partitions running in normal mode
         (Sect. 4.2); a partition still initializing restarts anyway. *)
      (match action with
      | Schedule.No_action -> ()
      | Schedule.Warm_restart_partition ->
        begin_restart t prt Partition.Warm_start
      | Schedule.Cold_restart_partition ->
        begin_restart t prt Partition.Cold_start)
    | None -> ());
    (match outcome.Pmk.frame_closed with
    | Some frame -> handle_closed_frame t frame
    | None -> ());
    (match Pmk.active_partition t.pmk with
    | None -> ()
    | Some pid ->
      let prt = prt_of t pid in
      (* Partition initialization completes at first dispatch. *)
      (match prt.mode with
      | Partition.Cold_start | Partition.Warm_start ->
        initialize_partition t prt
      | Partition.Normal | Partition.Idle -> ());
      (match prt.mode with
      | Partition.Normal ->
        let tnow = now t in
        (* PAL surrogate clock tick announcement (Algorithm 3): announce
           the elapsed ticks to the POS, then verify deadlines. An injected
           clock-jitter fault suppresses the announcement — the tick is
           lost at the PMK, the running process keeps computing — and the
           withheld ticks are announced as one catch-up burst when the
           jitter window ends (exercising the PAL catch-up path). *)
        if outcome.Pmk.elapsed > 0 && prt.jitter_left > 0 then begin
          prt.jitter_left <- prt.jitter_left - 1;
          prt.jitter_deferred <- prt.jitter_deferred + outcome.Pmk.elapsed
        end
        else if outcome.Pmk.elapsed > 0 || prt.jitter_deferred > 0 then begin
          let elapsed = outcome.Pmk.elapsed + prt.jitter_deferred in
          prt.jitter_deferred <- 0;
          let violations =
            Pal.announce_ticks prt.pal ~now:tnow ~elapsed
              ~announce_to_pos:(fun ~elapsed:_ ->
                Kernel.announce_ticks prt.kernel ~now:tnow)
          in
          List.iter
            (fun { Pal.process; deadline } ->
              emit t
                (Event.Deadline_violation
                   { process = Partition.process_id prt.setup.partition process;
                     deadline });
              report_process_error t prt ~process Error.Deadline_missed
                ~detail:
                  (Format.asprintf "deadline %a missed at %a" Time.pp deadline
                     Time.pp tnow))
            violations
        end;
        (* Second scheduling level: the POS selects the heir process and it
           executes one tick of its body. *)
        if
          Option.is_none t.halt_reason
          && Partition.mode_equal prt.mode Partition.Normal
        then begin
          match Kernel.schedule prt.kernel ~now:(now t) with
          | Some q -> run_task_tick t prt q
          | None -> ()
        end
      | Partition.Idle | Partition.Cold_start | Partition.Warm_start -> ()))

let run t ~ticks =
  for _ = 1 to ticks do
    step t
  done

let run_mtfs t n =
  for _ = 1 to n do
    let current = Pmk.schedule t.pmk (Pmk.current_schedule t.pmk) in
    let mtf = current.Schedule.mtf in
    (* Ticks executed within the running MTF; 0 exactly at a boundary. *)
    let executed = Pmk.ticks t.pmk - Pmk.last_schedule_switch t.pmk + 1 in
    let into = ((executed mod mtf) + mtf) mod mtf in
    run t ~ticks:(mtf - into)
  done

let halted t = t.halt_reason

(* --- Observation -------------------------------------------------------- *)

let trace t = t.trace
let pmk t = t.pmk
let hm t = t.hm
let router t = t.router
let protection t = t.protection
let metrics t = t.metrics
let metrics_snapshot t = Air_obs.Metrics.snapshot t.metrics
let event_counts t = Air_obs.Event.counts t.events

let metrics_report t =
  Air_obs.Report.to_string ~events:(event_counts t) (metrics_snapshot t)

let metrics_json t =
  Air_obs.Report.to_json ~events:(event_counts t) (metrics_snapshot t)

let recorder t = t.cfg.recorder
let telemetry t = t.telemetry

let telemetry_frames t =
  match t.telemetry with
  | None -> []
  | Some tel -> Air_obs.Telemetry.frames tel

(* Close the final partial frame so the tail of a run that does not end
   exactly on an MTF boundary still reaches the exported frame list.
   Watchdogs are deliberately not evaluated on a flushed partial frame. *)
let telemetry_flush t =
  match t.telemetry with
  | None -> None
  | Some tel -> Air_obs.Telemetry.flush tel ~now:(now t + 1)

let spans t =
  match t.cfg.recorder with
  | None -> []
  | Some r -> Air_obs.Span.spans r

let track_names t =
  (-1, "AIR module")
  :: Array.to_list
       (Array.map
          (fun prt ->
            ( Partition_id.index prt.setup.partition.Partition.id,
              prt.setup.partition.Partition.name ))
          t.partitions)

let chrome_trace t =
  let spans =
    match t.cfg.recorder with
    | None -> []
    | Some r ->
      Air_obs.Span.spans r @ Air_obs.Span.open_spans r ~now:(now t)
  in
  let events =
    List.map
      (fun (time, ev) ->
        (time, Event.label ev, Format.asprintf "%a" Event.pp ev))
      (Trace.to_list t.trace)
  in
  Air_obs.Trace_export.to_chrome ~tracks:(track_names t) ~events spans

let partition_count t = Array.length t.partitions

let partition_ids t =
  Array.to_list
    (Array.map (fun prt -> prt.setup.partition.Partition.id) t.partitions)

let partition_mode t pid = (prt_of t pid).mode
let kernel_of t pid = (prt_of t pid).kernel
let pal_of t pid = (prt_of t pid).pal
let intra_of t pid = (prt_of t pid).intra

let region_of t pid section =
  match Protection.map_of t.protection pid with
  | None -> None
  | Some map ->
    List.find_opt
      (fun (r : Memory.region) -> Memory.section_equal r.section section)
      map.Memory.regions

let regions_of t pid =
  match Protection.map_of t.protection pid with
  | None -> []
  | Some map -> map.Memory.regions

let violations t =
  List.filter_map
    (fun (time, ev) ->
      match ev with
      | Event.Deadline_violation { process; deadline } ->
        Some (time, process, deadline)
      | _ -> None)
    (Trace.to_list t.trace)

let activity t =
  List.filter_map
    (fun (time, ev) ->
      match ev with
      | Event.Context_switch { to_; _ } -> Some (time, to_)
      | _ -> None)
    (Trace.to_list t.trace)

(* --- Operator interventions -------------------------------------------- *)

let with_process t pid ~name f =
  let prt = prt_of t pid in
  match Kernel.find_by_name prt.kernel name with
  | None -> Error (Printf.sprintf "no process named %S" name)
  | Some q -> f prt q

let start_process t pid ~name =
  with_process t pid ~name (fun prt q ->
      match start_process_internal t prt q ~delay:Time.zero with
      | Ok () -> Ok ()
      | Error e -> Error (Format.asprintf "%a" Kernel.pp_op_error e))

let stop_process t pid ~name =
  with_process t pid ~name (fun prt q ->
      match Kernel.stop prt.kernel q with
      | Ok () -> Ok ()
      | Error e -> Error (Format.asprintf "%a" Kernel.pp_op_error e))

let request_schedule t id =
  match Pmk.request_schedule_switch t.pmk id with
  | Ok () ->
    emit t (Event.Schedule_switch_request { by = None; target = id });
    Ok ()
  | Error Pmk.Same_schedule ->
    emit t (Event.Schedule_switch_request { by = None; target = id });
    Ok ()
  | Error (Pmk.No_such_schedule i) ->
    Error (Printf.sprintf "no schedule with index %d" i)

let restart_partition t pid mode =
  let prt = prt_of t pid in
  match mode with
  | Partition.Normal -> Error "cannot force a partition directly to normal"
  | Partition.Idle ->
    shutdown_partition t prt;
    Ok ()
  | Partition.Cold_start | Partition.Warm_start ->
    begin_restart t prt mode;
    Ok ()

let deliver_remote t ~port msg =
  match Router.inject t.router ~port ~now:(now t) msg with
  | Router.Inject_bad_port ->
    Error (Printf.sprintf "no destination port %S (or bad message size)" port)
  | Router.Inject_overflow ->
    emit t (Event.Port_overflow { port });
    Ok ()
  | Router.Injected ->
    emit t (Event.Port_send { port; bytes = Bytes.length msg });
    notify_port_delivery t [ port ];
    Ok ()

let drain_remote t ~port =
  match Router.port_config t.router port with
  | None -> None
  | Some cfg -> (
    match
      Router.receive_queuing ~now:(now t) t.router ~caller:cfg.Port.partition
        ~port
    with
    | Ok (Some msg) -> Some msg
    | Ok None | Error _ -> None)

let inject_module_error t code ~detail = report_module_error t code ~detail

(* --- Fault injection ---------------------------------------------------- *)

let note_fault t ~label = emit t (Event.Fault_injected { label })

let inject_memory_access t pid ~access ~address =
  let prt = prt_of t pid in
  let granted =
    match
      Protection.access t.protection ~partition:pid ~level:Memory.Application
        ~access address
    with
    | Ok () -> true
    | Error _ -> false
  in
  emit t (Event.Memory_access { partition = pid; address; granted });
  if not granted then
    report_partition_error t prt Error.Memory_violation
      ~detail:(Printf.sprintf "address 0x%x (injected)" address);
  granted

let inject_clock_jitter t pid ~ticks =
  if ticks > 0 then begin
    let prt = prt_of t pid in
    prt.jitter_left <- prt.jitter_left + ticks
  end

let network t = t.cfg.network
let hm_tables t = t.cfg.hm_tables
