(* The clock-tick executive — top layer of the decomposed system. State
   and lifecycle live in [Runtime], construction in [Boot], script
   interpretation in [Interp]; this module drives the PMK lane(s) off the
   global clock, announces elapsed time to the active partitions' PALs
   (Algorithm 3), runs the heir process, and exposes observation,
   intervention and fault-injection surfaces. It also provides the
   quiescence and next-event probes the [Air_exec] executive uses for O(1)
   idle skip-ahead. *)

open Air_sim
open Air_model
open Air_pos
open Air_ipc
open Air_spatial
open Ident
include Runtime

let create = Boot.create

(* --- The system clock tick --------------------------------------------- *)

(* Temporal-health watchdogs: a frame just closed at the MTF boundary;
   judge it against the watchdog of the schedule it ran under (after a
   mode-based switch the new frame is judged by the new schedule's
   watchdog) and raise one Temporal_degradation error per offending scope —
   at most one module-level error and one per breaching partition per
   frame, so a configured HM action fires exactly once per offending
   frame. *)
let handle_closed_frame t (frame : Air_obs.Telemetry.frame) =
  match t.telemetry with
  | None -> ()
  | Some tel ->
    let wd = Air_obs.Telemetry.watchdog_for tel ~schedule:frame.f_schedule in
    (match Air_obs.Telemetry.breaches wd frame with
    | [] -> ()
    | breaches ->
      let detail scope_breaches =
        Format.asprintf "frame %d: %a" frame.f_index
          (Format.pp_print_list
             ~pp_sep:(fun ppf () -> Format.pp_print_string ppf "; ")
             Air_obs.Telemetry.pp_breach)
          scope_breaches
      in
      let module_breaches, partition_breaches =
        List.partition
          (fun b -> Air_obs.Telemetry.breach_partition b = None)
          breaches
      in
      if module_breaches <> [] then
        report_module_error t Error.Temporal_degradation
          ~detail:(detail module_breaches);
      Array.iteri
        (fun i prt ->
          match
            List.filter
              (fun b -> Air_obs.Telemetry.breach_partition b = Some i)
              partition_breaches
          with
          | [] -> ()
          | mine ->
            report_partition_error t prt Error.Temporal_degradation
              ~detail:(detail mine))
        t.partitions)

(* First-level outcome bookkeeping shared by the single- and multicore
   paths. Under a broadcast switch every lane switches at the same
   boundary; the module-level Schedule_switch event is emitted once, from
   the primary lane. *)
let apply_outcome t ~primary (o : Pmk.tick_outcome) =
  (match o.Pmk.schedule_switched with
  | Some (from, to_) when primary -> emit t (Event.Schedule_switch { from; to_ })
  | Some _ | None -> ());
  (match o.Pmk.context_switch with
  | Some (from, to_) -> emit t (Event.Context_switch { from; to_ })
  | None -> ());
  (match o.Pmk.change_action with
  | Some (pid, action) ->
    let prt = prt_of t pid in
    emit t (Event.Change_action { partition = pid; action });
    (* Restart actions apply to partitions running in normal mode
       (Sect. 4.2); a partition still initializing restarts anyway. *)
    (match action with
    | Schedule.No_action -> ()
    | Schedule.Warm_restart_partition ->
      begin_restart t prt Partition.Warm_start
    | Schedule.Cold_restart_partition ->
      begin_restart t prt Partition.Cold_start)
  | None -> ());
  match o.Pmk.frame_closed with
  | Some frame -> handle_closed_frame t frame
  | None -> ()

(* One tick of the partition currently holding a core: complete
   initialization at first dispatch, announce elapsed time to the PAL
   (Algorithm 3) with deadline verification, then let the POS pick the
   heir process and run one tick of its script. *)
let drive_partition t prt ~elapsed =
  (* Partition initialization completes at first dispatch. *)
  (match prt.mode with
  | Partition.Cold_start | Partition.Warm_start -> initialize_partition t prt
  | Partition.Normal | Partition.Idle -> ());
  match prt.mode with
  | Partition.Normal ->
    let tnow = now t in
    (* PAL surrogate clock tick announcement (Algorithm 3): announce
       the elapsed ticks to the POS, then verify deadlines. An injected
       clock-jitter fault suppresses the announcement — the tick is
       lost at the PMK, the running process keeps computing — and the
       withheld ticks are announced as one catch-up burst when the
       jitter window ends (exercising the PAL catch-up path). *)
    if elapsed > 0 && prt.jitter_left > 0 then begin
      prt.jitter_left <- prt.jitter_left - 1;
      prt.jitter_deferred <- prt.jitter_deferred + elapsed
    end
    else if elapsed > 0 || prt.jitter_deferred > 0 then begin
      let elapsed = elapsed + prt.jitter_deferred in
      prt.jitter_deferred <- 0;
      (* [announce_to_pos] is the closure built once at boot; the guard
         around the violation loop keeps the (empty) common case from
         constructing the reporting closure. *)
      match
        Pal.announce_ticks prt.pal ~now:tnow ~elapsed
          ~announce_to_pos:prt.announce_to_pos
      with
      | [] -> ()
      | violations ->
        List.iter
          (fun { Pal.process; deadline } ->
            emit t
              (Event.Deadline_violation
                 { process = Partition.process_id prt.setup.partition process;
                   deadline });
            report_process_error t prt ~process Error.Deadline_missed
              ~detail:
                (Format.asprintf "deadline %a missed at %a" Time.pp deadline
                   Time.pp tnow))
          violations
    end;
    (* Second scheduling level: the POS selects the heir process and it
       executes one tick of its body — unless the partition owes
       interference stall, in which case the tick is consumed as slowdown
       instead (the contention model's "extra consumed window ticks").
       Stall is only ever consumed when a process is schedulable, so a
       blocked partition does not burn its debt while idle. *)
    if
      Option.is_none t.halt_reason
      && Partition.mode_equal prt.mode Partition.Normal
    then begin
      let q = Kernel.schedule_idx prt.kernel ~now:(now t) in
      if q >= 0 then begin
        match t.contention with
        | None -> Interp.run_task_tick t prt q
        | Some c ->
          let pi = Partition_id.index prt.setup.partition.Partition.id in
          if Contention.stall_pending c ~partition:pi then begin
            Contention.consume_stall c ~partition:pi;
            match t.telemetry with
            | Some tel -> Air_obs.Telemetry.on_throttled tel ~partition:pi
            | None -> ()
          end
          else Interp.run_task_tick t prt q
      end
    end
  | Partition.Idle | Partition.Cold_start | Partition.Warm_start -> ()

(* MTF-boundary window rollover for the contention model. Every
   preemption table carries a tick-0 entry, so the executive's skip-ahead
   never crosses an MTF boundary — boundary ticks always execute through
   [step], in every engine mode, which is what makes this per-tick hook
   sound. It runs after the lane tick (the telemetry frame for the closed
   window is already snapshotted) and before any partition is driven, so
   the boundary tick's charges land in the new window — mirroring the
   boundary-tick-opens-the-new-frame telemetry convention. The new
   window's budgets and co-runner pressure are pushed into the frame
   accumulator here. *)
let contention_rollover t c =
  if Pmk.mtf_position (Lane.primary t.lane) = 0 then begin
    let tnow = now t in
    if tnow > Contention.window_start c then begin
      Contention.rollover c ~now:tnow;
      match t.telemetry with
      | None -> ()
      | Some tel ->
        for p = 0 to Array.length t.partitions - 1 do
          Air_obs.Telemetry.set_interference_window tel ~partition:p
            ~budget:(Contention.budget c p)
            ~co_pressure:(Contention.co_runner_pressure c p)
        done
    end
  end

let step_single t pmk =
  let outcome = Pmk.tick pmk in
  apply_outcome t ~primary:true outcome;
  (match t.contention with
  | Some c -> contention_rollover t c
  | None -> ());
  match Pmk.active_partition pmk with
  | None -> ()
  | Some pid -> drive_partition t (prt_of t pid) ~elapsed:outcome.Pmk.elapsed

let step_multi t mc =
  let outcomes = Pmk_mc.tick mc in
  for core = 0 to Array.length outcomes - 1 do
    apply_outcome t ~primary:(core = 0) outcomes.(core)
  done;
  (* Per-lane occupancy sampling is disabled in Pmk_mc; record one
     combined busy/idle sample per global tick (validated tables keep at
     most one lane busy under sharded schedules). *)
  (match t.telemetry with
  | Some tel ->
    Air_obs.Telemetry.on_tick_idx tel
      ~active:
        (match Lane.combined_active t.lane with
        | Some p -> Partition_id.index p
        | None -> -1)
  | None -> ());
  (match t.contention with
  | Some c -> contention_rollover t c
  | None -> ());
  let actives = Pmk_mc.active_partitions mc in
  for core = 0 to Array.length actives - 1 do
    match actives.(core) with
    | Some pid when Option.is_none t.halt_reason ->
      (* Lane-local charging: every shared-resource touch made while this
         core's partition is driven debits this lane's account. *)
      (match t.contention with
      | Some c -> Contention.set_lane c core
      | None -> ());
      drive_partition t (prt_of t pid) ~elapsed:outcomes.(core).Pmk.elapsed
    | Some _ | None -> ()
  done

let step t =
  match t.halt_reason with
  | Some _ -> ()
  | None -> (
    match t.lane with
    | Lane.Single pmk -> step_single t pmk
    | Lane.Multi mc -> step_multi t mc)

let run t ~ticks =
  for _ = 1 to ticks do
    step t
  done

let run_mtfs t n =
  for _ = 1 to n do
    let pmk = Lane.primary t.lane in
    let current = Pmk.schedule pmk (Pmk.current_schedule pmk) in
    let mtf = current.Schedule.mtf in
    (* Ticks executed within the running MTF; 0 exactly at a boundary. *)
    let executed = Pmk.ticks pmk - Pmk.last_schedule_switch pmk + 1 in
    let into = ((executed mod mtf) + mtf) mod mtf in
    if into = 0 then begin
      (* Exactly at a boundary a pending mode-based switch becomes
         effective on the next tick, possibly to a schedule with a
         different MTF: execute the boundary tick first, then finish the
         frame under the schedule that is actually running (running the
         old [mtf] blindly would mis-size the frame). *)
      run t ~ticks:1;
      let current = Pmk.schedule pmk (Pmk.current_schedule pmk) in
      let mtf = current.Schedule.mtf in
      let executed = Pmk.ticks pmk - Pmk.last_schedule_switch pmk + 1 in
      let into = ((executed mod mtf) + mtf) mod mtf in
      if into > 0 then run t ~ticks:(mtf - into)
    end
    else run t ~ticks:(mtf - into)
  done

let halted t = t.halt_reason

(* --- Quiescence and skip-ahead (the [Air_exec] executive) --------------- *)

(* A span of ticks is quiet — skippable without observable difference —
   when every partition currently holding a core would do nothing under
   per-tick execution: normal mode with no schedulable process, no
   pending clock-jitter bookkeeping and no owed interference stall, or
   parked in idle mode. Partitions not holding a core are never driven
   per-tick, so they cannot constrain the span; starting modes initialize
   at the dispatch tick itself, which is always an event tick. The stall
   conjunct keeps a partition in slowdown interesting to the executive's
   clock ([Exec.Clock.next_interesting]); it is trivially true when no
   contention model is configured, preserving bit-identity. *)
let prt_quiescent t prt =
  match prt.mode with
  | Partition.Idle -> true
  | Partition.Cold_start | Partition.Warm_start -> false
  | Partition.Normal ->
    prt.jitter_left = 0 && prt.jitter_deferred = 0
    && (not (Kernel.has_schedulable prt.kernel))
    && (match t.contention with
       | None -> true
       | Some c ->
         not
           (Contention.stall_pending c
              ~partition:
                (Partition_id.index prt.setup.partition.Partition.id)))

let rec lanes_quiescent t actives n i =
  i >= n
  || (match actives.(i) with
     | None -> true
     | Some pid -> prt_quiescent t (prt_of t pid))
     && lanes_quiescent t actives n (i + 1)

let quiescent t =
  (* Probed once per executive tick while skip-ahead hunts for a span, so
     it must not allocate: the single-core case reads the scheduler's
     field directly and the multicore case scans the reused actives
     buffer via a top-level loop. *)
  match t.lane with
  | Lane.Single pmk -> (
    match Pmk.active_partition pmk with
    | None -> true
    | Some pid -> prt_quiescent t (prt_of t pid))
  | Lane.Multi mc ->
    let actives = Pmk_mc.active_partitions mc in
    lanes_quiescent t actives (Array.length actives) 0

(* The next tick at which a currently-active partition becomes interesting
   again: a blocked process' wake/release instant, or the tick after its
   earliest PAL deadline (verification pops deadlines strictly before
   [now], so a deadline [d] first raises a violation at [d + 1]).
   Inactive partitions report through their next dispatch, which the
   lane's preemption table already bounds. [Time.add] saturates at
   infinity, so an empty deadline store contributes no bound. *)
let prt_event_bound t pid acc =
  let prt = prt_of t pid in
  match prt.mode with
  | Partition.Idle | Partition.Cold_start | Partition.Warm_start -> acc
  | Partition.Normal ->
    Time.min
      (Time.min acc (Time.add (Pal.min_deadline prt.pal) 1))
      (Kernel.next_wake prt.kernel)

let rec lanes_event_bound t actives n i acc =
  if i >= n then acc
  else
    let acc =
      match actives.(i) with
      | None -> acc
      | Some pid -> prt_event_bound t pid acc
    in
    lanes_event_bound t actives n (i + 1) acc

let next_partition_event t =
  match t.lane with
  | Lane.Single pmk -> (
    match Pmk.active_partition pmk with
    | None -> Time.infinity
    | Some pid -> prt_event_bound t pid Time.infinity)
  | Lane.Multi mc ->
    let actives = Pmk_mc.active_partitions mc in
    lanes_event_bound t actives (Array.length actives) 0 Time.infinity

(* Batch-advance the global clock across a quiet span. The caller (the
   executive) guarantees [quiescent] holds and that no lane preemption,
   partition event, telemetry frame boundary or injection falls inside the
   span; under that contract the lane skip is bit-identical to [ticks]
   per-tick steps. *)
let skip t ~ticks =
  if ticks > 0 then begin
    Lane.skip t.lane ~ticks;
    match t.lane with
    | Lane.Multi _ -> (
      (* Mirror of the combined occupancy sample in [step_multi]. *)
      match t.telemetry with
      | Some tel ->
        Air_obs.Telemetry.on_ticks_idx tel
          ~active:
            (match Lane.combined_active t.lane with
            | Some p -> Partition_id.index p
            | None -> -1)
          ~count:ticks
      | None -> ())
    | Lane.Single _ -> ()
  end

(* --- Observation -------------------------------------------------------- *)

let trace t = t.trace
let lane t = t.lane
let pmk t = Lane.primary t.lane
let cores t = Lane.core_count t.lane
let hm t = t.hm
let router t = t.router
let protection t = t.protection
let metrics t = t.metrics

(* Bounded-retention drop counts surface as gauges so a snapshot taken
   from a truncated recorder or flow tracker says so. Refreshed lazily at
   snapshot time — the instruments are get-or-create and the hot path
   never touches them. *)
let metrics_snapshot t =
  (match t.cfg.recorder with
  | None -> ()
  | Some r ->
    Air_obs.Metrics.set
      (Air_obs.Metrics.gauge t.metrics "recorder.dropped_spans")
      (Air_obs.Span.dropped r));
  (match t.cfg.causal with
  | None -> ()
  | Some c ->
    Air_obs.Metrics.set
      (Air_obs.Metrics.gauge t.metrics "causal.dropped_records")
      (Air_obs.Causal.dropped c));
  Air_obs.Metrics.snapshot t.metrics
let event_counts t = Air_obs.Event.counts t.events

let metrics_report t =
  Air_obs.Report.to_string ~events:(event_counts t) (metrics_snapshot t)

let metrics_json t =
  Air_obs.Report.to_json ~events:(event_counts t) (metrics_snapshot t)

let recorder t = t.cfg.recorder
let causal t = t.cfg.causal
let telemetry t = t.telemetry
let contention t = t.contention

let telemetry_frames t =
  match t.telemetry with
  | None -> []
  | Some tel -> Air_obs.Telemetry.frames tel

(* Close the final partial frame so the tail of a run that does not end
   exactly on an MTF boundary still reaches the exported frame list.
   Watchdogs are deliberately not evaluated on a flushed partial frame. *)
let telemetry_flush t =
  match t.telemetry with
  | None -> None
  | Some tel -> Air_obs.Telemetry.flush tel ~now:(now t + 1)

let spans t =
  match t.cfg.recorder with
  | None -> []
  | Some r -> Air_obs.Span.spans r

let track_names t =
  (-1, "AIR module")
  :: Array.to_list
       (Array.map
          (fun prt ->
            ( Partition_id.index prt.setup.partition.Partition.id,
              prt.setup.partition.Partition.name ))
          t.partitions)

let flow_entries t =
  match t.cfg.causal with
  | None -> []
  | Some c -> Air_obs.Causal.entries c

let export_meta t =
  (match t.cfg.recorder with
  | None -> []
  | Some r -> [ ("dropped_spans", Air_obs.Span.dropped r) ])
  @
  match t.cfg.causal with
  | None -> []
  | Some c -> [ ("dropped_flow_records", Air_obs.Causal.dropped c) ]

let chrome_trace t =
  let spans =
    match t.cfg.recorder with
    | None -> []
    | Some r ->
      Air_obs.Span.spans r @ Air_obs.Span.open_spans r ~now:(now t)
  in
  let events =
    List.map
      (fun (time, ev) ->
        (time, Event.label ev, Format.asprintf "%a" Event.pp ev))
      (Trace.to_list t.trace)
  in
  Air_obs.Trace_export.to_chrome ~tracks:(track_names t) ~events
    ~flows:(flow_entries t) ~meta:(export_meta t) spans

let partition_count t = Array.length t.partitions

let partition_ids t =
  Array.to_list
    (Array.map (fun prt -> prt.setup.partition.Partition.id) t.partitions)

let partition_mode t pid = (prt_of t pid).mode
let kernel_of t pid = (prt_of t pid).kernel
let pal_of t pid = (prt_of t pid).pal
let intra_of t pid = (prt_of t pid).intra

let region_of t pid section =
  match Protection.map_of t.protection pid with
  | None -> None
  | Some map ->
    List.find_opt
      (fun (r : Memory.region) -> Memory.section_equal r.section section)
      map.Memory.regions

let regions_of t pid =
  match Protection.map_of t.protection pid with
  | None -> []
  | Some map -> map.Memory.regions

let violations t =
  List.filter_map
    (fun (time, ev) ->
      match ev with
      | Event.Deadline_violation { process; deadline } ->
        Some (time, process, deadline)
      | _ -> None)
    (Trace.to_list t.trace)

let activity t =
  List.filter_map
    (fun (time, ev) ->
      match ev with
      | Event.Context_switch { to_; _ } -> Some (time, to_)
      | _ -> None)
    (Trace.to_list t.trace)

(* --- Operator interventions -------------------------------------------- *)

let with_process t pid ~name f =
  let prt = prt_of t pid in
  match Kernel.find_by_name prt.kernel name with
  | None -> Error (Printf.sprintf "no process named %S" name)
  | Some q -> f prt q

let start_process t pid ~name =
  with_process t pid ~name (fun prt q ->
      match start_process_internal t prt q ~delay:Time.zero with
      | Ok () -> Ok ()
      | Error e -> Error (Format.asprintf "%a" Kernel.pp_op_error e))

let stop_process t pid ~name =
  with_process t pid ~name (fun prt q ->
      match Kernel.stop prt.kernel q with
      | Ok () -> Ok ()
      | Error e -> Error (Format.asprintf "%a" Kernel.pp_op_error e))

let request_schedule t id =
  match Lane.request_schedule_switch t.lane id with
  | Ok () ->
    emit t (Event.Schedule_switch_request { by = None; target = id });
    Ok ()
  | Error Pmk.Same_schedule ->
    emit t (Event.Schedule_switch_request { by = None; target = id });
    Ok ()
  | Error (Pmk.No_such_schedule i) ->
    Error (Printf.sprintf "no schedule with index %d" i)

let restart_partition t pid mode =
  let prt = prt_of t pid in
  match mode with
  | Partition.Normal -> Error "cannot force a partition directly to normal"
  | Partition.Idle ->
    shutdown_partition t prt;
    Ok ()
  | Partition.Cold_start | Partition.Warm_start ->
    begin_restart t prt mode;
    Ok ()

let deliver_remote ?cid t ~port msg =
  match Router.inject ?cid t.router ~port ~now:(now t) msg with
  | Router.Inject_bad_port ->
    Error (Printf.sprintf "no destination port %S (or bad message size)" port)
  | Router.Inject_overflow ->
    emit t (Event.Port_overflow { port });
    Ok ()
  | Router.Injected ->
    emit t (Event.Port_send { port; bytes = Bytes.length msg });
    notify_port_delivery t [ port ];
    Ok ()

let drain_remote t ~port = Router.drain t.router ~port ~now:(now t)
let remote_pending t ~port = Router.pending t.router ~port

let note_flow_perturb t ~what cid =
  match t.cfg.causal with
  | None -> ()
  | Some c -> Air_obs.Causal.perturb c ~now:(now t) ~what cid

let inject_module_error t code ~detail = report_module_error t code ~detail

(* --- Fault injection ---------------------------------------------------- *)

let note_fault t ~label = emit t (Event.Fault_injected { label })

let inject_memory_access t pid ~access ~address =
  let prt = prt_of t pid in
  let result, cost =
    Protection.access_costed t.protection ~partition:pid
      ~level:Memory.Application ~access address
  in
  (match t.contention with
  | None -> ()
  | Some c ->
    (* Attribute the injected touch to the lane the partition currently
       occupies (lane 0 if it is not holding a core). *)
    Contention.set_lane c
      (match Lane.active_lane_of t.lane pid with Some l -> l | None -> 0);
    charge_shared_access t prt ~cost);
  let granted = match result with Ok () -> true | Error _ -> false in
  emit t (Event.Memory_access { partition = pid; address; granted });
  if not granted then
    report_partition_error t prt Error.Memory_violation
      ~detail:(Printf.sprintf "address 0x%x (injected)" address);
  granted

(* A bandwidth-hog fault: the partition saturates its lane's memory
   bandwidth. Modeled as a bulk demand injection of
   [budget * permille / 1000] units charged to the offender's account and
   lane at the injection tick. Returns the charged demand ([None] when no
   contention model is configured — the fault cannot exist without the
   model). A hog that pushes its account past its budget escalates
   through the HM as temporal-degradation via the ordinary charge path;
   victims co-running on other lanes degrade only through the modeled
   slowdown curve, which the campaign oracle checks from telemetry. *)
let inject_bandwidth_hog t pid ~permille =
  match t.contention with
  | None -> None
  | Some c ->
    if permille <= 0 then Some 0
    else begin
      let prt = prt_of t pid in
      let pi = Partition_id.index pid in
      let cost = Stdlib.max 1 (Contention.budget c pi * permille / 1000) in
      Contention.set_lane c
        (match Lane.active_lane_of t.lane pid with Some l -> l | None -> 0);
      charge_shared_access t prt ~cost;
      Some cost
    end

let inject_clock_jitter t pid ~ticks =
  if ticks > 0 then begin
    let prt = prt_of t pid in
    prt.jitter_left <- prt.jitter_left + ticks
  end

let network t = t.cfg.network
let hm_tables t = t.cfg.hm_tables
