(** Multi-module co-simulation over a communication infrastructure.

    The paper's interpartition communication is location-agnostic: "for
    physically separated partitions, this implies data transmission through
    a communication infrastructure" (Sect. 2.1). A [Cluster.t] steps several
    AIR modules in lockstep on a shared clock and carries messages between
    them over a simulated bus with configurable latency and bandwidth —
    the shape of an onboard SpaceWire or MIL-STD-1553 link.

    Wiring: a remote link names a queuing {e destination} port in the
    source module (the outbound gateway the application sends into through
    an ordinary local channel) and a destination port in the target module.
    Each tick the cluster drains every gateway, serializes the messages on
    the bus (latency + size/bandwidth, one transfer at a time), and injects
    arrivals into the target module's port, waking blocked receivers. *)

open Air_sim

type link = {
  from_module : int;
  from_port : string;   (** Queuing destination port acting as gateway. *)
  to_module : int;
  to_port : string;     (** Destination port in the target module. *)
  link_latency : Time.t option;
      (** Per-link propagation delay; [None] inherits the bus default.
          The minimum across links is the fleet engine's {!lookahead}. *)
}

val link :
  ?latency:Time.t ->
  from_module:int ->
  from_port:string ->
  to_module:int ->
  to_port:string ->
  unit ->
  link
(** Smart constructor — the spelled-out record with [link_latency]
    defaulting to [None] (bus latency). *)

type bus = {
  latency : Time.t;        (** Propagation delay, ticks. *)
  bytes_per_tick : int;    (** Bandwidth; transfers serialize. *)
}

val default_bus : bus
(** 4 ticks latency, 16 bytes/tick. *)

type t

val create : ?bus:bus -> links:link list -> System.t list -> t
(** Raises [Invalid_argument] on module indices out of range, an empty
    module list, a negative per-link latency, or two links draining the
    same gateway port. Port names are checked lazily (a missing gateway
    simply never yields traffic; a missing target port counts as a drop).
    Modules configured with a causal flow tracker get their tracker homed
    to their cluster index, so correlation ids are unique cluster-wide. *)

val step : t -> unit
(** One global clock tick: every module steps, gateways drain onto the
    bus, due arrivals are delivered. *)

val run : t -> ticks:int -> unit

val now : t -> Time.t

val next_arrival : t -> Time.t option
(** Earliest instant a message can reach any module: the heap top
    ({!Heap.peek_key}, O(1)), lower-bounded by messages still queued in
    gateway ports — e.g. delivered into a forwarding gateway after this
    tick's drain — which the next drain will serialize no earlier than
    [max (now+1) bus_busy_until + link latency]. Without the bound a
    lookahead window computed between steps could skip past traffic that
    was enqueued mid-step and admit a causality violation. [None] when
    the bus is empty and every gateway is drained. *)

val next_arrival_for : t -> dest:int -> Time.t option
(** {!next_arrival} restricted to transfers (and pending gateway traffic)
    targeting module [dest] — the per-destination variant conservative
    lookahead engines shard by. O(in-flight + links). *)

val systems : t -> System.t array

val links : t -> link array
(** The links in drain order (a copy; index = the [link] argument of
    {!send_via}). *)

val bus : t -> bus

val effective_latency : t -> link -> Time.t
(** The link's propagation delay: its own override or the bus default. *)

val lookahead : t -> Time.t
(** Minimum effective latency across links — a message drained at clock
    [c] can arrive no earlier than [c + lookahead t], so modules may
    safely advance that far between communication barriers.
    {!Time.infinity} without links. *)

val flow_entries : t -> Air_obs.Causal.entry list
(** Every module's retained causal hop records, concatenated in module
    order — cross-module flows appear as a [Send] (+ [Forward]) in the
    origin module and a [Receive] in the target, sharing the id. *)

val chrome_trace : t -> string
(** The whole cluster as one Chrome trace: per-module tracks shifted into
    distinct process groups (named ["m<i>:<name>"]), event lanes prefixed
    by module, and all causal records merged into one flow-event set —
    the viewer draws send→receive arrows across module boundaries because
    both ends carry the same correlation id. *)

type stats = {
  transferred : int;       (** Messages delivered to target ports. *)
  dropped : int;           (** Lost to target-port overflow or bad port. *)
  in_flight : int;
  bus_busy_until : Time.t; (** Bus occupancy horizon. *)
}

val stats : t -> stats

(** {1 Fleet engine primitives}

    Low-level hooks for {!Air_fleet.Fleet}, the parallel windowed engine:
    it advances modules privately between barriers and then replays the
    buffered gateway drains through the cluster in the exact sequential
    order, so arrival instants, serialization [seq]s and counters match a
    per-tick {!run} bit for bit. Mixing these with {!step} outside that
    protocol will desynchronize the cluster clock from its modules. *)

type transfer = {
  arrival : Time.t;
  seq : int;           (** Bus serialization order; heap ties break on it. *)
  target_module : int;
  target_port : string;
  payload : bytes;
  cid : Air_obs.Causal.id;
}

val set_clock : t -> Time.t -> unit
(** Reposition the cluster clock at a window barrier (the modules were
    advanced out-of-band). *)

val send_via : t -> at:Time.t -> link:int -> cid:Air_obs.Causal.id -> bytes -> unit
(** Replay one gateway drain that happened at instant [at] on the
    [link]-th link (index into {!links}): serializes onto the bus exactly
    as the drain inside {!step} would have — same occupancy, arrival and
    [seq] — provided replays come in the sequential drain order
    [(at, link, FIFO position)]. *)

val take_due : t -> upto:Time.t -> transfer list
(** Pop every in-flight transfer with [arrival <= upto], in delivery
    order [(arrival, seq)] — the window's incoming traffic, for the
    caller to deliver at the right module-local instants. *)

val deliver_transfer : t -> transfer -> unit
(** Inject one transfer into its target port and account it in
    [transferred]/[dropped] — the delivery half of {!step}, with the
    caller in charge of timing. *)

val account : t -> transferred:int -> dropped:int -> unit
(** Merge externally-accumulated delivery counters (per-shard counts) into
    the cluster's totals. *)

val in_flight_transfers : t -> transfer list
(** Snapshot of the bus in delivery order — for state fingerprints.
    O(n log n), non-destructive. *)

(** {1 Fault injection on inter-module links}

    Hooks for the fault-injection campaign engine ([Faults]): perturb the
    earliest in-flight bus transfer. All operate between serialization and
    delivery — the window in which a real link fault would strike. *)

type bus_fault =
  | Bus_drop  (** Transfer lost on the medium (counted in [dropped]). *)
  | Bus_duplicate  (** Delivered twice at the same arrival instant. *)
  | Bus_delay of Time.t  (** Arrival postponed by the given ticks. *)
  | Bus_corrupt of { byte : int }
      (** All bits of payload byte [byte mod length] inverted. *)
  | Bus_reorder
      (** The two earliest transfers swap arrival instants (absorbed when
          fewer than two are in flight). *)

val pp_bus_fault : Format.formatter -> bus_fault -> unit

val inject_bus_fault : t -> bus_fault -> bool
(** Apply the fault to the transfer with the earliest arrival time; [false]
    when nothing is in flight (the fault is a no-op). Stamped transfers get
    a [Perturb] record in the target module's flow tracker. *)

val last_perturbed : t -> Air_obs.Causal.id list
(** Correlation ids of the flows touched by the most recent
    {!inject_bus_fault} call ([[]] when it was a no-op or the transfers
    were unstamped) — campaign reports annotate fault outcomes with
    them. *)
