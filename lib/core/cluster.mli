(** Multi-module co-simulation over a communication infrastructure.

    The paper's interpartition communication is location-agnostic: "for
    physically separated partitions, this implies data transmission through
    a communication infrastructure" (Sect. 2.1). A [Cluster.t] steps several
    AIR modules in lockstep on a shared clock and carries messages between
    them over a simulated bus with configurable latency and bandwidth —
    the shape of an onboard SpaceWire or MIL-STD-1553 link.

    Wiring: a remote link names a queuing {e destination} port in the
    source module (the outbound gateway the application sends into through
    an ordinary local channel) and a destination port in the target module.
    Each tick the cluster drains every gateway, serializes the messages on
    the bus (latency + size/bandwidth, one transfer at a time), and injects
    arrivals into the target module's port, waking blocked receivers. *)

open Air_sim

type link = {
  from_module : int;
  from_port : string;   (** Queuing destination port acting as gateway. *)
  to_module : int;
  to_port : string;     (** Destination port in the target module. *)
}

type bus = {
  latency : Time.t;        (** Propagation delay, ticks. *)
  bytes_per_tick : int;    (** Bandwidth; transfers serialize. *)
}

val default_bus : bus
(** 4 ticks latency, 16 bytes/tick. *)

type t

val create : ?bus:bus -> links:link list -> System.t list -> t
(** Raises [Invalid_argument] on module indices out of range, an empty
    module list, or two links draining the same gateway port. Port names
    are checked lazily (a missing gateway simply never yields traffic; a
    missing target port counts as a drop). Modules configured with a
    causal flow tracker get their tracker homed to their cluster index,
    so correlation ids are unique cluster-wide. *)

val step : t -> unit
(** One global clock tick: every module steps, gateways drain onto the
    bus, due arrivals are delivered. *)

val run : t -> ticks:int -> unit

val now : t -> Time.t

val next_arrival : t -> Time.t option
(** Earliest in-flight bus arrival instant — an O(1) read of the heap top
    ({!Heap.peek_key}), for next-event queries. [None] when the bus is
    empty. *)

val systems : t -> System.t array

val flow_entries : t -> Air_obs.Causal.entry list
(** Every module's retained causal hop records, concatenated in module
    order — cross-module flows appear as a [Send] (+ [Forward]) in the
    origin module and a [Receive] in the target, sharing the id. *)

val chrome_trace : t -> string
(** The whole cluster as one Chrome trace: per-module tracks shifted into
    distinct process groups (named ["m<i>:<name>"]), event lanes prefixed
    by module, and all causal records merged into one flow-event set —
    the viewer draws send→receive arrows across module boundaries because
    both ends carry the same correlation id. *)

type stats = {
  transferred : int;       (** Messages delivered to target ports. *)
  dropped : int;           (** Lost to target-port overflow or bad port. *)
  in_flight : int;
  bus_busy_until : Time.t; (** Bus occupancy horizon. *)
}

val stats : t -> stats

(** {1 Fault injection on inter-module links}

    Hooks for the fault-injection campaign engine ([Faults]): perturb the
    earliest in-flight bus transfer. All operate between serialization and
    delivery — the window in which a real link fault would strike. *)

type bus_fault =
  | Bus_drop  (** Transfer lost on the medium (counted in [dropped]). *)
  | Bus_duplicate  (** Delivered twice at the same arrival instant. *)
  | Bus_delay of Time.t  (** Arrival postponed by the given ticks. *)
  | Bus_corrupt of { byte : int }
      (** All bits of payload byte [byte mod length] inverted. *)
  | Bus_reorder
      (** The two earliest transfers swap arrival instants (absorbed when
          fewer than two are in flight). *)

val pp_bus_fault : Format.formatter -> bus_fault -> unit

val inject_bus_fault : t -> bus_fault -> bool
(** Apply the fault to the transfer with the earliest arrival time; [false]
    when nothing is in flight (the fault is a no-op). Stamped transfers get
    a [Perturb] record in the target module's flow tracker. *)

val last_perturbed : t -> Air_obs.Causal.id list
(** Correlation ids of the flows touched by the most recent
    {!inject_bus_fault} call ([[]] when it was a no-op or the transfers
    were unstamped) — campaign reports annotate fault outcomes with
    them. *)
