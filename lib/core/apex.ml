open Air_sim
open Air_model
open Air_pos
open Air_ipc

type return_code =
  | No_error
  | No_action
  | Not_available
  | Invalid_param
  | Invalid_config
  | Invalid_mode
  | Timed_out

let pp_return_code ppf c =
  Format.pp_print_string ppf
    (match c with
    | No_error -> "NO_ERROR"
    | No_action -> "NO_ACTION"
    | Not_available -> "NOT_AVAILABLE"
    | Invalid_param -> "INVALID_PARAM"
    | Invalid_config -> "INVALID_CONFIG"
    | Invalid_mode -> "INVALID_MODE"
    | Timed_out -> "TIMED_OUT")

let return_code_equal a b =
  match (a, b) with
  | No_error, No_error
  | No_action, No_action
  | Not_available, Not_available
  | Invalid_param, Invalid_param
  | Invalid_config, Invalid_config
  | Invalid_mode, Invalid_mode
  | Timed_out, Timed_out ->
    true
  | ( ( No_error | No_action | Not_available | Invalid_param | Invalid_config
      | Invalid_mode | Timed_out ),
      _ ) ->
    false

type outcome = Done of return_code | Msg of bytes * return_code | Blocked

let pp_outcome ppf = function
  | Done c -> Format.fprintf ppf "done(%a)" pp_return_code c
  | Msg (m, c) ->
    Format.fprintf ppf "msg(%d bytes, %a)" (Bytes.length m) pp_return_code c
  | Blocked -> Format.pp_print_string ppf "blocked"

type env = {
  partition : Partition.t;
  kernel : Kernel.t;
  intra : Intra.t;
  router : Router.t;
  lane : Lane.t;
  now : unit -> Time.t;
  emit : Event.t -> unit;
  report_process_error : process:int -> Error.code -> detail:string -> unit;
  report_partition_error : Error.code -> detail:string -> unit;
  notify_port_delivery : Ident.Port_name.t list -> unit;
  mode : unit -> Partition.mode;
  set_mode : Partition.mode -> unit;
}

let op_result = function
  | Ok () -> Done No_error
  | Error Kernel.Not_dormant -> Done No_action
  | Error Kernel.Already_dormant -> Done No_action
  | Error Kernel.Not_waiting -> Done Invalid_mode
  | Error Kernel.Invalid_for_periodic -> Done Invalid_mode
  | Error Kernel.Not_periodic -> Done Invalid_mode
  | Error Kernel.No_such_process -> Done Invalid_param

(* Time management *)

let get_time env = env.now ()

let timed_wait env ~process delay =
  match Kernel.timed_wait env.kernel ~now:(env.now ()) process delay with
  | Ok () -> Blocked
  | Error _ -> Done Invalid_param

let periodic_wait env ~process =
  match Kernel.periodic_wait env.kernel ~now:(env.now ()) process with
  | Ok () -> Blocked
  | Error Kernel.Not_periodic -> Done Invalid_mode
  | Error _ -> Done Invalid_param

let replenish env ~process budget =
  match Kernel.replenish env.kernel ~now:(env.now ()) process budget with
  | Ok () ->
    env.emit
      (Event.Deadline_registered
         { process = Partition.process_id env.partition process;
           deadline = Kernel.deadline_time env.kernel process });
    Done No_error
  | Error _ -> Done Invalid_param

(* Process management *)

let start env ~process = op_result (Kernel.start env.kernel ~now:(env.now ()) process)

let delayed_start env ~process ~delay =
  op_result (Kernel.start env.kernel ~now:(env.now ()) ~delay process)

let stop env ~process = op_result (Kernel.stop env.kernel process)

let stop_self env ~process = stop env ~process

let suspend_self env ~process ~timeout =
  match Kernel.suspend env.kernel ~now:(env.now ()) ~timeout process with
  | Ok () -> Blocked
  | Error Kernel.Invalid_for_periodic -> Done Invalid_mode
  | Error _ -> Done No_action

let suspend env ~process =
  op_result (Kernel.suspend env.kernel ~now:(env.now ()) process)

let resume env ~process =
  op_result (Kernel.resume env.kernel ~now:(env.now ()) process)

let set_priority env ~process ~priority =
  op_result (Kernel.set_priority env.kernel process priority)

let get_process_status env ~process =
  if process < 0 || process >= Kernel.process_count env.kernel then
    Error Invalid_param
  else Ok (Kernel.status env.kernel process)

(* Partition management *)

type partition_status = {
  operating_mode : Partition.mode;
  partition_kind : Partition.kind;
}

let get_partition_status env =
  { operating_mode = env.mode ();
    partition_kind = env.partition.Partition.kind }

let set_partition_mode env mode =
  env.set_mode mode;
  Done No_error

(* Interpartition communication *)

let caller env = env.partition.Partition.id

let router_error env ~process = function
  | Router.Unknown_port _ -> Done Invalid_config
  | Router.Not_owner _ ->
    env.report_process_error ~process Error.Illegal_request
      ~detail:"port belongs to another partition";
    Done Invalid_config
  | Router.Wrong_direction _ | Router.Wrong_mode _ -> Done Invalid_mode
  | Router.Message_too_large _ | Router.Empty_message -> Done Invalid_param

let write_sampling_message env ~process ~port msg =
  match
    Router.write_sampling env.router ~caller:(caller env) ~port
      ~now:(env.now ()) msg
  with
  | Ok () ->
    env.emit (Event.Port_send { port; bytes = Bytes.length msg });
    Done No_error
  | Error e -> router_error env ~process e

let read_sampling_message env ~process ~port =
  match
    Router.read_sampling env.router ~caller:(caller env) ~port
      ~now:(env.now ())
  with
  | Ok (msg, validity) ->
    if Bytes.length msg = 0 then Done Not_available
    else begin
      env.emit (Event.Port_receive { port; bytes = Bytes.length msg });
      let code =
        match validity with Router.Valid -> No_error | Router.Invalid -> Timed_out
      in
      Msg (msg, code)
    end
  | Error e -> router_error env ~process e

let send_queuing_message env ~process ~port msg =
  match
    Router.send_queuing env.router ~caller:(caller env) ~port
      ~now:(env.now ()) msg
  with
  | Ok { Router.delivered; overflowed } ->
    env.emit (Event.Port_send { port; bytes = Bytes.length msg });
    List.iter
      (fun p -> env.emit (Event.Port_overflow { port = p }))
      overflowed;
    env.notify_port_delivery delivered;
    Done No_error
  | Error e -> router_error env ~process e

let receive_queuing_message env ~process ~port ~timeout =
  match
    Router.receive_queuing ~now:(env.now ()) env.router ~caller:(caller env)
      ~port
  with
  | Ok (Some msg) ->
    env.emit (Event.Port_receive { port; bytes = Bytes.length msg });
    Msg (msg, No_error)
  | Ok None ->
    if timeout = Time.zero then Done Not_available
    else begin
      Kernel.block env.kernel ~now:(env.now ()) process
        (Kernel.On_queuing_port port) ~timeout;
      Blocked
    end
  | Error e -> router_error env ~process e

(* Intrapartition communication *)

let intra_outcome : Intra.outcome -> outcome = function
  | `Done -> Done No_error
  | `Blocked -> Blocked
  | `Unavailable -> Done Not_available
  | `No_such_object -> Done Invalid_config
  | `Message_too_large -> Done Invalid_param

let wait_semaphore env ~process ~name ~timeout =
  intra_outcome
    (Intra.wait_semaphore env.intra ~now:(env.now ()) ~process ~name ~timeout)

let signal_semaphore env ~process:_ ~name =
  intra_outcome (Intra.signal_semaphore env.intra ~now:(env.now ()) ~name)

let wait_event env ~process ~name ~timeout =
  intra_outcome
    (Intra.wait_event env.intra ~now:(env.now ()) ~process ~name ~timeout)

let set_event env ~process:_ ~name =
  intra_outcome (Intra.set_event env.intra ~now:(env.now ()) ~name)

let reset_event env ~process:_ ~name =
  intra_outcome (Intra.reset_event env.intra ~name)

let display_blackboard env ~process:_ ~name msg =
  intra_outcome (Intra.display_blackboard env.intra ~now:(env.now ()) ~name msg)

let clear_blackboard env ~process:_ ~name =
  intra_outcome (Intra.clear_blackboard env.intra ~name)

let read_blackboard env ~process ~name ~timeout =
  match
    Intra.read_blackboard env.intra ~now:(env.now ()) ~process ~name ~timeout
  with
  | `Read msg -> Msg (msg, No_error)
  | #Intra.outcome as o -> intra_outcome o

let send_buffer env ~process ~name msg ~timeout =
  intra_outcome
    (Intra.send_buffer env.intra ~now:(env.now ()) ~process ~name msg ~timeout)

let receive_buffer env ~process ~name ~timeout =
  match
    Intra.receive_buffer env.intra ~now:(env.now ()) ~process ~name ~timeout
  with
  | `Read msg -> Msg (msg, No_error)
  | #Intra.outcome as o -> intra_outcome o

(* Health monitoring *)

let report_application_message env ~process:_ line =
  env.emit
    (Event.Application_output
       { partition = env.partition.Partition.id; line });
  Done No_error

let raise_application_error env ~process detail =
  env.report_process_error ~process Error.Application_error ~detail;
  Done No_error

(* Mode-based schedules *)

let set_module_schedule env ~process target =
  match env.partition.Partition.kind with
  | Partition.Application ->
    (* Only authorized (system) partitions may request schedule switches. *)
    env.report_process_error ~process Error.Illegal_request
      ~detail:"SET_MODULE_SCHEDULE from application partition";
    Done Invalid_mode
  | Partition.System -> (
    match Lane.request_schedule_switch env.lane target with
    | Ok () ->
      env.emit
        (Event.Schedule_switch_request
           { by = Some env.partition.Partition.id; target });
      Done No_error
    | Error (Pmk.No_such_schedule _) -> Done Invalid_param
    | Error Pmk.Same_schedule -> Done No_action)

type schedule_status = {
  time_of_last_schedule_switch : Time.t;
  current_schedule : Ident.Schedule_id.t;
  next_schedule : Ident.Schedule_id.t;
}

let get_module_schedule_status env =
  { time_of_last_schedule_switch = Lane.last_schedule_switch env.lane;
    current_schedule = Lane.current_schedule env.lane;
    next_schedule = Lane.next_schedule env.lane }

let pp_schedule_status ppf s =
  Format.fprintf ppf "current=%a next=%a lastSwitch=%a" Ident.Schedule_id.pp
    s.current_schedule Ident.Schedule_id.pp s.next_schedule Time.pp
    s.time_of_last_schedule_switch
