open Air_sim
open Air_model
open Ident

type tick_outcome = {
  mutable schedule_switched : (Schedule_id.t * Schedule_id.t) option;
  mutable context_switch :
    (Partition_id.t option * Partition_id.t option) option;
  mutable elapsed : Time.t;
  mutable change_action : (Partition_id.t * Schedule.change_action) option;
  mutable frame_closed : Air_obs.Telemetry.frame option;
}

type t = {
  schedules : Schedule.t array;
  tables : Schedule.preemption_point array array;
  partition_count : int;
  mutable ticks : Time.t;
  mutable current_schedule : int;
  mutable next_schedule : int;
  mutable last_schedule_switch : Time.t;
  mutable table_iterator : int;
  (* Flattened view of the current schedule, rebuilt only when a pending
     switch becomes effective: the steady-state tick reads these four
     fields instead of chasing schedules/tables and re-deriving the MTF
     offset with division. [offset] is the running tick-within-MTF
     position ([-1] before the first tick); [next_fire] is the offset at
     which the preemption-table entry under [table_iterator] fires. *)
  mutable cur_mtf : int;
  mutable cur_table : Schedule.preemption_point array;
  mutable cur_len : int;
  mutable next_fire : Time.t;
  mutable offset : int;
  out : tick_outcome;
      (* Reused outcome record: [tick] overwrites its fields in place so a
         steady-state tick allocates nothing. Consumers must copy what they
         need before the next [tick]. *)
  mutable heir_partition : Partition_id.t option;
  mutable active_partition : Partition_id.t option;
  last_tick : Time.t array;
      (* Per partition: last tick at which it held the processing
         resources (Algorithm 2 bookkeeping). *)
  pending_action : Schedule.change_action option array;
      (* Per partition: ScheduleChangeAction awaiting the first dispatch
         after a schedule switch. *)
  m_ticks : Air_obs.Metrics.counter;
  m_schedule_switches : Air_obs.Metrics.counter;
  m_context_switches : Air_obs.Metrics.counter;
  m_dispatcher_elapsed : Air_obs.Metrics.histogram;
      (* Distribution of elapsed-tick gaps accounted at dispatch — the
         quantity Algorithm 2 hands to the PAL. *)
  recorder : Air_obs.Span.t option;
      (* Flight recorder: partition-window spans opened/closed by the
         dispatcher, schedule-switch and change-action instants. *)
  telemetry : Air_obs.Telemetry.t option;
      (* Telemetry accumulator: fed one occupancy sample per tick plus a
         dispatch-jitter sample per context switch; its frame is closed at
         every MTF boundary. *)
  allotted : int array array;
      (* Per schedule: each partition's total window time per MTF —
         precomputed so frame close stays off the window lists. *)
  frame_owner : bool;
      (* Whether this scheduler closes telemetry frames at MTF boundaries.
         Exactly one lane of a multicore executive owns the frame. *)
  occupancy : bool;
      (* Whether this scheduler feeds the per-tick busy/idle occupancy
         sample. A multicore executive disables per-lane occupancy and
         records one combined sample per global tick instead. *)
  lane : int;
      (* Lane index within a multicore executive; the sub-lane of every
         partition-window span this scheduler records, so the timeline can
         tell which core ran the window. 0 for a single-core module. *)
}

let create ?metrics ?recorder ?telemetry ?(frame_owner = true)
    ?(occupancy = true) ?(lane = 0) ?window_allotment ?initial_schedule
    ~partition_count schedules_list =
  (match Validate.validate_set schedules_list with
  | [] -> ()
  | d :: _ ->
    invalid_arg
      (Format.asprintf "Pmk.create: invalid schedules: %a"
         Validate.pp_diagnostic d));
  let n = List.length schedules_list in
  let schedules = Array.make n (List.hd schedules_list) in
  List.iter
    (fun (s : Schedule.t) ->
      let i = Schedule_id.index s.id in
      if i >= n then
        invalid_arg "Pmk.create: schedule identifiers must be dense";
      schedules.(i) <- s)
    schedules_list;
  Array.iteri
    (fun i (s : Schedule.t) ->
      if Schedule_id.index s.id <> i then
        invalid_arg "Pmk.create: duplicate or non-dense schedule identifiers";
      List.iter
        (fun (r : Schedule.requirement) ->
          if Partition_id.index r.partition >= partition_count then
            invalid_arg "Pmk.create: schedule references unknown partition")
        s.requirements)
    schedules;
  let initial =
    match initial_schedule with
    | None -> 0
    | Some id ->
      let i = Schedule_id.index id in
      if i >= n then invalid_arg "Pmk.create: initial schedule out of range";
      i
  in
  let tables = Array.map Schedule.preemption_table schedules in
  let allotted =
    match window_allotment with
    | Some a -> a
    | None ->
      Array.map
        (fun s ->
          Array.init partition_count (fun i ->
              Schedule.total_window_time s (Partition_id.make i)))
        schedules
  in
  (match telemetry with
  | Some tel when frame_owner ->
    Air_obs.Telemetry.prime tel ~schedule:initial ~allotted:allotted.(initial)
  | Some _ | None -> ());
  let reg =
    match metrics with
    | Some reg -> reg
    | None -> Air_obs.Metrics.create ()
  in
  { schedules;
    tables;
    partition_count;
    ticks = -1;
    current_schedule = initial;
    next_schedule = initial;
    last_schedule_switch = Time.zero;
    table_iterator = 0;
    cur_mtf = schedules.(initial).Schedule.mtf;
    cur_table = tables.(initial);
    cur_len = Array.length tables.(initial);
    next_fire = tables.(initial).(0).Schedule.tick;
    offset = -1;
    out =
      { schedule_switched = None;
        context_switch = None;
        elapsed = Time.zero;
        change_action = None;
        frame_closed = None };
    heir_partition = None;
    active_partition = None;
    last_tick = Array.make (Stdlib.max 1 partition_count) Time.zero;
    pending_action = Array.make (Stdlib.max 1 partition_count) None;
    m_ticks = Air_obs.Metrics.counter reg "pmk.ticks";
    m_schedule_switches = Air_obs.Metrics.counter reg "pmk.schedule_switches";
    m_context_switches = Air_obs.Metrics.counter reg "pmk.context_switches";
    m_dispatcher_elapsed =
      Air_obs.Metrics.histogram reg "pmk.dispatcher_elapsed";
    recorder;
    telemetry;
    allotted;
    frame_owner;
    occupancy;
    lane }

let schedule_count t = Array.length t.schedules
let schedules t = Array.copy t.schedules

let schedule t id =
  let i = Schedule_id.index id in
  if i >= Array.length t.schedules then
    invalid_arg "Pmk.schedule: no such schedule";
  t.schedules.(i)

let current_schedule t = t.schedules.(t.current_schedule).Schedule.id
let next_schedule t = t.schedules.(t.next_schedule).Schedule.id
let last_schedule_switch t = t.last_schedule_switch
let ticks t = t.ticks
let active_partition t = t.active_partition
let heir_partition t = t.heir_partition

type switch_error = No_such_schedule of int | Same_schedule

let request_schedule_switch t id =
  let i = Schedule_id.index id in
  if i >= Array.length t.schedules then Error (No_such_schedule i)
  else begin
    let no_action = i = t.current_schedule && t.next_schedule = t.current_schedule in
    t.next_schedule <- i;
    if no_action then Error Same_schedule else Ok ()
  end

let mtf_position t =
  (* The running offset tracks [(ticks - last_schedule_switch) mod mtf]
     exactly (both reset together at a switch); [-1] only before the first
     tick, where the position is 0 by convention. *)
  if t.offset < 0 then 0 else t.offset

(* Refresh the flattened schedule view after [current_schedule] or
   [table_iterator] changed. *)
let rebuild_schedule_cache t =
  t.cur_mtf <- t.schedules.(t.current_schedule).Schedule.mtf;
  t.cur_table <- t.tables.(t.current_schedule);
  t.cur_len <- Array.length t.cur_table;
  t.next_fire <- t.cur_table.(t.table_iterator).Schedule.tick

(* Cold half of Algorithm 1, lines 3–7: a pending schedule switch becomes
   effective at the start of a major time frame. Allocation here is fine —
   switches are request-driven and happen at most once per MTF. *)
let effect_schedule_switch t =
  let from = t.schedules.(t.current_schedule).Schedule.id in
  t.current_schedule <- t.next_schedule;
  t.last_schedule_switch <- t.ticks;
  t.table_iterator <- 0;
  rebuild_schedule_cache t;
  Air_obs.Metrics.incr t.m_schedule_switches;
  (* Module-track instant emitted by the frame owner only: every lane of a
     multicore executive switches at the same boundary, one record
     suffices. *)
  (match t.recorder with
  | None -> ()
  | Some _ when not t.frame_owner -> ()
  | Some r ->
    Air_obs.Span.instant r ~now:t.ticks ~track:(-1) "schedule-switch"
      ~detail:
        (Printf.sprintf "%s -> %s"
           (t.schedules.(Schedule_id.index from)).Schedule.name
           (t.schedules.(t.current_schedule)).Schedule.name));
  (* Arm each partition's ScheduleChangeAction, applied at its first
     dispatch under the new schedule (Sect. 4.3). *)
  let s = t.schedules.(t.current_schedule) in
  List.iter
    (fun pid ->
      match Schedule.change_action_for s pid with
      | Schedule.No_action -> ()
      | action -> t.pending_action.(Partition_id.index pid) <- Some action)
    (Schedule.partitions s);
  Some (from, s.Schedule.id)

(* Algorithm 1 — AIR Partition Scheduler featuring mode-based schedules.
   The hot path is a counter increment, a wrap test and one equality
   against the cached next preemption offset; every preemption table has a
   tick-0 entry and the iterator is back at entry 0 exactly at offset 0,
   so the cached fire test agrees with the original table lookup at MTF
   boundaries, in particular where a switch becomes effective. *)
let partition_scheduler t =
  t.ticks <- t.ticks + 1;
  Air_obs.Metrics.incr t.m_ticks;
  let offset = t.offset + 1 in
  let offset = if offset >= t.cur_mtf then 0 else offset in
  t.offset <- offset;
  if offset <> t.next_fire then None
  else begin
    let switched =
      if t.current_schedule <> t.next_schedule && offset = 0 then
        effect_schedule_switch t
      else None
    in
    (* Lines 8–9: select the heir partition and advance the iterator. *)
    t.heir_partition <- t.cur_table.(t.table_iterator).Schedule.heir;
    t.table_iterator <- (t.table_iterator + 1) mod t.cur_len;
    t.next_fire <- t.cur_table.(t.table_iterator).Schedule.tick;
    switched
  end

(* Algorithm 2 — AIR Partition Dispatcher featuring mode-based schedules.
   Writes its result into [t.out] (the reused outcome record) instead of
   allocating one per tick; [schedule_switched]/[frame_closed] are filled
   by [tick]. *)
let partition_dispatcher t =
  let out = t.out in
  let same =
    match (t.heir_partition, t.active_partition) with
    | None, None -> true
    | Some h, Some a -> Partition_id.equal h a
    | None, Some _ | Some _, None -> false
  in
  if same then begin
    (* Keep lastTick current while the partition runs, so that elapsed
       accounting restarts cleanly after idle gaps. *)
    (match t.active_partition with
    | Some p ->
      t.last_tick.(Partition_id.index p) <- t.ticks;
      out.elapsed <- 1
    | None -> out.elapsed <- Time.zero);
    out.context_switch <- None;
    out.change_action <- None
  end
  else begin
    let previous = t.active_partition in
    (* SAVECONTEXT / lastTick bookkeeping for the outgoing partition. *)
    (match previous with
    | Some p -> t.last_tick.(Partition_id.index p) <- t.ticks - 1
    | None -> ());
    (* Flight recorder: close the outgoing partition's window span, open
       the heir's. The span interval [dispatch, preemption) matches the
       scheduling-table window [offset, offset + duration). *)
    (match t.recorder with
    | None -> ()
    | Some r ->
      (match previous with
      | Some p ->
        Air_obs.Span.end_span r ~now:t.ticks ~track:(Partition_id.index p)
      | None -> ());
      (match t.heir_partition with
      | Some h ->
        Air_obs.Span.begin_span r ~now:t.ticks ~track:(Partition_id.index h)
          ~sub:t.lane
          ~detail:(t.schedules.(t.current_schedule)).Schedule.name
          "partition-window"
      | None -> ()));
    let elapsed, change_action =
      match t.heir_partition with
      | None -> (Time.zero, None)
      | Some h ->
        let hi = Partition_id.index h in
        let elapsed = t.ticks - t.last_tick.(hi) in
        Air_obs.Metrics.observe t.m_dispatcher_elapsed elapsed;
        (* Telemetry: dispatch jitter — ticks between the scheduling-table
           window start (the preemption point the scheduler just consumed)
           and this context switch. The discrete PMK dispatches in the same
           tick as the preemption point, so any nonzero value is a real
           anomaly worth a watchdog. *)
        (match t.telemetry with
        | None -> ()
        | Some tel ->
          let len = t.cur_len in
          let entry = t.cur_table.((t.table_iterator + len - 1) mod len) in
          let off = if t.offset < 0 then 0 else t.offset in
          let jitter =
            (((off - entry.Schedule.tick) mod t.cur_mtf) + t.cur_mtf)
            mod t.cur_mtf
          in
          Air_obs.Telemetry.on_dispatch tel ~partition:hi ~jitter);
        t.last_tick.(hi) <- t.ticks;
        (* PENDINGSCHEDULECHANGEACTION(heirPartition). *)
        let action =
          match t.pending_action.(hi) with
          | Some a ->
            t.pending_action.(hi) <- None;
            (match t.recorder with
            | None -> ()
            | Some r ->
              Air_obs.Span.instant r ~now:t.ticks ~track:hi
                ~detail:
                  (Format.asprintf "%a" Schedule.pp_change_action a)
                "schedule-change-action");
            Some (h, a)
          | None -> None
        in
        (elapsed, action)
    in
    t.active_partition <- t.heir_partition;
    Air_obs.Metrics.incr t.m_context_switches;
    out.context_switch <- Some (previous, t.active_partition);
    out.elapsed <- elapsed;
    out.change_action <- change_action
  end

let tick t =
  let switched = partition_scheduler t in
  (* Telemetry frame close at the MTF boundary: the boundary tick opens the
     new frame, so the close runs after the scheduler (which may have made
     a pending schedule switch effective — the new frame runs under the new
     schedule) and before this tick's occupancy is accumulated. *)
  let frame_closed =
    match t.telemetry with
    | None -> None
    | Some _ when not t.frame_owner -> None
    | Some tel ->
      if t.offset = 0 && t.ticks > Air_obs.Telemetry.frame_start tel then
        Some
          (Air_obs.Telemetry.close_frame tel ~now:t.ticks
             ~next_schedule:t.current_schedule
             ~next_allotted:t.allotted.(t.current_schedule))
      else None
  in
  partition_dispatcher t;
  (match t.telemetry with
  | Some tel when t.occupancy ->
    Air_obs.Telemetry.on_tick_idx tel
      ~active:
        (match t.active_partition with
        | Some p -> Partition_id.index p
        | None -> -1)
  | Some _ | None -> ());
  let out = t.out in
  out.schedule_switched <- switched;
  out.frame_closed <- frame_closed;
  out

(* --- Skip-ahead support -------------------------------------------------- *)

(* The absolute tick at which the preemption table next fires. Between two
   consecutive fires the heir never changes, no schedule switch can become
   effective and no MTF boundary passes (boundaries coincide with the
   table's offset-0 entry), so the executive may batch the whole gap. *)
let next_preemption_tick t =
  let base = t.ticks + 1 in
  let off = t.offset + 1 in
  let off = if off >= t.cur_mtf then 0 else off in
  let delta = (((t.next_fire - off) mod t.cur_mtf) + t.cur_mtf) mod t.cur_mtf in
  base + delta

(* Batch-advance the clock across a span the caller has proven quiescent:
   no preemption-table fire in (ticks, ticks + n], the heir equals the
   active partition, and no partition-level work is pending. Equivalent to
   [n] calls of [tick] whose outcomes are all same-heir/no-event. *)
let skip t ~ticks:n =
  if n > 0 then begin
    t.ticks <- t.ticks + n;
    (* The caller guarantees no preemption-table fire in the span, so the
       offset cannot wrap past an MTF boundary; the mod merely re-derives
       the running position in one step instead of n increments. *)
    t.offset <- (t.offset + n) mod t.cur_mtf;
    Air_obs.Metrics.add t.m_ticks n;
    (match t.active_partition with
    | Some p -> t.last_tick.(Partition_id.index p) <- t.ticks
    | None -> ());
    match t.telemetry with
    | Some tel when t.occupancy ->
      Air_obs.Telemetry.on_ticks_idx tel
        ~active:
          (match t.active_partition with
          | Some p -> Partition_id.index p
          | None -> -1)
        ~count:n
    | Some _ | None -> ()
  end

let pp ppf t =
  Format.fprintf ppf
    "PMK: ticks=%a schedule=%a next=%a lastSwitch=%a active=%a heir=%a"
    Time.pp t.ticks Schedule_id.pp (current_schedule t) Schedule_id.pp
    (next_schedule t) Time.pp t.last_schedule_switch
    (fun ppf -> function
      | None -> Format.pp_print_string ppf "idle"
      | Some p -> Partition_id.pp ppf p)
    t.active_partition
    (fun ppf -> function
      | None -> Format.pp_print_string ppf "idle"
      | Some p -> Partition_id.pp ppf p)
    t.heir_partition
