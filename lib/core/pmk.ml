open Air_sim
open Air_model
open Ident

type t = {
  schedules : Schedule.t array;
  tables : Schedule.preemption_point array array;
  partition_count : int;
  mutable ticks : Time.t;
  mutable current_schedule : int;
  mutable next_schedule : int;
  mutable last_schedule_switch : Time.t;
  mutable table_iterator : int;
  mutable heir_partition : Partition_id.t option;
  mutable active_partition : Partition_id.t option;
  last_tick : Time.t array;
      (* Per partition: last tick at which it held the processing
         resources (Algorithm 2 bookkeeping). *)
  pending_action : Schedule.change_action option array;
      (* Per partition: ScheduleChangeAction awaiting the first dispatch
         after a schedule switch. *)
  m_ticks : Air_obs.Metrics.counter;
  m_schedule_switches : Air_obs.Metrics.counter;
  m_context_switches : Air_obs.Metrics.counter;
  m_dispatcher_elapsed : Air_obs.Metrics.histogram;
      (* Distribution of elapsed-tick gaps accounted at dispatch — the
         quantity Algorithm 2 hands to the PAL. *)
  recorder : Air_obs.Span.t option;
      (* Flight recorder: partition-window spans opened/closed by the
         dispatcher, schedule-switch and change-action instants. *)
  telemetry : Air_obs.Telemetry.t option;
      (* Telemetry accumulator: fed one occupancy sample per tick plus a
         dispatch-jitter sample per context switch; its frame is closed at
         every MTF boundary. *)
  allotted : int array array;
      (* Per schedule: each partition's total window time per MTF —
         precomputed so frame close stays off the window lists. *)
  frame_owner : bool;
      (* Whether this scheduler closes telemetry frames at MTF boundaries.
         Exactly one lane of a multicore executive owns the frame. *)
  occupancy : bool;
      (* Whether this scheduler feeds the per-tick busy/idle occupancy
         sample. A multicore executive disables per-lane occupancy and
         records one combined sample per global tick instead. *)
}

let create ?metrics ?recorder ?telemetry ?(frame_owner = true)
    ?(occupancy = true) ?window_allotment ?initial_schedule ~partition_count
    schedules_list =
  (match Validate.validate_set schedules_list with
  | [] -> ()
  | d :: _ ->
    invalid_arg
      (Format.asprintf "Pmk.create: invalid schedules: %a"
         Validate.pp_diagnostic d));
  let n = List.length schedules_list in
  let schedules = Array.make n (List.hd schedules_list) in
  List.iter
    (fun (s : Schedule.t) ->
      let i = Schedule_id.index s.id in
      if i >= n then
        invalid_arg "Pmk.create: schedule identifiers must be dense";
      schedules.(i) <- s)
    schedules_list;
  Array.iteri
    (fun i (s : Schedule.t) ->
      if Schedule_id.index s.id <> i then
        invalid_arg "Pmk.create: duplicate or non-dense schedule identifiers";
      List.iter
        (fun (r : Schedule.requirement) ->
          if Partition_id.index r.partition >= partition_count then
            invalid_arg "Pmk.create: schedule references unknown partition")
        s.requirements)
    schedules;
  let initial =
    match initial_schedule with
    | None -> 0
    | Some id ->
      let i = Schedule_id.index id in
      if i >= n then invalid_arg "Pmk.create: initial schedule out of range";
      i
  in
  let tables = Array.map Schedule.preemption_table schedules in
  let allotted =
    match window_allotment with
    | Some a -> a
    | None ->
      Array.map
        (fun s ->
          Array.init partition_count (fun i ->
              Schedule.total_window_time s (Partition_id.make i)))
        schedules
  in
  (match telemetry with
  | Some tel when frame_owner ->
    Air_obs.Telemetry.prime tel ~schedule:initial ~allotted:allotted.(initial)
  | Some _ | None -> ());
  let reg =
    match metrics with
    | Some reg -> reg
    | None -> Air_obs.Metrics.create ()
  in
  { schedules;
    tables;
    partition_count;
    ticks = -1;
    current_schedule = initial;
    next_schedule = initial;
    last_schedule_switch = Time.zero;
    table_iterator = 0;
    heir_partition = None;
    active_partition = None;
    last_tick = Array.make (Stdlib.max 1 partition_count) Time.zero;
    pending_action = Array.make (Stdlib.max 1 partition_count) None;
    m_ticks = Air_obs.Metrics.counter reg "pmk.ticks";
    m_schedule_switches = Air_obs.Metrics.counter reg "pmk.schedule_switches";
    m_context_switches = Air_obs.Metrics.counter reg "pmk.context_switches";
    m_dispatcher_elapsed =
      Air_obs.Metrics.histogram reg "pmk.dispatcher_elapsed";
    recorder;
    telemetry;
    allotted;
    frame_owner;
    occupancy }

let schedule_count t = Array.length t.schedules
let schedules t = Array.copy t.schedules

let schedule t id =
  let i = Schedule_id.index id in
  if i >= Array.length t.schedules then
    invalid_arg "Pmk.schedule: no such schedule";
  t.schedules.(i)

let current_schedule t = t.schedules.(t.current_schedule).Schedule.id
let next_schedule t = t.schedules.(t.next_schedule).Schedule.id
let last_schedule_switch t = t.last_schedule_switch
let ticks t = t.ticks
let active_partition t = t.active_partition
let heir_partition t = t.heir_partition

type switch_error = No_such_schedule of int | Same_schedule

let request_schedule_switch t id =
  let i = Schedule_id.index id in
  if i >= Array.length t.schedules then Error (No_such_schedule i)
  else begin
    let no_action = i = t.current_schedule && t.next_schedule = t.current_schedule in
    t.next_schedule <- i;
    if no_action then Error Same_schedule else Ok ()
  end

type tick_outcome = {
  schedule_switched : (Schedule_id.t * Schedule_id.t) option;
  context_switch : (Partition_id.t option * Partition_id.t option) option;
  elapsed : Time.t;
  change_action : (Partition_id.t * Schedule.change_action) option;
  frame_closed : Air_obs.Telemetry.frame option;
}

let mtf_position t =
  let mtf = t.schedules.(t.current_schedule).Schedule.mtf in
  (* Clamp the whole difference: [max 0 t.ticks - t.last_schedule_switch]
     only clamped [ticks] (function application binds tighter than [-]),
     letting the dividend — and hence the position — go negative whenever
     the clock sits behind a nonzero schedule-switch stamp. *)
  Stdlib.max 0 (t.ticks - t.last_schedule_switch) mod mtf

(* Algorithm 1 — AIR Partition Scheduler featuring mode-based schedules. *)
let partition_scheduler t =
  t.ticks <- t.ticks + 1;
  Air_obs.Metrics.incr t.m_ticks;
  let mtf = t.schedules.(t.current_schedule).Schedule.mtf in
  let offset = (t.ticks - t.last_schedule_switch) mod mtf in
  let table = t.tables.(t.current_schedule) in
  let switched = ref None in
  if Time.equal table.(t.table_iterator).Schedule.tick offset then begin
    (* Lines 3–7: a pending schedule switch becomes effective only at the
       start of a major time frame. *)
    if t.current_schedule <> t.next_schedule && offset = 0 then begin
      let from = t.schedules.(t.current_schedule).Schedule.id in
      t.current_schedule <- t.next_schedule;
      t.last_schedule_switch <- t.ticks;
      t.table_iterator <- 0;
      Air_obs.Metrics.incr t.m_schedule_switches;
      switched := Some (from, t.schedules.(t.current_schedule).Schedule.id);
      (match t.recorder with
      | None -> ()
      | Some r ->
        Air_obs.Span.instant r ~now:t.ticks ~track:(-1) "schedule-switch"
          ~detail:
            (Printf.sprintf "%s -> %s"
               (t.schedules.(Schedule_id.index from)).Schedule.name
               (t.schedules.(t.current_schedule)).Schedule.name));
      (* Arm each partition's ScheduleChangeAction, applied at its first
         dispatch under the new schedule (Sect. 4.3). *)
      let s = t.schedules.(t.current_schedule) in
      List.iter
        (fun pid ->
          match Schedule.change_action_for s pid with
          | Schedule.No_action -> ()
          | action ->
            t.pending_action.(Partition_id.index pid) <- Some action)
        (Schedule.partitions s)
    end;
    (* Lines 8–9: select the heir partition and advance the iterator. *)
    let table = t.tables.(t.current_schedule) in
    t.heir_partition <- table.(t.table_iterator).Schedule.heir;
    t.table_iterator <- (t.table_iterator + 1) mod Array.length table
  end;
  !switched

(* Algorithm 2 — AIR Partition Dispatcher featuring mode-based schedules. *)
let partition_dispatcher t =
  let same =
    match (t.heir_partition, t.active_partition) with
    | None, None -> true
    | Some h, Some a -> Partition_id.equal h a
    | None, Some _ | Some _, None -> false
  in
  if same then begin
    let elapsed =
      match t.active_partition with None -> Time.zero | Some _ -> 1
    in
    (* Keep lastTick current while the partition runs, so that elapsed
       accounting restarts cleanly after idle gaps. *)
    (match t.active_partition with
    | Some p -> t.last_tick.(Partition_id.index p) <- t.ticks
    | None -> ());
    { schedule_switched = None;
      context_switch = None;
      elapsed;
      change_action = None;
      frame_closed = None }
  end
  else begin
    let previous = t.active_partition in
    (* SAVECONTEXT / lastTick bookkeeping for the outgoing partition. *)
    (match previous with
    | Some p -> t.last_tick.(Partition_id.index p) <- t.ticks - 1
    | None -> ());
    (* Flight recorder: close the outgoing partition's window span, open
       the heir's. The span interval [dispatch, preemption) matches the
       scheduling-table window [offset, offset + duration). *)
    (match t.recorder with
    | None -> ()
    | Some r ->
      (match previous with
      | Some p ->
        Air_obs.Span.end_span r ~now:t.ticks ~track:(Partition_id.index p)
      | None -> ());
      (match t.heir_partition with
      | Some h ->
        Air_obs.Span.begin_span r ~now:t.ticks ~track:(Partition_id.index h)
          ~detail:(t.schedules.(t.current_schedule)).Schedule.name
          "partition-window"
      | None -> ()));
    let elapsed, change_action =
      match t.heir_partition with
      | None -> (Time.zero, None)
      | Some h ->
        let hi = Partition_id.index h in
        let elapsed = t.ticks - t.last_tick.(hi) in
        Air_obs.Metrics.observe t.m_dispatcher_elapsed elapsed;
        (* Telemetry: dispatch jitter — ticks between the scheduling-table
           window start (the preemption point the scheduler just consumed)
           and this context switch. The discrete PMK dispatches in the same
           tick as the preemption point, so any nonzero value is a real
           anomaly worth a watchdog. *)
        (match t.telemetry with
        | None -> ()
        | Some tel ->
          let mtf = t.schedules.(t.current_schedule).Schedule.mtf in
          let table = t.tables.(t.current_schedule) in
          let len = Array.length table in
          let entry = table.((t.table_iterator + len - 1) mod len) in
          let off = Stdlib.max 0 (t.ticks - t.last_schedule_switch) mod mtf in
          let jitter = (((off - entry.Schedule.tick) mod mtf) + mtf) mod mtf in
          Air_obs.Telemetry.on_dispatch tel ~partition:hi ~jitter);
        t.last_tick.(hi) <- t.ticks;
        (* PENDINGSCHEDULECHANGEACTION(heirPartition). *)
        let action =
          match t.pending_action.(hi) with
          | Some a ->
            t.pending_action.(hi) <- None;
            (match t.recorder with
            | None -> ()
            | Some r ->
              Air_obs.Span.instant r ~now:t.ticks ~track:hi
                ~detail:
                  (Format.asprintf "%a" Schedule.pp_change_action a)
                "schedule-change-action");
            Some (h, a)
          | None -> None
        in
        (elapsed, action)
    in
    t.active_partition <- t.heir_partition;
    Air_obs.Metrics.incr t.m_context_switches;
    { schedule_switched = None;
      context_switch = Some (previous, t.active_partition);
      elapsed;
      change_action;
      frame_closed = None }
  end

let tick t =
  let switched = partition_scheduler t in
  (* Telemetry frame close at the MTF boundary: the boundary tick opens the
     new frame, so the close runs after the scheduler (which may have made
     a pending schedule switch effective — the new frame runs under the new
     schedule) and before this tick's occupancy is accumulated. *)
  let frame_closed =
    match t.telemetry with
    | None -> None
    | Some _ when not t.frame_owner -> None
    | Some tel ->
      let mtf = t.schedules.(t.current_schedule).Schedule.mtf in
      let off = Stdlib.max 0 (t.ticks - t.last_schedule_switch) mod mtf in
      if off = 0 && t.ticks > Air_obs.Telemetry.frame_start tel then
        Some
          (Air_obs.Telemetry.close_frame tel ~now:t.ticks
             ~next_schedule:t.current_schedule
             ~next_allotted:t.allotted.(t.current_schedule))
      else None
  in
  let outcome = partition_dispatcher t in
  (match t.telemetry with
  | Some tel when t.occupancy ->
    Air_obs.Telemetry.on_tick tel
      ~active:(Option.map Partition_id.index t.active_partition)
  | Some _ | None -> ());
  { outcome with schedule_switched = switched; frame_closed }

(* --- Skip-ahead support -------------------------------------------------- *)

(* The absolute tick at which the preemption table next fires. Between two
   consecutive fires the heir never changes, no schedule switch can become
   effective and no MTF boundary passes (boundaries coincide with the
   table's offset-0 entry), so the executive may batch the whole gap. *)
let next_preemption_tick t =
  let mtf = t.schedules.(t.current_schedule).Schedule.mtf in
  let table = t.tables.(t.current_schedule) in
  let entry = table.(t.table_iterator).Schedule.tick in
  let base = t.ticks + 1 in
  let off = Stdlib.max 0 (base - t.last_schedule_switch) mod mtf in
  let delta = (((entry - off) mod mtf) + mtf) mod mtf in
  base + delta

(* Batch-advance the clock across a span the caller has proven quiescent:
   no preemption-table fire in (ticks, ticks + n], the heir equals the
   active partition, and no partition-level work is pending. Equivalent to
   [n] calls of [tick] whose outcomes are all same-heir/no-event. *)
let skip t ~ticks:n =
  if n > 0 then begin
    t.ticks <- t.ticks + n;
    Air_obs.Metrics.add t.m_ticks n;
    (match t.active_partition with
    | Some p -> t.last_tick.(Partition_id.index p) <- t.ticks
    | None -> ());
    match t.telemetry with
    | Some tel when t.occupancy ->
      Air_obs.Telemetry.on_ticks tel
        ~active:(Option.map Partition_id.index t.active_partition)
        ~count:n
    | Some _ | None -> ()
  end

let pp ppf t =
  Format.fprintf ppf
    "PMK: ticks=%a schedule=%a next=%a lastSwitch=%a active=%a heir=%a"
    Time.pp t.ticks Schedule_id.pp (current_schedule t) Schedule_id.pp
    (next_schedule t) Time.pp t.last_schedule_switch
    (fun ppf -> function
      | None -> Format.pp_print_string ppf "idle"
      | Some p -> Partition_id.pp ppf p)
    t.active_partition
    (fun ppf -> function
      | None -> Format.pp_print_string ppf "idle"
      | Some p -> Partition_id.pp ppf p)
    t.heir_partition
