open Air_model
open Ident

type tables = {
  process_actions :
    (Partition_id.t * Error.code * Error.process_action) list;
  partition_actions :
    (Partition_id.t * Error.code * Error.partition_action) list;
  module_actions : (Error.code * Error.module_action) list;
  process_defaults : (Error.code * Error.process_action) list;
  partition_defaults : (Error.code * Error.partition_action) list;
}

let default_tables =
  { process_actions = [];
    partition_actions = [];
    module_actions = [];
    process_defaults = [];
    partition_defaults = [] }

let strict_tables =
  (* Wildcard entries apply to every partition, whatever the module's
     partition count — no per-partition enumeration. *)
  { default_tables with
    process_defaults = [ (Error.Deadline_missed, Error.Stop_process) ];
    partition_defaults =
      [ (Error.Memory_violation, Error.Partition_warm_restart) ];
    module_actions =
      [ (Error.Hardware_fault, Error.Module_reset);
        (Error.Power_failure, Error.Module_shutdown) ] }

type t = {
  tables : tables;
  occurrence : (int * int option * Error.code, int) Hashtbl.t;
      (* (partition index or -1, process, code) → count. *)
  mutable total : int;
  m_process_errors : Air_obs.Metrics.counter;
  m_partition_errors : Air_obs.Metrics.counter;
  m_module_errors : Air_obs.Metrics.counter;
  m_actions : Air_obs.Metrics.counter;
      (* Resolutions that escalated past the ignore/log-only baseline. *)
  m_by_code : (Error.code * Air_obs.Metrics.counter) list;
}

let create ?metrics ?(tables = default_tables) () =
  let reg =
    match metrics with
    | Some reg -> reg
    | None -> Air_obs.Metrics.create ()
  in
  { tables;
    occurrence = Hashtbl.create 32;
    total = 0;
    m_process_errors = Air_obs.Metrics.counter reg "hm.errors.process";
    m_partition_errors = Air_obs.Metrics.counter reg "hm.errors.partition";
    m_module_errors = Air_obs.Metrics.counter reg "hm.errors.module";
    m_actions = Air_obs.Metrics.counter reg "hm.actions_taken";
    m_by_code =
      List.map
        (fun code ->
          let name =
            Format.asprintf "hm.errors.code.%a" Error.pp_code code
          in
          (code, Air_obs.Metrics.counter reg name))
        Error.all_codes }

let bump t key =
  let n = Option.value ~default:0 (Hashtbl.find_opt t.occurrence key) + 1 in
  Hashtbl.replace t.occurrence key n;
  t.total <- t.total + 1;
  n

let count_code t code =
  match
    List.find_opt (fun (c, _) -> Error.code_equal c code) t.m_by_code
  with
  | Some (_, counter) -> Air_obs.Metrics.incr counter
  | None -> ()

let find_process_action tables ~partition ~code =
  match
    List.find_map
      (fun (p, c, a) ->
        if Partition_id.equal p partition && Error.code_equal c code then
          Some a
        else None)
      tables.process_actions
  with
  | Some _ as specific -> specific
  | None ->
    List.find_map
      (fun (c, a) -> if Error.code_equal c code then Some a else None)
      tables.process_defaults

let resolve_process_error t ~partition ~process ~code =
  let occurrences =
    bump t (Partition_id.index partition, Some process, code)
  in
  Air_obs.Metrics.incr t.m_process_errors;
  count_code t code;
  let action =
    match find_process_action t.tables ~partition ~code with
    | None -> Error.Ignore_error
    | Some (Error.Log_then (threshold, action)) ->
      if occurrences <= threshold then Error.Ignore_error else action
    | Some action -> action
  in
  (match action with
  | Error.Ignore_error -> ()
  | _ -> Air_obs.Metrics.incr t.m_actions);
  action

let find_partition_action tables ~partition ~code =
  match
    List.find_map
      (fun (p, c, a) ->
        if Partition_id.equal p partition && Error.code_equal c code then
          Some a
        else None)
      tables.partition_actions
  with
  | Some _ as specific -> specific
  | None ->
    List.find_map
      (fun (c, a) -> if Error.code_equal c code then Some a else None)
      tables.partition_defaults

let resolve_partition_error t ~partition ~code =
  ignore (bump t (Partition_id.index partition, None, code));
  Air_obs.Metrics.incr t.m_partition_errors;
  count_code t code;
  let action =
    Option.value ~default:Error.Partition_ignore
      (find_partition_action t.tables ~partition ~code)
  in
  (match action with
  | Error.Partition_ignore -> ()
  | _ -> Air_obs.Metrics.incr t.m_actions);
  action

let resolve_module_error t ~code =
  ignore (bump t (-1, None, code));
  Air_obs.Metrics.incr t.m_module_errors;
  count_code t code;
  let action =
    Option.value ~default:Error.Module_ignore
      (List.find_map
         (fun (c, a) -> if Error.code_equal c code then Some a else None)
         t.tables.module_actions)
  in
  (match action with
  | Error.Module_ignore -> ()
  | _ -> Air_obs.Metrics.incr t.m_actions);
  action

let error_count t = t.total

let count_for t ~partition ~code =
  let matches (p, _, c) =
    Error.code_equal c code
    &&
    match partition with
    | None -> true
    | Some pid -> p = Partition_id.index pid
  in
  Hashtbl.fold
    (fun key n acc -> if matches key then acc + n else acc)
    t.occurrence 0

let reset_counts t =
  Hashtbl.reset t.occurrence;
  t.total <- 0
