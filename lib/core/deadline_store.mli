(** Process deadline stores (paper Sect. 5.3).

    The AIR PAL keeps, per partition, the deadlines of the processes
    accounted for deadline verification, ordered by ascending deadline time,
    so that the earliest deadline is retrieved in O(1) inside the system
    clock ISR (Algorithm 3). AIR uses a sorted linked list; the paper argues
    a self-balancing binary search tree's O(log n) insertion advantage does
    not pay off for the small process counts involved and is the wrong
    trade-off inside an ISR. Three interchangeable implementations let
    experiment E5 test that argument. *)

open Air_sim

module type S = sig
  type t

  val name : string

  val create : unit -> t

  val register : t -> process:int -> Time.t -> unit
  (** Insert the process' deadline, or update it if already present
      (START, REPLENISH, periodic release — paper Sect. 5.2). *)

  val unregister : t -> process:int -> unit
  (** Remove the process' deadline (STOP, partition shutdown). No-op when
      absent. *)

  val earliest : t -> (int * Time.t) option
  (** The process with the smallest deadline time. *)

  val min_deadline : t -> Time.t
  (** The smallest deadline time alone, {!Air_sim.Time.infinity} when the
      store is empty — the allocation-free form the PAL's per-tick
      verification fast path uses (no option, no tuple). *)

  val remove_earliest : t -> unit
  (** Drop the entry returned by {!earliest} (Algorithm 3, line 7). *)

  val mem : t -> process:int -> bool

  val find : t -> process:int -> Time.t option

  val size : t -> int

  val clear : t -> unit

  val to_sorted_list : t -> (int * Time.t) list
  (** Ascending deadline time; ties broken by process index. *)
end

module Linked_list : S
(** Sorted doubly-linked list — AIR's choice: O(1) earliest retrieval and
    removal, O(n) registration. *)

module Avl : S
(** Self-balancing binary search tree: O(log n) registration, O(log n)
    earliest. The theoretical alternative the paper weighs. *)

module Pairing : S
(** Pairing heap with lazy deletion: O(1) amortized registration, amortized
    O(log n) earliest removal. Superseded entries are skipped when they
    surface; the heap is additionally rebuilt from the live index whenever
    stale entries outnumber live ones 2:1, so register-heavy workloads that
    rarely query the minimum cannot grow it without bound. *)

type impl = Linked_list_impl | Avl_impl | Pairing_impl

val pp_impl : Format.formatter -> impl -> unit
val all_impls : impl list

type t
(** A store of a dynamically chosen implementation. *)

val create : impl -> t
val impl : t -> impl
val register : t -> process:int -> Time.t -> unit
val unregister : t -> process:int -> unit
val earliest : t -> (int * Time.t) option
val min_deadline : t -> Time.t
val remove_earliest : t -> unit
val mem : t -> process:int -> bool
val find : t -> process:int -> Time.t option
val size : t -> int
val clear : t -> unit
val to_sorted_list : t -> (int * Time.t) list
