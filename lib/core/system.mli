(** A complete simulated AIR module: PMK + per-partition (POS, PAL, APEX)
    + Health Monitor + interpartition router + spatial protection.

    [System] owns every component, advances the module one clock tick at a
    time (first-level scheduling, dispatching, PAL surrogate tick
    announcement with deadline verification, second-level process
    scheduling, and one tick of the heir process' script), and records every
    observable action in an event trace.

    Internally the executive is layered: {!Runtime} (state + lifecycle),
    {!Boot} (construction), {!Interp} (script interpretation) and this
    module (the clock-tick executive). [System] re-exports the public
    types so existing users are unaffected. The quiescence probes at the
    end of this interface let the [Air_exec] executive advance the module
    across provably-quiet spans in O(1) ({!quiescent},
    {!next_partition_event}, {!skip}). *)

open Air_sim
open Air_model
open Air_pos
open Air_ipc
open Air_spatial
open Ident

(** An intrapartition communication object created during partition
    initialization (ARINC 653 objects are created before NORMAL mode). *)
type intra_object = Runtime.intra_object =
  | Semaphore_object of {
      name : string;
      initial : int;
      maximum : int;
      discipline : Intra.discipline;
    }
  | Event_object of { name : string }
  | Blackboard_object of { name : string; max_message_size : int }
  | Buffer_object of {
      name : string;
      depth : int;
      max_message_size : int;
      discipline : Intra.discipline;
    }

(** Static description of one partition: the model-level partition, one
    behaviour script per process, POS policy and PAL store choice. *)
type partition_setup = Runtime.partition_setup = {
  partition : Partition.t;
  scripts : Script.t array;
  policy : Kernel.policy;
  store : Deadline_store.impl;
  autostart : bool array;
      (** Processes started by the partition's initialization; others wait
          for an explicit START (e.g. the injected faulty process of the
          paper's Sect. 6 prototype). *)
  memory_requests : Memory.request list;
  intra_objects : intra_object list;
      (** Created at initialization, before the partition enters normal
          mode. Surviving a warm restart, recreated on a cold restart. *)
  error_handler : string option;
      (** Name of the partition's error-handler process (ARINC 653: process
          level errors "cause an application error handler to be invoked",
          paper Sect. 2.4): started by the Health Monitor on any
          process-level error of this partition, in addition to the
          configured recovery action. The process should normally not be
          autostarted. *)
}

val partition_setup :
  ?policy:Kernel.policy ->
  ?store:Deadline_store.impl ->
  ?autostart:(string * bool) list ->
  ?memory_requests:Memory.request list ->
  ?intra_objects:intra_object list ->
  ?error_handler:string ->
  Partition.t ->
  Script.t list ->
  partition_setup
(** [autostart] lists exceptions by process name (default: everything
    autostarts). Default memory requests: one page-aligned 16 KiB region
    each of code, data and stack. Raises [Invalid_argument] if the script
    count differs from the partition's process count, or [error_handler]
    names an unknown process. *)

type config = Runtime.config = {
  partitions : partition_setup list;
  schedules : Schedule.t list;
  initial_schedule : Schedule_id.t option;
  network : Port.network;
  hm_tables : Hm.tables;
  trace_capacity : int option;
  recorder : Air_obs.Span.t option;
      (** Flight recorder receiving spans from the PMK scheduler and
          dispatcher (partition windows, schedule switches, change
          actions), the PALs (clock-tick supervision, deadline misses),
          the Health Monitor handlers and the IPC router; [None] disables
          span recording entirely. *)
  telemetry : Air_obs.Telemetry.config option;
      (** Telemetry downlink: when set, the module aggregates per-MTF
          frames (per-partition utilization, slack, dispatch-jitter and
          IPC-latency percentiles, catch-up depth, deadline misses, HM
          invocations) and evaluates the configured temporal-health
          watchdogs at every frame close, raising
          {!Air_model.Error.Temporal_degradation} through the HM tables on
          a breach. [None] disables telemetry entirely. *)
  causal : Air_obs.Causal.t option;
      (** Flow tracker: when set, every originating IPC write is stamped
          with a correlation id that travels with the message through
          queues, gateway drains and cluster links, and every hop
          (send / receive / forward / fault perturbation) is recorded —
          the raw material for Chrome flow arrows and the
          {!Air_vitral.Flows} latency view. [None] disables stamping. *)
  cores : int option;
      (** [Some n] with [n > 1] shards every scheduling table over [n]
          processor cores ({!Air_model.Multicore.shard}, original window
          offsets preserved) and drives one PMK lane per core off the
          global clock ({!Pmk_mc}); mode-based schedule switches are
          broadcast to every lane. [None] or [Some 1] keeps the
          single-core executive. *)
  contention : Contention.config option;
      (** Shared-resource contention model: per-partition memory-bandwidth
          budgets per MTF window, a decayed cache-pressure score and a
          slowdown curve applied when partitions co-running on different
          lanes exceed the aggregate budget. Every memory/TLB touch is
          charged ({!Air_spatial.Protection.access_costed}); a partition
          that blows its own budget escalates through the HM as
          {!Air_model.Error.Temporal_degradation} exactly once per window;
          owed slowdown is consumed as extra window ticks in place of
          script ticks. [None] disables the model entirely — the executive
          is then bit-identical to the pre-contention code path. *)
}

val config :
  ?initial_schedule:Schedule_id.t ->
  ?network:Port.network ->
  ?hm_tables:Hm.tables ->
  ?trace_capacity:int ->
  ?recorder:Air_obs.Span.t ->
  ?telemetry:Air_obs.Telemetry.config ->
  ?causal:Air_obs.Causal.t ->
  ?cores:int ->
  ?contention:Contention.config ->
  partitions:partition_setup list ->
  schedules:Schedule.t list ->
  unit ->
  config
(** Raises [Invalid_argument] when [cores] is non-positive. *)

type t = Runtime.t

val create : config -> t
(** Validates schedules ({!Air_model.Validate.validate_set}), the port
    network ({!Air_ipc.Port.validate}) and memory maps; raises
    [Invalid_argument] with the first diagnostic otherwise. Partitions boot
    in their configured initial mode (ARINC 653 default: cold start) and
    complete initialization — starting autostart processes and entering
    normal mode — the first time they are dispatched. *)

(** {1 Advancing time} *)

val step : t -> unit
(** One system clock tick. No-op once the module is halted. *)

val run : t -> ticks:int -> unit

val run_mtfs : t -> int -> unit
(** Run whole major time frames of the schedule current at each boundary. *)

val now : t -> Time.t
val halted : t -> string option

(** {1 Quiescence and skip-ahead}

    The probes the [Air_exec] executive combines with
    {!Lane.next_preemption_tick} to advance the module across quiet spans
    in O(1) while staying bit-identical to per-tick execution. *)

val quiescent : t -> bool
(** Whether per-tick execution would be a pure clock advance right now:
    every partition currently holding a core is either idle or in normal
    mode with no schedulable process, no pending clock-jitter bookkeeping
    and no owed interference stall. Partitions not holding a core are
    never driven per-tick and cannot break quiescence. The stall conjunct
    keeps a partition in contention slowdown interesting to the
    executive's clock; without a contention model it is trivially true. *)

val next_partition_event : t -> Time.t
(** The earliest future tick at which a currently-active partition becomes
    interesting again: a blocked process' wake, timeout or release
    instant, or the tick after its earliest PAL deadline (a deadline [d]
    first raises a violation at [d + 1]). {!Air_sim.Time.infinity} when
    nothing is pending. *)

val skip : t -> ticks:int -> unit
(** Batch-advance the global clock by [ticks]. Only sound across a span
    where {!quiescent} holds and no lane preemption, partition event,
    telemetry frame boundary or fault injection falls strictly inside;
    under that contract the result is bit-identical to [ticks] calls of
    {!step}. *)

(** {1 Observation} *)

val trace : t -> Event.t Trace.t

val lane : t -> Lane.t
(** The PMK lane(s) driving the module — single- or multicore. *)

val pmk : t -> Pmk.t
(** The primary lane's scheduler (lane 0 under multicore) — the one that
    owns metrics, recorder spans and telemetry frames. *)

val cores : t -> int
(** Number of processor cores (lanes); 1 for the single-core executive. *)

val hm : t -> Hm.t
val router : t -> Router.t
val protection : t -> Protection.t

val metrics : t -> Air_obs.Metrics.t
(** The registry shared by every component of the module (scheduler, PALs,
    health monitor, router, MMU/TLB). *)

val metrics_snapshot : t -> Air_obs.Metrics.snapshot
val event_counts : t -> (string * int) list
(** Per-kind totals of every event emitted to the trace so far. *)

val metrics_report : t -> string
(** Human-readable metrics + event-count table
    ({!Air_obs.Report.to_string}). *)

val metrics_json : t -> string
(** The same snapshot as a JSON object ({!Air_obs.Report.to_json}). *)

val recorder : t -> Air_obs.Span.t option
(** The flight recorder the module was configured with, if any. *)

val causal : t -> Air_obs.Causal.t option
(** The causal flow tracker the module was configured with, if any. *)

val flow_entries : t -> Air_obs.Causal.entry list
(** Retained causal hop records, oldest first; [[]] without a tracker. *)

val export_meta : t -> (string * int) list
(** Bounded-retention drop counters ([dropped_spans],
    [dropped_flow_records]) for the instruments actually configured —
    the [air.meta] payload of {!chrome_trace}. *)

val telemetry : t -> Air_obs.Telemetry.t option
(** The telemetry accumulator, when the config enabled telemetry. *)

val contention : t -> Contention.t option
(** The live contention accounts, when the config enabled the model. *)

val telemetry_frames : t -> Air_obs.Telemetry.frame list
(** Retained closed frames, oldest first; [[]] without telemetry. *)

val telemetry_flush : t -> Air_obs.Telemetry.frame option
(** Close the final partial frame (a run rarely ends exactly on an MTF
    boundary) so exports cover the whole run. Watchdogs are not evaluated
    on the flushed frame — its slack is meaningless. [None] without
    telemetry or when no tick was accumulated since the last close. *)

val spans : t -> Air_obs.Span.span list
(** Retained completed flight-recorder spans; [[]] without a recorder. *)

val track_names : t -> (int * string) list
(** Display names for flight-recorder tracks: [(-1, "AIR module")] plus
    one entry per partition (track = partition index). *)

val chrome_trace : t -> string
(** The run as Chrome trace-event JSON ({!Air_obs.Trace_export}):
    flight-recorder spans (when a recorder is configured) merged with the
    retained event trace and causal flow events (when a tracker is
    configured), loadable in [chrome://tracing] or Perfetto. *)

val partition_count : t -> int
val partition_ids : t -> Partition_id.t list
val partition_mode : t -> Partition_id.t -> Partition.mode
val kernel_of : t -> Partition_id.t -> Kernel.t
val pal_of : t -> Partition_id.t -> Pal.t
val intra_of : t -> Partition_id.t -> Intra.t

val region_of :
  t -> Partition_id.t -> Memory.section -> Memory.region option
(** The partition's allocated region for a section — scripts use it to
    compute legitimate (or deliberately out-of-bounds) addresses. *)

val regions_of : t -> Partition_id.t -> Memory.region list
(** Every region of the partition's memory map (empty when the partition
    has none) — the fault injector uses it to compute addresses that lie
    outside the partition's whole footprint. *)

val violations : t -> (Time.t * Process_id.t * Time.t) list
(** All deadline violations detected so far: (detection time, process,
    violated deadline). *)

val activity : t -> (Time.t * Partition_id.t option) list
(** Context-switch history: (tick, partition granted the processor). *)

(** {1 Operator interventions (the prototype's keyboard, Sect. 6)} *)

val start_process :
  t -> Partition_id.t -> name:string -> (unit, string) result
(** Inject: start a (typically non-autostarted, faulty) process by name. *)

val stop_process :
  t -> Partition_id.t -> name:string -> (unit, string) result

val request_schedule : t -> Schedule_id.t -> (unit, string) result
(** Operator-requested mode-based schedule switch, honoured at the end of
    the current major time frame. *)

val restart_partition :
  t -> Partition_id.t -> Partition.mode -> (unit, string) result
(** Force a partition restart ([Cold_start] or [Warm_start]) or shutdown
    ([Idle]); [Normal] is rejected. *)

val deliver_remote :
  ?cid:Air_obs.Causal.id -> t -> port:string -> bytes -> (unit, string) result
(** A message arriving from the inter-module communication infrastructure
    (paper Sect. 2.1): injected into the named local destination port and,
    for queuing ports, handed to a blocked receiver if one waits. Overflow
    is reported as a port-overflow event and [Ok] — the sender cannot tell,
    as over a real bus. [cid] is the correlation id the message carried on
    the wire (default {!Air_obs.Causal.none}); storing it with the payload
    lets the eventual receive close the originating flow. *)

val drain_remote : t -> port:string -> (bytes * Air_obs.Causal.id) option
(** Pop one message from a local destination port acting as the gateway
    towards the communication infrastructure, recording a [Forward] hop
    (not a receive — the message is leaving the module, not being
    consumed). [None] when empty. The returned correlation id rides the
    link transfer to the destination module. *)

val remote_pending : t -> port:string -> int
(** Messages currently queued at the named destination port (0 for
    unknown, sampling or source ports) — the non-destructive occupancy
    probe behind {!Cluster.next_arrival}'s pending-gateway bound. *)

val note_flow_perturb :
  t -> what:Air_obs.Causal.perturbation -> Air_obs.Causal.id -> unit
(** Record a fault striking a stamped message currently outside any
    router buffer (e.g. in flight on the cluster bus); no-op without a
    tracker or on {!Air_obs.Causal.none}. *)

val inject_module_error : t -> Error.code -> detail:string -> unit
(** Report a module-level error (e.g. a simulated hardware fault or power
    failure) to the Health Monitor; the configured module action is
    applied — possibly stopping or reinitializing the whole system. *)

(** {1 Fault injection (campaign engine hooks, [Faults])} *)

val note_fault : t -> label:string -> unit
(** Record a {!Event.Fault_injected} marker in the trace, so campaign
    reports and replay checks can anchor every injection to an instant. *)

val inject_memory_access :
  t -> Partition_id.t -> access:Mmu.access_kind -> address:int -> bool
(** Drive a memory access on behalf of the partition through the full
    protection path ({!Protection.access}: 3-level table walk + TLB),
    exactly as the script interpreter does: a {!Event.Memory_access} event
    is always emitted, and a denied access additionally raises a
    partition-level [Memory_violation] through the Health Monitor. Returns
    whether the access was granted — a bit flip landing inside the
    partition's own region is spatially contained by construction. *)

val inject_bandwidth_hog : t -> Partition_id.t -> permille:int -> int option
(** Bandwidth-hog fault: charge the partition a bulk demand of
    [its budget * permille / 1000] bandwidth units (minimum 1) against its
    window account and its current lane's account, exactly as if it had
    issued that many unit accesses. Returns the charged demand, or [None]
    when no contention model is configured (the fault has nothing to
    saturate). Blowing the budget escalates through the Health Monitor as
    [Temporal_degradation] once per window; co-runners on other lanes may
    subsequently accrue slowdown per the configured curve — and only per
    that curve, which the campaign oracle verifies from telemetry. *)

val inject_clock_jitter : t -> Partition_id.t -> ticks:int -> unit
(** Suppress the PAL surrogate clock-tick announcement for the partition's
    next [ticks] active ticks (tick loss at the PMK level): deadline
    verification and POS timeouts stall while the running process keeps
    computing, then the withheld ticks arrive as one catch-up burst —
    strictly a temporal fault local to the partition. Cumulative; cleared
    by a partition restart or shutdown. *)

val network : t -> Port.network
(** The interpartition port/channel network the module was built with. *)

val hm_tables : t -> Hm.tables
(** The Health Monitor configuration tables the module was built with
    (the containment oracle replays these against the trace). *)
