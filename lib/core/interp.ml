(* Script interpretation — one tick of the heir process' behaviour script.
   Sits between [Runtime] (state + lifecycle) and [System] (the clock-tick
   executive): the executive picks the heir through the POS and hands it
   here for one tick of CPU. *)

open Air_sim
open Air_model
open Air_pos
open Air_spatial
open Ident
open Runtime

(* Zero-duration actions executed within a single tick are capped; a script
   made only of such actions still consumes CPU time. *)
let max_actions_per_tick = 32

let exec_action t prt q (action : Script.action) : Apex.outcome =
  let env = prt.env in
  let b = Bytes.of_string in
  match action with
  | Script.Compute _ -> Apex.Done Apex.No_error (* handled by the caller *)
  | Script.Periodic_wait -> Apex.periodic_wait env ~process:q
  | Script.Timed_wait d -> Apex.timed_wait env ~process:q d
  | Script.Replenish budget -> Apex.replenish env ~process:q budget
  | Script.Write_sampling (port, payload) ->
    Apex.write_sampling_message env ~process:q ~port (b payload)
  | Script.Read_sampling port ->
    Apex.read_sampling_message env ~process:q ~port
  | Script.Send_queuing (port, payload) ->
    Apex.send_queuing_message env ~process:q ~port (b payload)
  | Script.Receive_queuing (port, timeout) ->
    Apex.receive_queuing_message env ~process:q ~port ~timeout
  | Script.Wait_semaphore (name, timeout) ->
    Apex.wait_semaphore env ~process:q ~name ~timeout
  | Script.Signal_semaphore name -> Apex.signal_semaphore env ~process:q ~name
  | Script.Wait_event (name, timeout) ->
    Apex.wait_event env ~process:q ~name ~timeout
  | Script.Set_event name -> Apex.set_event env ~process:q ~name
  | Script.Reset_event name -> Apex.reset_event env ~process:q ~name
  | Script.Display_blackboard (name, payload) ->
    Apex.display_blackboard env ~process:q ~name (b payload)
  | Script.Clear_blackboard name -> Apex.clear_blackboard env ~process:q ~name
  | Script.Read_blackboard (name, timeout) ->
    Apex.read_blackboard env ~process:q ~name ~timeout
  | Script.Send_buffer (name, payload, timeout) ->
    Apex.send_buffer env ~process:q ~name (b payload) ~timeout
  | Script.Receive_buffer (name, timeout) ->
    Apex.receive_buffer env ~process:q ~name ~timeout
  | Script.Read_memory addr | Script.Write_memory addr ->
    let access =
      match action with
      | Script.Write_memory _ -> Mmu.Write
      | _ -> Mmu.Read
    in
    let pid = prt.setup.partition.Partition.id in
    (* The costed access reports the bandwidth units this touch consumed
       (TLB hit = 1, miss = 1 + walk depth); the charge is a no-op when
       no contention model is configured, and [fst access_costed] is
       exactly the historical [Protection.access] — metrics, TLB fills
       and outcomes are bit-identical either way. *)
    let result, cost =
      Protection.access_costed t.protection ~partition:pid
        ~level:Memory.Application ~access addr
    in
    charge_shared_access t prt ~cost;
    let granted = match result with Ok () -> true | Error _ -> false in
    emit t (Event.Memory_access { partition = pid; address = addr; granted });
    if granted then Apex.Done Apex.No_error
    else begin
      report_partition_error t prt Error.Memory_violation
        ~detail:(Printf.sprintf "address 0x%x" addr);
      Apex.Done Apex.Invalid_config
    end
  | Script.Log line -> Apex.report_application_message env ~process:q line
  | Script.Raise_application_error detail ->
    Apex.raise_application_error env ~process:q detail
  | Script.Request_schedule i ->
    Apex.set_module_schedule env ~process:q (Schedule_id.make i)
  | Script.Log_schedule_status ->
    let status = Apex.get_module_schedule_status env in
    Apex.report_application_message env ~process:q
      (Format.asprintf "schedule status: %a" Apex.pp_schedule_status status)
  | Script.Suspend_self timeout -> Apex.suspend_self env ~process:q ~timeout
  | Script.Resume_process name -> (
    match Kernel.find_by_name prt.kernel name with
    | Some target -> Apex.resume env ~process:target
    | None -> Apex.Done Apex.Invalid_param)
  | Script.Start_other name -> (
    match Kernel.find_by_name prt.kernel name with
    | Some target -> (
      match start_process_internal t prt target ~delay:Time.zero with
      | Ok () -> Apex.Done Apex.No_error
      | Error _ -> Apex.Done Apex.No_action)
    | None -> Apex.Done Apex.Invalid_param)
  | Script.Stop_other name -> (
    match Kernel.find_by_name prt.kernel name with
    | Some target -> Apex.stop prt.env ~process:target
    | None -> Apex.Done Apex.Invalid_param)
  | Script.Stop_self -> Apex.stop_self env ~process:q
  | Script.Lock_preemption -> (
    match Kernel.lock_preemption prt.kernel ~process:q with
    | Ok _ -> Apex.Done Apex.No_error
    | Error _ -> Apex.Done Apex.Invalid_mode)
  | Script.Unlock_preemption -> (
    match Kernel.unlock_preemption prt.kernel ~process:q with
    | Ok _ -> Apex.Done Apex.No_error
    | Error _ -> Apex.Done Apex.No_action)
  | Script.Disable_interrupts ->
    (* Paravirtualization (paper Sect. 2.5): the PMK traps attempts to
       disable or divert system clock interrupts; the guest continues. *)
    emit t
      (Event.Hm_error
         { level = Error.Process_level;
           code = Error.Illegal_request;
           partition = Some prt.setup.partition.Partition.id;
           process = Some (Partition.process_id prt.setup.partition q);
           detail = "clock interrupt disable attempt trapped (paravirtualized)" });
    Apex.Done Apex.Invalid_mode

(* One call of [run_task_tick] = one tick of CPU. A Compute action consumes
   the tick; zero-duration actions (service calls, logs) execute for free,
   before or after the computation — so a body like
   [Compute 60; Log; Periodic_wait] costs exactly 60 ticks per activation,
   with the APEX calls happening within the final tick.

   The interpreter loop is a top-level tail-recursive function with its
   state ([consumed], [actions]) passed as arguments instead of local
   references, so a steady-state Compute tick — the common case — performs
   no allocation. Returning stops the tick. *)
let rec exec_loop t prt q task body on_end consumed actions =
  if actions < max_actions_per_tick then begin
    let actions = actions + 1 in
    if task.pc >= Array.length body then begin
      match on_end with
      | Script.Repeat ->
        task.pc <- 0;
        if Array.length body = 0 then ignore (Kernel.stop prt.kernel q)
        else exec_loop t prt q task body on_end consumed actions
      | Script.Stop -> ignore (Apex.stop_self prt.env ~process:q)
    end
    else begin
      match body.(task.pc) with
      | Script.Compute n ->
        if n <= 0 then begin
          task.pc <- task.pc + 1;
          exec_loop t prt q task body on_end consumed actions
        end
        else if consumed then
          (* A second computation cannot start within the same tick. *)
          ()
        else begin
          if task.compute_left = 0 then task.compute_left <- n;
          task.compute_left <- task.compute_left - 1;
          (* Cache pressure of a busy core: charged per consumed compute
             tick when the contention model prices computation. *)
          charge_compute_tick t prt;
          if task.compute_left = 0 then begin
            task.pc <- task.pc + 1;
            exec_loop t prt q task body on_end true actions
          end
        end
      | action ->
        let outcome = exec_action t prt q action in
        task.pc <- task.pc + 1;
        (match outcome with
        | Apex.Blocked -> ()
        | Apex.Done _ | Apex.Msg _ ->
          (* The process may have stopped itself, been restarted by a
             recovery action, or shut its partition down. *)
          let stopped =
            (match Kernel.state prt.kernel q with
            | Process.Running -> false
            | Process.Dormant | Process.Ready | Process.Waiting -> true)
            || not (Partition.mode_equal prt.mode Partition.Normal)
          in
          if not stopped then
            exec_loop t prt q task body on_end consumed actions)
    end
  end

let run_task_tick t prt q =
  (* A message delivered while the process was blocked is consumed here. *)
  ignore (Intra.take_delivery prt.intra ~process:q);
  ignore (Kernel.take_timed_out prt.kernel q);
  let task = prt.tasks.(q) in
  let script = prt.setup.scripts.(q) in
  exec_loop t prt q task script.Script.body script.Script.on_end false 0
