(* Module runtime state and lifecycle — the bottom layer of the executive
   decomposition. [Runtime] owns the static configuration types, the live
   system record (PMK lane, router, protection, trace, per-partition POS +
   PAL + APEX state), partition lifecycle (mode changes, restarts,
   initialization), Health Monitor error reporting and the queuing-port
   delivery notification. Script interpretation lives in [Interp],
   construction in [Boot], and the clock-tick executive in [System]. *)

open Air_sim
open Air_model
open Air_pos
open Air_ipc
open Air_spatial
open Ident

type intra_object =
  | Semaphore_object of {
      name : string;
      initial : int;
      maximum : int;
      discipline : Intra.discipline;
    }
  | Event_object of { name : string }
  | Blackboard_object of { name : string; max_message_size : int }
  | Buffer_object of {
      name : string;
      depth : int;
      max_message_size : int;
      discipline : Intra.discipline;
    }

type partition_setup = {
  partition : Partition.t;
  scripts : Script.t array;
  policy : Kernel.policy;
  store : Deadline_store.impl;
  autostart : bool array;
  memory_requests : Memory.request list;
  intra_objects : intra_object list;
  error_handler : string option;
}

let default_memory_requests =
  [ { Memory.req_section = Memory.Code; req_size = 16384 };
    { Memory.req_section = Memory.Data; req_size = 16384 };
    { Memory.req_section = Memory.Stack; req_size = 16384 } ]

let partition_setup ?(policy = Kernel.Priority_preemptive)
    ?(store = Deadline_store.Linked_list_impl) ?(autostart = [])
    ?(memory_requests = default_memory_requests) ?(intra_objects = [])
    ?error_handler partition scripts =
  let n = Partition.process_count partition in
  if List.length scripts <> n then
    invalid_arg
      "System.partition_setup: one script per process is required";
  let autostart_flags =
    Array.init n (fun q ->
        let name = partition.Partition.processes.(q).Process.name in
        match List.assoc_opt name autostart with
        | Some flag -> flag
        | None -> true)
  in
  List.iter
    (fun (name, _) ->
      if Option.is_none (Partition.find_process partition name) then
        invalid_arg
          (Printf.sprintf
             "System.partition_setup: autostart names unknown process %S"
             name))
    autostart;
  (match error_handler with
  | Some name when Option.is_none (Partition.find_process partition name) ->
    invalid_arg
      (Printf.sprintf
         "System.partition_setup: error handler names unknown process %S"
         name)
  | Some _ | None -> ());
  { partition;
    scripts = Array.of_list scripts;
    policy;
    store;
    autostart = autostart_flags;
    memory_requests;
    intra_objects;
    error_handler }

type config = {
  partitions : partition_setup list;
  schedules : Schedule.t list;
  initial_schedule : Schedule_id.t option;
  network : Port.network;
  hm_tables : Hm.tables;
  trace_capacity : int option;
  recorder : Air_obs.Span.t option;
  telemetry : Air_obs.Telemetry.config option;
  causal : Air_obs.Causal.t option;
  cores : int option;
  contention : Contention.config option;
}

let config ?initial_schedule ?(network = { Port.ports = []; channels = [] })
    ?(hm_tables = Hm.default_tables) ?trace_capacity ?recorder ?telemetry
    ?causal ?cores ?contention ~partitions ~schedules () =
  (match cores with
  | Some n when n <= 0 ->
    invalid_arg "System.config: core count must be positive"
  | Some _ | None -> ());
  { partitions; schedules; initial_schedule; network; hm_tables;
    trace_capacity; recorder; telemetry; causal; cores; contention }

type task = {
  mutable pc : int;
  mutable compute_left : int;
}

type prt = {
  setup : partition_setup;
  kernel : Kernel.t;
  intra : Intra.t;
  pal : Pal.t;
  env : Apex.env;
  tasks : task array;
  announce_to_pos : now:Time.t -> elapsed:Time.t -> unit;
      (* The native POS clock-tick announcement callback handed to
         [Pal.announce_ticks], built once at boot so the per-tick drive
         path does not allocate a fresh closure. *)
  mutable mode : Partition.mode;
  mutable jitter_left : int;
      (* Active ticks whose PAL clock-tick announcement is still being
         suppressed by an injected clock-jitter fault. *)
  mutable jitter_deferred : int;
      (* Elapsed ticks accumulated while suppressed; announced as one
         catch-up burst when the jitter window ends. *)
}

type t = {
  cfg : config;
  lane : Lane.t;
  hm : Hm.t;
  router : Router.t;
  protection : Protection.t;
  trace : Event.t Trace.t;
  metrics : Air_obs.Metrics.t;
  events : Event.t Air_obs.Event.t;
  telemetry : Air_obs.Telemetry.t option;
  contention : Contention.t option;
  partitions : prt array;
  mutable halt_reason : string option;
}

let now t = Stdlib.max 0 (Lane.ticks t.lane)

let emit t ev =
  Trace.record t.trace (now t) ev;
  Air_obs.Event.record t.events ~time:(now t) ~kind:(Event.label ev) ev

(* Flight recorder: a Health Monitor handler invocation becomes a span on
   the affected track (simulated time does not advance during handling, so
   the span is zero-width — it still shows nesting and ordering). *)
let with_hm_span t ~track ~code name f =
  match t.cfg.recorder with
  | None -> f ()
  | Some r ->
    Air_obs.Span.begin_span r ~now:(now t) ~track
      ~detail:(Format.asprintf "%a" Error.pp_code code)
      name;
    let result = f () in
    Air_obs.Span.end_span r ~now:(now t) ~track;
    result

let prt_of t pid = t.partitions.(Partition_id.index pid)

(* Telemetry: count every Health Monitor invocation against the frame
   being accumulated (module-level errors carry no partition). *)
let note_hm_invocation t ~partition =
  match t.telemetry with
  | None -> ()
  | Some tel -> Air_obs.Telemetry.on_hm_error tel ~partition

(* --- Partition lifecycle ----------------------------------------------- *)

let reset_task task =
  task.pc <- 0;
  task.compute_left <- 0

let set_mode t prt mode =
  if not (Partition.mode_equal prt.mode mode) then begin
    prt.mode <- mode;
    emit t
      (Event.Partition_mode_change
         { partition = prt.setup.partition.Partition.id; mode })
  end

(* START wrapper: the task's program counter must restart from the entry
   point whenever the process (re)starts. *)
let start_process_internal t prt q ~delay =
  reset_task prt.tasks.(q);
  Kernel.start prt.kernel ~now:(now t) ~delay q

let shutdown_partition t prt =
  Kernel.stop_all prt.kernel;
  Intra.reset prt.intra;
  Pal.clear_deadlines prt.pal;
  Array.iter reset_task prt.tasks;
  prt.jitter_left <- 0;
  prt.jitter_deferred <- 0;
  set_mode t prt Partition.Idle

let begin_restart t prt mode =
  Kernel.stop_all prt.kernel;
  (* Cold start wipes the partition's context — including intrapartition
     objects — while a warm start preserves it (ARINC 653: the two modes
     differ in the initial context, paper Sect. 3.1). *)
  (match mode with
  | Partition.Cold_start -> Intra.reset prt.intra
  | Partition.Warm_start | Partition.Normal | Partition.Idle ->
    Intra.clear_mailboxes prt.intra);
  Pal.clear_deadlines prt.pal;
  Array.iter reset_task prt.tasks;
  prt.jitter_left <- 0;
  prt.jitter_deferred <- 0;
  set_mode t prt mode

(* Partition initialization: performed the first time the partition is
   dispatched while in a starting mode — start the autostart processes and
   enter normal mode. *)
let create_intra_objects prt =
  (* Idempotent: after a warm restart the objects already exist and the
     Already_exists outcome is expected. *)
  List.iter
    (fun obj ->
      ignore
        (match obj with
        | Semaphore_object { name; initial; maximum; discipline } ->
          Intra.create_semaphore prt.intra ~name ~initial ~maximum discipline
        | Event_object { name } -> Intra.create_event prt.intra ~name
        | Blackboard_object { name; max_message_size } ->
          Intra.create_blackboard prt.intra ~name ~max_message_size
        | Buffer_object { name; depth; max_message_size; discipline } ->
          Intra.create_buffer prt.intra ~name ~depth ~max_message_size
            discipline))
    prt.setup.intra_objects

let initialize_partition t prt =
  create_intra_objects prt;
  Array.iteri
    (fun q auto ->
      if auto then ignore (start_process_internal t prt q ~delay:Time.zero))
    prt.setup.autostart;
  set_mode t prt Partition.Normal

(* --- Health Monitor reporting ------------------------------------------- *)

let apply_partition_action t prt (action : Error.partition_action) =
  emit t
    (Event.Hm_partition_action
       { partition = prt.setup.partition.Partition.id; action });
  match action with
  | Error.Partition_ignore -> ()
  | Error.Partition_idle -> shutdown_partition t prt
  | Error.Partition_warm_restart -> begin_restart t prt Partition.Warm_start
  | Error.Partition_cold_restart -> begin_restart t prt Partition.Cold_start

let apply_module_action t (action : Error.module_action) =
  emit t (Event.Hm_module_action { action });
  match action with
  | Error.Module_ignore -> ()
  | Error.Module_shutdown ->
    t.halt_reason <- Some "health monitor: module shutdown";
    emit t (Event.Module_halt { reason = "health monitor: module shutdown" })
  | Error.Module_reset ->
    Array.iter (fun prt -> begin_restart t prt Partition.Cold_start)
      t.partitions

let rec apply_process_action t prt q (action : Error.process_action) =
  emit t
    (Event.Hm_process_action
       { process = Partition.process_id prt.setup.partition q; action });
  match action with
  | Error.Ignore_error -> ()
  | Error.Log_then (_, _) ->
    (* The HM resolves thresholds before returning an action; a Log_then
       reaching this point behaves as its ultimate action. *)
    (match action with
    | Error.Log_then (_, inner) -> apply_process_action t prt q inner
    | _ -> ())
  | Error.Restart_process ->
    ignore (Kernel.stop prt.kernel q);
    ignore (start_process_internal t prt q ~delay:Time.zero)
  | Error.Stop_process -> ignore (Kernel.stop prt.kernel q)
  | Error.Stop_partition_of_process -> shutdown_partition t prt
  | Error.Restart_partition_of_process mode -> begin_restart t prt mode

let report_process_error t prt ~process code ~detail =
  let partition = prt.setup.partition.Partition.id in
  emit t
    (Event.Hm_error
       { level = Error.Process_level;
         code;
         partition = Some partition;
         process = Some (Partition.process_id prt.setup.partition process);
         detail });
  note_hm_invocation t ~partition:(Some (Partition_id.index partition));
  with_hm_span t ~track:(Partition_id.index partition) ~code
    "hm.process-error" (fun () ->
      let action = Hm.resolve_process_error t.hm ~partition ~process ~code in
      apply_process_action t prt process action;
      (* Invoke the partition's application error handler, if configured and
         not already active (and unless the error came from the handler
         itself). *)
      match prt.setup.error_handler with
      | Some name -> (
        match Kernel.find_by_name prt.kernel name with
        | Some handler
          when handler <> process
               && Process.state_equal (Kernel.state prt.kernel handler)
                    Process.Dormant ->
          ignore (start_process_internal t prt handler ~delay:Time.zero)
        | Some _ | None -> ())
      | None -> ())

let report_partition_error t prt code ~detail =
  let partition = prt.setup.partition.Partition.id in
  emit t
    (Event.Hm_error
       { level = Error.Partition_level;
         code;
         partition = Some partition;
         process = None;
         detail });
  note_hm_invocation t ~partition:(Some (Partition_id.index partition));
  with_hm_span t ~track:(Partition_id.index partition) ~code
    "hm.partition-error" (fun () ->
      let action = Hm.resolve_partition_error t.hm ~partition ~code in
      apply_partition_action t prt action)

(* --- Shared-resource charging (contention model) ------------------------ *)

(* Every memory/TLB touch and (optionally) compute tick flows through
   here. With no contention model this is a single match on [None]; with
   one, plain integer account updates — the only allocation is the HM
   detail string at the (once-per-window-per-partition) budget blow,
   which escalates as a temporal-degradation error exactly like a
   watchdog breach. *)
let charge_shared_access t prt ~cost =
  match t.contention with
  | None -> ()
  | Some c ->
    let pi = Partition_id.index prt.setup.partition.Partition.id in
    (match t.telemetry with
    | Some tel -> Air_obs.Telemetry.on_mem_demand tel ~partition:pi ~cost
    | None -> ());
    if Contention.charge c ~partition:pi ~cost then
      report_partition_error t prt Error.Temporal_degradation
        ~detail:
          (Printf.sprintf
             "memory-bandwidth budget blown: window demand %d > budget %d"
             (Contention.demand c pi) (Contention.budget c pi))

let charge_compute_tick t prt =
  match t.contention with
  | None -> ()
  | Some c ->
    let cost = (Contention.configuration c).Contention.compute_cost in
    if cost > 0 then charge_shared_access t prt ~cost

let report_module_error t code ~detail =
  emit t
    (Event.Hm_error
       { level = Error.Module_level;
         code;
         partition = None;
         process = None;
         detail });
  note_hm_invocation t ~partition:None;
  with_hm_span t ~track:(-1) ~code "hm.module-error" (fun () ->
      apply_module_action t (Hm.resolve_module_error t.hm ~code))

(* --- Queuing-port delivery notification -------------------------------- *)

(* A queuing message arrived at [ports]; wake the longest-blocked receiver
   of each and hand it the message through its partition's mailbox. *)
let notify_port_delivery t ports =
  List.iter
    (fun port ->
      match Router.port_config t.router port with
      | None -> ()
      | Some cfg ->
        let owner = prt_of t cfg.Port.partition in
        let waiting = function
          | Kernel.On_queuing_port p -> String.equal p port
          | _ -> false
        in
        (match Kernel.waiters_fifo owner.kernel waiting with
        | [] -> ()
        | q :: _ -> (
          match
            Router.receive_queuing ~now:(now t) t.router
              ~caller:cfg.Port.partition ~port
          with
          | Ok (Some msg) ->
            emit t (Event.Port_receive { port; bytes = Bytes.length msg });
            (match t.cfg.recorder with
            | None -> ()
            | Some r ->
              Air_obs.Span.instant r ~now:(now t)
                ~track:(Partition_id.index cfg.Port.partition) ~sub:q
                ~detail:port "ipc.deliver");
            (* Deliver through the partition mailbox, as for buffers. *)
            Intra.deliver owner.intra ~process:q msg;
            Kernel.wake owner.kernel ~now:(now t) q ~timed_out:false
          | Ok None | Error _ -> ())))
    ports
