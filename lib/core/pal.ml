open Air_sim
open Air_model

type t = {
  partition : Ident.Partition_id.t;
  store : Deadline_store.t;
  m_registered : Air_obs.Metrics.counter;
  m_unregistered : Air_obs.Metrics.counter;
  m_violations : Air_obs.Metrics.counter;
  m_store_size : Air_obs.Metrics.gauge;
  recorder : Air_obs.Span.t option;
  telemetry : Air_obs.Telemetry.t option;
  track : int;
}

let create ?metrics ?recorder ?telemetry
    ?(store = Deadline_store.Linked_list_impl) ~partition () =
  let reg =
    match metrics with
    | Some reg -> reg
    | None -> Air_obs.Metrics.create ()
  in
  (* The registered/unregistered/violation counters aggregate across every
     PAL sharing the registry; the store-size gauge is per partition. *)
  { partition;
    store = Deadline_store.create store;
    m_registered = Air_obs.Metrics.counter reg "pal.deadlines_registered";
    m_unregistered = Air_obs.Metrics.counter reg "pal.deadlines_unregistered";
    m_violations = Air_obs.Metrics.counter reg "pal.deadline_violations";
    m_store_size =
      Air_obs.Metrics.gauge reg
        (Printf.sprintf "pal.store_size.p%d"
           (Ident.Partition_id.index partition));
    recorder;
    telemetry;
    track = Ident.Partition_id.index partition }

let partition t = t.partition

let sync_size t =
  Air_obs.Metrics.set t.m_store_size (Deadline_store.size t.store)

let register_deadline t ~process deadline =
  Deadline_store.register t.store ~process deadline;
  Air_obs.Metrics.incr t.m_registered;
  sync_size t

let unregister_deadline t ~process =
  Deadline_store.unregister t.store ~process;
  Air_obs.Metrics.incr t.m_unregistered;
  sync_size t

let earliest_deadline t = Deadline_store.earliest t.store
let min_deadline t = Deadline_store.min_deadline t.store

let deadline_of t ~process = Deadline_store.find t.store ~process

let deadline_count t = Deadline_store.size t.store

let clear_deadlines t =
  Deadline_store.clear t.store;
  sync_size t

type violation = { process : int; deadline : Time.t }

(* Lines 2–8 of Algorithm 3, entered only when the earliest deadline is
   already known to be violated: verify (and pop) deadlines in ascending
   order until one that holds. Kept out of [announce_ticks] so the common
   no-violation tick never pays the closure. *)
let collect_violations t ~now =
  let rec verify acc =
    match Deadline_store.earliest t.store with
    | Some (process, deadline) when Time.(deadline < now) ->
      Deadline_store.remove_earliest t.store;
      Air_obs.Metrics.incr t.m_violations;
      (match t.telemetry with
      | None -> ()
      | Some tel -> Air_obs.Telemetry.on_deadline_miss tel ~partition:t.track);
      (match t.recorder with
      | None -> ()
      | Some r ->
        Air_obs.Span.instant r ~now ~track:t.track ~sub:process
          ~detail:(Printf.sprintf "deadline=%d" deadline)
          "pal.deadline-miss");
      verify ({ process; deadline } :: acc)
    | Some _ | None -> List.rev acc
  in
  let violations = verify [] in
  if violations <> [] then sync_size t;
  violations

let announce_ticks t ~now ~elapsed ~announce_to_pos =
  (* Algorithm 3, line 1: native POS clock tick announcement, invoked with
     the number of ticks elapsed since the partition last held the
     processing resources. *)
  announce_to_pos ~now ~elapsed;
  (* Flight recorder: one supervision instant per announcement. The
     common case (elapsed = 1, the partition kept the processor) records
     with an empty detail to stay allocation-light on the tick path. *)
  (* Per-tick announcements would swamp the recorder; only the surrogate
     catch-up after a preemption gap (elapsed > 1, Algorithm 3 run with a
     multi-tick argument) is worth a mark. *)
  (match t.recorder with
  | Some r when elapsed > 1 ->
    Air_obs.Span.instant r ~now ~track:t.track "pal.catch-up"
      ~detail:(Printf.sprintf "elapsed=%d" elapsed)
  | Some _ | None -> ());
  (match t.telemetry with
  | Some tel when elapsed > 1 ->
    Air_obs.Telemetry.on_catch_up tel ~partition:t.track ~depth:elapsed
  | Some _ | None -> ());
  (* Line 2: O(1) retrieval of the earliest deadline. A deadline d is
     violated when d < now (eq. (24)); the allocation-free min-deadline
     probe keeps the steady-state tick off the option/tuple path. *)
  if Time.(now <= Deadline_store.min_deadline t.store) then []
  else collect_violations t ~now

let violations_now t ~now =
  List.filter_map
    (fun (process, deadline) ->
      if Time.(deadline < now) then Some { process; deadline } else None)
    (Deadline_store.to_sorted_list t.store)

let store_impl t = Deadline_store.impl t.store
