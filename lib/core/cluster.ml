open Air_sim

type link = {
  from_module : int;
  from_port : string;
  to_module : int;
  to_port : string;
}

type bus = { latency : Time.t; bytes_per_tick : int }

let default_bus = { latency = 4; bytes_per_tick = 16 }

type transfer = {
  arrival : Time.t;
  target_module : int;
  target_port : string;
  payload : bytes;
}

type t = {
  modules : System.t array;
  links : link list;
  bus : bus;
  in_flight : transfer Heap.t;
  mutable clock : Time.t;
  mutable bus_busy_until : Time.t;
  mutable transferred : int;
  mutable dropped : int;
}

let create ?(bus = default_bus) ~links modules =
  if modules = [] then invalid_arg "Cluster.create: no modules";
  if bus.latency < 0 || bus.bytes_per_tick <= 0 then
    invalid_arg "Cluster.create: bad bus parameters";
  let n = List.length modules in
  List.iter
    (fun l ->
      if
        l.from_module < 0 || l.from_module >= n || l.to_module < 0
        || l.to_module >= n
      then invalid_arg "Cluster.create: link module index out of range")
    links;
  (* A gateway feeds exactly one link: the drain is destructive, so two
     links sharing a gateway would race for its messages. *)
  let seen = Hashtbl.create 8 in
  List.iter
    (fun l ->
      let key = (l.from_module, l.from_port) in
      if Hashtbl.mem seen key then
        invalid_arg "Cluster.create: gateway port used by more than one link"
      else Hashtbl.add seen key ())
    links;
  { modules = Array.of_list modules;
    links;
    bus;
    in_flight =
      Heap.create ~cmp:(fun a b -> Time.compare a.arrival b.arrival);
    clock = 0;
    bus_busy_until = 0;
    transferred = 0;
    dropped = 0 }

(* Serialize a message onto the bus: it occupies the medium for its
   transmission time after any transfer already under way, and arrives a
   propagation delay later. *)
let send_on_bus t ~target_module ~target_port payload =
  let transmission =
    (Bytes.length payload + t.bus.bytes_per_tick - 1) / t.bus.bytes_per_tick
  in
  let start = Time.max t.clock t.bus_busy_until in
  let done_transmitting = Time.add start transmission in
  t.bus_busy_until <- done_transmitting;
  Heap.push t.in_flight
    { arrival = Time.add done_transmitting t.bus.latency;
      target_module;
      target_port;
      payload }

let drain_gateways t =
  List.iter
    (fun l ->
      let source = t.modules.(l.from_module) in
      let rec pump () =
        match System.drain_remote source ~port:l.from_port with
        | None -> ()
        | Some payload ->
          send_on_bus t ~target_module:l.to_module ~target_port:l.to_port
            payload;
          pump ()
      in
      pump ())
    t.links

(* Next-event query for the bus: the earliest in-flight arrival instant,
   read off the heap top in O(1) without a pop/push round-trip. *)
let next_arrival t = Heap.peek_key t.in_flight ~key:(fun tr -> tr.arrival)

let deliver_arrivals t =
  let rec go () =
    match next_arrival t with
    | Some arrival when Time.(arrival <= t.clock) ->
      (match Heap.pop t.in_flight with
      | None -> assert false
      | Some tr ->
      match
         System.deliver_remote t.modules.(tr.target_module)
           ~port:tr.target_port tr.payload
       with
      | Ok () -> t.transferred <- t.transferred + 1
      | Error _ -> t.dropped <- t.dropped + 1);
      go ()
    | Some _ | None -> ()
  in
  go ()

let step t =
  Array.iter System.step t.modules;
  t.clock <- t.clock + 1;
  drain_gateways t;
  deliver_arrivals t

let run t ~ticks =
  for _ = 1 to ticks do
    step t
  done

let now t = t.clock

let systems t = t.modules

(* --- Fault injection on inter-module links ------------------------------ *)

type bus_fault =
  | Bus_drop
  | Bus_duplicate
  | Bus_delay of Time.t
  | Bus_corrupt of { byte : int }
  | Bus_reorder

let pp_bus_fault ppf = function
  | Bus_drop -> Format.pp_print_string ppf "bus-drop"
  | Bus_duplicate -> Format.pp_print_string ppf "bus-duplicate"
  | Bus_delay d -> Format.fprintf ppf "bus-delay %a" Time.pp d
  | Bus_corrupt { byte } -> Format.fprintf ppf "bus-corrupt byte %d" byte
  | Bus_reorder -> Format.pp_print_string ppf "bus-reorder"

let inject_bus_fault t fault =
  match Heap.pop t.in_flight with
  | None -> false
  | Some tr ->
    (match fault with
    | Bus_reorder -> (
      (* Swap the arrival instants of the two earliest transfers, so the
         second overtakes the first on the medium. *)
      match Heap.pop t.in_flight with
      | None -> Heap.push t.in_flight tr
      | Some next ->
        Heap.push t.in_flight { tr with arrival = next.arrival };
        Heap.push t.in_flight { next with arrival = tr.arrival })
    | Bus_drop ->
      (* The transfer vanishes on the medium; account it as dropped so the
         cluster's conservation story stays balanced. *)
      t.dropped <- t.dropped + 1
    | Bus_duplicate ->
      Heap.push t.in_flight tr;
      Heap.push t.in_flight { tr with payload = Bytes.copy tr.payload }
    | Bus_delay d ->
      Heap.push t.in_flight
        { tr with arrival = Time.add tr.arrival (Time.max 0 d) }
    | Bus_corrupt { byte } ->
      let len = Bytes.length tr.payload in
      if len > 0 then begin
        let i = ((byte mod len) + len) mod len in
        Bytes.set tr.payload i
          (Char.chr (Char.code (Bytes.get tr.payload i) lxor 0xff))
      end;
      Heap.push t.in_flight tr);
    true

type stats = {
  transferred : int;
  dropped : int;
  in_flight : int;
  bus_busy_until : Time.t;
}

let stats (t : t) =
  { transferred = t.transferred;
    dropped = t.dropped;
    in_flight = Heap.length t.in_flight;
    bus_busy_until = t.bus_busy_until }
