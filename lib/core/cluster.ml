open Air_sim

type link = {
  from_module : int;
  from_port : string;
  to_module : int;
  to_port : string;
  link_latency : Time.t option;
}

let link ?latency ~from_module ~from_port ~to_module ~to_port () =
  { from_module; from_port; to_module; to_port; link_latency = latency }

type bus = { latency : Time.t; bytes_per_tick : int }

let default_bus = { latency = 4; bytes_per_tick = 16 }

type transfer = {
  arrival : Time.t;
  seq : int;
      (* Serialization order on the bus. Ties the heap order down among
         equal arrival instants, so pops — and therefore every delivery
         and fault-injection victim — are reproducible from the send
         sequence alone (the parallel fleet engine replays sends in the
         sequential order and relies on this). *)
  target_module : int;
  target_port : string;
  payload : bytes;
  cid : Air_obs.Causal.id;
      (* Correlation id stamped at the originating write; rides the bus so
         the receive in the target module closes the cross-module flow. *)
}

type t = {
  modules : System.t array;
  links : link array;
  bus : bus;
  in_flight : transfer Heap.t;
  mutable next_seq : int;
  mutable clock : Time.t;
  mutable bus_busy_until : Time.t;
  mutable transferred : int;
  mutable dropped : int;
  mutable last_perturbed : Air_obs.Causal.id list;
      (* Flows touched by the most recent [inject_bus_fault] — campaign
         reports annotate outcomes with them. *)
}

let transfer_cmp a b =
  match Time.compare a.arrival b.arrival with
  | 0 -> Stdlib.compare a.seq b.seq
  | c -> c

let create ?(bus = default_bus) ~links modules =
  if modules = [] then invalid_arg "Cluster.create: no modules";
  if bus.latency < 0 || bus.bytes_per_tick <= 0 then
    invalid_arg "Cluster.create: bad bus parameters";
  let n = List.length modules in
  List.iter
    (fun l ->
      if
        l.from_module < 0 || l.from_module >= n || l.to_module < 0
        || l.to_module >= n
      then invalid_arg "Cluster.create: link module index out of range";
      match l.link_latency with
      | Some d when d < 0 ->
        invalid_arg "Cluster.create: negative link latency"
      | Some _ | None -> ())
    links;
  (* A gateway feeds exactly one link: the drain is destructive, so two
     links sharing a gateway would race for its messages. *)
  let seen = Hashtbl.create 8 in
  List.iter
    (fun l ->
      let key = (l.from_module, l.from_port) in
      if Hashtbl.mem seen key then
        invalid_arg "Cluster.create: gateway port used by more than one link"
      else Hashtbl.add seen key ())
    links;
  let modules = Array.of_list modules in
  (* Home each module's flow tracker: the module field of every id it
     stamps from now on is the module's cluster index, making ids (and
     Chrome flow-event ids) unique cluster-wide. *)
  Array.iteri
    (fun i m ->
      match System.causal m with
      | Some c -> Air_obs.Causal.set_module_id c i
      | None -> ())
    modules;
  { modules;
    links = Array.of_list links;
    bus;
    in_flight = Heap.create ~cmp:transfer_cmp;
    next_seq = 0;
    clock = 0;
    bus_busy_until = 0;
    transferred = 0;
    dropped = 0;
    last_perturbed = [] }

let links t = Array.copy t.links
let bus t = t.bus

let effective_latency t l =
  match l.link_latency with Some d -> d | None -> t.bus.latency

(* The shortest propagation delay of any link: a message drained onto the
   bus at clock [c] cannot arrive before [c + lookahead], which is the
   safe horizon the parallel fleet engine advances modules by between
   barriers. Infinite without links (nothing ever crosses). *)
let lookahead t =
  Array.fold_left
    (fun acc l -> Time.min acc (effective_latency t l))
    Time.infinity t.links

let fresh_seq t =
  let s = t.next_seq in
  t.next_seq <- s + 1;
  s

(* Serialize a message onto the bus as of instant [at]: it occupies the
   medium for its transmission time after any transfer already under way,
   and arrives a propagation delay later. *)
let send_on_bus t ~at ~latency ~target_module ~target_port ~cid payload =
  let transmission =
    (Bytes.length payload + t.bus.bytes_per_tick - 1) / t.bus.bytes_per_tick
  in
  let start = Time.max at t.bus_busy_until in
  let done_transmitting = Time.add start transmission in
  t.bus_busy_until <- done_transmitting;
  Heap.push t.in_flight
    { arrival = Time.add done_transmitting latency;
      seq = fresh_seq t;
      target_module;
      target_port;
      payload;
      cid }

let drain_gateway t l =
  let source = t.modules.(l.from_module) in
  let rec pump () =
    match System.drain_remote source ~port:l.from_port with
    | None -> ()
    | Some (payload, cid) ->
      send_on_bus t ~at:t.clock ~latency:(effective_latency t l)
        ~target_module:l.to_module ~target_port:l.to_port ~cid payload;
      pump ()
  in
  pump ()

let drain_gateways t = Array.iter (drain_gateway t) t.links

(* Messages already sitting in a gateway port are committed future bus
   traffic the in-flight heap cannot see yet: anything delivered (or
   fault-redelivered) into a forwarding gateway after this tick's drain
   will be serialized at the next drain — clock+1 at the earliest — and
   arrive no sooner than max(clock+1, bus_busy_until) + the link's
   propagation delay. Fold that bound in so a lookahead built on
   [next_arrival] can never admit a causality violation (transmission
   time only pushes the true arrival later). *)
let pending_gateway_bound t =
  let earliest_start = Time.max (t.clock + 1) t.bus_busy_until in
  Array.fold_left
    (fun acc l ->
      if System.remote_pending t.modules.(l.from_module) ~port:l.from_port > 0
      then Time.min acc (Time.add earliest_start (effective_latency t l))
      else acc)
    Time.infinity t.links

(* Next-event query for the bus: the earliest instant a message can reach
   any module — the heap top in O(1), lower-bounded by traffic still
   queued in gateway ports (see [pending_gateway_bound]). *)
let next_arrival t =
  let bound = pending_gateway_bound t in
  match Heap.peek_key t.in_flight ~key:(fun tr -> tr.arrival) with
  | Some a -> Some (Time.min a bound)
  | None -> if Time.is_infinite bound then None else Some bound

let next_arrival_for t ~dest =
  let heap_min =
    Heap.fold t.in_flight ~init:Time.infinity ~f:(fun acc tr ->
        if tr.target_module = dest then Time.min acc tr.arrival else acc)
  in
  let bound =
    let earliest_start = Time.max (t.clock + 1) t.bus_busy_until in
    Array.fold_left
      (fun acc l ->
        if
          l.to_module = dest
          && System.remote_pending t.modules.(l.from_module)
               ~port:l.from_port
             > 0
        then Time.min acc (Time.add earliest_start (effective_latency t l))
        else acc)
      Time.infinity t.links
  in
  let m = Time.min heap_min bound in
  if Time.is_infinite m then None else Some m

let deliver_transfer t tr =
  match
    System.deliver_remote ~cid:tr.cid t.modules.(tr.target_module)
      ~port:tr.target_port tr.payload
  with
  | Ok () -> t.transferred <- t.transferred + 1
  | Error _ -> t.dropped <- t.dropped + 1

let deliver_arrivals t =
  let rec go () =
    match Heap.peek t.in_flight with
    | Some tr when Time.(tr.arrival <= t.clock) ->
      (match Heap.pop t.in_flight with
      | None -> assert false
      | Some tr -> deliver_transfer t tr);
      go ()
    | Some _ | None -> ()
  in
  go ()

let step t =
  Array.iter System.step t.modules;
  t.clock <- t.clock + 1;
  drain_gateways t;
  deliver_arrivals t

let run t ~ticks =
  for _ = 1 to ticks do
    step t
  done

let now t = t.clock

let systems t = t.modules

(* --- Fleet engine primitives -------------------------------------------- *)

let set_clock t clock = t.clock <- clock

let send_via t ~at ~link ~cid payload =
  let l = t.links.(link) in
  send_on_bus t ~at ~latency:(effective_latency t l)
    ~target_module:l.to_module ~target_port:l.to_port ~cid payload

let take_due t ~upto =
  let rec go acc =
    match Heap.peek t.in_flight with
    | Some tr when Time.(tr.arrival <= upto) ->
      ignore (Heap.pop t.in_flight);
      go (tr :: acc)
    | Some _ | None -> List.rev acc
  in
  go []

let account t ~transferred ~dropped =
  t.transferred <- t.transferred + transferred;
  t.dropped <- t.dropped + dropped

let in_flight_transfers t = Heap.to_sorted_list t.in_flight

let flow_entries t =
  List.concat_map System.flow_entries (Array.to_list t.modules)

(* Merged Chrome trace of the whole cluster: each module's tracks are
   shifted by a common stride so they render as distinct process groups,
   and the per-module causal records merge into one flow-event set —
   the ids already embed the origin module, so a send in module 0 and
   its receive in module 1 share the id and the viewer draws the arrow
   across the process boundary. *)
let chrome_trace t =
  let n = Array.length t.modules in
  let stride =
    1
    + Array.fold_left
        (fun acc m -> Stdlib.max acc (System.partition_count m))
        0 t.modules
  in
  let shift i track = (i * stride) + track in
  let tracks =
    List.concat
      (List.init n (fun i ->
           List.map
             (fun (track, name) ->
               (shift i track, Printf.sprintf "m%d:%s" i name))
             (System.track_names t.modules.(i))))
  in
  let spans =
    List.concat
      (List.init n (fun i ->
           let m = t.modules.(i) in
           let all =
             match System.recorder m with
             | None -> []
             | Some r ->
               Air_obs.Span.spans r
               @ Air_obs.Span.open_spans r ~now:(System.now m)
           in
           List.map
             (fun (s : Air_obs.Span.span) ->
               { s with Air_obs.Span.track = shift i s.Air_obs.Span.track })
             all))
  in
  let events =
    List.concat
      (List.init n (fun i ->
           List.map
             (fun (time, ev) ->
               ( time,
                 Printf.sprintf "m%d:%s" i (Air_model.Event.label ev),
                 Format.asprintf "%a" Air_model.Event.pp ev ))
             (Trace.to_list (System.trace t.modules.(i)))))
  in
  let flows =
    List.concat
      (List.init n (fun i ->
           List.map
             (fun (e : Air_obs.Causal.entry) ->
               { e with
                 Air_obs.Causal.track = shift i e.Air_obs.Causal.track })
             (System.flow_entries t.modules.(i))))
  in
  let meta =
    let tbl = Hashtbl.create 4 in
    Array.iter
      (fun m ->
        List.iter
          (fun (k, v) ->
            Hashtbl.replace tbl k
              (v + Option.value ~default:0 (Hashtbl.find_opt tbl k)))
          (System.export_meta m))
      t.modules;
    List.sort Stdlib.compare
      (Hashtbl.fold (fun k v acc -> (k, v) :: acc) tbl [])
  in
  Air_obs.Trace_export.to_chrome ~tracks ~events ~flows ~meta spans

(* --- Fault injection on inter-module links ------------------------------ *)

type bus_fault =
  | Bus_drop
  | Bus_duplicate
  | Bus_delay of Time.t
  | Bus_corrupt of { byte : int }
  | Bus_reorder

let pp_bus_fault ppf = function
  | Bus_drop -> Format.pp_print_string ppf "bus-drop"
  | Bus_duplicate -> Format.pp_print_string ppf "bus-duplicate"
  | Bus_delay d -> Format.fprintf ppf "bus-delay %a" Time.pp d
  | Bus_corrupt { byte } -> Format.fprintf ppf "bus-corrupt byte %d" byte
  | Bus_reorder -> Format.pp_print_string ppf "bus-reorder"

(* Record the fault against the struck transfer's flow. The record lands
   in the target module's tracker (the module that will miss, re-see or
   mis-read the message); the id itself still names the origin. *)
let note_bus_perturb t tr what =
  if Air_obs.Causal.is_some tr.cid then begin
    System.note_flow_perturb t.modules.(tr.target_module) ~what tr.cid;
    t.last_perturbed <- tr.cid :: t.last_perturbed
  end

let inject_bus_fault t fault =
  t.last_perturbed <- [];
  match Heap.pop t.in_flight with
  | None -> false
  | Some tr ->
    (match fault with
    | Bus_reorder -> (
      (* Swap the arrival instants of the two earliest transfers, so the
         second overtakes the first on the medium. *)
      match Heap.pop t.in_flight with
      | None -> Heap.push t.in_flight tr
      | Some next ->
        note_bus_perturb t tr Air_obs.Causal.Bus_reorder;
        note_bus_perturb t next Air_obs.Causal.Bus_reorder;
        Heap.push t.in_flight { tr with arrival = next.arrival };
        Heap.push t.in_flight { next with arrival = tr.arrival })
    | Bus_drop ->
      (* The transfer vanishes on the medium; account it as dropped so the
         cluster's conservation story stays balanced. *)
      note_bus_perturb t tr Air_obs.Causal.Bus_drop;
      t.dropped <- t.dropped + 1
    | Bus_duplicate ->
      note_bus_perturb t tr Air_obs.Causal.Bus_duplicate;
      Heap.push t.in_flight tr;
      (* The copy keeps the id — the same logical message, twice on the
         wire — but serializes after the original (fresh seq), so heap
         order stays total and runs stay reproducible. *)
      Heap.push t.in_flight
        { tr with payload = Bytes.copy tr.payload; seq = fresh_seq t }
    | Bus_delay d ->
      note_bus_perturb t tr Air_obs.Causal.Bus_delay;
      Heap.push t.in_flight
        { tr with arrival = Time.add tr.arrival (Time.max 0 d) }
    | Bus_corrupt { byte } ->
      note_bus_perturb t tr Air_obs.Causal.Bus_corrupt;
      let len = Bytes.length tr.payload in
      if len > 0 then begin
        let i = ((byte mod len) + len) mod len in
        Bytes.set tr.payload i
          (Char.chr (Char.code (Bytes.get tr.payload i) lxor 0xff))
      end;
      Heap.push t.in_flight tr);
    true

let last_perturbed t = t.last_perturbed

type stats = {
  transferred : int;
  dropped : int;
  in_flight : int;
  bus_busy_until : Time.t;
}

let stats (t : t) =
  { transferred = t.transferred;
    dropped = t.dropped;
    in_flight = Heap.length t.in_flight;
    bus_busy_until = t.bus_busy_until }
