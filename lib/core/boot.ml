(* Module construction — builds the [Runtime.t] record from a [config]:
   shared observability registries, the PMK lane(s), the Health Monitor,
   the interpartition router, the spatial-protection tables and one
   (POS kernel, PAL, APEX environment) triple per partition.

   Multicore: [cores = Some n] (n > 1) shards every scheduling table over
   [n] lanes with {!Air_model.Multicore.shard} and drives them through a
   {!Pmk_mc} behind the [Lane.Multi] constructor; window offsets are
   preserved, so the sharded module is time-faithful to the single-core
   one and mode-based switches are broadcast to every lane. *)

open Air_sim
open Air_model
open Air_pos
open Air_ipc
open Air_spatial
open Ident
open Runtime

let create (cfg : config) =
  if cfg.partitions = [] then
    invalid_arg "System.create: at least one partition is required";
  let partition_count = List.length cfg.partitions in
  List.iteri
    (fun i setup ->
      if Partition_id.index setup.partition.Partition.id <> i then
        invalid_arg
          "System.create: partition identifiers must be dense and in order")
    cfg.partitions;
  (* One registry shared by every component, so the end-of-run snapshot
     covers the whole module in a single pass. *)
  let metrics = Air_obs.Metrics.create () in
  let telemetry =
    Option.map
      (fun c -> Air_obs.Telemetry.create ~config:c ~partition_count ())
      cfg.telemetry
  in
  let lane =
    match cfg.cores with
    | Some n when n > 1 ->
      let tables = List.map (Multicore.shard ~cores:n) cfg.schedules in
      Lane.Multi
        (Pmk_mc.create ~metrics ?recorder:cfg.recorder ?telemetry
           ?initial_schedule:cfg.initial_schedule ~partition_count tables)
    | Some _ | None ->
      Lane.Single
        (Pmk.create ~metrics ?recorder:cfg.recorder ?telemetry
           ?initial_schedule:cfg.initial_schedule ~partition_count
           cfg.schedules)
  in
  (* Shared-resource contention model: lane-local accounts sized to the
     executive's core count; telemetry (if any) switches its interference
     fields on and learns every partition's budget for the first window
     (co-runner pressure starts at zero — no window has closed yet). *)
  let contention =
    Option.map
      (fun c ->
        Contention.create ~partitions:partition_count
          ~lanes:(Lane.core_count lane) c)
      cfg.contention
  in
  (match (contention, telemetry) with
  | Some c, Some tel ->
    Air_obs.Telemetry.enable_interference tel;
    for p = 0 to partition_count - 1 do
      Air_obs.Telemetry.set_interference_window tel ~partition:p
        ~budget:(Contention.budget c p) ~co_pressure:0
    done
  | (Some _ | None), (Some _ | None) -> ());
  let hm = Hm.create ~metrics ~tables:cfg.hm_tables () in
  let router =
    Router.create ~metrics ?recorder:cfg.recorder ?causal:cfg.causal
      cfg.network
  in
  (match telemetry with
  | None -> ()
  | Some tel ->
    Router.set_delivery_observer router (fun ~latency ->
        Air_obs.Telemetry.on_ipc_delivery tel ~latency));
  let maps =
    Memory.allocate
      (List.map
         (fun setup ->
           (setup.partition.Partition.id, setup.memory_requests))
         cfg.partitions)
  in
  let protection =
    Protection.create ~metrics ~contexts:(partition_count + 1) maps
  in
  let trace = Trace.create ?capacity:cfg.trace_capacity () in
  let events = Air_obs.Event.create () in
  (* The system record is knotted with the per-partition closures through
     this forward reference. *)
  let system_ref = ref None in
  let the_system () =
    match !system_ref with
    | Some s -> s
    | None -> failwith "System: used before initialization completed"
  in
  let make_prt setup =
    let pid = setup.partition.Partition.id in
    let pal =
      Pal.create ~metrics ?recorder:cfg.recorder ?telemetry
        ~store:setup.store ~partition:pid ()
    in
    let emit_ev ev =
      let t = the_system () in
      emit t ev
    in
    let hooks =
      { Kernel.register_deadline =
          (fun ~process deadline ->
            Pal.register_deadline pal ~process deadline;
            emit_ev
              (Event.Deadline_registered
                 { process = Partition.process_id setup.partition process;
                   deadline }));
        unregister_deadline =
          (fun ~process ->
            Pal.unregister_deadline pal ~process;
            emit_ev
              (Event.Deadline_unregistered
                 { process = Partition.process_id setup.partition process }));
        on_state_change =
          (fun ~process state ->
            emit_ev
              (Event.Process_state_change
                 { process = Partition.process_id setup.partition process;
                   state })) }
    in
    let kernel =
      Kernel.create ~partition:pid ~policy:setup.policy ~hooks
        setup.partition.Partition.processes
    in
    let intra = Intra.create kernel in
    let n = Partition.process_count setup.partition in
    let tasks = Array.init n (fun _ -> { pc = 0; compute_left = 0 }) in
    let rec prt =
      { setup;
        kernel;
        intra;
        pal;
        announce_to_pos =
          (fun ~now ~elapsed:_ -> Kernel.announce_ticks kernel ~now);
        env =
          { Apex.partition = setup.partition;
            kernel;
            intra;
            router;
            lane;
            now = (fun () -> now (the_system ()));
            emit = emit_ev;
            report_process_error =
              (fun ~process code ~detail ->
                report_process_error (the_system ()) prt ~process code
                  ~detail);
            report_partition_error =
              (fun code ~detail ->
                report_partition_error (the_system ()) prt code ~detail);
            notify_port_delivery =
              (fun ports -> notify_port_delivery (the_system ()) ports);
            mode = (fun () -> prt.mode);
            set_mode =
              (fun mode ->
                let t = the_system () in
                match mode with
                | Partition.Normal -> set_mode t prt Partition.Normal
                | Partition.Idle -> shutdown_partition t prt
                | Partition.Cold_start | Partition.Warm_start ->
                  begin_restart t prt mode) };
        tasks;
        mode = setup.partition.Partition.initial_mode;
        jitter_left = 0;
        jitter_deferred = 0 }
    in
    prt
  in
  let partitions =
    Array.of_list (List.map make_prt cfg.partitions)
  in
  let t =
    { cfg; lane; hm; router; protection; trace; metrics; events; telemetry;
      contention; partitions; halt_reason = None }
  in
  system_ref := Some t;
  t
