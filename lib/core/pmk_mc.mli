(** Multicore Partition Management Kernel — paper future-work item (iv).

    One Partition Scheduler + Dispatcher pair (Algorithms 1 and 2) per
    core, driven off the same global clock tick over a shared set of
    multicore scheduling tables. Mode-based schedule switches are
    broadcast: every core's scheduler stores the same next-schedule
    identifier and, because all lanes of one table share its MTF, the
    switch takes effect on every core at the same boundary.

    Correctness relies on {!Air_model.Multicore.validate}: a partition's
    windows never overlap across cores, so at any tick each partition is
    active on at most one core and the per-partition POS/PAL state is only
    ever driven from one lane. *)

open Air_model
open Ident

type t

val create :
  ?metrics:Air_obs.Metrics.t ->
  ?recorder:Air_obs.Span.t ->
  ?telemetry:Air_obs.Telemetry.t ->
  ?initial_schedule:Schedule_id.t ->
  partition_count:int ->
  Multicore.t list ->
  t
(** Raises [Invalid_argument] if any table fails
    {!Air_model.Multicore.validate}, the tables disagree on core count, or
    identifiers are not dense.

    Observation convention: [metrics] and [recorder] follow lane 0; the
    shared [telemetry] accumulator receives dispatch-jitter samples from
    every lane, lane 0 closes frames at MTF boundaries, and per-lane
    occupancy sampling is disabled — the driving executive records one
    combined busy/idle sample per global tick. *)

val core_count : t -> int
val schedule_count : t -> int
val ticks : t -> Air_sim.Time.t
val current_schedule : t -> Schedule_id.t
val next_schedule : t -> Schedule_id.t

val request_schedule_switch :
  t -> Schedule_id.t -> (unit, Pmk.switch_error) result
(** Broadcast to every core's scheduler. *)

val tick : t -> Pmk.tick_outcome array
(** One outcome per core, in core order. The array and the records it
    holds are reused across calls (see {!Pmk.tick_outcome}) — valid only
    until the next {!tick}. *)

val active_partitions : t -> Partition_id.t option array
(** Who holds each core right now. Returns a shared buffer refilled on
    each call — valid until the next call, stable between ticks. *)

val next_preemption_tick : t -> Air_sim.Time.t
(** Minimum of {!Pmk.next_preemption_tick} over the lanes — the next
    instant at which any core's heir can change. *)

val skip : t -> ticks:Air_sim.Time.t -> unit
(** Batch-advance every lane's clock by [ticks] (see {!Pmk.skip}); the
    lanes stay in lockstep. *)

val core : t -> int -> Pmk.t
(** The underlying single-core scheduler (observation only). *)
