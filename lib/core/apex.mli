(** APEX — the ARINC 653 Application Executive interface (paper Sect. 2.3).

    Each partition sees one APEX instance bound to its own POS kernel,
    intrapartition objects and PAL (the Portable APEX of the paper exploits
    PAL functions so the same service layer works over any POS). System
    partitions additionally reach the mode-based schedule services of
    ARINC 653 Part 2. The APEX coordinates with the AIR Health Monitor upon
    error detection (Sect. 2.3) and keeps the PAL deadline store updated
    through the kernel's hooks (Sect. 5.2).

    Services are expressed against an environment of closures supplied by
    [Air.System], which owns every component. *)

open Air_sim
open Air_model
open Air_pos
open Air_ipc

(** ARINC 653 service return codes (the subset the simulation exercises). *)
type return_code =
  | No_error
  | No_action       (** Request had no effect (e.g. same schedule). *)
  | Not_available   (** Resource empty/full in polling mode. *)
  | Invalid_param
  | Invalid_config
  | Invalid_mode    (** Service not allowed in the caller's present state. *)
  | Timed_out

val pp_return_code : Format.formatter -> return_code -> unit
val return_code_equal : return_code -> return_code -> bool

(** Uniform service outcome for the script interpreter. *)
type outcome =
  | Done of return_code
  | Msg of bytes * return_code  (** Completed with a payload. *)
  | Blocked
      (** The calling process was moved to the waiting state; the service
          completes when the kernel wakes it. *)

val pp_outcome : Format.formatter -> outcome -> unit

type env = {
  partition : Partition.t;
  kernel : Kernel.t;
  intra : Intra.t;
  router : Router.t;
  lane : Lane.t;
      (** The PMK lane(s) driving this module — SET_MODULE_SCHEDULE
          broadcasts the switch request to every lane. *)
  now : unit -> Time.t;
  emit : Event.t -> unit;
  report_process_error : process:int -> Error.code -> detail:string -> unit;
  report_partition_error : Error.code -> detail:string -> unit;
  notify_port_delivery : Ident.Port_name.t list -> unit;
      (** Called after a queuing send so the system layer can wake
          receivers blocked on the destination ports (possibly in other
          partitions). *)
  mode : unit -> Partition.mode;
  set_mode : Partition.mode -> unit;
}

(** {1 Time management} *)

val get_time : env -> Time.t

val timed_wait : env -> process:int -> Time.t -> outcome

val periodic_wait : env -> process:int -> outcome

val replenish : env -> process:int -> Time.t -> outcome
(** New deadline = now + budget (paper Fig. 6); updates the PAL store via
    the kernel hook. *)

(** {1 Process management} *)

val start : env -> process:int -> outcome
val delayed_start : env -> process:int -> delay:Time.t -> outcome
val stop : env -> process:int -> outcome
val stop_self : env -> process:int -> outcome
val suspend_self : env -> process:int -> timeout:Time.t -> outcome
val suspend : env -> process:int -> outcome
val resume : env -> process:int -> outcome
val set_priority : env -> process:int -> priority:int -> outcome
val get_process_status : env -> process:int -> (Process.status, return_code) result

(** {1 Partition management} *)

type partition_status = {
  operating_mode : Partition.mode;
  partition_kind : Partition.kind;
}

val get_partition_status : env -> partition_status
val set_partition_mode : env -> Partition.mode -> outcome

(** {1 Interpartition communication} *)

val write_sampling_message : env -> process:int -> port:string -> bytes -> outcome
val read_sampling_message : env -> process:int -> port:string -> outcome
(** [Msg] outcome carries the payload; validity is reported through the
    return code: [No_error] when fresh, [Invalid_config] never — staleness
    maps to [Timed_out] per the ARINC 653 convention of signalling outdated
    sampling data. An empty slot yields [Not_available]. *)

val send_queuing_message : env -> process:int -> port:string -> bytes -> outcome
val receive_queuing_message :
  env -> process:int -> port:string -> timeout:Time.t -> outcome

(** {1 Intrapartition communication} *)

val wait_semaphore : env -> process:int -> name:string -> timeout:Time.t -> outcome
val signal_semaphore : env -> process:int -> name:string -> outcome
val wait_event : env -> process:int -> name:string -> timeout:Time.t -> outcome
val set_event : env -> process:int -> name:string -> outcome
val reset_event : env -> process:int -> name:string -> outcome
val display_blackboard : env -> process:int -> name:string -> bytes -> outcome
val clear_blackboard : env -> process:int -> name:string -> outcome
val read_blackboard : env -> process:int -> name:string -> timeout:Time.t -> outcome
val send_buffer :
  env -> process:int -> name:string -> bytes -> timeout:Time.t -> outcome
val receive_buffer : env -> process:int -> name:string -> timeout:Time.t -> outcome

(** {1 Health monitoring} *)

val report_application_message : env -> process:int -> string -> outcome
(** Application output — one line in the partition's VITRAL window. *)

val raise_application_error : env -> process:int -> string -> outcome

(** {1 Mode-based schedules (ARINC 653 Part 2, paper Sect. 4.2)} *)

val set_module_schedule : env -> process:int -> Ident.Schedule_id.t -> outcome
(** Only system partitions are authorized; unauthorized requests raise an
    [Illegal_request] process-level error and return [Invalid_mode]. The
    switch becomes effective at the start of the next MTF. *)

type schedule_status = {
  time_of_last_schedule_switch : Time.t;
  current_schedule : Ident.Schedule_id.t;
  next_schedule : Ident.Schedule_id.t;
}

val get_module_schedule_status : env -> schedule_status
val pp_schedule_status : Format.formatter -> schedule_status -> unit
