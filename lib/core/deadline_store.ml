open Air_sim

module type S = sig
  type t

  val name : string
  val create : unit -> t
  val register : t -> process:int -> Time.t -> unit
  val unregister : t -> process:int -> unit
  val earliest : t -> (int * Time.t) option
  val min_deadline : t -> Time.t
  val remove_earliest : t -> unit
  val mem : t -> process:int -> bool
  val find : t -> process:int -> Time.t option
  val size : t -> int
  val clear : t -> unit
  val to_sorted_list : t -> (int * Time.t) list
end

let entry_compare (d1, p1) (d2, p2) =
  match Time.compare d1 d2 with 0 -> Int.compare p1 p2 | c -> c

module Linked_list : S = struct
  type node = {
    process : int;
    mutable deadline : Time.t;
    mutable prev : node option;
    mutable next : node option;
  }

  type t = {
    mutable head : node option;
    index : (int, node) Hashtbl.t;
  }

  let name = "linked-list"

  let create () = { head = None; index = Hashtbl.create 16 }

  let unlink t node =
    (match node.prev with
    | Some p -> p.next <- node.next
    | None -> t.head <- node.next);
    (match node.next with Some n -> n.prev <- node.prev | None -> ());
    node.prev <- None;
    node.next <- None

  (* Insert keeping ascending (deadline, process) order: walk from the head
     — the O(n) cost the paper accepts because it runs in a partition's
     window, not in the clock ISR. *)
  let insert t node =
    let key = (node.deadline, node.process) in
    let rec walk prev = function
      | Some cursor when entry_compare (cursor.deadline, cursor.process) key < 0
        ->
        walk (Some cursor) cursor.next
      | rest -> (
        node.next <- rest;
        node.prev <- prev;
        (match rest with Some r -> r.prev <- Some node | None -> ());
        match prev with
        | Some p -> p.next <- Some node
        | None -> t.head <- Some node)
    in
    walk None t.head

  let register t ~process deadline =
    match Hashtbl.find_opt t.index process with
    | Some node ->
      unlink t node;
      node.deadline <- deadline;
      insert t node
    | None ->
      let node = { process; deadline; prev = None; next = None } in
      Hashtbl.replace t.index process node;
      insert t node

  let unregister t ~process =
    match Hashtbl.find_opt t.index process with
    | Some node ->
      unlink t node;
      Hashtbl.remove t.index process
    | None -> ()

  let earliest t =
    Option.map (fun n -> (n.process, n.deadline)) t.head

  let min_deadline t =
    match t.head with None -> Time.infinity | Some n -> n.deadline

  let remove_earliest t =
    match t.head with
    | Some node ->
      unlink t node;
      Hashtbl.remove t.index node.process
    | None -> ()

  let mem t ~process = Hashtbl.mem t.index process

  let find t ~process =
    Option.map (fun n -> n.deadline) (Hashtbl.find_opt t.index process)

  let size t = Hashtbl.length t.index

  let clear t =
    t.head <- None;
    Hashtbl.reset t.index

  let to_sorted_list t =
    let rec go acc = function
      | None -> List.rev acc
      | Some n -> go ((n.process, n.deadline) :: acc) n.next
    in
    go [] t.head
end

module Avl : S = struct
  (* Keys are (deadline, process) pairs; the index maps a process to its
     current deadline so registration can replace a stale key. *)
  type tree =
    | Leaf
    | Branch of { left : tree; key : Time.t * int; right : tree; height : int }

  type t = { mutable root : tree; index : (int, Time.t) Hashtbl.t }

  let name = "avl-tree"

  let create () = { root = Leaf; index = Hashtbl.create 16 }

  let height = function Leaf -> 0 | Branch b -> b.height

  let branch left key right =
    Branch { left; key; right; height = 1 + Stdlib.max (height left) (height right) }

  let balance_factor = function
    | Leaf -> 0
    | Branch b -> height b.left - height b.right

  let rotate_left = function
    | Branch { left = l; key = k; right = Branch r; _ } ->
      branch (branch l k r.left) r.key r.right
    | t -> t

  let rotate_right = function
    | Branch { left = Branch l; key = k; right = r; _ } ->
      branch l.left l.key (branch l.right k r)
    | t -> t

  let rebalance t =
    match t with
    | Leaf -> Leaf
    | Branch b ->
      let bf = balance_factor t in
      if bf > 1 then
        if balance_factor b.left >= 0 then rotate_right t
        else rotate_right (branch (rotate_left b.left) b.key b.right)
      else if bf < -1 then
        if balance_factor b.right <= 0 then rotate_left t
        else rotate_left (branch b.left b.key (rotate_right b.right))
      else t

  let rec insert key = function
    | Leaf -> branch Leaf key Leaf
    | Branch b ->
      let c = entry_compare key b.key in
      if c < 0 then rebalance (branch (insert key b.left) b.key b.right)
      else if c > 0 then rebalance (branch b.left b.key (insert key b.right))
      else branch b.left key b.right

  let rec min_key = function
    | Leaf -> None
    | Branch { left = Leaf; key; _ } -> Some key
    | Branch { left; _ } -> min_key left

  let rec remove key = function
    | Leaf -> Leaf
    | Branch b ->
      let c = entry_compare key b.key in
      if c < 0 then rebalance (branch (remove key b.left) b.key b.right)
      else if c > 0 then rebalance (branch b.left b.key (remove key b.right))
      else begin
        match (b.left, b.right) with
        | Leaf, r -> r
        | l, Leaf -> l
        | l, r -> (
          match min_key r with
          | Some successor ->
            rebalance (branch l successor (remove successor r))
          | None -> l)
      end

  let register t ~process deadline =
    (match Hashtbl.find_opt t.index process with
    | Some old -> t.root <- remove (old, process) t.root
    | None -> ());
    Hashtbl.replace t.index process deadline;
    t.root <- insert (deadline, process) t.root

  let unregister t ~process =
    match Hashtbl.find_opt t.index process with
    | Some old ->
      t.root <- remove (old, process) t.root;
      Hashtbl.remove t.index process
    | None -> ()

  let earliest t =
    Option.map (fun (d, p) -> (p, d)) (min_key t.root)

  let rec min_deadline_tree = function
    | Leaf -> Time.infinity
    | Branch { left = Leaf; key = (d, _); _ } -> d
    | Branch { left; _ } -> min_deadline_tree left

  let min_deadline t = min_deadline_tree t.root

  let remove_earliest t =
    match min_key t.root with
    | Some ((_, process) as key) ->
      t.root <- remove key t.root;
      Hashtbl.remove t.index process
    | None -> ()

  let mem t ~process = Hashtbl.mem t.index process
  let find t ~process = Hashtbl.find_opt t.index process
  let size t = Hashtbl.length t.index

  let clear t =
    t.root <- Leaf;
    Hashtbl.reset t.index

  let to_sorted_list t =
    let rec go acc = function
      | Leaf -> acc
      | Branch b -> go (((snd b.key, fst b.key)) :: go acc b.right) b.left
    in
    go [] t.root
end

module Pairing : S = struct
  (* Min pairing heap with lazy deletion: superseded or unregistered
     entries stay in the heap and are skipped when they surface. *)
  type heap = Empty | Node of (Time.t * int) * heap list

  type t = {
    mutable heap : heap;
    index : (int, Time.t) Hashtbl.t;
    mutable garbage : int;
  }

  let name = "pairing-heap"

  let create () = { heap = Empty; index = Hashtbl.create 16; garbage = 0 }

  let merge a b =
    match (a, b) with
    | Empty, h | h, Empty -> h
    | Node (ka, ca), Node (kb, cb) ->
      if entry_compare ka kb <= 0 then Node (ka, b :: ca)
      else Node (kb, a :: cb)

  let insert h key = merge h (Node (key, []))

  let rec merge_pairs = function
    | [] -> Empty
    | [ h ] -> h
    | h1 :: h2 :: rest -> merge (merge h1 h2) (merge_pairs rest)

  let delete_min = function
    | Empty -> Empty
    | Node (_, children) -> merge_pairs children

  let is_live t (deadline, process) =
    match Hashtbl.find t.index process with
    | exception Not_found -> false
    | current -> Time.equal current deadline

  (* Pop stale tops until a live entry (or emptiness) surfaces. *)
  let rec settle t =
    match t.heap with
    | Empty -> ()
    | Node (key, _) ->
      if is_live t key then ()
      else begin
        t.heap <- delete_min t.heap;
        t.garbage <- Stdlib.max 0 (t.garbage - 1);
        settle t
      end

  (* Lazy deletion keeps superseded entries in the heap; [settle] only
     drains them when they surface at the top. A register-heavy workload
     that rarely (or never) queries the minimum would otherwise grow the
     heap without bound — the BENCH_5 `deadline/register(pairing-heap,n=8)`
     anomaly, where the heap held hundreds of stale entries per live one.
     Rebuild from the live index once garbage outnumbers live entries 2:1:
     O(live) per O(live) garbage accrued, so registration stays O(1)
     amortized, and the (deadline, process) total order makes the rebuilt
     heap observationally identical. *)
  let compact t =
    t.heap <-
      Hashtbl.fold
        (fun process deadline h -> insert h (deadline, process))
        t.index Empty;
    t.garbage <- 0

  let maybe_compact t =
    if t.garbage > Stdlib.max 16 (2 * Hashtbl.length t.index) then compact t

  let register t ~process deadline =
    (match Hashtbl.find_opt t.index process with
    | Some _ -> t.garbage <- t.garbage + 1
    | None -> ());
    Hashtbl.replace t.index process deadline;
    t.heap <- insert t.heap (deadline, process);
    maybe_compact t

  let unregister t ~process =
    if Hashtbl.mem t.index process then begin
      Hashtbl.remove t.index process;
      t.garbage <- t.garbage + 1;
      maybe_compact t
    end

  let earliest t =
    settle t;
    match t.heap with
    | Empty -> None
    | Node ((deadline, process), _) -> Some (process, deadline)

  let min_deadline t =
    settle t;
    match t.heap with
    | Empty -> Time.infinity
    | Node ((deadline, _), _) -> deadline

  let remove_earliest t =
    settle t;
    match t.heap with
    | Empty -> ()
    | Node ((_, process), _) ->
      Hashtbl.remove t.index process;
      t.heap <- delete_min t.heap

  let mem t ~process = Hashtbl.mem t.index process
  let find t ~process = Hashtbl.find_opt t.index process
  let size t = Hashtbl.length t.index

  let clear t =
    t.heap <- Empty;
    Hashtbl.reset t.index;
    t.garbage <- 0

  let to_sorted_list t =
    Hashtbl.fold (fun process deadline acc -> (process, deadline) :: acc)
      t.index []
    |> List.sort (fun (p1, d1) (p2, d2) -> entry_compare (d1, p1) (d2, p2))
end

type impl = Linked_list_impl | Avl_impl | Pairing_impl

let pp_impl ppf i =
  Format.pp_print_string ppf
    (match i with
    | Linked_list_impl -> Linked_list.name
    | Avl_impl -> Avl.name
    | Pairing_impl -> Pairing.name)

let all_impls = [ Linked_list_impl; Avl_impl; Pairing_impl ]

type t =
  | Store :
      (module S with type t = 'a) * 'a * impl
      -> t

let create impl =
  match impl with
  | Linked_list_impl ->
    Store ((module Linked_list), Linked_list.create (), impl)
  | Avl_impl -> Store ((module Avl), Avl.create (), impl)
  | Pairing_impl -> Store ((module Pairing), Pairing.create (), impl)

let impl (Store (_, _, i)) = i

let register (Store ((module M), s, _)) ~process deadline =
  M.register s ~process deadline

let unregister (Store ((module M), s, _)) ~process = M.unregister s ~process
let earliest (Store ((module M), s, _)) = M.earliest s
let min_deadline (Store ((module M), s, _)) = M.min_deadline s
let remove_earliest (Store ((module M), s, _)) = M.remove_earliest s
let mem (Store ((module M), s, _)) ~process = M.mem s ~process
let find (Store ((module M), s, _)) ~process = M.find s ~process
let size (Store ((module M), s, _)) = M.size s
let clear (Store ((module M), s, _)) = M.clear s
let to_sorted_list (Store ((module M), s, _)) = M.to_sorted_list s
