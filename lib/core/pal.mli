(** AIR POS Adaptation Layer (paper Sect. 2.2 and 5).

    The PAL wraps each partition's operating system. For the timeliness
    features of the paper it plays two roles:

    - it owns the partition's {!Deadline_store}, exposing the private
      register/unregister interfaces the APEX primitives use (Sect. 5.2);
    - its surrogate clock-tick announcement routine (Fig. 7, Algorithm 3)
      first announces the elapsed ticks to the native POS and then verifies
      the earliest deadline(s), reporting violations to health monitoring
      with O(1) retrieval per check. *)

open Air_sim
open Air_model

type t

val create :
  ?metrics:Air_obs.Metrics.t ->
  ?recorder:Air_obs.Span.t ->
  ?telemetry:Air_obs.Telemetry.t ->
  ?store:Deadline_store.impl ->
  partition:Ident.Partition_id.t ->
  unit ->
  t
(** [store] defaults to the paper's sorted linked list. [metrics] receives
    the [pal.*] series — registration/violation counters shared across
    PALs on the same registry, plus a per-partition store-size gauge
    ([pal.store_size.pN]); a private registry is used when omitted.
    [recorder], when given, receives a [pal.catch-up] instant whenever a
    surrogate announcement covers more than one elapsed tick (the wake-up
    after a preemption gap) and a [pal.deadline-miss] instant (with the
    process as sub-lane) per detected violation, on the partition's
    track. [telemetry], when given, receives the same two signals as
    catch-up depth and deadline-miss samples of the partition's frame. *)

val partition : t -> Ident.Partition_id.t

(** {1 Deadline register/unregister interface (APEX-facing)} *)

val register_deadline : t -> process:int -> Time.t -> unit
val unregister_deadline : t -> process:int -> unit
val earliest_deadline : t -> (int * Time.t) option

val min_deadline : t -> Time.t
(** The earliest deadline time alone ({!Air_sim.Time.infinity} when no
    deadline is registered) — allocation-free, used by the executive both
    as the per-tick violation fast path and to bound quiescent spans. *)

val deadline_of : t -> process:int -> Time.t option
val deadline_count : t -> int
val clear_deadlines : t -> unit
(** Partition shutdown or restart. *)

type violation = { process : int; deadline : Time.t }

val announce_ticks :
  t ->
  now:Time.t ->
  elapsed:Time.t ->
  announce_to_pos:(now:Time.t -> elapsed:Time.t -> unit) ->
  violation list
(** Algorithm 3: invoke the native POS clock-tick announcement with the
    elapsed tick count (and the current instant, so the POS callback need
    not close over a clock), then check deadlines in ascending order until
    one that has not been violated (strictly: a deadline d is violated when
    [d < now], eq. (24)); each violated entry is removed from the store and
    returned for health-monitoring reporting, in detection order. The
    no-violation case is O(1) and allocation-free. *)

val violations_now : t -> now:Time.t -> violation list
(** Pure query of the store — the V(t) set of eq. (24) restricted to this
    partition — without removing entries or announcing ticks. *)

val store_impl : t -> Deadline_store.impl
