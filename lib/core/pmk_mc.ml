open Air_model

type t = {
  cores : Pmk.t array;
  mutable outs : Pmk.tick_outcome array;
      (* Reused per-core outcome buffer: [tick] refills it in place after
         the first call, so a steady-state multicore tick allocates
         nothing. Each slot aliases the core's own reused record. *)
  actives : Ident.Partition_id.t option array;
      (* Reused buffer for [active_partitions]; refilled on every call
         (idempotent between ticks). *)
}

let create ?metrics ?recorder ?telemetry ?initial_schedule ~partition_count
    tables =
  if tables = [] then invalid_arg "Pmk_mc.create: no schedules";
  List.iter
    (fun (mc : Multicore.t) ->
      match Multicore.validate mc with
      | [] -> ()
      | d :: _ ->
        invalid_arg
          (Format.asprintf "Pmk_mc.create: invalid table: %a"
             Multicore.pp_diagnostic d))
    tables;
  let core_counts =
    List.map (fun (mc : Multicore.t) -> Multicore.core_count mc) tables
  in
  let cores_n = List.hd core_counts in
  if List.exists (fun n -> n <> cores_n) core_counts then
    invalid_arg "Pmk_mc.create: tables disagree on core count";
  (* Cross-core window allotment, indexed by schedule id then partition:
     a partition's telemetry grant is the sum of its windows over every
     lane, not just the frame owner's. *)
  let allotment =
    let n = List.length tables in
    let by_id = Array.make n [||] in
    List.iter
      (fun (mc : Multicore.t) ->
        let totals = Array.make partition_count 0 in
        Array.iter
          (List.iter (fun (w : Schedule.window) ->
               let p = Ident.Partition_id.index w.partition in
               totals.(p) <- totals.(p) + w.duration))
          mc.Multicore.cores;
        by_id.(Ident.Schedule_id.index mc.Multicore.id) <- totals)
      tables;
    by_id
  in
  let cores =
    (* Observation convention: metrics follow lane 0 (the primary lane);
       the recorder is shared by every lane — each tags its
       partition-window spans with its lane index as the sub-lane, and
       only the frame owner records module-track schedule-switch instants.
       The telemetry accumulator is shared by all lanes for
       dispatch-jitter samples, lane 0 owns frame close, and per-lane
       occupancy is disabled — the executive records one combined
       busy/idle sample per global tick (the tables' no-self-overlap rule
       guarantees at most one busy lane per tick for sharded schedules). *)
    Array.init cores_n (fun core ->
        Pmk.create
          ?metrics:(if core = 0 then metrics else None)
          ?recorder ?telemetry ~frame_owner:(core = 0) ~occupancy:false
          ~lane:core ~window_allotment:allotment ?initial_schedule
          ~partition_count
          (List.map (fun mc -> Multicore.core_view mc ~core) tables))
  in
  { cores; outs = [||]; actives = Array.make cores_n None }

let core_count t = Array.length t.cores
let schedule_count t = Pmk.schedule_count t.cores.(0)
let ticks t = Pmk.ticks t.cores.(0)
let current_schedule t = Pmk.current_schedule t.cores.(0)
let next_schedule t = Pmk.next_schedule t.cores.(0)

let request_schedule_switch t id =
  (* Broadcast; every core holds the same schedule set, so the outcomes
     coincide — report the first core's. *)
  let results =
    Array.map (fun pmk -> Pmk.request_schedule_switch pmk id) t.cores
  in
  results.(0)

let tick t =
  (* First tick allocates the buffer (each slot aliases the core's reused
     outcome record); thereafter Pmk.tick rewrites those records in place
     and the refill below only restores the aliases. *)
  if Array.length t.outs = 0 then t.outs <- Array.map Pmk.tick t.cores
  else
    for i = 0 to Array.length t.cores - 1 do
      t.outs.(i) <- Pmk.tick t.cores.(i)
    done;
  t.outs

let active_partitions t =
  for i = 0 to Array.length t.cores - 1 do
    t.actives.(i) <- Pmk.active_partition t.cores.(i)
  done;
  t.actives

let next_preemption_tick t =
  Array.fold_left
    (fun acc pmk -> Stdlib.min acc (Pmk.next_preemption_tick pmk))
    Air_sim.Time.infinity t.cores

let skip t ~ticks = Array.iter (fun pmk -> Pmk.skip pmk ~ticks) t.cores

let core t i =
  if i < 0 || i >= core_count t then invalid_arg "Pmk_mc.core: out of range";
  t.cores.(i)
