(** VITRAL per-flow IPC view.

    Aggregates the causal hop records of a run ({!Air_obs.Causal.entries},
    or {!Air.Cluster.flow_entries} for a whole cluster) by flow — the
    (origin module, partition, port) triple every correlation id embeds —
    and reports how many messages each flow sent, delivered, forwarded over
    a gateway and had perturbed by faults, plus end-to-end latency
    percentiles over the matched send→receive pairs ({!Air_obs.Quantile}).

    A latency sample is the receive tick minus the send tick of the same
    correlation id; cross-module flows therefore include gateway, bus
    serialization and propagation time. Receives whose send fell out of the
    tracker's bounded ring still count as delivered but yield no sample. *)

type flow = {
  key : Air_obs.Causal.id;  (** Flow key ({!Air_obs.Causal.flow_of}). *)
  origin : string;  (** ["m0.p1.q2"] — {!Air_obs.Causal.flow_to_string}. *)
  sent : int;
  delivered : int;
  forwarded : int;  (** Gateway hops towards a cluster link. *)
  perturbed : int;  (** Fault [Perturb] records on the flow's messages. *)
  latency : Air_obs.Quantile.t;
}

type t = {
  flows : flow list;  (** Sorted by flow key. *)
  unmatched : int;
      (** Receives whose send was not retained (evicted or duplicated) —
          delivered but unsampled. *)
}

val summarize : Air_obs.Causal.entry list -> t

val render :
  ?port_name:(module_id:int -> port:int -> string option) ->
  Air_obs.Causal.entry list ->
  string
(** Text table, one row per flow. [port_name], when given, resolves an
    origin (module, port index) to the declared port name — e.g. via
    {!Air_ipc.Router.port_names} — appended to the packed origin. *)
