(** Text dashboard over telemetry frames.

    Renders a module-level header for the most recent frame (busy/slack
    ticks, jitter and IPC p99, deadline misses, HM invocations) followed by
    one row per partition: utilization percentage, dispatch count,
    worst-case jitter and catch-up depth, misses, HM errors, and a
    sparkline of the partition's utilization across every retained frame
    (one glyph per frame, [·] where the frame's schedule allots the
    partition nothing). *)

val render :
  ?schedules:(int * string) list ->
  ?derived:(string * (Air_obs.Telemetry.partition_frame -> string)) list ->
  partitions:(int * string) list ->
  Air_obs.Telemetry.frame list ->
  string
(** [render ~partitions frames] with [frames] oldest first (as returned by
    [System.telemetry_frames]); [partitions] maps partition index to
    display name (rows render in list order), [schedules] likewise for the
    header's schedule name.

    [derived] grafts extra per-partition columns onto the table: each
    [(header, cell)] pair renders between the builtin counters and the
    trend sparkline, [cell] applied to the partition's latest frame. The
    runner uses it for the interference throttle percentage when a
    contention model is configured. *)
