(** Compact text rendering of flight-recorder spans.

    The companion of {!Air_obs.Trace_export} for terminals: one section per
    track (the AIR module first, then each partition), one line per span in
    chronological order, with nesting shown by indentation. Complete spans
    print their half-open tick interval, instants a single tick, and spans
    still open at the end of the run are marked as such. *)

val render :
  ?tracks:(int * string) list ->
  ?lanes:int ->
  Air_obs.Span.span list ->
  string
(** [render ~tracks spans] — [tracks] maps track numbers to display names
    (as {!Air.System.track_names} produces); unnamed tracks print as
    ["track <n>"]. Spans may be given in any order. [lanes] (default 1) is
    the executive's core count: when above 1 every span line carries a
    [\[lane <n>\]] tag naming the core that recorded it (the span's
    sub-lane); single-core rendering is unchanged. *)
