open Air_obs

(* Per-flow aggregation of causal hop records: group every entry by its
   flow key (origin module/partition/port, sequence cleared), pair each
   Receive with the Send of the same id to get an end-to-end latency
   sample, and summarize the samples with a quantile sketch. *)

type flow = {
  key : Causal.id;
  origin : string;
  sent : int;
  delivered : int;
  forwarded : int;
  perturbed : int;
  latency : Quantile.t;
}

type t = { flows : flow list; unmatched : int }

(* One accumulator per flow key, plus a send-time table keyed by full id
   so a Receive finds its Send even with interleaved flows. *)
type acc = {
  mutable a_sent : int;
  mutable a_delivered : int;
  mutable a_forwarded : int;
  mutable a_perturbed : int;
  a_latency : Quantile.t;
}

let summarize entries =
  let flows = Hashtbl.create 16 in
  let send_times = Hashtbl.create 64 in
  let unmatched = ref 0 in
  let acc_of id =
    let key = Causal.flow_of id in
    match Hashtbl.find_opt flows key with
    | Some a -> a
    | None ->
      let a =
        { a_sent = 0;
          a_delivered = 0;
          a_forwarded = 0;
          a_perturbed = 0;
          a_latency = Quantile.create () }
      in
      Hashtbl.add flows key a;
      a
  in
  List.iter
    (fun (e : Causal.entry) ->
      if Causal.is_some e.id then begin
        let a = acc_of e.id in
        match e.kind with
        | Causal.Send ->
          a.a_sent <- a.a_sent + 1;
          Hashtbl.replace send_times e.id e.time
        | Causal.Forward -> a.a_forwarded <- a.a_forwarded + 1
        | Causal.Perturb _ -> a.a_perturbed <- a.a_perturbed + 1
        | Causal.Receive -> (
          a.a_delivered <- a.a_delivered + 1;
          match Hashtbl.find_opt send_times e.id with
          | Some sent -> Quantile.record a.a_latency (e.time - sent)
          | None ->
            (* The Send fell out of the tracker's bounded ring (or the
               message was re-delivered after a duplicate): delivery still
               counts, the latency sample is lost. *)
            incr unmatched)
      end)
    entries;
  let flows =
    Hashtbl.fold
      (fun key (a : acc) l ->
        { key;
          origin = Causal.flow_to_string key;
          sent = a.a_sent;
          delivered = a.a_delivered;
          forwarded = a.a_forwarded;
          perturbed = a.a_perturbed;
          latency = a.a_latency }
        :: l)
      flows []
  in
  { flows = List.sort (fun a b -> compare a.key b.key) flows;
    unmatched = !unmatched }

let render ?port_name entries =
  let t = summarize entries in
  let buf = Buffer.create 512 in
  let line fmt =
    Printf.ksprintf (fun s -> Buffer.add_string buf (s ^ "\n")) fmt
  in
  if t.flows = [] then line "no stamped flows recorded"
  else begin
    let label f =
      match port_name with
      | None -> f.origin
      | Some name -> (
        match
          name ~module_id:(Causal.module_of f.key)
            ~port:(Causal.port_of f.key)
        with
        | Some n -> Printf.sprintf "%s (%s)" f.origin n
        | None -> f.origin)
    in
    let labeled = List.map (fun f -> (label f, f)) t.flows in
    let w =
      List.fold_left
        (fun w (l, _) -> Stdlib.max w (String.length l))
        4 labeled
    in
    line "%-*s %6s %6s %6s %6s  %s" w "flow" "sent" "recv" "fwd" "pert"
      "end-to-end latency";
    List.iter
      (fun (l, f) ->
        let lat =
          if Quantile.count f.latency = 0 then "-"
          else
            Printf.sprintf "p50=%d p90=%d p99=%d max=%d"
              (Quantile.p50 f.latency) (Quantile.p90 f.latency)
              (Quantile.p99 f.latency)
              (Quantile.max_value f.latency)
        in
        line "%-*s %6d %6d %6d %6d  %s" w l f.sent f.delivered f.forwarded
          f.perturbed lat)
      labeled;
    if t.unmatched > 0 then
      line "(%d receive%s without a retained send — no latency sample)"
        t.unmatched
        (if t.unmatched = 1 then "" else "s")
  end;
  Buffer.contents buf
