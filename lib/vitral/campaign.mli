(** VITRAL campaign summary view.

    Text rendering of a fault-injection campaign report: header (name,
    seed, horizon, reproducibility), one row per injected fault with its
    outcome and detection latency, detection-latency percentiles, and the
    containment verdict. Takes plain data so the renderer does not depend
    on the [Faults] engine — the engine's [Report] module feeds it. *)

type row = {
  at : int;  (** Planned injection tick. *)
  label : string;  (** [Fault.label]. *)
  status : string;  (** "applied" / "absorbed (...)" / "failed (...)". *)
  detected_at : int option;
  latency : int option;
  action : string option;  (** HM action answering the detection. *)
  flows : string list;
      (** Correlation ids of the message flows the fault touched; rendered
          as an indented "flows touched" line under the row when
          non-empty. *)
}

type latency_summary = {
  samples : int;
  p50 : int;
  p90 : int;
  p99 : int;
  max : int;
}

val render :
  name:string ->
  seed:int ->
  horizon:int ->
  mtf:int ->
  findings:string list ->
  ?latency:latency_summary ->
  ?reproducible:bool ->
  row list ->
  string
(** Empty [findings] renders as a CONTAINED verdict; otherwise the findings
    are listed under a BREACHED banner. *)
