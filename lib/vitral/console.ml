open Air_model
open Ident

type t = {
  partition_windows : (Partition_id.t * Window.t) list;
  pmk : Window.t;
  hm : Window.t;
}

let create ?(window_width = 34) ?(window_height = 6) ~partitions () =
  let mk title =
    Window.create ~height:window_height ~title ~width:window_width ()
  in
  { partition_windows =
      List.map (fun (pid, label) -> (pid, mk label)) partitions;
    pmk = mk "AIR PMK";
    hm = mk "AIR Health Monitor" }

let partition_window t pid =
  Option.map snd
    (List.find_opt
       (fun (p, _) -> Partition_id.equal p pid)
       t.partition_windows)

let feed t time ev =
  let stamp w = Window.push_fmt w "[%a] %a" Air_sim.Time.pp time Event.pp ev in
  match ev with
  | Event.Application_output { partition; line } -> (
    match partition_window t partition with
    | Some w -> Window.push_fmt w "[%a] %s" Air_sim.Time.pp time line
    | None -> ())
  | Event.Schedule_switch_request _ | Event.Schedule_switch _
  | Event.Change_action _ | Event.Partition_mode_change _ ->
    stamp t.pmk
  | Event.Deadline_violation _ | Event.Hm_error _ | Event.Hm_process_action _
  | Event.Hm_partition_action _ | Event.Hm_module_action _
  | Event.Module_halt _ | Event.Fault_injected _ ->
    stamp t.hm
  | Event.Context_switch _ | Event.Process_state_change _
  | Event.Process_dispatched _ | Event.Deadline_registered _
  | Event.Deadline_unregistered _ | Event.Port_send _ | Event.Port_receive _
  | Event.Port_overflow _ | Event.Memory_access _ ->
    ()

let feed_trace t trace = Air_sim.Trace.iter (feed t) trace

let render ?(columns = 2) t =
  Window.render_grid ~columns
    (List.map snd t.partition_windows @ [ t.pmk; t.hm ])
