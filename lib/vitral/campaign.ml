type row = {
  at : int;
  label : string;
  status : string;
  detected_at : int option;
  latency : int option;
  action : string option;
  flows : string list;
}

type latency_summary = {
  samples : int;
  p50 : int;
  p90 : int;
  p99 : int;
  max : int;
}

let opt_int = function None -> "-" | Some v -> string_of_int v
let opt_str = function None -> "-" | Some s -> s

let render ~name ~seed ~horizon ~mtf ~findings ?latency ?reproducible rows =
  let buf = Buffer.create 1024 in
  let line fmt = Printf.ksprintf (fun s -> Buffer.add_string buf (s ^ "\n")) fmt in
  line "campaign %s  seed=%d  horizon=%d  mtf=%d" name seed horizon mtf;
  (match reproducible with
  | None -> ()
  | Some true -> line "deterministic: yes (identical rerun fingerprint)"
  | Some false -> line "deterministic: NO — rerun diverged");
  if rows = [] then line "no faults injected"
  else begin
    let label_w =
      List.fold_left (fun w r -> Stdlib.max w (String.length r.label)) 5 rows
    in
    line "%8s  %-*s  %-24s %9s %8s  %s" "tick" label_w "fault" "outcome"
      "detected" "latency" "hm action";
    List.iter
      (fun r ->
        line "%8d  %-*s  %-24s %9s %8s  %s" r.at label_w r.label r.status
          (opt_int r.detected_at) (opt_int r.latency) (opt_str r.action);
        match r.flows with
        | [] -> ()
        | fs -> line "%8s  flows touched: %s" "" (String.concat ", " fs))
      rows
  end;
  (match latency with
  | None | Some { samples = 0; _ } -> ()
  | Some l ->
    line "detection latency: n=%d p50=%d p90=%d p99=%d max=%d" l.samples
      l.p50 l.p90 l.p99 l.max);
  (match findings with
  | [] -> line "containment: CONTAINED"
  | fs ->
    line "containment: BREACHED (%d finding%s)" (List.length fs)
      (if List.length fs = 1 then "" else "s");
    List.iter (fun f -> line "  - %s" f) fs);
  Buffer.contents buf
