open Air_obs

let phase_mark = function
  | Span.Complete -> "■"
  | Span.Instant -> "·"
  | Span.Open -> "▶"

(* Sorted by start (ties: wider span first, so parents precede children),
   with nesting depth recovered from interval containment. *)
let layout spans =
  let ordered =
    List.stable_sort
      (fun (a : Span.span) (b : Span.span) ->
        match compare a.start b.start with
        | 0 -> compare b.stop a.stop
        | c -> c)
      spans
  in
  let rec place stack acc = function
    | [] -> List.rev acc
    | (s : Span.span) :: rest ->
      let stack = List.filter (fun stop -> stop > s.start) stack in
      let depth = List.length stack in
      let stack =
        match s.phase with
        | Span.Complete | Span.Open when s.stop > s.start -> s.stop :: stack
        | _ -> stack
      in
      place stack ((depth, s) :: acc) rest
  in
  place [] [] ordered

let render ?(tracks = []) ?(lanes = 1) spans =
  let by_track = Hashtbl.create 8 in
  List.iter
    (fun (s : Span.span) ->
      let prev =
        Option.value ~default:[] (Hashtbl.find_opt by_track s.track)
      in
      Hashtbl.replace by_track s.track (s :: prev))
    spans;
  let track_ids =
    List.sort compare (Hashtbl.fold (fun k _ acc -> k :: acc) by_track [])
  in
  let name_of track =
    match List.assoc_opt track tracks with
    | Some n -> n
    | None -> Printf.sprintf "track %d" track
  in
  let buf = Buffer.create 1024 in
  List.iter
    (fun track ->
      Buffer.add_string buf
        (Printf.sprintf "── %s ──\n" (name_of track));
      List.iter
        (fun (depth, (s : Span.span)) ->
          let indent = String.make (2 * depth) ' ' in
          let interval =
            match s.phase with
            | Span.Instant -> Printf.sprintf "@%6d        " s.start
            | Span.Complete -> Printf.sprintf "@%6d ‥%6d" s.start s.stop
            | Span.Open -> Printf.sprintf "@%6d ‥  open" s.start
          in
          (* Multicore runs attribute every span to its lane (the span's
             sub-lane is the core index, see [Pmk]); single-core keeps the
             terse form where sub 0 is implicit. *)
          let sub =
            if lanes > 1 then Printf.sprintf " [lane %d]" s.sub
            else if s.sub = 0 then ""
            else Printf.sprintf " #%d" s.sub
          in
          let detail =
            if String.equal s.detail "" then ""
            else "  (" ^ s.detail ^ ")"
          in
          Buffer.add_string buf
            (Printf.sprintf "  %s %s %s%s%s%s\n" interval (phase_mark s.phase)
               indent s.name sub detail))
        (layout (List.rev (Hashtbl.find by_track track))))
    track_ids;
  Buffer.contents buf
