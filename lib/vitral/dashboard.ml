open Air_obs

(* Telemetry dashboard: one text block summarizing the retained frames —
   a module-level header for the latest frame, then one row per partition
   with utilization, a sparkline of utilization over the retained frames,
   and the partition's latest-frame counters. *)

let spark_levels = [| "▁"; "▂"; "▃"; "▄"; "▅"; "▆"; "▇"; "█" |]

(* Map a permille utilization to one of 8 glyph levels: 0‰ prints the
   lowest bar, 1000‰ the full block; partitions absent from a frame's
   schedule (nothing allotted) print a dot. *)
let spark_cell (pf : Telemetry.partition_frame) =
  if pf.Telemetry.pf_allotted <= 0 then "·"
  else begin
    let permille = Telemetry.frame_utilization_permille pf in
    let level = permille * (Array.length spark_levels - 1) / 1000 in
    let level =
      if level < 0 then 0
      else if level >= Array.length spark_levels then
        Array.length spark_levels - 1
      else level
    in
    spark_levels.(level)
  end

let partition_cell (f : Telemetry.frame) i =
  if i < Array.length f.Telemetry.f_partitions then
    Some f.Telemetry.f_partitions.(i)
  else None

let sparkline frames i =
  String.concat ""
    (List.map
       (fun f ->
         match partition_cell f i with
         | Some pf -> spark_cell pf
         | None -> " ")
       frames)

let schedule_name schedules i =
  match List.assoc_opt i schedules with
  | Some name -> name
  | None -> Printf.sprintf "schedule %d" i

let percent_of_permille permille = (permille + 5) / 10

let render ?(schedules = []) ~partitions frames =
  let b = Buffer.create 1024 in
  (match List.rev frames with
  | [] -> Buffer.add_string b "telemetry: no frames closed yet\n"
  | last :: _ ->
    let f = last in
    Buffer.add_string b
      (Printf.sprintf
         "telemetry: frame %d [%d‥%d) under %s · %d frame%s retained\n"
         f.Telemetry.f_index f.Telemetry.f_start f.Telemetry.f_stop
         (schedule_name schedules f.Telemetry.f_schedule)
         (List.length frames)
         (if List.length frames = 1 then "" else "s"));
    Buffer.add_string b
      (Printf.sprintf
         "  busy %d · slack %d · jitter p99 %d · ipc p99 %d (n=%d) · \
          misses %d · hm %d\n"
         f.Telemetry.f_busy f.Telemetry.f_slack f.Telemetry.f_jitter_p99
         f.Telemetry.f_ipc_p99 f.Telemetry.f_ipc_count
         f.Telemetry.f_deadline_misses f.Telemetry.f_hm_errors);
    Buffer.add_string b
      (Printf.sprintf "  %-16s %5s  %-8s %6s %5s %5s %4s  %s\n" "partition"
         "util%" "disp" "jit.max" "cu.max" "miss" "hm" "trend");
    List.iter
      (fun (i, name) ->
        match partition_cell f i with
        | None -> ()
        | Some pf ->
          Buffer.add_string b
            (Printf.sprintf "  %-16s %4d%%  %-8d %6d %5d %5d %4d  %s\n" name
               (percent_of_permille (Telemetry.frame_utilization_permille pf))
               pf.Telemetry.pf_dispatches pf.Telemetry.pf_jitter_max
               pf.Telemetry.pf_catch_up_max pf.Telemetry.pf_deadline_misses
               pf.Telemetry.pf_hm_errors (sparkline frames i)))
      partitions);
  Buffer.contents b
