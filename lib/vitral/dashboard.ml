open Air_obs

(* Telemetry dashboard: one text block summarizing the retained frames —
   a module-level header for the latest frame, then one row per partition
   with utilization, a sparkline of utilization over the retained frames,
   and the partition's latest-frame counters. *)

let spark_levels = [| "▁"; "▂"; "▃"; "▄"; "▅"; "▆"; "▇"; "█" |]

(* Map a permille utilization to one of 8 glyph levels: 0‰ prints the
   lowest bar, 1000‰ the full block; partitions absent from a frame's
   schedule (nothing allotted) print a dot. *)
let spark_cell (pf : Telemetry.partition_frame) =
  if pf.Telemetry.pf_allotted <= 0 then "·"
  else begin
    let permille = Telemetry.frame_utilization_permille pf in
    let level = permille * (Array.length spark_levels - 1) / 1000 in
    let level =
      if level < 0 then 0
      else if level >= Array.length spark_levels then
        Array.length spark_levels - 1
      else level
    in
    spark_levels.(level)
  end

let partition_cell (f : Telemetry.frame) i =
  if i < Array.length f.Telemetry.f_partitions then
    Some f.Telemetry.f_partitions.(i)
  else None

let sparkline frames i =
  String.concat ""
    (List.map
       (fun f ->
         match partition_cell f i with
         | Some pf -> spark_cell pf
         | None -> " ")
       frames)

let schedule_name schedules i =
  match List.assoc_opt i schedules with
  | Some name -> name
  | None -> Printf.sprintf "schedule %d" i

let percent_of_permille permille = (permille + 5) / 10

(* Derived columns are caller-supplied (header, cell) pairs rendered
   between the builtin counters and the trend sparkline; each column is as
   wide as its header (at least 6), so callers can graft domain-specific
   readouts (e.g. interference throttle %) without the dashboard knowing
   about them. *)
let derived_width name = Stdlib.max 6 (String.length name)

let derived_headers derived =
  String.concat ""
    (List.map
       (fun (name, _) -> Printf.sprintf " %*s" (derived_width name) name)
       derived)

let derived_cells derived pf =
  String.concat ""
    (List.map
       (fun (name, cell) ->
         Printf.sprintf " %*s" (derived_width name) (cell pf))
       derived)

let render ?(schedules = []) ?(derived = []) ~partitions frames =
  let b = Buffer.create 1024 in
  (match List.rev frames with
  | [] -> Buffer.add_string b "telemetry: no frames closed yet\n"
  | last :: _ ->
    let f = last in
    Buffer.add_string b
      (Printf.sprintf
         "telemetry: frame %d [%d‥%d) under %s · %d frame%s retained\n"
         f.Telemetry.f_index f.Telemetry.f_start f.Telemetry.f_stop
         (schedule_name schedules f.Telemetry.f_schedule)
         (List.length frames)
         (if List.length frames = 1 then "" else "s"));
    Buffer.add_string b
      (Printf.sprintf
         "  busy %d · slack %d · jitter p99 %d · ipc p99 %d (n=%d) · \
          misses %d · hm %d\n"
         f.Telemetry.f_busy f.Telemetry.f_slack f.Telemetry.f_jitter_p99
         f.Telemetry.f_ipc_p99 f.Telemetry.f_ipc_count
         f.Telemetry.f_deadline_misses f.Telemetry.f_hm_errors);
    Buffer.add_string b
      (Printf.sprintf "  %-16s %5s  %-8s %6s %5s %5s %4s%s  %s\n" "partition"
         "util%" "disp" "jit.max" "cu.max" "miss" "hm"
         (derived_headers derived) "trend");
    List.iter
      (fun (i, name) ->
        match partition_cell f i with
        | None -> ()
        | Some pf ->
          Buffer.add_string b
            (Printf.sprintf "  %-16s %4d%%  %-8d %6d %5d %5d %4d%s  %s\n" name
               (percent_of_permille (Telemetry.frame_utilization_permille pf))
               pf.Telemetry.pf_dispatches pf.Telemetry.pf_jitter_max
               pf.Telemetry.pf_catch_up_max pf.Telemetry.pf_deadline_misses
               pf.Telemetry.pf_hm_errors (derived_cells derived pf)
               (sparkline frames i)))
      partitions);
  Buffer.contents b
