(** A small fully-associative translation lookaside buffer.

    Caches page-granular results of {!Mmu.translate} walks, tagged by MMU
    context (so a partition switch does not require a flush, as on the
    LEON3). Replacement is FIFO. Hit/miss/flush counters feed the E10
    experiment and are recorded on an {!Air_obs.Metrics} registry as the
    [tlb.*] series. *)

type t

val create : ?metrics:Air_obs.Metrics.t -> ?capacity:int -> unit -> t
(** [capacity] defaults to 32 entries; must be positive. [metrics] is the
    registry receiving the [tlb.hits]/[tlb.misses]/[tlb.flushes] counters;
    a private registry is used when omitted. *)

type entry = {
  context : int;
  vpn : int;  (** Virtual page number: address / page size. *)
  perms : Memory.perms;
  min_level : Memory.exec_level;
}

val lookup : t -> context:int -> vpn:int -> entry option

val insert : t -> entry -> unit
(** Replaces any existing entry for the same (context, vpn). *)

val flush : t -> unit

val flush_context : t -> context:int -> unit
(** Invalidate the entries of one context (used when a partition is
    restarted and its mappings rebuilt). *)

type stats = { hits : int; misses : int; flushes : int }
(** Legacy aggregate view; a thin shim reading the registry counters. *)

val stats : t -> stats

(** [reset_stats] zeroes the [tlb.*] counters (test support only —
    counters are otherwise monotonic). *)
val reset_stats : t -> unit
val pp_stats : Format.formatter -> stats -> unit
