(** The runtime spatial-partitioning unit: MMU + TLB + per-partition maps.

    This is the component the PMK consults on every memory access of a
    partition application (paper Fig. 3, lowest layer): the high-level
    descriptors are installed once at initialization, accesses go through
    the TLB and fall back to the table walk, and denials surface as faults
    that the Health Monitor turns into partition-level
    [Memory_violation] errors. *)

type t

val create :
  ?metrics:Air_obs.Metrics.t ->
  ?tlb_capacity:int ->
  ?contexts:int ->
  Memory.map list ->
  t
(** Builds page tables for every map; partition [P_m] uses MMU context
    [index(P_m) + 1] (context 0 belongs to the PMK). Raises
    [Invalid_argument] if {!Memory.validate_maps} reports overlaps.
    [metrics] is shared by the embedded MMU and TLB ([mmu.*]/[tlb.*]
    series); a private registry is used when omitted. *)

val access :
  t ->
  partition:Air_model.Ident.Partition_id.t ->
  level:Memory.exec_level ->
  access:Mmu.access_kind ->
  int ->
  (unit, Mmu.fault) result
(** Checks one access by a partition. TLB hit short-circuits the walk; a
    miss walks the tables and fills the TLB on success. *)

val access_costed :
  t ->
  partition:Air_model.Ident.Partition_id.t ->
  level:Memory.exec_level ->
  access:Mmu.access_kind ->
  int ->
  (unit, Mmu.fault) result * int
(** As {!access}, additionally reporting the access cost in bandwidth
    units for the contention model: 1 for a TLB hit, [1 + walk depth]
    (2–4) for a miss. Denied accesses are costed like the walk that
    denied them. *)

val map_of : t -> Air_model.Ident.Partition_id.t -> Memory.map option

val remap_partition : t -> Memory.map -> unit
(** Replace a partition's mappings (partition cold restart); flushes the
    partition's TLB entries. *)

val tlb_stats : t -> Tlb.stats

val mmu : t -> Mmu.t
