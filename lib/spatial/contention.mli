(** Shared-resource contention model: per-partition memory-bandwidth
    budgets per MTF window, a decayed cache-pressure score and a slowdown
    curve.

    The paper's spatial partitioning stops at the MMU; this module extends
    it to the shared hardware behind the MMU (memory bus, caches), in the
    spirit of robust-resource-partitioning ARINC 653 work. Every memory or
    TLB touch of a partition is charged to a per-window account (the
    per-access cost comes from {!Protection.access_costed}); compute ticks
    may charge a configurable cost too. Accounts are kept per partition
    and per lane and reset at every MTF boundary, so no budget or slowdown
    debt leaks across windows or schedule switches.

    Two things happen when accounts overflow:

    - A partition whose own window demand first exceeds its budget has
      {e blown} its budget: {!charge} reports it exactly once per window,
      and the executive escalates through the Health Monitor as a
      [temporal-degradation] error.
    - When partitions co-run on at least two different lanes within the
      window and the {e aggregate} demand exceeds the sum of all budgets,
      every further charge accrues {e stall ticks} on the charging
      partition, per the slowdown curve. The executive consumes one stall
      tick in place of each script tick, so interference manifests as
      extra consumed window time — deterministically, in integers, with
      no observable effect when the model is disabled or idle.

    All state is plain integers mutated in place; {!charge} and the stall
    accessors allocate nothing, keeping the per-tick hot path
    allocation-free. *)

type config = {
  default_budget : int;
      (** Bandwidth units per MTF window granted to every partition not
          listed in [budgets]. Must be positive. *)
  budgets : (int * int) list;
      (** Per-partition overrides: [(partition index, budget)]. *)
  curve : (int * int) list;
      (** Slowdown curve: [(overage permille threshold, stall ticks per
          access)], thresholds strictly increasing, steps non-negative.
          A charge made while the aggregate account is over budget by
          [o] permille accrues the step of the highest threshold
          [<= o]; an empty curve models contention without slowdown. *)
  compute_cost : int;
      (** Bandwidth units charged per consumed compute tick (cache
          pressure of a busy core); 0 makes computation free. *)
  pressure_decay_permille : int;
      (** Window-to-window decay of the cache-pressure score:
          [pressure' = pressure * decay / 1000 + window demand].
          0 forgets instantly, 1000 never forgets. *)
}

val config :
  ?budgets:(int * int) list ->
  ?curve:(int * int) list ->
  ?compute_cost:int ->
  ?pressure_decay_permille:int ->
  default_budget:int ->
  unit ->
  config
(** Validating constructor. [curve] defaults to [[(0, 1)]] — one stall
    tick per access as soon as the aggregate budget is exceeded;
    [compute_cost] defaults to 0, [pressure_decay_permille] to 500.
    Raises [Invalid_argument] on non-positive budgets, negative or
    non-increasing curve thresholds, negative steps, or a decay outside
    [0, 1000]. *)

type t

val create : partitions:int -> lanes:int -> config -> t
(** Fresh accounts, all zero, window open at tick 0. *)

val configuration : t -> config
val budget : t -> int -> int
(** Resolved per-window budget of a partition. *)

val aggregate_budget : t -> int
val max_stall_per_access : t -> int
(** Largest step of the slowdown curve — the containment oracle's bound:
    a partition's throttled ticks per window never exceed
    [max_stall_per_access * its charged accesses]. *)

val set_lane : t -> int -> unit
(** Selects the lane-local account subsequent {!charge}s debit. The
    executive sets it before driving each core's partition. *)

val charge : t -> partition:int -> cost:int -> bool
(** Charges [cost] units to the partition's window account, the selected
    lane's account and the aggregate account, then applies the slowdown
    curve: if partitions have co-run on [>= 2] lanes this window and the
    aggregate account is over the aggregate budget, the charging
    partition accrues stall ticks. Returns [true] exactly once per
    window per partition — at the charge that first pushes its own
    account over its budget (the executive's cue to escalate through the
    Health Monitor). *)

val stall_pending : t -> partition:int -> bool
val consume_stall : t -> partition:int -> unit
(** Consumes one owed stall tick (the executive calls it in place of a
    script tick) and counts it as throttled. *)

val rollover : t -> now:int -> unit
(** MTF-boundary window rollover: folds the closed window's demand into
    the decayed pressure scores, then zeroes every per-window account —
    demand, lane demand, stall debt, throttled counts and blown flags.
    Idempotent for a given [now]. *)

val window_start : t -> int

(* Observation (telemetry, dashboard, oracles). *)

val demand : t -> int -> int
(** Bandwidth units charged by the partition this window. *)

val lane_demand : t -> int -> int
(** Bandwidth units charged on the lane this window. *)

val total_demand : t -> int
val busy_lanes : t -> int
(** Lanes with nonzero demand this window ([>= 2] arms the curve). *)

val throttled : t -> int -> int
(** Stall ticks consumed by the partition this window. *)

val stall_debt : t -> int -> int
(** Stall ticks accrued but not yet consumed. *)

val pressure : t -> int -> int
(** Decayed cache-pressure score of the partition. *)

val co_runner_pressure : t -> int -> int
(** Sum of every {e other} partition's pressure score — the interference
    a partition sees from its co-runners. *)

val blown : t -> int -> bool
(** Whether the partition has blown its budget this window. *)
