(** Simulated three-level page-based MMU.

    Models the SPARC V8 reference MMU of the Gaisler LEON3 (paper Sect. 2.1):
    per-context page tables with a three-level walk — level-1 entries cover
    16 MiB, level-2 entries 256 KiB, level-3 entries 4 KiB pages. Mappings
    are identity (the simulation has no physical/virtual distinction); what
    the MMU enforces is {e protection}: each PTE carries the access
    permissions and the least privileged execution level allowed, derived
    from the partition's {!Memory.region} descriptors. *)

type access_kind = Read | Write | Execute

val pp_access_kind : Format.formatter -> access_kind -> unit

type fault_reason =
  | Unmapped     (** No PTE covers the address in this context. *)
  | Privilege    (** Execution level below the region's [min_level]. *)
  | Permission   (** Access kind not granted by the region's perms. *)

type fault = {
  context : int;
  address : int;
  access : access_kind;
  level : Memory.exec_level;
  reason : fault_reason;
}

val pp_fault : Format.formatter -> fault -> unit

type t

val create : ?metrics:Air_obs.Metrics.t -> ?contexts:int -> unit -> t
(** [contexts] defaults to 16 — one per partition plus the PMK context 0.
    [metrics] receives the [mmu.walks] / [mmu.faults(.reason)] counters; a
    private registry is used when omitted. *)

val contexts : t -> int

val map_region : t -> context:int -> Memory.region -> unit
(** Installs page-table entries for the region, using the largest entry size
    alignment permits (16 MiB / 256 KiB / 4 KiB). Raises [Invalid_argument]
    if any page of the region is already mapped in this context, or the
    context is out of range. *)

val map_partition : t -> context:int -> Memory.map -> unit

val unmap_context : t -> context:int -> unit

val translate :
  t ->
  context:int ->
  level:Memory.exec_level ->
  access:access_kind ->
  int ->
  (Memory.perms * Memory.exec_level, fault) result
(** Full page-table walk. On success returns the granting PTE's permissions
    and minimum level (the data a TLB caches). *)

val translate_costed :
  t ->
  context:int ->
  level:Memory.exec_level ->
  access:access_kind ->
  int ->
  (Memory.perms * Memory.exec_level, fault) result * int
(** As {!translate}, additionally reporting the walk depth: the number of
    table levels consulted (1 for a 16 MiB L1 hit, up to 3 for a 4 KiB
    page), the per-access cost unit the contention model charges. *)

val entry_count : t -> context:int -> int
(** Number of valid PTEs installed for the context (any level) — exposed for
    tests and for the E10 experiment's table-size report. *)

val acc_encoding : Memory.perms -> Memory.exec_level -> int
(** The SPARC V8 ACC field value (0–7) that most closely encodes the given
    permissions/privilege pair; informational (the walk checks the exact
    descriptor, which the 3-bit field cannot always express). *)
