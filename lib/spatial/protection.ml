type t = {
  mmu : Mmu.t;
  tlb : Tlb.t;
  mutable maps : Memory.map list;
}

let context_of pid = Air_model.Ident.Partition_id.index pid + 1

let create ?metrics ?tlb_capacity ?(contexts = 16) maps =
  (match Memory.validate_maps maps with
  | [] -> ()
  | diag :: _ -> invalid_arg ("Protection.create: " ^ diag));
  let reg =
    match metrics with
    | Some reg -> reg
    | None -> Air_obs.Metrics.create ()
  in
  let mmu = Mmu.create ~metrics:reg ~contexts () in
  List.iter
    (fun (m : Memory.map) ->
      Mmu.map_partition mmu ~context:(context_of m.Memory.partition) m)
    maps;
  { mmu; tlb = Tlb.create ~metrics:reg ?capacity:tlb_capacity (); maps }

(* Per-access cost unit for the contention model: a TLB hit costs 1, a
   miss costs 1 plus the number of page-table levels the MMU walk
   consulted (so 2–4). Faulting accesses are charged too — a denied
   access still occupied the walk hardware. *)
let access_costed t ~partition ~level ~access addr =
  let context = context_of partition in
  let vpn = addr / Memory.page_size in
  let check perms min_level =
    let rank = function
      | Memory.Application -> 0
      | Memory.Pos -> 1
      | Memory.Pmk -> 2
    in
    let permits (p : Memory.perms) = function
      | Mmu.Read -> p.read
      | Mmu.Write -> p.write
      | Mmu.Execute -> p.execute
    in
    if rank level < rank min_level then
      Error
        { Mmu.context; address = addr; access; level;
          reason = Mmu.Privilege }
    else if not (permits perms access) then
      Error
        { Mmu.context; address = addr; access; level;
          reason = Mmu.Permission }
    else Ok ()
  in
  match Tlb.lookup t.tlb ~context ~vpn with
  | Some e -> (check e.Tlb.perms e.Tlb.min_level, 1)
  | None -> (
    match Mmu.translate_costed t.mmu ~context ~level ~access addr with
    | Ok (perms, min_level), depth ->
      Tlb.insert t.tlb { Tlb.context; vpn; perms; min_level };
      (Ok (), 1 + depth)
    | Error f, depth ->
      (* Cache successful translations only; faults always re-walk, as on
         the LEON3 (no negative caching). *)
      (Error f, 1 + depth))

let access t ~partition ~level ~access:kind addr =
  fst (access_costed t ~partition ~level ~access:kind addr)

let map_of t pid =
  List.find_opt
    (fun (m : Memory.map) -> Air_model.Ident.Partition_id.equal m.Memory.partition pid)
    t.maps

let remap_partition t (m : Memory.map) =
  let context = context_of m.Memory.partition in
  Mmu.unmap_context t.mmu ~context;
  Tlb.flush_context t.tlb ~context;
  Mmu.map_partition t.mmu ~context m;
  t.maps <-
    m
    :: List.filter
         (fun (m' : Memory.map) ->
           not
             (Air_model.Ident.Partition_id.equal m'.Memory.partition m.Memory.partition))
         t.maps

let tlb_stats t = Tlb.stats t.tlb

let mmu t = t.mmu
