open Air_obs

type entry = {
  context : int;
  vpn : int;
  perms : Memory.perms;
  min_level : Memory.exec_level;
}

type t = {
  slots : entry option array;
  mutable next : int;  (* FIFO replacement cursor *)
  hits : Metrics.counter;
  misses : Metrics.counter;
  flushes : Metrics.counter;
}

let create ?metrics ?(capacity = 32) () =
  if capacity <= 0 then invalid_arg "Tlb.create: capacity must be positive";
  let reg =
    match metrics with Some reg -> reg | None -> Metrics.create ()
  in
  { slots = Array.make capacity None;
    next = 0;
    hits = Metrics.counter reg "tlb.hits";
    misses = Metrics.counter reg "tlb.misses";
    flushes = Metrics.counter reg "tlb.flushes" }

let lookup t ~context ~vpn =
  let n = Array.length t.slots in
  let rec go i =
    if i >= n then begin
      Metrics.incr t.misses;
      None
    end
    else
      match t.slots.(i) with
      | Some e when e.context = context && e.vpn = vpn ->
        Metrics.incr t.hits;
        Some e
      | Some _ | None -> go (i + 1)
  in
  go 0

let insert t entry =
  let n = Array.length t.slots in
  let rec existing i =
    if i >= n then None
    else
      match t.slots.(i) with
      | Some e when e.context = entry.context && e.vpn = entry.vpn -> Some i
      | Some _ | None -> existing (i + 1)
  in
  match existing 0 with
  | Some i -> t.slots.(i) <- Some entry
  | None ->
    t.slots.(t.next) <- Some entry;
    t.next <- (t.next + 1) mod n

let flush t =
  Array.fill t.slots 0 (Array.length t.slots) None;
  Metrics.incr t.flushes

let flush_context t ~context =
  Array.iteri
    (fun i -> function
      | Some e when e.context = context -> t.slots.(i) <- None
      | Some _ | None -> ())
    t.slots;
  Metrics.incr t.flushes

(* Legacy stats interface, kept as a thin shim over the metrics registry
   series (tlb.hits / tlb.misses / tlb.flushes). *)
type stats = { hits : int; misses : int; flushes : int }

let stats (t : t) =
  { hits = Metrics.value t.hits;
    misses = Metrics.value t.misses;
    flushes = Metrics.value t.flushes }

let reset_stats (t : t) =
  Metrics.reset_counter t.hits;
  Metrics.reset_counter t.misses;
  Metrics.reset_counter t.flushes

let pp_stats ppf s =
  Format.fprintf ppf "hits=%d misses=%d flushes=%d" s.hits s.misses s.flushes
