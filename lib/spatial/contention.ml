(* Shared-resource contention model — see the interface for the model
   description. Everything is integer arithmetic over preallocated
   arrays; [charge]/[consume_stall] are the hot path and allocate
   nothing. *)

type config = {
  default_budget : int;
  budgets : (int * int) list;
  curve : (int * int) list;
  compute_cost : int;
  pressure_decay_permille : int;
}

let validate (c : config) =
  if c.default_budget <= 0 then
    invalid_arg "Contention.config: default budget must be positive";
  List.iter
    (fun (p, b) ->
      if p < 0 then invalid_arg "Contention.config: negative partition index";
      if b <= 0 then
        invalid_arg "Contention.config: partition budget must be positive")
    c.budgets;
  if c.compute_cost < 0 then
    invalid_arg "Contention.config: compute cost must be non-negative";
  if c.pressure_decay_permille < 0 || c.pressure_decay_permille > 1000 then
    invalid_arg "Contention.config: pressure decay must be within 0..1000";
  ignore
    (List.fold_left
       (fun prev (threshold, step) ->
         if threshold < 0 then
           invalid_arg "Contention.config: negative curve threshold";
         if step < 0 then invalid_arg "Contention.config: negative curve step";
         (match prev with
         | Some p when threshold <= p ->
           invalid_arg
             "Contention.config: curve thresholds must be strictly increasing"
         | Some _ | None -> ());
         Some threshold)
       None c.curve)

let config ?(budgets = []) ?(curve = [ (0, 1) ]) ?(compute_cost = 0)
    ?(pressure_decay_permille = 500) ~default_budget () =
  let c =
    { default_budget; budgets; curve; compute_cost; pressure_decay_permille }
  in
  validate c;
  c

type t = {
  cfg : config;
  budgets : int array;
  aggregate_budget : int;
  curve_thresholds : int array;
  curve_steps : int array;
  max_step : int;
  demand : int array;
  lane_demand : int array;
  stall : int array;
  throttled : int array;
  blown : bool array;
  pressure : int array;
  mutable total_demand : int;
  mutable busy_lanes : int;
  mutable cur_lane : int;
  mutable window_start : int;
}

let create ~partitions ~lanes cfg =
  validate cfg;
  if partitions <= 0 then
    invalid_arg "Contention.create: need at least one partition";
  if lanes <= 0 then invalid_arg "Contention.create: need at least one lane";
  List.iter
    (fun (p, _) ->
      if p >= partitions then
        invalid_arg "Contention.create: budget names unknown partition")
    cfg.budgets;
  let budgets =
    Array.init partitions (fun p ->
        match List.assoc_opt p cfg.budgets with
        | Some b -> b
        | None -> cfg.default_budget)
  in
  { cfg;
    budgets;
    aggregate_budget = Array.fold_left ( + ) 0 budgets;
    curve_thresholds = Array.of_list (List.map fst cfg.curve);
    curve_steps = Array.of_list (List.map snd cfg.curve);
    max_step = List.fold_left (fun acc (_, s) -> Stdlib.max acc s) 0 cfg.curve;
    demand = Array.make partitions 0;
    lane_demand = Array.make lanes 0;
    stall = Array.make partitions 0;
    throttled = Array.make partitions 0;
    blown = Array.make partitions false;
    pressure = Array.make partitions 0;
    total_demand = 0;
    busy_lanes = 0;
    cur_lane = 0;
    window_start = 0 }

let configuration t = t.cfg
let budget t p = t.budgets.(p)
let aggregate_budget t = t.aggregate_budget
let max_stall_per_access t = t.max_step
let set_lane t lane = t.cur_lane <- lane

(* Step of the highest curve threshold <= overage; thresholds are sorted,
   short (a handful of points) and scanned linearly. *)
let curve_step t overage =
  let n = Array.length t.curve_thresholds in
  let rec go i acc =
    if i >= n || t.curve_thresholds.(i) > overage then acc
    else go (i + 1) t.curve_steps.(i)
  in
  go 0 0

let charge t ~partition ~cost =
  if cost <= 0 then false
  else begin
    t.demand.(partition) <- t.demand.(partition) + cost;
    let lane = t.cur_lane in
    if t.lane_demand.(lane) = 0 then t.busy_lanes <- t.busy_lanes + 1;
    t.lane_demand.(lane) <- t.lane_demand.(lane) + cost;
    t.total_demand <- t.total_demand + cost;
    (* Slowdown: only genuine cross-lane co-running contends — a single
       busy lane has the bus to itself, however hungry. *)
    if t.busy_lanes >= 2 && t.total_demand > t.aggregate_budget then begin
      let overage =
        (t.total_demand - t.aggregate_budget)
        * 1000
        / Stdlib.max 1 t.aggregate_budget
      in
      t.stall.(partition) <- t.stall.(partition) + curve_step t overage
    end;
    if (not t.blown.(partition)) && t.demand.(partition) > t.budgets.(partition)
    then begin
      t.blown.(partition) <- true;
      true
    end
    else false
  end

let stall_pending t ~partition = t.stall.(partition) > 0

let consume_stall t ~partition =
  if t.stall.(partition) > 0 then begin
    t.stall.(partition) <- t.stall.(partition) - 1;
    t.throttled.(partition) <- t.throttled.(partition) + 1
  end

let rollover t ~now =
  if now > t.window_start then begin
    let n = Array.length t.demand in
    for p = 0 to n - 1 do
      t.pressure.(p) <-
        (t.pressure.(p) * t.cfg.pressure_decay_permille / 1000)
        + t.demand.(p);
      t.demand.(p) <- 0;
      t.stall.(p) <- 0;
      t.throttled.(p) <- 0;
      t.blown.(p) <- false
    done;
    Array.fill t.lane_demand 0 (Array.length t.lane_demand) 0;
    t.total_demand <- 0;
    t.busy_lanes <- 0;
    t.window_start <- now
  end

let window_start t = t.window_start
let demand t p = t.demand.(p)
let lane_demand t l = t.lane_demand.(l)
let total_demand t = t.total_demand
let busy_lanes t = t.busy_lanes
let throttled t p = t.throttled.(p)
let stall_debt t p = t.stall.(p)
let pressure t p = t.pressure.(p)

let co_runner_pressure t p =
  let n = Array.length t.pressure in
  let rec go i acc =
    if i >= n then acc else go (i + 1) (if i = p then acc else acc + t.pressure.(i))
  in
  go 0 0

let blown t p = t.blown.(p)
