type access_kind = Read | Write | Execute

let pp_access_kind ppf k =
  Format.pp_print_string ppf
    (match k with Read -> "read" | Write -> "write" | Execute -> "execute")

type fault_reason = Unmapped | Privilege | Permission

let pp_fault_reason ppf r =
  Format.pp_print_string ppf
    (match r with
    | Unmapped -> "unmapped"
    | Privilege -> "privilege"
    | Permission -> "permission")

type fault = {
  context : int;
  address : int;
  access : access_kind;
  level : Memory.exec_level;
  reason : fault_reason;
}

let pp_fault ppf f =
  Format.fprintf ppf "fault ctx=%d addr=0x%x %a@%a: %a" f.context f.address
    pp_access_kind f.access Memory.pp_exec_level f.level pp_fault_reason
    f.reason

(* SRMMU geometry: 8 + 6 + 6 index bits over a 32-bit space, 4 KiB pages. *)
let l1_entries = 256
let l2_entries = 64
let l3_entries = 64
let l1_span = 0x100_0000 (* 16 MiB *)
let l2_span = 0x4_0000 (* 256 KiB *)
let l3_span = Memory.page_size (* 4 KiB *)
let address_space = l1_entries * l1_span

type pte = { perms : Memory.perms; min_level : Memory.exec_level }

type entry = Invalid | Pte of pte | Ptd of entry array

type t = {
  tables : entry array array; (* context table: one L1 per context *)
  walks : Air_obs.Metrics.counter;
  faults : Air_obs.Metrics.counter;
  fault_unmapped : Air_obs.Metrics.counter;
  fault_privilege : Air_obs.Metrics.counter;
  fault_permission : Air_obs.Metrics.counter;
}

let create ?metrics ?(contexts = 16) () =
  if contexts <= 0 then invalid_arg "Mmu.create: need at least one context";
  let reg =
    match metrics with
    | Some reg -> reg
    | None -> Air_obs.Metrics.create ()
  in
  { tables = Array.init contexts (fun _ -> Array.make l1_entries Invalid);
    walks = Air_obs.Metrics.counter reg "mmu.walks";
    faults = Air_obs.Metrics.counter reg "mmu.faults";
    fault_unmapped = Air_obs.Metrics.counter reg "mmu.faults.unmapped";
    fault_privilege = Air_obs.Metrics.counter reg "mmu.faults.privilege";
    fault_permission = Air_obs.Metrics.counter reg "mmu.faults.permission" }

let contexts t = Array.length t.tables

let check_context t context =
  if context < 0 || context >= contexts t then
    invalid_arg "Mmu: context out of range"

let level_rank = function
  | Memory.Application -> 0
  | Memory.Pos -> 1
  | Memory.Pmk -> 2

let set_pte table idx pte =
  match table.(idx) with
  | Invalid -> table.(idx) <- Pte pte
  | Pte _ | Ptd _ -> invalid_arg "Mmu.map_region: page already mapped"

let subtable table idx entries =
  match table.(idx) with
  | Ptd sub -> sub
  | Invalid ->
    let sub = Array.make entries Invalid in
    table.(idx) <- Ptd sub;
    sub
  | Pte _ -> invalid_arg "Mmu.map_region: page already mapped"

let map_region t ~context (r : Memory.region) =
  check_context t context;
  if Memory.region_end r > address_space then
    invalid_arg "Mmu.map_region: region beyond 32-bit address space";
  let l1 = t.tables.(context) in
  let pte = { perms = r.Memory.perms; min_level = r.Memory.min_level } in
  let cursor = ref r.Memory.base in
  let stop = Memory.region_end r in
  while !cursor < stop do
    let remaining = stop - !cursor in
    if !cursor mod l1_span = 0 && remaining >= l1_span then begin
      set_pte l1 (!cursor / l1_span) pte;
      cursor := !cursor + l1_span
    end
    else if !cursor mod l2_span = 0 && remaining >= l2_span then begin
      let l2 = subtable l1 (!cursor / l1_span) l2_entries in
      set_pte l2 (!cursor mod l1_span / l2_span) pte;
      cursor := !cursor + l2_span
    end
    else begin
      let l2 = subtable l1 (!cursor / l1_span) l2_entries in
      let l3 = subtable l2 (!cursor mod l1_span / l2_span) l3_entries in
      set_pte l3 (!cursor mod l2_span / l3_span) pte;
      cursor := !cursor + l3_span
    end
  done

let map_partition t ~context (m : Memory.map) =
  List.iter (map_region t ~context) m.Memory.regions

let unmap_context t ~context =
  check_context t context;
  Array.fill t.tables.(context) 0 l1_entries Invalid

(* Depth = number of table levels consulted (1–3); the cost model of
   [Protection]/[Contention] charges deeper walks more. *)
let lookup_depth t ~context address =
  if address < 0 || address >= address_space then (None, 1)
  else begin
    let l1 = t.tables.(context) in
    match l1.(address / l1_span) with
    | Invalid -> (None, 1)
    | Pte pte -> (Some pte, 1)
    | Ptd l2 -> (
      match l2.(address mod l1_span / l2_span) with
      | Invalid -> (None, 2)
      | Pte pte -> (Some pte, 2)
      | Ptd l3 -> (
        match l3.(address mod l2_span / l3_span) with
        | Invalid | Ptd _ -> (None, 3)
        | Pte pte -> (Some pte, 3)))
  end

let permits (perms : Memory.perms) = function
  | Read -> perms.read
  | Write -> perms.write
  | Execute -> perms.execute

let translate_costed t ~context ~level ~access address =
  check_context t context;
  Air_obs.Metrics.incr t.walks;
  let fault reason =
    Air_obs.Metrics.incr t.faults;
    Air_obs.Metrics.incr
      (match reason with
      | Unmapped -> t.fault_unmapped
      | Privilege -> t.fault_privilege
      | Permission -> t.fault_permission);
    Error { context; address; access; level; reason }
  in
  let entry, depth = lookup_depth t ~context address in
  let result =
    match entry with
    | None -> fault Unmapped
    | Some pte ->
      if level_rank level < level_rank pte.min_level then fault Privilege
      else if not (permits pte.perms access) then fault Permission
      else Ok (pte.perms, pte.min_level)
  in
  (result, depth)

let translate t ~context ~level ~access address =
  fst (translate_costed t ~context ~level ~access address)

let entry_count t ~context =
  check_context t context;
  let rec count_table table =
    Array.fold_left
      (fun acc -> function
        | Invalid -> acc
        | Pte _ -> acc + 1
        | Ptd sub -> acc + count_table sub)
      0 table
  in
  count_table t.tables.(context)

let acc_encoding (perms : Memory.perms) level =
  (* SPARC V8 ACC values; user-accessible regions take 0–4, supervisor-only
     regions 6–7 (5 grants user read and is not used by AIR descriptors). *)
  match level with
  | Memory.Application -> (
    match (perms.read, perms.write, perms.execute) with
    | true, false, false -> 0
    | true, true, false -> 1
    | true, false, true -> 2
    | true, true, true -> 3
    | false, _, true -> 4
    | false, _, false -> 0)
  | Memory.Pos | Memory.Pmk -> if perms.write then 7 else 6
