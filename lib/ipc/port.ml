open Air_sim
open Air_model.Ident

type direction = Source | Destination

let direction_equal a b =
  match (a, b) with
  | Source, Source | Destination, Destination -> true
  | (Source | Destination), _ -> false

let pp_direction ppf d =
  Format.pp_print_string ppf
    (match d with Source -> "source" | Destination -> "destination")

type kind = Sampling of { refresh : Time.t } | Queuing of { depth : int }

let pp_kind ppf = function
  | Sampling { refresh } ->
    Format.fprintf ppf "sampling(refresh=%a)" Time.pp refresh
  | Queuing { depth } -> Format.fprintf ppf "queuing(depth=%d)" depth

type config = {
  name : Port_name.t;
  partition : Partition_id.t;
  direction : direction;
  kind : kind;
  max_message_size : int;
}

let check_size max_message_size =
  if max_message_size <= 0 then
    invalid_arg "Port: max_message_size must be positive"

let sampling_port ~name ~partition ~direction ~refresh ~max_message_size =
  check_size max_message_size;
  if refresh <= 0 then invalid_arg "Port: refresh must be positive";
  { name; partition; direction; kind = Sampling { refresh };
    max_message_size }

let queuing_port ~name ~partition ~direction ~depth ~max_message_size =
  check_size max_message_size;
  if depth <= 0 then invalid_arg "Port: depth must be positive";
  { name; partition; direction; kind = Queuing { depth }; max_message_size }

type channel = { source : Port_name.t; destinations : Port_name.t list }

type network = { ports : config list; channels : channel list }

let same_mode a b =
  match (a, b) with
  | Sampling _, Sampling _ | Queuing _, Queuing _ -> true
  | (Sampling _ | Queuing _), _ -> false

let validate net =
  let diags = ref [] in
  let push fmt = Format.kasprintf (fun s -> diags := s :: !diags) fmt in
  let find name =
    List.find_opt (fun p -> Port_name.equal p.name name) net.ports
  in
  (* Duplicate port names. *)
  let seen = Hashtbl.create 16 in
  List.iter
    (fun p ->
      if Hashtbl.mem seen p.name then push "duplicate port name %s" p.name
      else Hashtbl.add seen p.name ())
    net.ports;
  (* Channel endpoint checks. *)
  let sources = Hashtbl.create 16 and dests = Hashtbl.create 16 in
  List.iter
    (fun ch ->
      (if Hashtbl.mem sources ch.source then
         push "source port %s feeds more than one channel" ch.source
       else Hashtbl.add sources ch.source ());
      if ch.destinations = [] then
        push "channel from %s has no destinations" ch.source;
      match find ch.source with
      | None -> push "channel names unknown source port %s" ch.source
      | Some src ->
        if not (direction_equal src.direction Source) then
          push "port %s used as channel source but declared %a" src.name
            pp_direction src.direction;
        (* ARINC 653: only sampling channels may fan out; a queuing channel
           connects exactly one source to exactly one destination. *)
        (match src.kind with
        | Queuing _ when List.length ch.destinations > 1 ->
          push
            "queuing channel from %s has %d destinations; queuing channels \
             are strictly 1:1"
            ch.source
            (List.length ch.destinations)
        | Queuing _ | Sampling _ -> ());
        List.iter
          (fun dname ->
            (if Hashtbl.mem dests dname then
               push "destination port %s fed by more than one channel" dname
             else Hashtbl.add dests dname ());
            match find dname with
            | None -> push "channel names unknown destination port %s" dname
            | Some dst ->
              if not (direction_equal dst.direction Destination) then
                push "port %s used as channel destination but declared %a"
                  dst.name pp_direction dst.direction;
              if not (same_mode src.kind dst.kind) then
                push "channel %s → %s mixes sampling and queuing ports"
                  src.name dst.name;
              if dst.max_message_size < src.max_message_size then
                push
                  "destination %s max size %d smaller than source %s max \
                   size %d"
                  dst.name dst.max_message_size src.name
                  src.max_message_size)
          ch.destinations)
    net.channels;
  List.rev !diags

let pp_config ppf p =
  Format.fprintf ppf "%s (%a, %a, %a, ≤%dB)" p.name Partition_id.pp
    p.partition pp_direction p.direction pp_kind p.kind p.max_message_size
