open Air_sim
open Air_model.Ident

type error =
  | Unknown_port of Port_name.t
  | Not_owner of { port : Port_name.t; caller : Partition_id.t }
  | Wrong_direction of Port_name.t
  | Wrong_mode of Port_name.t
  | Message_too_large of { port : Port_name.t; size : int; max : int }
  | Empty_message

let pp_error ppf = function
  | Unknown_port p -> Format.fprintf ppf "unknown port %s" p
  | Not_owner { port; caller } ->
    Format.fprintf ppf "port %s not owned by %a" port Partition_id.pp caller
  | Wrong_direction p -> Format.fprintf ppf "wrong direction for port %s" p
  | Wrong_mode p -> Format.fprintf ppf "wrong transfer mode for port %s" p
  | Message_too_large { port; size; max } ->
    Format.fprintf ppf "message of %d bytes exceeds %s limit %d" size port max
  | Empty_message -> Format.pp_print_string ppf "empty message"

(* Buffered payloads carry the causal correlation id stamped at the
   originating write ([Causal.none] for pre-tracker traffic), so the id
   survives queuing, slot overwrites, gateway drains and re-injection. *)
type slot = { mutable content : (bytes * Time.t * Air_obs.Causal.id) option }

type buffer =
  | Sampling_slot of slot
  | Queuing_buffer of {
      depth : int;
      queue : (bytes * Time.t * Air_obs.Causal.id) Queue.t;
    }
  | Source_end  (** Source ports buffer nothing; writes fan out. *)

type endpoint = { config : Port.config; buffer : buffer; idx : int }

type t = {
  endpoints : (Port_name.t, endpoint) Hashtbl.t;
  routes : (Port_name.t, Port_name.t list) Hashtbl.t;
      (** Source port → destination ports. *)
  messages_sent : Air_obs.Metrics.counter;
  messages_received : Air_obs.Metrics.counter;
  bytes_copied : Air_obs.Metrics.counter;
  overflows : Air_obs.Metrics.counter;
  stale_reads : Air_obs.Metrics.counter;
      (** Sampling reads whose slot content had outlived its refresh. *)
  delivery_latency : Air_obs.Metrics.histogram;
      (** Queuing receive latency: ticks between enqueue and receive, for
          receives that pass the current time ([receive_queuing ~now]). *)
  mutable on_delivery : (latency:int -> unit) option;
      (** Telemetry observer, invoked with the same latencies. *)
  recorder : Air_obs.Span.t option;
      (** Flight recorder: send-side delivery instants on the caller's
          track ([ipc.write-sampling], [ipc.send-queuing]) and [ipc.inject]
          instants on the module track for bus arrivals. *)
  causal : Air_obs.Causal.t option;
      (** Flow tracker: stamps every originating write and records
          receive/forward/perturb hops; [None] disables stamping (buffered
          ids are then [Causal.none]). *)
}

type validity = Valid | Invalid

let pp_validity ppf v =
  Format.pp_print_string ppf
    (match v with Valid -> "valid" | Invalid -> "invalid")

let create ?metrics ?recorder ?causal (net : Port.network) =
  (match Port.validate net with
  | [] -> ()
  | d :: _ -> invalid_arg ("Router.create: " ^ d));
  let reg =
    match metrics with
    | Some reg -> reg
    | None -> Air_obs.Metrics.create ()
  in
  let endpoints = Hashtbl.create 16 in
  (* Declaration order gives each port a dense index — the port field of
     every causal id stamped here. *)
  List.iteri
    (fun idx (c : Port.config) ->
      let buffer =
        match (c.direction, c.kind) with
        | Port.Source, _ -> Source_end
        | Port.Destination, Port.Sampling _ ->
          Sampling_slot { content = None }
        | Port.Destination, Port.Queuing { depth } ->
          Queuing_buffer { depth; queue = Queue.create () }
      in
      Hashtbl.replace endpoints c.name { config = c; buffer; idx })
    net.ports;
  let routes = Hashtbl.create 16 in
  List.iter
    (fun (ch : Port.channel) ->
      Hashtbl.replace routes ch.source ch.destinations)
    net.channels;
  { endpoints;
    routes;
    messages_sent = Air_obs.Metrics.counter reg "ipc.messages_sent";
    messages_received = Air_obs.Metrics.counter reg "ipc.messages_received";
    bytes_copied = Air_obs.Metrics.counter reg "ipc.bytes_copied";
    overflows = Air_obs.Metrics.counter reg "ipc.overflows";
    stale_reads = Air_obs.Metrics.counter reg "ipc.stale_reads";
    delivery_latency = Air_obs.Metrics.histogram reg "ipc.delivery_latency";
    on_delivery = None;
    recorder;
    causal }

let set_delivery_observer t f = t.on_delivery <- Some f

let causal t = t.causal

let port_names t =
  Hashtbl.fold (fun name e acc -> (e.idx, name) :: acc) t.endpoints []
  |> List.sort (fun (a, _) (b, _) -> Stdlib.compare a b)

let record_instant t ~now ~track ~port name =
  match t.recorder with
  | None -> ()
  | Some r -> Air_obs.Span.instant r ~now ~track ~detail:port name

(* Causal hooks: all no-ops (and allocation-free) without a tracker. *)

let stamp_send t (e : endpoint) ~caller ~now =
  match t.causal with
  | None -> Air_obs.Causal.none
  | Some c ->
    Air_obs.Causal.stamp c ~now ~partition:(Partition_id.index caller)
      ~port:e.idx

let note_receive t ~now ~caller cid =
  match t.causal with
  | None -> ()
  | Some c ->
    Air_obs.Causal.receive c ~now ~track:(Partition_id.index caller) cid

let note_perturb t ~now ~what cid =
  match t.causal with
  | None -> ()
  | Some c -> Air_obs.Causal.perturb c ~now ~what cid

let port_config t name =
  Option.map (fun e -> e.config) (Hashtbl.find_opt t.endpoints name)

let find t name =
  match Hashtbl.find_opt t.endpoints name with
  | None -> Error (Unknown_port name)
  | Some e -> Ok e

let check_owner caller (e : endpoint) =
  if Partition_id.equal e.config.Port.partition caller then Ok e
  else Error (Not_owner { port = e.config.Port.name; caller })

let check_direction dir (e : endpoint) =
  if Port.direction_equal e.config.Port.direction dir then Ok e
  else Error (Wrong_direction e.config.Port.name)

let check_payload (msg : bytes) (e : endpoint) =
  let size = Bytes.length msg in
  if size = 0 then Error Empty_message
  else if size > e.config.Port.max_message_size then
    Error
      (Message_too_large
         { port = e.config.Port.name;
           size;
           max = e.config.Port.max_message_size })
  else Ok e

let ( let* ) r f = Result.bind r f

let destinations t source = Option.value ~default:[] (Hashtbl.find_opt t.routes source)

let write_sampling t ~caller ~port ~now msg =
  let* e = find t port in
  let* e = check_owner caller e in
  let* e = check_direction Port.Source e in
  let* e = check_payload msg e in
  match e.config.Port.kind with
  | Port.Queuing _ -> Error (Wrong_mode port)
  | Port.Sampling _ ->
    let cid = stamp_send t e ~caller ~now in
    List.iter
      (fun dest ->
        match Hashtbl.find_opt t.endpoints dest with
        | Some { buffer = Sampling_slot slot; _ } ->
          (* Memory-to-memory copy: the destination never aliases the
             sender's buffer. *)
          slot.content <- Some (Bytes.copy msg, now, cid);
          Air_obs.Metrics.add t.bytes_copied (Bytes.length msg)
        | Some _ | None -> ())
      (destinations t port);
    Air_obs.Metrics.incr t.messages_sent;
    record_instant t ~now ~track:(Partition_id.index caller) ~port
      "ipc.write-sampling";
    Ok ()

let read_sampling t ~caller ~port ~now =
  let* e = find t port in
  let* e = check_owner caller e in
  let* e = check_direction Port.Destination e in
  match (e.config.Port.kind, e.buffer) with
  | Port.Sampling { refresh }, Sampling_slot slot -> (
    match slot.content with
    | None -> Ok (Bytes.create 0, Invalid)
    | Some (msg, written, cid) ->
      let validity =
        if Time.(now <= Time.add written refresh) then Valid else Invalid
      in
      (match validity with
      | Invalid -> Air_obs.Metrics.incr t.stale_reads
      | Valid -> ());
      Air_obs.Metrics.incr t.messages_received;
      (* Non-destructive reads repeat; only the first observation of a
         given message closes its flow. Clearing the stored id keeps one
         Receive record per delivered message. *)
      if Air_obs.Causal.is_some cid then begin
        note_receive t ~now ~caller cid;
        slot.content <- Some (msg, written, Air_obs.Causal.none)
      end;
      Ok (Bytes.copy msg, validity))
  | (Port.Queuing _ | Port.Sampling _), _ -> Error (Wrong_mode port)

type send_outcome = {
  delivered : Port_name.t list;
  overflowed : Port_name.t list;
}

let send_queuing t ~caller ~port ~now msg =
  let* e = find t port in
  let* e = check_owner caller e in
  let* e = check_direction Port.Source e in
  let* e = check_payload msg e in
  match e.config.Port.kind with
  | Port.Sampling _ -> Error (Wrong_mode port)
  | Port.Queuing _ ->
    let cid = stamp_send t e ~caller ~now in
    let delivered = ref [] and overflowed = ref [] in
    List.iter
      (fun dest ->
        match Hashtbl.find_opt t.endpoints dest with
        | Some { buffer = Queuing_buffer { depth; queue }; _ } ->
          if Queue.length queue >= depth then begin
            Air_obs.Metrics.incr t.overflows;
            overflowed := dest :: !overflowed
          end
          else begin
            Queue.push (Bytes.copy msg, now, cid) queue;
            Air_obs.Metrics.add t.bytes_copied (Bytes.length msg);
            delivered := dest :: !delivered
          end
        | Some _ | None -> ())
      (destinations t port);
    Air_obs.Metrics.incr t.messages_sent;
    record_instant t ~now ~track:(Partition_id.index caller) ~port
      "ipc.send-queuing";
    Ok { delivered = List.rev !delivered; overflowed = List.rev !overflowed }

let pop_queuing t ?now queue =
  let msg, sent, cid = Queue.pop queue in
  Air_obs.Metrics.incr t.messages_received;
  (* Delivery latency: ticks the message spent queued. Only callers
     passing the current time contribute a sample. *)
  (match now with
  | None -> ()
  | Some now ->
    let latency = Stdlib.max 0 (now - sent) in
    Air_obs.Metrics.observe t.delivery_latency latency;
    (match t.on_delivery with
    | None -> ()
    | Some f -> f ~latency));
  (msg, cid)

let receive_queuing ?now t ~caller ~port =
  let* e = find t port in
  let* e = check_owner caller e in
  let* e = check_direction Port.Destination e in
  match e.buffer with
  | Queuing_buffer { queue; _ } ->
    if Queue.is_empty queue then Ok None
    else begin
      let msg, cid = pop_queuing t ?now queue in
      (* Clock-less legacy callers contribute neither a latency sample
         nor a flow close; every runtime path passes [~now]. *)
      (match now with
      | Some now -> note_receive t ~now ~caller cid
      | None -> ());
      Ok (Some msg)
    end
  | Sampling_slot _ | Source_end -> Error (Wrong_mode port)

(* Gateway drain towards a cluster link: identical accounting to
   [receive_queuing ~now] (so cluster metrics and telemetry match the
   single-module path byte for byte), but the causal record is a
   [Forward] — the message is changing modules, not being consumed — and
   the id is surfaced so the link transfer can carry it. *)
let drain t ~port ~now =
  match Hashtbl.find_opt t.endpoints port with
  | Some { buffer = Queuing_buffer { queue; _ }; _ } ->
    if Queue.is_empty queue then None
    else begin
      let msg, cid = pop_queuing t ~now queue in
      (match t.causal with
      | None -> ()
      | Some c -> Air_obs.Causal.forward c ~now cid);
      Some (msg, cid)
    end
  | Some _ | None -> None

let pending t ~port =
  match Hashtbl.find_opt t.endpoints port with
  | Some { buffer = Queuing_buffer { queue; _ }; _ } -> Queue.length queue
  | Some _ | None -> 0

let last_write_time t ~port =
  match Hashtbl.find_opt t.endpoints port with
  | Some { buffer = Sampling_slot { content = Some (_, time, _) }; _ } ->
    Some time
  | Some _ | None -> None

type inject_outcome = Injected | Inject_overflow | Inject_bad_port

let inject ?(cid = Air_obs.Causal.none) t ~port ~now msg =
  match Hashtbl.find_opt t.endpoints port with
  | None -> Inject_bad_port
  | Some e ->
    if
      Bytes.length msg = 0
      || Bytes.length msg > e.config.Port.max_message_size
    then Inject_bad_port
    else begin
      match e.buffer with
      | Sampling_slot slot ->
        slot.content <- Some (Bytes.copy msg, now, cid);
        Air_obs.Metrics.add t.bytes_copied (Bytes.length msg);
        record_instant t ~now ~track:(-1) ~port "ipc.inject";
        Injected
      | Queuing_buffer { depth; queue } ->
        if Queue.length queue >= depth then begin
          Air_obs.Metrics.incr t.overflows;
          Inject_overflow
        end
        else begin
          Queue.push (Bytes.copy msg, now, cid) queue;
          Air_obs.Metrics.add t.bytes_copied (Bytes.length msg);
          record_instant t ~now ~track:(-1) ~port "ipc.inject";
          Injected
        end
      | Source_end -> Inject_bad_port
    end

(* Fault-injection perturbations (communication faults). All operate on a
   destination buffer — the delivery end of a channel — because that is
   where a faulty bus or switch corrupts traffic: after the send completed,
   before the receiver looks. *)

type perturb_outcome = Perturbed | No_message | Perturb_bad_port

let dest_endpoint t ~port =
  match Hashtbl.find_opt t.endpoints port with
  | None | Some { buffer = Source_end; _ } -> None
  | Some e -> Some e

let drop_head ?(now = 0) t ~port =
  match dest_endpoint t ~port with
  | None -> Perturb_bad_port
  | Some { buffer = Sampling_slot slot; _ } -> (
    match slot.content with
    | None -> No_message
    | Some (_, _, cid) ->
      note_perturb t ~now ~what:Air_obs.Causal.Drop cid;
      slot.content <- None;
      Perturbed)
  | Some { buffer = Queuing_buffer { queue; _ }; _ } ->
    if Queue.is_empty queue then No_message
    else begin
      let _, _, cid = Queue.pop queue in
      note_perturb t ~now ~what:Air_obs.Causal.Drop cid;
      Perturbed
    end
  | Some { buffer = Source_end; _ } -> Perturb_bad_port

let steal_head ?(now = 0) t ~port =
  match dest_endpoint t ~port with
  | None -> None
  | Some { buffer = Sampling_slot slot; _ } ->
    let taken =
      Option.map (fun (msg, _, cid) -> (msg, cid)) slot.content
    in
    slot.content <- None;
    (match taken with
    | Some (_, cid) -> note_perturb t ~now ~what:Air_obs.Causal.Delay cid
    | None -> ());
    taken
  | Some { buffer = Queuing_buffer { queue; _ }; _ } ->
    if Queue.is_empty queue then None
    else begin
      let msg, _, cid = Queue.pop queue in
      note_perturb t ~now ~what:Air_obs.Causal.Delay cid;
      Some (msg, cid)
    end
  | Some { buffer = Source_end; _ } -> None

let duplicate_head ?(now = 0) t ~port =
  match dest_endpoint t ~port with
  | None -> Perturb_bad_port
  | Some { buffer = Sampling_slot slot; _ } ->
    (* Sampling semantics absorb duplicates: redelivering the same value
       overwrites the slot with itself. Still counts as applied. *)
    (match slot.content with
    | Some (_, _, cid) ->
      note_perturb t ~now ~what:Air_obs.Causal.Duplicate cid;
      Perturbed
    | None -> No_message)
  | Some { buffer = Queuing_buffer { depth; queue }; _ } ->
    if Queue.is_empty queue then No_message
    else begin
      let msg, sent, cid = Queue.peek queue in
      note_perturb t ~now ~what:Air_obs.Causal.Duplicate cid;
      if Queue.length queue >= depth then
        (* The duplicate arrives at a full queue and overflows, exactly as
           a regular late delivery would. *)
        Air_obs.Metrics.incr t.overflows
      else begin
        (* The copy keeps the original's id: it is the same logical
           message twice on the wire. *)
        Queue.push (Bytes.copy msg, sent, cid) queue;
        Air_obs.Metrics.add t.bytes_copied (Bytes.length msg)
      end;
      Perturbed
    end
  | Some { buffer = Source_end; _ } -> Perturb_bad_port

let corrupt_head ?(now = 0) t ~port ~byte =
  let flip msg =
    let len = Bytes.length msg in
    if len = 0 then ()
    else begin
      let i = ((byte mod len) + len) mod len in
      Bytes.set msg i (Char.chr (Char.code (Bytes.get msg i) lxor 0xff))
    end
  in
  match dest_endpoint t ~port with
  | None -> Perturb_bad_port
  | Some { buffer = Sampling_slot slot; _ } -> (
    match slot.content with
    | None -> No_message
    | Some (msg, _, cid) ->
      note_perturb t ~now ~what:Air_obs.Causal.Corrupt cid;
      flip msg;
      Perturbed)
  | Some { buffer = Queuing_buffer { queue; _ }; _ } ->
    if Queue.is_empty queue then No_message
    else begin
      (* The queue owns its payloads (enqueue always copies), so the head
         can be mutated in place. *)
      let msg, _, cid = Queue.peek queue in
      note_perturb t ~now ~what:Air_obs.Causal.Corrupt cid;
      flip msg;
      Perturbed
    end
  | Some { buffer = Source_end; _ } -> Perturb_bad_port

let reorder_head ?(now = 0) t ~port =
  match dest_endpoint t ~port with
  | None | Some { buffer = Sampling_slot _; _ } -> Perturb_bad_port
  | Some { buffer = Queuing_buffer { queue; _ }; _ } ->
    if Queue.length queue < 2 then No_message
    else begin
      let ((_, _, cid) as head) = Queue.pop queue in
      note_perturb t ~now ~what:Air_obs.Causal.Reorder cid;
      Queue.push head queue;
      Perturbed
    end
  | Some { buffer = Source_end; _ } -> Perturb_bad_port

(* Legacy aggregate view, kept as a thin shim over the [ipc.*] registry
   counters. *)
type stats = {
  messages_sent : int;
  messages_received : int;
  bytes_copied : int;
  overflows : int;
}

let stats (t : t) =
  { messages_sent = Air_obs.Metrics.value t.messages_sent;
    messages_received = Air_obs.Metrics.value t.messages_received;
    bytes_copied = Air_obs.Metrics.value t.bytes_copied;
    overflows = Air_obs.Metrics.value t.overflows }

let pp_stats ppf s =
  Format.fprintf ppf "sent=%d received=%d bytes=%d overflows=%d"
    s.messages_sent s.messages_received s.bytes_copied s.overflows
