(** Runtime message transport between partitions.

    The AIR PMK implements interpartition communication for co-located
    partitions as memory-to-memory copies that do not violate spatial
    separation (paper Sect. 2.1): a write through a source port is fanned
    out, by copy, into the buffers of every destination port of the channel.
    The router owns those buffers; partitions only ever see copies of their
    own messages. *)

open Air_sim
open Air_model.Ident

type t

type error =
  | Unknown_port of Port_name.t
  | Not_owner of { port : Port_name.t; caller : Partition_id.t }
      (** Port belongs to a different partition. *)
  | Wrong_direction of Port_name.t
  | Wrong_mode of Port_name.t  (** Sampling operation on a queuing port, etc. *)
  | Message_too_large of { port : Port_name.t; size : int; max : int }
  | Empty_message

val pp_error : Format.formatter -> error -> unit

val create :
  ?metrics:Air_obs.Metrics.t ->
  ?recorder:Air_obs.Span.t ->
  ?causal:Air_obs.Causal.t ->
  Port.network ->
  t
(** Raises [Invalid_argument] when {!Port.validate} reports diagnostics.
    [metrics] receives the [ipc.*] series (message/byte/overflow/stale
    counters plus the [ipc.delivery_latency] histogram); a private registry
    is used when omitted. [recorder], when given, receives delivery
    instants: [ipc.write-sampling] / [ipc.send-queuing] on the sending
    partition's track and [ipc.inject] on the module track, each carrying
    the port name as detail. [causal], when given, stamps every
    originating write with a correlation id (origin partition + the
    port's declaration index + monotone sequence) that travels with the
    buffered payload, and records send/receive/forward/perturbation hops
    into the tracker — all allocation-free. *)

val causal : t -> Air_obs.Causal.t option

val port_names : t -> (int * string) list
(** Declaration index → port name, sorted by index — resolves the port
    field of a causal id back to its name. *)

val set_delivery_observer : t -> (latency:int -> unit) -> unit
(** Install the observer invoked with each queuing delivery latency sample
    (see {!receive_queuing}); the telemetry layer uses this to feed its
    per-frame latency percentiles without the router depending on it. *)

val port_config : t -> Port_name.t -> Port.config option

(** {1 Sampling mode} *)

type validity = Valid | Invalid

val pp_validity : Format.formatter -> validity -> unit

val write_sampling :
  t ->
  caller:Partition_id.t ->
  port:Port_name.t ->
  now:Time.t ->
  bytes ->
  (unit, error) result
(** Copies the message into every destination slot of the port's channel
    (no channel attached: the write succeeds and the message goes nowhere,
    as with an unconnected physical link). *)

val read_sampling :
  t ->
  caller:Partition_id.t ->
  port:Port_name.t ->
  now:Time.t ->
  (bytes * validity, error) result
(** Non-destructive read of the destination slot. An empty slot reads as an
    empty message with [Invalid] validity; a stale message (older than the
    port's refresh period) reads [Invalid]. The returned bytes are a fresh
    copy. *)

(** {1 Queuing mode} *)

type send_outcome = {
  delivered : Port_name.t list;
  overflowed : Port_name.t list;
      (** Destinations whose queue was full; the message was discarded
          there and the overflow is reported to health monitoring. *)
}

val send_queuing :
  t ->
  caller:Partition_id.t ->
  port:Port_name.t ->
  now:Time.t ->
  bytes ->
  (send_outcome, error) result

val receive_queuing :
  ?now:Time.t ->
  t ->
  caller:Partition_id.t ->
  port:Port_name.t ->
  (bytes option, error) result
(** [Ok None] when the queue is empty (the APEX layer maps it to
    NOT_AVAILABLE or blocks the caller). FIFO order. When [now] is given,
    the popped message contributes a delivery-latency sample
    ([now - enqueue time]) to the [ipc.delivery_latency] histogram and the
    {!set_delivery_observer} observer, and closes the message's causal
    flow with a [Receive] record. *)

val drain :
  t -> port:Port_name.t -> now:Time.t -> (bytes * Air_obs.Causal.id) option
(** Gateway pop towards a cluster link: same pop, metric and latency
    accounting as [receive_queuing ~now] on the port's owner, but the
    causal record is a [Forward] (the message continues to another
    module) and the buffered correlation id is returned so the link
    transfer can carry it. [None] on empty, unknown or non-queuing
    ports. *)

val pending : t -> port:Port_name.t -> int
(** Messages currently queued at a destination port (0 for sampling and
    source ports). *)

val last_write_time : t -> port:Port_name.t -> Time.t option
(** For a sampling destination: timestamp of the message in the slot. *)

(** {1 Remote delivery}

    For physically separated partitions, interpartition communication
    "implies data transmission through a communication infrastructure"
    (paper Sect. 2.1). The PMK-side entry point: a message arriving from
    the infrastructure is injected directly into a local destination
    port's buffer, as if a local channel had delivered it. *)

type inject_outcome = Injected | Inject_overflow | Inject_bad_port

val inject :
  ?cid:Air_obs.Causal.id ->
  t ->
  port:Port_name.t ->
  now:Time.t ->
  bytes ->
  inject_outcome
(** Write into a destination port: overwrite for sampling, enqueue for
    queuing (bounded — [Inject_overflow] on a full queue). Size limits are
    enforced as for local traffic ([Inject_bad_port] also covers oversized
    or empty messages). [cid] (default {!Air_obs.Causal.none}) is the
    correlation id the message carried on the wire; it is stored with the
    payload so the eventual receive closes the originating flow. *)

(** {1 Fault-injection perturbations}

    Hooks for the fault-injection campaign engine ([Faults]): each models a
    communication fault striking a channel after the send completed and
    before the receiver looks, so they all act on destination buffers. They
    bypass ownership/direction checks on purpose — a faulty bus does not
    ask permission — but never violate spatial separation: payload copies
    stay inside the router. *)

type perturb_outcome =
  | Perturbed  (** The fault was applied to an in-transit message. *)
  | No_message  (** Nothing in transit to perturb; the fault was a no-op. *)
  | Perturb_bad_port
      (** Unknown port, a source end, or a mode that cannot express the
          fault (e.g. reorder on a sampling slot). *)

val drop_head : ?now:Time.t -> t -> port:Port_name.t -> perturb_outcome
(** Message loss: clear a sampling slot / pop the oldest queued message.
    [now] (here and below, default 0) timestamps the [Perturb] record
    written to the causal tracker for the struck message's id. *)

val duplicate_head : ?now:Time.t -> t -> port:Port_name.t -> perturb_outcome
(** Message duplication: re-enqueue a copy of the queue head at the tail
    (overflowing queues discard the duplicate, counted as an overflow).
    The copy keeps the original's correlation id. Sampling slots absorb
    duplicates by construction. *)

val corrupt_head :
  ?now:Time.t -> t -> port:Port_name.t -> byte:int -> perturb_outcome
(** Payload corruption: invert all bits of byte [byte mod length] of the
    slot content / queue head. *)

val reorder_head : ?now:Time.t -> t -> port:Port_name.t -> perturb_outcome
(** Reordering: rotate the queue head to the tail ([No_message] unless at
    least two messages are queued; meaningless for sampling ports). *)

val steal_head :
  ?now:Time.t ->
  t ->
  port:Port_name.t ->
  (bytes * Air_obs.Causal.id) option
(** Remove and return the slot content / queue head without any accounting;
    the campaign engine uses this to model delay faults by re-injecting the
    stolen payload later through {!inject} (passing the returned id as
    [?cid] keeps the flow intact across the delay). *)

(** {1 Accounting} *)

type stats = {
  messages_sent : int;
  messages_received : int;
  bytes_copied : int;
  overflows : int;
}

val stats : t -> stats
val pp_stats : Format.formatter -> stats -> unit
