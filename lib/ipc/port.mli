(** Interpartition communication configuration (paper Sect. 2.1).

    Applications exchange messages through configuration-named ports, in a
    way agnostic of whether partitions are local or remote. ARINC 653
    defines two transfer modes: {e sampling} (a single message slot whose
    content is overwritten by each write and carries a validity bounded by a
    refresh period) and {e queuing} (a bounded FIFO of messages). Channels
    connect one source port to one or more destination ports. *)

open Air_sim
open Air_model.Ident

type direction = Source | Destination

val direction_equal : direction -> direction -> bool
val pp_direction : Format.formatter -> direction -> unit

type kind =
  | Sampling of { refresh : Time.t }
      (** A message older than [refresh] at read time is flagged invalid. *)
  | Queuing of { depth : int }
      (** At most [depth] messages buffered at the destination. *)

val pp_kind : Format.formatter -> kind -> unit

type config = {
  name : Port_name.t;
  partition : Partition_id.t;  (** Owning partition. *)
  direction : direction;
  kind : kind;
  max_message_size : int;      (** Bytes. *)
}

val sampling_port :
  name:Port_name.t ->
  partition:Partition_id.t ->
  direction:direction ->
  refresh:Time.t ->
  max_message_size:int ->
  config

val queuing_port :
  name:Port_name.t ->
  partition:Partition_id.t ->
  direction:direction ->
  depth:int ->
  max_message_size:int ->
  config

type channel = {
  source : Port_name.t;
  destinations : Port_name.t list;
}

type network = { ports : config list; channels : channel list }

val validate : network -> string list
(** Diagnostics: duplicate port names, channels naming unknown ports, a
    source feeding multiple channels, direction or mode mismatches between
    a channel's endpoints, destination message size smaller than the
    source's, a destination fed by two channels, a queuing channel with
    more than one destination (ARINC 653 queuing channels are strictly
    1:1; only sampling channels fan out). Empty when sound. *)

val pp_config : Format.formatter -> config -> unit
