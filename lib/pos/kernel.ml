open Air_sim
open Air_model

type policy = Priority_preemptive | Round_robin of { quantum : int }

let pp_policy ppf = function
  | Priority_preemptive -> Format.pp_print_string ppf "priority-preemptive"
  | Round_robin { quantum } ->
    Format.fprintf ppf "round-robin(quantum=%d)" quantum

type wait_reason =
  | Delay
  | Next_release
  | On_semaphore of string
  | On_event of string
  | On_buffer of string
  | On_blackboard of string
  | On_queuing_port of string
  | Suspended

let pp_wait_reason ppf = function
  | Delay -> Format.pp_print_string ppf "delay"
  | Next_release -> Format.pp_print_string ppf "next-release"
  | On_semaphore s -> Format.fprintf ppf "semaphore %s" s
  | On_event e -> Format.fprintf ppf "event %s" e
  | On_buffer b -> Format.fprintf ppf "buffer %s" b
  | On_blackboard b -> Format.fprintf ppf "blackboard %s" b
  | On_queuing_port p -> Format.fprintf ppf "queuing-port %s" p
  | Suspended -> Format.pp_print_string ppf "suspended"

type hooks = {
  register_deadline : process:int -> Time.t -> unit;
  unregister_deadline : process:int -> unit;
  on_state_change : process:int -> Process.state -> unit;
}

let null_hooks =
  { register_deadline = (fun ~process:_ _ -> ());
    unregister_deadline = (fun ~process:_ -> ());
    on_state_change = (fun ~process:_ _ -> ()) }

type pcb = {
  spec : Process.spec;
  mutable state : Process.state;
  mutable current_priority : int;
  mutable deadline_time : Time.t;
  mutable wait : wait_reason option;
  mutable wake_at : Time.t;
      (* Absolute instant at which a Delay wakes or a blocking wait times
         out; infinity = no timeout. *)
  mutable release_point : Time.t;
  mutable ready_seq : int;
  mutable block_seq : int;
  mutable timed_out : bool;
  mutable activations : int;
}

type t = {
  partition : Ident.Partition_id.t;
  policy : policy;
  hooks : hooks;
  pcbs : pcb array;
  mutable seq : int;
  (* Round-robin bookkeeping. *)
  mutable rr_current : int;
  mutable rr_quantum_left : int;
  (* Preemption lock: holder index and nesting level. *)
  mutable lock_holder : int option;
  mutable lock_level : int;
}

let create ~partition ~policy ~hooks specs =
  let pcbs =
    Array.map
      (fun (spec : Process.spec) ->
        { spec;
          state = Process.Dormant;
          current_priority = spec.Process.base_priority;
          deadline_time = Time.infinity;
          wait = None;
          wake_at = Time.infinity;
          release_point = Time.zero;
          ready_seq = 0;
          block_seq = 0;
          timed_out = false;
          activations = 0 })
      specs
  in
  { partition; policy; hooks; pcbs; seq = 0; rr_current = 0;
    rr_quantum_left = 0; lock_holder = None; lock_level = 0 }

let partition t = t.partition
let policy t = t.policy
let process_count t = Array.length t.pcbs

let pcb t q =
  if q < 0 || q >= Array.length t.pcbs then
    invalid_arg "Kernel: process index out of range";
  t.pcbs.(q)

let spec t q = (pcb t q).spec
let state t q = (pcb t q).state

let status t q =
  let p = pcb t q in
  { Process.deadline_time = p.deadline_time;
    current_priority = p.current_priority;
    state = p.state }

let wait_reason t q = (pcb t q).wait
let deadline_time t q = (pcb t q).deadline_time
let activations t q = (pcb t q).activations

let take_timed_out t q =
  let p = pcb t q in
  let flag = p.timed_out in
  p.timed_out <- false;
  flag

type op_error =
  | Not_dormant
  | Already_dormant
  | Not_waiting
  | Invalid_for_periodic
  | Not_periodic
  | No_such_process

let pp_op_error ppf e =
  Format.pp_print_string ppf
    (match e with
    | Not_dormant -> "process not dormant"
    | Already_dormant -> "process already dormant"
    | Not_waiting -> "process not suspended"
    | Invalid_for_periodic -> "operation invalid for periodic process"
    | Not_periodic -> "process is not periodic"
    | No_such_process -> "no such process")

let next_seq t =
  t.seq <- t.seq + 1;
  t.seq

let release_lock_if_holder t q =
  match t.lock_holder with
  | Some h when h = q ->
    t.lock_holder <- None;
    t.lock_level <- 0
  | Some _ | None -> ()

let set_state t q (p : pcb) state =
  (* A process that blocks or stops while holding the preemption lock
     releases it (ARINC 653 forbids waiting with preemption locked). *)
  (match state with
  | Process.Waiting | Process.Dormant -> release_lock_if_holder t q
  | Process.Ready | Process.Running -> ());
  if not (Process.state_equal p.state state) then begin
    p.state <- state;
    t.hooks.on_state_change ~process:q state
  end

let make_ready t q (p : pcb) =
  p.wait <- None;
  p.wake_at <- Time.infinity;
  p.ready_seq <- next_seq t;
  set_state t q p Process.Ready

(* Arm the deadline of a fresh activation released at [release]. *)
let arm_activation t q (p : pcb) ~release =
  p.activations <- p.activations + 1;
  if Process.has_deadline p.spec then begin
    p.deadline_time <- Time.add release p.spec.Process.time_capacity;
    t.hooks.register_deadline ~process:q p.deadline_time
  end

let guard t q f =
  if q < 0 || q >= Array.length t.pcbs then Error No_such_process else f (pcb t q)

(* Sporadic processes reuse the periodic machinery with their minimum
   inter-arrival time as the release separation — the earliest legal next
   release point. *)
let period_of (p : pcb) =
  match p.spec.Process.periodicity with
  | Process.Periodic period | Process.Sporadic period -> Some period
  | Process.Aperiodic -> None

let start t ~now ?(delay = Time.zero) q =
  guard t q (fun p ->
      match p.state with
      | Process.Ready | Process.Running | Process.Waiting -> Error Not_dormant
      | Process.Dormant ->
        p.current_priority <- p.spec.Process.base_priority;
        p.timed_out <- false;
        if delay = Time.zero then begin
          p.release_point <- now;
          arm_activation t q p ~release:now;
          make_ready t q p
        end
        else begin
          (* Delayed start: the first release point is now + delay; the
             deadline is armed when the release occurs. *)
          p.release_point <- Time.add now delay;
          p.wait <- Some Next_release;
          p.wake_at <- Time.infinity;
          set_state t q p Process.Waiting
        end;
        Ok ())

let stop t q =
  guard t q (fun p ->
      match p.state with
      | Process.Dormant -> Error Already_dormant
      | Process.Ready | Process.Running | Process.Waiting ->
        p.wait <- None;
        p.wake_at <- Time.infinity;
        p.deadline_time <- Time.infinity;
        t.hooks.unregister_deadline ~process:q;
        set_state t q p Process.Dormant;
        Ok ())

let suspend t ~now ?(timeout = Time.infinity) q =
  guard t q (fun p ->
      match period_of p with
      | Some _ -> Error Invalid_for_periodic
      | None -> (
        match p.state with
        | Process.Dormant -> Error Already_dormant
        | Process.Waiting -> Error Not_dormant
        | Process.Ready | Process.Running ->
          p.wait <- Some Suspended;
          p.wake_at <-
            (if Time.is_infinite timeout then Time.infinity
             else Time.add now timeout);
          p.block_seq <- next_seq t;
          set_state t q p Process.Waiting;
          Ok ()))

let resume t ~now:_ q =
  guard t q (fun p ->
      match (p.state, p.wait) with
      | Process.Waiting, Some Suspended ->
        p.timed_out <- false;
        make_ready t q p;
        Ok ()
      | _, _ -> Error Not_waiting)

let set_priority t q prio =
  guard t q (fun p ->
      p.current_priority <- prio;
      Ok ())

let periodic_wait t ~now q =
  guard t q (fun p ->
      match period_of p with
      | None -> Error Not_periodic
      | Some period ->
        (* Consecutive release points are separated by the period. A
           process that overran keeps the missed release point so that its
           (already past) deadline is armed faithfully. *)
        p.release_point <- Time.add p.release_point period;
        ignore now;
        (* PERIODIC_WAIT completes the current activation: its deadline is
           met, and the store entry moves to the next activation's deadline
           (paper Sect. 5.2 — the suspend-until-release primitive is among
           those that update the due process's deadlines). *)
        if Process.has_deadline p.spec then begin
          p.deadline_time <-
            Time.add p.release_point p.spec.Process.time_capacity;
          t.hooks.register_deadline ~process:q p.deadline_time
        end;
        p.wait <- Some Next_release;
        p.wake_at <- Time.infinity;
        p.block_seq <- next_seq t;
        set_state t q p Process.Waiting;
        Ok ())

let timed_wait t ~now q delay =
  guard t q (fun p ->
      p.wait <- Some Delay;
      p.wake_at <-
        (if Time.is_infinite delay then Time.infinity else Time.add now delay);
      p.block_seq <- next_seq t;
      set_state t q p Process.Waiting;
      Ok ())

let replenish t ~now q budget =
  guard t q (fun p ->
      if not (Process.has_deadline p.spec) then Ok ()
      else begin
        p.deadline_time <- Time.add now budget;
        t.hooks.register_deadline ~process:q p.deadline_time;
        Ok ()
      end)

let block t ~now q reason ~timeout =
  let p = pcb t q in
  p.wait <- Some reason;
  p.wake_at <-
    (if Time.is_infinite timeout then Time.infinity else Time.add now timeout);
  p.block_seq <- next_seq t;
  set_state t q p Process.Waiting

let wake t ~now:_ q ~timed_out =
  let p = pcb t q in
  match p.state with
  | Process.Waiting ->
    p.timed_out <- timed_out;
    make_ready t q p
  | Process.Dormant | Process.Ready | Process.Running -> ()

(* Announcement and scheduling run once per system clock tick; they are
   written as plain loops over the PCB array (no iterator closures, no
   references) so a steady-state tick does not allocate. *)
let announce_ticks t ~now =
  for q = 0 to Array.length t.pcbs - 1 do
    let p = t.pcbs.(q) in
    match (p.state, p.wait) with
    | Process.Waiting, Some Delay ->
      if Time.(p.wake_at <= now) then begin
        p.timed_out <- false;
        make_ready t q p
      end
    | Process.Waiting, Some Next_release ->
      if Time.(p.release_point <= now) then begin
        arm_activation t q p ~release:p.release_point;
        p.timed_out <- false;
        make_ready t q p
      end
    | Process.Waiting, Some
        ( On_semaphore _ | On_event _ | On_buffer _ | On_blackboard _
        | On_queuing_port _ | Suspended ) ->
      if Time.(p.wake_at <= now) then begin
        p.timed_out <- true;
        make_ready t q p
      end
    | Process.Waiting, None
    | (Process.Dormant | Process.Ready | Process.Running), _ ->
      ()
  done

(* Earliest instant at which [announce_ticks] would change any process
   state: the minimum over waiting processes of the delay wake-up, the
   next release point, or the blocking-wait timeout. *)
let rec next_wake_loop pcbs n q acc =
  if q >= n then acc
  else begin
    let p = pcbs.(q) in
    let acc =
      match (p.state, p.wait) with
      | Process.Waiting, Some Delay -> Time.min acc p.wake_at
      | Process.Waiting, Some Next_release -> Time.min acc p.release_point
      | Process.Waiting, Some
          ( On_semaphore _ | On_event _ | On_buffer _ | On_blackboard _
          | On_queuing_port _ | Suspended ) ->
        Time.min acc p.wake_at
      | Process.Waiting, None
      | (Process.Dormant | Process.Ready | Process.Running), _ ->
        acc
    in
    next_wake_loop pcbs n (q + 1) acc
  end

let next_wake t = next_wake_loop t.pcbs (Array.length t.pcbs) 0 Time.infinity

let has_schedulable t =
  Array.exists
    (fun p ->
      match p.state with
      | Process.Ready | Process.Running -> true
      | Process.Dormant | Process.Waiting -> false)
    t.pcbs

let ready_set t =
  let acc = ref [] in
  Array.iteri
    (fun q p ->
      match p.state with
      | Process.Ready | Process.Running -> acc := q :: !acc
      | Process.Dormant | Process.Waiting -> ())
    t.pcbs;
  List.rev !acc

let running t =
  let n = Array.length t.pcbs in
  let rec go q =
    if q >= n then None
    else
      match t.pcbs.(q).state with
      | Process.Running -> Some q
      | Process.Dormant | Process.Ready | Process.Waiting -> go (q + 1)
  in
  go 0

let schedulable t q =
  match t.pcbs.(q).state with
  | Process.Ready | Process.Running -> true
  | Process.Dormant | Process.Waiting -> false

(* eq. (14): the heir is the highest-priority schedulable process; among
   equal priorities, the one that has been ready the longest. The heir
   selectors work on plain indices (-1 = no heir) so the per-tick
   scheduling pass never boxes an option. *)
let rec heir_priority_loop pcbs n q best =
  if q >= n then best
  else begin
    let p = pcbs.(q) in
    let best =
      match p.state with
      | Process.Ready | Process.Running ->
        if best < 0 then q
        else begin
          let pb = pcbs.(best) in
          if
            p.current_priority < pb.current_priority
            || (p.current_priority = pb.current_priority
                && p.ready_seq < pb.ready_seq)
          then q
          else best
        end
      | Process.Dormant | Process.Waiting -> best
    in
    heir_priority_loop pcbs n (q + 1) best
  end

let heir_priority t = heir_priority_loop t.pcbs (Array.length t.pcbs) 0 (-1)

(* Rotate to the next schedulable process after the current one. *)
let rec rr_find t n i tried =
  if tried >= n then -1
  else
    let q = (t.rr_current + 1 + i) mod n in
    if schedulable t q then q else rr_find t n (i + 1) (tried + 1)

let heir_round_robin t quantum =
  let n = Array.length t.pcbs in
  if t.rr_current < n && schedulable t t.rr_current && t.rr_quantum_left > 0
  then begin
    t.rr_quantum_left <- t.rr_quantum_left - 1;
    t.rr_current
  end
  else
    match rr_find t n 0 0 with
    | -1 -> -1
    | q ->
      t.rr_current <- q;
      t.rr_quantum_left <- quantum - 1;
      q

let schedule_idx t ~now:_ =
  let choice =
    match t.lock_holder with
    | Some h when schedulable t h -> h
    | Some _ | None -> (
      match t.policy with
      | Priority_preemptive -> heir_priority t
      | Round_robin { quantum } -> heir_round_robin t quantum)
  in
  (* Demote a preempted running process; promote the heir. *)
  for q = 0 to Array.length t.pcbs - 1 do
    let p = t.pcbs.(q) in
    match p.state with
    | Process.Running when q <> choice -> set_state t q p Process.Ready
    | Process.Running | Process.Dormant | Process.Ready | Process.Waiting ->
      ()
  done;
  if choice >= 0 then set_state t choice t.pcbs.(choice) Process.Running;
  choice

let schedule t ~now =
  match schedule_idx t ~now with -1 -> None | q -> Some q

let stop_all t =
  t.lock_holder <- None;
  t.lock_level <- 0;
  Array.iteri
    (fun q p ->
      match p.state with
      | Process.Dormant -> ()
      | Process.Ready | Process.Running | Process.Waiting ->
        p.wait <- None;
        p.wake_at <- Time.infinity;
        p.deadline_time <- Time.infinity;
        t.hooks.unregister_deadline ~process:q;
        set_state t q p Process.Dormant)
    t.pcbs

let lock_preemption t ~process =
  guard t process (fun p ->
      match p.state with
      | Process.Running -> (
        match t.lock_holder with
        | Some h when h <> process -> Error Not_waiting
        | Some _ | None ->
          t.lock_holder <- Some process;
          t.lock_level <- t.lock_level + 1;
          Ok t.lock_level)
      | Process.Dormant | Process.Ready | Process.Waiting ->
        Error Not_waiting)

let unlock_preemption t ~process =
  guard t process (fun _ ->
      match t.lock_holder with
      | Some h when h = process ->
        t.lock_level <- t.lock_level - 1;
        if t.lock_level <= 0 then begin
          t.lock_holder <- None;
          t.lock_level <- 0;
          Ok 0
        end
        else Ok t.lock_level
      | Some _ | None -> Error Not_waiting)

let preemption_locked t = t.lock_holder <> None

let waiters matching t =
  let acc = ref [] in
  Array.iteri
    (fun q p ->
      match (p.state, p.wait) with
      | Process.Waiting, Some reason when matching reason ->
        acc := (q, p) :: !acc
      | (Process.Dormant | Process.Ready | Process.Running | Process.Waiting), _
        ->
        ())
    t.pcbs;
  List.rev !acc

let waiters_fifo t pred =
  waiters pred t
  |> List.sort (fun (_, a) (_, b) -> Int.compare a.block_seq b.block_seq)
  |> List.map fst

let waiters_priority t pred =
  waiters pred t
  |> List.sort (fun (_, a) (_, b) ->
         match Int.compare a.current_priority b.current_priority with
         | 0 -> Int.compare a.block_seq b.block_seq
         | c -> c)
  |> List.map fst

let find_by_name t name =
  let n = Array.length t.pcbs in
  let rec go q =
    if q >= n then None
    else if String.equal t.pcbs.(q).spec.Process.name name then Some q
    else go (q + 1)
  in
  go 0

let pp ppf t =
  Format.fprintf ppf "@[<v2>%a POS (%a):" Ident.Partition_id.pp t.partition
    pp_policy t.policy;
  Array.iteri
    (fun q p ->
      Format.fprintf ppf "@,%d %s: %a p'=%d D'=%a%a" q p.spec.Process.name
        Process.pp_state p.state p.current_priority Time.pp p.deadline_time
        (fun ppf -> function
          | Some r -> Format.fprintf ppf " waiting(%a)" pp_wait_reason r
          | None -> ())
        p.wait)
    t.pcbs;
  Format.fprintf ppf "@]"
