(** Partition Operating System kernel (second level of the hierarchical
    scheduling scheme, paper Fig. 2).

    Manages the task set τ_m of one partition: process states (eq. (13)),
    release points, blocking and timeouts, and heir selection. Two native
    scheduling policies are provided: the ARINC 653 preemptive
    priority-driven policy of eq. (14)–(15) (an RTOS such as RTEMS) and a
    round-robin policy standing in for a generic non-real-time POS such as
    embedded Linux (paper Sect. 2.5).

    The kernel does not interpret process bodies — the AIR core does — and
    it does not detect deadline violations — the PAL does (Algorithm 3).
    Deadline bookkeeping is delegated through {!hooks} so the PAL's store
    stays authoritative. *)

open Air_sim
open Air_model

type policy =
  | Priority_preemptive
      (** eq. (14): highest priority ready process; FIFO by antiquity among
          equal priorities. Lower numerical value = greater priority. *)
  | Round_robin of { quantum : int }
      (** Fair rotation with a fixed tick quantum; priorities ignored. *)

val pp_policy : Format.formatter -> policy -> unit

type wait_reason =
  | Delay                      (** TIMED_WAIT or a start delay. *)
  | Next_release               (** PERIODIC_WAIT. *)
  | On_semaphore of string
  | On_event of string
  | On_buffer of string
  | On_blackboard of string
  | On_queuing_port of string
  | Suspended

val pp_wait_reason : Format.formatter -> wait_reason -> unit

type hooks = {
  register_deadline : process:int -> Time.t -> unit;
      (** A new absolute deadline for the process' current activation —
          the PAL inserts/updates its store (paper Sect. 5.2). *)
  unregister_deadline : process:int -> unit;
  on_state_change : process:int -> Process.state -> unit;
}

val null_hooks : hooks

type t

val create :
  partition:Ident.Partition_id.t ->
  policy:policy ->
  hooks:hooks ->
  Process.spec array ->
  t

val partition : t -> Ident.Partition_id.t
val policy : t -> policy
val process_count : t -> int
val spec : t -> int -> Process.spec
val state : t -> int -> Process.state
val status : t -> int -> Process.status
(** The S(t) tuple of eq. (12). *)

val wait_reason : t -> int -> wait_reason option
val deadline_time : t -> int -> Time.t
val activations : t -> int -> int

val take_timed_out : t -> int -> bool
(** True iff the process' last wakeup was a timeout expiry; reading clears
    the flag (the APEX layer maps it to a TIMED_OUT return code). *)

(** {1 Process management operations (invoked via APEX)} *)

type op_error =
  | Not_dormant       (** START of a process that is not dormant. *)
  | Already_dormant   (** STOP of a dormant process. *)
  | Not_waiting       (** RESUME of a process that is not suspended. *)
  | Invalid_for_periodic  (** SUSPEND of a periodic process. *)
  | Not_periodic      (** PERIODIC_WAIT from a non-periodic process. *)
  | No_such_process

val pp_op_error : Format.formatter -> op_error -> unit

val start : t -> now:Time.t -> ?delay:Time.t -> int -> (unit, op_error) result
(** START / DELAYED_START: arms the first release (immediately or after
    [delay]); the activation deadline is release point + time capacity. *)

val stop : t -> int -> (unit, op_error) result
(** STOP (or STOP_SELF): dormant, deadline unregistered. *)

val suspend :
  t -> now:Time.t -> ?timeout:Time.t -> int -> (unit, op_error) result

val resume : t -> now:Time.t -> int -> (unit, op_error) result

val set_priority : t -> int -> int -> (unit, op_error) result

val periodic_wait : t -> now:Time.t -> int -> (unit, op_error) result
(** Suspends until the next release point (consecutive release points are
    separated by the period). If that point has already passed — the
    process overran — it becomes ready at the next tick with the deadline
    of the missed release point. *)

val timed_wait : t -> now:Time.t -> int -> Time.t -> (unit, op_error) result

val replenish : t -> now:Time.t -> int -> Time.t -> (unit, op_error) result
(** New deadline = now + budget (paper Fig. 6). *)

val block :
  t -> now:Time.t -> int -> wait_reason -> timeout:Time.t -> unit
(** Used by intrapartition objects and queuing ports. [timeout] is a
    relative delay; {!Time.infinity} blocks indefinitely, and a zero or
    negative timeout still blocks until explicitly woken (the APEX layer is
    responsible for polling semantics). *)

val wake : t -> now:Time.t -> int -> timed_out:bool -> unit
(** Moves a waiting process to ready. No-op on non-waiting processes. *)

val announce_ticks : t -> now:Time.t -> unit
(** Advance the kernel's view of time: wake expired delays and timeouts and
    release periodic activations (registering their deadlines). Called by
    the PAL's surrogate clock-tick announcement with the elapsed ticks
    already folded into [now] (paper Fig. 7). *)

val next_wake : t -> Time.t
(** Earliest instant at which {!announce_ticks} would change any process
    state: the minimum over waiting processes of their delay wake-up,
    next release point, or blocking-wait timeout. {!Time.infinity} when no
    timed wake is pending. Non-destructive — used by the executive to
    compute the next interesting tick for skip-ahead. *)

val has_schedulable : t -> bool
(** Whether any process is ready or running, i.e. whether {!schedule}
    would return [Some _]. Non-destructive quiescence probe. *)

val schedule_idx : t -> now:Time.t -> int
(** Select and dispatch the heir process (eq. (14) or round-robin): the
    previous running process is demoted to ready if preempted, the heir is
    marked running. [-1] when no process is schedulable. While preemption
    is locked, the lock holder remains the heir as long as it is
    schedulable. Allocation-free — the form the per-tick executive uses. *)

val schedule : t -> now:Time.t -> int option
(** {!schedule_idx} with the heir boxed as an option ([None] = no
    schedulable process). *)

(** {1 Preemption locking (ARINC 653 LOCK_PREEMPTION / UNLOCK_PREEMPTION)}

    The running process may lock preemption; until it unlocks (the lock
    nests), no other process of the partition is dispatched. Blocking or
    stopping while holding the lock releases it — ARINC 653 forbids waiting
    with preemption locked, and the kernel recovers rather than deadlock
    the partition. The first scheduling level is unaffected: partition
    windows still end on time (paper Sect. 2.1 — nothing a process does
    may break temporal partitioning). *)

val lock_preemption : t -> process:int -> (int, op_error) result
(** Returns the new lock level. Fails with [Not_dormant] mapped misuse
    ([Invalid_for_periodic] is never used here): only the running process
    may lock; others get [Not_waiting]. *)

val unlock_preemption : t -> process:int -> (int, op_error) result
(** Returns the remaining lock level; [Error Not_waiting] when the caller
    does not hold the lock. *)

val preemption_locked : t -> bool

val running : t -> int option

val stop_all : t -> unit
(** Partition shutdown/restart: every process goes dormant, deadlines are
    unregistered. *)

val ready_set : t -> int list
(** Ready_m(t) of eq. (15): ready or running processes. *)

val waiters_fifo : t -> (wait_reason -> bool) -> int list
(** Waiting processes matching the predicate, in blocking order. *)

val waiters_priority : t -> (wait_reason -> bool) -> int list
(** Same, ordered by current priority (ties by blocking order). *)

val find_by_name : t -> string -> int option

val pp : Format.formatter -> t -> unit
