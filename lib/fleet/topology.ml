open Air

type shape =
  | Ring
  | Grid of { rows : int; cols : int }
  | Mesh

let pp_shape ppf = function
  | Ring -> Format.pp_print_string ppf "ring"
  | Grid { rows; cols } -> Format.fprintf ppf "grid %dx%d" rows cols
  | Mesh -> Format.pp_print_string ppf "mesh"

let port gateway k = gateway ^ string_of_int k

(* Link lists are module-major — every outbound link of module 0, then of
   module 1, … — so the drain order (and with it every arrival instant on
   a shared bus) is a deterministic function of the shape alone. *)
let links ?latency ~gateway ~ingress shape ~n =
  let link ~from_module ~k ~to_module =
    Cluster.link ?latency ~from_module ~from_port:(port gateway k)
      ~to_module ~to_port:ingress ()
  in
  match shape with
  | Ring ->
    if n < 2 then invalid_arg "Topology.links: a ring needs >= 2 modules";
    List.init n (fun i -> link ~from_module:i ~k:0 ~to_module:((i + 1) mod n))
  | Grid { rows; cols } ->
    if rows < 1 || cols < 1 || rows * cols <> n then
      invalid_arg "Topology.links: grid dimensions must multiply to the size";
    List.concat
      (List.init n (fun i ->
           let r = i / cols and c = i mod cols in
           let right =
             if cols < 2 then []
             else [ link ~from_module:i ~k:0
                      ~to_module:((r * cols) + ((c + 1) mod cols)) ]
           in
           let down =
             if rows < 2 then []
             else [ link ~from_module:i ~k:1
                      ~to_module:((((r + 1) mod rows) * cols) + c) ]
           in
           right @ down))
  | Mesh ->
    if n < 4 then invalid_arg "Topology.links: a mesh needs >= 4 modules";
    List.concat
      (List.init n (fun i ->
           [ link ~from_module:i ~k:0 ~to_module:((i + 1) mod n);
             link ~from_module:i ~k:1 ~to_module:((i + (n / 2)) mod n) ]))

let gateway_ports shape ~gateway =
  match shape with
  | Ring -> [ port gateway 0 ]
  | Grid { rows; cols } ->
    (if cols > 1 then [ port gateway 0 ] else [])
    @ (if rows > 1 then [ port gateway 1 ] else [])
  | Mesh -> [ port gateway 0; port gateway 1 ]
