(** Constellation-scale parallel discrete-event execution.

    A [Fleet.t] advances the modules of an {!Air.Cluster} in parallel
    across OCaml domains with a {e conservative} (Chandy–Misra–Bryant
    style) protocol, bit-identically to the sequential {!Air.Cluster.run}:

    {ul
    {- {b Lookahead.} The cluster's minimum link latency [L]
       ({!Air.Cluster.lookahead}) bounds how early a message drained at
       clock [c] can arrive ([c + L]), so between two barriers at [T] and
       [T + W], [W <= L], every delivery is already known at [T] — no
       traffic produced inside the window can land inside it.}
    {- {b Windows.} Each module advances privately through its own
       {!Air_exec.Engine} (adaptive skip-ahead), segmented at its arrival
       instants; a per-tick hook pumps its gateways into the shard's
       mailbox, tagged with the sequential drain position
       [(clock, link, fifo)].}
    {- {b Deterministic merge.} At the barrier the coordinator replays
       all buffered sends through the shared bus in that exact sequential
       order, reproducing bus occupancy, arrival instants and
       serialization order — transfers are totally ordered by
       [(arrival, seq)] — so traces, telemetry, counters, fingerprints
       and fault-campaign verdicts are independent of the domain count.}}

    The protocol needs no explicit null messages: the barrier itself is
    the null message, granting every shard the same horizon. Windows in
    which a shard executes nothing are counted as {e null windows} in
    {!Air_obs.Fleet_stats}. *)

open Air
open Air_sim

type t

val create : ?domains:int -> Cluster.t -> t
(** Wrap a cluster (fresh or already partially run — the fleet continues
    from its clock). [domains] (default 1) is capped at the module count;
    [domains - 1] worker domains are spawned lazily on the first {!run}.
    Raises [Invalid_argument] if some link has zero latency (no
    conservative lookahead window exists) or [domains < 1]. The cluster
    must not be stepped directly between fleet runs (fault injection and
    module inspection are fine — every {!run} return is a barrier). *)

val run : t -> ticks:int -> unit
(** Advance the whole fleet by [ticks] global clock ticks — bit-identical
    to [Cluster.run ~ticks] on the same cluster. Returns at a barrier:
    clock, modules, bus and counters all agree with the sequential run at
    the same instant. *)

val close : t -> unit
(** Join the worker domains. Idempotent; the fleet cannot run again. *)

val cluster : t -> Cluster.t
val domains : t -> int

val lookahead : t -> Time.t
(** The window bound [L] ({!Air.Cluster.lookahead} at creation). *)

val stats : t -> Air_obs.Fleet_stats.t
(** Per-shard progress / null-window / blocked-time counters and the
    fleet summary frame. Read between runs (barriers), not concurrently
    with one. *)

val fingerprint_text : Cluster.t -> string
(** The un-hashed form of {!fingerprint}, one observable per line — diff
    two of these to localize a divergence. *)

val fingerprint : Cluster.t -> string
(** Digest of the full observable state of a cluster — clock, bus
    occupancy and in-flight transfers, and every module's clock, halt
    reason, HM counters, partition modes, event counts, retained trace,
    telemetry frames and causal flow records. A fleet run and a
    sequential run of equivalent clusters yield equal fingerprints at
    equal instants, for any domain count. *)

(** {1 Fault campaigns over fleets} *)

val campaign_target : ?observed:int -> t -> Air_faults.Engine.target
(** The fleet as a campaign target ({!Air_faults.Engine.Driver}):
    injections advance the fleet to the planned tick (a barrier) and
    apply there, link faults strike the shared bus, verdicts are judged
    against module [observed] (default 0). *)

val execute_campaign :
  ?turbo:bool ->
  ?domains:int ->
  ?observed:int ->
  make:(unit -> Cluster.t) ->
  Air_faults.Campaign.spec ->
  Air_faults.Engine.run
(** {!Air_faults.Engine.execute} with fleet targets built from [make]
    (called once for the campaign and once for the fault-free baseline);
    the fleets are closed before returning. Outcomes and fingerprint are
    bit-identical to the sequential cluster campaign for any domain
    count. *)
