(** Constellation topology generator.

    Produces the inter-satellite-link wiring of an [n]-module
    constellation whose modules are clones of one template configuration:
    each module sends through numbered gateway ports ([<gateway>0],
    [<gateway>1], …) and receives every inbound link on one ingress
    port. The template must declare those ports; {!gateway_ports} names
    the ones a shape drains. *)

open Air

type shape =
  | Ring  (** Module [i] → [i+1 mod n] through [<gateway>0] — an in-plane
              LEO ring. *)
  | Grid of { rows : int; cols : int }
      (** Torus: right neighbour through [<gateway>0], down neighbour
          through [<gateway>1] (degenerate dimensions drop that
          direction). [rows * cols] must equal [n]. *)
  | Mesh
      (** ISL mesh: the ring through [<gateway>0] plus a cross-plane
          chord to [i + n/2 mod n] through [<gateway>1]. Needs
          [n >= 4]. *)

val pp_shape : Format.formatter -> shape -> unit

val links :
  ?latency:Air_sim.Time.t ->
  gateway:string ->
  ingress:string ->
  shape ->
  n:int ->
  Cluster.link list
(** The shape's links in module-major order (all outbound links of module
    0, then 1, …), so drain order — and every bus arrival instant — is a
    deterministic function of the shape. [latency] overrides the bus
    default on every generated link. Raises [Invalid_argument] on a
    size/shape mismatch. *)

val gateway_ports : shape -> gateway:string -> string list
(** The outbound gateway port names the shape expects each module to
    declare. *)
