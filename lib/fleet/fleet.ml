open Air
open Air_sim

(* One gateway drain, buffered on the owning shard during a window and
   replayed through the cluster at the barrier. [(clock, link, fifo)] is
   the position the drain would have had in the sequential pump — the
   global replay order. *)
type send = {
  n_clock : Time.t;
  n_link : int;
  n_fifo : int;
  n_payload : bytes;
  n_cid : Air_obs.Causal.id;
}

let send_cmp a b =
  match Stdlib.compare a.n_clock b.n_clock with
  | 0 -> (
    match Stdlib.compare a.n_link b.n_link with
    | 0 -> Stdlib.compare a.n_fifo b.n_fifo
    | c -> c)
  | c -> c

(* Window barrier shared between the coordinator (shard 0, the calling
   domain) and the worker domains (shards 1..D-1). All cross-domain data —
   agendas, outboxes, counters — is written before and read after an
   epoch/pending handshake under [mu], so the OCaml memory model orders
   every access; the per-shard outboxes are the "mutex-guarded mailboxes"
   of the protocol, bounded by construction (a window's sends). *)
type ctl = {
  mu : Mutex.t;
  cv : Condition.t;
  mutable epoch : int;
  mutable w_from : Time.t;
  mutable w_upto : Time.t;
  mutable pending : int;
  mutable stop : bool;
  mutable failed : exn option;
}

type t = {
  cluster : Cluster.t;
  domains : int;
  lookahead : Time.t;
  links : Cluster.link array;
  links_of : (int * Cluster.link) list array;
      (* Per module: its outbound links as (global index, link), in global
         (drain) order. *)
  shard_modules : int array array;
  mutable engines : Air_exec.Engine.t array;
  agendas : Cluster.transfer list array;
      (* Per module, the current window's arrivals in reverse delivery
         order (reversed once at use). *)
  forced : bool array;
      (* Per module: a gateway was found occupied at the barrier (message
         delivered or redelivered into a forwarding gateway), so the first
         tick of the window must execute and drain. *)
  outboxes : send list ref array;  (* Per shard, reverse buffer order. *)
  win_delivered : int array;  (* Per shard, this window — merged then zeroed. *)
  win_dropped : int array;
  stats : Air_obs.Fleet_stats.t;
  mutable ctl : ctl option;
  mutable workers : unit Domain.t list;
  mutable closed : bool;
}

let cluster t = t.cluster
let domains t = t.domains
let lookahead t = t.lookahead
let stats t = t.stats

(* --- Per-module advance ------------------------------------------------- *)

(* Drain module [mi]'s gateways into its shard's outbox, recording the
   sequential drain position [(clock, link, fifo)]. Called from the
   engine's per-tick hook (clock = the module's own clock, which tracks
   the global one) and, for halted modules whose clock froze, explicitly
   with the global instant the sequential pump would have used. *)
let drain_module t si mi ~clock =
  let sys = (Cluster.systems t.cluster).(mi) in
  let sh = Air_obs.Fleet_stats.shard t.stats si in
  let box = t.outboxes.(si) in
  List.iter
    (fun (gidx, (l : Cluster.link)) ->
      let rec pump fifo =
        match System.drain_remote sys ~port:l.from_port with
        | None -> ()
        | Some (payload, cid) ->
          box :=
            { n_clock = clock;
              n_link = gidx;
              n_fifo = fifo;
              n_payload = payload;
              n_cid = cid }
            :: !box;
          sh.sh_sent <- sh.sh_sent + 1;
          pump (fifo + 1)
      in
      pump 0)
    t.links_of.(mi)

let hook t si mi () =
  (* The sequential pump drains after the clock increments: a send made
     while executing tick [k] is drained at clock [k + 1]. *)
  let sys = (Cluster.systems t.cluster).(mi) in
  drain_module t si mi ~clock:(Time.add (System.now sys) 1)

(* Advance module [mi] across the window (from, upto], interleaving its
   private engine with the window's due arrivals exactly as the
   sequential cluster would: execute up to an arrival instant, deliver,
   and force the next tick onto the per-tick path so a message delivered
   into a forwarding gateway is pumped at [arrival+1] — the sequential
   drain instant — even though the module itself may be quiescent. A
   halted module's engine freezes its clock (as per-tick execution does);
   deliveries still land in its ports, and forced drains fall back to the
   explicit pump with the global instant. *)
let run_module t si mi ~from ~upto =
  let eng = t.engines.(mi) in
  let sys = (Cluster.systems t.cluster).(mi) in
  let sh = Air_obs.Fleet_stats.shard t.stats si in
  let cur = ref from in
  let force = ref (if t.forced.(mi) then Some (from + 1) else None) in
  let advance target =
    (match !force with
    | Some f when Time.(f <= target) ->
      sh.sh_forced <- sh.sh_forced + 1;
      if Option.is_some (System.halted sys) then
        drain_module t si mi ~clock:f
      else Air_exec.Engine.advance eng ~ticks:(f - !cur);
      force := None;
      cur := f
    | Some _ | None -> ());
    if Time.(!cur < target) then begin
      Air_exec.Engine.advance eng ~ticks:(target - !cur);
      cur := target
    end
  in
  List.iter
    (fun (tr : Cluster.transfer) ->
      advance tr.arrival;
      (match
         System.deliver_remote ~cid:tr.cid sys ~port:tr.target_port
           tr.payload
       with
      | Ok () ->
        sh.sh_delivered <- sh.sh_delivered + 1;
        t.win_delivered.(si) <- t.win_delivered.(si) + 1
      | Error _ ->
        sh.sh_dropped <- sh.sh_dropped + 1;
        t.win_dropped.(si) <- t.win_dropped.(si) + 1);
      if Time.(tr.arrival < upto) then force := Some (tr.arrival + 1))
    (List.rev t.agendas.(mi));
  t.agendas.(mi) <- [];
  advance upto

let run_shard t si ~from ~upto =
  let sh = Air_obs.Fleet_stats.shard t.stats si in
  let engine_sums () =
    Array.fold_left
      (fun (st, sk) mi ->
        let s = Air_exec.Engine.stats t.engines.(mi) in
        (st + s.Air_exec.Engine.stepped, sk + s.Air_exec.Engine.skipped))
      (0, 0) t.shard_modules.(si)
  in
  let stepped0, skipped0 = engine_sums () in
  let traffic0 = sh.sh_sent + sh.sh_delivered + sh.sh_dropped in
  Array.iter (fun mi -> run_module t si mi ~from ~upto) t.shard_modules.(si);
  let stepped1, skipped1 = engine_sums () in
  sh.sh_stepped <- sh.sh_stepped + (stepped1 - stepped0);
  sh.sh_skipped <- sh.sh_skipped + (skipped1 - skipped0);
  sh.sh_windows <- sh.sh_windows + 1;
  if
    stepped1 = stepped0
    && sh.sh_sent + sh.sh_delivered + sh.sh_dropped = traffic0
  then sh.sh_null_windows <- sh.sh_null_windows + 1

(* --- Barrier work (coordinator only) ------------------------------------ *)

(* Pop the window's incoming traffic off the bus and hand each transfer to
   its target module's agenda; flag modules whose gateways already hold
   messages (delivered or redelivered into a forwarding port since their
   last drain) so the window's first tick pumps them — the sequential
   cluster would drain them at [from + 1]. *)
let distribute t ~upto =
  Array.fill t.forced 0 (Array.length t.forced) false;
  let sys = Cluster.systems t.cluster in
  Array.iter
    (fun (l : Cluster.link) ->
      if System.remote_pending sys.(l.from_module) ~port:l.from_port > 0 then
        t.forced.(l.from_module) <- true)
    t.links;
  List.iter
    (fun (tr : Cluster.transfer) ->
      t.agendas.(tr.target_module) <- tr :: t.agendas.(tr.target_module))
    (Cluster.take_due t.cluster ~upto)

(* Replay every buffered drain through the cluster in the sequential pump
   order — (clock, link, fifo) — reproducing bus occupancy, arrival
   instants and serialization seqs bit for bit, then merge the per-shard
   delivery counters and land the cluster clock on the barrier. *)
let merge t ~upto =
  let sends =
    List.sort send_cmp
      (Array.fold_left
         (fun acc box ->
           let s = !box in
           box := [];
           List.rev_append s acc)
         [] t.outboxes)
  in
  List.iter
    (fun s ->
      Cluster.send_via t.cluster ~at:s.n_clock ~link:s.n_link ~cid:s.n_cid
        s.n_payload)
    sends;
  Air_obs.Fleet_stats.note_replayed t.stats (List.length sends);
  for si = 0 to t.domains - 1 do
    Cluster.account t.cluster ~transferred:t.win_delivered.(si)
      ~dropped:t.win_dropped.(si);
    t.win_delivered.(si) <- 0;
    t.win_dropped.(si) <- 0
  done;
  Cluster.set_clock t.cluster upto;
  Air_obs.Fleet_stats.note_window t.stats

(* --- Domains ------------------------------------------------------------ *)

let worker t ctl si =
  let my_epoch = ref 0 in
  let running = ref true in
  while !running do
    Mutex.lock ctl.mu;
    let t0 = Unix.gettimeofday () in
    while ctl.epoch = !my_epoch && not ctl.stop do
      Condition.wait ctl.cv ctl.mu
    done;
    let sh = Air_obs.Fleet_stats.shard t.stats si in
    sh.sh_blocked_s <- sh.sh_blocked_s +. (Unix.gettimeofday () -. t0);
    if ctl.stop then begin
      Mutex.unlock ctl.mu;
      running := false
    end
    else begin
      my_epoch := ctl.epoch;
      let from = ctl.w_from and upto = ctl.w_upto in
      Mutex.unlock ctl.mu;
      (try run_shard t si ~from ~upto
       with e ->
         Mutex.lock ctl.mu;
         if ctl.failed = None then ctl.failed <- Some e;
         Mutex.unlock ctl.mu);
      Mutex.lock ctl.mu;
      ctl.pending <- ctl.pending - 1;
      if ctl.pending = 0 then Condition.broadcast ctl.cv;
      Mutex.unlock ctl.mu
    end
  done

let ensure_workers t =
  if t.domains > 1 && t.ctl = None then begin
    let ctl =
      { mu = Mutex.create ();
        cv = Condition.create ();
        epoch = 0;
        w_from = 0;
        w_upto = 0;
        pending = 0;
        stop = false;
        failed = None }
    in
    t.ctl <- Some ctl;
    t.workers <-
      List.init (t.domains - 1) (fun i ->
          Domain.spawn (fun () -> worker t ctl (i + 1)))
  end

let close t =
  if not t.closed then begin
    t.closed <- true;
    match t.ctl with
    | None -> ()
    | Some ctl ->
      Mutex.lock ctl.mu;
      ctl.stop <- true;
      Condition.broadcast ctl.cv;
      Mutex.unlock ctl.mu;
      List.iter Domain.join t.workers;
      t.workers <- [];
      t.ctl <- None
  end

(* --- The windowed run --------------------------------------------------- *)

let run t ~ticks =
  if t.closed then invalid_arg "Fleet.run: fleet is closed";
  if ticks > 0 then begin
    ensure_workers t;
    let fin = Time.add (Cluster.now t.cluster) ticks in
    let rec loop from =
      if Time.(from < fin) then begin
        let upto = Time.min fin (Time.add from t.lookahead) in
        distribute t ~upto;
        (match t.ctl with
        | Some ctl ->
          Mutex.lock ctl.mu;
          ctl.w_from <- from;
          ctl.w_upto <- upto;
          ctl.pending <- t.domains - 1;
          ctl.epoch <- ctl.epoch + 1;
          Condition.broadcast ctl.cv;
          Mutex.unlock ctl.mu;
          run_shard t 0 ~from ~upto;
          Mutex.lock ctl.mu;
          let t0 = Unix.gettimeofday () in
          while ctl.pending > 0 do
            Condition.wait ctl.cv ctl.mu
          done;
          let sh0 = Air_obs.Fleet_stats.shard t.stats 0 in
          sh0.sh_blocked_s <-
            sh0.sh_blocked_s +. (Unix.gettimeofday () -. t0);
          let failure = ctl.failed in
          ctl.failed <- None;
          Mutex.unlock ctl.mu;
          (match failure with Some e -> raise e | None -> ())
        | None -> run_shard t 0 ~from ~upto);
        merge t ~upto;
        loop upto
      end
    in
    loop (Cluster.now t.cluster)
  end

let create ?(domains = 1) cluster =
  if domains < 1 then invalid_arg "Fleet.create: domains must be >= 1";
  let systems = Cluster.systems cluster in
  let n = Array.length systems in
  let links = Cluster.links cluster in
  let la = Cluster.lookahead cluster in
  if la < 1 then
    invalid_arg
      "Fleet.create: a zero-latency link leaves no conservative lookahead \
       window";
  let domains = Stdlib.max 1 (Stdlib.min domains n) in
  let links_of = Array.make n [] in
  Array.iteri
    (fun gidx (l : Cluster.link) ->
      links_of.(l.from_module) <- (gidx, l) :: links_of.(l.from_module))
    links;
  Array.iteri (fun i ls -> links_of.(i) <- List.rev ls) links_of;
  let shard_modules =
    Array.init domains (fun si ->
        Array.of_list
          (List.filter (fun mi -> mi mod domains = si) (List.init n Fun.id)))
  in
  let t =
    { cluster;
      domains;
      lookahead = la;
      links;
      links_of;
      shard_modules;
      engines = [||];
      agendas = Array.make n [];
      forced = Array.make n false;
      outboxes = Array.init domains (fun _ -> ref []);
      win_delivered = Array.make domains 0;
      win_dropped = Array.make domains 0;
      stats =
        Air_obs.Fleet_stats.create ~domains
          ~lookahead:(if Time.is_infinite la then -1 else la)
          ~modules_per_shard:(Array.map Array.length shard_modules);
      ctl = None;
      workers = [];
      closed = false }
  in
  t.engines <-
    Array.init n (fun mi ->
        Air_exec.Engine.create
          ~on_tick:(hook t (mi mod domains) mi)
          systems.(mi));
  t

(* --- Fingerprint -------------------------------------------------------- *)

let fingerprint_text cluster =
  let b = Buffer.create 4096 in
  let ppf = Format.formatter_of_buffer b in
  Format.fprintf ppf "clock=%d@." (Cluster.now cluster);
  let st = Cluster.stats cluster in
  Format.fprintf ppf "bus transferred=%d dropped=%d in_flight=%d busy=%d@."
    st.Cluster.transferred st.Cluster.dropped st.Cluster.in_flight
    st.Cluster.bus_busy_until;
  List.iter
    (fun (tr : Cluster.transfer) ->
      Format.fprintf ppf "wire %d/%d -> m%d:%s %s@." tr.arrival tr.seq
        tr.target_module tr.target_port
        (Digest.to_hex (Digest.bytes tr.payload)))
    (Cluster.in_flight_transfers cluster);
  Array.iteri
    (fun i sys ->
      Format.fprintf ppf "module %d now=%d halt=%s hm=%d violations=%d@." i
        (System.now sys)
        (match System.halted sys with None -> "-" | Some r -> r)
        (Hm.error_count (System.hm sys))
        (List.length (System.violations sys));
      List.iter
        (fun pid ->
          Format.fprintf ppf "  mode %a=%a@." Air_model.Ident.Partition_id.pp
            pid Air_model.Partition.pp_mode
            (System.partition_mode sys pid))
        (System.partition_ids sys);
      List.iter
        (fun (k, n) -> Format.fprintf ppf "  event %s=%d@." k n)
        (System.event_counts sys);
      List.iter
        (fun (time, ev) ->
          Format.fprintf ppf "  trace %d %a@." time Air_model.Event.pp ev)
        (Air_sim.Trace.to_list (System.trace sys));
      Format.fprintf ppf "  telemetry %s@."
        (Digest.to_hex
           (Digest.string
              (Air_obs.Telemetry.to_json (System.telemetry_frames sys))));
      List.iter
        (fun (e : Air_obs.Causal.entry) ->
          Format.fprintf ppf "  flow %d %s t=%d track=%d@." e.Air_obs.Causal.id
            (match e.Air_obs.Causal.kind with
            | Air_obs.Causal.Send -> "send"
            | Air_obs.Causal.Receive -> "receive"
            | Air_obs.Causal.Forward -> "forward"
            | Air_obs.Causal.Perturb p -> Air_obs.Causal.perturbation_label p)
            e.Air_obs.Causal.time e.Air_obs.Causal.track)
        (System.flow_entries sys))
    (Cluster.systems cluster);
  Format.pp_print_flush ppf ();
  Buffer.contents b

let fingerprint cluster = Digest.to_hex (Digest.string (fingerprint_text cluster))

(* --- Campaigns over fleets ---------------------------------------------- *)

let campaign_target ?(observed = 0) t =
  Air_faults.Engine.Driver
    { Air_faults.Engine.d_system = (Cluster.systems t.cluster).(observed);
      d_advance = (fun ticks -> run t ~ticks);
      d_link_fault =
        (fun f ->
          if Cluster.inject_bus_fault t.cluster f then
            Some (Cluster.last_perturbed t.cluster)
          else None) }

let execute_campaign ?turbo ?(domains = 1) ?(observed = 0) ~make spec =
  let fleets = ref [] in
  let mk () =
    let fleet = create ~domains (make ()) in
    fleets := fleet :: !fleets;
    campaign_target ~observed fleet
  in
  let result = Air_faults.Engine.execute ?turbo ~make:mk spec in
  List.iter close !fleets;
  result
