open Air_sim
open Air

(* The next *interesting* tick of a module: the earliest future instant at
   which per-tick execution could do anything beyond advancing the clock.
   Everything the per-tick executive reacts to is covered by three
   sources:

   - the lane's preemption table ({!Air.Lane.next_preemption_tick}): the
     next context switch, MTF boundary (telemetry frame close + pending
     mode-based schedule switch + change actions) or window edge — all
     preemption-point entries, and entry 0 coincides with the frame
     boundary;
   - the active partitions' own pending events
     ({!Air.System.next_partition_event}): a blocked process' wake,
     timeout or periodic release, or the tick after the earliest PAL
     deadline;
   - the caller's horizon [until] (end of run, next fault injection, next
     watch refresh), which bounds the span externally.

   Inactive partitions need no source of their own: they are not driven
   per-tick, and their next involvement is their next dispatch — a
   preemption-table entry. *)

let next_interesting system ~until =
  let lane_next = Lane.next_preemption_tick (System.lane system) in
  Time.min until (Time.min lane_next (System.next_partition_event system))

(* Exclusive upper bound on the span a caller with [remaining] budget may
   skip: one past the last budgeted tick. Saturates at {!Time.infinity}
   instead of wrapping when [now + remaining] approaches [max_int] — with
   [Time.infinity = max_int], the naive [now + remaining + 1] overflows to
   a negative bound and would stall (or corrupt) the skip computation. *)
let horizon ~now ~remaining =
  if remaining >= Time.infinity - now then Time.infinity
  else now + remaining + 1

(* Whether the instants strictly between now and [next] can be skipped:
   nothing is due in the open interval, and the module is quiescent (no
   schedulable process, no jitter bookkeeping, no partition initializing
   on a held core, and no contention stall debt left to serve — a
   partition in interference slowdown is burning real window ticks, so
   its span is interesting and must run per-tick). *)
let span_quiet system = System.quiescent system
