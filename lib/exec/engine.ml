open Air

type stats = {
  mutable stepped : int;
  mutable skipped : int;
}

type t = {
  system : System.t;
  skip_ahead : bool;
  stats : stats;
}

let create ?(skip_ahead = true) system =
  { system; skip_ahead; stats = { stepped = 0; skipped = 0 } }

let system t = t.system
let stats t = t.stats
let simulated t = t.stats.stepped + t.stats.skipped

(* Advance the module by [ticks] clock ticks, observationally identically
   to [System.run ~ticks]: every interesting tick is executed through the
   per-tick path, and each provably-quiet span in between collapses into
   one O(1) batch clock update. A halted module freezes the clock in both
   modes, so the remaining budget is simply dropped. *)
let advance t ~ticks =
  if ticks > 0 then
    if not t.skip_ahead then begin
      System.run t.system ~ticks;
      t.stats.stepped <- t.stats.stepped + ticks
    end
    else begin
      let remaining = ref ticks in
      let halted () = Option.is_some (System.halted t.system) in
      while !remaining > 0 && not (halted ()) do
        (* The tick at hand is (or may be) interesting: execute it. *)
        System.step t.system;
        decr remaining;
        t.stats.stepped <- t.stats.stepped + 1;
        (* Collapse the quiet span up to (exclusive) the next interesting
           tick, bounded by the caller's budget. *)
        if !remaining > 0 && (not (halted ())) && System.quiescent t.system
        then begin
          let now = Lane.ticks (System.lane t.system) in
          let until = now + !remaining + 1 in
          let next = Clock.next_interesting t.system ~until in
          let span = Stdlib.min (next - 1 - now) !remaining in
          if span > 0 then begin
            System.skip t.system ~ticks:span;
            remaining := !remaining - span;
            t.stats.skipped <- t.stats.skipped + span
          end
        end
      done
    end

let run_mtfs t n =
  for _ = 1 to n do
    let pmk = System.pmk t.system in
    let current = Pmk.schedule pmk (Pmk.current_schedule pmk) in
    let mtf = current.Air_model.Schedule.mtf in
    let executed = Pmk.ticks pmk - Pmk.last_schedule_switch pmk + 1 in
    let into = ((executed mod mtf) + mtf) mod mtf in
    advance t ~ticks:(mtf - into)
  done
