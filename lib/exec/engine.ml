open Air

type mode = Per_tick | Skip | Adaptive

type stats = {
  mutable stepped : int;
  mutable skipped : int;
  mutable probes : int;
}

type t = {
  system : System.t;
  mode : mode;
  stats : stats;
  (* Adaptive state: [density] is a fixed-point (scale 256) EWMA of how
     "interesting" recent ticks were — 256 means every evaluated tick did
     work or could not be skipped, 0 means long quiet spans. While the
     estimate sits above [dense_threshold] the engine stops probing
     [Clock.next_interesting] and runs blind per-tick batches of [blind]
     ticks (doubling up to [blind_max]), so a dense workload pays the
     probe on a vanishing fraction of ticks. *)
  mutable density : int;
  mutable blind : int;
  (* Consecutive quiescent ticks seen while the estimate is dense — two in
     a row usually announce a real idle span rather than a one-tick gap,
     and trigger a (rate-limited) probe even before the estimate decays. *)
  mutable streak : int;
  (* The previous iteration ran a blind batch: if the module is quiescent
     right after one, the dense phase ended inside the batch (overshoot)
     and a probe — amortized by the batch — re-engages skipping at once. *)
  mutable just_batched : bool;
  on_tick : (unit -> unit) option;
      (* Fired after every tick executed through the per-tick path (and
         never across a skipped span, which is quiescent by proof): the
         fleet engine hangs its gateway pump here so cross-module sends
         are observed at exactly the tick that produced them. *)
  profiler : Profiler.t option;
      (* Null-object discipline: every instrumented operation matches on
         this once; [None] takes the original uninstrumented path, so an
         unprofiled engine pays a single branch per operation and no clock
         reads. *)
}

let scale = 256
let dense_threshold = 192
let blind_init = 16
let blind_max = 4096

let create ?profiler ?on_tick ?skip_ahead ?mode system =
  let mode =
    match (mode, skip_ahead) with
    | Some m, _ -> m
    | None, Some false -> Per_tick
    | None, (Some true | None) -> Adaptive
  in
  { system;
    mode;
    stats = { stepped = 0; skipped = 0; probes = 0 };
    density = 0;
    blind = blind_init;
    streak = 0;
    just_batched = false;
    on_tick;
    profiler }

let system t = t.system
let mode t = t.mode
let stats t = t.stats
let profiler t = t.profiler
let simulated t = t.stats.stepped + t.stats.skipped
let halted t = Option.is_some (System.halted t.system)

(* Probe for a quiet span up to the budget horizon and collapse it with
   one O(1) batch clock update. Returns the number of ticks skipped (0
   when the very next tick is already interesting). The caller has
   established quiescence. *)
let probe_raw t ~remaining =
  t.stats.probes <- t.stats.probes + 1;
  let now = Lane.ticks (System.lane t.system) in
  let until = Clock.horizon ~now ~remaining in
  let next = Clock.next_interesting t.system ~until in
  let span = Stdlib.min (next - 1 - now) remaining in
  if span > 0 then begin
    System.skip t.system ~ticks:span;
    t.stats.skipped <- t.stats.skipped + span;
    span
  end
  else 0

let probe t ~remaining =
  match t.profiler with
  | None -> probe_raw t ~remaining
  | Some p ->
    let t0 = Profiler.timestamp () in
    let skipped = probe_raw t ~remaining in
    Profiler.note_probe p ~skipped ~seconds:(Profiler.timestamp () -. t0);
    skipped

(* One executed tick, plus the per-tick observer when one is hooked. *)
let step_raw t =
  match t.on_tick with
  | None -> System.step t.system
  | Some f ->
    System.step t.system;
    f ()

(* [n] executed ticks. Without an observer this is [System.run] — the
   reference path; with one, the same per-tick loop with the hook fired
   after each step, so hooked and unhooked advances execute the module
   identically. *)
let run_raw t ~ticks =
  match t.on_tick with
  | None -> System.run t.system ~ticks
  | Some f ->
    for _ = 1 to ticks do
      System.step t.system;
      f ()
    done

(* One tick through the per-tick path, attributed to the step bucket. *)
let step_one t =
  match t.profiler with
  | None -> step_raw t
  | Some p ->
    let t0 = Profiler.timestamp () in
    step_raw t;
    Profiler.note_step p ~seconds:(Profiler.timestamp () -. t0)

(* [n] ticks through [run_raw] (blind batch or a whole Per_tick-mode
   advance), attributed to the batch bucket. *)
let run_batch t ~ticks =
  match t.profiler with
  | None -> run_raw t ~ticks
  | Some p ->
    let t0 = Profiler.timestamp () in
    run_raw t ~ticks;
    Profiler.note_batch p ~ticks ~seconds:(Profiler.timestamp () -. t0)

let sample_density t =
  match t.profiler with
  | None -> ()
  | Some p -> Profiler.note_density p t.density

(* Always-skip: execute every interesting tick through the per-tick path
   and probe for a quiet span after each one. Maximal skipping, but each
   executed tick pays the probe — the dense-workload regression the
   adaptive mode exists to avoid. *)
let advance_skip t ~ticks =
  let remaining = ref ticks in
  while !remaining > 0 && not (halted t) do
    step_one t;
    decr remaining;
    t.stats.stepped <- t.stats.stepped + 1;
    if !remaining > 0 && (not (halted t)) && System.quiescent t.system then
      remaining := !remaining - probe t ~remaining:!remaining
  done

(* Adaptive: keep an estimate of interesting-tick density and only pay
   the probe while the workload looks sparse.

   - a successful skip of [n] ticks is ground truth that probing pays —
     the estimate is set directly to 256 / (1 + n) (long quiet spans
     drive it towards 0) and the blind batch size resets;
   - a quiescent tick whose probe found nothing, and every non-quiescent
     tick, raise the estimate EWMA-style (d += (256 - d) / 8): the
     module is paying probes or quiescence checks for nothing;
   - once the estimate crosses [dense_threshold] on a non-quiescent tick
     the engine runs blind per-tick batches with no probes and no
     quiescence checks, doubling from [blind_init] up to [blind_max], so
     a long dense phase asymptotically pays ~zero skip-ahead overhead
     while a phase change is still noticed within [blind] ticks.

   While dense, a single quiescent tick only decays the estimate
   (d -= d/8) — one-tick gaps are common inside dense phases and probing
   them was the BENCH_5 regression. Two quiescent ticks in a row,
   however, usually announce a real idle span (a dense phase just
   ended): the second one pays a probe immediately instead of waiting
   ~15 decay ticks, so the sparse-workload win survives dense phases.
   The streak reset after each probe rate-limits re-probing when the
   module idles densely (something due every tick) to one probe per two
   quiescent ticks at worst, and the estimate saturates dense again
   after the first empty probe anyway.

   Blind batches reuse [System.run] — exactly the per-tick reference
   path — and skips are guarded by the same quiescence proof as
   always-skip mode, so traces, telemetry, metrics and campaign
   fingerprints are bit-identical across all three modes. *)
let note_skip t ~skipped =
  if skipped > 0 then begin
    t.density <- scale / (1 + skipped);
    t.blind <- blind_init
  end
  else t.density <- t.density + ((scale - t.density) / 8)

let advance_adaptive t ~ticks =
  let remaining = ref ticks in
  while !remaining > 0 && not (halted t) do
    step_one t;
    decr remaining;
    t.stats.stepped <- t.stats.stepped + 1;
    if !remaining > 0 && not (halted t) then begin
      if System.quiescent t.system then begin
        let overshot = t.just_batched in
        t.just_batched <- false;
        if overshot || t.density < dense_threshold then begin
          t.streak <- 0;
          let skipped = probe t ~remaining:!remaining in
          remaining := !remaining - skipped;
          note_skip t ~skipped;
          sample_density t
        end
        else begin
          t.streak <- t.streak + 1;
          if t.streak >= 2 then begin
            t.streak <- 0;
            let skipped = probe t ~remaining:!remaining in
            remaining := !remaining - skipped;
            note_skip t ~skipped;
            sample_density t
          end
          else t.density <- t.density - (t.density / 8)
        end
      end
      else begin
        t.streak <- 0;
        t.just_batched <- false;
        t.density <- t.density + ((scale - t.density) / 8);
        if t.density >= dense_threshold then begin
          sample_density t;
          let n = Stdlib.min !remaining t.blind in
          run_batch t ~ticks:n;
          remaining := !remaining - n;
          t.stats.stepped <- t.stats.stepped + n;
          if t.blind < blind_max then t.blind <- t.blind * 2;
          t.just_batched <- true
        end
      end
    end
  done

(* Advance the module by [ticks] clock ticks, observationally identically
   to [System.run ~ticks]: every interesting tick is executed through the
   per-tick path, and each provably-quiet span in between collapses into
   one O(1) batch clock update. A halted module freezes the clock in all
   modes, so the remaining budget is simply dropped. *)
let advance t ~ticks =
  if ticks > 0 then
    match t.mode with
    | Per_tick ->
      run_batch t ~ticks;
      t.stats.stepped <- t.stats.stepped + ticks
    | Skip -> advance_skip t ~ticks
    | Adaptive -> advance_adaptive t ~ticks

let run_mtfs t n =
  for _ = 1 to n do
    let pmk = System.pmk t.system in
    let current = Pmk.schedule pmk (Pmk.current_schedule pmk) in
    let mtf = current.Air_model.Schedule.mtf in
    let executed = Pmk.ticks pmk - Pmk.last_schedule_switch pmk + 1 in
    let into = ((executed mod mtf) + mtf) mod mtf in
    if into = 0 then begin
      (* Mirror of [System.run_mtfs]: at a boundary a pending mode-based
         switch takes effect on the next tick, possibly changing the MTF —
         execute the boundary tick first, then finish the frame under the
         schedule actually running. *)
      advance t ~ticks:1;
      let current = Pmk.schedule pmk (Pmk.current_schedule pmk) in
      let mtf = current.Air_model.Schedule.mtf in
      let executed = Pmk.ticks pmk - Pmk.last_schedule_switch pmk + 1 in
      let into = ((executed mod mtf) + mtf) mod mtf in
      if into > 0 then advance t ~ticks:(mtf - into)
    end
    else advance t ~ticks:(mtf - into)
  done
