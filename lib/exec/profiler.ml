(* Self-profiler for the skip-ahead executive: attributes wall-clock time
   and tick counts to the engine's execution mechanisms — individually
   stepped ticks, blind per-tick batches, collapsed quiet spans and the
   probes that find them — and keeps the recent trajectory of the adaptive
   density estimate. Purely observational: the engine behaves identically
   with or without one attached (the property tests pin bit-identical
   traces), it just pays two clock reads around each instrumented
   operation while profiling. *)

type t = {
  (* Ticks executed one at a time through the per-tick path, with engine
     bookkeeping (quiescence check, probe decision) between them. *)
  mutable step_ticks : int;
  mutable step_calls : int;
  mutable step_seconds : float;
  (* Ticks executed through [System.run] with no engine bookkeeping in
     between: adaptive blind batches, and whole Per_tick-mode advances. *)
  mutable batch_ticks : int;
  mutable batch_calls : int;
  mutable batch_seconds : float;
  (* Ticks collapsed into O(1) batch clock updates by successful probes. *)
  mutable skip_ticks : int;
  mutable skip_spans : int;
  (* Probe accounting: a probe that skips nothing was pure overhead. *)
  mutable probes_successful : int;
  mutable probes_wasted : int;
  mutable probe_seconds : float;
  mutable wasted_probe_seconds : float;
  (* Density-estimate trajectory: most recent [capacity] samples, taken
     at probe outcomes and blind-batch launches. *)
  trajectory : int array;
  mutable traj_head : int;
  mutable traj_total : int;
}

let create ?(trajectory_capacity = 1024) () =
  if trajectory_capacity <= 0 then
    invalid_arg "Profiler.create: capacity must be positive";
  { step_ticks = 0;
    step_calls = 0;
    step_seconds = 0.0;
    batch_ticks = 0;
    batch_calls = 0;
    batch_seconds = 0.0;
    skip_ticks = 0;
    skip_spans = 0;
    probes_successful = 0;
    probes_wasted = 0;
    probe_seconds = 0.0;
    wasted_probe_seconds = 0.0;
    trajectory = Array.make trajectory_capacity 0;
    traj_head = 0;
    traj_total = 0 }

let timestamp () = Unix.gettimeofday ()

let note_step t ~seconds =
  t.step_ticks <- t.step_ticks + 1;
  t.step_calls <- t.step_calls + 1;
  t.step_seconds <- t.step_seconds +. seconds

let note_batch t ~ticks ~seconds =
  t.batch_ticks <- t.batch_ticks + ticks;
  t.batch_calls <- t.batch_calls + 1;
  t.batch_seconds <- t.batch_seconds +. seconds

let note_probe t ~skipped ~seconds =
  t.probe_seconds <- t.probe_seconds +. seconds;
  if skipped > 0 then begin
    t.probes_successful <- t.probes_successful + 1;
    t.skip_spans <- t.skip_spans + 1;
    t.skip_ticks <- t.skip_ticks + skipped
  end
  else begin
    t.probes_wasted <- t.probes_wasted + 1;
    t.wasted_probe_seconds <- t.wasted_probe_seconds +. seconds
  end

let note_density t density =
  t.trajectory.(t.traj_head) <- density;
  t.traj_head <- (t.traj_head + 1) mod Array.length t.trajectory;
  t.traj_total <- t.traj_total + 1

let simulated t = t.step_ticks + t.batch_ticks + t.skip_ticks
let probes t = t.probes_successful + t.probes_wasted

let density_trajectory t =
  let cap = Array.length t.trajectory in
  let n = Stdlib.min t.traj_total cap in
  let start = (t.traj_head - n + cap) mod cap in
  List.init n (fun i -> t.trajectory.((start + i) mod cap))

(* --- Reports ------------------------------------------------------------- *)

let ms s = s *. 1e3

let ns_per s ticks =
  if ticks = 0 then 0.0 else s *. 1e9 /. float_of_int ticks

let to_text t =
  let buf = Buffer.create 512 in
  let line fmt =
    Printf.ksprintf (fun s -> Buffer.add_string buf (s ^ "\n")) fmt
  in
  let wall =
    t.step_seconds +. t.batch_seconds +. t.probe_seconds
  in
  line "engine profile: %d simulated ticks, %.3f ms instrumented wall clock"
    (simulated t) (ms wall);
  line "  per-tick steps  : %8d ticks            %10.3f ms  (%6.1f ns/tick)"
    t.step_ticks (ms t.step_seconds)
    (ns_per t.step_seconds t.step_ticks);
  line "  blind batches   : %8d ticks %6d runs %10.3f ms  (%6.1f ns/tick)"
    t.batch_ticks t.batch_calls (ms t.batch_seconds)
    (ns_per t.batch_seconds t.batch_ticks);
  line "  skipped spans   : %8d ticks %6d spans          -  (O(1) each)"
    t.skip_ticks t.skip_spans;
  line "  probes          : %8d total %6d paid off, %d wasted (%.3f ms, %.3f ms wasted)"
    (probes t) t.probes_successful t.probes_wasted (ms t.probe_seconds)
    (ms t.wasted_probe_seconds);
  (match density_trajectory t with
  | [] -> line "  density estimate: no samples (workload never left probing)"
  | samples ->
    let mn = List.fold_left Stdlib.min 256 samples in
    let mx = List.fold_left Stdlib.max 0 samples in
    let last = List.nth samples (List.length samples - 1) in
    line "  density estimate: last=%d/256 min=%d max=%d over %d samples%s"
      last mn mx t.traj_total
      (if t.traj_total > List.length samples then " (recent window)" else ""));
  Buffer.contents buf

let to_json t =
  let buf = Buffer.create 512 in
  Buffer.add_string buf
    (Printf.sprintf
       "{\"schema\":\"air-profile/1\",\"simulated\":%d,\"buckets\":{"
       (simulated t));
  Buffer.add_string buf
    (Printf.sprintf
       "\"step\":{\"ticks\":%d,\"calls\":%d,\"seconds\":%.9f},"
       t.step_ticks t.step_calls t.step_seconds);
  Buffer.add_string buf
    (Printf.sprintf
       "\"batch\":{\"ticks\":%d,\"runs\":%d,\"seconds\":%.9f},"
       t.batch_ticks t.batch_calls t.batch_seconds);
  Buffer.add_string buf
    (Printf.sprintf "\"skip\":{\"ticks\":%d,\"spans\":%d}},"
       t.skip_ticks t.skip_spans);
  Buffer.add_string buf
    (Printf.sprintf
       "\"probes\":{\"total\":%d,\"successful\":%d,\"wasted\":%d,\
        \"seconds\":%.9f,\"wasted_seconds\":%.9f},"
       (probes t) t.probes_successful t.probes_wasted t.probe_seconds
       t.wasted_probe_seconds);
  Buffer.add_string buf
    (Printf.sprintf "\"density\":{\"samples\":%d,\"trajectory\":[%s]}}"
       t.traj_total
       (String.concat ","
          (List.map string_of_int (density_trajectory t))));
  Buffer.contents buf
