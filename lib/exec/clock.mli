(** Next-event computation for the skip-ahead executive.

    The per-tick executive ({!Air.System.step}) only ever reacts at a
    bounded set of future instants; [Clock] computes the earliest of them
    so {!Engine} can advance the module across the quiet span in between
    with one O(1) batch update ({!Air.System.skip}) instead of one call
    per tick. *)

open Air_sim

val next_interesting : Air.System.t -> until:Time.t -> Time.t
(** The earliest future tick at which per-tick execution could do anything
    beyond advancing the clock: the minimum of the lane's next preemption
    instant (context switches, window edges, MTF boundaries — which carry
    telemetry frame closes, mode-based schedule switches and change
    actions), the active partitions' pending events (blocked-process
    wake/timeout/release instants, the tick after the earliest PAL
    deadline) and the caller's horizon [until] (end of run, next fault
    injection, next watch refresh). *)

val horizon : now:Time.t -> remaining:int -> Time.t
(** The exclusive skip bound [now + remaining + 1], saturating at
    {!Air_sim.Time.infinity} instead of overflowing when the sum would
    exceed [max_int] (e.g. a watch running with an effectively unbounded
    budget near the end of the representable range). *)

val span_quiet : Air.System.t -> bool
(** Whether the instants strictly before the next interesting tick can be
    skipped — an alias for {!Air.System.quiescent}. A partition serving
    contention stall debt (interference slowdown) is {e not} quiescent:
    its extra consumed window ticks execute through the per-tick path, so
    skip-ahead never jumps over a throttled span. *)
