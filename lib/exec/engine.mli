(** The skip-ahead executive: advances a module to the next interesting
    tick in O(1) across quiet spans, bit-identically to per-tick
    execution.

    The per-tick executive pays one {!Air.System.step} per clock tick even
    when nothing can happen — no schedulable process, no pending wake or
    deadline, no window edge. [Engine] executes every interesting tick
    through the unchanged per-tick path and collapses each provably-quiet
    span in between into a single batch clock update
    ({!Air.System.skip}), so sparse workloads advance at the cost of their
    event density rather than their horizon. Event traces, telemetry
    frames, metrics and campaign verdicts are identical in both modes
    (the property tests in [test/test_exec.ml] pin this). *)

type stats = {
  mutable stepped : int;  (** Ticks executed through the per-tick path. *)
  mutable skipped : int;  (** Ticks collapsed into batch clock updates. *)
}

type t

val create : ?skip_ahead:bool -> Air.System.t -> t
(** [skip_ahead] defaults to [true]; [false] degenerates to per-tick
    {!Air.System.run} (the reference behaviour, kept for differential
    testing and [--no-skip]). *)

val system : t -> Air.System.t
val stats : t -> stats

val simulated : t -> int
(** Total simulated ticks advanced so far ([stepped + skipped]). *)

val advance : t -> ticks:int -> unit
(** Advance simulated time by [ticks], observationally identically to
    [System.run ~ticks]. A halted module freezes the clock, as per-tick
    execution does. *)

val run_mtfs : t -> int -> unit
(** Advance by whole major time frames of the schedule current at each
    boundary (mirror of {!Air.System.run_mtfs}). *)
