(** The skip-ahead executive: advances a module to the next interesting
    tick in O(1) across quiet spans, bit-identically to per-tick
    execution.

    The per-tick executive pays one {!Air.System.step} per clock tick even
    when nothing can happen — no schedulable process, no pending wake or
    deadline, no window edge. [Engine] executes every interesting tick
    through the unchanged per-tick path and collapses each provably-quiet
    span in between into a single batch clock update
    ({!Air.System.skip}), so sparse workloads advance at the cost of their
    event density rather than their horizon.

    Always-on skipping has a dual cost: on a {e dense} workload (some
    process runnable nearly every tick) the per-tick probe of
    {!Clock.next_interesting} buys nothing and is pure overhead. The
    default {!Adaptive} mode tracks an EWMA estimate of interesting-tick
    density, probes only while the workload looks sparse, and runs blind
    per-tick batches (doubling up to a cap) while it is dense — so dense
    workloads run at within-noise of plain per-tick execution while
    sparse workloads keep the full skip-ahead win. Event traces,
    telemetry frames, metrics and campaign verdicts are identical in all
    modes (the property tests in [test/test_exec.ml] pin this). *)

(** Execution strategy. *)
type mode =
  | Per_tick  (** Plain {!Air.System.run} — the reference behaviour. *)
  | Skip
      (** Probe for a quiet span after every executed tick. Maximal
          skipping; each executed tick pays the probe. *)
  | Adaptive
      (** Density-gated skipping: probe while sparse, blind per-tick
          batches while dense. Never slower than [Per_tick] by more than
          noise, never misses a skippable span by more than the current
          blind batch. The default. *)

type stats = {
  mutable stepped : int;  (** Ticks executed through the per-tick path. *)
  mutable skipped : int;  (** Ticks collapsed into batch clock updates. *)
  mutable probes : int;
      (** [Clock.next_interesting] evaluations — the skip-ahead overhead
          measure the adaptive mode minimizes on dense workloads. *)
}

type t

val create :
  ?profiler:Profiler.t ->
  ?on_tick:(unit -> unit) ->
  ?skip_ahead:bool ->
  ?mode:mode ->
  Air.System.t ->
  t
(** [mode] selects the strategy and wins over [skip_ahead] when both are
    given. Without [mode], [~skip_ahead:false] maps to {!Per_tick} and
    [~skip_ahead:true] (or nothing) to {!Adaptive}. [profiler], when
    given, receives wall-clock and tick attribution for every engine
    operation ({!Profiler}); without one the engine takes the original
    uninstrumented paths and reads no clocks. [on_tick] is fired after
    {e every} executed tick — including inside blind batches — and never
    across a skipped span (skips are quiescence-proved, so nothing the
    observer could see happens in them); the fleet engine hangs its
    per-module gateway pump here. *)

val system : t -> Air.System.t
val mode : t -> mode
val stats : t -> stats
val profiler : t -> Profiler.t option

val simulated : t -> int
(** Total simulated ticks advanced so far ([stepped + skipped]). *)

val advance : t -> ticks:int -> unit
(** Advance simulated time by [ticks], observationally identically to
    [System.run ~ticks]. A halted module freezes the clock, as per-tick
    execution does. *)

val run_mtfs : t -> int -> unit
(** Advance by whole major time frames of the schedule current at each
    boundary (mirror of {!Air.System.run_mtfs}, including its handling of
    a different-MTF schedule switch at the boundary). *)
