(** Self-profiler for the skip-ahead executive.

    Attached to an {!Engine} at creation ([Engine.create ?profiler]), it
    attributes wall-clock time and tick counts to the engine's execution
    mechanisms:

    - {e per-tick steps} — ticks executed one at a time with engine
      bookkeeping (quiescence check, probe decision) between them;
    - {e blind batches} — ticks executed through [System.run] with no
      bookkeeping in between (adaptive dense phases, and whole
      [Per_tick]-mode advances);
    - {e skipped spans} — ticks collapsed into O(1) batch clock updates
      by successful probes;
    - {e probes} — [Clock.next_interesting] evaluations, split into those
      that paid off (a span was skipped) and those that were pure
      overhead ({e wasted});

    plus the recent trajectory of the adaptive density estimate (0–256,
    sampled at probe outcomes and batch launches). The step, batch and
    skip tick buckets partition the simulated horizon exactly:
    [step.ticks + batch.ticks + skip.ticks = simulated] — the invariant
    the [profile-smoke] CI check pins.

    Profiling is purely observational: traces, telemetry, metrics and
    fingerprints are bit-identical with and without a profiler; the only
    cost is two wall-clock reads around each instrumented operation. *)

type t

val create : ?trajectory_capacity:int -> unit -> t
(** [trajectory_capacity] (default 1024, positive) bounds the retained
    density-sample ring; older samples are evicted, the sample count keeps
    counting. *)

val timestamp : unit -> float
(** Wall-clock seconds ([Unix.gettimeofday]) — the engine brackets
    instrumented operations with it. *)

(** {1 Recording} (called by {!Engine}; O(1), float adds only) *)

val note_step : t -> seconds:float -> unit
val note_batch : t -> ticks:int -> seconds:float -> unit

val note_probe : t -> skipped:int -> seconds:float -> unit
(** [skipped > 0] counts a successful probe and credits the span to the
    skip bucket; [skipped = 0] counts a wasted probe. *)

val note_density : t -> int -> unit

(** {1 Reading} *)

val simulated : t -> int
(** [step + batch + skip] ticks — equals the engine's simulated total. *)

val probes : t -> int
val density_trajectory : t -> int list
(** Retained density samples, oldest first. *)

val to_text : t -> string
(** Human-readable bucket report with ns/tick rates. *)

val to_json : t -> string
(** One-line JSON document, schema ["air-profile/1"]: [simulated], the
    [buckets] object ([step]/[batch]/[skip] with tick counts, call counts
    and wall seconds), [probes] (total/successful/wasted + seconds) and
    [density] (sample count + retained trajectory). *)
