(* Temporal-invariant replay checker: event-driven reconstruction of the
   scheduling state (current schedule, last switch, active partition) with
   tick-exact window conformance over each constant segment. *)

open Air_sim
open Air_model
open Ident

type violation =
  | Outside_window of {
      time : Time.t;
      partition : Partition_id.t;
      expected : Partition_id.t option;
    }
  | Mid_mtf_switch of {
      time : Time.t;
      from : Schedule_id.t;
      to_ : Schedule_id.t;
      offset : Time.t;
    }
  | Change_action_unexpected of { time : Time.t; partition : Partition_id.t }
  | Change_action_missing of { time : Time.t; partition : Partition_id.t }
  | Unmatched_deadline_miss of { time : Time.t; process : Process_id.t }
  | Receive_without_message of { time : Time.t; port : Port_name.t }
  | Sampling_read_before_write of { time : Time.t; port : Port_name.t }

let pp_violation ppf = function
  | Outside_window { time; partition; expected } ->
    Format.fprintf ppf
      "[%a] %a ran outside its window (scheduling table grants %a)" Time.pp
      time Partition_id.pp partition
      (fun ppf -> function
        | None -> Format.pp_print_string ppf "nobody"
        | Some p -> Partition_id.pp ppf p)
      expected
  | Mid_mtf_switch { time; from; to_; offset } ->
    Format.fprintf ppf
      "[%a] schedule switch %a → %a %a ticks into the major time frame"
      Time.pp time Schedule_id.pp from Schedule_id.pp to_ Time.pp offset
  | Change_action_unexpected { time; partition } ->
    Format.fprintf ppf
      "[%a] change action delivered to %a with none armed" Time.pp time
      Partition_id.pp partition
  | Change_action_missing { time; partition } ->
    Format.fprintf ppf
      "[%a] %a dispatched without its armed schedule-change action" Time.pp
      time Partition_id.pp partition
  | Unmatched_deadline_miss { time; process } ->
    Format.fprintf ppf
      "[%a] deadline miss of %a never reached the health monitor" Time.pp
      time Process_id.pp process
  | Receive_without_message { time; port } ->
    Format.fprintf ppf
      "[%a] queuing port %s handed out a message never delivered to it"
      Time.pp time port
  | Sampling_read_before_write { time; port } ->
    Format.fprintf ppf "[%a] sampling port %s read before any write" Time.pp
      time port

(* --- IPC bookkeeping ----------------------------------------------------- *)

type ipc = {
  (* Destination queuing port → messages delivered minus received. *)
  balance : (Port_name.t, int) Hashtbl.t;
  (* Destination port → time of its last tentative credit (to attribute a
     same-tick overflow to the send that caused it). *)
  last_credit : (Port_name.t, Time.t) Hashtbl.t;
  (* Source port → its queuing destinations / its sampling destinations. *)
  queuing_dests : (Port_name.t, Port_name.t list) Hashtbl.t;
  sampling_dests : (Port_name.t, Port_name.t list) Hashtbl.t;
  (* Destination port kinds, for the inject path (Port_send names the
     destination itself) and the receive checks. *)
  queuing_dest : (Port_name.t, unit) Hashtbl.t;
  sampling_dest : (Port_name.t, unit) Hashtbl.t;
  written : (Port_name.t, unit) Hashtbl.t;
}

let ipc_of_network (net : Air_ipc.Port.network) =
  let ipc =
    { balance = Hashtbl.create 8;
      last_credit = Hashtbl.create 8;
      queuing_dests = Hashtbl.create 8;
      sampling_dests = Hashtbl.create 8;
      queuing_dest = Hashtbl.create 8;
      sampling_dest = Hashtbl.create 8;
      written = Hashtbl.create 8 }
  in
  let kind_of name =
    List.find_opt
      (fun (c : Air_ipc.Port.config) -> String.equal c.name name)
      net.ports
  in
  List.iter
    (fun (c : Air_ipc.Port.config) ->
      match (c.direction, c.kind) with
      | Air_ipc.Port.Destination, Air_ipc.Port.Queuing _ ->
        Hashtbl.replace ipc.queuing_dest c.name ();
        Hashtbl.replace ipc.balance c.name 0
      | Air_ipc.Port.Destination, Air_ipc.Port.Sampling _ ->
        Hashtbl.replace ipc.sampling_dest c.name ()
      | Air_ipc.Port.Source, _ -> ())
    net.ports;
  List.iter
    (fun (ch : Air_ipc.Port.channel) ->
      let queuing, sampling =
        List.partition
          (fun d ->
            match kind_of d with
            | Some { Air_ipc.Port.kind = Air_ipc.Port.Queuing _; _ } -> true
            | _ -> false)
          ch.destinations
      in
      if queuing <> [] then Hashtbl.replace ipc.queuing_dests ch.source queuing;
      if sampling <> [] then
        Hashtbl.replace ipc.sampling_dests ch.source sampling)
    net.channels;
  ipc

(* --- The checker ---------------------------------------------------------- *)

let check ?initial_schedule ?network ?until ~schedules trace =
  if schedules = [] then invalid_arg "Trace_check.check: no schedules";
  let n = List.length schedules in
  let table = Array.make n (List.hd schedules) in
  List.iter
    (fun (s : Schedule.t) ->
      let i = Schedule_id.index s.id in
      if i >= n then
        invalid_arg "Trace_check.check: schedule identifiers must be dense";
      table.(i) <- s)
    schedules;
  let violations = ref [] in
  let report v = violations := v :: !violations in
  (* Scheduling state. *)
  let cur =
    ref
      (match initial_schedule with
      | None -> 0
      | Some id ->
        let i = Schedule_id.index id in
        if i >= n then
          invalid_arg "Trace_check.check: initial schedule out of range";
        i)
  in
  let last_switch = ref Time.zero in
  let active = ref None in
  let seg_start = ref Time.zero in
  (* Change actions armed by the last switch (partition index → switch
     time) and awaiting confirmation at first dispatch (partition index →
     dispatch time). *)
  let armed : (int, Time.t) Hashtbl.t = Hashtbl.create 4 in
  let expecting : (int, Time.t) Hashtbl.t = Hashtbl.create 4 in
  (* Deadline misses not yet matched by an HM error. *)
  let pending_miss = ref [] in
  let ipc = Option.map ipc_of_network network in
  (* Window conformance over [s, e): the active partition must own the
     window covering every tick. One violation per segment keeps the
     output proportional to the number of distinct excursions. *)
  let check_segment s e =
    match !active with
    | None -> ()
    | Some p ->
      let sched = table.(!cur) in
      let rec scan tau =
        if Time.(tau < e) then begin
          let expected =
            Option.map
              (fun (w : Schedule.window) -> w.partition)
              (Schedule.window_at sched (tau - !last_switch))
          in
          match expected with
          | Some q when Partition_id.equal q p -> scan (tau + 1)
          | _ -> report (Outside_window { time = tau; partition = p; expected })
        end
      in
      scan s
  in
  (* Expected-change-action entries older than [t] never got their event:
     the first dispatch completed without the armed action. *)
  let flush_expecting t =
    let stale =
      Hashtbl.fold
        (fun p when_ acc -> if Time.(when_ < t) then (p, when_) :: acc else acc)
        expecting []
    in
    List.iter
      (fun (p, when_) ->
        Hashtbl.remove expecting p;
        report
          (Change_action_missing
             { time = when_; partition = Partition_id.make p }))
      stale
  in
  let last_time = ref Time.zero in
  List.iter
    (fun (time, ev) ->
      last_time := Stdlib.max !last_time time;
      flush_expecting time;
      match (ev : Event.t) with
      | Event.Context_switch { from = _; to_ } ->
        check_segment !seg_start time;
        active := to_;
        seg_start := time;
        (match to_ with
        | Some p ->
          let pi = Partition_id.index p in
          (match Hashtbl.find_opt armed pi with
          | Some _ ->
            Hashtbl.remove armed pi;
            Hashtbl.replace expecting pi time
          | None -> ())
        | None -> ())
      | Event.Schedule_switch { from; to_ } ->
        check_segment !seg_start time;
        let old = table.(!cur) in
        let offset = (time - !last_switch) mod old.Schedule.mtf in
        if offset <> 0 then
          report (Mid_mtf_switch { time; from; to_; offset });
        let i = Schedule_id.index to_ in
        if i < n then begin
          cur := i;
          (* Arm the new schedule's change actions, as Algorithm 1 does. *)
          let s = table.(i) in
          List.iter
            (fun pid ->
              match Schedule.change_action_for s pid with
              | Schedule.No_action -> ()
              | Schedule.Warm_restart_partition
              | Schedule.Cold_restart_partition ->
                Hashtbl.replace armed (Partition_id.index pid) time)
            (Schedule.partitions s)
        end;
        last_switch := time;
        seg_start := time
      | Event.Change_action { partition; action = _ } ->
        let pi = Partition_id.index partition in
        (match Hashtbl.find_opt expecting pi with
        | Some when_ when Time.equal when_ time -> Hashtbl.remove expecting pi
        | Some _ | None ->
          report (Change_action_unexpected { time; partition }))
      | Event.Deadline_violation { process; deadline = _ } ->
        pending_miss := (time, process) :: !pending_miss
      | Event.Hm_error { code = Error.Deadline_missed; process = Some p; _ }
        ->
        let rec remove_first = function
          | [] -> []
          | (_, q) :: rest when Process_id.equal q p -> rest
          | entry :: rest -> entry :: remove_first rest
        in
        pending_miss := remove_first !pending_miss
      | Event.Port_send { port; _ } -> (
        match ipc with
        | None -> ()
        | Some ipc ->
          let credit d =
            if Hashtbl.mem ipc.queuing_dest d then begin
              Hashtbl.replace ipc.balance d
                (Option.value ~default:0 (Hashtbl.find_opt ipc.balance d) + 1);
              Hashtbl.replace ipc.last_credit d time
            end
          in
          (match Hashtbl.find_opt ipc.queuing_dests port with
          | Some dests -> List.iter credit dests
          | None -> ());
          (match Hashtbl.find_opt ipc.sampling_dests port with
          | Some dests ->
            List.iter (fun d -> Hashtbl.replace ipc.written d ()) dests
          | None -> ());
          (* The inject path names the destination port directly. *)
          if Hashtbl.mem ipc.queuing_dest port then credit port;
          if Hashtbl.mem ipc.sampling_dest port then
            Hashtbl.replace ipc.written port ())
      | Event.Port_overflow { port } -> (
        match ipc with
        | None -> ()
        | Some ipc -> (
          (* Undo the same-tick tentative credit of the send that
             overflowed; an inject-path overflow credited nothing. *)
          match Hashtbl.find_opt ipc.last_credit port with
          | Some t when Time.equal t time ->
            Hashtbl.replace ipc.balance port
              (Option.value ~default:0 (Hashtbl.find_opt ipc.balance port) - 1);
            Hashtbl.remove ipc.last_credit port
          | Some _ | None -> ()))
      | Event.Port_receive { port; _ } -> (
        match ipc with
        | None -> ()
        | Some ipc ->
          if Hashtbl.mem ipc.queuing_dest port then begin
            let b =
              Option.value ~default:0 (Hashtbl.find_opt ipc.balance port) - 1
            in
            if b < 0 then begin
              report (Receive_without_message { time; port });
              Hashtbl.replace ipc.balance port 0
            end
            else Hashtbl.replace ipc.balance port b
          end
          else if
            Hashtbl.mem ipc.sampling_dest port
            && not (Hashtbl.mem ipc.written port)
          then report (Sampling_read_before_write { time; port }))
      | _ -> ())
    trace;
  (* Close the last segment and flush stragglers. *)
  let horizon =
    match until with Some u -> u | None -> !last_time + 1
  in
  check_segment !seg_start horizon;
  flush_expecting (horizon + 1);
  List.iter
    (fun (time, process) -> report (Unmatched_deadline_miss { time; process }))
    (List.rev !pending_miss);
  List.rev !violations
