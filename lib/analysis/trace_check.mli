(** Temporal-invariant replay checker.

    Walks a recorded event trace against the configured scheduling tables
    and mechanically asserts the AIR paper's temporal claims:

    - {b window conformance} — no partition holds the processor outside a
      time window of the schedule in force (eq. (20): the dispatcher only
      grants the processor per the PST);
    - {b MTF-boundary switches} — a mode-based schedule switch becomes
      effective only at the start of a major time frame (Algorithm 1,
      lines 3–7);
    - {b change-action delivery} — a schedule's [ScheduleChangeAction] is
      applied exactly once, at the partition's first dispatch after the
      switch (Sect. 4.3);
    - {b supervised deadlines} — every deadline violation detected by the
      PAL (Algorithm 3) reaches the Health Monitor as a
      [Deadline_missed] process-level error;
    - {b IPC conservation} — a queuing destination port never hands out
      more messages than were delivered to it (sends minus overflows plus
      injections), and a sampling destination is never read before its
      slot was ever written. Requires the port [network]; IPC checks are
      skipped when it is omitted.

    The checker is event-driven but verifies window conformance tick by
    tick, so a clean result really does mean "at no clock tick did a
    partition run outside its window". *)

open Air_sim
open Air_model
open Ident

type violation =
  | Outside_window of {
      time : Time.t;
      partition : Partition_id.t;
      expected : Partition_id.t option;
          (** Owner of the window covering [time], [None] for an idle gap. *)
    }
  | Mid_mtf_switch of {
      time : Time.t;
      from : Schedule_id.t;
      to_ : Schedule_id.t;
      offset : Time.t;  (** Nonzero offset into the old schedule's MTF. *)
    }
  | Change_action_unexpected of {
      time : Time.t;
      partition : Partition_id.t;
          (** Change action delivered with none armed (duplicate, or no
              preceding schedule switch). *)
    }
  | Change_action_missing of {
      time : Time.t;  (** First dispatch that should have carried it. *)
      partition : Partition_id.t;
    }
  | Unmatched_deadline_miss of { time : Time.t; process : Process_id.t }
  | Receive_without_message of { time : Time.t; port : Port_name.t }
  | Sampling_read_before_write of { time : Time.t; port : Port_name.t }

val pp_violation : Format.formatter -> violation -> unit

val check :
  ?initial_schedule:Schedule_id.t ->
  ?network:Air_ipc.Port.network ->
  ?until:Time.t ->
  schedules:Schedule.t list ->
  (Time.t * Event.t) list ->
  violation list
(** [check ~schedules trace] replays [trace] (oldest first, as produced by
    {!Air_sim.Trace.to_list}) and returns the violations found, in trace
    order. [initial_schedule] defaults to id 0; [until] bounds the final
    window-conformance segment (default: one past the last event's time).
    The trace must be complete from tick 0 — feeding the retained tail of
    a bounded trace yields spurious results. *)
