(** Binary min-heaps over client-ordered elements.

    Used for timer queues in the POS substrate and as the pairing-heap
    comparator baseline in the deadline-store ablation (experiment E5). *)

type 'a t

val create : cmp:('a -> 'a -> int) -> 'a t

val length : 'a t -> int

val is_empty : 'a t -> bool

val push : 'a t -> 'a -> unit

val peek : 'a t -> 'a option
(** Smallest element, O(1). *)

val peek_key : 'a t -> key:('a -> 'b) -> 'b option
(** [peek_key t ~key] projects [key] out of the smallest element without
    removing it — O(1), no pop/push round-trip. Intended for next-event
    queries (e.g. the earliest arrival instant of a timer queue). *)

val pop : 'a t -> 'a option
(** Removes and returns the smallest element, O(log n). *)

val fold : 'a t -> init:'b -> f:('b -> 'a -> 'b) -> 'b
(** Fold over every element in unspecified (heap-internal) order — O(n),
    non-destructive. For order-insensitive queries such as a filtered
    minimum (e.g. the earliest arrival towards one destination). *)

val to_sorted_list : 'a t -> 'a list
(** Non-destructive; O(n log n). *)

val of_list : cmp:('a -> 'a -> int) -> 'a list -> 'a t
