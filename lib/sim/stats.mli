(** Descriptive statistics for experiment reporting.

    Two flavours: a streaming accumulator (Welford) used while a simulation
    runs, and whole-sample summaries (quantiles, histograms) computed when a
    table is printed. *)

type t
(** Streaming accumulator. *)

val create : unit -> t

val add : t -> float -> unit

val add_int : t -> int -> unit

val count : t -> int

val mean : t -> float
(** [nan] when empty. *)

val variance : t -> float
(** Unbiased sample variance; [nan] with fewer than two samples. *)

val stddev : t -> float

val min : t -> float
(** [nan] when empty. *)

val max : t -> float

val sum : t -> float

(** {1 Whole-sample summaries} *)

val quantile : float array -> float -> float
(** [quantile xs q] for [q] in [0,1], linear interpolation between order
    statistics. The array is sorted internally (copy; the argument is left
    intact). Raises [Invalid_argument] on an empty array, [q] outside
    [0,1], or a sample containing NaN. *)

val median : float array -> float

type histogram = { lo : float; width : float; counts : int array }

val histogram : bins:int -> float array -> histogram
(** Equal-width histogram over the sample range. [bins >= 1]. Raises
    [Invalid_argument] when the sample is empty or contains NaN. *)

val pp_histogram : Format.formatter -> histogram -> unit
(** Text rendering with one bar per bin, used in experiment output. *)

val pp_summary : Format.formatter -> t -> unit
(** "n=.. mean=.. sd=.. min=.. max=..". *)
