type t = {
  mutable n : int;
  mutable mean : float;
  mutable m2 : float;
  mutable min : float;
  mutable max : float;
  mutable sum : float;
}

let create () =
  { n = 0; mean = 0.0; m2 = 0.0; min = nan; max = nan; sum = 0.0 }

let add t x =
  t.n <- t.n + 1;
  t.sum <- t.sum +. x;
  let delta = x -. t.mean in
  t.mean <- t.mean +. (delta /. float_of_int t.n);
  t.m2 <- t.m2 +. (delta *. (x -. t.mean));
  if t.n = 1 then begin
    t.min <- x;
    t.max <- x
  end else begin
    if x < t.min then t.min <- x;
    if x > t.max then t.max <- x
  end

let add_int t x = add t (float_of_int x)

let count t = t.n
let mean t = if t.n = 0 then nan else t.mean
let variance t = if t.n < 2 then nan else t.m2 /. float_of_int (t.n - 1)
let stddev t = sqrt (variance t)
let min t = t.min
let max t = t.max
let sum t = t.sum

(* NaN poisons order statistics silently: polymorphic [compare] leaves it
   wherever it started, and any comparison against it lies. Both
   whole-sample entry points reject it up front instead. *)
let reject_nan ~what xs =
  Array.iter
    (fun x ->
      if Float.is_nan x then
        invalid_arg (Printf.sprintf "Stats.%s: NaN in sample" what))
    xs

let quantile xs q =
  let n = Array.length xs in
  if n = 0 then invalid_arg "Stats.quantile: empty sample";
  if q < 0.0 || q > 1.0 then invalid_arg "Stats.quantile: q outside [0,1]";
  reject_nan ~what:"quantile" xs;
  let sorted = Array.copy xs in
  Array.sort Float.compare sorted;
  if n = 1 then sorted.(0)
  else
    let pos = q *. float_of_int (n - 1) in
    let i = int_of_float pos in
    let frac = pos -. float_of_int i in
    if i >= n - 1 then sorted.(n - 1)
      (* No interpolation on an exact order statistic: 0 * (next - cur)
         is NaN when a neighbour is infinite. *)
    else if frac = 0.0 then sorted.(i)
    else sorted.(i) +. (frac *. (sorted.(i + 1) -. sorted.(i)))

let median xs = quantile xs 0.5

type histogram = { lo : float; width : float; counts : int array }

let histogram ~bins xs =
  if bins < 1 then invalid_arg "Stats.histogram: need at least one bin";
  if Array.length xs = 0 then invalid_arg "Stats.histogram: empty sample";
  reject_nan ~what:"histogram" xs;
  let lo = Array.fold_left Stdlib.min xs.(0) xs in
  let hi = Array.fold_left Stdlib.max xs.(0) xs in
  let span = hi -. lo in
  let width = if span = 0.0 then 1.0 else span /. float_of_int bins in
  let counts = Array.make bins 0 in
  Array.iter
    (fun x ->
      let i = int_of_float ((x -. lo) /. width) in
      let i = Stdlib.min (bins - 1) (Stdlib.max 0 i) in
      counts.(i) <- counts.(i) + 1)
    xs;
  { lo; width; counts }

let pp_histogram ppf h =
  let peak = Array.fold_left Stdlib.max 1 h.counts in
  Array.iteri
    (fun i c ->
      let from = h.lo +. (float_of_int i *. h.width) in
      let bar = String.make (c * 40 / peak) '#' in
      Format.fprintf ppf "[%10.2f, %10.2f) %6d %s@."
        from (from +. h.width) c bar)
    h.counts

let pp_summary ppf t =
  if t.n = 0 then Format.fprintf ppf "n=0"
  else
    Format.fprintf ppf "n=%d mean=%.3f sd=%.3f min=%.3f max=%.3f"
      t.n (mean t) (stddev t) t.min t.max
