(** Time-stamped event logs.

    A ['a Trace.t] collects [(time, 'a)] pairs in arrival order. The full
    system uses it with the event type of the AIR core; tests use it with
    small ad-hoc variants. Recording can be bounded: the trace then keeps the
    most recent [capacity] events (the prototype's VITRAL windows behave the
    same way). *)

type 'a t

val create : ?capacity:int -> unit -> 'a t
(** Unbounded by default. [capacity], when given, must be positive. *)

val record : 'a t -> Time.t -> 'a -> unit

val length : 'a t -> int
(** Number of events currently retained. *)

val total : 'a t -> int
(** Number of events ever recorded (≥ {!length} when bounded). *)

val to_list : 'a t -> (Time.t * 'a) list
(** Oldest first. *)

val events : 'a t -> 'a list

val iter : (Time.t -> 'a -> unit) -> 'a t -> unit

val filter : (Time.t -> 'a -> bool) -> 'a t -> (Time.t * 'a) list

val between : 'a t -> Time.t -> Time.t -> (Time.t * 'a) list
(** [between t from until] — events with [from <= time < until], oldest
    first. The interval is half-open: an event stamped exactly [until] is
    excluded, so consecutive calls with [(a, b)] and [(b, c)] partition
    the events without overlap. Empty when [until <= from]. *)

val count : ('a -> bool) -> 'a t -> int

val find_first : ('a -> bool) -> 'a t -> (Time.t * 'a) option

val find_last : ('a -> bool) -> 'a t -> (Time.t * 'a) option

val clear : 'a t -> unit

val pp : (Format.formatter -> 'a -> unit) -> Format.formatter -> 'a t -> unit
(** One "[t] event" line per event. *)
