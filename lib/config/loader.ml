open Air_sim
open Air_model
open Air_pos
open Air_ipc
open Decode

(* Name → index environments built from declaration order. *)
type env = {
  partition_names : string list;
  schedule_names : string list;
}

let index_of env_list kind name =
  let rec go i = function
    | [] -> error "unknown %s %s" kind name
    | n :: rest -> if String.equal n name then Ok i else go (i + 1) rest
  in
  go 0 env_list

let partition_id env name =
  let* i = index_of env.partition_names "partition" name in
  Ok (Ident.Partition_id.make i)

(* --- Scripts ------------------------------------------------------------ *)

let decode_action env s : Script.action t =
  let* tag, args = tag_of s in
  let str x = atom x in
  match (tag, args) with
  | "compute", [ n ] ->
    let* n = int n in
    Ok (Script.Compute n)
  | "periodic-wait", [] -> Ok Script.Periodic_wait
  | "timed-wait", [ d ] ->
    let* d = time d in
    Ok (Script.Timed_wait d)
  | "replenish", [ b ] ->
    let* b = time b in
    Ok (Script.Replenish b)
  | "write-sampling", [ port; msg ] ->
    let* port = str port in
    let* msg = str msg in
    Ok (Script.Write_sampling (port, msg))
  | "read-sampling", [ port ] ->
    let* port = str port in
    Ok (Script.Read_sampling port)
  | "send-queuing", [ port; msg ] ->
    let* port = str port in
    let* msg = str msg in
    Ok (Script.Send_queuing (port, msg))
  | "receive-queuing", [ port; tmo ] ->
    let* port = str port in
    let* tmo = timeout tmo in
    Ok (Script.Receive_queuing (port, tmo))
  | "wait-semaphore", [ name; tmo ] ->
    let* name = str name in
    let* tmo = timeout tmo in
    Ok (Script.Wait_semaphore (name, tmo))
  | "signal-semaphore", [ name ] ->
    let* name = str name in
    Ok (Script.Signal_semaphore name)
  | "wait-event", [ name; tmo ] ->
    let* name = str name in
    let* tmo = timeout tmo in
    Ok (Script.Wait_event (name, tmo))
  | "set-event", [ name ] ->
    let* name = str name in
    Ok (Script.Set_event name)
  | "reset-event", [ name ] ->
    let* name = str name in
    Ok (Script.Reset_event name)
  | "display-blackboard", [ name; msg ] ->
    let* name = str name in
    let* msg = str msg in
    Ok (Script.Display_blackboard (name, msg))
  | "clear-blackboard", [ name ] ->
    let* name = str name in
    Ok (Script.Clear_blackboard name)
  | "read-blackboard", [ name; tmo ] ->
    let* name = str name in
    let* tmo = timeout tmo in
    Ok (Script.Read_blackboard (name, tmo))
  | "send-buffer", [ name; msg; tmo ] ->
    let* name = str name in
    let* msg = str msg in
    let* tmo = timeout tmo in
    Ok (Script.Send_buffer (name, msg, tmo))
  | "receive-buffer", [ name; tmo ] ->
    let* name = str name in
    let* tmo = timeout tmo in
    Ok (Script.Receive_buffer (name, tmo))
  | "read-memory", [ addr ] ->
    let* addr = int addr in
    Ok (Script.Read_memory addr)
  | "write-memory", [ addr ] ->
    let* addr = int addr in
    Ok (Script.Write_memory addr)
  | "log", [ msg ] ->
    let* msg = str msg in
    Ok (Script.Log msg)
  | "raise-error", [ msg ] ->
    let* msg = str msg in
    Ok (Script.Raise_application_error msg)
  | "request-schedule", [ name ] ->
    let* name = str name in
    let* i = index_of env.schedule_names "schedule" name in
    Ok (Script.Request_schedule i)
  | "log-schedule-status", [] -> Ok Script.Log_schedule_status
  | "suspend-self", [ tmo ] ->
    let* tmo = timeout tmo in
    Ok (Script.Suspend_self tmo)
  | "resume", [ name ] ->
    let* name = str name in
    Ok (Script.Resume_process name)
  | "start", [ name ] ->
    let* name = str name in
    Ok (Script.Start_other name)
  | "stop", [ name ] ->
    let* name = str name in
    Ok (Script.Stop_other name)
  | "stop-self", [] -> Ok Script.Stop_self
  | "disable-interrupts", [] -> Ok Script.Disable_interrupts
  | "lock-preemption", [] -> Ok Script.Lock_preemption
  | "unlock-preemption", [] -> Ok Script.Unlock_preemption
  | tag, _ -> error "unknown or malformed action (%s …)" tag

(* --- Processes ---------------------------------------------------------- *)

type process_decl = {
  spec : Process.spec;
  script : Script.t;
  autostart : bool;
}

let decode_periodicity args =
  match args with
  | [ Sexp.Atom "aperiodic" ] -> Ok Process.Aperiodic
  | [ Sexp.List [ Sexp.Atom "sporadic"; bound ] ] ->
    let* bound = time bound in
    Ok (Process.Sporadic bound)
  | [ n ] ->
    let* n = time n in
    Ok (Process.Periodic n)
  | _ -> error "expected a period, aperiodic, or (sporadic n)"

let decode_process env s =
  let* body = tagged "process" s in
  let* f = fields_of ~context:"process" body in
  let* name = required f "name" (one atom) in
  let* periodicity =
    with_default f "period" decode_periodicity Process.Aperiodic
  in
  let* time_capacity = with_default f "capacity" (one time) Time.infinity in
  let* wcet = with_default f "wcet" (one time) 0 in
  let* base_priority = with_default f "priority" (one int) 10 in
  let* autostart = with_default f "autostart" (one bool) true in
  let* actions = map_all (decode_action env) (rest_of f "script") in
  let* on_end =
    with_default f "on-end"
      (one (fun s ->
           let* a = atom s in
           match a with
           | "repeat" -> Ok Script.Repeat
           | "stop" -> Ok Script.Stop
           | _ -> error "expected repeat or stop, got %s" a))
      Script.Repeat
  in
  let* () =
    assert_no_extra f
      ~known:
        [ "name"; "period"; "capacity"; "wcet"; "priority"; "autostart";
          "script"; "on-end" ]
  in
  Ok
    { spec =
        { Process.name; periodicity; time_capacity; wcet; base_priority };
      script = Script.make ~on_end actions;
      autostart }

(* --- Intrapartition objects ---------------------------------------------- *)

let decode_discipline = function
  | Sexp.Atom "fifo" -> Ok Air_pos.Intra.Fifo
  | Sexp.Atom "priority" -> Ok Air_pos.Intra.Priority
  | s -> error "expected fifo or priority, got %s" (Sexp.to_string s)

let decode_intra_object s =
  let* tag, args = tag_of s in
  match (tag, args) with
  | "semaphore", name :: initial :: maximum :: rest ->
    let* name = atom name in
    let* initial = int initial in
    let* maximum = int maximum in
    let* discipline =
      match rest with
      | [] -> Ok Air_pos.Intra.Fifo
      | [ d ] -> decode_discipline d
      | _ -> error "too many arguments to semaphore"
    in
    Ok (Air.System.Semaphore_object { name; initial; maximum; discipline })
  | "event", [ name ] ->
    let* name = atom name in
    Ok (Air.System.Event_object { name })
  | "blackboard", [ name; size ] ->
    let* name = atom name in
    let* max_message_size = int size in
    Ok (Air.System.Blackboard_object { name; max_message_size })
  | "buffer", name :: depth :: size :: rest ->
    let* name = atom name in
    let* depth = int depth in
    let* max_message_size = int size in
    let* discipline =
      match rest with
      | [] -> Ok Air_pos.Intra.Fifo
      | [ d ] -> decode_discipline d
      | _ -> error "too many arguments to buffer"
    in
    Ok (Air.System.Buffer_object { name; depth; max_message_size; discipline })
  | tag, _ -> error "unknown or malformed object (%s …)" tag

(* --- Partitions --------------------------------------------------------- *)

let decode_partition env index s =
  let* body = tagged "partition" s in
  let* f = fields_of ~context:"partition" body in
  let* name = required f "name" (one atom) in
  let* kind =
    with_default f "kind"
      (one (fun s ->
           let* a = atom s in
           match a with
           | "application" -> Ok Partition.Application
           | "system" -> Ok Partition.System
           | _ -> error "expected application or system, got %s" a))
      Partition.Application
  in
  let* policy =
    with_default f "policy"
      (fun args ->
        match args with
        | [ Sexp.Atom "priority" ] -> Ok Kernel.Priority_preemptive
        | [ Sexp.List [ Sexp.Atom "round-robin"; q ] ] ->
          let* quantum = int q in
          Ok (Kernel.Round_robin { quantum })
        | _ -> error "expected priority or (round-robin quantum)")
      Kernel.Priority_preemptive
  in
  let* store =
    with_default f "deadline-store"
      (one (fun s ->
           let* a = atom s in
           match a with
           | "linked-list" -> Ok Air.Deadline_store.Linked_list_impl
           | "avl-tree" -> Ok Air.Deadline_store.Avl_impl
           | "pairing-heap" -> Ok Air.Deadline_store.Pairing_impl
           | _ -> error "unknown deadline store %s" a))
      Air.Deadline_store.Linked_list_impl
  in
  let* processes =
    map_all (decode_process env) (rest_of f "processes")
  in
  let* intra_objects = map_all decode_intra_object (rest_of f "objects") in
  let* error_handler = optional f "error-handler" (one atom) in
  let* () =
    assert_no_extra f
      ~known:
        [ "name"; "kind"; "policy"; "deadline-store"; "processes"; "objects";
          "error-handler" ]
  in
  let partition =
    Partition.make ~kind
      ~id:(Ident.Partition_id.make index)
      ~name
      (List.map (fun p -> p.spec) processes)
  in
  let setup =
    Air.System.partition_setup ~policy ~store ~intra_objects ?error_handler
      ~autostart:
        (List.map
           (fun p -> (p.spec.Process.name, p.autostart))
           processes)
      partition
      (List.map (fun p -> p.script) processes)
  in
  Ok setup

(* --- Schedules ---------------------------------------------------------- *)

let decode_requirement env s =
  let* body = tagged "req" s in
  let* f = fields_of ~context:"req" body in
  let* pname = required f "partition" (one atom) in
  let* partition = partition_id env pname in
  let* cycle = required f "cycle" (one time) in
  let* duration = required f "duration" (one time) in
  Ok { Schedule.partition; cycle; duration }

let decode_window env s =
  let* body = tagged "window" s in
  let* f = fields_of ~context:"window" body in
  let* pname = required f "partition" (one atom) in
  let* partition = partition_id env pname in
  let* offset = required f "offset" (one time) in
  let* duration = required f "duration" (one time) in
  Ok { Schedule.partition; offset; duration }

let decode_change_action env s =
  match s with
  | Sexp.List [ Sexp.Atom pname; Sexp.Atom action ] ->
    let* partition = partition_id env pname in
    let* action =
      match action with
      | "no-action" -> Ok Schedule.No_action
      | "warm-restart" -> Ok Schedule.Warm_restart_partition
      | "cold-restart" -> Ok Schedule.Cold_restart_partition
      | _ -> error "unknown change action %s" action
    in
    Ok (partition, action)
  | _ -> error "expected (PARTITION ACTION)"

let decode_schedule env index s =
  let* body = tagged "schedule" s in
  let* f = fields_of ~context:"schedule" body in
  let* name = required f "name" (one atom) in
  let* mtf = required f "mtf" (one time) in
  let* requirements =
    map_all (decode_requirement env) (rest_of f "requirements")
  in
  let* windows = map_all (decode_window env) (rest_of f "windows") in
  let* change_actions =
    map_all (decode_change_action env) (rest_of f "change-actions")
  in
  let* () =
    assert_no_extra f
      ~known:[ "name"; "mtf"; "requirements"; "windows"; "change-actions" ]
  in
  Ok
    (Schedule.make ~change_actions
       ~id:(Ident.Schedule_id.make index)
       ~name ~mtf ~requirements windows)

(* --- Ports and channels ------------------------------------------------- *)

let decode_direction s =
  let* a = atom s in
  match a with
  | "source" -> Ok Port.Source
  | "destination" -> Ok Port.Destination
  | _ -> error "expected source or destination, got %s" a

let decode_port env s =
  let* tag, body = tag_of s in
  let* f = fields_of ~context:tag body in
  let* name = required f "name" (one atom) in
  let* pname = required f "partition" (one atom) in
  let* partition = partition_id env pname in
  let* direction = required f "direction" (one decode_direction) in
  let* max_message_size = with_default f "max-size" (one int) 64 in
  match tag with
  | "sampling-port" ->
    let* refresh = required f "refresh" (one time) in
    Ok
      (Port.sampling_port ~name ~partition ~direction ~refresh
         ~max_message_size)
  | "queuing-port" ->
    let* depth = with_default f "depth" (one int) 8 in
    Ok (Port.queuing_port ~name ~partition ~direction ~depth ~max_message_size)
  | _ -> error "expected sampling-port or queuing-port, got %s" tag

let decode_channel s =
  let* body = tagged "channel" s in
  let* f = fields_of ~context:"channel" body in
  let* source = required f "source" (one atom) in
  let* destinations = required f "destinations" (many atom) in
  Ok { Port.source; destinations }

(* --- Health monitoring tables ------------------------------------------- *)

let decode_error_code s =
  let* a = atom s in
  match a with
  | "deadline-missed" -> Ok Error.Deadline_missed
  | "application-error" -> Ok Error.Application_error
  | "numeric-error" -> Ok Error.Numeric_error
  | "illegal-request" -> Ok Error.Illegal_request
  | "stack-overflow" -> Ok Error.Stack_overflow
  | "memory-violation" -> Ok Error.Memory_violation
  | "hardware-fault" -> Ok Error.Hardware_fault
  | "power-failure" -> Ok Error.Power_failure
  | "configuration-error" -> Ok Error.Configuration_error
  | "temporal-degradation" -> Ok Error.Temporal_degradation
  | _ -> error "unknown error code %s" a

let rec decode_process_action s =
  match s with
  | Sexp.Atom "ignore" -> Ok Error.Ignore_error
  | Sexp.Atom "restart-process" -> Ok Error.Restart_process
  | Sexp.Atom "stop-process" -> Ok Error.Stop_process
  | Sexp.Atom "stop-partition" -> Ok Error.Stop_partition_of_process
  | Sexp.List [ Sexp.Atom "restart-partition"; Sexp.Atom mode ] ->
    let* mode =
      match mode with
      | "warm" -> Ok Partition.Warm_start
      | "cold" -> Ok Partition.Cold_start
      | _ -> error "expected warm or cold, got %s" mode
    in
    Ok (Error.Restart_partition_of_process mode)
  | Sexp.List [ Sexp.Atom "log-then"; n; inner ] ->
    let* n = int n in
    let* inner = decode_process_action inner in
    Ok (Error.Log_then (n, inner))
  | s -> error "unknown process recovery action %s" (Sexp.to_string s)

let decode_partition_action s =
  let* a = atom s in
  match a with
  | "ignore" -> Ok Error.Partition_ignore
  | "idle" -> Ok Error.Partition_idle
  | "warm-restart" -> Ok Error.Partition_warm_restart
  | "cold-restart" -> Ok Error.Partition_cold_restart
  | _ -> error "unknown partition recovery action %s" a

let decode_module_action s =
  let* a = atom s in
  match a with
  | "ignore" -> Ok Error.Module_ignore
  | "shutdown" -> Ok Error.Module_shutdown
  | "reset" -> Ok Error.Module_reset
  | _ -> error "unknown module recovery action %s" a

let decode_hm env args =
  let* f = fields_of ~context:"hm" args in
  (* A "*" in the partition position makes the entry a wildcard default,
     applying to any partition without a specific entry for the code. *)
  let* process_entries =
    map_all
      (fun s ->
        match s with
        | Sexp.List [ Sexp.Atom pname; code; action ] ->
          let* code = decode_error_code code in
          let* action = decode_process_action action in
          if String.equal pname "*" then Ok (`Wildcard (code, action))
          else
            let* partition = partition_id env pname in
            Ok (`Specific (partition, code, action))
        | _ -> error "expected (PARTITION CODE ACTION)")
      (rest_of f "process-errors")
  in
  let* partition_entries =
    map_all
      (fun s ->
        match s with
        | Sexp.List [ Sexp.Atom pname; code; action ] ->
          let* code = decode_error_code code in
          let* action = decode_partition_action action in
          if String.equal pname "*" then Ok (`Wildcard (code, action))
          else
            let* partition = partition_id env pname in
            Ok (`Specific (partition, code, action))
        | _ -> error "expected (PARTITION CODE ACTION)")
      (rest_of f "partition-errors")
  in
  let* module_actions =
    map_all
      (fun s ->
        match s with
        | Sexp.List [ code; action ] ->
          let* code = decode_error_code code in
          let* action = decode_module_action action in
          Ok (code, action)
        | _ -> error "expected (CODE ACTION)")
      (rest_of f "module-errors")
  in
  let* () =
    assert_no_extra f
      ~known:[ "process-errors"; "partition-errors"; "module-errors" ]
  in
  let specific entries =
    List.filter_map
      (function `Specific e -> Some e | `Wildcard _ -> None)
      entries
  and wildcard entries =
    List.filter_map
      (function `Wildcard e -> Some e | `Specific _ -> None)
      entries
  in
  Ok
    { Air.Hm.process_actions = specific process_entries;
      partition_actions = specific partition_entries;
      module_actions;
      process_defaults = wildcard process_entries;
      partition_defaults = wildcard partition_entries }

(* --- Telemetry ----------------------------------------------------------- *)

(* (watchdog (schedule *|NAME) (min-slack N) (max-jitter-p99 N)
             (max-catch-up N) (max-deadline-misses N))
   A "*" (or omitted) schedule makes the entry the default watchdog;
   named entries override it for frames run under that schedule. *)
let decode_watchdog env s =
  let* body = tagged "watchdog" s in
  let* f = fields_of ~context:"watchdog" body in
  let* schedule = with_default f "schedule" (one atom) "*" in
  let* min_slack = optional f "min-slack" (one int) in
  let* max_jitter_p99 = optional f "max-jitter-p99" (one int) in
  let* max_catch_up = optional f "max-catch-up" (one int) in
  let* max_deadline_misses = optional f "max-deadline-misses" (one int) in
  let* () =
    assert_no_extra f
      ~known:
        [ "schedule"; "min-slack"; "max-jitter-p99"; "max-catch-up";
          "max-deadline-misses" ]
  in
  let wd =
    Air_obs.Telemetry.watchdog ?min_slack ?max_jitter_p99 ?max_catch_up
      ?max_deadline_misses ()
  in
  if String.equal schedule "*" then Ok (`Default wd)
  else
    let* i = index_of env.schedule_names "schedule" schedule in
    Ok (`Schedule (i, wd))

let decode_telemetry env args =
  let* f = fields_of ~context:"telemetry" args in
  let* retention = optional f "retention" (one int) in
  let* () =
    match retention with
    | Some r when r <= 0 -> error "telemetry.retention must be positive"
    | Some _ | None -> Ok ()
  in
  let* entries =
    match rest_of f "watchdogs" with
    | [] -> Ok []
    | forms -> map_all (decode_watchdog env) forms
  in
  let* () = assert_no_extra f ~known:[ "retention"; "watchdogs" ] in
  let* default_watchdog =
    List.fold_left
      (fun acc e ->
        let* acc = acc in
        match e with
        | `Default wd ->
          if Option.is_some acc then
            error "telemetry: duplicate default (schedule *) watchdog"
          else Ok (Some wd)
        | `Schedule _ -> Ok acc)
      (Ok None) entries
  in
  let schedule_watchdogs =
    List.filter_map
      (function `Schedule (i, wd) -> Some (i, wd) | `Default _ -> None)
      entries
  in
  let* () =
    let rec dup = function
      | [] -> Ok ()
      | (i, _) :: rest ->
        if List.mem_assoc i rest then
          error "telemetry: duplicate watchdog for schedule %s"
            (List.nth env.schedule_names i)
        else dup rest
    in
    dup schedule_watchdogs
  in
  Ok
    (Air_obs.Telemetry.config ?retention
       ?default_watchdog ~schedule_watchdogs ())

(* (causal (retention 16384)) — attach a causal flow tracker stamping
   every IPC message with a correlation id; retention bounds the hop-record
   ring. *)
let decode_causal args =
  let* f = fields_of ~context:"causal" args in
  let* retention = optional f "retention" (one int) in
  let* () =
    match retention with
    | Some r when r <= 0 -> error "causal.retention must be positive"
    | Some _ | None -> Ok ()
  in
  let* () = assert_no_extra f ~known:[ "retention" ] in
  Ok (Air_obs.Causal.create ?capacity:retention ())

(* --- Contention ----------------------------------------------------------- *)

(* (contention
     (budget (default N) (NAME N) …)
     (curve (THRESHOLD STALL) …)
     (compute-cost N)
     (pressure-decay N))
   Shared-resource contention model: per-partition memory-bandwidth
   budgets per MTF window, a slowdown curve in (overage permille,
   stall ticks per access) steps, an optional per-compute-tick cost and
   the window-to-window cache-pressure decay (permille). *)
let decode_contention env args =
  let* f = fields_of ~context:"contention" args in
  let* entries =
    map_all
      (fun s ->
        match s with
        | Sexp.List [ Sexp.Atom "default"; n ] ->
          let* n = int n in
          Ok (`Default n)
        | Sexp.List [ Sexp.Atom name; n ] ->
          let* i = index_of env.partition_names "partition" name in
          let* n = int n in
          Ok (`Partition (i, n))
        | _ -> error "contention.budget: expected (default N) or (PARTITION N)")
      (rest_of f "budget")
  in
  let* default_budget =
    List.fold_left
      (fun acc e ->
        let* acc = acc in
        match e with
        | `Default n ->
          if Option.is_some acc then
            error "contention.budget: duplicate (default N)"
          else Ok (Some n)
        | `Partition _ -> Ok acc)
      (Ok None) entries
  in
  let* default_budget =
    match default_budget with
    | Some n -> Ok n
    | None -> error "contention.budget: missing (default N)"
  in
  let budgets =
    List.filter_map
      (function `Partition e -> Some e | `Default _ -> None)
      entries
  in
  (* A present-but-empty (curve) is meaningful — contention accounting
     without slowdown — and distinct from an absent field (the default
     one-step curve), so the lookup goes through [optional]. *)
  let* curve =
    optional f "curve"
      (many (fun s ->
           match s with
           | Sexp.List [ t; step ] ->
             let* t = int t in
             let* step = int step in
             Ok (t, step)
           | _ -> error "contention.curve: expected (THRESHOLD STALL)"))
  in
  let* compute_cost = optional f "compute-cost" (one int) in
  let* pressure_decay = optional f "pressure-decay" (one int) in
  let* () =
    assert_no_extra f
      ~known:[ "budget"; "curve"; "compute-cost"; "pressure-decay" ]
  in
  match
    Air_spatial.Contention.config ~budgets ?curve ?compute_cost
      ?pressure_decay_permille:pressure_decay ~default_budget ()
  with
  | c -> Ok c
  | exception Invalid_argument m -> error "contention: %s" m

(* --- Fault campaigns ------------------------------------------------------ *)

(* (faults
     (campaign
       (name nominal-storm)
       (seed 7)
       (horizon 20000)
       (injections
         (inject (at 1500) (fault (wild-access GNC data write 64)))
         (inject (at 3000) (fault (clock-jitter CAMERA 40))))
       (rates
         (rate (per-mtf-permille 250) (fault (message-loss ATT_OUT)))))
     (campaign …))

   Fault forms:
     (runaway-start PARTITION PROCESS)     (process-stop PARTITION PROCESS)
     (restart-partition PARTITION warm|cold|idle)
     (request-schedule SCHEDULE)           (clock-jitter PARTITION TICKS)
     (wild-access PARTITION SECTION read|write [OFFSET])
     (bit-flip PARTITION SECTION BIT read|write)
     (bandwidth-hog PARTITION PERMILLE)
     (message-loss PORT)                   (message-duplicate PORT)
     (message-corrupt PORT BYTE)           (message-delay PORT TICKS)
     (message-reorder PORT)
     (link-loss) (link-duplicate) (link-corrupt BYTE) (link-delay TICKS)
     (link-reorder)
     (module-error CODE)
   with SECTION one of code|data|stack|io. *)

let decode_section s =
  let* a = atom s in
  match a with
  | "code" -> Ok Air_spatial.Memory.Code
  | "data" -> Ok Air_spatial.Memory.Data
  | "stack" -> Ok Air_spatial.Memory.Stack
  | "io" -> Ok Air_spatial.Memory.Io
  | _ -> error "unknown memory section %s" a

let decode_rw s =
  let* a = atom s in
  match a with
  | "read" -> Ok false
  | "write" -> Ok true
  | _ -> error "expected read or write, got %s" a

let decode_restart_mode s =
  let* a = atom s in
  match a with
  | "warm" -> Ok Partition.Warm_start
  | "cold" -> Ok Partition.Cold_start
  | "idle" -> Ok Partition.Idle
  | _ -> error "expected warm, cold or idle, got %s" a

let decode_fault env s =
  let open Air_faults.Fault in
  let* tag, args = tag_of s in
  let partition_index p =
    let* p = atom p in
    index_of env.partition_names "partition" p
  in
  let port_fault port fault =
    let* port = atom port in
    Ok (Port_fault { port; fault })
  in
  match (tag, args) with
  | "runaway-start", [ p; pr ] ->
    let* partition = partition_index p in
    let* process = atom pr in
    Ok (Runaway_start { partition; process })
  | "process-stop", [ p; pr ] ->
    let* partition = partition_index p in
    let* process = atom pr in
    Ok (Process_stop { partition; process })
  | "restart-partition", [ p; m ] ->
    let* partition = partition_index p in
    let* mode = decode_restart_mode m in
    Ok (Partition_restart { partition; mode })
  | "request-schedule", [ s ] ->
    let* name = atom s in
    let* schedule = index_of env.schedule_names "schedule" name in
    Ok (Schedule_request { schedule })
  | "clock-jitter", [ p; t ] ->
    let* partition = partition_index p in
    let* ticks = int t in
    Ok (Clock_jitter { partition; ticks })
  | "wild-access", p :: sec :: rw :: rest ->
    let* partition = partition_index p in
    let* section = decode_section sec in
    let* write = decode_rw rw in
    let* offset =
      match rest with
      | [] -> Ok 64
      | [ o ] -> int o
      | _ -> error "wild-access: expected PARTITION SECTION read|write [OFFSET]"
    in
    Ok (Wild_access { partition; section; offset; write })
  | "bit-flip", [ p; sec; bit; rw ] ->
    let* partition = partition_index p in
    let* section = decode_section sec in
    let* bit = int bit in
    let* write = decode_rw rw in
    Ok (Bit_flip { partition; section; bit; write })
  | "bandwidth-hog", [ p; permille ] ->
    let* partition = partition_index p in
    let* permille = int permille in
    Ok (Bandwidth_hog { partition; permille })
  | "message-loss", [ port ] -> port_fault port Msg_loss
  | "message-duplicate", [ port ] -> port_fault port Msg_duplicate
  | "message-corrupt", [ port; byte ] ->
    let* byte = int byte in
    port_fault port (Msg_corrupt { byte })
  | "message-delay", [ port; ticks ] ->
    let* ticks = int ticks in
    port_fault port (Msg_delay { ticks })
  | "message-reorder", [ port ] -> port_fault port Msg_reorder
  | "link-loss", [] -> Ok (Link_fault { fault = Msg_loss })
  | "link-duplicate", [] -> Ok (Link_fault { fault = Msg_duplicate })
  | "link-corrupt", [ byte ] ->
    let* byte = int byte in
    Ok (Link_fault { fault = Msg_corrupt { byte } })
  | "link-delay", [ ticks ] ->
    let* ticks = int ticks in
    Ok (Link_fault { fault = Msg_delay { ticks } })
  | "link-reorder", [] -> Ok (Link_fault { fault = Msg_reorder })
  | "module-error", [ code ] ->
    let* code = decode_error_code code in
    Ok (Module_error { code })
  | _, _ -> error "unknown fault form (%s …)" tag

let decode_injection env s =
  let* body = tagged "inject" s in
  let* f = fields_of ~context:"inject" body in
  let* at = required f "at" (one time) in
  let* fault = required f "fault" (one (decode_fault env)) in
  let* () = assert_no_extra f ~known:[ "at"; "fault" ] in
  Ok { Air_faults.Campaign.at; fault }

let decode_rate env s =
  let* body = tagged "rate" s in
  let* f = fields_of ~context:"rate" body in
  let* per_mtf_permille = required f "per-mtf-permille" (one int) in
  let* template = required f "fault" (one (decode_fault env)) in
  let* () = assert_no_extra f ~known:[ "per-mtf-permille"; "fault" ] in
  Ok { Air_faults.Campaign.per_mtf_permille; template }

let decode_campaign env s =
  let* body = tagged "campaign" s in
  let* f = fields_of ~context:"campaign" body in
  let* name = with_default f "name" (one atom) "campaign" in
  let* seed = required f "seed" (one int) in
  let* horizon = required f "horizon" (one int) in
  let* () =
    if horizon <= 0 then error "campaign %s: horizon must be positive" name
    else Ok ()
  in
  let* injections = map_all (decode_injection env) (rest_of f "injections") in
  let* rates = map_all (decode_rate env) (rest_of f "rates") in
  let* () =
    assert_no_extra f
      ~known:[ "name"; "seed"; "horizon"; "injections"; "rates" ]
  in
  Ok (Air_faults.Campaign.spec ~name ~injections ~rates ~seed ~horizon ())

let decode_faults env args = map_all (decode_campaign env) args

(* --- Toplevel ------------------------------------------------------------ *)

let name_field context s =
  let* body = tag_of s in
  let tag, args = body in
  ignore tag;
  let* f = fields_of ~context args in
  required f "name" (one atom)

let decode_system s =
  let* body = tagged "air-system" s in
  let* f = fields_of ~context:"air-system" body in
  let partition_forms = rest_of f "partitions" in
  let schedule_forms = rest_of f "schedules" in
  let* partition_names =
    map_all (name_field "partition") partition_forms
  in
  let* schedule_names = map_all (name_field "schedule") schedule_forms in
  let env = { partition_names; schedule_names } in
  let* partitions =
    map_all
      (fun (i, s) -> decode_partition env i s)
      (List.mapi (fun i s -> (i, s)) partition_forms)
  in
  let* schedules =
    map_all
      (fun (i, s) -> decode_schedule env i s)
      (List.mapi (fun i s -> (i, s)) schedule_forms)
  in
  let* ports = map_all (decode_port env) (rest_of f "ports") in
  let* channels = map_all decode_channel (rest_of f "channels") in
  let* initial_schedule =
    optional f "initial-schedule"
      (one (fun s ->
           let* name = atom s in
           let* i = index_of schedule_names "schedule" name in
           Ok (Ident.Schedule_id.make i)))
  in
  let* hm_tables =
    match List.assoc_opt "hm" [ ("hm", rest_of f "hm") ] with
    | Some [] -> Ok Air.Hm.default_tables
    | Some args -> decode_hm env args
    | None -> Ok Air.Hm.default_tables
  in
  let* telemetry =
    match rest_of f "telemetry" with
    | [] -> Ok None
    | args ->
      let* c = decode_telemetry env args in
      Ok (Some c)
  in
  let* causal =
    match rest_of f "causal" with
    | [] -> Ok None
    | args ->
      let* c = decode_causal args in
      Ok (Some c)
  in
  let* contention =
    match rest_of f "contention" with
    | [] -> Ok None
    | args ->
      let* c = decode_contention env args in
      Ok (Some c)
  in
  (* Multicore executive: (cores N) shards every schedule over N PMK
     lanes (Air.System sharding; window offsets preserved). *)
  let* cores = optional f "cores" (one int) in
  let* () =
    match cores with
    | Some n when n <= 0 -> error "cores must be positive"
    | Some _ | None -> Ok ()
  in
  (* Campaigns live in the same document but are not part of the module
     configuration; validate the grammar here so a typo fails the load. *)
  let* _campaigns = decode_faults env (rest_of f "faults") in
  let* () =
    assert_no_extra f
      ~known:
        [ "partitions"; "schedules"; "ports"; "channels"; "initial-schedule";
          "hm"; "telemetry"; "causal"; "contention"; "faults"; "cores" ]
  in
  Ok
    (Air.System.config ?initial_schedule
       ~network:{ Port.ports; channels }
       ~hm_tables ?telemetry ?causal ?contention ?cores ~partitions
       ~schedules ())

let load input =
  match Sexp.parse_one input with
  | Error e -> Error (Format.asprintf "%a" Sexp.pp_error e)
  | Ok s -> decode_system s

let load_file path =
  match Sexp.parse_file path with
  | Error e -> Error (Format.asprintf "%a" Sexp.pp_error e)
  | Ok [ s ] -> decode_system s
  | Ok _ -> Error "expected exactly one (air-system …) form"

let campaigns_of doc =
  let* body = tagged "air-system" doc in
  let* f = fields_of ~context:"air-system" body in
  let* partition_names =
    map_all (name_field "partition") (rest_of f "partitions")
  in
  let* schedule_names = map_all (name_field "schedule") (rest_of f "schedules") in
  decode_faults { partition_names; schedule_names } (rest_of f "faults")

let load_campaigns input =
  match Sexp.parse_one input with
  | Error e -> Error (Format.asprintf "%a" Sexp.pp_error e)
  | Ok s -> campaigns_of s

let load_campaigns_file path =
  match Sexp.parse_file path with
  | Error e -> Error (Format.asprintf "%a" Sexp.pp_error e)
  | Ok [ s ] -> campaigns_of s
  | Ok _ -> Error "expected exactly one (air-system …) form"

(* --- Clusters ------------------------------------------------------------ *)

let decode_bus args =
  let* f = fields_of ~context:"bus" args in
  let* latency = with_default f "latency" (one time) Air.Cluster.default_bus.Air.Cluster.latency in
  let* bytes_per_tick =
    with_default f "bytes-per-tick" (one int)
      Air.Cluster.default_bus.Air.Cluster.bytes_per_tick
  in
  let* () = assert_no_extra f ~known:[ "latency"; "bytes-per-tick" ] in
  Ok { Air.Cluster.latency; bytes_per_tick }

let decode_module_decl s =
  let* body = tagged "module" s in
  let* f = fields_of ~context:"module" body in
  let* name = required f "name" (one atom) in
  let* config = required f "config" (one atom) in
  let* () = assert_no_extra f ~known:[ "name"; "config" ] in
  Ok (name, config)

let decode_link module_names s =
  let* body = tagged "link" s in
  let* f = fields_of ~context:"link" body in
  let endpoint field_name =
    match rest_of f field_name with
    | [ Sexp.Atom m; Sexp.Atom port ] ->
      let* i = index_of module_names "module" m in
      Ok (i, port)
    | _ -> error "link.%s: expected MODULE PORT" field_name
  in
  let* from_module, from_port = endpoint "from" in
  let* to_module, to_port = endpoint "to" in
  let* latency = optional f "latency" (one int) in
  let* () = assert_no_extra f ~known:[ "from"; "to"; "latency" ] in
  Ok
    (Air.Cluster.link ?latency ~from_module ~from_port ~to_module ~to_port ())

let load_cluster_file ?instrument path =
  let dir = Filename.dirname path in
  match Sexp.parse_file path with
  | Error e -> Error (Format.asprintf "%a" Sexp.pp_error e)
  | Ok [ doc ] -> (
    let build =
      let* body = tagged "air-cluster" doc in
      let* f = fields_of ~context:"air-cluster" body in
      let* bus =
        match rest_of f "bus" with
        | [] -> Ok Air.Cluster.default_bus
        | args -> decode_bus args
      in
      let* modules = map_all decode_module_decl (rest_of f "modules") in
      let* () =
        if modules = [] then error "air-cluster: no modules" else Ok ()
      in
      let module_names = List.map fst modules in
      let* links = map_all (decode_link module_names) (rest_of f "links") in
      let* () =
        assert_no_extra f ~known:[ "bus"; "modules"; "links" ]
      in
      let* systems =
        map_all
          (fun (i, (name, config)) ->
            let resolved =
              if Filename.is_relative config then Filename.concat dir config
              else config
            in
            match load_file resolved with
            | Ok cfg ->
              (* Caller's instrumentation hook: e.g. air_run attaches a
                 flight recorder and causal tracker to every module when
                 an observability export was requested. *)
              let cfg =
                match instrument with None -> cfg | Some f -> f i cfg
              in
              Ok (Air.System.create cfg)
            | Error e -> error "module %s (%s): %s" name resolved e)
          (List.mapi (fun i m -> (i, m)) modules)
      in
      Ok (bus, links, systems)
    in
    match build with
    | Error e -> Error e
    | Ok (bus, links, systems) -> (
      match Air.Cluster.create ~bus ~links systems with
      | cluster -> Ok cluster
      | exception Invalid_argument m -> Error m))
  | Ok _ -> Error "expected exactly one (air-cluster …) form"

(* --- Fleets -------------------------------------------------------------- *)

let decode_topology = function
  | [] | [ Sexp.Atom "ring" ] -> Ok Air_fleet.Topology.Ring
  | [ Sexp.Atom "mesh" ] -> Ok Air_fleet.Topology.Mesh
  | [ Sexp.Atom "grid"; rows; cols ] ->
    let* rows = int rows in
    let* cols = int cols in
    Ok (Air_fleet.Topology.Grid { rows; cols })
  | _ -> error "topology: expected ring, mesh or grid ROWS COLS"

type fleet = { fleet_cluster : Air.Cluster.t; fleet_domains : int }

let load_fleet_file ?instrument path =
  let dir = Filename.dirname path in
  match Sexp.parse_file path with
  | Error e -> Error (Format.asprintf "%a" Sexp.pp_error e)
  | Ok [ doc ] ->
    let* body = tagged "air-fleet" doc in
    let* f = fields_of ~context:"air-fleet" body in
    let* template = required f "template" (one atom) in
    let* n = required f "modules" (one int) in
    let* () =
      if n < 2 then error "air-fleet: needs at least 2 modules" else Ok ()
    in
    let* shape = decode_topology (rest_of f "topology") in
    let* gateway = with_default f "gateway" (one atom) "TX" in
    let* ingress = with_default f "ingress" (one atom) "RX" in
    let* bus =
      match rest_of f "bus" with
      | [] -> Ok Air.Cluster.default_bus
      | args -> decode_bus args
    in
    let* isl_latency = optional f "isl-latency" (one time) in
    let* domains = with_default f "domains" (one int) 1 in
    let* () =
      if domains < 1 then error "air-fleet: domains must be >= 1" else Ok ()
    in
    let* () =
      assert_no_extra f
        ~known:
          [ "template"; "modules"; "topology"; "gateway"; "ingress"; "bus";
            "isl-latency"; "domains" ]
    in
    let* links =
      match
        Air_fleet.Topology.links ?latency:isl_latency ~gateway ~ingress shape
          ~n
      with
      | links -> Ok links
      | exception Invalid_argument m -> error "air-fleet: %s" m
    in
    let resolved =
      if Filename.is_relative template then Filename.concat dir template
      else template
    in
    let* systems =
      map_all
        (fun i ->
          (* The template is reloaded per module so clones never share
             mutable observability state (trackers, recorders). *)
          match load_file resolved with
          | Ok cfg ->
            let cfg =
              match instrument with None -> cfg | Some f -> f i cfg
            in
            Ok (Air.System.create cfg)
          | Error e -> error "air-fleet template %s: %s" resolved e)
        (List.init n Fun.id)
    in
    (match Air.Cluster.create ~bus ~links systems with
    | cluster -> Ok { fleet_cluster = cluster; fleet_domains = domains }
    | exception Invalid_argument m -> error "air-fleet: %s" m)
  | Ok _ -> Error "expected exactly one (air-fleet …) form"

let schedule_index name s =
  let* body = tagged "air-system" s in
  let* f = fields_of ~context:"air-system" body in
  let* names = map_all (name_field "schedule") (rest_of f "schedules") in
  index_of names "schedule" name
