open Air_sim
open Air_model
open Air_pos
open Air_ipc

let atom s = Sexp.Atom s
let list l = Sexp.List l
let field name args = list (atom name :: args)
let int n = atom (string_of_int n)

let time t = if Time.is_infinite t then atom "infinite" else int t

let timeout t = if t = Time.zero then atom "poll" else time t

(* Names are positional: partition index i refers to the i-th declared
   partition, schedule index likewise. *)
type names = { partitions : string array; schedules : string array }

let partition_name names pid =
  let i = Ident.Partition_id.index pid in
  if i >= Array.length names.partitions then
    invalid_arg "Encode: partition index out of range"
  else names.partitions.(i)

let encode_action names = function
  | Script.Compute n -> field "compute" [ int n ]
  | Script.Periodic_wait -> list [ atom "periodic-wait" ]
  | Script.Timed_wait d -> field "timed-wait" [ time d ]
  | Script.Replenish b -> field "replenish" [ time b ]
  | Script.Write_sampling (port, msg) ->
    field "write-sampling" [ atom port; atom msg ]
  | Script.Read_sampling port -> field "read-sampling" [ atom port ]
  | Script.Send_queuing (port, msg) ->
    field "send-queuing" [ atom port; atom msg ]
  | Script.Receive_queuing (port, tmo) ->
    field "receive-queuing" [ atom port; timeout tmo ]
  | Script.Wait_semaphore (name, tmo) ->
    field "wait-semaphore" [ atom name; timeout tmo ]
  | Script.Signal_semaphore name -> field "signal-semaphore" [ atom name ]
  | Script.Wait_event (name, tmo) ->
    field "wait-event" [ atom name; timeout tmo ]
  | Script.Set_event name -> field "set-event" [ atom name ]
  | Script.Reset_event name -> field "reset-event" [ atom name ]
  | Script.Display_blackboard (name, msg) ->
    field "display-blackboard" [ atom name; atom msg ]
  | Script.Clear_blackboard name -> field "clear-blackboard" [ atom name ]
  | Script.Read_blackboard (name, tmo) ->
    field "read-blackboard" [ atom name; timeout tmo ]
  | Script.Send_buffer (name, msg, tmo) ->
    field "send-buffer" [ atom name; atom msg; timeout tmo ]
  | Script.Receive_buffer (name, tmo) ->
    field "receive-buffer" [ atom name; timeout tmo ]
  | Script.Read_memory addr -> field "read-memory" [ int addr ]
  | Script.Write_memory addr -> field "write-memory" [ int addr ]
  | Script.Log msg -> field "log" [ atom msg ]
  | Script.Raise_application_error msg -> field "raise-error" [ atom msg ]
  | Script.Request_schedule i ->
    if i >= Array.length names.schedules then
      invalid_arg "Encode: schedule index out of range"
    else field "request-schedule" [ atom names.schedules.(i) ]
  | Script.Log_schedule_status -> list [ atom "log-schedule-status" ]
  | Script.Suspend_self tmo -> field "suspend-self" [ timeout tmo ]
  | Script.Resume_process name -> field "resume" [ atom name ]
  | Script.Start_other name -> field "start" [ atom name ]
  | Script.Stop_other name -> field "stop" [ atom name ]
  | Script.Stop_self -> list [ atom "stop-self" ]
  | Script.Disable_interrupts -> list [ atom "disable-interrupts" ]
  | Script.Lock_preemption -> list [ atom "lock-preemption" ]
  | Script.Unlock_preemption -> list [ atom "unlock-preemption" ]

let encode_periodicity = function
  | Process.Aperiodic -> atom "aperiodic"
  | Process.Periodic t -> time t
  | Process.Sporadic t -> list [ atom "sporadic"; time t ]

let encode_process names (spec : Process.spec) (script : Script.t) autostart =
  let fields =
    [ field "name" [ atom spec.Process.name ];
      field "period" [ encode_periodicity spec.Process.periodicity ];
      field "capacity" [ time spec.Process.time_capacity ];
      field "wcet" [ time spec.Process.wcet ];
      field "priority" [ int spec.Process.base_priority ];
      field "autostart" [ atom (if autostart then "true" else "false") ];
      field "script"
        (List.map (encode_action names) (Array.to_list script.Script.body)) ]
  in
  let fields =
    match script.Script.on_end with
    | Script.Repeat -> fields
    | Script.Stop -> fields @ [ field "on-end" [ atom "stop" ] ]
  in
  list (atom "process" :: fields)

let encode_policy = function
  | Kernel.Priority_preemptive -> atom "priority"
  | Kernel.Round_robin { quantum } ->
    list [ atom "round-robin"; int quantum ]

let encode_store = function
  | Air.Deadline_store.Linked_list_impl -> atom "linked-list"
  | Air.Deadline_store.Avl_impl -> atom "avl-tree"
  | Air.Deadline_store.Pairing_impl -> atom "pairing-heap"

let encode_discipline = function
  | Intra.Fifo -> atom "fifo"
  | Intra.Priority -> atom "priority"

let encode_intra_object = function
  | Air.System.Semaphore_object { name; initial; maximum; discipline } ->
    list
      [ atom "semaphore"; atom name; int initial; int maximum;
        encode_discipline discipline ]
  | Air.System.Event_object { name } -> list [ atom "event"; atom name ]
  | Air.System.Blackboard_object { name; max_message_size } ->
    list [ atom "blackboard"; atom name; int max_message_size ]
  | Air.System.Buffer_object { name; depth; max_message_size; discipline } ->
    list
      [ atom "buffer"; atom name; int depth; int max_message_size;
        encode_discipline discipline ]

let encode_partition names (setup : Air.System.partition_setup) =
  let p = setup.Air.System.partition in
  let processes =
    List.init (Array.length p.Partition.processes) (fun q ->
        encode_process names
          p.Partition.processes.(q)
          setup.Air.System.scripts.(q)
          setup.Air.System.autostart.(q))
  in
  let fields =
    [ field "name" [ atom p.Partition.name ];
      field "kind"
        [ atom
            (match p.Partition.kind with
            | Partition.Application -> "application"
            | Partition.System -> "system") ];
      field "policy" [ encode_policy setup.Air.System.policy ];
      field "deadline-store" [ encode_store setup.Air.System.store ];
      field "processes" processes ]
  in
  let fields =
    match setup.Air.System.intra_objects with
    | [] -> fields
    | objects ->
      fields @ [ field "objects" (List.map encode_intra_object objects) ]
  in
  let fields =
    match setup.Air.System.error_handler with
    | None -> fields
    | Some name -> fields @ [ field "error-handler" [ atom name ] ]
  in
  list (atom "partition" :: fields)

let encode_schedule names (s : Schedule.t) =
  let req (r : Schedule.requirement) =
    list
      (atom "req"
      :: [ field "partition" [ atom (partition_name names r.partition) ];
           field "cycle" [ time r.cycle ];
           field "duration" [ time r.duration ] ])
  in
  let win (w : Schedule.window) =
    list
      (atom "window"
      :: [ field "partition" [ atom (partition_name names w.partition) ];
           field "offset" [ time w.offset ];
           field "duration" [ time w.duration ] ])
  in
  let action (p, a) =
    list
      [ atom (partition_name names p);
        atom
          (match a with
          | Schedule.No_action -> "no-action"
          | Schedule.Warm_restart_partition -> "warm-restart"
          | Schedule.Cold_restart_partition -> "cold-restart") ]
  in
  let fields =
    [ field "name" [ atom s.Schedule.name ];
      field "mtf" [ time s.Schedule.mtf ];
      field "requirements" (List.map req s.Schedule.requirements);
      field "windows" (List.map win s.Schedule.windows) ]
  in
  let fields =
    if s.Schedule.change_actions = [] then fields
    else fields @ [ field "change-actions" (List.map action s.Schedule.change_actions) ]
  in
  list (atom "schedule" :: fields)

let encode_port names (c : Port.config) =
  let common =
    [ field "name" [ atom c.Port.name ];
      field "partition" [ atom (partition_name names c.Port.partition) ];
      field "direction"
        [ atom
            (match c.Port.direction with
            | Port.Source -> "source"
            | Port.Destination -> "destination") ];
      field "max-size" [ int c.Port.max_message_size ] ]
  in
  match c.Port.kind with
  | Port.Sampling { refresh } ->
    list (atom "sampling-port" :: common @ [ field "refresh" [ time refresh ] ])
  | Port.Queuing { depth } ->
    list (atom "queuing-port" :: common @ [ field "depth" [ int depth ] ])

let encode_channel (ch : Port.channel) =
  list
    (atom "channel"
    :: [ field "source" [ atom ch.Port.source ];
         field "destinations" (List.map atom ch.Port.destinations) ])

let encode_error_code (c : Error.code) =
  atom (Format.asprintf "%a" Error.pp_code c)

let rec encode_process_action = function
  | Error.Ignore_error -> atom "ignore"
  | Error.Restart_process -> atom "restart-process"
  | Error.Stop_process -> atom "stop-process"
  | Error.Stop_partition_of_process -> atom "stop-partition"
  | Error.Restart_partition_of_process mode ->
    list
      [ atom "restart-partition";
        atom
          (match mode with
          | Partition.Warm_start -> "warm"
          | Partition.Cold_start | Partition.Normal | Partition.Idle -> "cold") ]
  | Error.Log_then (n, inner) ->
    list [ atom "log-then"; int n; encode_process_action inner ]

let encode_partition_action = function
  | Error.Partition_ignore -> atom "ignore"
  | Error.Partition_idle -> atom "idle"
  | Error.Partition_warm_restart -> atom "warm-restart"
  | Error.Partition_cold_restart -> atom "cold-restart"

let encode_module_action = function
  | Error.Module_ignore -> atom "ignore"
  | Error.Module_shutdown -> atom "shutdown"
  | Error.Module_reset -> atom "reset"

let encode_hm names (tables : Air.Hm.tables) =
  let process_entries =
    List.map
      (fun (p, code, action) ->
        list
          [ atom (partition_name names p); encode_error_code code;
            encode_process_action action ])
      tables.Air.Hm.process_actions
    @ List.map
        (fun (code, action) ->
          list
            [ atom "*"; encode_error_code code;
              encode_process_action action ])
        tables.Air.Hm.process_defaults
  in
  let partition_entries =
    List.map
      (fun (p, code, action) ->
        list
          [ atom (partition_name names p); encode_error_code code;
            encode_partition_action action ])
      tables.Air.Hm.partition_actions
    @ List.map
        (fun (code, action) ->
          list
            [ atom "*"; encode_error_code code;
              encode_partition_action action ])
        tables.Air.Hm.partition_defaults
  in
  let module_entries =
    List.map
      (fun (code, action) ->
        list [ encode_error_code code; encode_module_action action ])
      tables.Air.Hm.module_actions
  in
  match (process_entries, partition_entries, module_entries) with
  | [], [], [] -> None
  | _ ->
    Some
      (field "hm"
         (List.concat
            [ (if process_entries = [] then []
               else [ field "process-errors" process_entries ]);
              (if partition_entries = [] then []
               else [ field "partition-errors" partition_entries ]);
              (if module_entries = [] then []
               else [ field "module-errors" module_entries ]) ]))

let encode_watchdog ~schedule (w : Air_obs.Telemetry.watchdog) =
  let threshold name v =
    match v with None -> [] | Some n -> [ field name [ int n ] ]
  in
  list
    (atom "watchdog"
    :: field "schedule" [ atom schedule ]
    :: List.concat
         [ threshold "min-slack" w.Air_obs.Telemetry.min_slack;
           threshold "max-jitter-p99" w.Air_obs.Telemetry.max_jitter_p99;
           threshold "max-catch-up" w.Air_obs.Telemetry.max_catch_up;
           threshold "max-deadline-misses"
             w.Air_obs.Telemetry.max_deadline_misses ])

let encode_telemetry names (c : Air_obs.Telemetry.config) =
  let retention =
    match c.Air_obs.Telemetry.retention with
    | None -> []
    | Some r -> [ field "retention" [ int r ] ]
  in
  let watchdogs =
    (if Air_obs.Telemetry.watchdog_is_trivial
          c.Air_obs.Telemetry.default_watchdog
     then []
     else
       [ encode_watchdog ~schedule:"*" c.Air_obs.Telemetry.default_watchdog ])
    @ List.map
        (fun (i, w) ->
          if i >= Array.length names.schedules then
            invalid_arg "Encode: telemetry schedule index out of range"
          else encode_watchdog ~schedule:names.schedules.(i) w)
        c.Air_obs.Telemetry.schedule_watchdogs
  in
  field "telemetry"
    (retention
    @ match watchdogs with [] -> [] | ws -> [ field "watchdogs" ws ])

let encode_contention names (c : Air_spatial.Contention.config) =
  let budget =
    field "default" [ int c.Air_spatial.Contention.default_budget ]
    :: List.map
         (fun (i, b) ->
           if i >= Array.length names.partitions then
             invalid_arg "Encode: contention partition index out of range"
           else list [ atom names.partitions.(i); int b ])
         c.Air_spatial.Contention.budgets
  in
  let curve =
    List.map
      (fun (t, s) -> list [ int t; int s ])
      c.Air_spatial.Contention.curve
  in
  field "contention"
    (field "budget" budget
     :: field "curve" curve
     :: field "compute-cost" [ int c.Air_spatial.Contention.compute_cost ]
     :: [ field "pressure-decay"
            [ int c.Air_spatial.Contention.pressure_decay_permille ] ])

let encode (cfg : Air.System.config) =
  let names =
    { partitions =
        Array.of_list
          (List.map
             (fun (s : Air.System.partition_setup) ->
               s.Air.System.partition.Partition.name)
             cfg.Air.System.partitions);
      schedules =
        Array.of_list
          (List.map (fun (s : Schedule.t) -> s.Schedule.name)
             cfg.Air.System.schedules) }
  in
  let fields =
    [ field "partitions"
        (List.map (encode_partition names) cfg.Air.System.partitions);
      field "schedules"
        (List.map (encode_schedule names) cfg.Air.System.schedules) ]
  in
  let fields =
    match cfg.Air.System.network.Port.ports with
    | [] -> fields
    | ports ->
      fields
      @ [ field "ports" (List.map (encode_port names) ports);
          field "channels"
            (List.map encode_channel cfg.Air.System.network.Port.channels) ]
  in
  let fields =
    match cfg.Air.System.initial_schedule with
    | None -> fields
    | Some id ->
      let i = Ident.Schedule_id.index id in
      fields @ [ field "initial-schedule" [ atom names.schedules.(i) ] ]
  in
  let fields =
    match encode_hm names cfg.Air.System.hm_tables with
    | None -> fields
    | Some hm -> fields @ [ hm ]
  in
  let fields =
    match cfg.Air.System.telemetry with
    | None -> fields
    | Some c -> fields @ [ encode_telemetry names c ]
  in
  let fields =
    match cfg.Air.System.contention with
    | None -> fields
    | Some c -> fields @ [ encode_contention names c ]
  in
  list (atom "air-system" :: fields)

let to_string cfg = Sexp.to_string (encode cfg)
