(** Loading a complete AIR module configuration from its integration file.

    The textual equivalent of the ARINC 653 configuration tables: one
    [(air-system …)] form declaring partitions (with their processes and
    behaviour scripts), partition scheduling tables, interpartition ports
    and channels, and health-monitoring tables. Names are resolved to dense
    identifiers in declaration order.

    See [examples/configs/] for complete documents; the grammar is
    documented field by field in the README. *)

val load : string -> (Air.System.config, string) result
(** Parse and decode a configuration document from a string. *)

val load_file : string -> (Air.System.config, string) result

(** {1 Fault campaigns}

    A configuration document may carry a [(faults (campaign …) …)] section
    describing seeded fault-injection campaigns against the module:

    {v
(faults
  (campaign
    (name nominal-storm)
    (seed 7)
    (horizon 20000)
    (injections
      (inject (at 1500) (fault (wild-access GNC data write 64))))
    (rates
      (rate (per-mtf-permille 250) (fault (message-loss ATT_OUT))))))
    v}

    The section is validated (partition, schedule and error-code names
    resolved) but otherwise ignored by {!load}; the campaign engine reads
    it through the functions below. *)

val load_campaigns : string -> (Air_faults.Campaign.spec list, string) result
(** Decode the campaigns of a configuration document given as a string
    (empty list when the document has no [faults] section). *)

val load_campaigns_file :
  string -> (Air_faults.Campaign.spec list, string) result

(** {1 Clusters}

    A cluster document wires several module configurations over a bus:

    {v
(air-cluster
  (bus (latency 12) (bytes-per-tick 4))
  (modules (module (name platform) (config "platform.air"))
           (module (name payload)  (config "payload.air")))
  (links (link (from platform ATT_GW) (to payload ATT_IN))))
    v}

    Module config paths are resolved relative to the cluster document. *)

val load_cluster_file :
  ?instrument:(int -> Air.System.config -> Air.System.config) ->
  string ->
  (Air.Cluster.t, string) result
(** Parses the cluster document, loads every referenced module
    configuration, builds the systems and wires the bus links.
    [instrument], when given, rewrites each module's decoded configuration
    (argument: the module's cluster index) before the system is built —
    e.g. attaching a flight recorder and causal flow tracker to every
    module for a traced run. *)

(** {1 Fleets}

    A fleet document stamps out an [n]-module constellation from one
    template configuration and wires it with a generated topology
    ({!Air_fleet.Topology}):

    {v
(air-fleet
  (template "constellation_node.air")
  (modules 12)
  (topology ring)            ; ring | mesh | (topology grid ROWS COLS)
  (gateway TX)               ; outbound port prefix: TX0, TX1, …
  (ingress RX)               ; every inbound link lands here
  (bus (latency 8) (bytes-per-tick 16))
  (isl-latency 8)            ; per-link latency override (optional)
  (domains 2))               ; default domain count for parallel runs
    v}

    The template must declare the gateway ports the topology drains
    ({!Air_fleet.Topology.gateway_ports}) and the ingress port. It is
    reloaded once per module, so clones share no mutable state. *)

type fleet = {
  fleet_cluster : Air.Cluster.t;
  fleet_domains : int;
      (** The document's [(domains N)], a default for {!Air_fleet.Fleet}
          runs — callers may override it. *)
}

val load_fleet_file :
  ?instrument:(int -> Air.System.config -> Air.System.config) ->
  string ->
  (fleet, string) result
(** Parses the fleet document, clones and instruments the template per
    module (as in {!load_cluster_file}) and wires the generated links. *)

val schedule_index : string -> Sexp.t -> (int, string) result
(** Resolve a schedule name to its index within a parsed [(air-system …)]
    form — used by tools that take a schedule by name. *)
