(* Tests for the formal system model: identifiers, processes, partitions,
   schedules and preemption tables. *)

open Air_model
open Ident

let check = Alcotest.check

let pid = Partition_id.make
let sid = Schedule_id.make

let w partition offset duration = { Schedule.partition; offset; duration }
let q partition cycle duration = { Schedule.partition; cycle; duration }

let ident_printing () =
  check Alcotest.string "P1" "P1" (Format.asprintf "%a" Partition_id.pp (pid 0));
  check Alcotest.string "χ2" "χ2" (Format.asprintf "%a" Schedule_id.pp (sid 1));
  check Alcotest.string "τ1,2" "τ1,2"
    (Format.asprintf "%a" Process_id.pp (Process_id.make (pid 0) 1))

let ident_invariants () =
  Alcotest.check_raises "negative partition"
    (Invalid_argument "Partition_id.make: negative index") (fun () ->
      ignore (pid (-1)));
  check Alcotest.bool "equality" true (Partition_id.equal (pid 3) (pid 3));
  check Alcotest.bool "inequality" false (Partition_id.equal (pid 3) (pid 4));
  check Alcotest.int "process ordering" (-1)
    (Int.compare
       (Process_id.compare (Process_id.make (pid 0) 1) (Process_id.make (pid 1) 0))
       0)

let process_spec_defaults () =
  let spec = Process.spec "idle" in
  check Alcotest.bool "no deadline" false (Process.has_deadline spec);
  check Alcotest.int "default priority" 10 spec.Process.base_priority;
  let status = Process.initial_status spec in
  check Alcotest.bool "dormant" true
    (Process.state_equal status.Process.state Process.Dormant)

let process_spec_rejects_bad_period () =
  Alcotest.check_raises "zero period"
    (Invalid_argument "Process.spec: non-positive period") (fun () ->
      ignore (Process.spec ~periodicity:(Process.Periodic 0) "x"))

let partition_helpers () =
  let p =
    Partition.make ~id:(pid 0) ~name:"X"
      [ Process.spec "a"; Process.spec "b" ]
  in
  check Alcotest.int "count" 2 (Partition.process_count p);
  check Alcotest.bool "find existing" true
    (Option.is_some (Partition.find_process p "b"));
  check Alcotest.bool "find missing" true
    (Option.is_none (Partition.find_process p "zz"));
  Alcotest.check_raises "bad index"
    (Invalid_argument "Partition.process_id: index out of range") (fun () ->
      ignore (Partition.process_id p 2))

let schedule_sorting_and_lookup () =
  let s =
    Schedule.make ~id:(sid 0) ~name:"s" ~mtf:100
      ~requirements:[ q (pid 0) 100 30; q (pid 1) 100 20 ]
      [ w (pid 1) 50 20; w (pid 0) 0 30 ]
  in
  (* make sorts windows by offset *)
  (match s.Schedule.windows with
  | [ first; second ] ->
    check Alcotest.int "first offset" 0 first.Schedule.offset;
    check Alcotest.int "second offset" 50 second.Schedule.offset
  | _ -> Alcotest.fail "expected two windows");
  check Alcotest.bool "window_at inside" true
    (Option.is_some (Schedule.window_at s 10));
  check Alcotest.bool "window_at gap" true
    (Option.is_none (Schedule.window_at s 40));
  check Alcotest.bool "window_at wraps" true
    (Option.is_some (Schedule.window_at s 110));
  check Alcotest.int "total window time" 30
    (Schedule.total_window_time s (pid 0));
  check (Alcotest.float 1e-9) "utilization" 0.5 (Schedule.utilization s)

let schedule_rejects_bad_input () =
  Alcotest.check_raises "bad mtf" (Invalid_argument "Schedule.make: non-positive MTF")
    (fun () ->
      ignore
        (Schedule.make ~id:(sid 0) ~name:"s" ~mtf:0 ~requirements:[] []));
  Alcotest.check_raises "bad window"
    (Invalid_argument "Schedule.make: non-positive window duration") (fun () ->
      ignore
        (Schedule.make ~id:(sid 0) ~name:"s" ~mtf:10 ~requirements:[]
           [ w (pid 0) 0 0 ]))

let preemption_table_contiguous () =
  let s =
    Schedule.make ~id:(sid 0) ~name:"s" ~mtf:100
      ~requirements:[ q (pid 0) 100 60; q (pid 1) 100 40 ]
      [ w (pid 0) 0 60; w (pid 1) 60 40 ]
  in
  let table = Schedule.preemption_table s in
  check Alcotest.int "two points" 2 (Array.length table);
  check Alcotest.int "first at 0" 0 table.(0).Schedule.tick;
  check Alcotest.bool "first heir P1" true
    (table.(0).Schedule.heir = Some (pid 0));
  check Alcotest.int "second at 60" 60 table.(1).Schedule.tick

let preemption_table_with_gaps () =
  let s =
    Schedule.make ~id:(sid 0) ~name:"s" ~mtf:100
      ~requirements:[ q (pid 0) 100 20 ]
      [ w (pid 0) 10 20 ]
  in
  let table = Schedule.preemption_table s in
  (* idle [0,10), P1 [10,30), idle [30,100) *)
  check Alcotest.int "three points" 3 (Array.length table);
  check Alcotest.bool "starts idle" true (table.(0).Schedule.heir = None);
  check Alcotest.int "window start" 10 table.(1).Schedule.tick;
  check Alcotest.bool "trailing idle" true (table.(2).Schedule.heir = None);
  check Alcotest.int "trailing idle at 30" 30 table.(2).Schedule.tick

let preemption_table_fig8 () =
  let table = Schedule.preemption_table Air_workload.Satellite.schedule_1 in
  check Alcotest.int "seven points (no gaps)" 7 (Array.length table);
  let offsets = Array.to_list (Array.map (fun p -> p.Schedule.tick) table) in
  check Alcotest.(list int) "offsets" [ 0; 200; 300; 400; 1000; 1100; 1200 ]
    offsets

let change_action_lookup () =
  let s =
    Schedule.make ~id:(sid 0) ~name:"s" ~mtf:100
      ~requirements:[ q (pid 0) 100 10 ]
      ~change_actions:[ (pid 0, Schedule.Warm_restart_partition) ]
      [ w (pid 0) 0 10 ]
  in
  check Alcotest.bool "configured" true
    (Schedule.change_action_for s (pid 0) = Schedule.Warm_restart_partition);
  check Alcotest.bool "default" true
    (Schedule.change_action_for s (pid 1) = Schedule.No_action)

let event_queries () =
  let v =
    Event.Deadline_violation
      { process = Process_id.make (pid 0) 1; deadline = 300 }
  in
  check Alcotest.bool "is violation" true (Event.is_deadline_violation v);
  check Alcotest.bool "violation_of" true
    (match Event.violation_of v with
    | Some (_, 300) -> true
    | _ -> false);
  check Alcotest.bool "not context switch" false (Event.is_context_switch v)

let suite =
  [ Alcotest.test_case "ident: printing" `Quick ident_printing;
    Alcotest.test_case "ident: invariants" `Quick ident_invariants;
    Alcotest.test_case "process: spec defaults" `Quick process_spec_defaults;
    Alcotest.test_case "process: rejects bad period" `Quick
      process_spec_rejects_bad_period;
    Alcotest.test_case "partition: helpers" `Quick partition_helpers;
    Alcotest.test_case "schedule: sorting and lookup" `Quick
      schedule_sorting_and_lookup;
    Alcotest.test_case "schedule: rejects bad input" `Quick
      schedule_rejects_bad_input;
    Alcotest.test_case "preemption table: contiguous" `Quick
      preemption_table_contiguous;
    Alcotest.test_case "preemption table: gaps become idle" `Quick
      preemption_table_with_gaps;
    Alcotest.test_case "preemption table: Fig. 8" `Quick preemption_table_fig8;
    Alcotest.test_case "schedule: change actions" `Quick change_action_lookup;
    Alcotest.test_case "event: queries" `Quick event_queries ]
